// placement-heuristics explores the data-placement design space the paper
// names as future work: when the burst buffer cannot hold the full
// workflow footprint, which files should live there?
//
//	go run ./examples/placement-heuristics
package main

import (
	"fmt"
	"log"

	"bbwfsim/internal/core"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/workflow"
)

func main() {
	wf, err := genomes.New(genomes.Params{Chromosomes: 8})
	if err != nil {
		log.Fatal(err)
	}
	st, err := wf.ComputeStats()
	if err != nil {
		log.Fatal(err)
	}

	// Constrain the BB to a quarter of the data footprint.
	budget := st.TotalBytes.Times(0.25)
	cfg := platform.Cori(8, platform.BBPrivate)
	cfg.BB.Capacity = budget
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	dur := func(t *workflow.Task) float64 { return float64(t.Work()) }
	critical, err := placement.NewCriticalPath(wf, budget, dur)
	if err != nil {
		log.Fatal(err)
	}
	policies := []*placement.Set{
		placement.AllPFS(),
		placement.NewSizeGreedy(wf, budget, true),  // many small files
		placement.NewSizeGreedy(wf, budget, false), // few large files
		placement.NewFanoutGreedy(wf, budget),      // most-read files
		critical,
	}

	fmt.Printf("1000Genomes (8 chrom), BB capacity %v (25%% of %v footprint)\n\n", budget, st.TotalBytes)
	fmt.Printf("%-18s %10s %12s %14s %10s\n", "policy", "files", "BB bytes", "makespan [s]", "speedup")
	var baseline float64
	for _, pol := range policies {
		res, err := sim.Run(wf, core.RunOptions{Placement: pol, PrePlaceInputs: true})
		if err != nil {
			log.Fatalf("%s: %v", pol.Name(), err)
		}
		if baseline == 0 { //bbvet:allow float-compare -- zero is the explicit "unset" sentinel, not a computed value
			baseline = res.Makespan
		}
		fmt.Printf("%-18s %10d %12v %14.2f %10.2f\n",
			pol.Name(), pol.Count(), pol.BBBytes(wf), res.Makespan, baseline/res.Makespan)
	}
}
