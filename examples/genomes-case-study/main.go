// genomes-case-study reproduces the paper's Section IV-C study in
// miniature: sweep the fraction of 1000Genomes input files allocated in
// the burst buffer on Cori-like and Summit-like platforms and report the
// makespan and speedup series of Figures 13 and 14.
//
//	go run ./examples/genomes-case-study            # 22 chromosomes, 903 tasks
//	go run ./examples/genomes-case-study -chrom 4   # smaller instance
package main

import (
	"flag"
	"fmt"
	"log"

	"bbwfsim/internal/core"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/platform"
)

func main() {
	chrom := flag.Int("chrom", genomes.DefaultChromosomes, "chromosomes in the instance")
	nodes := flag.Int("nodes", 8, "compute nodes per platform")
	flag.Parse()

	wf, err := genomes.New(genomes.Params{Chromosomes: *chrom})
	if err != nil {
		log.Fatal(err)
	}
	st, err := wf.ComputeStats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1000Genomes: %d tasks, %.1f GB footprint, %.1f GB input (%.0f%%)\n\n",
		st.Tasks, float64(st.TotalBytes)/1e9, float64(st.InputBytes)/1e9,
		100*float64(st.InputBytes)/float64(st.TotalBytes))

	fractions := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	cori := core.MustNewSimulator(platform.Cori(*nodes, platform.BBPrivate))
	summit := core.MustNewSimulator(platform.Summit(*nodes))
	opts := core.RunOptions{PrePlaceInputs: true}

	coriMs, err := cori.SweepFractions(wf, fractions, opts)
	if err != nil {
		log.Fatal(err)
	}
	summitMs, err := summit.SweepFractions(wf, fractions, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %12s %12s %14s %14s\n", "% in BB", "cori [s]", "summit [s]", "cori speedup", "summit speedup")
	for i, q := range fractions {
		fmt.Printf("%-8.0f %12.2f %12.2f %14.2f %14.2f\n",
			100*q, coriMs[i], summitMs[i], coriMs[0]/coriMs[i], summitMs[0]/summitMs[i])
	}
	fmt.Println("\nExpected (paper Figs. 13-14): near-linear gains; cori plateaus past ~80%")
	fmt.Println("staged (BB bandwidth saturation), summit keeps gaining until ~100%.")
}
