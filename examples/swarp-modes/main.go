// swarp-modes compares the three burst-buffer configurations the paper
// characterizes — Cori private, Cori striped, and Summit on-node — on the
// SWarp workflow, using the synthetic testbed (the reproduction's stand-in
// for the real machines) and the calibrated lightweight simulator side by
// side.
//
//	go run ./examples/swarp-modes
package main

import (
	"fmt"
	"log"

	"bbwfsim/internal/calib"
	"bbwfsim/internal/core"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/testbed"
)

func main() {
	const pipelines, cores, reps = 4, 32, 5
	groundTruth := swarp.MustNew(swarp.Params{
		Pipelines:    pipelines,
		CoresPerTask: cores,
		ResampleWork: testbed.TrueResampleWork,
		CombineWork:  testbed.TrueCombineWork,
	})
	scenario := testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true}

	fmt.Printf("SWarp, %d pipelines, %d cores/task, all data in the burst buffer\n\n", pipelines, cores)
	fmt.Printf("%-14s %14s %14s %12s %12s\n", "configuration", "testbed [s]", "simulated [s]", "resample [s]", "combine [s]")
	for _, name := range []string{"cori-private", "cori-striped", "summit"} {
		prof := testbed.Profiles(1)[name]
		runner := testbed.NewRunner(prof, 1)

		// "Measure" the machine.
		measured, err := runner.Run(groundTruth, scenario, reps)
		if err != nil {
			log.Fatal(err)
		}

		// Calibrate the lightweight simulator from a one-pipeline anchor
		// using the paper's Eq. 4 with the published λ_io values.
		anchorWF := swarp.MustNew(swarp.Params{
			Pipelines: 1, CoresPerTask: cores,
			ResampleWork: testbed.TrueResampleWork, CombineWork: testbed.TrueCombineWork,
		})
		anchor, err := runner.Run(anchorWF, scenario, reps)
		if err != nil {
			log.Fatal(err)
		}
		cal, err := core.CalibrateWorks([]calib.Observation{
			{TaskName: "resample", Cores: cores, Time: anchor.TaskMean("resample"), LambdaIO: calib.LambdaIOResample},
			{TaskName: "combine", Cores: cores, Time: anchor.TaskMean("combine"), LambdaIO: calib.LambdaIOCombine},
		}, prof.Platform.CoreSpeed)
		if err != nil {
			log.Fatal(err)
		}
		rw, _ := cal.Work("resample")
		cw, _ := cal.Work("combine")
		simWF := swarp.MustNew(swarp.Params{
			Pipelines: pipelines, CoresPerTask: cores,
			ResampleWork: rw, CombineWork: cw,
		})
		sim := core.MustNewSimulator(platform.Presets(1)[name])
		simRes, err := sim.Run(simWF, core.RunOptions{StagedFraction: 1, IntermediatesToBB: true})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-14s %14.2f %14.2f %12.2f %12.2f\n",
			name, measured.MeanMakespan(), simRes.Makespan,
			measured.TaskMean("resample"), measured.TaskMean("combine"))
	}
	fmt.Println("\nExpected: striped is 1-2 orders of magnitude slower than private on this")
	fmt.Println("1:N small-file pattern; the on-node BB is fastest and most stable.")
}
