// checkpoint-interference shows the tension the paper's Section II
// describes: burst buffers were built for checkpoint traffic, so what
// happens to a workflow when it has to share them with exactly that
// workload?
//
//	go run ./examples/checkpoint-interference
package main

import (
	"fmt"
	"log"

	"bbwfsim/internal/checkpoint"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/units"
)

func main() {
	wf := swarp.MustNew(swarp.Params{Pipelines: 8, CoresPerTask: 32})

	run := func(cfg platform.Config, withCheckpoints bool) float64 {
		sim, err := core.NewSimulator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		opts := core.RunOptions{StagedFraction: 1, IntermediatesToBB: true}
		if withCheckpoints {
			inj, err := checkpoint.New(checkpoint.Params{
				Interval:  2,
				Size:      2 * units.GB,
				ToBB:      true,
				FirstWave: 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			opts.Background = []exec.Background{inj}
		}
		res, err := sim.Run(wf, opts)
		if err != nil {
			log.Fatal(err)
		}
		return res.Makespan
	}

	fmt.Println("SWarp, 8 pipelines, all data in the BB; co-located job checkpoints 2 GB")
	fmt.Println("per node every 2 s into the same burst buffer.")
	fmt.Println()
	fmt.Printf("%-14s %12s %18s %10s\n", "platform", "alone [s]", "w/ checkpoints [s]", "slowdown")
	for _, tc := range []struct {
		name string
		cfg  platform.Config
	}{
		{"cori-private", platform.Cori(1, platform.BBPrivate)},
		{"summit", platform.Summit(1)},
	} {
		alone := run(tc.cfg, false)
		loaded := run(tc.cfg, true)
		fmt.Printf("%-14s %12.2f %18.2f %9.2f×\n", tc.name, alone, loaded, loaded/alone)
	}
	fmt.Println("\nThe shared burst buffer (Cori) absorbs the checkpoint traffic into the")
	fmt.Println("same 800 MB/s everyone uses; Summit's per-node NVMe devices barely notice.")
}
