// optimize-placement demonstrates the paper's proposed future work: use
// the simulator as a cheap evaluation oracle and search the data-placement
// space directly, instead of trusting a fixed heuristic.
//
//	go run ./examples/optimize-placement
package main

import (
	"fmt"
	"log"

	"bbwfsim/internal/core"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/optimize"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
)

func main() {
	wf, err := genomes.New(genomes.Params{Chromosomes: 4})
	if err != nil {
		log.Fatal(err)
	}
	st, err := wf.ComputeStats()
	if err != nil {
		log.Fatal(err)
	}
	budget := st.TotalBytes.Times(0.3)

	cfg := platform.Cori(4, platform.BBPrivate)
	cfg.BB.Capacity = budget
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	oracle := func(pol *placement.Set) (float64, error) {
		res, err := sim.Run(wf, core.RunOptions{Placement: pol, PrePlaceInputs: true})
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}

	fmt.Printf("1000Genomes (4 chrom), BB capacity %v (30%% of footprint)\n\n", budget)

	// Static baselines.
	for _, pol := range []*placement.Set{
		placement.AllPFS(),
		placement.NewSizeGreedy(wf, budget, false),
		placement.NewFanoutGreedy(wf, budget),
	} {
		ms, err := oracle(pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s makespan %8.2f s\n", pol.Name(), ms)
	}

	// Simulator-in-the-loop search.
	res, err := optimize.LocalSearch(wf, oracle, optimize.Params{
		Budget:     budget,
		Iterations: 120,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s makespan %8.2f s   (%d simulations, %d files on BB)\n",
		"local search", res.BestMakespan, res.Evaluations, res.Best.Count())

	fmt.Println("\nBest-so-far trajectory (every 20 evaluations):")
	for i := 0; i < len(res.History); i += 20 {
		fmt.Printf("  eval %3d: %8.2f s\n", i+1, res.History[i])
	}
}
