// Quickstart: build a small workflow by hand, simulate it on a Cori-like
// platform with a shared burst buffer, and print the trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bbwfsim/internal/core"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

func main() {
	// A three-task pipeline: preprocess → analyze → summarize, chained by
	// files. Work is sequential compute in flops; cores is the per-task
	// request; λ_io annotates the observed I/O fraction (used only when
	// calibrating, not during simulation).
	wf := workflow.New("quickstart")
	wf.MustAddFile("raw.dat", 2*units.GiB)
	wf.MustAddFile("clean.dat", 1*units.GiB)
	wf.MustAddFile("result.dat", 100*units.MiB)
	wf.MustAddFile("report.txt", 1*units.MiB)
	wf.MustAddTask(workflow.TaskSpec{
		ID: "preprocess", Work: units.Flops(300e9), Cores: 8,
		Inputs: []string{"raw.dat"}, Outputs: []string{"clean.dat"},
	})
	wf.MustAddTask(workflow.TaskSpec{
		ID: "analyze", Work: units.Flops(1.2e12), Cores: 32,
		Inputs: []string{"clean.dat"}, Outputs: []string{"result.dat"},
	})
	wf.MustAddTask(workflow.TaskSpec{
		ID: "summarize", Work: units.Flops(50e9), Cores: 1,
		Inputs: []string{"result.dat"}, Outputs: []string{"report.txt"},
	})

	// A one-node Cori-like platform (Table I parameters) with a private-
	// mode shared burst buffer.
	sim, err := core.NewSimulator(platform.Cori(1, platform.BBPrivate))
	if err != nil {
		log.Fatal(err)
	}

	// Compare: everything on the PFS vs. everything through the BB.
	for _, useBB := range []bool{false, true} {
		res, err := sim.Run(wf, core.RunOptions{
			StagedFraction:    boolToFraction(useBB),
			IntermediatesToBB: useBB,
			PrePlaceInputs:    true,
		})
		if err != nil {
			log.Fatal(err)
		}
		where := "PFS only"
		if useBB {
			where = "burst buffer"
		}
		fmt.Printf("=== %s: makespan %.2f s\n", where, res.Makespan)
		for _, rec := range res.Trace.Records() {
			fmt.Printf("  %-10s on %-14s start %6.2f  read %5.2f  compute %6.2f  write %5.2f  end %6.2f\n",
				rec.TaskID, rec.Node, rec.StartedAt,
				rec.ReadDoneAt-rec.StartedAt, rec.ComputeTime(),
				rec.FinishedAt-rec.ComputeDone, rec.FinishedAt)
		}
	}
}

func boolToFraction(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
