module bbwfsim

go 1.22
