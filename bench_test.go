// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs its experiment end to end (testbed
// repetitions, calibration, simulation) in Quick mode, so `go test
// -bench=.` doubles as a full smoke reproduction; run cmd/bbexp for the
// paper-scale sweeps.
package bbwfsim_test

import (
	"strconv"
	"strings"
	"testing"

	"bbwfsim/internal/experiments"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := experiments.Options{Quick: true, Seed: 1}
	var tables []*experiments.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(tables) == 0 || len(tables[0].Rows) == 0 {
		b.Fatalf("experiment %s produced no data", id)
	}
	// Surface the headline number of the experiment as a benchmark metric
	// where one exists (average error, last-row makespan).
	for _, t := range tables {
		for _, note := range t.Notes {
			if !strings.Contains(note, "error") {
				continue
			}
			if v, ok := extractPercent(note); ok {
				b.ReportMetric(v, "avg_err_%")
				return
			}
		}
	}
	last := tables[0].Rows[len(tables[0].Rows)-1]
	if v, err := strconv.ParseFloat(strings.Fields(last[len(last)-1])[0], 64); err == nil {
		b.ReportMetric(v, "last_value")
	}
}

// extractPercent pulls the first "12.3%" out of a note string.
func extractPercent(s string) (float64, bool) {
	for _, f := range strings.Fields(s) {
		if strings.HasSuffix(f, "%") {
			if v, err := strconv.ParseFloat(strings.TrimSuffix(f, "%"), 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// BenchmarkTable1PlatformParams regenerates Table I.
func BenchmarkTable1PlatformParams(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig4StageIn regenerates Figure 4 (stage-in time vs. staged
// fraction).
func BenchmarkFig4StageIn(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5TaskTimes regenerates Figure 5 (task times per mode and
// intermediate placement).
func BenchmarkFig5TaskTimes(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6Cores regenerates Figure 6 (task times vs. cores).
func BenchmarkFig6Cores(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Pipelines regenerates Figure 7 (task times vs. concurrent
// pipelines).
func BenchmarkFig7Pipelines(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Variability regenerates Figure 8 (run-to-run variability).
func BenchmarkFig8Variability(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Bandwidth regenerates Figure 9 (achieved BB bandwidth).
func BenchmarkFig9Bandwidth(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10Accuracy regenerates Figure 10 (real vs. simulated
// makespan vs. staged fraction).
func BenchmarkFig10Accuracy(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11AccuracyPipelines regenerates Figure 11 (real vs.
// simulated makespan vs. pipeline count).
func BenchmarkFig11AccuracyPipelines(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig13Genomes regenerates Figure 13 (1000Genomes makespan
// sweep).
func BenchmarkFig13Genomes(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14Speedup regenerates Figure 14 (1000Genomes speedup +
// prior-study reference).
func BenchmarkFig14Speedup(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkAblationPlacement regenerates the placement-heuristics
// ablation (extension).
func BenchmarkAblationPlacement(b *testing.B) { runExperiment(b, "ablation-placement") }

// BenchmarkAblationCalibration regenerates the Eq. 3 vs. Eq. 4
// calibration ablation (extension).
func BenchmarkAblationCalibration(b *testing.B) { runExperiment(b, "ablation-model") }

// BenchmarkAblationScheduler regenerates the WMS scheduling-policy
// ablation (extension).
func BenchmarkAblationScheduler(b *testing.B) { runExperiment(b, "ablation-scheduler") }

// BenchmarkAblationLifecycle regenerates the scratch-data lifecycle
// ablation (extension).
func BenchmarkAblationLifecycle(b *testing.B) { runExperiment(b, "ablation-lifecycle") }

// BenchmarkAblationVisibility regenerates the private-mode visibility
// ablation (extension).
func BenchmarkAblationVisibility(b *testing.B) { runExperiment(b, "ablation-visibility") }

// BenchmarkAblationCheckpoint regenerates the checkpoint-interference
// ablation (extension).
func BenchmarkAblationCheckpoint(b *testing.B) { runExperiment(b, "ablation-checkpoint") }

// BenchmarkAblationOptimizer regenerates the simulator-in-the-loop
// placement search (extension).
func BenchmarkAblationOptimizer(b *testing.B) { runExperiment(b, "ablation-optimizer") }

// BenchmarkScalability measures the simulator's own cost vs. workflow
// size.
func BenchmarkScalability(b *testing.B) { runExperiment(b, "scalability") }

// BenchmarkAblationLambda regenerates the λ_io-source ablation
// (extension).
func BenchmarkAblationLambda(b *testing.B) { runExperiment(b, "ablation-lambda") }

// BenchmarkAblationStructures regenerates the workflow-structure ablation
// (extension).
func BenchmarkAblationStructures(b *testing.B) { runExperiment(b, "ablation-structures") }

// BenchmarkAblationSizing regenerates the BB-provisioning ablation
// (extension).
func BenchmarkAblationSizing(b *testing.B) { runExperiment(b, "ablation-sizing") }
