// Package bbwfsim reproduces "Modeling the Performance of Scientific
// Workflow Executions on HPC Platforms with Burst Buffers" (Pottier,
// Ferreira da Silva, Casanova, Deelman — IEEE CLUSTER 2020) as a
// self-contained Go library.
//
// The library is organized as one package per subsystem under internal/
// (see DESIGN.md for the full inventory):
//
//   - internal/sim and internal/flow: a discrete-event kernel with a
//     SimGrid-style max-min fair fluid bandwidth-sharing model;
//   - internal/platform, internal/storage: platform descriptions (Table I
//     presets for Cori and Summit) and storage services (PFS, shared burst
//     buffer in private/striped modes, node-local burst buffer);
//   - internal/workflow, internal/exec: workflow DAGs and the workflow
//     management system that executes them;
//   - internal/calib, internal/core: the paper's calibration model
//     (Eq. 1–4) and the top-level simulator API;
//   - internal/testbed: the synthetic ground truth standing in for the
//     real Cori and Summit machines;
//   - internal/swarp, internal/genomes: the SWarp and 1000Genomes workload
//     generators;
//   - internal/experiments: one runner per paper table and figure.
//
// The benchmarks in bench_test.go regenerate every evaluation artifact;
// cmd/bbexp does the same from the command line.
package bbwfsim
