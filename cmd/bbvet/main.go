// Command bbvet runs the repository's determinism and simulation-safety
// static-analysis suite (internal/analysis) over the whole module.
//
// Usage:
//
//	go run ./cmd/bbvet ./...     # analyze the module, exit 1 on findings
//	go run ./cmd/bbvet -rules    # list the rules and what they enforce
//
// Findings print in vet format, file:line: [rule] message. Suppress a
// finding with a justified directive on the offending line or the line
// above:
//
//	//bbvet:allow <rule> -- <justification>
//	//bbvet:ordered -- <justification>     (map iteration only)
//
// bbvet always analyzes the module enclosing the working directory as a
// whole; package patterns beyond ./... are not supported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bbwfsim/internal/analysis"
)

func main() {
	var (
		rules = flag.Bool("rules", false, "list the rule set and exit")
	)
	flag.Parse()

	if *rules {
		for _, r := range analysis.Rules() {
			fmt.Printf("%-24s %s\n", r.Name, r.Doc)
		}
		return
	}
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "bbvet: unsupported pattern %q: bbvet analyzes the enclosing module as a whole (use ./...)\n", arg)
			os.Exit(2)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbvet: %v\n", err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, analysis.Rules())
	for _, f := range findings {
		// Relative paths keep the output stable across checkouts and
		// clickable from the module root.
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bbvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
