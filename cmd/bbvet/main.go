// Command bbvet runs the repository's determinism and simulation-safety
// static-analysis suite (internal/analysis) over the whole module.
//
// Usage:
//
//	go run ./cmd/bbvet ./...                  # analyze the module, exit 1 on findings
//	go run ./cmd/bbvet -list                  # list the rules and what they enforce
//	go run ./cmd/bbvet -json ./...            # findings as JSON (for the CI artifact)
//	go run ./cmd/bbvet -rules no-walltime,seeded-rand-only ./...
//	go run ./cmd/bbvet -graph                 # dump the module call graph and exit
//
// Findings print in vet format, file:line: [rule] message. Suppress a
// finding with a justified directive on the offending line or the line
// above:
//
//	//bbvet:allow <rule> -- <justification>
//	//bbvet:ordered -- <justification>     (map iteration only)
//
// Note that the stale-directive audit only runs with the full rule set: a
// -rules filter cannot tell an unused suppression from one whose rule was
// simply filtered out.
//
// bbvet always analyzes the module enclosing the working directory as a
// whole; package patterns beyond ./... are not supported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bbwfsim/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so the CLI surface is testable
// in-process: 0 clean, 1 findings, 2 usage or load errors.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the rule set and exit")
		jsonOut  = fs.Bool("json", false, "print findings as JSON instead of vet format")
		graph    = fs.Bool("graph", false, "dump the module call graph as 'caller -> callee (kind)' lines and exit")
		ruleList = fs.String("rules", "", "comma-separated rule names to run (default: all)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, r := range analysis.Rules() {
			fmt.Fprintf(stdout, "%-24s %s\n", r.Name, r.Doc)
		}
		return 0
	}
	rules, err := analysis.SelectRules(*ruleList)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	for _, arg := range fs.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(stderr, "bbvet: unsupported pattern %q: bbvet analyzes the enclosing module as a whole (use ./...)\n", arg)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}
	pkgs, err := analysis.LoadModule(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "bbvet: %v\n", err)
		return 2
	}

	if *graph {
		var nonTest []*analysis.Package
		for _, pkg := range pkgs {
			if !pkg.Test {
				nonTest = append(nonTest, pkg)
			}
		}
		for _, line := range analysis.BuildCallGraph(nonTest).EdgeList() {
			fmt.Fprintln(stdout, line)
		}
		return 0
	}

	findings := analysis.Run(pkgs, rules)
	for i := range findings {
		// Relative paths keep the output stable across checkouts and
		// clickable from the module root.
		if rel, err := filepath.Rel(cwd, findings[i].Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			findings[i].Pos.Filename = rel
		}
	}
	if *jsonOut {
		data, err := analysis.MarshalFindings(findings)
		if err != nil {
			fmt.Fprintf(stderr, "bbvet: %v\n", err)
			return 2
		}
		fmt.Fprintln(stdout, string(data))
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "bbvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
