package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestListFlag checks -list prints every rule with its doc.
func TestListFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	for _, name := range []string{
		"no-walltime", "determinism-taint", "unstable-sort",
		"global-mutable-state", "stale-directive",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing rule %q", name)
		}
	}
}

// TestUnknownRuleFilter checks a typo in -rules is a hard usage error, not
// a silently empty run.
func TestUnknownRuleFilter(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-rules", "no-such-rule", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("run(-rules no-such-rule) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown rule") {
		t.Errorf("stderr = %q, want an unknown-rule error", errOut.String())
	}
}

// TestUnsupportedPattern pins the module-only contract.
func TestUnsupportedPattern(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"./internal/sim"}, &out, &errOut); code != 2 {
		t.Fatalf("run(./internal/sim) = %d, want 2", code)
	}
}

// TestJSONCleanModule runs the full suite over the repository with -json:
// the tree must be clean, and a clean tree marshals to an empty JSON array
// (never null), so the CI artifact is stable.
func TestJSONCleanModule(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("run(-json ./...) = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if findings == nil {
		t.Fatalf("clean run marshaled to null, want []")
	}
	if len(findings) != 0 {
		t.Errorf("repo not clean under -json: %v", findings)
	}
}

// TestGraphDump checks -graph emits the call-graph edge list, including a
// known interprocedural edge the taint pass depends on.
func TestGraphDump(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-graph"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-graph) = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("graph dump has %d edges; the module graph should be far larger", len(lines))
	}
	const wantEdge = "bbwfsim/internal/runner.Map -> bbwfsim/internal/runner.Jobs (call)"
	if !strings.Contains(out.String(), wantEdge) {
		t.Errorf("graph dump missing edge %q", wantEdge)
	}
	// The dump must be sorted (bit-identical across runs).
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Fatalf("graph dump not sorted at line %d: %q < %q", i, lines[i], lines[i-1])
		}
	}
}
