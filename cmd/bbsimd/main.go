// Command bbsimd is the simulation-as-a-service daemon: it serves
// concurrent simulation requests over HTTP/JSON with admission control,
// per-request deadlines, panic isolation, a single-flight content-
// addressed result cache, and graceful SIGTERM drain.
//
// Usage:
//
//	bbsimd -addr :8080 -workers 8 -journal cache.journal
//	bbsimd -once request.json        # offline: evaluate one request, print the canonical bytes
//	bbsimd -once campaign.json -campaign
//
// Endpoints:
//
//	POST /v1/run       one simulation (request schema in internal/service)
//	POST /v1/campaign  base request × seed list, sharded over the worker pool
//	GET  /healthz      process liveness (always 200 while the process serves)
//	GET  /readyz       admission readiness (503 once draining)
//	GET  /metrics      service counters, Prometheus text format
//
// Identical requests are served from the cache with byte-identical bodies
// (X-Cache: hit); determinism of the evaluation path is machine-checked
// by bbvet's taint analysis and replayed by internal/invariants.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bbwfsim/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 64, "admission queue length beyond the in-flight gate; full queue sheds 429")
		cacheEntries = fs.Int("cache-entries", 1024, "result cache capacity in entries (FIFO eviction; <0 = unbounded)")
		journalPath  = fs.String("journal", "", "append-only cache journal file (validated and truncated past corruption on restart)")
		defTimeout   = fs.Duration("default-timeout", 30*time.Second, "deadline for requests that carry no timeout_s")
		maxTimeout   = fs.Duration("max-timeout", 120*time.Second, "upper clamp on client-supplied timeout_s")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM drain waits for in-flight requests")
		panicHook    = fs.Bool("test-panic-hook", false, "admit workflow kind \"panic\" (test-only: proves panic isolation)")
		oncePath     = fs.String("once", "", "evaluate the request in this JSON file offline and print the canonical result bytes")
		onceCampaign = fs.Bool("campaign", false, "treat the -once file as a campaign request")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "bbsimd: %v\n", err)
		return 1
	}

	if *oncePath != "" {
		return runOnce(*oncePath, *onceCampaign, stdout, stderr)
	}

	var journal *service.Journal
	if *journalPath != "" {
		var err error
		journal, err = service.OpenJournal(*journalPath)
		if err != nil {
			return fail(err)
		}
	}
	srv := service.NewServer(service.Config{
		Workers:        *workers,
		Queue:          *queue,
		CacheEntries:   *cacheEntries,
		Journal:        journal,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		PanicHook:      *panicHook,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errCh := make(chan error, 1)
	go func() {
		errCh <- httpSrv.ListenAndServe()
	}()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	fmt.Fprintf(stdout, "bbsimd: serving on %s (cache restored: %d entries)\n", *addr, srv.Stats().CachedEntries)

	select {
	case err := <-errCh:
		// The listener died before any signal — a startup failure like a
		// busy port.
		return fail(err)
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "bbsimd: %v received, draining\n", sig)
	}

	// Drain: stop admitting, wait for in-flight work (bounded), flush the
	// journal, then close the listener.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.BeginDrain(ctx); err != nil {
		fmt.Fprintf(stderr, "bbsimd: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "bbsimd: shutdown: %v\n", err)
		code = 1
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			fmt.Fprintf(stderr, "bbsimd: closing journal: %v\n", err)
			code = 1
		}
	}
	<-errCh // ListenAndServe has returned http.ErrServerClosed by now
	if code == 0 {
		fmt.Fprintln(stdout, "bbsimd: drained cleanly")
	}
	return code
}

// runOnce is the offline evaluation mode: the same Execute path the
// daemon serves, without the HTTP layer — CI compares daemon response
// bodies against its output byte for byte.
func runOnce(path string, campaign bool, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintf(stderr, "bbsimd: %v\n", err)
		return 1
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fail(err)
	}
	var out []byte
	if campaign {
		creq, err := service.ParseCampaignRequest(data)
		if err != nil {
			return fail(err)
		}
		out, err = service.ExecuteCampaign(creq, nil)
		if err != nil {
			return fail(err)
		}
	} else {
		req, err := service.ParseRequest(data)
		if err != nil {
			return fail(err)
		}
		out, err = service.Execute(req)
		if err != nil {
			return fail(err)
		}
	}
	if _, err := stdout.Write(out); err != nil {
		return fail(err)
	}
	return 0
}
