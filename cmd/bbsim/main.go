// Command bbsim runs one simulated workflow execution and reports the
// makespan, per-category task summaries, and storage traffic.
//
// Usage:
//
//	bbsim -workflow wf.json -platform cori-private -fraction 0.5
//	bbsim -workflow wf.json -platform my-platform.json -intermediates-bb
//	bbsim -workflow wf.json -platform summit -trace trace.json
//	bbsim -gen montage:1000000 -no-trace -evict           # scale run, counters only
//	bbsim -gen chain:1000 -trace t.jsonl -trace-out jsonl # stream trace to disk
//
// The -platform flag accepts a preset name (cori-private, cori-striped,
// summit) or a path to a platform JSON description. The -gen flag generates
// a WfBench-style synthetic workflow instead of loading one.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"bbwfsim/internal/adapt"
	"bbwfsim/internal/ckpt"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sched"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
	"bbwfsim/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bbsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wfPath    = fs.String("workflow", "", "workflow JSON file (required unless -gen)")
		genSpec   = fs.String("gen", "", "generate a synthetic workflow instead of loading one: <topology>:<tasks>[:<width>] with topology chain, forkjoin, or montage")
		platName  = fs.String("platform", "cori-private", "platform preset name or JSON file")
		nodes     = fs.Int("nodes", 1, "node count for preset platforms")
		fraction  = fs.Float64("fraction", 0, "fraction of input files staged to the burst buffer [0,1]")
		interBB   = fs.Bool("intermediates-bb", false, "place intermediate files on the burst buffer")
		cores     = fs.Int("cores", 0, "override cores per compute task (0 = task request)")
		prePlace  = fs.Bool("preplace", false, "pre-place workflow inputs on their targets at no cost")
		tracePath = fs.String("trace", "", "write the event trace to this file (JSON, or one row per event with -trace-out)")
		traceOut  = fs.String("trace-out", "", "stream events to -trace as they fire instead of retaining them: jsonl or csv")
		noTrace   = fs.Bool("no-trace", false, "keep only per-kind event counts — no retained trace, lowest memory")
		gantt     = fs.Bool("gantt", false, "print an ASCII Gantt chart of the execution")
		evict     = fs.Bool("evict", false, "free BB replicas after their last consumer (lifecycle management)")
		private   = fs.Bool("enforce-private", false, "enforce the private-mode BB visibility rule")
		fallback  = fs.Bool("bb-fallback", false, "redirect writes whose BB target is full to the PFS instead of failing")
		nodePol   = fs.String("node-policy", "first-fit", "node selection: first-fit, least-loaded, round-robin")
		orderPol  = fs.String("order-policy", "fifo", "ready-queue order: fifo, largest-work, critical-path")
		metricsJS = fs.String("metrics", "", "write the run's observability snapshot to this JSON file")
		ckptIv    = fs.Float64("ckpt-interval", 0, "checkpoint compute tasks every N seconds of progress (0 = no checkpointing)")
		ckptTier  = fs.String("ckpt-tier", "bb", "checkpoint target tier: bb or pfs")
		ckptDrain = fs.Bool("ckpt-drain", false, "asynchronously drain burst-buffer checkpoints to the PFS")
		ckptDelay = fs.Float64("ckpt-drain-delay", 0, "delay each drain copy by N seconds after its checkpoint commits")
		ckptSize  = fs.Float64("ckpt-size", 256, "checkpoint snapshot size floor in MiB (tasks with a memory footprint snapshot that instead)")
		promPath  = fs.String("prom", "", "write the snapshot in Prometheus text format to this file (\"-\" = stdout)")
		adHigh    = fs.Float64("adapt-high", 0, "spill BB replicas to the PFS above this occupancy fraction (0 = no pressure spill)")
		adLow     = fs.Float64("adapt-low", 0, "stop spilling below this occupancy fraction (0 = half the high-water mark)")
		adRepl    = fs.Bool("adapt-replicate", false, "proactively replicate sole-replica inputs of pending tasks after faults")
		adBudget  = fs.Int("adapt-repl-budget", 0, "cap proactive replication copies per run (0 = unbounded; needs -adapt-replicate)")
		adDegrade = fs.Bool("adapt-degraded-fallback", false, "route new allocations away from degraded tiers")
		schedPol  = fs.String("sched", "", "run a multi-tenant batch campaign under this scheduling policy (fcfs, easy, plan, maxbb, maxparallel, directio) instead of a single workflow")
		schedJobs = fs.Int("sched-jobs", 1000, "synthetic campaign length for -sched")
		schedSeed = fs.Int64("sched-seed", 1, "campaign generator and fault seed for -sched")
		schedSWF  = fs.String("sched-swf", "", "load the -sched campaign from this SWF trace file instead of generating one")
		schedCap  = fs.Float64("sched-bb-cap", 0, "override the reservable BB capacity for -sched, in GiB (0 = platform preset)")
		schedFM   = fs.Float64("sched-fault-mean", 0, "inject node failures into the -sched campaign with this exponential inter-arrival mean in seconds (0 = none)")
		schedMTTR = fs.Float64("sched-mttr", 1800, "node repair time in seconds for -sched-fault-mean")
		schedFB   = fs.Int("sched-fault-budget", 0, "cap injected node failures for -sched-fault-mean (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "bbsim: "+format+"\n", a...)
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "bbsim: %v\n", err)
		return 1
	}

	if *schedPol != "" {
		if *wfPath != "" || *genSpec != "" {
			return usage("-sched is incompatible with -workflow and -gen")
		}
		if *noTrace || *traceOut != "" || *gantt {
			return usage("-sched supports only the retained trace (-trace <file>)")
		}
		cfg, err := loadPlatform(*platName, *nodes)
		if err != nil {
			return fail(err)
		}
		return runSchedCampaign(schedCampaignOpts{
			policy: *schedPol, platform: cfg,
			jobs: *schedJobs, seed: *schedSeed, swf: *schedSWF,
			bbCapGiB: *schedCap, faultMean: *schedFM, mttr: *schedMTTR, faultBudget: *schedFB,
			tracePath: *tracePath, metricsPath: *metricsJS, promPath: *promPath,
		}, stdout, stderr)
	}
	if (*wfPath == "") == (*genSpec == "") {
		return usage("exactly one of -workflow or -gen required")
	}
	var (
		wf  *workflow.Workflow
		err error
	)
	if *genSpec != "" {
		spec, perr := workloads.ParseScaleSpec(*genSpec)
		if perr != nil {
			return fail(perr)
		}
		wf, err = workloads.Scale(spec)
	} else {
		wf, err = workflow.Load(*wfPath)
	}
	if err != nil {
		return fail(err)
	}

	// The trace mode decides what the run materializes: everything
	// (retained, the default), a stream to disk, or counters only. The
	// retained-only outputs (-gantt, plain -trace) are rejected up front in
	// the other modes rather than failing after the simulation ran.
	mode := trace.Retained
	var sink trace.Sink
	var sinkFile *os.File
	switch {
	case *noTrace:
		if *tracePath != "" || *traceOut != "" || *gantt {
			return usage("-no-trace is incompatible with -trace, -trace-out, and -gantt")
		}
		mode = trace.Counting
	case *traceOut != "":
		if *tracePath == "" {
			return usage("-trace-out needs -trace <file> for the output path")
		}
		if *gantt {
			return usage("-gantt needs the retained trace; drop -trace-out")
		}
		switch *traceOut {
		case "jsonl", "csv":
		default:
			return usage("unknown -trace-out format %q (want jsonl or csv)", *traceOut)
		}
		sinkFile, err = os.Create(*tracePath)
		if err != nil {
			return fail(err)
		}
		if *traceOut == "jsonl" {
			sink = trace.NewJSONLSink(sinkFile)
		} else {
			sink = trace.NewCSVSink(sinkFile)
		}
		mode = trace.Streaming
	}

	cfg, err := loadPlatform(*platName, *nodes)
	if err != nil {
		return fail(err)
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		return fail(err)
	}
	np, err := parseNodePolicy(*nodePol)
	if err != nil {
		return fail(err)
	}
	op, err := parseOrderPolicy(*orderPol)
	if err != nil {
		return fail(err)
	}
	var pol ckpt.Policy
	if *ckptIv > 0 {
		pol = ckpt.Policy{
			Interval:   *ckptIv,
			Target:     ckpt.Target(*ckptTier),
			Drain:      *ckptDrain,
			DrainDelay: *ckptDelay,
			MinSize:    units.Bytes(*ckptSize * float64(units.MiB)),
		}
	}
	res, err := sim.Run(wf, core.RunOptions{
		StagedFraction:           *fraction,
		IntermediatesToBB:        *interBB,
		CoresPerTask:             *cores,
		PrePlaceInputs:           *prePlace,
		EvictAfterLastRead:       *evict,
		EnforcePrivateVisibility: *private,
		BBFallback:               *fallback,
		NodePolicy:               np,
		OrderPolicy:              op,
		Checkpoint:               pol,
		Adapt: adapt.Policy{
			SpillHighWater:    *adHigh,
			SpillLowWater:     *adLow,
			ReplicateOnFault:  *adRepl,
			ReplicationBudget: *adBudget,
			DegradedFallback:  *adDegrade,
		},
		TraceMode: mode,
		TraceSink: sink,
	})
	if err != nil {
		return fail(err)
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			return fail(err)
		}
		if err := sinkFile.Close(); err != nil {
			return fail(err)
		}
	}

	fmt.Fprintf(stdout, "workflow:  %s (%d tasks, %d files)\n", wf.Name(), len(wf.Tasks()), len(wf.Files()))
	fmt.Fprintf(stdout, "platform:  %s (%d nodes × %d cores)\n", cfg.Name, cfg.Nodes, cfg.CoresPerNode)
	fmt.Fprintf(stdout, "staged:    %.0f%% of input files to BB, intermediates on %s\n",
		100**fraction, map[bool]string{true: "BB", false: "PFS"}[*interBB])
	fmt.Fprintf(stdout, "makespan:  %.2f s\n\n", res.Makespan)

	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "task\tcount\tmean exec [s]\tmean I/O [s]\tmean compute [s]\tread\twritten")
	for _, s := range res.Summaries {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\t%v\t%v\n",
			s.Name, s.Count, s.MeanExec, s.MeanIO, s.MeanCompute, s.BytesRead, s.BytesWritten)
	}
	tw.Flush()

	fmt.Fprintf(stdout, "\nBB traffic:  %v read (%v avg), %v written (%v avg)\n",
		res.BB.BytesRead, res.BB.ReadBandwidth(), res.BB.BytesWritten, res.BB.WriteBandwidth())
	fmt.Fprintf(stdout, "PFS traffic: %v read (%v avg), %v written (%v avg)\n",
		res.PFS.BytesRead, res.PFS.ReadBandwidth(), res.PFS.BytesWritten, res.PFS.WriteBandwidth())
	if mode == trace.Counting {
		fmt.Fprintf(stdout, "events:      %d fired, %d peak pending (counting mode, no retained trace)\n",
			res.Events, res.PeakPending)
	}

	if *gantt {
		fmt.Fprintln(stdout)
		if err := res.Trace.RenderGantt(stdout, 72); err != nil {
			return fail(err)
		}
	}

	if *tracePath != "" && mode == trace.Retained {
		if err := res.Trace.Save(*tracePath); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "trace written to %s\n", *tracePath)
	}
	if mode == trace.Streaming {
		fmt.Fprintf(stdout, "trace streamed to %s (%s)\n", *tracePath, *traceOut)
	}

	if *metricsJS != "" {
		data, err := res.Metrics.JSON()
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*metricsJS, data, 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "metrics written to %s\n", *metricsJS)
	}
	if *promPath != "" {
		if *promPath == "-" {
			fmt.Fprintln(stdout)
			if err := res.Metrics.WriteProm(stdout); err != nil {
				return fail(err)
			}
		} else {
			f, err := os.Create(*promPath)
			if err != nil {
				return fail(err)
			}
			if err := res.Metrics.WriteProm(f); err != nil {
				f.Close()
				return fail(err)
			}
			if err := f.Close(); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "metrics written to %s\n", *promPath)
		}
	}
	return 0
}

// schedCampaignOpts collects the -sched flag family.
type schedCampaignOpts struct {
	policy      string
	platform    platform.Config
	jobs        int
	seed        int64
	swf         string
	bbCapGiB    float64
	faultMean   float64
	mttr        float64
	faultBudget int
	tracePath   string
	metricsPath string
	promPath    string
}

// runSchedCampaign executes one multi-tenant batch campaign (-sched) and
// prints its accounting through the core.Result fold.
func runSchedCampaign(o schedCampaignOpts, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintf(stderr, "bbsim: %v\n", err)
		return 1
	}
	cluster := sched.ClusterFromPlatform(o.platform)
	if o.bbCapGiB > 0 {
		cluster.BBCapacity = units.Bytes(o.bbCapGiB * float64(units.GiB))
	}
	var (
		jobs   []workloads.Job
		source string
		err    error
	)
	if o.swf != "" {
		f, oerr := os.Open(o.swf)
		if oerr != nil {
			return fail(oerr)
		}
		jobs, err = workloads.ParseSWF(f, workloads.SWFOptions{BBPerProc: units.GiB, MaxJobs: o.jobs})
		f.Close()
		source = fmt.Sprintf("SWF trace %s", o.swf)
	} else {
		maxNodes := 16
		if cluster.Nodes < maxNodes {
			maxNodes = cluster.Nodes
		}
		jobs, err = workloads.Campaign(workloads.CampaignSpec{
			Jobs: o.jobs, Seed: o.seed, MaxNodes: maxNodes,
		})
		source = fmt.Sprintf("synthetic, seed %d", o.seed)
	}
	if err != nil {
		return fail(err)
	}
	cfg := sched.Config{Cluster: cluster, Policy: o.policy, Jobs: jobs}
	if o.faultMean > 0 {
		cfg.Faults = &sched.FaultPlan{
			Seed: o.seed,
			Node: &faults.NodeProcess{Arrival: faults.Exp(o.faultMean), MTTR: o.mttr, Budget: o.faultBudget},
		}
	}
	sres, err := sched.Run(cfg)
	if err != nil {
		return fail(err)
	}
	res := sres.Core()

	fmt.Fprintf(stdout, "policy:    %s on %s (%d nodes, BB %v @ %v, PFS %v)\n",
		res.Sched.Policy, o.platform.Name, cluster.Nodes,
		cluster.BBCapacity, cluster.BBBandwidth, cluster.PFSBandwidth)
	fmt.Fprintf(stdout, "campaign:  %d jobs (%s)\n", res.Sched.Submitted, source)
	fmt.Fprintf(stdout, "outcomes:  %d completed, %d failed, %d rejected (%d node failures)\n",
		res.Sched.Completed, res.Sched.Failed, res.Sched.Rejected, res.Sched.NodeFailures)
	fmt.Fprintf(stdout, "mean wait: %.2f s   mean response: %.2f s   mean bounded slowdown: %.2f\n",
		res.Sched.MeanWait, res.Sched.MeanResponse, res.Sched.MeanSlowdown)
	fmt.Fprintf(stdout, "makespan:  %.2f s (%d events)\n", res.Makespan, res.Events)

	if o.tracePath != "" {
		if err := res.Trace.Save(o.tracePath); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "trace written to %s\n", o.tracePath)
	}
	if o.metricsPath != "" {
		data, err := res.Metrics.JSON()
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(o.metricsPath, data, 0o644); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "metrics written to %s\n", o.metricsPath)
	}
	if o.promPath != "" {
		if o.promPath == "-" {
			fmt.Fprintln(stdout)
			if err := res.Metrics.WriteProm(stdout); err != nil {
				return fail(err)
			}
		} else {
			f, err := os.Create(o.promPath)
			if err != nil {
				return fail(err)
			}
			if err := res.Metrics.WriteProm(f); err != nil {
				f.Close()
				return fail(err)
			}
			if err := f.Close(); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "metrics written to %s\n", o.promPath)
		}
	}
	return 0
}

func parseNodePolicy(s string) (exec.NodePolicy, error) {
	switch s {
	case "first-fit":
		return exec.NodeFirstFit, nil
	case "least-loaded":
		return exec.NodeLeastLoaded, nil
	case "round-robin":
		return exec.NodeRoundRobin, nil
	}
	return 0, fmt.Errorf("unknown node policy %q", s)
}

func parseOrderPolicy(s string) (exec.OrderPolicy, error) {
	switch s {
	case "fifo":
		return exec.OrderFIFO, nil
	case "largest-work":
		return exec.OrderLargestWork, nil
	case "critical-path":
		return exec.OrderCriticalPath, nil
	}
	return 0, fmt.Errorf("unknown order policy %q", s)
}

func loadPlatform(name string, nodes int) (platform.Config, error) {
	if cfg, ok := platform.Presets(nodes)[name]; ok {
		return cfg, nil
	}
	if _, err := os.Stat(name); err == nil {
		return platform.LoadConfig(name)
	}
	return platform.Config{}, fmt.Errorf("unknown platform %q (not a preset, not a file)", name)
}
