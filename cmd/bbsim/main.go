// Command bbsim runs one simulated workflow execution and reports the
// makespan, per-category task summaries, and storage traffic.
//
// Usage:
//
//	bbsim -workflow wf.json -platform cori-private -fraction 0.5
//	bbsim -workflow wf.json -platform my-platform.json -intermediates-bb
//	bbsim -workflow wf.json -platform summit -trace trace.json
//
// The -platform flag accepts a preset name (cori-private, cori-striped,
// summit) or a path to a platform JSON description.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"bbwfsim/internal/adapt"
	"bbwfsim/internal/ckpt"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

func main() {
	var (
		wfPath    = flag.String("workflow", "", "workflow JSON file (required)")
		platName  = flag.String("platform", "cori-private", "platform preset name or JSON file")
		nodes     = flag.Int("nodes", 1, "node count for preset platforms")
		fraction  = flag.Float64("fraction", 0, "fraction of input files staged to the burst buffer [0,1]")
		interBB   = flag.Bool("intermediates-bb", false, "place intermediate files on the burst buffer")
		cores     = flag.Int("cores", 0, "override cores per compute task (0 = task request)")
		prePlace  = flag.Bool("preplace", false, "pre-place workflow inputs on their targets at no cost")
		tracePath = flag.String("trace", "", "write the full event trace to this JSON file")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart of the execution")
		evict     = flag.Bool("evict", false, "free BB replicas after their last consumer (lifecycle management)")
		private   = flag.Bool("enforce-private", false, "enforce the private-mode BB visibility rule")
		nodePol   = flag.String("node-policy", "first-fit", "node selection: first-fit, least-loaded, round-robin")
		orderPol  = flag.String("order-policy", "fifo", "ready-queue order: fifo, largest-work, critical-path")
		metricsJS = flag.String("metrics", "", "write the run's observability snapshot to this JSON file")
		ckptIv    = flag.Float64("ckpt-interval", 0, "checkpoint compute tasks every N seconds of progress (0 = no checkpointing)")
		ckptTier  = flag.String("ckpt-tier", "bb", "checkpoint target tier: bb or pfs")
		ckptDrain = flag.Bool("ckpt-drain", false, "asynchronously drain burst-buffer checkpoints to the PFS")
		ckptDelay = flag.Float64("ckpt-drain-delay", 0, "delay each drain copy by N seconds after its checkpoint commits")
		ckptSize  = flag.Float64("ckpt-size", 256, "checkpoint snapshot size floor in MiB (tasks with a memory footprint snapshot that instead)")
		promPath  = flag.String("prom", "", "write the snapshot in Prometheus text format to this file (\"-\" = stdout)")
		adHigh    = flag.Float64("adapt-high", 0, "spill BB replicas to the PFS above this occupancy fraction (0 = no pressure spill)")
		adLow     = flag.Float64("adapt-low", 0, "stop spilling below this occupancy fraction (0 = half the high-water mark)")
		adRepl    = flag.Bool("adapt-replicate", false, "proactively replicate sole-replica inputs of pending tasks after faults")
		adBudget  = flag.Int("adapt-repl-budget", 0, "cap proactive replication copies per run (0 = unbounded; needs -adapt-replicate)")
		adDegrade = flag.Bool("adapt-degraded-fallback", false, "route new allocations away from degraded tiers")
	)
	flag.Parse()

	if *wfPath == "" {
		fmt.Fprintln(os.Stderr, "bbsim: -workflow required")
		os.Exit(2)
	}
	wf, err := workflow.Load(*wfPath)
	if err != nil {
		fatal(err)
	}
	cfg, err := loadPlatform(*platName, *nodes)
	if err != nil {
		fatal(err)
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		fatal(err)
	}
	np, err := parseNodePolicy(*nodePol)
	if err != nil {
		fatal(err)
	}
	op, err := parseOrderPolicy(*orderPol)
	if err != nil {
		fatal(err)
	}
	var pol ckpt.Policy
	if *ckptIv > 0 {
		pol = ckpt.Policy{
			Interval:   *ckptIv,
			Target:     ckpt.Target(*ckptTier),
			Drain:      *ckptDrain,
			DrainDelay: *ckptDelay,
			MinSize:    units.Bytes(*ckptSize * float64(units.MiB)),
		}
	}
	res, err := sim.Run(wf, core.RunOptions{
		StagedFraction:           *fraction,
		IntermediatesToBB:        *interBB,
		CoresPerTask:             *cores,
		PrePlaceInputs:           *prePlace,
		EvictAfterLastRead:       *evict,
		EnforcePrivateVisibility: *private,
		NodePolicy:               np,
		OrderPolicy:              op,
		Checkpoint:               pol,
		Adapt: adapt.Policy{
			SpillHighWater:    *adHigh,
			SpillLowWater:     *adLow,
			ReplicateOnFault:  *adRepl,
			ReplicationBudget: *adBudget,
			DegradedFallback:  *adDegrade,
		},
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workflow:  %s (%d tasks, %d files)\n", wf.Name(), len(wf.Tasks()), len(wf.Files()))
	fmt.Printf("platform:  %s (%d nodes × %d cores)\n", cfg.Name, cfg.Nodes, cfg.CoresPerNode)
	fmt.Printf("staged:    %.0f%% of input files to BB, intermediates on %s\n",
		100**fraction, map[bool]string{true: "BB", false: "PFS"}[*interBB])
	fmt.Printf("makespan:  %.2f s\n\n", res.Makespan)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "task\tcount\tmean exec [s]\tmean I/O [s]\tmean compute [s]\tread\twritten")
	for _, s := range res.Summaries {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2f\t%v\t%v\n",
			s.Name, s.Count, s.MeanExec, s.MeanIO, s.MeanCompute, s.BytesRead, s.BytesWritten)
	}
	tw.Flush()

	fmt.Printf("\nBB traffic:  %v read (%v avg), %v written (%v avg)\n",
		res.BB.BytesRead, res.BB.ReadBandwidth(), res.BB.BytesWritten, res.BB.WriteBandwidth())
	fmt.Printf("PFS traffic: %v read (%v avg), %v written (%v avg)\n",
		res.PFS.BytesRead, res.PFS.ReadBandwidth(), res.PFS.BytesWritten, res.PFS.WriteBandwidth())

	if *gantt {
		fmt.Println()
		if err := res.Trace.RenderGantt(os.Stdout, 72); err != nil {
			fatal(err)
		}
	}

	if *tracePath != "" {
		if err := res.Trace.Save(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s\n", *tracePath)
	}

	if *metricsJS != "" {
		data, err := res.Metrics.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*metricsJS, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *metricsJS)
	}
	if *promPath != "" {
		if *promPath == "-" {
			fmt.Println()
			if err := res.Metrics.WriteProm(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			f, err := os.Create(*promPath)
			if err != nil {
				fatal(err)
			}
			if err := res.Metrics.WriteProm(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("metrics written to %s\n", *promPath)
		}
	}
	_ = units.Bytes(0)
}

func parseNodePolicy(s string) (exec.NodePolicy, error) {
	switch s {
	case "first-fit":
		return exec.NodeFirstFit, nil
	case "least-loaded":
		return exec.NodeLeastLoaded, nil
	case "round-robin":
		return exec.NodeRoundRobin, nil
	}
	return 0, fmt.Errorf("bbsim: unknown node policy %q", s)
}

func parseOrderPolicy(s string) (exec.OrderPolicy, error) {
	switch s {
	case "fifo":
		return exec.OrderFIFO, nil
	case "largest-work":
		return exec.OrderLargestWork, nil
	case "critical-path":
		return exec.OrderCriticalPath, nil
	}
	return 0, fmt.Errorf("bbsim: unknown order policy %q", s)
}

func loadPlatform(name string, nodes int) (platform.Config, error) {
	if cfg, ok := platform.Presets(nodes)[name]; ok {
		return cfg, nil
	}
	if _, err := os.Stat(name); err == nil {
		return platform.LoadConfig(name)
	}
	return platform.Config{}, fmt.Errorf("bbsim: unknown platform %q (not a preset, not a file)", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bbsim: %v\n", err)
	os.Exit(1)
}
