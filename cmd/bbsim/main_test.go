package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFlagValidation pins the usage errors for the trace-mode and workflow
// source flags: they must be rejected before any simulation runs.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no source", []string{}, "exactly one of -workflow or -gen"},
		{"both sources", []string{"-workflow", "a.json", "-gen", "chain:5"}, "exactly one of -workflow or -gen"},
		{"no-trace vs gantt", []string{"-gen", "chain:5", "-no-trace", "-gantt"}, "-no-trace is incompatible"},
		{"no-trace vs trace", []string{"-gen", "chain:5", "-no-trace", "-trace", "t.json"}, "-no-trace is incompatible"},
		{"trace-out without trace", []string{"-gen", "chain:5", "-trace-out", "jsonl"}, "-trace-out needs -trace"},
		{"trace-out vs gantt", []string{"-gen", "chain:5", "-trace", "t", "-trace-out", "csv", "-gantt"}, "-gantt needs the retained trace"},
		{"bad trace-out format", []string{"-gen", "chain:5", "-trace", "t", "-trace-out", "xml"}, "unknown -trace-out format"},
		{"sched vs workflow", []string{"-sched", "fcfs", "-workflow", "a.json"}, "-sched is incompatible"},
		{"sched vs gen", []string{"-sched", "fcfs", "-gen", "chain:5"}, "-sched is incompatible"},
		{"sched vs no-trace", []string{"-sched", "fcfs", "-no-trace"}, "-sched supports only the retained trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run(tc.args, &out, &errOut); code != 2 {
				t.Fatalf("run(%v) = %d, want 2 (stderr: %s)", tc.args, code, errOut.String())
			}
			if !strings.Contains(errOut.String(), tc.want) {
				t.Errorf("stderr = %q, want substring %q", errOut.String(), tc.want)
			}
		})
	}
}

// TestBadGenSpec: a malformed -gen spec is a runtime error (exit 1) with
// the generator's message.
func TestBadGenSpec(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-gen", "ring:10"}, &out, &errOut); code != 1 {
		t.Fatalf("run(-gen ring:10) = %d, want 1", code)
	}
}

// TestGenCountingRun: a generated workflow simulates end to end in counting
// mode and reports the kernel cost counters instead of a trace.
func TestGenCountingRun(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-gen", "chain:20", "-no-trace", "-fraction", "1", "-intermediates-bb"}, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	for _, want := range []string{"scale-chain-20 (20 tasks", "makespan:", "counting mode, no retained trace"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

// TestSchedCampaignRun: the -sched mode runs a synthetic campaign end to
// end, reports the outcome ledger, and writes trace and metrics artifacts.
func TestSchedCampaignRun(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "campaign.json")
	metricsPath := filepath.Join(dir, "campaign-metrics.json")
	args := []string{"-sched", "easy", "-platform", "cori-private", "-nodes", "16",
		"-sched-jobs", "200", "-sched-seed", "7",
		"-sched-fault-mean", "5000", "-sched-fault-budget", "3",
		"-trace", tracePath, "-metrics", metricsPath}
	var out, errOut strings.Builder
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	for _, want := range []string{"policy:    easy", "campaign:  200 jobs (synthetic, seed 7)",
		"outcomes:", "mean wait:", "makespan:", "trace written to", "metrics written to"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
	for _, p := range []string{tracePath, metricsPath} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		if err := json.Unmarshal(data, &v); err != nil {
			t.Errorf("%s is not JSON: %v", p, err)
		}
	}
}

// TestSchedCampaignSWF: the -sched-swf path parses an SWF trace into the
// campaign.
func TestSchedCampaignSWF(t *testing.T) {
	dir := t.TempDir()
	swf := filepath.Join(dir, "t.swf")
	lines := []string{
		"; SWF header comment",
		"1 0 0 120 2 -1 -1 2 300 -1 1 1 1 1 1 1 1 1",
		"2 60 0 240 1 -1 -1 1 600 -1 1 1 1 1 1 1 1 1",
	}
	if err := os.WriteFile(swf, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	args := []string{"-sched", "fcfs", "-platform", "summit", "-nodes", "4", "-sched-swf", swf}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "campaign:  2 jobs (SWF trace "+swf+")") {
		t.Errorf("stdout missing SWF campaign line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "2 completed, 0 failed, 0 rejected") {
		t.Errorf("stdout missing outcomes:\n%s", out.String())
	}
}

// TestGenStreamingRun: -trace-out writes one well-formed row per event and
// the summary output still appears (summaries are folded in every mode).
func TestGenStreamingRun(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"jsonl", "csv"} {
		path := filepath.Join(dir, "trace."+format)
		var out, errOut strings.Builder
		args := []string{"-gen", "forkjoin:30", "-trace", path, "-trace-out", format, "-fraction", "1"}
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("run(%s) = %d, want 0 (stderr: %s)", format, code, errOut.String())
		}
		if !strings.Contains(out.String(), "trace streamed to "+path) {
			t.Errorf("%s: stdout missing stream notice:\n%s", format, out.String())
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		lines := 0
		for sc.Scan() {
			line := sc.Text()
			if format == "jsonl" {
				var ev map[string]any
				if err := json.Unmarshal([]byte(line), &ev); err != nil {
					t.Fatalf("line %d is not JSON: %v", lines, err)
				}
			} else if lines == 0 && line != "time,kind,task,detail" {
				t.Fatalf("csv header = %q", line)
			}
			lines++
		}
		f.Close()
		// 30 tasks × at least ready+start+end events, plus transfers.
		if lines < 90 {
			t.Errorf("%s: only %d trace lines", format, lines)
		}
	}
}
