// Command bbplat exports the built-in platform presets as editable JSON or
// XML description files — the starting point for modeling a machine that
// is not Cori or Summit.
//
// Usage:
//
//	bbplat -preset summit -format xml           # one preset to stdout
//	bbplat -all -dir platforms                  # every preset, both formats
//	bbplat -preset cori-striped -nodes 16       # resized preset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bbwfsim/internal/platform"
)

func main() {
	var (
		preset = flag.String("preset", "", "preset name: cori-private, cori-striped, summit")
		format = flag.String("format", "json", "output format: json or xml")
		nodes  = flag.Int("nodes", 1, "node count")
		all    = flag.Bool("all", false, "write every preset in both formats into -dir")
		dir    = flag.String("dir", "platforms", "output directory for -all")
	)
	flag.Parse()

	presets := platform.Presets(*nodes)
	if *all {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		for name, cfg := range presets {
			if err := platform.SaveConfig(filepath.Join(*dir, name+".json"), cfg); err != nil {
				fatal(err)
			}
			if err := platform.SaveXML(filepath.Join(*dir, name+".xml"), cfg); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d presets (json + xml) to %s/\n", len(presets), *dir)
		return
	}

	cfg, ok := presets[*preset]
	if !ok {
		fmt.Fprintf(os.Stderr, "bbplat: unknown preset %q (want cori-private, cori-striped, summit)\n", *preset)
		os.Exit(2)
	}
	var (
		data []byte
		err  error
	)
	switch *format {
	case "json":
		data, err = platform.MarshalConfig(cfg)
	case "xml":
		data, err = platform.MarshalXML(cfg)
	default:
		err = fmt.Errorf("unknown format %q (want json or xml)", *format)
	}
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bbplat: %v\n", err)
	os.Exit(1)
}
