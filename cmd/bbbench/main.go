// Command bbbench maintains the repository's performance ledger. It runs a
// fixed suite of micro-benchmarks (the flow solver's hot paths), macro
// benchmarks (a full 1000Genomes simulation, a pressured-BB SWarp run with
// the adaptation layer off and on, a Quick campaign at -j 1 and
// at -j GOMAXPROCS), and an accuracy guardrail (the Fig. 10 average errors),
// then writes one BENCH_<n>.json snapshot. Committing a snapshot per
// performance PR makes the perf trajectory part of the repo's history, and
// the compare mode turns the latest snapshot into a CI regression gate.
//
// Usage:
//
//	bbbench                       # run the suite, write BENCH_<next>.json
//	bbbench -o my.json            # explicit output path ("-" for stdout)
//	bbbench -against BENCH_1.json # run, then fail on >20% ns/op regression
//	bbbench -against BENCH_1.json -tol 0.5
//	bbbench -repeat 3             # keep the fastest of 3 passes per entry
//
// Wall-clock numbers are machine-dependent by nature, so snapshots record
// GOMAXPROCS and the Go version alongside every result; the regression gate
// compares like with like only in CI, where hardware is stable. The
// simulated results themselves are deterministic — the accuracy entries and
// the zero-allocation probe must reproduce exactly on any machine.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"testing"

	"bbwfsim/internal/adapt"
	"bbwfsim/internal/analysis"
	"bbwfsim/internal/core"
	"bbwfsim/internal/experiments"
	"bbwfsim/internal/flow"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/service"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workloads"
)

// Snapshot is the BENCH_<n>.json schema.
type Snapshot struct {
	Schema     int    `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Jobs       int    `json:"jobs"` // worker count used by the parallel campaign entries

	// Benchmarks are wall-clock suite entries; ns_per_op is what the
	// compare mode gates on.
	Benchmarks []Bench `json:"benchmarks"`

	// CampaignSpeedup is serial ns/op over parallel ns/op for the Quick
	// 1000Genomes campaign — the tentpole's headline number. On a
	// single-core machine it sits near 1 by construction.
	CampaignSpeedup float64 `json:"campaign_speedup"`

	// Accuracy entries guard against perf work silently shifting simulated
	// results: the Fig. 10 average errors are bit-deterministic, so any
	// drift here is a correctness bug, not noise.
	Accuracy []Accuracy `json:"accuracy"`

	// FlowRecomputeAllocsPerOp is the steady-state allocation count of the
	// flow solver's rate recompute; the contract is exactly 0.
	FlowRecomputeAllocsPerOp float64 `json:"flow_recompute_allocs_per_op"`

	// TraceBytesRetained / TraceBytesCounting are the live heap bytes still
	// reachable from a finished 100k-task run's Result in retained vs.
	// counting trace mode. The suite fails outright if counting does not
	// stay under a fifth of retained — that ratio is the scale modes'
	// O(active tasks) memory contract, measured rather than asserted.
	TraceBytesRetained int64 `json:"trace_bytes_retained_100k"`
	TraceBytesCounting int64 `json:"trace_bytes_counting_100k"`
}

// Bench is one suite entry.
type Bench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Accuracy is one experiment-table accuracy entry.
type Accuracy struct {
	Table     string  `json:"table"`
	AvgErrPct float64 `json:"avg_err_pct"`
}

func main() {
	var (
		out     = flag.String("o", "", "output path (default: next free BENCH_<n>.json; \"-\" for stdout)")
		against = flag.String("against", "", "baseline BENCH_<n>.json to compare with; exit 1 on regression")
		tol     = flag.Float64("tol", 0.20, "allowed fractional ns/op growth vs the baseline")
		repeat  = flag.Int("repeat", 1, "benchmark passes per entry; the fastest is recorded (min-of-N damps host contention)")
	)
	flag.Parse()

	snap, err := runSuite(*repeat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bbbench: %v\n", err)
		os.Exit(1)
	}

	if err := writeSnapshot(snap, *out); err != nil {
		fmt.Fprintf(os.Stderr, "bbbench: %v\n", err)
		os.Exit(1)
	}

	if *against != "" {
		failures, err := compare(snap, *against, *tol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbbench: %v\n", err)
			os.Exit(1)
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "bbbench: REGRESSION: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bbbench: no regressions vs %s (tolerance %.0f%%)\n", *against, 100**tol)
	}
}

// runSuite executes every ledger entry. Each testing.Benchmark call
// self-calibrates its iteration count (~1 s per entry); with repeat > 1
// each entry runs that many full passes and the fastest one is recorded —
// wall-clock noise from a contended host only ever inflates a measurement,
// so the minimum is the best estimator of the code's true cost.
func runSuite(repeat int) (*Snapshot, error) {
	snap := &Snapshot{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs:       runtime.GOMAXPROCS(0),
	}

	// --- flow-solver micro-benchmarks (mirror internal/flow/bench_test.go).
	record := func(name string, fn func(b *testing.B)) testing.BenchmarkResult {
		r := testing.Benchmark(fn)
		for pass := 1; pass < repeat; pass++ {
			if cand := testing.Benchmark(fn); cand.NsPerOp() < r.NsPerOp() {
				r = cand
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, Bench{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
		fmt.Fprintf(os.Stderr, "bbbench: %-32s %12.0f ns/op %8d allocs/op\n",
			name, float64(r.NsPerOp()), r.AllocsPerOp())
		return r
	}

	record("flow/concurrent-256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.NewEngine()
			n := flow.NewNetwork(e)
			link := n.NewResource("link", 1000)
			disk := n.NewResource("disk", 800)
			done := 0
			for j := 0; j < 256; j++ {
				n.StartFlow(float64(100+j), []*flow.Resource{link, disk}, flow.Options{}, func() { done++ })
			}
			e.Run()
			if done != 256 {
				b.Fatalf("completed %d of 256 flows", done)
			}
		}
	})
	record("flow/sparse-platform-32n", func(b *testing.B) {
		const nodes = 32
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.NewEngine()
			n := flow.NewNetwork(e)
			links := make([]*flow.Resource, nodes)
			disks := make([]*flow.Resource, nodes)
			for j := 0; j < nodes; j++ {
				links[j] = n.NewResource("link", 1000)
				disks[j] = n.NewResource("disk", 800)
			}
			done := 0
			for j := 0; j < 4*nodes; j++ {
				src := j % nodes
				n.StartFlow(float64(100+j), []*flow.Resource{links[src], disks[(src+1)%nodes]}, flow.Options{}, func() { done++ })
			}
			e.Run()
			if done != 4*nodes {
				b.Fatalf("completed %d of %d flows", done, 4*nodes)
			}
		}
	})

	// --- static-analysis wall clock: a full module load plus the 12-rule
	// suite (call graph included). bbvet gates every CI run, so its own
	// cost is part of the repo's perf budget; the run doubles as a "module
	// is bbvet-clean" assertion from a second binary.
	record("analysis/bbvet-module", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			pkgs, err := analysis.LoadModule(".")
			if err != nil {
				b.Fatal(err)
			}
			if findings := analysis.Run(pkgs, analysis.Rules()); len(findings) > 0 {
				b.Fatalf("module not bbvet-clean: %d finding(s)", len(findings))
			}
		}
	})

	// --- 1000Genomes single run: the case-study configuration, full size.
	wf := genomes.MustNew(genomes.Params{Chromosomes: genomes.DefaultChromosomes})
	cfg, ok := platform.Presets(8)["cori-private"]
	if !ok {
		return nil, fmt.Errorf("platform preset cori-private missing")
	}
	record("genomes/single-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.MustNewSimulator(cfg).Run(wf, core.RunOptions{
				PrePlaceInputs: true, StagedFraction: 0.5,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- adaptation layer on/off: the same pressured-BB SWarp run with the
	// degradation engine disabled (overflow falls back to the PFS) vs.
	// enabled (pressure spill, replication, and admission control armed).
	// The pair prices the adaptation machinery's overhead per run.
	adWf := swarp.MustNew(swarp.Params{Pipelines: 4, CoresPerTask: 8})
	adCfg, ok := platform.Presets(2)["cori-private"]
	if !ok {
		return nil, fmt.Errorf("platform preset cori-private missing")
	}
	adCfg.BB.Capacity = units.Bytes(float64(placement.AllBB(adWf).BBBytes(adWf)) * 0.6)
	adaptRun := func(pol adapt.Policy) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.MustNewSimulator(adCfg).Run(adWf, core.RunOptions{
					Placement: placement.AllBB(adWf), BBFallback: true, Adapt: pol,
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	record("adapt/swarp-tight-off", adaptRun(adapt.Policy{}))
	record("adapt/swarp-tight-on", adaptRun(adapt.Policy{
		SpillHighWater: 0.7, SpillLowWater: 0.35,
		ReplicateOnFault: true, DegradedFallback: true,
	}))

	// --- scale ceiling: generated WfBench-style montage workflows in
	// counting mode with scratch-lifecycle management — the configuration
	// whose acceptance bar is "a million tasks in under a minute". Each
	// entry includes workflow generation, so the ledger prices the whole
	// `bbsim -gen` path, not just the kernel.
	scaleRun := func(tasks int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				swf, err := workloads.Scale(workloads.ScaleSpec{Topology: "montage", Tasks: tasks})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := core.MustNewSimulator(cfg).Run(swf, scaleRunOptions()); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	record("scale/100k-tasks", scaleRun(100_000))
	record("scale/1M-tasks", scaleRun(1_000_000))

	// --- bytes-retained probe: live heap held by a finished run's Result in
	// retained vs. counting mode, on the 100k-task workflow. The ratio is
	// the memory argument for the scale modes: counting must retain a small
	// fraction of what the full event log costs.
	retBytes, err := retainedBytes(cfg, trace.Retained)
	if err != nil {
		return nil, err
	}
	cntBytes, err := retainedBytes(cfg, trace.Counting)
	if err != nil {
		return nil, err
	}
	snap.TraceBytesRetained, snap.TraceBytesCounting = retBytes, cntBytes
	fmt.Fprintf(os.Stderr, "bbbench: %-32s %12d bytes retained / %d counting\n",
		"trace/100k-retained-bytes", snap.TraceBytesRetained, snap.TraceBytesCounting)
	if snap.TraceBytesCounting*5 >= snap.TraceBytesRetained {
		return nil, fmt.Errorf("counting mode retains %d bytes, more than 1/5 of retained mode's %d — the O(active tasks) contract is broken",
			snap.TraceBytesCounting, snap.TraceBytesRetained)
	}

	// --- simulation service: the bbsimd evaluation path cold vs. cached.
	// The pair prices the result cache's value proposition: a cold run pays
	// the full kernel, a hit pays one map lookup plus a byte-slice hand-off.
	// The hit entry's allocs/op doubles as a contract that serving a cached
	// result never re-encodes.
	svcReq := service.SeededRequest(7)
	svcHash, err := svcReq.CanonicalHash()
	if err != nil {
		return nil, fmt.Errorf("service request hash: %w", err)
	}
	record("service/cold-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := service.Execute(&svcReq); err != nil {
				b.Fatal(err)
			}
		}
	})
	svcCache := service.NewCache(16, nil)
	if _, _, err := svcCache.GetOrFill(context.Background(), svcHash, func() ([]byte, error) {
		return service.Execute(&svcReq)
	}); err != nil {
		return nil, fmt.Errorf("service cache warm-up: %w", err)
	}
	record("service/cache-hit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, hit, err := svcCache.GetOrFill(context.Background(), svcHash, func() ([]byte, error) {
				return nil, fmt.Errorf("cache miss on a warmed key")
			})
			if err != nil || !hit || len(data) == 0 {
				b.Fatalf("warmed key not served from cache (hit=%v err=%v)", hit, err)
			}
		}
	})

	// --- campaign wall-clock: the fig13 Quick sweep at -j 1 vs -j max.
	fig13, ok := experiments.Find("fig13")
	if !ok {
		return nil, fmt.Errorf("experiment fig13 missing")
	}
	campaign := func(jobs int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fig13.Run(experiments.Options{Quick: true, Seed: 1, Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	serial := record("campaign/fig13-quick-j1", campaign(1))
	// "jmax" rather than the numeric count: the name must be stable across
	// machines for the compare mode; the actual count is the "jobs" field.
	parallel := record("campaign/fig13-quick-jmax", campaign(snap.Jobs))
	if parallel.NsPerOp() > 0 {
		snap.CampaignSpeedup = float64(serial.NsPerOp()) / float64(parallel.NsPerOp())
	}

	// --- accuracy guardrail: Fig. 10 average errors (deterministic).
	fig10, ok := experiments.Find("fig10")
	if !ok {
		return nil, fmt.Errorf("experiment fig10 missing")
	}
	tables, err := fig10.Run(experiments.Options{Quick: true, Seed: 1})
	if err != nil {
		return nil, fmt.Errorf("fig10 accuracy run: %w", err)
	}
	for _, t := range tables {
		pct, ok := avgErr(t.Notes)
		if !ok {
			return nil, fmt.Errorf("table %s: no \"average error\" note to record", t.ID)
		}
		snap.Accuracy = append(snap.Accuracy, Accuracy{Table: t.ID, AvgErrPct: pct})
		fmt.Fprintf(os.Stderr, "bbbench: %-32s %11.1f%% avg err\n", t.ID, pct)
	}

	// --- allocation probe: the tentpole's zero-steady-state contract.
	snap.FlowRecomputeAllocsPerOp = flow.RecomputeAllocsPerRun()
	fmt.Fprintf(os.Stderr, "bbbench: flow recompute steady state    %8.1f allocs/op\n",
		snap.FlowRecomputeAllocsPerOp)
	return snap, nil
}

// scaleRunOptions is the scale-run configuration: counting trace plus
// scratch-lifecycle management (evict after last read, PFS fallback), which
// keeps both trace memory and BB occupancy O(active tasks).
func scaleRunOptions() core.RunOptions {
	return core.RunOptions{
		StagedFraction: 0.5, IntermediatesToBB: true, PrePlaceInputs: true,
		EvictAfterLastRead: true, BBFallback: true, TraceMode: trace.Counting,
	}
}

// retainedBytes runs the 100k-task montage workflow in the given trace mode
// and measures the live heap still reachable from its Result after a GC.
func retainedBytes(cfg platform.Config, mode trace.Mode) (int64, error) {
	wf, err := workloads.Scale(workloads.ScaleSpec{Topology: "montage", Tasks: 100_000})
	if err != nil {
		return 0, err
	}
	opts := scaleRunOptions()
	opts.TraceMode = mode
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := core.MustNewSimulator(cfg).Run(wf, opts)
	if err != nil {
		return 0, err
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	// Both snapshots must see the same live workflow, or the generator's
	// garbage drowns the signal and the delta goes negative.
	runtime.KeepAlive(wf)
	runtime.KeepAlive(res)
	return delta, nil
}

var avgErrRE = regexp.MustCompile(`average error: ([0-9.]+)%`)

// avgErr pulls the headline percentage out of a table's notes.
func avgErr(notes []string) (float64, bool) {
	for _, note := range notes {
		if m := avgErrRE.FindStringSubmatch(note); m != nil {
			v, err := strconv.ParseFloat(m[1], 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// writeSnapshot marshals snap to path, or to the next free BENCH_<n>.json
// when path is empty.
func writeSnapshot(snap *Snapshot, path string) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	if path == "" {
		path = nextLedgerPath(".")
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bbbench: wrote %s\n", path)
	return nil
}

var ledgerRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextLedgerPath picks BENCH_<n>.json with the smallest n not yet present.
func nextLedgerPath(dir string) string {
	next := 1
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if m := ledgerRE.FindStringSubmatch(e.Name()); m != nil {
				if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
					next = n + 1
				}
			}
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", next))
}

// compare gates the fresh snapshot against a committed baseline: any suite
// entry whose ns/op grew by more than tol fails, as does a nonzero
// allocation probe and any accuracy drift (accuracy is deterministic, so
// the tolerance there is zero).
func compare(snap *Snapshot, baselinePath string, tol float64) ([]string, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", baselinePath, err)
	}
	baseBench := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBench[b.Name] = b
	}
	var failures []string
	for _, b := range snap.Benchmarks {
		old, ok := baseBench[b.Name]
		if !ok || old.NsPerOp <= 0 {
			continue // new entry, or unusable baseline: nothing to gate on
		}
		if growth := b.NsPerOp/old.NsPerOp - 1; growth > tol {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.0f%%, tolerance %.0f%%)",
				b.Name, b.NsPerOp, old.NsPerOp, 100*growth, 100*tol))
		}
	}
	if snap.FlowRecomputeAllocsPerOp > 0 {
		failures = append(failures, fmt.Sprintf(
			"flow recompute allocates %.1f times per op in steady state; the contract is 0",
			snap.FlowRecomputeAllocsPerOp))
	}
	baseAcc := make(map[string]float64, len(base.Accuracy))
	for _, a := range base.Accuracy {
		baseAcc[a.Table] = a.AvgErrPct
	}
	for _, a := range snap.Accuracy {
		old, ok := baseAcc[a.Table]
		if !ok {
			continue
		}
		if diff := a.AvgErrPct - old; diff > 1e-9 || diff < -1e-9 {
			failures = append(failures, fmt.Sprintf(
				"%s: avg err %.4f%% vs baseline %.4f%% — simulated results are deterministic, this is a correctness change",
				a.Table, a.AvgErrPct, old))
		}
	}
	return failures, nil
}
