// Command bbexp regenerates the paper's tables and figures from the
// reproduction's simulator and synthetic testbed.
//
// Usage:
//
//	bbexp -exp fig4            # one experiment
//	bbexp -exp all             # everything, in paper order
//	bbexp -list                # list experiment IDs
//	bbexp -exp fig10 -reps 30  # more testbed repetitions
//	bbexp -exp all -quick      # reduced sweeps (smoke test)
//	bbexp -exp all -j 8        # fan runs across 8 workers (same output)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"bbwfsim/internal/experiments"
	"bbwfsim/internal/metrics"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID (see -list) or \"all\"")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		reps    = flag.Int("reps", 0, "testbed repetitions per configuration (default 15, paper's protocol)")
		seed    = flag.Int64("seed", 1, "base seed for testbed noise")
		quick   = flag.Bool("quick", false, "reduced sweeps and repetitions")
		out     = flag.String("o", "", "write output to file instead of stdout")
		format  = flag.String("format", "text", "output format: text or csv")
		wall    = flag.Bool("walltime", false, "add wall-clock columns to the scalability experiment (output no longer bit-reproducible)")
		jobs    = flag.Int("j", runtime.NumCPU(), "worker goroutines for independent simulation runs; output is bit-identical at any value (-j 1 = serial)")
		metPath = flag.String("metrics", "", "write the merged observability snapshot of the instrumented experiments to this JSON file (bit-identical at any -j)")
		recPol  = flag.String("recovery", "", "restrict the resilience-ckpt sweep to one recovery policy: lineage, ckpt-bb, ckpt-pfs, or ckpt-bb+drain")
		swf     = flag.String("swf", "", "replay the sched experiment's campaign from this SWF trace file instead of the synthetic generator")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "bbexp: -exp required (or -list); try -exp all")
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "bbexp: unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbexp: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "bbexp: unknown format %q (want text or csv)\n", *format)
		os.Exit(2)
	}
	opts := experiments.Options{Reps: *reps, Seed: *seed, Quick: *quick, Jobs: *jobs, Recovery: *recPol, SWF: *swf}
	var snaps []*metrics.Snapshot
	if *metPath != "" {
		// Each instrumented experiment hands over one merged snapshot; the
		// sink runs on the main goroutine (experiments call it after their
		// sweeps complete), and collection order is experiment order.
		opts.Metrics = func(s *metrics.Snapshot) { snaps = append(snaps, s) }
	}
	if *wall {
		// Experiments cannot read the wall clock themselves (bbvet's
		// no-walltime rule): the CLI injects it, keeping the default
		// output bit-identical across runs.
		start := time.Now()
		opts.Stopwatch = func() time.Duration { return time.Since(start) }
	}
	for _, e := range selected {
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *format == "csv" {
			for _, t := range tables {
				fmt.Fprintf(w, "# %s\n", t.ID)
				if err := t.CSV(w); err != nil {
					fmt.Fprintf(os.Stderr, "bbexp: %v\n", err)
					os.Exit(1)
				}
				fmt.Fprintln(w)
			}
			continue
		}
		fmt.Fprintf(w, "# %s — %s\n\n", e.ID, e.Title)
		for _, t := range tables {
			if err := t.Fprint(w); err != nil {
				fmt.Fprintf(os.Stderr, "bbexp: %v\n", err)
				os.Exit(1)
			}
		}
	}

	if *metPath != "" {
		merged := metrics.Merge(snaps)
		if merged == nil {
			fmt.Fprintf(os.Stderr, "bbexp: -metrics: none of the selected experiments are instrumented (fig10, fig11, fig13, fig14, resilience, resilience-genomes, resilience-ckpt, adaptive are)\n")
			os.Exit(1)
		}
		data, err := merged.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbexp: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bbexp: %v\n", err)
			os.Exit(1)
		}
	}
}
