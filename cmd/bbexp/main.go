// Command bbexp regenerates the paper's tables and figures from the
// reproduction's simulator and synthetic testbed.
//
// Usage:
//
//	bbexp -exp fig4            # one experiment
//	bbexp -exp all             # everything, in paper order
//	bbexp -list                # list experiment IDs
//	bbexp -exp fig10 -reps 30  # more testbed repetitions
//	bbexp -exp all -quick      # reduced sweeps (smoke test)
//	bbexp -exp all -j 8        # fan runs across 8 workers (same output)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"bbwfsim/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment ID (see -list) or \"all\"")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		reps   = flag.Int("reps", 0, "testbed repetitions per configuration (default 15, paper's protocol)")
		seed   = flag.Int64("seed", 1, "base seed for testbed noise")
		quick  = flag.Bool("quick", false, "reduced sweeps and repetitions")
		out    = flag.String("o", "", "write output to file instead of stdout")
		format = flag.String("format", "text", "output format: text or csv")
		wall   = flag.Bool("walltime", false, "add wall-clock columns to the scalability experiment (output no longer bit-reproducible)")
		jobs   = flag.Int("j", runtime.NumCPU(), "worker goroutines for independent simulation runs; output is bit-identical at any value (-j 1 = serial)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "bbexp: -exp required (or -list); try -exp all")
		os.Exit(2)
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "bbexp: unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbexp: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	if *format != "text" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "bbexp: unknown format %q (want text or csv)\n", *format)
		os.Exit(2)
	}
	opts := experiments.Options{Reps: *reps, Seed: *seed, Quick: *quick, Jobs: *jobs}
	if *wall {
		// Experiments cannot read the wall clock themselves (bbvet's
		// no-walltime rule): the CLI injects it, keeping the default
		// output bit-identical across runs.
		start := time.Now()
		opts.Stopwatch = func() time.Duration { return time.Since(start) }
	}
	for _, e := range selected {
		tables, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bbexp: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *format == "csv" {
			for _, t := range tables {
				fmt.Fprintf(w, "# %s\n", t.ID)
				if err := t.CSV(w); err != nil {
					fmt.Fprintf(os.Stderr, "bbexp: %v\n", err)
					os.Exit(1)
				}
				fmt.Fprintln(w)
			}
			continue
		}
		fmt.Fprintf(w, "# %s — %s\n\n", e.ID, e.Title)
		for _, t := range tables {
			if err := t.Fprint(w); err != nil {
				fmt.Fprintf(os.Stderr, "bbexp: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
