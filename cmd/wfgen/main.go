// Command wfgen generates workflow description files for the two workloads
// the paper studies.
//
// Usage:
//
//	wfgen -type swarp -pipelines 8 -cores 32 -o swarp.json
//	wfgen -type genomes -chromosomes 22 -o genomes.json
//	wfgen -type swarp -pipelines 1 -stats        # print stats only
package main

import (
	"flag"
	"fmt"
	"os"

	"bbwfsim/internal/genomes"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/workflow"
	"bbwfsim/internal/workloads"
)

func main() {
	var (
		typ        = flag.String("type", "swarp", "workload: swarp, genomes, chain, fork-join, reduce-tree, broadcast, random-layered, scale")
		scaleSpec  = flag.String("scale", "montage:100000", "scale: generator spec <topology>:<tasks>[:<width>]")
		pipelines  = flag.Int("pipelines", 1, "swarp: number of pipelines")
		cores      = flag.Int("cores", 32, "swarp: cores per compute task")
		chrom      = flag.Int("chromosomes", genomes.DefaultChromosomes, "genomes: chromosomes")
		slices     = flag.Int("slices", genomes.SlicesPerChromosome, "genomes: individuals tasks per chromosome")
		width      = flag.Int("width", 16, "patterns: width / leaves / chain length")
		smallFiles = flag.Bool("small-files", false, "patterns: many small files per edge instead of one large file")
		seed       = flag.Int64("seed", 42, "patterns: seed for random-layered")
		out        = flag.String("o", "", "output file (default stdout)")
		statsOnly  = flag.Bool("stats", false, "print workflow statistics instead of JSON")
	)
	flag.Parse()

	var (
		wf  *workflow.Workflow
		err error
	)
	regime := workloads.FewLarge
	if *smallFiles {
		regime = workloads.ManySmall
	}
	wp := workloads.Params{Regime: regime}
	switch *typ {
	case "swarp":
		wf, err = swarp.New(swarp.Params{Pipelines: *pipelines, CoresPerTask: *cores})
	case "genomes":
		wf, err = genomes.New(genomes.Params{Chromosomes: *chrom, Slices: *slices})
	case "chain":
		wf, err = workloads.Chain(*width, wp)
	case "fork-join":
		wf, err = workloads.ForkJoin(*width, wp)
	case "reduce-tree":
		wf, err = workloads.ReduceTree(*width, wp)
	case "broadcast":
		wf, err = workloads.Broadcast(*width, wp)
	case "random-layered":
		wf, err = workloads.RandomLayered(*seed, 4, *width, 0.3, wp)
	case "scale":
		var spec workloads.ScaleSpec
		if spec, err = workloads.ParseScaleSpec(*scaleSpec); err == nil {
			spec.Seed = *seed
			wf, err = workloads.Scale(spec)
		}
	default:
		err = fmt.Errorf("unknown workload type %q", *typ)
	}
	if err != nil {
		fatal(err)
	}

	if *statsOnly {
		st, err := wf.ComputeStats()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workflow:     %s\n", wf.Name())
		fmt.Printf("tasks:        %d (depth %d, max width %d)\n", st.Tasks, st.Depth, st.MaxParallel)
		fmt.Printf("files:        %d (%d inputs)\n", st.Files, st.InputFiles)
		fmt.Printf("footprint:    %v total, %v input (%.0f%%), %v intermediate\n",
			st.TotalBytes, st.InputBytes, 100*float64(st.InputBytes)/float64(st.TotalBytes), st.IntermedBytes)
		fmt.Printf("work:         %v\n", st.TotalWork)
		for _, name := range sortedKeys(st.TasksByName) {
			fmt.Printf("  %-20s %d\n", name, st.TasksByName[name])
		}
		return
	}

	data, err := workflow.Marshal(wf)
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d tasks, %d files)\n", *out, len(wf.Tasks()), len(wf.Files()))
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfgen: %v\n", err)
	os.Exit(1)
}
