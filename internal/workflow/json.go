package workflow

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"bbwfsim/internal/units"
)

// jsonWorkflow is the on-disk representation, a compact WfCommons-style
// schema: files carry sizes, tasks reference files by ID.
type jsonWorkflow struct {
	Name  string     `json:"name"`
	Files []jsonFile `json:"files"`
	Tasks []jsonTask `json:"tasks"`
}

type jsonFile struct {
	ID   string `json:"id"`
	Size string `json:"size"` // e.g. "32MiB" or a bare byte count
}

type jsonTask struct {
	ID       string   `json:"id"`
	Name     string   `json:"name,omitempty"`
	Kind     string   `json:"kind,omitempty"` // "compute" (default) or "stage-in"
	Work     float64  `json:"work,omitempty"` // sequential flops
	Cores    int      `json:"cores,omitempty"`
	Memory   float64  `json:"memory,omitempty"` // peak bytes
	Alpha    float64  `json:"alpha,omitempty"`
	LambdaIO float64  `json:"lambdaIO,omitempty"`
	Inputs   []string `json:"inputs,omitempty"`
	Outputs  []string `json:"outputs,omitempty"`
}

// Parse decodes a workflow from its JSON form.
func Parse(data []byte) (*Workflow, error) {
	var jw jsonWorkflow
	if err := json.Unmarshal(data, &jw); err != nil {
		return nil, fmt.Errorf("workflow: decode: %v", err)
	}
	w := New(jw.Name)
	for _, jf := range jw.Files {
		size, err := units.ParseBytes(jf.Size)
		if err != nil {
			return nil, fmt.Errorf("workflow: file %q: %v", jf.ID, err)
		}
		if _, err := w.AddFile(jf.ID, size); err != nil {
			return nil, err
		}
	}
	for _, jt := range jw.Tasks {
		if _, err := w.AddTask(TaskSpec{
			ID:       jt.ID,
			Name:     jt.Name,
			Kind:     Kind(jt.Kind),
			Work:     units.Flops(jt.Work),
			Cores:    jt.Cores,
			Memory:   units.Bytes(jt.Memory),
			Alpha:    jt.Alpha,
			LambdaIO: jt.LambdaIO,
			Inputs:   jt.Inputs,
			Outputs:  jt.Outputs,
		}); err != nil {
			return nil, err
		}
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// Marshal encodes the workflow as indented JSON.
func Marshal(w *Workflow) ([]byte, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	jw := jsonWorkflow{Name: w.name}
	for _, f := range w.files {
		jw.Files = append(jw.Files, jsonFile{
			ID:   f.id,
			Size: strconv.FormatFloat(float64(f.size), 'g', -1, 64),
		})
	}
	for _, t := range w.tasks {
		jt := jsonTask{
			ID:       t.id,
			Name:     t.name,
			Work:     float64(t.work),
			Cores:    t.cores,
			Memory:   float64(t.memory),
			Alpha:    t.alpha,
			LambdaIO: t.lambdaIO,
		}
		if t.kind != KindCompute {
			jt.Kind = string(t.kind)
		}
		for _, f := range t.inputs {
			jt.Inputs = append(jt.Inputs, f.id)
		}
		for _, f := range t.outputs {
			jt.Outputs = append(jt.Outputs, f.id)
		}
		jw.Tasks = append(jw.Tasks, jt)
	}
	return json.MarshalIndent(&jw, "", "  ")
}

// Load reads a workflow description file.
func Load(path string) (*Workflow, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workflow: %v", err)
	}
	return Parse(data)
}

// Save writes a workflow description file.
func Save(path string, w *Workflow) error {
	data, err := Marshal(w)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
