package workflow

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// FuzzParse is the native fuzz target for the JSON loader: whatever the
// input, Parse must return a validated workflow or an error — never panic.
// The seed corpus covers the interesting malformed shapes (cycles,
// duplicate IDs, dangling references, bad sizes, truncated JSON); `go test`
// replays it deterministically without the fuzz engine.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`{`,
		`null`,
		`[]`,
		`{"name":"ok","files":[{"id":"a","size":"1MiB"}],"tasks":[{"id":"t","work":1,"outputs":["a"]}]}`,
		// Duplicate file IDs.
		`{"name":"dup","files":[{"id":"a","size":"1"},{"id":"a","size":"2"}],"tasks":[]}`,
		// Duplicate task IDs.
		`{"name":"dup","files":[],"tasks":[{"id":"t"},{"id":"t"}]}`,
		// Two-task dependency cycle through files.
		`{"name":"cyc","files":[{"id":"a","size":"1"},{"id":"b","size":"1"}],` +
			`"tasks":[{"id":"t1","inputs":["a"],"outputs":["b"]},{"id":"t2","inputs":["b"],"outputs":["a"]}]}`,
		// Self-cycle: a task consuming its own output.
		`{"name":"self","files":[{"id":"a","size":"1"}],"tasks":[{"id":"t","inputs":["a"],"outputs":["a"]}]}`,
		// Dangling file reference.
		`{"name":"dangle","files":[],"tasks":[{"id":"t","inputs":["ghost"]}]}`,
		// Unparsable and negative sizes.
		`{"name":"size","files":[{"id":"a","size":"alot"}],"tasks":[]}`,
		`{"name":"size","files":[{"id":"a","size":"-5MiB"}],"tasks":[]}`,
		// Negative work / cores.
		`{"name":"neg","files":[],"tasks":[{"id":"t","work":-1}]}`,
		`{"name":"neg","files":[],"tasks":[{"id":"t","cores":-2}]}`,
		// Unknown task kind.
		`{"name":"kind","files":[],"tasks":[{"id":"t","kind":"teleport"}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := Parse(data)
		if err != nil {
			return
		}
		// Whatever parsed must survive a marshal/parse round trip.
		out, err := Marshal(w)
		if err != nil {
			t.Fatalf("Parse accepted a workflow Marshal rejects: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, out)
		}
	})
}

// TestParseSeededRandomDocs throws seeded randomly structured documents at
// Parse: random DAG-ish topologies with injected defects (cycles, duplicate
// IDs, dangling references, garbage sizes). Parse must classify each one —
// error or valid workflow — without panicking, and accepted workflows must
// validate.
func TestParseSeededRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for iter := 0; iter < 500; iter++ {
		doc := randomDoc(rng)
		raw, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		// Occasionally truncate or splice the raw bytes.
		switch rng.Intn(8) {
		case 0:
			raw = raw[:rng.Intn(len(raw)+1)]
		case 1:
			raw[rng.Intn(len(raw))] = byte(rng.Intn(256))
		}
		w, err := Parse(raw) // must not panic
		if err != nil {
			continue
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("iter %d: Parse returned an invalid workflow: %v\n%s", iter, err, raw)
		}
	}
}

// randomDoc builds a workflow document with seeded random structure and a
// seeded chance of each defect class.
func randomDoc(rng *rand.Rand) map[string]any {
	nFiles := rng.Intn(6)
	nTasks := rng.Intn(6)
	files := make([]map[string]any, 0, nFiles)
	for i := 0; i < nFiles; i++ {
		id := fmt.Sprintf("f%d", i)
		if rng.Intn(10) == 0 && i > 0 {
			id = "f0" // duplicate file ID
		}
		size := fmt.Sprintf("%dMiB", rng.Intn(100))
		switch rng.Intn(10) {
		case 0:
			size = "garbage"
		case 1:
			size = fmt.Sprintf("%d", -rng.Intn(1000))
		}
		files = append(files, map[string]any{"id": id, "size": size})
	}
	tasks := make([]map[string]any, 0, nTasks)
	for i := 0; i < nTasks; i++ {
		id := fmt.Sprintf("t%d", i)
		if rng.Intn(10) == 0 && i > 0 {
			id = "t0" // duplicate task ID
		}
		task := map[string]any{"id": id, "work": rng.Float64() * 1e9}
		var ins, outs []string
		for j := 0; j < rng.Intn(3); j++ {
			ins = append(ins, fmt.Sprintf("f%d", rng.Intn(nFiles+2))) // may dangle
		}
		for j := 0; j < rng.Intn(3); j++ {
			outs = append(outs, fmt.Sprintf("f%d", rng.Intn(nFiles+2)))
		}
		// Random producer/consumer edges over a small file pool freely
		// produce cycles and multi-producer conflicts; that is the point.
		if len(ins) > 0 {
			task["inputs"] = ins
		}
		if len(outs) > 0 {
			task["outputs"] = outs
		}
		tasks = append(tasks, task)
	}
	return map[string]any{"name": "fuzz", "files": files, "tasks": tasks}
}
