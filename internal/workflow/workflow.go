// Package workflow models scientific workflows as directed acyclic graphs:
// vertices are tasks, and edges are induced by the files tasks produce and
// consume, exactly as the paper's simulator defines its input ("the workflow
// description is a graph in which vertices are tasks and edges are induced
// by input/output files of these tasks").
//
// Each task carries its total sequential compute work (in flops, excluding
// I/O), an Amdahl non-parallelizable fraction, a requested core count, and
// the observed fraction of time spent in I/O (λ_io) used by the calibration
// model in internal/calib.
package workflow

import (
	"container/heap"
	"fmt"
	"sort"

	"bbwfsim/internal/units"
)

// Kind distinguishes ordinary compute tasks from data staging tasks.
type Kind string

const (
	// KindCompute is a normal task: read inputs, compute, write outputs.
	KindCompute Kind = "compute"
	// KindStageIn is a data staging task: it sequentially copies workflow
	// input files from long-term storage into the burst buffer, file by
	// file, as the paper's (always sequential) stage-in task does.
	KindStageIn Kind = "stage-in"
	// KindStageOut drains results back to long-term storage: it
	// sequentially copies its input files from wherever they live (usually
	// a burst buffer) to the PFS, completing the "staging in/out" cycle.
	KindStageOut Kind = "stage-out"
)

// File is a workflow data item.
type File struct {
	id        string
	size      units.Bytes
	index     int
	producer  *Task
	consumers []*Task
}

// ID returns the file's unique identifier.
func (f *File) ID() string { return f.id }

// Index returns the file's insertion index within its workflow — a dense
// 0..len(Files())-1 range, so per-file run state can live in slices instead
// of maps.
func (f *File) Index() int { return f.index }

// Size returns the file's size.
func (f *File) Size() units.Bytes { return f.size }

// Producer returns the task that writes this file, or nil for workflow
// inputs.
func (f *File) Producer() *Task { return f.producer }

// Consumers returns the tasks that read this file, in insertion order.
func (f *File) Consumers() []*Task { return f.consumers }

// IsInput reports whether the file is a workflow input (no producer).
func (f *File) IsInput() bool { return f.producer == nil }

// Task is a workflow vertex.
type Task struct {
	id       string
	name     string // category label, e.g. "resample"
	kind     Kind
	work     units.Flops
	cores    int
	memory   units.Bytes
	alpha    float64
	lambdaIO float64
	index    int // insertion order, for deterministic tie-breaking
	inputs   []*File
	outputs  []*File
	// parents and children are maintained incrementally by AddTask (not
	// lazily — workflows are shared across parallel campaign runs, so the
	// accessors must be read-only). Both stay sorted by insertion index.
	parents  []*Task
	children []*Task
}

// ID returns the task's unique identifier.
func (t *Task) ID() string { return t.id }

// Name returns the task's category label (several tasks share one name).
func (t *Task) Name() string { return t.name }

// Kind returns the task kind.
func (t *Task) Kind() Kind { return t.kind }

// Work returns the task's total sequential compute work, I/O excluded.
func (t *Task) Work() units.Flops { return t.work }

// Cores returns the task's requested core count.
func (t *Task) Cores() int { return t.cores }

// Memory returns the task's peak memory demand (0 = unconstrained).
func (t *Task) Memory() units.Bytes { return t.memory }

// Alpha returns the task's Amdahl non-parallelizable fraction.
func (t *Task) Alpha() float64 { return t.alpha }

// LambdaIO returns the observed fraction of execution time the task spends
// in I/O (λ_io in the paper), an annotation consumed by calibration.
func (t *Task) LambdaIO() float64 { return t.lambdaIO }

// Index returns the task's insertion index.
func (t *Task) Index() int { return t.index }

// Inputs returns the files the task reads.
func (t *Task) Inputs() []*File { return t.inputs }

// Outputs returns the files the task writes.
func (t *Task) Outputs() []*File { return t.outputs }

// InputBytes returns the total size of the task's inputs.
func (t *Task) InputBytes() units.Bytes {
	var total units.Bytes
	for _, f := range t.inputs {
		total += f.size
	}
	return total
}

// OutputBytes returns the total size of the task's outputs.
func (t *Task) OutputBytes() units.Bytes {
	var total units.Bytes
	for _, f := range t.outputs {
		total += f.size
	}
	return total
}

// Parents returns the distinct producers of the task's inputs, ordered by
// task insertion index. The slice is the task's own edge list — callers
// must not mutate it.
func (t *Task) Parents() []*Task { return t.parents }

// Children returns the distinct consumers of the task's outputs, ordered by
// task insertion index. The slice is the task's own edge list — callers
// must not mutate it.
func (t *Task) Children() []*Task { return t.children }

// TaskSpec describes a task to add to a workflow.
type TaskSpec struct {
	ID       string
	Name     string
	Kind     Kind        // defaults to KindCompute
	Work     units.Flops // total sequential compute work
	Cores    int         // requested cores, defaults to 1
	Memory   units.Bytes // peak memory demand, 0 = unconstrained
	Alpha    float64     // Amdahl non-parallelizable fraction
	LambdaIO float64     // observed I/O time fraction
	Inputs   []string    // file IDs, must exist
	Outputs  []string    // file IDs, must exist and be unproduced
}

// Workflow is a DAG of tasks and files.
type Workflow struct {
	name     string
	tasks    []*Task
	taskByID map[string]*Task
	files    []*File
	fileByID map[string]*File
}

// New returns an empty workflow.
func New(name string) *Workflow {
	return &Workflow{
		name:     name,
		taskByID: map[string]*Task{},
		fileByID: map[string]*File{},
	}
}

// Name returns the workflow name.
func (w *Workflow) Name() string { return w.name }

// Tasks returns all tasks in insertion order.
func (w *Workflow) Tasks() []*Task { return w.tasks }

// Files returns all files in insertion order.
func (w *Workflow) Files() []*File { return w.files }

// Task returns the task with the given ID, or nil.
func (w *Workflow) Task(id string) *Task { return w.taskByID[id] }

// File returns the file with the given ID, or nil.
func (w *Workflow) File(id string) *File { return w.fileByID[id] }

// AddFile registers a file.
func (w *Workflow) AddFile(id string, size units.Bytes) (*File, error) {
	if id == "" {
		return nil, fmt.Errorf("workflow: empty file ID")
	}
	if size < 0 {
		return nil, fmt.Errorf("workflow: file %q has negative size %v", id, size)
	}
	if _, dup := w.fileByID[id]; dup {
		return nil, fmt.Errorf("workflow: duplicate file ID %q", id)
	}
	f := &File{id: id, size: size, index: len(w.files)}
	w.fileByID[id] = f
	w.files = append(w.files, f)
	return f, nil
}

// MustAddFile is AddFile for generator code with known-good inputs.
func (w *Workflow) MustAddFile(id string, size units.Bytes) *File {
	f, err := w.AddFile(id, size)
	if err != nil {
		panic(err)
	}
	return f
}

// AddTask registers a task and wires it to its files. Every referenced file
// must already exist, and each file may have at most one producer.
func (w *Workflow) AddTask(spec TaskSpec) (*Task, error) {
	if spec.ID == "" {
		return nil, fmt.Errorf("workflow: empty task ID")
	}
	if _, dup := w.taskByID[spec.ID]; dup {
		return nil, fmt.Errorf("workflow: duplicate task ID %q", spec.ID)
	}
	if spec.Work < 0 {
		return nil, fmt.Errorf("workflow: task %q has negative work", spec.ID)
	}
	if spec.Alpha < 0 || spec.Alpha > 1 {
		return nil, fmt.Errorf("workflow: task %q has Amdahl fraction %g outside [0,1]", spec.ID, spec.Alpha)
	}
	if spec.LambdaIO < 0 || spec.LambdaIO >= 1 {
		return nil, fmt.Errorf("workflow: task %q has λ_io %g outside [0,1)", spec.ID, spec.LambdaIO)
	}
	kind := spec.Kind
	if kind == "" {
		kind = KindCompute
	}
	if kind != KindCompute && kind != KindStageIn && kind != KindStageOut {
		return nil, fmt.Errorf("workflow: task %q has unknown kind %q", spec.ID, kind)
	}
	cores := spec.Cores
	if cores == 0 {
		cores = 1
	}
	if cores < 0 {
		return nil, fmt.Errorf("workflow: task %q requests %d cores", spec.ID, cores)
	}
	if spec.Memory < 0 {
		return nil, fmt.Errorf("workflow: task %q requests negative memory", spec.ID)
	}
	t := &Task{
		id:       spec.ID,
		name:     spec.Name,
		kind:     kind,
		work:     spec.Work,
		cores:    cores,
		memory:   spec.Memory,
		alpha:    spec.Alpha,
		lambdaIO: spec.LambdaIO,
		index:    len(w.tasks),
	}
	if t.name == "" {
		t.name = t.id
	}
	seenIn := map[string]bool{}
	for _, id := range spec.Inputs {
		f := w.fileByID[id]
		if f == nil {
			return nil, fmt.Errorf("workflow: task %q reads unknown file %q", spec.ID, id)
		}
		if seenIn[id] {
			return nil, fmt.Errorf("workflow: task %q reads file %q twice", spec.ID, id)
		}
		seenIn[id] = true
		t.inputs = append(t.inputs, f)
	}
	seenOut := map[string]bool{}
	for _, id := range spec.Outputs {
		f := w.fileByID[id]
		if f == nil {
			return nil, fmt.Errorf("workflow: task %q writes unknown file %q", spec.ID, id)
		}
		if seenOut[id] {
			return nil, fmt.Errorf("workflow: task %q writes file %q twice", spec.ID, id)
		}
		if seenIn[id] {
			return nil, fmt.Errorf("workflow: task %q both reads and writes file %q", spec.ID, id)
		}
		if f.producer != nil {
			return nil, fmt.Errorf("workflow: file %q produced by both %q and %q", id, f.producer.id, spec.ID)
		}
		seenOut[id] = true
		t.outputs = append(t.outputs, f)
	}
	// All checks passed; commit, maintaining the dependency edge lists as
	// we go. t carries the largest index so far, so appending it to another
	// task's sorted list keeps that list sorted — and because only t is
	// appended during this call, "the reverse edge's last element is
	// already t" detects a duplicate pair in O(1), keeping AddTask linear
	// even for million-wide joins.
	for _, f := range t.inputs {
		f.consumers = append(f.consumers, t)
		if p := f.producer; p != nil {
			if n := len(p.children); n == 0 || p.children[n-1] != t {
				p.children = append(p.children, t)
				t.parents = append(t.parents, p)
			}
		}
	}
	sort.Slice(t.parents, func(i, j int) bool { return t.parents[i].index < t.parents[j].index })
	for _, f := range t.outputs {
		f.producer = t
		// Consumers registered before their producer: t becomes their
		// (largest-index) parent, and they become t's children.
		for _, c := range f.consumers {
			if n := len(c.parents); n == 0 || c.parents[n-1] != t {
				c.parents = append(c.parents, t)
				t.children = append(t.children, c)
			}
		}
	}
	sort.Slice(t.children, func(i, j int) bool { return t.children[i].index < t.children[j].index })
	w.taskByID[t.id] = t
	w.tasks = append(w.tasks, t)
	return t, nil
}

// MustAddTask is AddTask for generator code with known-good inputs.
func (w *Workflow) MustAddTask(spec TaskSpec) *Task {
	t, err := w.AddTask(spec)
	if err != nil {
		panic(err)
	}
	return t
}

// taskHeap is a min-heap of tasks by insertion index: the ready list of
// Kahn's algorithm.
type taskHeap []*Task

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return h[i].index < h[j].index }
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// TopologicalOrder returns the tasks in a deterministic topological order
// (Kahn's algorithm, ties broken by insertion index), or an error if the
// graph has a cycle. The ready list is a min-heap by index, so the whole
// walk is O((V+E) log V) at any workflow width — a million-wide fork-join
// stays tractable where a sorted-insert list would degrade to O(V²).
func (w *Workflow) TopologicalOrder() ([]*Task, error) {
	indegree := make([]int, len(w.tasks))
	ready := make(taskHeap, 0, len(w.tasks)/2+1)
	for _, t := range w.tasks {
		indegree[t.index] = len(t.parents)
		if len(t.parents) == 0 {
			ready = append(ready, t)
		}
	}
	heap.Init(&ready)
	order := make([]*Task, 0, len(w.tasks))
	for len(ready) > 0 {
		t := heap.Pop(&ready).(*Task)
		order = append(order, t)
		for _, c := range t.children {
			indegree[c.index]--
			if indegree[c.index] == 0 {
				heap.Push(&ready, c)
			}
		}
	}
	if len(order) != len(w.tasks) {
		return nil, fmt.Errorf("workflow %q: dependency cycle among %d tasks", w.name, len(w.tasks)-len(order))
	}
	return order, nil
}

// Validate checks structural invariants not enforced incrementally: the
// graph must be acyclic. (Unique IDs and single producers are enforced by
// AddFile/AddTask.)
func (w *Workflow) Validate() error {
	_, err := w.TopologicalOrder()
	return err
}

// Sources returns tasks with no parents, in insertion order.
func (w *Workflow) Sources() []*Task {
	var srcs []*Task
	for _, t := range w.tasks {
		if len(t.Parents()) == 0 {
			srcs = append(srcs, t)
		}
	}
	return srcs
}

// Sinks returns tasks with no children, in insertion order.
func (w *Workflow) Sinks() []*Task {
	var sinks []*Task
	for _, t := range w.tasks {
		if len(t.Children()) == 0 {
			sinks = append(sinks, t)
		}
	}
	return sinks
}

// Levels partitions tasks by depth: level 0 holds the sources, level k the
// tasks whose deepest parent is at level k-1.
func (w *Workflow) Levels() ([][]*Task, error) {
	order, err := w.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, len(order))
	max := 0
	for _, t := range order {
		d := 0
		for _, p := range t.parents {
			if depth[p.index]+1 > d {
				d = depth[p.index] + 1
			}
		}
		depth[t.index] = d
		if d > max {
			max = d
		}
	}
	levels := make([][]*Task, max+1)
	for _, t := range order {
		levels[depth[t.index]] = append(levels[depth[t.index]], t)
	}
	return levels, nil
}

// CriticalPath returns the longest path through the DAG where each task's
// weight is dur(task), along with its total duration.
func (w *Workflow) CriticalPath(dur func(*Task) float64) ([]*Task, float64, error) {
	order, err := w.TopologicalOrder()
	if err != nil {
		return nil, 0, err
	}
	finish := make([]float64, len(order))
	prev := make([]*Task, len(order))
	var last *Task
	best := 0.0
	for _, t := range order {
		start := 0.0
		for _, p := range t.parents {
			if finish[p.index] > start {
				start = finish[p.index]
				prev[t.index] = p
			}
		}
		finish[t.index] = start + dur(t)
		if finish[t.index] > best {
			best = finish[t.index]
			last = t
		}
	}
	var path []*Task
	for t := last; t != nil; t = prev[t.index] {
		path = append(path, t)
	}
	// Reverse into source-to-sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, best, nil
}

// Stats summarizes a workflow.
type Stats struct {
	Tasks         int
	Files         int
	InputFiles    int
	InputBytes    units.Bytes
	TotalBytes    units.Bytes // data footprint: sum of all file sizes
	TotalWork     units.Flops
	TasksByName   map[string]int
	MaxParallel   int // widest level
	Depth         int // number of levels
	SourceCount   int
	SinkCount     int
	EdgeCount     int         // task-to-task dependency edges (deduplicated)
	IntermedBytes units.Bytes // bytes of files that are produced and consumed
}

// ComputeStats walks the workflow once and summarizes it.
func (w *Workflow) ComputeStats() (Stats, error) {
	levels, err := w.Levels()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Tasks:       len(w.tasks),
		Files:       len(w.files),
		TasksByName: map[string]int{},
		Depth:       len(levels),
		SourceCount: len(w.Sources()),
		SinkCount:   len(w.Sinks()),
	}
	for _, lv := range levels {
		if len(lv) > s.MaxParallel {
			s.MaxParallel = len(lv)
		}
	}
	for _, f := range w.files {
		s.TotalBytes += f.size
		if f.IsInput() {
			s.InputFiles++
			s.InputBytes += f.size
		} else if len(f.consumers) > 0 {
			s.IntermedBytes += f.size
		}
	}
	for _, t := range w.tasks {
		s.TotalWork += t.work
		s.TasksByName[t.name]++
		s.EdgeCount += len(t.Parents())
	}
	return s, nil
}
