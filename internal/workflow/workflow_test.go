package workflow

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"bbwfsim/internal/units"
)

// diamond builds the classic 4-task diamond: a → (b, c) → d.
func diamond(t *testing.T) *Workflow {
	t.Helper()
	w := New("diamond")
	w.MustAddFile("in", 10*units.MiB)
	w.MustAddFile("ab", 1*units.MiB)
	w.MustAddFile("ac", 2*units.MiB)
	w.MustAddFile("bd", 3*units.MiB)
	w.MustAddFile("cd", 4*units.MiB)
	w.MustAddFile("out", 5*units.MiB)
	w.MustAddTask(TaskSpec{ID: "a", Work: 1e9, Inputs: []string{"in"}, Outputs: []string{"ab", "ac"}})
	w.MustAddTask(TaskSpec{ID: "b", Work: 2e9, Inputs: []string{"ab"}, Outputs: []string{"bd"}})
	w.MustAddTask(TaskSpec{ID: "c", Work: 3e9, Inputs: []string{"ac"}, Outputs: []string{"cd"}})
	w.MustAddTask(TaskSpec{ID: "d", Work: 4e9, Inputs: []string{"bd", "cd"}, Outputs: []string{"out"}})
	return w
}

func TestDiamondStructure(t *testing.T) {
	w := diamond(t)
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	a, b, c, d := w.Task("a"), w.Task("b"), w.Task("c"), w.Task("d")
	if got := a.Children(); len(got) != 2 || got[0] != b || got[1] != c {
		t.Errorf("a.Children() wrong: %v", ids(got))
	}
	if got := d.Parents(); len(got) != 2 || got[0] != b || got[1] != c {
		t.Errorf("d.Parents() wrong: %v", ids(got))
	}
	if got := w.Sources(); len(got) != 1 || got[0] != a {
		t.Errorf("Sources() wrong: %v", ids(got))
	}
	if got := w.Sinks(); len(got) != 1 || got[0] != d {
		t.Errorf("Sinks() wrong: %v", ids(got))
	}
	if !w.File("in").IsInput() {
		t.Error("file 'in' should be a workflow input")
	}
	if w.File("ab").IsInput() {
		t.Error("file 'ab' should not be a workflow input")
	}
	if w.File("ab").Producer() != a {
		t.Error("file 'ab' producer wrong")
	}
}

func ids(ts []*Task) []string {
	var out []string
	for _, t := range ts {
		out = append(out, t.ID())
	}
	return out
}

func TestTopologicalOrder(t *testing.T) {
	w := diamond(t)
	order, err := w.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, task := range order {
		pos[task.ID()] = i
	}
	if pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Errorf("topological order violated: %v", ids(order))
	}
	// Deterministic tie-break by insertion: b before c.
	if pos["b"] > pos["c"] {
		t.Errorf("tie-break not by insertion order: %v", ids(order))
	}
}

func TestLevels(t *testing.T) {
	w := diamond(t)
	levels, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 {
		t.Fatalf("got %d levels, want 3", len(levels))
	}
	if len(levels[0]) != 1 || levels[0][0].ID() != "a" {
		t.Errorf("level 0 = %v, want [a]", ids(levels[0]))
	}
	if len(levels[1]) != 2 {
		t.Errorf("level 1 = %v, want two tasks", ids(levels[1]))
	}
	if len(levels[2]) != 1 || levels[2][0].ID() != "d" {
		t.Errorf("level 2 = %v, want [d]", ids(levels[2]))
	}
}

func TestCriticalPath(t *testing.T) {
	w := diamond(t)
	// Weight each task by its work in Gflops: a=1, b=2, c=3, d=4.
	path, total, err := w.CriticalPath(func(task *Task) float64 {
		return float64(task.Work()) / 1e9
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-8) > 1e-12 { // a(1) + c(3) + d(4)
		t.Errorf("critical path length = %v, want 8", total)
	}
	want := []string{"a", "c", "d"}
	got := ids(path)
	if len(got) != len(want) {
		t.Fatalf("critical path = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("critical path = %v, want %v", got, want)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	w := New("cyclic")
	w.MustAddFile("x", 1)
	w.MustAddFile("y", 1)
	w.MustAddTask(TaskSpec{ID: "t1", Inputs: []string{"x"}, Outputs: []string{"y"}})
	w.MustAddTask(TaskSpec{ID: "t2", Inputs: []string{"y"}, Outputs: []string{"x"}})
	if err := w.Validate(); err == nil {
		t.Error("Validate accepted a cyclic workflow")
	}
}

func TestAddFileErrors(t *testing.T) {
	w := New("t")
	if _, err := w.AddFile("", 1); err == nil {
		t.Error("empty file ID accepted")
	}
	if _, err := w.AddFile("f", -1); err == nil {
		t.Error("negative size accepted")
	}
	w.MustAddFile("f", 1)
	if _, err := w.AddFile("f", 2); err == nil {
		t.Error("duplicate file ID accepted")
	}
}

func TestAddTaskErrors(t *testing.T) {
	w := New("t")
	w.MustAddFile("f", 1)
	w.MustAddFile("g", 1)
	w.MustAddTask(TaskSpec{ID: "p", Outputs: []string{"g"}})
	cases := []TaskSpec{
		{ID: ""},
		{ID: "p"}, // duplicate
		{ID: "x", Work: -1},
		{ID: "x", Alpha: -0.1},
		{ID: "x", Alpha: 1.5},
		{ID: "x", LambdaIO: 1.0},
		{ID: "x", LambdaIO: -0.2},
		{ID: "x", Cores: -2},
		{ID: "x", Kind: "teleport"},
		{ID: "x", Inputs: []string{"nope"}},
		{ID: "x", Outputs: []string{"nope"}},
		{ID: "x", Inputs: []string{"f", "f"}},
		{ID: "x", Outputs: []string{"g"}}, // already produced by p
		{ID: "x", Inputs: []string{"f"}, Outputs: []string{"f"}},
	}
	for i, spec := range cases {
		if _, err := w.AddTask(spec); err == nil {
			t.Errorf("case %d (%+v): invalid task accepted", i, spec)
		}
	}
	// Failed AddTask must not leave partial wiring behind.
	if len(w.File("f").Consumers()) != 0 {
		t.Error("failed AddTask left consumer wiring on file f")
	}
}

func TestTaskDefaults(t *testing.T) {
	w := New("t")
	task := w.MustAddTask(TaskSpec{ID: "only"})
	if task.Cores() != 1 {
		t.Errorf("default cores = %d, want 1", task.Cores())
	}
	if task.Kind() != KindCompute {
		t.Errorf("default kind = %v, want compute", task.Kind())
	}
	if task.Name() != "only" {
		t.Errorf("default name = %q, want task ID", task.Name())
	}
}

func TestInputOutputBytes(t *testing.T) {
	w := diamond(t)
	d := w.Task("d")
	if d.InputBytes() != 7*units.MiB {
		t.Errorf("d.InputBytes() = %v, want 7 MiB", d.InputBytes())
	}
	if d.OutputBytes() != 5*units.MiB {
		t.Errorf("d.OutputBytes() = %v, want 5 MiB", d.OutputBytes())
	}
}

func TestComputeStats(t *testing.T) {
	w := diamond(t)
	s, err := w.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Tasks != 4 || s.Files != 6 {
		t.Errorf("Tasks/Files = %d/%d, want 4/6", s.Tasks, s.Files)
	}
	if s.InputFiles != 1 || s.InputBytes != 10*units.MiB {
		t.Errorf("InputFiles/Bytes = %d/%v", s.InputFiles, s.InputBytes)
	}
	if s.TotalBytes != 25*units.MiB {
		t.Errorf("TotalBytes = %v, want 25 MiB", s.TotalBytes)
	}
	if s.IntermedBytes != 10*units.MiB { // ab+ac+bd+cd
		t.Errorf("IntermedBytes = %v, want 10 MiB", s.IntermedBytes)
	}
	if s.TotalWork != 10e9 {
		t.Errorf("TotalWork = %v, want 10 GFlop", s.TotalWork)
	}
	if s.MaxParallel != 2 || s.Depth != 3 {
		t.Errorf("MaxParallel/Depth = %d/%d, want 2/3", s.MaxParallel, s.Depth)
	}
	if s.EdgeCount != 4 {
		t.Errorf("EdgeCount = %d, want 4", s.EdgeCount)
	}
	if s.SourceCount != 1 || s.SinkCount != 1 {
		t.Errorf("Source/Sink = %d/%d, want 1/1", s.SourceCount, s.SinkCount)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := diamond(t)
	w.MustAddTask(TaskSpec{
		ID: "stage", Name: "stage_in", Kind: KindStageIn,
		Cores: 1, LambdaIO: 0.9, Outputs: []string{},
	})
	data, err := Marshal(w)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if back.Name() != w.Name() || len(back.Tasks()) != len(w.Tasks()) || len(back.Files()) != len(w.Files()) {
		t.Fatalf("round trip changed shape: %d tasks %d files", len(back.Tasks()), len(back.Files()))
	}
	for _, orig := range w.Tasks() {
		got := back.Task(orig.ID())
		if got == nil {
			t.Fatalf("task %q lost in round trip", orig.ID())
		}
		if got.Work() != orig.Work() || got.Cores() != orig.Cores() ||
			got.Alpha() != orig.Alpha() || got.LambdaIO() != orig.LambdaIO() ||
			got.Kind() != orig.Kind() || got.Name() != orig.Name() {
			t.Errorf("task %q fields changed in round trip", orig.ID())
		}
		if len(got.Inputs()) != len(orig.Inputs()) || len(got.Outputs()) != len(orig.Outputs()) {
			t.Errorf("task %q wiring changed in round trip", orig.ID())
		}
	}
	for _, f := range w.Files() {
		if back.File(f.ID()).Size() != f.Size() {
			t.Errorf("file %q size changed in round trip", f.ID())
		}
	}
}

func TestSaveLoad(t *testing.T) {
	path := t.TempDir() + "/wf.json"
	w := diamond(t)
	if err := Save(path, w); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(back.Tasks()) != 4 {
		t.Errorf("loaded %d tasks, want 4", len(back.Tasks()))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":"x","files":[{"id":"f","size":"huge"}]}`,
		`{"name":"x","files":[],"tasks":[{"id":"t","inputs":["ghost"]}]}`,
		`{"name":"x","files":[{"id":"a","size":"1"},{"id":"b","size":"1"}],
		  "tasks":[{"id":"t1","inputs":["a"],"outputs":["b"]},
		           {"id":"t2","inputs":["b"],"outputs":["a"]}]}`,
	}
	for i, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("case %d: Parse accepted invalid input", i)
		}
	}
}

// randomDAG builds a random layered DAG; edges only go from lower to higher
// task indices, so it is acyclic by construction.
func randomDAG(seed int64) *Workflow {
	rng := rand.New(rand.NewSource(seed))
	w := New("random")
	n := 2 + rng.Intn(40)
	for i := 0; i < n; i++ {
		id := "t" + strconv.Itoa(i)
		var inputs []string
		for j := 0; j < i; j++ {
			if rng.Intn(5) == 0 {
				inputs = append(inputs, "f"+strconv.Itoa(j))
			}
		}
		out := "f" + strconv.Itoa(i)
		w.MustAddFile(out, units.Bytes(1+rng.Intn(1000)))
		w.MustAddTask(TaskSpec{
			ID:      id,
			Work:    units.Flops(rng.Float64() * 1e12),
			Cores:   1 + rng.Intn(32),
			Inputs:  inputs,
			Outputs: []string{out},
		})
	}
	return w
}

// Property: random layered DAGs validate, their topological order respects
// every dependency, and level assignment is consistent with parents.
func TestRandomDAGInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := randomDAG(seed)
		order, err := w.TopologicalOrder()
		if err != nil {
			return false
		}
		pos := map[*Task]int{}
		for i, task := range order {
			pos[task] = i
		}
		for _, task := range w.Tasks() {
			for _, p := range task.Parents() {
				if pos[p] >= pos[task] {
					return false
				}
			}
		}
		levels, err := w.Levels()
		if err != nil {
			return false
		}
		depth := map[*Task]int{}
		for d, lv := range levels {
			for _, task := range lv {
				depth[task] = d
			}
		}
		for _, task := range w.Tasks() {
			want := 0
			for _, p := range task.Parents() {
				if depth[p]+1 > want {
					want = depth[p] + 1
				}
			}
			if depth[task] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: critical path length is at least the weight of any single task
// and at most the sum of all weights.
func TestCriticalPathBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := randomDAG(seed)
		dur := func(task *Task) float64 { return float64(task.Work()) }
		_, total, err := w.CriticalPath(dur)
		if err != nil {
			return false
		}
		var sum, max float64
		for _, task := range w.Tasks() {
			sum += dur(task)
			if dur(task) > max {
				max = dur(task)
			}
		}
		return total >= max-1e-9 && total <= sum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round trips preserve structure for random DAGs.
func TestJSONRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := randomDAG(seed)
		data, err := Marshal(w)
		if err != nil {
			return false
		}
		back, err := Parse(data)
		if err != nil {
			return false
		}
		if len(back.Tasks()) != len(w.Tasks()) || len(back.Files()) != len(w.Files()) {
			return false
		}
		for _, task := range w.Tasks() {
			b := back.Task(task.ID())
			if b == nil || len(b.Inputs()) != len(task.Inputs()) || b.Work() != task.Work() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTaskMemory(t *testing.T) {
	w := New("mem")
	task := w.MustAddTask(TaskSpec{ID: "m", Memory: 4 * units.GiB})
	if task.Memory() != 4*units.GiB {
		t.Errorf("Memory = %v, want 4 GiB", task.Memory())
	}
	if _, err := w.AddTask(TaskSpec{ID: "bad", Memory: -1}); err == nil {
		t.Error("negative memory accepted")
	}
	// Memory survives the JSON round trip.
	data, err := Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Task("m").Memory() != 4*units.GiB {
		t.Error("memory lost in JSON round trip")
	}
}
