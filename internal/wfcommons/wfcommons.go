// Package wfcommons reads and writes the WfCommons workflow-trace format
// (wfformat), the schema the WorkflowHub/WfCommons project publishes real
// workflow execution traces in. The paper's 1000Genomes case study starts
// from exactly such a trace ("we leverage execution traces of the
// 1000Genomes workflow obtained from the WorkflowHub project").
//
// The supported subset is the common core of wfformat 1.x: a workflow with
// a task list, each task carrying a name (category), a unique id, a
// measured runtime in seconds, a core count, and a file list with
// input/output links and sizes in bytes. Task dependencies are taken from
// the file graph (a consumer of a file depends on its producer); explicit
// parents/children arrays, when present, are validated against the file
// graph rather than trusted.
//
// Imported runtimes are converted to platform-independent work the same
// way the paper calibrates real observations: through Eq. 4 with a
// per-category λ_io and the reference machine's core speed (see Options).
package wfcommons

import (
	"encoding/json"
	"fmt"
	"os"

	"bbwfsim/internal/calib"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// Options controls the trace → workflow conversion.
type Options struct {
	// RefSpeed is the per-core speed of the machine the trace was
	// collected on; runtimes convert to work at this speed. Required.
	RefSpeed units.FlopRate
	// LambdaIO maps task categories to their observed I/O time fraction;
	// categories without an entry use DefaultLambdaIO. The conversion
	// applies Eq. 4: work = cores · (1 − λ) · runtime · RefSpeed.
	LambdaIO map[string]float64
	// DefaultLambdaIO applies to categories missing from LambdaIO.
	DefaultLambdaIO float64
	// Alpha maps task categories to Amdahl fractions for the generated
	// tasks (default 0, the paper's perfect-speedup assumption).
	Alpha map[string]float64
}

func (o *Options) validate() error {
	if o.RefSpeed <= 0 {
		return fmt.Errorf("wfcommons: RefSpeed must be positive, got %v", o.RefSpeed)
	}
	check := func(name string, v float64) error {
		if v < 0 || v >= 1 {
			return fmt.Errorf("wfcommons: λ_io %g for %q outside [0,1)", v, name)
		}
		return nil
	}
	if err := check("default", o.DefaultLambdaIO); err != nil {
		return err
	}
	for k, v := range o.LambdaIO {
		if err := check(k, v); err != nil {
			return err
		}
	}
	for k, v := range o.Alpha {
		if v < 0 || v > 1 {
			return fmt.Errorf("wfcommons: α %g for %q outside [0,1]", v, k)
		}
	}
	return nil
}

// Trace mirrors the wfformat JSON layout (supported subset).
type Trace struct {
	Name          string   `json:"name"`
	SchemaVersion string   `json:"schemaVersion,omitempty"`
	Workflow      Body     `json:"workflow"`
	Author        *Author  `json:"author,omitempty"`
	WMS           *WMSInfo `json:"wms,omitempty"`
}

// Author identifies the trace creator.
type Author struct {
	Name  string `json:"name,omitempty"`
	Email string `json:"email,omitempty"`
}

// WMSInfo identifies the workflow management system that ran the trace.
type WMSInfo struct {
	Name    string `json:"name,omitempty"`
	Version string `json:"version,omitempty"`
}

// Body is the workflow element.
type Body struct {
	Tasks []Task `json:"tasks"`
}

// Task is one trace task.
type Task struct {
	Name             string   `json:"name"`
	ID               string   `json:"id"`
	Category         string   `json:"category,omitempty"`
	RuntimeInSeconds float64  `json:"runtimeInSeconds"`
	Cores            int      `json:"cores,omitempty"`
	MemoryInBytes    float64  `json:"memoryInBytes,omitempty"`
	Files            []File   `json:"files,omitempty"`
	Parents          []string `json:"parents,omitempty"`
	Children         []string `json:"children,omitempty"`
}

// File is one file reference inside a task.
type File struct {
	Name        string  `json:"name"`
	SizeInBytes float64 `json:"sizeInBytes"`
	Link        string  `json:"link"` // "input" or "output"
}

// category returns the task's category label: the explicit category when
// present, else the name.
func (t *Task) category() string {
	if t.Category != "" {
		return t.Category
	}
	return t.Name
}

// Parse decodes a wfformat trace.
func Parse(data []byte) (*Trace, error) {
	var tr Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("wfcommons: decode: %v", err)
	}
	if len(tr.Workflow.Tasks) == 0 {
		return nil, fmt.Errorf("wfcommons: trace %q has no tasks", tr.Name)
	}
	return &tr, nil
}

// Load reads and decodes a trace file.
func Load(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wfcommons: %v", err)
	}
	return Parse(data)
}

// ToWorkflow converts the trace into a simulator workflow.
func (tr *Trace) ToWorkflow(opts Options) (*workflow.Workflow, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	w := workflow.New(tr.Name)

	// First pass: register every file once, checking size consistency.
	sizes := map[string]float64{}
	for _, t := range tr.Workflow.Tasks {
		for _, f := range t.Files {
			if f.Name == "" {
				return nil, fmt.Errorf("wfcommons: task %q has a file without a name", t.ID)
			}
			if f.SizeInBytes < 0 {
				return nil, fmt.Errorf("wfcommons: file %q has negative size", f.Name)
			}
			if prev, seen := sizes[f.Name]; seen {
				//bbvet:allow float-compare -- input validation: two declarations of one file must agree bit-for-bit; any drift is a corrupt instance
				if prev != f.SizeInBytes {
					return nil, fmt.Errorf("wfcommons: file %q has inconsistent sizes (%g vs %g)",
						f.Name, prev, f.SizeInBytes)
				}
				continue
			}
			sizes[f.Name] = f.SizeInBytes
			if _, err := w.AddFile(f.Name, units.Bytes(f.SizeInBytes)); err != nil {
				return nil, err
			}
		}
	}

	// Second pass: tasks. wfformat lists tasks in an arbitrary order, but
	// workflow.AddTask enforces single producers regardless of order, and
	// dependencies come from the file wiring.
	ids := map[string]bool{}
	for _, t := range tr.Workflow.Tasks {
		if t.ID == "" {
			return nil, fmt.Errorf("wfcommons: task %q has no id", t.Name)
		}
		if ids[t.ID] {
			return nil, fmt.Errorf("wfcommons: duplicate task id %q", t.ID)
		}
		ids[t.ID] = true
		if t.RuntimeInSeconds < 0 {
			return nil, fmt.Errorf("wfcommons: task %q has negative runtime", t.ID)
		}
		cat := t.category()
		lambda, ok := opts.LambdaIO[cat]
		if !ok {
			lambda = opts.DefaultLambdaIO
		}
		cores := t.Cores
		if cores <= 0 {
			cores = 1
		}
		obs := calib.Observation{
			TaskName: cat,
			Cores:    cores,
			Time:     t.RuntimeInSeconds,
			LambdaIO: lambda,
			Alpha:    0, // Eq. 4, as the paper calibrates
		}
		work, err := obs.Work(opts.RefSpeed)
		if err != nil {
			return nil, fmt.Errorf("wfcommons: task %q: %v", t.ID, err)
		}
		var inputs, outputs []string
		for _, f := range t.Files {
			switch f.Link {
			case "input":
				inputs = append(inputs, f.Name)
			case "output":
				outputs = append(outputs, f.Name)
			default:
				return nil, fmt.Errorf("wfcommons: task %q file %q has link %q (want input or output)",
					t.ID, f.Name, f.Link)
			}
		}
		if t.MemoryInBytes < 0 {
			return nil, fmt.Errorf("wfcommons: task %q has negative memory", t.ID)
		}
		if _, err := w.AddTask(workflow.TaskSpec{
			ID:       t.ID,
			Name:     cat,
			Work:     work,
			Cores:    cores,
			Memory:   units.Bytes(t.MemoryInBytes),
			Alpha:    opts.Alpha[cat],
			LambdaIO: lambda,
			Inputs:   inputs,
			Outputs:  outputs,
		}); err != nil {
			return nil, err
		}
	}

	if err := w.Validate(); err != nil {
		return nil, err
	}
	// Validate explicit parent links, when present, against the file
	// graph: every declared parent must actually produce an input.
	for _, t := range tr.Workflow.Tasks {
		if len(t.Parents) == 0 {
			continue
		}
		task := w.Task(t.ID)
		actual := map[string]bool{}
		for _, p := range task.Parents() {
			actual[p.ID()] = true
		}
		for _, pid := range t.Parents {
			if !actual[pid] {
				return nil, fmt.Errorf("wfcommons: task %q declares parent %q not implied by its files",
					t.ID, pid)
			}
		}
	}
	return w, nil
}

// FromWorkflow converts a simulator workflow back into a wfformat trace,
// predicting each task's runtime on the reference machine via the inverse
// calibration (calib.PredictTime).
func FromWorkflow(w *workflow.Workflow, refSpeed units.FlopRate) (*Trace, error) {
	if refSpeed <= 0 {
		return nil, fmt.Errorf("wfcommons: RefSpeed must be positive, got %v", refSpeed)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	tr := &Trace{
		Name:          w.Name(),
		SchemaVersion: "1.4",
		WMS:           &WMSInfo{Name: "bbwfsim"},
	}
	for _, t := range w.Tasks() {
		seq := float64(t.Work()) / float64(refSpeed)
		rt, err := calib.PredictTime(seq, t.Cores(), t.LambdaIO(), t.Alpha())
		if err != nil {
			return nil, fmt.Errorf("wfcommons: task %q: %v", t.ID(), err)
		}
		jt := Task{
			Name:             t.Name(),
			ID:               t.ID(),
			RuntimeInSeconds: rt,
			Cores:            t.Cores(),
			MemoryInBytes:    float64(t.Memory()),
		}
		for _, f := range t.Inputs() {
			jt.Files = append(jt.Files, File{Name: f.ID(), SizeInBytes: float64(f.Size()), Link: "input"})
		}
		for _, f := range t.Outputs() {
			jt.Files = append(jt.Files, File{Name: f.ID(), SizeInBytes: float64(f.Size()), Link: "output"})
		}
		for _, p := range t.Parents() {
			jt.Parents = append(jt.Parents, p.ID())
		}
		for _, c := range t.Children() {
			jt.Children = append(jt.Children, c.ID())
		}
		tr.Workflow.Tasks = append(tr.Workflow.Tasks, jt)
	}
	return tr, nil
}

// Marshal encodes the trace as indented JSON.
func (tr *Trace) Marshal() ([]byte, error) {
	return json.MarshalIndent(tr, "", "  ")
}

// Save writes the trace to a file.
func (tr *Trace) Save(path string) error {
	data, err := tr.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
