package wfcommons

import (
	"math"
	"testing"

	"bbwfsim/internal/genomes"
	"bbwfsim/internal/units"
)

const sampleTrace = `{
  "name": "toy-pipeline",
  "schemaVersion": "1.4",
  "workflow": {
    "tasks": [
      {
        "name": "split", "id": "ID01", "runtimeInSeconds": 10, "cores": 1,
        "files": [
          {"name": "input.dat", "sizeInBytes": 1000000, "link": "input"},
          {"name": "a.dat", "sizeInBytes": 400000, "link": "output"},
          {"name": "b.dat", "sizeInBytes": 600000, "link": "output"}
        ],
        "children": ["ID02", "ID03"]
      },
      {
        "name": "process", "id": "ID02", "runtimeInSeconds": 20, "cores": 4,
        "files": [
          {"name": "a.dat", "sizeInBytes": 400000, "link": "input"},
          {"name": "a.out", "sizeInBytes": 100000, "link": "output"}
        ],
        "parents": ["ID01"]
      },
      {
        "name": "process", "id": "ID03", "runtimeInSeconds": 22, "cores": 4,
        "files": [
          {"name": "b.dat", "sizeInBytes": 600000, "link": "input"},
          {"name": "b.out", "sizeInBytes": 150000, "link": "output"}
        ],
        "parents": ["ID01"]
      },
      {
        "name": "merge", "id": "ID04", "runtimeInSeconds": 5, "cores": 1,
        "files": [
          {"name": "a.out", "sizeInBytes": 100000, "link": "input"},
          {"name": "b.out", "sizeInBytes": 150000, "link": "input"},
          {"name": "final.out", "sizeInBytes": 50000, "link": "output"}
        ],
        "parents": ["ID02", "ID03"]
      }
    ]
  }
}`

var opts = Options{
	RefSpeed:        1 * units.GFlopPerSec,
	LambdaIO:        map[string]float64{"process": 0.25},
	DefaultLambdaIO: 0.1,
}

func TestParseAndConvert(t *testing.T) {
	tr, err := Parse([]byte(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "toy-pipeline" || len(tr.Workflow.Tasks) != 4 {
		t.Fatalf("trace shape wrong: %+v", tr)
	}
	w, err := tr.ToWorkflow(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tasks()) != 4 || len(w.Files()) != 6 {
		t.Fatalf("workflow shape wrong: %d tasks %d files", len(w.Tasks()), len(w.Files()))
	}
	// Dependencies from the file graph.
	merge := w.Task("ID04")
	if got := len(merge.Parents()); got != 2 {
		t.Errorf("merge parents = %d, want 2", got)
	}
	// Work via Eq. 4: process ID02 = 4 · (1−0.25) · 20 s · 1 GF/s.
	want := 4 * 0.75 * 20 * 1e9
	if got := float64(w.Task("ID02").Work()); math.Abs(got-want) > 1 {
		t.Errorf("ID02 work = %g, want %g", got, want)
	}
	// Default λ for unmapped categories: split = 1 · 0.9 · 10 · 1e9.
	if got := float64(w.Task("ID01").Work()); math.Abs(got-9e9) > 1 {
		t.Errorf("ID01 work = %g, want 9e9", got)
	}
	if w.Task("ID02").LambdaIO() != 0.25 {
		t.Errorf("λ not propagated")
	}
	if !w.File("input.dat").IsInput() {
		t.Error("input.dat should be a workflow input")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Parse([]byte(`{"name":"empty","workflow":{"tasks":[]}}`)); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestConvertValidation(t *testing.T) {
	tr, err := Parse([]byte(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	cases := []Options{
		{}, // no RefSpeed
		{RefSpeed: 1e9, DefaultLambdaIO: 1.0},
		{RefSpeed: 1e9, LambdaIO: map[string]float64{"x": -0.1}},
		{RefSpeed: 1e9, Alpha: map[string]float64{"x": 2}},
	}
	for i, o := range cases {
		if _, err := tr.ToWorkflow(o); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestBadTraces(t *testing.T) {
	cases := []string{
		// duplicate id
		`{"name":"x","workflow":{"tasks":[
		  {"name":"a","id":"T","runtimeInSeconds":1,"files":[]},
		  {"name":"b","id":"T","runtimeInSeconds":1,"files":[]}]}}`,
		// negative runtime
		`{"name":"x","workflow":{"tasks":[{"name":"a","id":"T","runtimeInSeconds":-1}]}}`,
		// inconsistent sizes
		`{"name":"x","workflow":{"tasks":[
		  {"name":"a","id":"T1","runtimeInSeconds":1,"files":[{"name":"f","sizeInBytes":10,"link":"output"}]},
		  {"name":"b","id":"T2","runtimeInSeconds":1,"files":[{"name":"f","sizeInBytes":20,"link":"input"}]}]}}`,
		// bad link
		`{"name":"x","workflow":{"tasks":[{"name":"a","id":"T","runtimeInSeconds":1,
		  "files":[{"name":"f","sizeInBytes":10,"link":"sideways"}]}]}}`,
		// two producers
		`{"name":"x","workflow":{"tasks":[
		  {"name":"a","id":"T1","runtimeInSeconds":1,"files":[{"name":"f","sizeInBytes":10,"link":"output"}]},
		  {"name":"b","id":"T2","runtimeInSeconds":1,"files":[{"name":"f","sizeInBytes":10,"link":"output"}]}]}}`,
		// declared parent not implied by files
		`{"name":"x","workflow":{"tasks":[
		  {"name":"a","id":"T1","runtimeInSeconds":1,"files":[]},
		  {"name":"b","id":"T2","runtimeInSeconds":1,"parents":["T1"],"files":[]}]}}`,
	}
	for i, c := range cases {
		tr, err := Parse([]byte(c))
		if err != nil {
			continue // parse-level rejection also fine
		}
		if _, err := tr.ToWorkflow(opts); err == nil {
			t.Errorf("case %d: bad trace converted", i)
		}
	}
}

func TestRoundTripThroughTraceFormat(t *testing.T) {
	// Export a generated 1000Genomes instance and re-import it.
	orig := genomes.MustNew(genomes.Params{Chromosomes: 2})
	speed := 36.80 * units.GFlopPerSec
	tr, err := FromWorkflow(orig, speed)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != orig.Name() || len(tr.Workflow.Tasks) != len(orig.Tasks()) {
		t.Fatalf("export shape wrong")
	}
	lambdas := map[string]float64{
		"individuals":       genomes.LambdaIndividuals,
		"individuals_merge": genomes.LambdaMerge,
		"sifting":           genomes.LambdaSifting,
		"populations":       genomes.LambdaPopulations,
		"mutation_overlap":  genomes.LambdaOverlap,
		"frequency":         genomes.LambdaFrequency,
	}
	back, err := tr.ToWorkflow(Options{RefSpeed: speed, LambdaIO: lambdas})
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tasks()) != len(orig.Tasks()) || len(back.Files()) != len(orig.Files()) {
		t.Fatalf("round trip changed shape")
	}
	// Work must survive the runtime round trip (PredictTime then Eq. 4).
	for _, task := range orig.Tasks() {
		b := back.Task(task.ID())
		if b == nil {
			t.Fatalf("task %q lost", task.ID())
		}
		if math.Abs(float64(b.Work()-task.Work())) > 1e-6*float64(task.Work()) {
			t.Errorf("task %q work changed: %v → %v", task.ID(), task.Work(), b.Work())
		}
		if len(b.Inputs()) != len(task.Inputs()) || len(b.Outputs()) != len(task.Outputs()) {
			t.Errorf("task %q wiring changed", task.ID())
		}
	}
}

func TestSaveLoad(t *testing.T) {
	orig := genomes.MustNew(genomes.Params{Chromosomes: 1})
	tr, err := FromWorkflow(orig, 36.80*units.GFlopPerSec)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.json"
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workflow.Tasks) != len(tr.Workflow.Tasks) {
		t.Error("save/load changed task count")
	}
	if _, err := Load(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFromWorkflowValidation(t *testing.T) {
	orig := genomes.MustNew(genomes.Params{Chromosomes: 1})
	if _, err := FromWorkflow(orig, 0); err == nil {
		t.Error("zero RefSpeed accepted")
	}
}

func TestMemoryInBytesRoundTrip(t *testing.T) {
	doc := `{"name":"m","workflow":{"tasks":[
	  {"name":"big","id":"T1","runtimeInSeconds":5,"cores":2,"memoryInBytes":8589934592,"files":[]}]}}`
	tr, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	w, err := tr.ToWorkflow(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Task("T1").Memory(); got != 8*units.GiB {
		t.Errorf("Memory = %v, want 8 GiB", got)
	}
	back, err := FromWorkflow(w, opts.RefSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workflow.Tasks[0].MemoryInBytes != 8589934592 {
		t.Error("memoryInBytes lost on export")
	}
	// Negative memory rejected.
	bad := `{"name":"m","workflow":{"tasks":[
	  {"name":"x","id":"T1","runtimeInSeconds":5,"memoryInBytes":-1,"files":[]}]}}`
	tr2, err := Parse([]byte(bad))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.ToWorkflow(opts); err == nil {
		t.Error("negative memoryInBytes accepted")
	}
}
