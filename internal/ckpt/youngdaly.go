package ckpt

import (
	"math"

	"bbwfsim/internal/units"
)

// This file implements the classic optimal-checkpoint-interval
// approximations the resilience-ckpt experiment reports as its reference
// column: Young's first-order formula and Daly's higher-order refinement.
// Both trade the overhead of checkpointing too often against the rework of
// checkpointing too rarely, given the checkpoint cost C (seconds to commit
// one snapshot) and the mean time between failures M.

// YoungInterval returns Young's first-order optimum W ≈ sqrt(2·C·M): the
// compute time between checkpoints that minimizes expected total runtime
// when C ≪ M. Non-positive inputs return 0 (no finite optimum).
func YoungInterval(cost, mtbf float64) float64 {
	if cost <= 0 || mtbf <= 0 {
		return 0
	}
	return math.Sqrt(2 * cost * mtbf)
}

// DalyInterval returns Daly's higher-order perturbation solution
//
//	W = sqrt(2·C·M)·[1 + (1/3)·sqrt(C/(2M)) + (1/9)·(C/(2M))] − C
//
// valid for C < 2M; for C ≥ 2M the optimum saturates at W = M. It refines
// Young's formula when the checkpoint cost is not negligible against the
// failure rate. Non-positive inputs return 0.
func DalyInterval(cost, mtbf float64) float64 {
	if cost <= 0 || mtbf <= 0 {
		return 0
	}
	if cost >= 2*mtbf {
		return mtbf
	}
	x := math.Sqrt(cost / (2 * mtbf))
	return math.Sqrt(2*cost*mtbf)*(1+x/3+x*x/9) - cost
}

// WriteCost estimates the time one checkpoint commit occupies the writing
// task: the target tier's fixed write latency plus the snapshot streaming
// at the given bandwidth (the single-stream rate the writer actually
// achieves, not the tier's aggregate). It is the C that feeds the interval
// formulas above.
func WriteCost(size units.Bytes, latency float64, bw units.Bandwidth) float64 {
	if bw <= 0 {
		return latency
	}
	return latency + size.Seconds(bw)
}
