package ckpt

import (
	"math"
	"strings"
	"testing"

	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

func TestPolicyValidate(t *testing.T) {
	cases := []struct {
		name    string
		p       Policy
		wantErr string // substring; empty means valid
	}{
		{"zero value disabled", Policy{}, ""},
		{"enabled bb", Policy{Interval: 60, Target: TargetBB}, ""},
		{"enabled pfs", Policy{Interval: 60, Target: TargetPFS}, ""},
		{"enabled default target", Policy{Interval: 60}, ""},
		{"enabled with drain", Policy{Interval: 60, Target: TargetBB, Drain: true, DrainDelay: 5}, ""},
		{"enabled with floor", Policy{Interval: 60, MinSize: units.GiB}, ""},
		{"negative interval", Policy{Interval: -1}, "interval must be positive"},
		{"target without interval", Policy{Target: TargetBB}, "without a positive interval"},
		{"drain without interval", Policy{Drain: true}, "without a positive interval"},
		{"size without interval", Policy{MinSize: units.GiB}, "without a positive interval"},
		{"unknown target", Policy{Interval: 60, Target: "tape"}, "unknown checkpoint target"},
		{"negative drain delay", Policy{Interval: 60, DrainDelay: -2}, "negative drain delay"},
		{"drain to pfs", Policy{Interval: 60, Target: TargetPFS, Drain: true}, "drain requires a burst-buffer target"},
		{"negative size fraction", Policy{Interval: 60, SizeFraction: -0.5}, "negative checkpoint size fraction"},
		{"negative size floor", Policy{Interval: 60, MinSize: -1}, "negative checkpoint size floor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestPolicyNormalized(t *testing.T) {
	p := Policy{Interval: 30}.Normalized()
	if p.Target != TargetBB {
		t.Errorf("default target = %q, want %q", p.Target, TargetBB)
	}
	if p.SizeFraction != 1 {
		t.Errorf("default size fraction = %g, want 1", p.SizeFraction)
	}
	if got := (Policy{}).Normalized(); got != (Policy{}) {
		t.Errorf("disabled policy normalized to %+v, want zero value", got)
	}
	// Explicit settings survive normalization.
	p = Policy{Interval: 30, Target: TargetPFS, SizeFraction: 0.25}.Normalized()
	if p.Target != TargetPFS || p.SizeFraction != 0.25 {
		t.Errorf("explicit settings overwritten: %+v", p)
	}
}

func TestSizeFor(t *testing.T) {
	wf := workflow.New("t")
	withMem, err := wf.AddTask(workflow.TaskSpec{ID: "a", Name: "a", Work: 1, Cores: 1, Memory: 8 * units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	noMem, err := wf.AddTask(workflow.TaskSpec{ID: "b", Name: "b", Work: 1, Cores: 1})
	if err != nil {
		t.Fatal(err)
	}

	p := Policy{Interval: 60, SizeFraction: 0.5}.Normalized()
	if got, want := p.SizeFor(withMem), 4*units.GiB; got != want {
		t.Errorf("SizeFor(withMem) = %v, want %v", got, want)
	}
	if got := p.SizeFor(noMem); got != 0 {
		t.Errorf("SizeFor(noMem) = %v, want 0 (not checkpointed)", got)
	}

	p.MinSize = 6 * units.GiB
	if got, want := p.SizeFor(withMem), 6*units.GiB; got != want {
		t.Errorf("floored SizeFor(withMem) = %v, want %v", got, want)
	}
	if got, want := p.SizeFor(noMem), 6*units.GiB; got != want {
		t.Errorf("SizeFor(noMem) with floor = %v, want %v", got, want)
	}
}

func TestYoungDalyIntervals(t *testing.T) {
	// Young's canonical example: C=60s, M=3600s → sqrt(2·60·3600) ≈ 657.3s.
	w := YoungInterval(60, 3600)
	if math.Abs(w-math.Sqrt(2*60*3600)) > 1e-12 {
		t.Errorf("YoungInterval(60,3600) = %g", w)
	}
	// Daly refines Young downward by roughly the checkpoint cost here.
	d := DalyInterval(60, 3600)
	if d <= 0 || d >= w {
		t.Errorf("DalyInterval(60,3600) = %g, want in (0, %g)", d, w)
	}
	// Expensive checkpoints saturate at the MTBF.
	if got := DalyInterval(100, 40); got != 40 {
		t.Errorf("DalyInterval(100,40) = %g, want 40 (saturated)", got)
	}
	// Degenerate inputs have no finite optimum.
	for _, f := range []float64{YoungInterval(0, 100), YoungInterval(100, 0), DalyInterval(-1, 100), DalyInterval(100, -1)} {
		if f != 0 {
			t.Errorf("degenerate interval = %g, want 0", f)
		}
	}
	// Both formulas grow with MTBF.
	if YoungInterval(60, 7200) <= w {
		t.Errorf("YoungInterval not monotone in MTBF")
	}
}

func TestWriteCost(t *testing.T) {
	if got := WriteCost(units.GiB, 0.5, units.Bandwidth(float64(units.GiB))); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("WriteCost = %g, want 1.5", got)
	}
	if got := WriteCost(units.GiB, 0.5, 0); got != 0.5 {
		t.Errorf("WriteCost with zero bandwidth = %g, want latency only", got)
	}
}
