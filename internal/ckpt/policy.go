// Package ckpt defines the task-level checkpoint/restart policy of the
// execution engine: which storage tier periodically receives progress
// snapshots of running compute tasks, how often, and whether burst-buffer
// checkpoints drain asynchronously to the PFS for durability. The policy is
// pure configuration — the engine (internal/exec) interprets it — plus the
// classic Young/Daly optimal-interval approximations the `resilience-ckpt`
// experiment uses as its reference column.
//
// The zero Policy disables checkpointing entirely; runs with a disabled
// policy take the exact same code paths as before the subsystem existed and
// produce bit-identical traces.
package ckpt

import (
	"fmt"

	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// Target selects the storage tier checkpoints are written to.
type Target string

const (
	// TargetBB writes checkpoints to the node's burst buffer: its on-node
	// BB on Summit-style platforms, the shared BB on Cori-style ones. It is
	// the default target of an enabled policy.
	TargetBB Target = "bb"
	// TargetPFS writes checkpoints directly to the parallel file system.
	// Slower, but durable against any node failure.
	TargetPFS Target = "pfs"
)

// Policy configures task-level checkpointing for one execution. A task
// with a positive checkpoint size (see SizeFor) writes a snapshot after
// every Interval seconds of compute progress; on a crash the task restarts
// from its newest surviving checkpoint instead of recomputing from scratch.
type Policy struct {
	// Interval is the compute time between checkpoints, in seconds. A
	// non-positive interval disables checkpointing (and every other field
	// must then be zero).
	Interval float64
	// Target is the tier checkpoints are written to (default TargetBB).
	Target Target
	// Drain asynchronously copies burst-buffer checkpoints to the PFS,
	// making them durable against the loss of the node that wrote them.
	// Only meaningful with TargetBB.
	Drain bool
	// DrainDelay postpones each drain copy by this many seconds after the
	// checkpoint commits (real drain agents batch lazily). Non-negative;
	// only read when Drain is set.
	DrainDelay float64
	// SizeFraction scales each task's checkpoint size from its memory
	// footprint: size = SizeFraction × Task.Memory(). Zero defaults to 1
	// (a full memory image, the classic checkpoint model).
	SizeFraction float64
	// MinSize is the checkpoint size floor, applied after SizeFraction.
	// Tasks without a declared memory footprint fall back to it entirely;
	// if it is also zero such tasks are not checkpointed.
	MinSize units.Bytes
}

// Enabled reports whether the policy checkpoints anything at all.
func (p Policy) Enabled() bool { return p.Interval > 0 }

// Validate rejects malformed policies: the zero value passes (disabled),
// an enabled policy needs a positive interval, a known target tier, and
// non-negative drain delay, size fraction, and size floor.
func (p Policy) Validate() error {
	if !p.Enabled() {
		if p.Interval < 0 {
			return fmt.Errorf("ckpt: checkpoint interval must be positive, got %g", p.Interval)
		}
		if p != (Policy{}) {
			return fmt.Errorf("ckpt: checkpoint policy configured without a positive interval")
		}
		return nil
	}
	switch p.Target {
	case "", TargetBB, TargetPFS:
	default:
		return fmt.Errorf("ckpt: unknown checkpoint target tier %q (want %q or %q)", p.Target, TargetBB, TargetPFS)
	}
	if p.DrainDelay < 0 {
		return fmt.Errorf("ckpt: negative drain delay %g", p.DrainDelay)
	}
	if p.Drain && p.Target == TargetPFS {
		return fmt.Errorf("ckpt: drain requires a burst-buffer target, not %q", TargetPFS)
	}
	if p.SizeFraction < 0 {
		return fmt.Errorf("ckpt: negative checkpoint size fraction %g", p.SizeFraction)
	}
	if p.MinSize < 0 {
		return fmt.Errorf("ckpt: negative checkpoint size floor %v", p.MinSize)
	}
	return nil
}

// Normalized fills the documented defaults of an enabled policy: target
// TargetBB, size fraction 1. Disabled policies pass through unchanged.
func (p Policy) Normalized() Policy {
	if !p.Enabled() {
		return p
	}
	if p.Target == "" {
		p.Target = TargetBB
	}
	if p.SizeFraction == 0 { //bbvet:allow float-compare -- zero is the documented "use default" sentinel, never a computed value
		p.SizeFraction = 1
	}
	return p
}

// SizeFor returns the checkpoint size of one task: SizeFraction of its
// memory footprint, floored at MinSize. Zero means the task is not
// checkpointed (no memory declared and no floor configured).
func (p Policy) SizeFor(t *workflow.Task) units.Bytes {
	size := t.Memory().Times(p.SizeFraction)
	if size < p.MinSize {
		size = p.MinSize
	}
	return size
}
