package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	c.Add(StorageBytesTotal, Key{Tier: "pfs", Op: OpRead}, 1)
	c.GaugeMax(StoragePeakBytes, Key{Service: "pfs"}, 1)
	c.Observe(StorageOpSeconds, Key{Tier: "pfs", Op: OpRead}, 1)
	if s := c.Snapshot(); s != nil {
		t.Fatalf("nil collector snapshot = %v, want nil", s)
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	build := func(order []string) *Snapshot {
		c := New("cori", "swarp")
		for _, tier := range order {
			c.Add(StorageBytesTotal, Key{Tier: tier, Op: OpRead}, 10)
			c.Add(StorageBytesTotal, Key{Tier: tier, Op: OpWrite}, 20)
		}
		c.GaugeMax(MakespanSeconds, Key{}, 42.5)
		c.Observe(StorageOpSeconds, Key{Tier: "pfs", Op: OpRead}, 0.05)
		return c.Snapshot()
	}
	a := build([]string{"pfs", "shared-bb"})
	b := build([]string{"shared-bb", "pfs"})
	ja, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("snapshots differ with insertion order:\n%s\nvs\n%s", ja, jb)
	}
	if len(a.Counters) != 4 {
		t.Fatalf("got %d counters, want 4", len(a.Counters))
	}
	for i := 1; i < len(a.Counters); i++ {
		p, q := a.Counters[i-1], a.Counters[i]
		if p.Family > q.Family || (p.Family == q.Family && q.Key.less(p.Key)) {
			t.Fatalf("counters not sorted at %d: %+v then %+v", i, p, q)
		}
	}
}

func TestCounterAndGaugeSemantics(t *testing.T) {
	c := New("p", "w")
	k := Key{Task: "resample", Phase: PhaseRead}
	c.Add(TaskPhaseSecondsTotal, k, 1.5)
	c.Add(TaskPhaseSecondsTotal, k, 2.5)
	c.GaugeMax(StoragePeakBytes, Key{Service: "bb"}, 10)
	c.GaugeMax(StoragePeakBytes, Key{Service: "bb"}, 5) // lower: ignored
	s := c.Snapshot()
	if got := s.Counter(TaskPhaseSecondsTotal, k); got != 4 {
		t.Fatalf("counter = %g, want 4", got)
	}
	if got, ok := s.Gauge(StoragePeakBytes, Key{Service: "bb"}); !ok || got != 10 {
		t.Fatalf("gauge = %g,%v, want 10,true", got, ok)
	}
	if _, ok := s.Gauge(StoragePeakBytes, Key{Service: "missing"}); ok {
		t.Fatal("absent gauge reported present")
	}
}

func TestHistogramBuckets(t *testing.T) {
	c := New("p", "w")
	k := Key{Tier: "pfs", Op: OpRead}
	// One observation per region: <=0.001, <=0.01, and +Inf.
	c.Observe(StorageOpSeconds, k, 0.001) // boundary lands in its bucket
	c.Observe(StorageOpSeconds, k, 0.002)
	c.Observe(StorageOpSeconds, k, 5000)
	s := c.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("got %d histograms, want 1", len(s.Histograms))
	}
	h := s.Histograms[0]
	if h.Count != 3 || h.Sum != 0.001+0.002+5000 {
		t.Fatalf("count=%d sum=%g", h.Count, h.Sum)
	}
	want := make([]uint64, len(DefaultBuckets)+1)
	want[0], want[1], want[len(want)-1] = 1, 1, 1
	for i := range want {
		if h.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, h.Buckets[i], want[i], h.Buckets)
		}
	}
}

func TestMerge(t *testing.T) {
	mk := func(tier string, bytes, peak float64) *Snapshot {
		c := New("cori", "swarp")
		c.Add(StorageBytesTotal, Key{Tier: tier, Op: OpRead}, bytes)
		c.GaugeMax(StoragePeakBytes, Key{Service: "bb"}, peak)
		c.Observe(StorageOpSeconds, Key{Tier: tier, Op: OpRead}, 0.5)
		return c.Snapshot()
	}
	a, b := mk("pfs", 100, 7), mk("pfs", 50, 9)
	m := Merge([]*Snapshot{a, nil, b})
	if m.Runs != 2 {
		t.Fatalf("runs = %d, want 2", m.Runs)
	}
	if got := m.Counter(StorageBytesTotal, Key{Tier: "pfs", Op: OpRead}); got != 150 {
		t.Fatalf("merged counter = %g, want 150", got)
	}
	if got, _ := m.Gauge(StoragePeakBytes, Key{Service: "bb"}); got != 9 {
		t.Fatalf("merged gauge = %g, want 9 (max)", got)
	}
	if m.Histograms[0].Count != 2 {
		t.Fatalf("merged histogram count = %d, want 2", m.Histograms[0].Count)
	}
	if m.Platform != "cori" || m.Workflow != "swarp" {
		t.Fatalf("platform/workflow = %q/%q", m.Platform, m.Workflow)
	}
	other := mk("pfs", 1, 1)
	other.Platform = "summit"
	if mm := Merge([]*Snapshot{a, other}); mm.Platform != "multi" {
		t.Fatalf("mixed-platform merge = %q, want multi", mm.Platform)
	}
	if Merge(nil) != nil || Merge([]*Snapshot{nil}) != nil {
		t.Fatal("merging nothing should return nil")
	}
}

func TestMergeMatchesSerialFold(t *testing.T) {
	// Index-ordered merge must equal a serial left fold byte-for-byte —
	// the property that makes -j N campaigns emit serial-identical bytes.
	snaps := make([]*Snapshot, 5)
	for i := range snaps {
		c := New("cori", "swarp")
		c.Add(TaskPhaseSecondsTotal, Key{Task: "t", Phase: PhaseRead}, 0.1*float64(i+1)/3)
		snaps[i] = c.Snapshot()
	}
	all := Merge(snaps)
	serial := snaps[0]
	for _, s := range snaps[1:] {
		serial = Merge([]*Snapshot{serial, s})
	}
	ja, _ := all.JSON()
	jb, _ := serial.JSON()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("pairwise fold differs from flat merge:\n%s\nvs\n%s", ja, jb)
	}
}

func TestWriteProm(t *testing.T) {
	c := New("cori", "swarp")
	c.Add(StorageBytesTotal, Key{Tier: "pfs", Op: OpRead}, 1024)
	c.Add(StorageBytesTotal, Key{Tier: "pfs", Op: OpWrite}, 2048)
	c.GaugeMax(MakespanSeconds, Key{}, 12.5)
	c.Observe(StorageOpSeconds, Key{Tier: "pfs", Op: OpRead}, 0.05)
	var buf bytes.Buffer
	if err := c.Snapshot().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE bbwfsim_storage_bytes_total counter\n",
		`bbwfsim_storage_bytes_total{tier="pfs",op="read"} 1024` + "\n",
		"# TYPE bbwfsim_makespan_seconds gauge\n",
		"bbwfsim_makespan_seconds 12.5\n",
		"# TYPE bbwfsim_storage_op_seconds histogram\n",
		`bbwfsim_storage_op_seconds_bucket{tier="pfs",op="read",le="0.1"} 1` + "\n",
		`bbwfsim_storage_op_seconds_bucket{tier="pfs",op="read",le="+Inf"} 1` + "\n",
		`bbwfsim_storage_op_seconds_count{tier="pfs",op="read"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE bbwfsim_storage_bytes_total"); n != 1 {
		t.Errorf("TYPE line repeated %d times", n)
	}
}

func TestDiff(t *testing.T) {
	mk := func(v float64, extra bool) *Snapshot {
		c := New("p", "w")
		c.Add(SimEventsTotal, Key{}, v)
		if extra {
			c.GaugeMax(MakespanSeconds, Key{}, 1)
		}
		return c.Snapshot()
	}
	if d := Diff(mk(5, false), mk(5, false)); len(d) != 0 {
		t.Fatalf("equal snapshots diff = %v", d)
	}
	d := Diff(mk(5, false), mk(6, true))
	if len(d) != 2 {
		t.Fatalf("diff = %v, want 2 lines", d)
	}
	if !strings.Contains(d[0], "sim_events_total") || !strings.Contains(d[0], "5 vs 6") {
		t.Errorf("unexpected diff line %q", d[0])
	}
	if !strings.Contains(d[1], "makespan_seconds") || !strings.Contains(d[1], "absent") {
		t.Errorf("unexpected diff line %q", d[1])
	}
}
