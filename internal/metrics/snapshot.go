package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
)

// Sample is one counter or gauge series with its value.
type Sample struct {
	Family string `json:"family"`
	Key
	Value float64 `json:"value"`
}

// Histogram is one rendered histogram series. Bucket bounds are the
// snapshot-level BucketBounds; Buckets[i] counts observations in
// (bounds[i-1], bounds[i]], with a final +Inf bucket.
type Histogram struct {
	Family string `json:"family"`
	Key
	Buckets []uint64 `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
}

// Snapshot is the immutable, deterministically ordered rendering of a
// Collector — the metrics artifact attached to core.Result, written by
// `bbsim -metrics`, and merged across campaign points. Series appear
// sorted by (family, key), so equal runs marshal to equal bytes.
type Snapshot struct {
	Platform string `json:"platform"`
	Workflow string `json:"workflow"`
	// Runs counts the executions merged into this snapshot (1 for a
	// single run).
	Runs         int         `json:"runs"`
	BucketBounds []float64   `json:"bucket_bounds"`
	Counters     []Sample    `json:"counters"`
	Gauges       []Sample    `json:"gauges"`
	Histograms   []Histogram `json:"histograms"`
}

// sortedSeries returns m's keys in deterministic order.
func sortedSeries[V any](m map[series]V) []series {
	out := make([]series, 0, len(m))
	//bbvet:ordered -- keys are sorted immediately below
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Snapshot renders the collector. The collector remains usable; the
// snapshot does not alias its state.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	s := &Snapshot{
		Platform:     c.platform,
		Workflow:     c.workflow,
		Runs:         1,
		BucketBounds: append([]float64{}, DefaultBuckets...),
	}
	for _, sr := range sortedSeries(c.counters) {
		s.Counters = append(s.Counters, Sample{Family: sr.family, Key: sr.key, Value: c.counters[sr]})
	}
	for _, sr := range sortedSeries(c.gauges) {
		s.Gauges = append(s.Gauges, Sample{Family: sr.family, Key: sr.key, Value: c.gauges[sr]})
	}
	for _, sr := range sortedSeries(c.hists) {
		h := c.hists[sr]
		s.Histograms = append(s.Histograms, Histogram{
			Family:  sr.family,
			Key:     sr.key,
			Buckets: append([]uint64{}, h.buckets...),
			Count:   h.count,
			Sum:     h.sum,
		})
	}
	return s
}

// Counter returns the value of one counter series (0 if absent).
func (s *Snapshot) Counter(family string, k Key) float64 {
	for _, c := range s.Counters {
		if c.Family == family && c.Key == k {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the value of one gauge series and whether it exists.
func (s *Snapshot) Gauge(family string, k Key) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Family == family && g.Key == k {
			return g.Value, true
		}
	}
	return 0, false
}

// JSON marshals the snapshot as indented JSON with a trailing newline —
// the byte representation the determinism acceptance tests compare.
func (s *Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Merge folds the snapshots in index order into one: counters and
// histogram buckets add, gauges keep their maximum, Runs accumulate.
// Because every float addition happens in slice-index order, merging the
// per-point snapshots of a campaign yields bit-identical bytes no matter
// how many workers produced them — the same contract internal/runner gives
// tables and traces. Nil entries are skipped; merging nothing returns nil.
func Merge(snaps []*Snapshot) *Snapshot {
	out := &Snapshot{BucketBounds: append([]float64{}, DefaultBuckets...)}
	counters := map[series]float64{}
	gauges := map[series]float64{}
	hists := map[series]*histogram{}
	var corder, gorder, horder []series
	any := false
	for _, sn := range snaps {
		if sn == nil {
			continue
		}
		if !any {
			out.Platform, out.Workflow = sn.Platform, sn.Workflow
			any = true
		} else {
			if out.Platform != sn.Platform {
				out.Platform = "multi"
			}
			if out.Workflow != sn.Workflow {
				out.Workflow = "multi"
			}
		}
		out.Runs += sn.Runs
		for _, c := range sn.Counters {
			sr := series{c.Family, c.Key}
			if _, ok := counters[sr]; !ok {
				corder = append(corder, sr)
			}
			counters[sr] += c.Value
		}
		for _, g := range sn.Gauges {
			sr := series{g.Family, g.Key}
			if cur, ok := gauges[sr]; !ok || g.Value > cur {
				if !ok {
					gorder = append(gorder, sr)
				}
				gauges[sr] = g.Value
			}
		}
		for _, h := range sn.Histograms {
			sr := series{h.Family, h.Key}
			acc := hists[sr]
			if acc == nil {
				acc = &histogram{buckets: make([]uint64, len(DefaultBuckets)+1)}
				hists[sr] = acc
				horder = append(horder, sr)
			}
			for i, b := range h.Buckets {
				acc.buckets[i] += b
			}
			acc.count += h.Count
			acc.sum += h.Sum
		}
	}
	if !any {
		return nil
	}
	sort.Slice(corder, func(i, j int) bool { return corder[i].less(corder[j]) })
	sort.Slice(gorder, func(i, j int) bool { return gorder[i].less(gorder[j]) })
	sort.Slice(horder, func(i, j int) bool { return horder[i].less(horder[j]) })
	for _, sr := range corder {
		out.Counters = append(out.Counters, Sample{Family: sr.family, Key: sr.key, Value: counters[sr]})
	}
	for _, sr := range gorder {
		out.Gauges = append(out.Gauges, Sample{Family: sr.family, Key: sr.key, Value: gauges[sr]})
	}
	for _, sr := range horder {
		h := hists[sr]
		out.Histograms = append(out.Histograms, Histogram{
			Family: sr.family, Key: sr.key,
			Buckets: h.buckets, Count: h.count, Sum: h.sum,
		})
	}
	return out
}

// labels renders the key as a Prometheus-style label block, or "" when
// every label is empty. Label order is fixed (tier, op, phase, task,
// service), so rendering is deterministic.
func (k Key) labels() string {
	pairs := ""
	add := func(name, v string) {
		if v == "" {
			return
		}
		if pairs != "" {
			pairs += ","
		}
		pairs += name + "=" + strconv.Quote(v)
	}
	add("tier", k.Tier)
	add("op", k.Op)
	add("phase", k.Phase)
	add("task", k.Task)
	add("service", k.Service)
	if pairs == "" {
		return ""
	}
	return "{" + pairs + "}"
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Diff lists the series whose values differ between two snapshots, one
// human-readable line per difference, in deterministic order — the
// programmatic counterpart of diffing two `bbsim -metrics` files.
func Diff(a, b *Snapshot) []string {
	var out []string
	type val struct {
		a, b float64
		inA  bool
		inB  bool
	}
	collect := func(samples []Sample, m map[series]*val, order *[]series, side int) {
		for _, s := range samples {
			sr := series{s.Family, s.Key}
			v := m[sr]
			if v == nil {
				v = &val{}
				m[sr] = v
				*order = append(*order, sr)
			}
			if side == 0 {
				v.a, v.inA = s.Value, true
			} else {
				v.b, v.inB = s.Value, true
			}
		}
	}
	for _, fam := range []struct {
		name string
		a, b []Sample
	}{
		{"counter", a.Counters, b.Counters},
		{"gauge", a.Gauges, b.Gauges},
	} {
		m := map[series]*val{}
		var order []series
		collect(fam.a, m, &order, 0)
		collect(fam.b, m, &order, 1)
		sort.Slice(order, func(i, j int) bool { return order[i].less(order[j]) })
		for _, sr := range order {
			v := m[sr]
			differs := v.a != v.b //bbvet:allow float-compare -- a diff tool must surface any bitwise difference, however small
			switch {
			case !v.inB:
				out = append(out, fmt.Sprintf("%s %s%s: %s vs (absent)", fam.name, sr.family, sr.key.labels(), formatValue(v.a)))
			case !v.inA:
				out = append(out, fmt.Sprintf("%s %s%s: (absent) vs %s", fam.name, sr.family, sr.key.labels(), formatValue(v.b)))
			case differs:
				out = append(out, fmt.Sprintf("%s %s%s: %s vs %s", fam.name, sr.family, sr.key.labels(), formatValue(v.a), formatValue(v.b)))
			}
		}
	}
	return out
}
