package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// promPrefix namespaces every exposed family, Prometheus-convention style.
const promPrefix = "bbwfsim_"

// errWriter folds the first write error so the exposition loop stays
// linear; every Fprintf below checks through it.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// WriteProm renders the snapshot in the Prometheus text exposition format
// (one # TYPE line per family, histograms as _bucket/_sum/_count with
// cumulative le bounds). The output is deterministic: series appear in
// snapshot order, which is sorted by (family, key).
func (s *Snapshot) WriteProm(w io.Writer) error {
	ew := &errWriter{w: w}
	writeScalar := func(samples []Sample, typ string) {
		last := ""
		for _, sm := range samples {
			if sm.Family != last {
				ew.printf("# TYPE %s%s %s\n", promPrefix, sm.Family, typ)
				last = sm.Family
			}
			ew.printf("%s%s%s %s\n", promPrefix, sm.Family, sm.labels(), formatValue(sm.Value))
		}
	}
	writeScalar(s.Counters, "counter")
	writeScalar(s.Gauges, "gauge")
	last := ""
	for _, h := range s.Histograms {
		if h.Family != last {
			ew.printf("# TYPE %s%s histogram\n", promPrefix, h.Family)
			last = h.Family
		}
		cum := uint64(0)
		for i, b := range h.Buckets {
			cum += b
			le := "+Inf"
			if i < len(s.BucketBounds) {
				le = formatValue(s.BucketBounds[i])
			}
			ew.printf("%s%s_bucket%s %d\n", promPrefix, h.Family, h.withLE(le), cum)
		}
		ew.printf("%s%s_sum%s %s\n", promPrefix, h.Family, h.labels(), formatValue(h.Sum))
		ew.printf("%s%s_count%s %d\n", promPrefix, h.Family, h.labels(), h.Count)
	}
	return ew.err
}

// withLE renders the histogram's labels with the cumulative-bucket le
// label appended, keeping the fixed label order.
func (h Histogram) withLE(le string) string {
	base := h.labels()
	quoted := "le=" + strconv.Quote(le)
	if base == "" {
		return "{" + quoted + "}"
	}
	return base[:len(base)-1] + "," + quoted + "}"
}
