// Package metrics is the simulator's deterministic observability layer:
// counters, gauges, and fixed-bucket histograms that describe one simulated
// execution — bytes moved per storage tier, virtual time spent per task
// phase, burst-buffer occupancy high-water marks, flow-solver work, fault
// and retry tallies.
//
// Everything here is driven exclusively by *virtual* time and deterministic
// event ordering: emission sites pass values derived from sim.Engine.Now,
// never from the wall clock (bbvet's metrics-virtual-time rule enforces
// this), and Snapshot renders every family sorted by family name and label
// key. Two runs of the same configuration therefore produce byte-identical
// snapshots, and snapshots themselves become comparable artifacts: CI diffs
// them, the invariant harness (internal/invariants) cross-checks them
// against traces, and campaign runners merge them in submission-index order
// so `-j N` output equals serial output bit for bit.
package metrics

// Metric family names. Counters end in _total; gauges and histograms do
// not. The constants keep emission sites, tests, and docs in sync.
const (
	// SimEventsTotal counts discrete events the kernel executed.
	SimEventsTotal = "sim_events_total"
	// SimQueuePeakEvents is the event queue's high-water mark (gauge).
	SimQueuePeakEvents = "sim_queue_peak_events"

	// FlowRecomputesTotal counts max-min fair rate recomputes.
	FlowRecomputesTotal = "flow_recomputes_total"
	// FlowFreezeRoundsTotal counts progressive-filling rounds across all
	// recomputes (the solver's inner-loop work metric).
	FlowFreezeRoundsTotal = "flow_freeze_rounds_total"
	// FlowFlowsTotal counts flows started on the network.
	FlowFlowsTotal = "flow_flows_total"

	// StorageBytesTotal counts bytes moved, labeled by tier and op.
	StorageBytesTotal = "storage_bytes_total"
	// StorageOpsTotal counts storage operations, labeled by tier and op.
	StorageOpsTotal = "storage_ops_total"
	// StorageOpSecondsTotal sums per-operation virtual durations (latency
	// included), labeled by tier and op.
	StorageOpSecondsTotal = "storage_op_seconds_total"
	// StorageOpSeconds is the fixed-bucket histogram of per-operation
	// virtual durations, labeled by tier and op.
	StorageOpSeconds = "storage_op_seconds"
	// StoragePeakBytes is the occupancy high-water mark of one storage
	// service (gauge, labeled by service name).
	StoragePeakBytes = "storage_peak_bytes"

	// TaskPhaseSecondsTotal sums virtual time per task category and phase
	// (read, compute, write, stage-in, stage-out), committed once per task
	// completion.
	TaskPhaseSecondsTotal = "task_phase_seconds_total"
	// TaskWaitSecondsTotal sums ready-to-start waiting time per category.
	TaskWaitSecondsTotal = "task_wait_seconds_total"
	// TaskAbortedSecondsTotal sums the partial virtual time of attempts a
	// fault aborted mid-flight, per category (zero on fault-free runs).
	TaskAbortedSecondsTotal = "task_aborted_seconds_total"
	// TasksCompletedTotal counts task completions per category; lineage
	// re-execution can push it above the task count.
	TasksCompletedTotal = "tasks_completed_total"

	// Fault tallies (PR 2), folded in from the trace.
	FaultTaskFailuresTotal   = "fault_task_failures_total"
	FaultRetriesTotal        = "fault_retries_total"
	FaultNodeFailuresTotal   = "fault_node_failures_total"
	FaultBBRejectionsTotal   = "fault_bb_rejections_total"
	FaultFallbacksTotal      = "fault_fallbacks_total"
	FaultDegradeWindowsTotal = "fault_degrade_windows_total"

	// Task-level checkpoint/restart families (internal/ckpt policy).
	// CkptBytesTotal counts checkpoint bytes moved, labeled by tier and op
	// (write = commits and drain copies, read = restores and drain
	// sources). A strict subset of StorageBytesTotal: checkpoint I/O flows
	// through the same storage manager as workflow I/O.
	CkptBytesTotal = "ckpt_bytes_total"
	// CkptOverheadSecondsTotal sums the virtual time tasks spent blocked on
	// checkpoint commits (op write) and restore reads (op read), by tier.
	CkptOverheadSecondsTotal = "ckpt_overhead_seconds_total"
	// CkptRecoveredSecondsTotal sums the compute seconds restarts recovered
	// from checkpoints instead of re-executing, by the tier restored from.
	CkptRecoveredSecondsTotal = "ckpt_recovered_seconds_total"
	// ComputeExecutedSecondsTotal sums the compute seconds actually
	// executed per task category — completed segments plus the in-flight
	// portion of aborted ones, minus checkpoint-recovered time. On a
	// fault-free run it equals the compute phase total; under faults the
	// excess over the fault-free value is the re-executed compute.
	ComputeExecutedSecondsTotal = "compute_executed_seconds_total"
	// Checkpoint event tallies, folded in from the trace like the fault
	// families (always emitted, zero without a checkpoint policy).
	CkptCommitsTotal  = "ckpt_commits_total"
	CkptDrainsTotal   = "ckpt_drains_total"
	CkptLossesTotal   = "ckpt_losses_total"
	CkptRestartsTotal = "ckpt_restarts_total"

	// AdaptBytesTotal counts bytes the adaptation layer moved, labeled by
	// tier and op (OpSpill for BB→PFS pressure spills, OpReplicate for
	// fault-aware replication copies). The underlying flows also appear in
	// StorageBytesTotal under the regular read/write ops.
	AdaptBytesTotal = "adapt_bytes_total"
	// Adaptation event tallies, folded in from the trace like the fault and
	// checkpoint families (always emitted, zero without an adapt policy).
	AdaptSpillsTotal       = "adapt_spills_total"
	AdaptReplicationsTotal = "adapt_replications_total"
	AdaptFallbacksTotal    = "adapt_fallbacks_total"

	// Batch-scheduler families (internal/sched). SchedJobsTotal counts
	// jobs by terminal outcome (Op label: submitted, completed, failed,
	// rejected).
	SchedJobsTotal = "sched_jobs_total"
	// SchedWaitSecondsTotal sums submit→start waiting time over completed
	// jobs, committed in completion order.
	SchedWaitSecondsTotal = "sched_wait_seconds_total"
	// SchedResponseSecondsTotal sums submit→end response time over
	// completed jobs.
	SchedResponseSecondsTotal = "sched_response_seconds_total"
	// SchedSlowdownTotal sums bounded slowdown (threshold 10 s) over
	// completed jobs.
	SchedSlowdownTotal = "sched_bounded_slowdown_total"
	// SchedWaitSeconds is the fixed-bucket histogram of per-job waits.
	SchedWaitSeconds = "sched_wait_seconds"
	// SchedNodesPeak and SchedBBPeakBytes are the cluster's concurrent
	// node-allocation and BB-reservation high-water marks (gauges).
	SchedNodesPeak   = "sched_nodes_peak"
	SchedBBPeakBytes = "sched_bb_peak_bytes"

	// MakespanSeconds is the run's makespan (gauge; campaign merges keep
	// the maximum).
	MakespanSeconds = "makespan_seconds"

	// Simulation-service families (cmd/bbsimd). Unlike every family above
	// these measure the serving process, not the simulated world: bbsimd
	// keeps live atomics and renders them through a throwaway Collector on
	// each /metrics scrape. ServiceRequestsTotal counts accepted requests
	// by endpoint (Op label: run, campaign).
	ServiceRequestsTotal = "service_requests_total"
	// ServiceCacheHitsTotal counts requests answered from the
	// content-addressed result cache.
	ServiceCacheHitsTotal = "service_cache_hits_total"
	// ServiceShedsTotal counts requests rejected 429 by admission control.
	ServiceShedsTotal = "service_sheds_total"
	// ServicePanicsTotal counts worker panics converted to structured 500s.
	ServicePanicsTotal = "service_panics_total"
	// ServiceDeadlineKillsTotal counts requests cancelled at their
	// deadline (504).
	ServiceDeadlineKillsTotal = "service_deadline_kills_total"
	// ServiceQueueDepth and ServiceInFlight are point-in-time gauges of
	// the admission queue and executing-request counts.
	ServiceQueueDepth = "service_queue_depth"
	ServiceInFlight   = "service_in_flight"
)

// Outcome label values (Key.Op) for SchedJobsTotal.
const (
	OutcomeSubmitted = "submitted"
	OutcomeCompleted = "completed"
	OutcomeFailed    = "failed"
	OutcomeRejected  = "rejected"
)

// Phase label values for TaskPhaseSecondsTotal.
const (
	PhaseRead     = "read"
	PhaseCompute  = "compute"
	PhaseWrite    = "write"
	PhaseStageIn  = "stage-in"
	PhaseStageOut = "stage-out"
)

// Op label values for the storage families.
const (
	OpRead  = "read"
	OpWrite = "write"
)

// Op label values for AdaptBytesTotal.
const (
	OpSpill     = "spill"
	OpReplicate = "replicate"
)

// DefaultBuckets are the fixed upper bounds (seconds) of every duration
// histogram; an implicit +Inf bucket follows the last bound. The set is
// fixed — not per-run adaptive — so histograms from different runs merge
// bucket-by-bucket.
var DefaultBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000}

// Key is the label set of one series. Unused labels stay empty and are
// omitted from rendered output; the populated fields depend on the family
// (e.g. Tier+Op for storage traffic, Task+Phase for the phase profiler).
type Key struct {
	Tier    string `json:"tier,omitempty"`    // storage tier: pfs, shared-bb, node-bb
	Op      string `json:"op,omitempty"`      // read or write
	Phase   string `json:"phase,omitempty"`   // task phase
	Task    string `json:"task,omitempty"`    // task category name
	Service string `json:"service,omitempty"` // individual service name, e.g. "bb@node003"
}

// less orders keys deterministically (field by field, declaration order).
func (k Key) less(o Key) bool {
	if k.Tier != o.Tier {
		return k.Tier < o.Tier
	}
	if k.Op != o.Op {
		return k.Op < o.Op
	}
	if k.Phase != o.Phase {
		return k.Phase < o.Phase
	}
	if k.Task != o.Task {
		return k.Task < o.Task
	}
	return k.Service < o.Service
}

// series identifies one time series: a family plus its label key.
type series struct {
	family string
	key    Key
}

func (s series) less(o series) bool {
	if s.family != o.family {
		return s.family < o.family
	}
	return s.key.less(o.key)
}

// histogram is the mutable accumulator behind one histogram series.
type histogram struct {
	buckets []uint64 // len(DefaultBuckets)+1; last is +Inf
	count   uint64
	sum     float64
}

// Collector accumulates one run's metrics. All methods are nil-safe no-ops
// on a nil receiver, so instrumented layers need no "is observability on"
// branches. A Collector is single-threaded, like everything inside a run.
type Collector struct {
	platform string
	workflow string
	counters map[series]float64
	gauges   map[series]float64
	hists    map[series]*histogram
}

// New returns an empty collector for one run on the named platform and
// workflow.
func New(platform, workflow string) *Collector {
	return &Collector{
		platform: platform,
		workflow: workflow,
		counters: map[series]float64{},
		gauges:   map[series]float64{},
		hists:    map[series]*histogram{},
	}
}

// Add increments the counter series by v.
func (c *Collector) Add(family string, k Key, v float64) {
	if c == nil {
		return
	}
	c.counters[series{family, k}] += v
}

// GaugeMax raises the gauge series to v if v exceeds its current value
// (high-water-mark semantics; absent series start at v).
func (c *Collector) GaugeMax(family string, k Key, v float64) {
	if c == nil {
		return
	}
	s := series{family, k}
	if cur, ok := c.gauges[s]; !ok || v > cur {
		c.gauges[s] = v
	}
}

// Observe records v into the histogram series (fixed DefaultBuckets).
func (c *Collector) Observe(family string, k Key, v float64) {
	if c == nil {
		return
	}
	s := series{family, k}
	h := c.hists[s]
	if h == nil {
		h = &histogram{buckets: make([]uint64, len(DefaultBuckets)+1)}
		c.hists[s] = h
	}
	i := 0
	for i < len(DefaultBuckets) && v > DefaultBuckets[i] {
		i++
	}
	h.buckets[i]++
	h.count++
	h.sum += v
}
