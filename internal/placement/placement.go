// Package placement implements data-placement policies deciding which
// files go to the burst buffer and which stay on the parallel file system.
//
// The paper's experiments sweep the *fraction* of input files staged into
// the BB (Figs. 4, 5, 10, 13, 14); NewFraction reproduces that policy. The
// remaining constructors implement the heuristic space the paper names as
// future work — greedy-by-size, fanout-priority, and critical-path-aware
// selection under a capacity budget — exercised by the placement ablation
// benchmark.
package placement

import (
	"fmt"
	"math"
	"sort"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// Set sends a fixed set of files to the burst buffer: stage-in files in the
// set are staged, task outputs in the set are written to the BB. It
// implements exec.Placement.
type Set struct {
	name string
	ids  map[string]bool
}

var _ exec.Placement = (*Set)(nil)

// Name describes the policy (for reports).
func (s *Set) Name() string { return s.name }

// Contains reports whether the policy sends file id to the BB.
func (s *Set) Contains(id string) bool { return s.ids[id] }

// Count returns the number of files sent to the BB.
func (s *Set) Count() int { return len(s.ids) }

// BBBytes returns the total size this policy puts on the BB.
func (s *Set) BBBytes(wf *workflow.Workflow) units.Bytes {
	var total units.Bytes
	//bbvet:ordered -- file sizes are integral and exactly representable in float64, so the sum is exact and order-independent
	for id := range s.ids {
		if f := wf.File(id); f != nil {
			total += f.Size()
		}
	}
	return total
}

// StageTarget implements exec.Placement.
func (s *Set) StageTarget(f *workflow.File, sys *storage.System, node *platform.Node) storage.Service {
	if s.ids[f.ID()] {
		return sys.BBFor(node)
	}
	return nil
}

// OutputTarget implements exec.Placement.
func (s *Set) OutputTarget(_ *workflow.Task, f *workflow.File, sys *storage.System, node *platform.Node) storage.Service {
	if s.ids[f.ID()] {
		return sys.BBFor(node)
	}
	return nil
}

// NewExplicit builds a policy from an explicit list of file IDs.
func NewExplicit(name string, ids []string) *Set {
	m := make(map[string]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return &Set{name: name, ids: m}
}

// AllBB sends every file to the burst buffer.
func AllBB(wf *workflow.Workflow) *Set {
	m := map[string]bool{}
	for _, f := range wf.Files() {
		m[f.ID()] = true
	}
	return &Set{name: "all-bb", ids: m}
}

// AllPFS keeps every file on the PFS (equivalent to exec.PFSOnly, provided
// for symmetry in sweeps).
func AllPFS() *Set {
	return &Set{name: "all-pfs", ids: map[string]bool{}}
}

// stageable returns the files eligible for staging — workflow inputs and
// outputs of stage-in tasks — in insertion order.
func stageable(wf *workflow.Workflow) []*workflow.File {
	var files []*workflow.File
	for _, f := range wf.Files() {
		if f.IsInput() || (f.Producer() != nil && f.Producer().Kind() == workflow.KindStageIn) {
			files = append(files, f)
		}
	}
	return files
}

// intermediates returns files produced by compute tasks and consumed by at
// least one task, in insertion order.
func intermediates(wf *workflow.Workflow) []*workflow.File {
	var files []*workflow.File
	for _, f := range wf.Files() {
		if f.Producer() != nil && f.Producer().Kind() == workflow.KindCompute && len(f.Consumers()) > 0 {
			files = append(files, f)
		}
	}
	return files
}

// NewFraction stages the first ceil(q·N) of the workflow's N stageable
// input files into the burst buffer (the paper's x-axis on Figs. 4, 5, 10,
// 13, 14). If intermediatesToBB is set, every intermediate file also goes
// to the BB (the "BB" series of Fig. 5); otherwise intermediates go to the
// PFS. q outside [0,1] is an error.
func NewFraction(wf *workflow.Workflow, q float64, intermediatesToBB bool) (*Set, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return nil, fmt.Errorf("placement: fraction %g outside [0,1]", q)
	}
	ids := map[string]bool{}
	files := stageable(wf)
	// Stride selection: pick ceil(q·N) files spread evenly across the
	// input list, so a 50% staging touches every workflow branch rather
	// than fully staging the first half of the branches.
	picked := 0
	for i, f := range files {
		if int(math.Ceil(q*float64(i+1))) > picked {
			ids[f.ID()] = true
			picked++
		}
	}
	if intermediatesToBB {
		for _, f := range intermediates(wf) {
			ids[f.ID()] = true
		}
		// Terminal outputs follow the intermediates' destination, matching
		// the experimental setup where the whole scratch area is one mount.
		for _, f := range wf.Files() {
			if f.Producer() != nil && f.Producer().Kind() == workflow.KindCompute && len(f.Consumers()) == 0 {
				ids[f.ID()] = true
			}
		}
	}
	name := fmt.Sprintf("fraction-%0.2f", q)
	if intermediatesToBB {
		name += "+intermediates"
	}
	return &Set{name: name, ids: ids}, nil
}

// MustFraction is NewFraction for known-good arguments.
func MustFraction(wf *workflow.Workflow, q float64, intermediatesToBB bool) *Set {
	s, err := NewFraction(wf, q, intermediatesToBB)
	if err != nil {
		panic(err)
	}
	return s
}

// candidate scoring for the budgeted heuristics: every file that is read or
// written during execution is a candidate.
func candidates(wf *workflow.Workflow) []*workflow.File {
	var files []*workflow.File
	for _, f := range wf.Files() {
		if len(f.Consumers()) > 0 || f.Producer() != nil {
			files = append(files, f)
		}
	}
	return files
}

// pick fills the budget greedily in the given order (stable).
func pick(name string, files []*workflow.File, budget units.Bytes) *Set {
	ids := map[string]bool{}
	var used units.Bytes
	for _, f := range files {
		if budget > 0 && used+f.Size() > budget {
			continue
		}
		ids[f.ID()] = true
		used += f.Size()
	}
	return &Set{name: name, ids: ids}
}

// NewSizeGreedy fills the burst buffer budget preferring small files first
// (smallest=true) or large files first. Small-first maximizes the number of
// per-file latency hits avoided; large-first maximizes bytes served at BB
// bandwidth.
func NewSizeGreedy(wf *workflow.Workflow, budget units.Bytes, smallest bool) *Set {
	files := append([]*workflow.File{}, candidates(wf)...)
	sort.SliceStable(files, func(i, j int) bool {
		if smallest {
			return files[i].Size() < files[j].Size()
		}
		return files[i].Size() > files[j].Size()
	})
	name := "size-greedy-large"
	if smallest {
		name = "size-greedy-small"
	}
	return pick(name, files, budget)
}

// NewFanoutGreedy fills the budget preferring files with the most
// consumers: a file read k times saves k transfers when resident on the BB.
func NewFanoutGreedy(wf *workflow.Workflow, budget units.Bytes) *Set {
	files := append([]*workflow.File{}, candidates(wf)...)
	sort.SliceStable(files, func(i, j int) bool {
		fi, fj := len(files[i].Consumers()), len(files[j].Consumers())
		if fi != fj {
			return fi > fj
		}
		return files[i].Size() < files[j].Size()
	})
	return pick("fanout-greedy", files, budget)
}

// NewCriticalPath fills the budget preferring files touched by tasks on the
// workflow's critical path (weighted by dur), then everything else.
func NewCriticalPath(wf *workflow.Workflow, budget units.Bytes, dur func(*workflow.Task) float64) (*Set, error) {
	path, _, err := wf.CriticalPath(dur)
	if err != nil {
		return nil, err
	}
	onPath := map[*workflow.Task]bool{}
	for _, t := range path {
		onPath[t] = true
	}
	critical := func(f *workflow.File) bool {
		if f.Producer() != nil && onPath[f.Producer()] {
			return true
		}
		for _, c := range f.Consumers() {
			if onPath[c] {
				return true
			}
		}
		return false
	}
	files := append([]*workflow.File{}, candidates(wf)...)
	sort.SliceStable(files, func(i, j int) bool {
		ci, cj := critical(files[i]), critical(files[j])
		if ci != cj {
			return ci
		}
		return false
	})
	return pick("critical-path", files, budget), nil
}
