package placement

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"bbwfsim/internal/genomes"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

func testSystem(t *testing.T, cfg platform.Config) *storage.System {
	t.Helper()
	e := sim.NewEngine()
	p, err := platform.New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return storage.NewSystem(p, nil)
}

func TestFractionCounts(t *testing.T) {
	wf := swarp.MustNew(swarp.Params{Pipelines: 1}) // 32 stageable files
	for _, tc := range []struct {
		q    float64
		want int
	}{
		{0, 0}, {0.25, 8}, {0.5, 16}, {0.75, 24}, {1, 32},
	} {
		pol, err := NewFraction(wf, tc.q, false)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Count() != tc.want {
			t.Errorf("fraction %.2f: count = %d, want %d", tc.q, pol.Count(), tc.want)
		}
	}
}

func TestFractionStrideSpreads(t *testing.T) {
	// With 50% staged, both halves of the file list must be represented.
	wf := swarp.MustNew(swarp.Params{Pipelines: 2})
	pol := MustFraction(wf, 0.5, false)
	var stageables []*workflow.File
	for _, f := range wf.Files() {
		if f.IsInput() || (f.Producer() != nil && f.Producer().Kind() == workflow.KindStageIn) {
			stageables = append(stageables, f)
		}
	}
	firstHalf, secondHalf := 0, 0
	for i, f := range stageables {
		if pol.Contains(f.ID()) {
			if i < len(stageables)/2 {
				firstHalf++
			} else {
				secondHalf++
			}
		}
	}
	if firstHalf == 0 || secondHalf == 0 {
		t.Errorf("stride selection not spread: %d / %d", firstHalf, secondHalf)
	}
}

func TestFractionValidation(t *testing.T) {
	wf := swarp.MustNew(swarp.Params{Pipelines: 1})
	for _, q := range []float64{-0.1, 1.5, math.NaN()} {
		if _, err := NewFraction(wf, q, false); err == nil {
			t.Errorf("fraction %v accepted", q)
		}
	}
}

func TestFractionIntermediates(t *testing.T) {
	wf := swarp.MustNew(swarp.Params{Pipelines: 1})
	with := MustFraction(wf, 0, true)
	without := MustFraction(wf, 0, false)
	if without.Count() != 0 {
		t.Errorf("q=0 without intermediates: count = %d", without.Count())
	}
	// 32 intermediates + 2 terminal outputs.
	if with.Count() != 34 {
		t.Errorf("q=0 with intermediates: count = %d, want 34", with.Count())
	}
	if !with.Contains("p000_rimg00.fits") {
		t.Error("intermediate not selected")
	}
	if !with.Contains("p000_coadd.fits") {
		t.Error("terminal output not selected")
	}
}

func TestStageAndOutputTargets(t *testing.T) {
	wf := swarp.MustNew(swarp.Params{Pipelines: 1})
	sys := testSystem(t, platform.Cori(1, platform.BBPrivate))
	node := sys.Platform().Node(0)
	pol := MustFraction(wf, 1, true)
	in := wf.File("p000_img00.fits")
	if svc := pol.StageTarget(in, sys, node); svc != sys.SharedBB() {
		t.Errorf("StageTarget = %v, want shared BB", svc)
	}
	inter := wf.File("p000_rimg00.fits")
	if svc := pol.OutputTarget(wf.Task("resample_000"), inter, sys, node); svc != sys.SharedBB() {
		t.Errorf("OutputTarget = %v, want shared BB", svc)
	}
	none := MustFraction(wf, 0, false)
	if svc := none.StageTarget(in, sys, node); svc != nil {
		t.Errorf("StageTarget under all-PFS = %v, want nil", svc)
	}
}

func TestOnNodeTarget(t *testing.T) {
	wf := swarp.MustNew(swarp.Params{Pipelines: 1})
	sys := testSystem(t, platform.Summit(2))
	n1 := sys.Platform().Node(1)
	pol := MustFraction(wf, 1, false)
	f := wf.File("p000_img00.fits")
	if svc := pol.StageTarget(f, sys, n1); svc != sys.BBFor(n1) {
		t.Errorf("StageTarget on summit = %v, want node-local BB of n1", svc)
	}
}

func TestAllBBAndAllPFS(t *testing.T) {
	wf := swarp.MustNew(swarp.Params{Pipelines: 1})
	all := AllBB(wf)
	if all.Count() != len(wf.Files()) {
		t.Errorf("AllBB count = %d, want %d", all.Count(), len(wf.Files()))
	}
	if AllPFS().Count() != 0 {
		t.Error("AllPFS selected files")
	}
	if all.Name() != "all-bb" || AllPFS().Name() != "all-pfs" {
		t.Error("policy names wrong")
	}
}

func TestSizeGreedyRespectsBudget(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 2})
	budget := 500 * units.MiB
	for _, smallest := range []bool{true, false} {
		pol := NewSizeGreedy(wf, budget, smallest)
		if pol.BBBytes(wf) > budget {
			t.Errorf("smallest=%v: BBBytes %v exceeds budget %v", smallest, pol.BBBytes(wf), budget)
		}
		if pol.Count() == 0 {
			t.Errorf("smallest=%v: nothing selected", smallest)
		}
	}
	// Small-first fits more files than large-first.
	small := NewSizeGreedy(wf, budget, true)
	large := NewSizeGreedy(wf, budget, false)
	if small.Count() < large.Count() {
		t.Errorf("small-first picked %d files, large-first %d", small.Count(), large.Count())
	}
}

func TestFanoutGreedyPrefersSharedFiles(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 2})
	// The sifted files (14 consumers each, 20 MiB) are the highest-fanout
	// files that fit a small budget; the population files (4 consumers)
	// come next. One-consumer files must not displace them.
	pol := NewFanoutGreedy(wf, 60*units.MiB)
	if !pol.Contains("chr01_sifted.txt") || !pol.Contains("chr02_sifted.txt") {
		t.Error("fanout policy skipped the highest-fanout fitting files")
	}
	if !pol.Contains("pop_0.txt") {
		t.Error("fanout policy skipped the population files")
	}
}

func TestCriticalPathPolicy(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 2})
	dur := func(task *workflow.Task) float64 { return float64(task.Work()) }
	pol, err := NewCriticalPath(wf, 2*units.GiB, dur)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Count() == 0 {
		t.Error("critical-path policy selected nothing")
	}
	if pol.BBBytes(wf) > 2*units.GiB {
		t.Error("critical-path policy exceeded budget")
	}
	// At least one file of the critical path's tasks must be selected.
	path, _, err := wf.CriticalPath(dur)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, task := range path {
		for _, f := range task.Outputs() {
			if pol.Contains(f.ID()) {
				found = true
			}
		}
	}
	if !found {
		t.Error("no critical-path file selected")
	}
}

func TestExplicitPolicy(t *testing.T) {
	pol := NewExplicit("mine", []string{"a", "b"})
	if !pol.Contains("a") || pol.Contains("c") || pol.Count() != 2 {
		t.Error("explicit policy membership wrong")
	}
}

// Property: for any q, the fraction policy stages exactly ceil(q·N) files,
// all of them stageable. (Stride selection is deliberately not nested
// across fractions, so no subset property is asserted.)
func TestFractionCountQuick(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 2})
	n := 0
	for _, f := range wf.Files() {
		if f.IsInput() {
			n++
		}
	}
	f := func(rawQ uint16) bool {
		q := float64(rawQ%1001) / 1000
		p := MustFraction(wf, q, false)
		if p.Count() != int(math.Ceil(q*float64(n))) {
			return false
		}
		for _, file := range wf.Files() {
			if p.Contains(file.ID()) && !file.IsInput() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: budgeted policies never exceed their budget.
func TestBudgetRespectedQuick(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 1})
	f := func(rawBudget uint32, kind uint8) bool {
		budget := units.Bytes(rawBudget % 4_000_000_000)
		var pol *Set
		switch kind % 3 {
		case 0:
			pol = NewSizeGreedy(wf, budget, true)
		case 1:
			pol = NewSizeGreedy(wf, budget, false)
		default:
			pol = NewFanoutGreedy(wf, budget)
		}
		return budget == 0 || pol.BBBytes(wf) <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

var _ = fmt.Sprintf // keep fmt for debugging additions
