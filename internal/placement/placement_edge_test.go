package placement

import (
	"testing"

	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// edgeWorkflow builds source → worker → sink with one input file per given
// size (consumed by worker) and one intermediate per size (worker → sink).
func edgeWorkflow(t *testing.T, sizes []units.Bytes) *workflow.Workflow {
	t.Helper()
	wf := workflow.New("edge")
	var inputs, mids []string
	for i, sz := range sizes {
		in := "in" + string(rune('a'+i))
		mid := "mid" + string(rune('a'+i))
		wf.MustAddFile(in, sz)
		wf.MustAddFile(mid, sz)
		inputs = append(inputs, in)
		mids = append(mids, mid)
	}
	wf.MustAddTask(workflow.TaskSpec{ID: "worker", Name: "worker", Work: 1, Inputs: inputs, Outputs: mids})
	wf.MustAddTask(workflow.TaskSpec{ID: "sink", Name: "sink", Work: 1, Inputs: mids})
	return wf
}

// TestZeroSizeFiles drives the fraction and greedy policies over zero-byte
// files: they must be selectable, contribute zero BB bytes, and never
// consume budget.
func TestZeroSizeFiles(t *testing.T) {
	wf := edgeWorkflow(t, []units.Bytes{0, 0, 0})
	s := MustFraction(wf, 1, true)
	if got := s.BBBytes(wf); got != 0 {
		t.Errorf("BBBytes of zero-size selection = %v, want 0", got)
	}
	if s.Count() != 6 {
		t.Errorf("fraction 1 + intermediates selected %d of 6 zero-size files", s.Count())
	}
	// A 1-byte budget fits every zero-size candidate.
	if g := NewSizeGreedy(wf, 1, true); g.Count() != 6 {
		t.Errorf("size-greedy with 1 B budget selected %d zero-size files, want 6", g.Count())
	}
}

// TestFractionExtremes pins the 0% and 100% staging boundaries, including
// a workflow with no stageable files at all (every file is produced by a
// compute task).
func TestFractionExtremes(t *testing.T) {
	wf := edgeWorkflow(t, []units.Bytes{units.MiB, 2 * units.MiB})
	zero := MustFraction(wf, 0, false)
	if zero.Count() != 0 {
		t.Errorf("fraction 0 selected %d files, want 0", zero.Count())
	}
	full := MustFraction(wf, 1, false)
	for _, id := range []string{"ina", "inb"} {
		if !full.Contains(id) {
			t.Errorf("fraction 1 did not stage input %s", id)
		}
	}
	if full.Contains("mida") {
		t.Error("fraction policy without intermediates staged an intermediate")
	}

	noInputs := workflow.New("no-inputs")
	noInputs.MustAddFile("out", units.MiB)
	noInputs.MustAddTask(workflow.TaskSpec{ID: "gen", Name: "gen", Work: 1, Outputs: []string{"out"}})
	noInputs.MustAddTask(workflow.TaskSpec{ID: "use", Name: "use", Work: 1, Inputs: []string{"out"}})
	if s := MustFraction(noInputs, 1, false); s.Count() != 0 {
		t.Errorf("fraction 1 on a workflow with no stageable files selected %d", s.Count())
	}
}

// TestGreedySkipsOversizedKeepsSmaller: the budgeted pick must skip a file
// that would overflow the budget but still admit later, smaller files —
// it walks the whole candidate list rather than stopping at the first
// overflow.
func TestGreedySkipsOversizedKeepsSmaller(t *testing.T) {
	wf := edgeWorkflow(t, []units.Bytes{10 * units.MiB, units.MiB})
	s := NewSizeGreedy(wf, 3*units.MiB, false) // large-first: 10 MiB files skipped
	if s.Count() == 0 {
		t.Fatal("greedy selected nothing despite fitting candidates")
	}
	for _, id := range []string{"ina", "mida"} {
		if s.Contains(id) {
			t.Errorf("greedy admitted %s, which overflows the budget", id)
		}
	}
	if got := s.BBBytes(wf); got > 3*units.MiB {
		t.Errorf("greedy selection %v exceeds the 3 MiB budget", got)
	}
}
