// Package stats provides the small statistical toolkit the experiment
// harness uses: means, standard deviations, coefficients of variation, and
// the relative-error metrics the paper reports for simulator accuracy.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; it is 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation (n−1 denominator); it is 0 for
// fewer than two samples.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// CV returns the coefficient of variation (Std/Mean); it is 0 when the mean
// is 0.
func CV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 { //bbvet:allow float-compare -- exact-zero guard against division by zero
		return 0
	}
	return Std(xs) / m
}

// MinMax returns the extremes; both are 0 for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the median; it is 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// RelErr returns |predicted − reference| / reference. A zero reference with
// nonzero prediction yields +Inf.
func RelErr(predicted, reference float64) float64 {
	//bbvet:allow float-compare -- exact-zero guard against division by zero (and 0/0 below)
	if reference == 0 {
		if predicted == 0 { //bbvet:allow float-compare -- distinguishes the exact 0/0 case
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-reference) / math.Abs(reference)
}

// MeanRelErr averages RelErr pointwise over two equal-length series.
func MeanRelErr(predicted, reference []float64) (float64, error) {
	if len(predicted) != len(reference) {
		return 0, fmt.Errorf("stats: series lengths differ: %d vs %d", len(predicted), len(reference))
	}
	if len(predicted) == 0 {
		return 0, fmt.Errorf("stats: empty series")
	}
	sum := 0.0
	for i := range predicted {
		sum += RelErr(predicted[i], reference[i])
	}
	return sum / float64(len(predicted)), nil
}

// Speedup returns baseline/current for each point of a series: the metric
// of Fig. 14 (speedup over the 0%-staged configuration).
func Speedup(baseline float64, series []float64) []float64 {
	out := make([]float64, len(series))
	for i, x := range series {
		if x == 0 { //bbvet:allow float-compare -- exact-zero guard against division by zero
			out[i] = math.Inf(1)
			continue
		}
		out[i] = baseline / x
	}
	return out
}

// SameTrend reports whether two series move in the same direction at every
// step, tolerating steps smaller than tol·|value| as flat. The paper's
// accuracy discussion is about trend agreement as much as point error.
func SameTrend(a, b []float64, tol float64) bool {
	if len(a) != len(b) || len(a) < 2 {
		return len(a) == len(b)
	}
	sign := func(prev, cur float64) int {
		d := cur - prev
		if math.Abs(d) <= tol*math.Max(math.Abs(prev), math.Abs(cur)) {
			return 0
		}
		if d > 0 {
			return 1
		}
		return -1
	}
	for i := 1; i < len(a); i++ {
		sa, sb := sign(a[i-1], a[i]), sign(b[i-1], b[i])
		if sa != 0 && sb != 0 && sa != sb {
			return false
		}
	}
	return true
}
