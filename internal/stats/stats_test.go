package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(got, want float64) bool {
	return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
}

func TestMean(t *testing.T) {
	if !approx(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Error("Mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestStd(t *testing.T) {
	if !approx(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2.138089935299395) {
		t.Errorf("Std = %v", Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
	if Std([]float64{5}) != 0 || Std(nil) != 0 {
		t.Error("Std of <2 samples should be 0")
	}
}

func TestCV(t *testing.T) {
	xs := []float64{10, 10, 10}
	if CV(xs) != 0 {
		t.Error("CV of constant series should be 0")
	}
	if CV([]float64{0, 0}) != 0 {
		t.Error("CV with zero mean should be 0")
	}
	if CV([]float64{9, 11}) <= 0 {
		t.Error("CV of varied series should be positive")
	}
}

func TestMinMaxMedian(t *testing.T) {
	min, max := MinMax([]float64{3, 1, 4, 1, 5})
	if min != 1 || max != 5 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	if m, _ := MinMax(nil); m != 0 {
		t.Error("MinMax(nil) != 0")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if !approx(Median([]float64{4, 1, 2, 3}), 2.5) {
		t.Error("even median wrong")
	}
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
}

func TestRelErr(t *testing.T) {
	if !approx(RelErr(110, 100), 0.1) {
		t.Error("RelErr wrong")
	}
	if !approx(RelErr(90, 100), 0.1) {
		t.Error("RelErr should be symmetric around reference")
	}
	if RelErr(0, 0) != 0 {
		t.Error("RelErr(0,0) != 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(x,0) should be +Inf")
	}
}

func TestMeanRelErr(t *testing.T) {
	got, err := MeanRelErr([]float64{110, 90}, []float64{100, 100})
	if err != nil || !approx(got, 0.1) {
		t.Errorf("MeanRelErr = %v (%v)", got, err)
	}
	if _, err := MeanRelErr([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MeanRelErr(nil, nil); err == nil {
		t.Error("empty series accepted")
	}
}

func TestSpeedup(t *testing.T) {
	s := Speedup(100, []float64{100, 50, 25})
	want := []float64{1, 2, 4}
	for i := range want {
		if !approx(s[i], want[i]) {
			t.Errorf("Speedup[%d] = %v, want %v", i, s[i], want[i])
		}
	}
	if !math.IsInf(Speedup(1, []float64{0})[0], 1) {
		t.Error("Speedup over zero should be +Inf")
	}
}

func TestSameTrend(t *testing.T) {
	if !SameTrend([]float64{1, 2, 3}, []float64{10, 20, 30}, 0) {
		t.Error("monotone series should agree")
	}
	if SameTrend([]float64{1, 2, 3}, []float64{10, 5, 30}, 0) {
		t.Error("opposite step should disagree")
	}
	// A small wiggle under the tolerance counts as flat.
	if !SameTrend([]float64{100, 101, 200}, []float64{100, 99.9, 200}, 0.05) {
		t.Error("wiggle within tolerance should agree")
	}
	if !SameTrend([]float64{1}, []float64{2}, 0) {
		t.Error("single points trivially agree")
	}
	if SameTrend([]float64{1, 2}, []float64{2}, 0) {
		t.Error("length mismatch should disagree")
	}
}

// Property: Std is translation-invariant and scales with |k|; Mean is
// linear.
func TestMomentsQuick(t *testing.T) {
	f := func(raw []uint16, shiftRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 7
		}
		shift := float64(shiftRaw)
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
			scaled[i] = 3 * x
		}
		tol := 1e-6 * math.Max(1, Std(xs))
		return math.Abs(Std(shifted)-Std(xs)) < tol &&
			math.Abs(Std(scaled)-3*Std(xs)) < 3*tol &&
			math.Abs(Mean(shifted)-(Mean(xs)+shift)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: min ≤ median ≤ max and min ≤ mean ≤ max.
func TestOrderQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		min, max := MinMax(xs)
		med, mean := Median(xs), Mean(xs)
		return min <= med+1e-9 && med <= max+1e-9 && min <= mean+1e-9 && mean <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
