package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
)

func TestEncodeResultDeterministic(t *testing.T) {
	run := func() []byte {
		sim := MustNewSimulator(platform.Cori(2, platform.BBStriped))
		wf := swarp.MustNew(swarp.Params{Pipelines: 2})
		res, err := sim.Run(wf, RunOptions{StagedFraction: 0.5, IntermediatesToBB: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical runs encoded to different bytes")
	}
	if a[len(a)-1] != '\n' {
		t.Error("encoded document missing trailing newline")
	}

	doc, err := DecodeResult(a)
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if doc.Schema != ResultDocSchema {
		t.Errorf("schema = %d, want %d", doc.Schema, ResultDocSchema)
	}
	if doc.Makespan <= 0 {
		t.Error("non-positive makespan in decoded document")
	}
	if len(doc.Summaries) == 0 {
		t.Error("decoded document lost summaries")
	}

	// The trace never rides along: a retained-mode run must encode without
	// a trace field even when res.Trace is populated.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(a, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["trace"]; ok {
		t.Error("encoded document carries a trace field")
	}
}

func TestEncodeResultRejectsNil(t *testing.T) {
	if _, err := EncodeResult(nil); err == nil {
		t.Error("nil result encoded without error")
	}
}

func TestDecodeResultRejectsSchemaMismatch(t *testing.T) {
	if _, err := DecodeResult([]byte(`{"schema": 999}`)); err == nil {
		t.Error("wrong-schema document decoded without error")
	}
	if _, err := DecodeResult([]byte(`not json`)); err == nil {
		t.Error("malformed document decoded without error")
	}
}
