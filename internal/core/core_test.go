package core

import (
	"testing"

	"bbwfsim/internal/calib"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/units"
)

func TestSimulatorValidatesConfig(t *testing.T) {
	cfg := platform.Cori(1, platform.BBPrivate)
	cfg.Nodes = 0
	if _, err := NewSimulator(cfg); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewSimulator(platform.Cori(1, platform.BBPrivate)); err != nil {
		t.Errorf("valid preset rejected: %v", err)
	}
}

func TestSWarpOnCoriRuns(t *testing.T) {
	sim := MustNewSimulator(platform.Cori(1, platform.BBPrivate))
	wf := swarp.MustNew(swarp.Params{Pipelines: 1})
	res, err := sim.Run(wf, RunOptions{StagedFraction: 1, IntermediatesToBB: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("non-positive makespan")
	}
	// Three task categories ran.
	if len(res.Summaries) != 3 {
		t.Errorf("summaries = %d, want 3", len(res.Summaries))
	}
	// All staged data went through the BB.
	if res.BB.BytesWritten != 768*units.MiB+768*units.MiB+96*units.MiB {
		t.Errorf("BB bytes written = %v", res.BB.BytesWritten)
	}
	if _, err := res.MeanTaskTime("resample"); err != nil {
		t.Errorf("MeanTaskTime: %v", err)
	}
	if _, err := res.MeanTaskTime("nothing"); err == nil {
		t.Error("MeanTaskTime on missing category succeeded")
	}
}

func TestSimulatorDeterministic(t *testing.T) {
	wf := swarp.MustNew(swarp.Params{Pipelines: 4})
	run := func() float64 {
		sim := MustNewSimulator(platform.Cori(1, platform.BBStriped))
		res, err := sim.Run(wf, RunOptions{StagedFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Errorf("simulator not deterministic: %v vs %v", a, b)
	}
}

func TestBBSpeedsUpSimulatedSWarp(t *testing.T) {
	// In the lightweight model (Table I), the BB strictly beats the PFS,
	// so staging everything must shrink the makespan.
	wf := swarp.MustNew(swarp.Params{Pipelines: 1})
	sim := MustNewSimulator(platform.Cori(1, platform.BBPrivate))
	slow, err := sim.Run(wf, RunOptions{StagedFraction: 0, IntermediatesToBB: false})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sim.Run(wf, RunOptions{StagedFraction: 1, IntermediatesToBB: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Makespan >= slow.Makespan {
		t.Errorf("all-BB (%.2fs) should beat all-PFS (%.2fs) in simulation", fast.Makespan, slow.Makespan)
	}
}

func TestSweepFractions(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 2})
	sim := MustNewSimulator(platform.Cori(4, platform.BBPrivate))
	fractions := []float64{0, 0.5, 1}
	ms, err := sim.SweepFractions(wf, fractions, RunOptions{PrePlaceInputs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("got %d makespans", len(ms))
	}
	// More staged input → faster, up to the plateau the paper observes on
	// Cori past ~80% staged (bandwidth saturation: with everything on the
	// BB, the PFS no longer contributes parallel bandwidth).
	if !(ms[0] > ms[1] && ms[0] > ms[2]) {
		t.Errorf("staging does not speed up the workflow: %v", ms)
	}
	if ms[2] > ms[1]*1.1 {
		t.Errorf("plateau regression too large: %v", ms)
	}
}

func TestGenomesOnSummit(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 2})
	sim := MustNewSimulator(platform.Summit(4))
	res, err := sim.Run(wf, RunOptions{StagedFraction: 1, PrePlaceInputs: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("non-positive makespan")
	}
	if len(res.Trace.Records()) != 83 {
		t.Errorf("records = %d, want 83", len(res.Trace.Records()))
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	wf := swarp.MustNew(swarp.Params{Pipelines: 1})
	sim := MustNewSimulator(platform.Cori(1, platform.BBPrivate))
	if _, err := sim.SweepFractions(wf, []float64{0, 2}, RunOptions{}); err == nil {
		t.Error("invalid fraction accepted")
	}
}

func TestCalibrateWorks(t *testing.T) {
	c, err := CalibrateWorks([]calib.Observation{
		{TaskName: "resample", Cores: 32, Time: 12, LambdaIO: 0.203},
	}, 36.80*units.GFlopPerSec)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Work("resample")
	if err != nil {
		t.Fatal(err)
	}
	if w != swarp.ResampleWork {
		t.Errorf("calibrated work %v != swarp anchor %v", w, swarp.ResampleWork)
	}
}
