// Package core is the top-level API of the reproduction: the calibrated
// lightweight simulator for workflow executions on HPC platforms with burst
// buffers — the paper's primary contribution (Section IV).
//
// A Simulator wraps a platform description (Table I parameters via
// internal/platform presets, or any custom Config) and runs workflow DAGs
// against it under a data-placement policy, returning the trace and
// makespan. Calibration from observed executions (the paper's Eq. 4
// pipeline) lives in CalibrateWorks.
//
// Typical use:
//
//	sim := core.NewSimulator(platform.Cori(1, platform.BBPrivate))
//	wf := swarp.MustNew(swarp.Params{Pipelines: 1})
//	res, err := sim.Run(wf, core.RunOptions{StagedFraction: 1, IntermediatesToBB: true})
//	fmt.Println(res.Makespan)
package core

import (
	"fmt"

	"bbwfsim/internal/adapt"
	"bbwfsim/internal/calib"
	"bbwfsim/internal/ckpt"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// Simulator is a reusable factory for simulated executions on one platform
// configuration. Each Run builds a fresh engine, platform, and storage
// system, so runs are independent and deterministic.
type Simulator struct {
	cfg platform.Config
}

// NewSimulator validates the platform configuration and returns a
// simulator for it.
func NewSimulator(cfg platform.Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg}, nil
}

// MustNewSimulator is NewSimulator for preset configurations.
func MustNewSimulator(cfg platform.Config) *Simulator {
	s, err := NewSimulator(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// PlatformConfig returns the simulator's platform configuration.
func (s *Simulator) PlatformConfig() platform.Config { return s.cfg }

// RunOptions tunes one simulated execution.
type RunOptions struct {
	// StagedFraction is the fraction of the workflow's stageable input
	// files placed on the burst buffer (the paper's x-axis). Ignored when
	// Placement is set.
	StagedFraction float64
	// IntermediatesToBB sends intermediate files to the BB rather than the
	// PFS. Ignored when Placement is set.
	IntermediatesToBB bool
	// Placement overrides the fraction-based policy entirely.
	Placement exec.Placement
	// CoresPerTask overrides compute tasks' requested cores when positive.
	CoresPerTask int
	// PrePlaceInputs places true workflow inputs (files with no producer)
	// on their targets at time zero at no cost — for workflows whose
	// staging is outside the measured makespan (the 1000Genomes study).
	PrePlaceInputs bool
	// NodePolicy and OrderPolicy select the scheduler's node-selection and
	// ready-queue ordering strategies (defaults: first-fit, FIFO).
	NodePolicy  exec.NodePolicy
	OrderPolicy exec.OrderPolicy
	// EnforcePrivateVisibility applies the private DataWarp visibility
	// rule (replicas readable only from their creating node; other
	// readers trigger an on-demand relocation through the PFS).
	EnforcePrivateVisibility bool
	// EvictAfterLastRead frees burst-buffer replicas once their last
	// consumer finishes (scratch-data lifecycle management).
	EvictAfterLastRead bool
	// Background loads share the platform with the workflow (e.g.
	// checkpoint traffic, internal/checkpoint).
	Background []exec.Background
	// Faults injects seeded failures into the run (internal/faults). Fault
	// models are single-use, so a fresh one is needed per Run.
	Faults exec.FaultModel
	// Retry bounds and paces re-execution of fault-killed tasks.
	Retry exec.RetryPolicy
	// BBFallback redirects writes whose burst-buffer target is full to the
	// PFS instead of failing the run.
	BBFallback bool
	// Checkpoint configures task-level checkpoint/restart recovery
	// (internal/ckpt): periodic progress snapshots to a storage tier and
	// restarts from the newest durable one. The zero value disables it.
	Checkpoint ckpt.Policy
	// Adapt configures runtime adaptation (internal/adapt): BB-pressure
	// spill with hysteresis, fault-aware proactive replication, and
	// degradation-aware admission fallback. The zero value disables it.
	Adapt adapt.Policy
	// TraceMode selects how the run materializes its event trace. The zero
	// value (trace.Retained) keeps every event in memory — the historical
	// behavior, required by replay/invariant consumers and Trace.Save.
	// trace.Streaming forwards events to TraceSink; trace.Counting keeps
	// only per-kind counts and folded summaries. Makespan, Faults, and
	// Metrics in the Result are identical across modes.
	TraceMode trace.Mode
	// TraceSink receives events when TraceMode is trace.Streaming. The
	// caller owns the sink and must Close it after the run.
	TraceSink trace.Sink
}

// FaultStats counts the fault and recovery events of one execution.
type FaultStats struct {
	// TaskFailures is the number of aborted task attempts (crashes, node
	// failures, and lost-input aborts).
	TaskFailures int
	// Retries is the number of re-executions (failed tasks re-queued plus
	// finished tasks re-run after losing their only output replica).
	Retries int
	// NodeFailures is the number of whole-node outages.
	NodeFailures int
	// BBRejections is the number of rejected burst-buffer allocations.
	BBRejections int
	// Fallbacks is the number of writes redirected to the PFS.
	Fallbacks int
	// DegradeWindows is the number of bandwidth-degradation windows opened.
	DegradeWindows int
	// CkptCommits is the number of committed task checkpoints.
	CkptCommits int
	// CkptDrains is the number of completed BB→PFS checkpoint drains.
	CkptDrains int
	// CkptLosses is the number of checkpoint replicas destroyed by faults.
	CkptLosses int
	// CkptRestarts is the number of task restarts that resumed from a
	// checkpoint instead of recomputing from scratch.
	CkptRestarts int
	// AdaptSpills is the number of replicas the adaptation layer spilled
	// off pressured burst buffers.
	AdaptSpills int
	// AdaptReplications is the number of completed proactive replication
	// copies after node failures or degradation windows.
	AdaptReplications int
	// AdaptFallbacks is the number of allocations redirected to the PFS by
	// degradation-aware admission.
	AdaptFallbacks int
}

// faultStats derives the counters from a trace.
func faultStats(tr *trace.Trace) FaultStats {
	return FaultStats{
		TaskFailures:   tr.CountKind(trace.TaskFail),
		Retries:        tr.CountKind(trace.TaskRetry),
		NodeFailures:   tr.CountKind(trace.NodeFail),
		BBRejections:   tr.CountKind(trace.BBReject),
		Fallbacks:      tr.CountKind(trace.Fallback),
		DegradeWindows: tr.CountKind(trace.DegradeStart),
		CkptCommits:    tr.CountKind(trace.CkptCommit),
		CkptDrains:     tr.CountKind(trace.CkptDrain),
		CkptLosses:     tr.CountKind(trace.CkptLost),
		CkptRestarts:   tr.CountKind(trace.RestartFrom),

		AdaptSpills:       tr.CountKind(trace.AdaptSpill),
		AdaptReplications: tr.CountKind(trace.AdaptReplicate),
		AdaptFallbacks:    tr.CountKind(trace.AdaptFallback),
	}
}

// SchedStats folds a multi-tenant campaign's per-job accounting
// (internal/sched) into the Result shape: terminal-outcome tallies plus
// the mean wait, response, and bounded-slowdown figures over completed
// jobs. All zero for single-workflow runs.
type SchedStats struct {
	// Policy is the scheduling policy the campaign ran under.
	Policy string
	// Submitted = Completed + Failed + Rejected on every finished run.
	Submitted, Completed, Failed, Rejected int
	// NodeFailures counts injected whole-node outages.
	NodeFailures int
	// MeanWait, MeanResponse, and MeanSlowdown average over completed
	// jobs (zero if none completed).
	MeanWait, MeanResponse, MeanSlowdown float64
}

// Result is the outcome of one simulated execution.
type Result struct {
	// Makespan is the time of the last task completion, in seconds.
	Makespan float64
	// Trace is the full time-stamped event trace.
	Trace *trace.Trace
	// Summaries aggregates task records by category.
	Summaries []trace.Summary
	// BB and PFS are the storage services' traffic statistics.
	BB  storage.ServiceStats
	PFS storage.ServiceStats
	// Events is the number of discrete events the kernel executed: the
	// simulator's deterministic cost metric (wall time is not part of a
	// Result, so repeated runs stay bit-identical).
	Events uint64
	// PeakPending is the event queue's high-water mark — with a counting
	// trace it bounds the kernel's live memory, which is what makes
	// million-task runs O(active tasks) rather than O(history).
	PeakPending int
	// Faults counts the run's fault and recovery events; all zero on
	// fault-free runs.
	Faults FaultStats
	// Metrics is the run's full observability snapshot: bytes per tier,
	// virtual time per task phase, occupancy high-water marks, solver and
	// kernel work counters, fault tallies. Deterministically ordered, so
	// identical runs marshal to identical bytes.
	Metrics *metrics.Snapshot
	// Sched carries batch-campaign accounting when the result came from
	// the multi-tenant scheduler (sched.Result.Core); nil for
	// single-workflow runs.
	Sched *SchedStats
}

// MeanTaskTime returns the mean execution time of a task category, or an
// error if the category never ran.
func (r *Result) MeanTaskTime(name string) (float64, error) {
	return r.Trace.MeanExecByName(name)
}

// Run simulates wf on the simulator's platform.
func (s *Simulator) Run(wf *workflow.Workflow, opts RunOptions) (*Result, error) {
	eng := sim.NewEngine()
	plat, err := platform.New(eng, s.cfg)
	if err != nil {
		return nil, err
	}
	sys := storage.NewSystem(plat, nil) // identity op model: the lightweight simulator
	col := metrics.New(s.cfg.Name, wf.Name())
	sys.Manager().SetMetrics(col)
	pol := opts.Placement
	if pol == nil {
		set, err := placement.NewFraction(wf, opts.StagedFraction, opts.IntermediatesToBB)
		if err != nil {
			return nil, err
		}
		pol = set
	}
	var pre *trace.Trace
	switch opts.TraceMode {
	case trace.Retained:
		// exec builds the default retained trace itself.
	case trace.Streaming:
		if opts.TraceSink == nil {
			return nil, fmt.Errorf("core: TraceMode Streaming requires a TraceSink")
		}
		pre = trace.NewStreaming(wf.Name(), s.cfg.Name, opts.TraceSink)
	case trace.Counting:
		pre = trace.NewCounting(wf.Name(), s.cfg.Name)
	default:
		return nil, fmt.Errorf("core: unknown TraceMode %d", opts.TraceMode)
	}
	tr, err := exec.Run(sys, wf, exec.Config{
		Placement:                pol,
		Trace:                    pre,
		CoresPerTask:             opts.CoresPerTask,
		PrePlaceInputs:           opts.PrePlaceInputs,
		NodePolicy:               opts.NodePolicy,
		OrderPolicy:              opts.OrderPolicy,
		EnforcePrivateVisibility: opts.EnforcePrivateVisibility,
		EvictAfterLastRead:       opts.EvictAfterLastRead,
		Background:               opts.Background,
		Faults:                   opts.Faults,
		Retry:                    opts.Retry,
		BBFallback:               opts.BBFallback,
		Checkpoint:               opts.Checkpoint,
		Adapt:                    opts.Adapt,
		Metrics:                  col,
	})
	if err != nil {
		return nil, err
	}
	fs := faultStats(tr)
	finishSnapshot(col, eng, plat, sys, tr, fs)
	return &Result{
		Makespan:    tr.Makespan(),
		Trace:       tr,
		Summaries:   tr.Summarize(),
		BB:          sys.BBStats(),
		PFS:         sys.Manager().Stats(sys.PFS()),
		Events:      eng.EventsFired(),
		PeakPending: eng.MaxPending(),
		Faults:      fs,
		Metrics:     col.Snapshot(),
	}, nil
}

// finishSnapshot folds the end-of-run observations into the collector: the
// kernel and solver work counters, per-service occupancy high-water marks,
// the fault tallies, and the makespan. The fault families are emitted even
// when zero, so fault-free and faulty runs share one snapshot schema and
// diff cleanly.
func finishSnapshot(col *metrics.Collector, eng *sim.Engine, plat *platform.Platform,
	sys *storage.System, tr *trace.Trace, fs FaultStats) {
	col.Add(metrics.SimEventsTotal, metrics.Key{}, float64(eng.EventsFired()))
	col.GaugeMax(metrics.SimQueuePeakEvents, metrics.Key{}, float64(eng.MaxPending()))
	nst := plat.Network().Stats()
	col.Add(metrics.FlowRecomputesTotal, metrics.Key{}, float64(nst.Recomputes))
	col.Add(metrics.FlowFreezeRoundsTotal, metrics.Key{}, float64(nst.FreezeRounds))
	col.Add(metrics.FlowFlowsTotal, metrics.Key{}, float64(nst.FlowsStarted))
	for _, svc := range sys.Services() {
		col.GaugeMax(metrics.StoragePeakBytes, metrics.Key{Service: svc.Name()}, float64(svc.Peak()))
	}
	col.Add(metrics.FaultTaskFailuresTotal, metrics.Key{}, float64(fs.TaskFailures))
	col.Add(metrics.FaultRetriesTotal, metrics.Key{}, float64(fs.Retries))
	col.Add(metrics.FaultNodeFailuresTotal, metrics.Key{}, float64(fs.NodeFailures))
	col.Add(metrics.FaultBBRejectionsTotal, metrics.Key{}, float64(fs.BBRejections))
	col.Add(metrics.FaultFallbacksTotal, metrics.Key{}, float64(fs.Fallbacks))
	col.Add(metrics.FaultDegradeWindowsTotal, metrics.Key{}, float64(fs.DegradeWindows))
	col.Add(metrics.CkptCommitsTotal, metrics.Key{}, float64(fs.CkptCommits))
	col.Add(metrics.CkptDrainsTotal, metrics.Key{}, float64(fs.CkptDrains))
	col.Add(metrics.CkptLossesTotal, metrics.Key{}, float64(fs.CkptLosses))
	col.Add(metrics.CkptRestartsTotal, metrics.Key{}, float64(fs.CkptRestarts))
	col.Add(metrics.AdaptSpillsTotal, metrics.Key{}, float64(fs.AdaptSpills))
	col.Add(metrics.AdaptReplicationsTotal, metrics.Key{}, float64(fs.AdaptReplications))
	col.Add(metrics.AdaptFallbacksTotal, metrics.Key{}, float64(fs.AdaptFallbacks))
	col.GaugeMax(metrics.MakespanSeconds, metrics.Key{}, tr.Makespan())
}

// SweepFractions runs wf once per staged fraction and returns the
// makespans, in order.
func (s *Simulator) SweepFractions(wf *workflow.Workflow, fractions []float64, opts RunOptions) ([]float64, error) {
	out := make([]float64, 0, len(fractions))
	for _, q := range fractions {
		o := opts
		o.StagedFraction = q
		o.Placement = nil
		res, err := s.Run(wf, o)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at fraction %g: %w", q, err)
		}
		out = append(out, res.Makespan)
	}
	return out, nil
}

// CalibrateWorks runs the paper's calibration pipeline (Eq. 3/4): from
// observed task executions, compute per-category sequential compute work at
// the given core speed. The returned map plugs into the workload
// generators' Work parameters.
func CalibrateWorks(obs []calib.Observation, coreSpeed units.FlopRate) (calib.Calibration, error) {
	return calib.FromObservations(obs, coreSpeed)
}
