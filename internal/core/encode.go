package core

import (
	"encoding/json"
	"fmt"

	"bbwfsim/internal/metrics"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/trace"
)

// ResultDoc is the canonical wire form of a Result: everything a client of
// the simulation service needs — makespan, per-category summaries, storage
// traffic, fault tallies, the full metrics snapshot, campaign accounting —
// minus the event trace, whose size is unbounded and which replay consumers
// fetch through the trace sinks instead.
//
// The encoding is the service cache's identity witness: EncodeResult is a
// deterministic function of the Result (fixed field order, sorted metric
// series, exact float formatting via encoding/json), so two executions of
// the same request produce byte-identical documents and a cached document
// is indistinguishable from a recomputation. Schema is versioned so cached
// bytes from an older daemon never masquerade as current ones.
type ResultDoc struct {
	// Schema is the document version; bump it whenever a field is added,
	// removed, or re-interpreted so content hashes never collide across
	// incompatible layouts.
	Schema int `json:"schema"`
	// Makespan is the run's makespan in simulated seconds.
	Makespan float64 `json:"makespan_s"`
	// Events and PeakPending are the kernel's deterministic cost metrics.
	Events      uint64 `json:"events"`
	PeakPending int    `json:"peak_pending"`
	// Summaries aggregates task records by category, sorted by name.
	Summaries []trace.Summary `json:"summaries,omitempty"`
	// BB and PFS are the storage services' traffic statistics.
	BB  storage.ServiceStats `json:"bb"`
	PFS storage.ServiceStats `json:"pfs"`
	// Faults counts the run's fault and recovery events.
	Faults FaultStats `json:"faults"`
	// Sched carries batch-campaign accounting; nil for single runs.
	Sched *SchedStats `json:"sched,omitempty"`
	// Metrics is the run's observability snapshot, deterministically
	// ordered by (family, key).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// ResultDocSchema is the current ResultDoc version.
const ResultDocSchema = 1

// EncodeResult renders the result as its canonical byte form: indented
// JSON with a trailing newline, the same convention metrics.Snapshot.JSON
// uses. Byte-identical inputs are the contract, not a best effort — the
// service invariant harness replays seeded requests and compares encoded
// bytes bit for bit.
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("core: cannot encode a nil result")
	}
	doc := &ResultDoc{
		Schema:      ResultDocSchema,
		Makespan:    r.Makespan,
		Events:      r.Events,
		PeakPending: r.PeakPending,
		Summaries:   r.Summaries,
		BB:          r.BB,
		PFS:         r.PFS,
		Faults:      r.Faults,
		Sched:       r.Sched,
		Metrics:     r.Metrics,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeResult parses bytes EncodeResult produced, rejecting unknown
// fields and schema mismatches — the validation a cache journal applies
// before serving restored entries.
func DecodeResult(data []byte) (*ResultDoc, error) {
	var doc ResultDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("core: decoding result document: %w", err)
	}
	if doc.Schema != ResultDocSchema {
		return nil, fmt.Errorf("core: result document schema %d, want %d", doc.Schema, ResultDocSchema)
	}
	return &doc, nil
}
