// Package adapt defines the runtime-adaptation policy of the execution
// engine: how a run reacts, mid-execution and in virtual time, when the
// burst buffer comes under pressure or the fault model degrades part of the
// platform. The policy is pure configuration — the engine (internal/exec)
// interprets it — covering three graceful-degradation reaction families:
//
//   - Pressure spill: when BB occupancy crosses a high-water fraction,
//     cold/large replicas are spilled BB→PFS until occupancy projects below
//     a low-water fraction (hysteresis, so the engine does not thrash
//     around a single threshold).
//   - Fault-aware replication: when a node fails or a BB degradation
//     window opens, sole-replica inputs of still-pending tasks are
//     proactively copied to the PFS so later failures stop paying full
//     lineage re-execution.
//   - Degradation-aware admission: while a BB degradation window is open,
//     newly scheduled stage-ins and writes targeting that buffer fall back
//     to the PFS instead of queueing on degraded bandwidth.
//
// The zero Policy disables adaptation entirely; runs with a disabled policy
// take the exact same code paths as before the subsystem existed and
// produce bit-identical traces.
package adapt

import "fmt"

// Policy configures runtime adaptation for one execution. All decisions it
// drives are deterministic: candidate orders are total (registry orders,
// workflow declaration order) and every action happens in virtual time.
type Policy struct {
	// SpillHighWater is the BB occupancy fraction (of capacity, in (0,1])
	// above which the engine starts spilling replicas to the PFS. Zero
	// disables pressure spill.
	SpillHighWater float64
	// SpillLowWater is the occupancy fraction spilling drains down to
	// before stopping (the hysteresis band). Must be < SpillHighWater;
	// zero defaults to 3/4 of the high-water mark.
	SpillLowWater float64
	// ReplicateOnFault proactively copies sole-replica inputs of pending
	// tasks to the PFS when a node fails or a BB degradation window opens.
	ReplicateOnFault bool
	// ReplicationBudget caps the number of replication copies per run.
	// Zero means unbounded (the faults.Budget convention); only read when
	// ReplicateOnFault is set.
	ReplicationBudget int
	// DegradedFallback redirects stage-ins and task writes away from a
	// burst buffer while a degradation window is open on it, placing them
	// on the PFS instead.
	DegradedFallback bool
}

// Enabled reports whether the policy adapts anything at all.
func (p Policy) Enabled() bool {
	return p.SpillEnabled() || p.ReplicateOnFault || p.DegradedFallback
}

// SpillEnabled reports whether the pressure-spill reaction is configured.
func (p Policy) SpillEnabled() bool { return p.SpillHighWater > 0 }

// Validate rejects malformed policies: the zero value passes (disabled), a
// spill threshold must lie in (0,1] with the low-water mark strictly below
// the high-water mark, and the replication budget must be non-negative and
// only set alongside ReplicateOnFault.
func (p Policy) Validate() error {
	if p.SpillHighWater < 0 || p.SpillHighWater > 1 {
		return fmt.Errorf("adapt: spill high-water fraction must be in (0,1], got %g", p.SpillHighWater)
	}
	if p.SpillLowWater < 0 {
		return fmt.Errorf("adapt: negative spill low-water fraction %g", p.SpillLowWater)
	}
	if p.SpillLowWater > 0 && !p.SpillEnabled() {
		return fmt.Errorf("adapt: spill low-water fraction %g configured without a high-water fraction", p.SpillLowWater)
	}
	if p.SpillEnabled() && p.SpillLowWater >= p.SpillHighWater {
		return fmt.Errorf("adapt: spill low-water fraction %g must be below the high-water fraction %g", p.SpillLowWater, p.SpillHighWater)
	}
	if p.ReplicationBudget < 0 {
		return fmt.Errorf("adapt: negative replication budget %d", p.ReplicationBudget)
	}
	if p.ReplicationBudget > 0 && !p.ReplicateOnFault {
		return fmt.Errorf("adapt: replication budget %d configured without ReplicateOnFault", p.ReplicationBudget)
	}
	return nil
}

// Normalized fills the documented defaults of an enabled policy: a zero
// low-water mark becomes 3/4 of the high-water mark. Disabled policies pass
// through unchanged.
func (p Policy) Normalized() Policy {
	if !p.SpillEnabled() {
		return p
	}
	if p.SpillLowWater == 0 { //bbvet:allow float-compare -- zero is the documented "use default" sentinel, never a computed value
		p.SpillLowWater = 0.75 * p.SpillHighWater
	}
	return p
}
