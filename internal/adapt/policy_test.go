package adapt

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		pol     Policy
		wantErr string // substring of the error, "" = valid
	}{
		{"zero policy disabled", Policy{}, ""},
		{"spill only", Policy{SpillHighWater: 0.9}, ""},
		{"spill with hysteresis", Policy{SpillHighWater: 0.9, SpillLowWater: 0.6}, ""},
		{"high water of exactly one", Policy{SpillHighWater: 1}, ""},
		{"replication unbounded", Policy{ReplicateOnFault: true}, ""},
		{"replication with budget", Policy{ReplicateOnFault: true, ReplicationBudget: 4}, ""},
		{"fallback only", Policy{DegradedFallback: true}, ""},
		{"everything on", Policy{SpillHighWater: 0.85, SpillLowWater: 0.5, ReplicateOnFault: true, ReplicationBudget: 2, DegradedFallback: true}, ""},

		{"negative high water", Policy{SpillHighWater: -0.1}, "high-water"},
		{"high water above one", Policy{SpillHighWater: 1.5}, "high-water"},
		{"negative low water", Policy{SpillHighWater: 0.9, SpillLowWater: -0.2}, "low-water"},
		{"low water without high water", Policy{SpillLowWater: 0.5}, "without a high-water"},
		{"low water equals high water", Policy{SpillHighWater: 0.8, SpillLowWater: 0.8}, "must be below"},
		{"low water above high water", Policy{SpillHighWater: 0.5, SpillLowWater: 0.9}, "must be below"},
		{"negative replication budget", Policy{ReplicateOnFault: true, ReplicationBudget: -1}, "negative replication budget"},
		{"budget without replication", Policy{ReplicationBudget: 3}, "without ReplicateOnFault"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.pol.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate() = %q, want it to contain %q", err, c.wantErr)
			}
		})
	}
}

func TestEnabled(t *testing.T) {
	if (Policy{}).Enabled() {
		t.Fatal("zero policy must be disabled")
	}
	for _, p := range []Policy{
		{SpillHighWater: 0.9},
		{ReplicateOnFault: true},
		{DegradedFallback: true},
	} {
		if !p.Enabled() {
			t.Fatalf("policy %+v should be enabled", p)
		}
	}
	if (Policy{SpillHighWater: 0.9}).SpillEnabled() != true {
		t.Fatal("SpillEnabled should follow SpillHighWater")
	}
	if (Policy{ReplicateOnFault: true}).SpillEnabled() {
		t.Fatal("replication alone must not enable spill")
	}
}

func TestNormalized(t *testing.T) {
	hw := 0.8
	p := Policy{SpillHighWater: hw}.Normalized()
	if got, want := p.SpillLowWater, 0.75*hw; got != want {
		t.Fatalf("default low water = %g, want %g", got, want)
	}
	p = Policy{SpillHighWater: 0.8, SpillLowWater: 0.3}.Normalized()
	if got := p.SpillLowWater; got != 0.3 {
		t.Fatalf("explicit low water changed to %g", got)
	}
	if z := (Policy{ReplicateOnFault: true}).Normalized(); z.SpillLowWater != 0 {
		t.Fatalf("disabled spill must pass through unchanged, got %+v", z)
	}
}
