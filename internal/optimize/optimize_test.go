package optimize

import (
	"fmt"
	"testing"

	"bbwfsim/internal/core"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// oracleFor builds a simulation oracle over a capacity-constrained Cori.
func oracleFor(t *testing.T, wf *workflow.Workflow, budget units.Bytes) Oracle {
	t.Helper()
	cfg := platform.Cori(4, platform.BBPrivate)
	cfg.BB.Capacity = budget
	sim := core.MustNewSimulator(cfg)
	return func(pol *placement.Set) (float64, error) {
		res, err := sim.Run(wf, core.RunOptions{Placement: pol, PrePlaceInputs: true})
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
}

func testWorkflow() *workflow.Workflow {
	return genomes.MustNew(genomes.Params{Chromosomes: 2})
}

func budgetFor(t *testing.T, wf *workflow.Workflow) units.Bytes {
	t.Helper()
	st, err := wf.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	return st.TotalBytes.Times(0.3)
}

func TestParamsValidation(t *testing.T) {
	wf := testWorkflow()
	oracle := oracleFor(t, wf, 1*units.GiB)
	bad := []Params{
		{Budget: 0, Iterations: 1},
		{Budget: 1, Iterations: 0},
		{Budget: 1, Iterations: 1, CandidateSample: -1},
	}
	for i, p := range bad {
		if _, err := LocalSearch(wf, oracle, p); err == nil {
			t.Errorf("LocalSearch case %d: invalid params accepted", i)
		}
		if _, err := GreedyMarginal(wf, oracle, p); err == nil {
			t.Errorf("GreedyMarginal case %d: invalid params accepted", i)
		}
	}
}

func TestLocalSearchImprovesOrMatchesSeed(t *testing.T) {
	wf := testWorkflow()
	budget := budgetFor(t, wf)
	oracle := oracleFor(t, wf, budget)
	seedMs, err := oracle(placement.NewFanoutGreedy(wf, budget))
	if err != nil {
		t.Fatal(err)
	}
	res, err := LocalSearch(wf, oracle, Params{Budget: budget, Iterations: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMakespan > seedMs+1e-9 {
		t.Errorf("local search (%.2f) worse than its own seed (%.2f)", res.BestMakespan, seedMs)
	}
	if res.Evaluations == 0 || res.Evaluations > 40 {
		t.Errorf("evaluations = %d, want (0, 40]", res.Evaluations)
	}
	if res.Best.BBBytes(wf) > budget {
		t.Errorf("best placement exceeds budget: %v > %v", res.Best.BBBytes(wf), budget)
	}
	// History is non-increasing (best-so-far).
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-9 {
			t.Fatalf("history not monotone at %d: %v", i, res.History[i-1:i+1])
		}
	}
}

func TestGreedyMarginalBeatsEmpty(t *testing.T) {
	wf := testWorkflow()
	budget := budgetFor(t, wf)
	oracle := oracleFor(t, wf, budget)
	empty, err := oracle(placement.AllPFS())
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyMarginal(wf, oracle, Params{
		Budget: budget, Iterations: 60, Seed: 3, CandidateSample: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMakespan >= empty {
		t.Errorf("greedy (%.2f) no better than all-PFS (%.2f)", res.BestMakespan, empty)
	}
	if res.Best.BBBytes(wf) > budget {
		t.Errorf("placement exceeds budget")
	}
}

func TestSearchesDeterministic(t *testing.T) {
	wf := testWorkflow()
	budget := budgetFor(t, wf)
	run := func() (float64, float64) {
		oracle := oracleFor(t, wf, budget)
		ls, err := LocalSearch(wf, oracle, Params{Budget: budget, Iterations: 20, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		gm, err := GreedyMarginal(wf, oracleFor(t, wf, budget), Params{
			Budget: budget, Iterations: 20, Seed: 5, CandidateSample: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ls.BestMakespan, gm.BestMakespan
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Errorf("searches not deterministic: %v/%v vs %v/%v", a1, b1, a2, b2)
	}
}

func TestOracleErrorsAreInfeasible(t *testing.T) {
	wf := testWorkflow()
	budget := budgetFor(t, wf)
	calls := 0
	failing := func(pol *placement.Set) (float64, error) {
		calls++
		if pol.Count() > 0 {
			return 0, fmt.Errorf("boom")
		}
		return 100, nil
	}
	// Greedy survives: the empty placement works, every addition fails.
	res, err := GreedyMarginal(wf, failing, Params{Budget: budget, Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestMakespan != 100 || res.Best.Count() != 0 {
		t.Errorf("greedy should settle on the empty placement: %+v", res)
	}
	if calls == 0 {
		t.Error("oracle never called")
	}
}
