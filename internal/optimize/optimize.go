// Package optimize searches the data-placement space using the simulator
// as an evaluation oracle — the research program the paper's conclusion
// lays out: "a natural future direction is to leverage our simulator to
// explore the heuristic-space of data placements strategies to optimize
// workflows executions, and to quantify the resulting benefits."
//
// Two searchers are provided. LocalSearch starts from a heuristic seed and
// hill-climbs by toggling files in and out of the burst buffer under a
// capacity budget. GreedyMarginal grows the placement one file at a time,
// always adding the file whose simulated marginal gain is largest. Both
// are deterministic in their seed and count every oracle call, since each
// call is a full simulation.
package optimize

import (
	"fmt"
	"math/rand"
	"sort"

	"bbwfsim/internal/placement"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// Oracle evaluates a candidate placement and returns the simulated
// makespan. Implementations typically wrap core.Simulator.Run; an error
// (e.g. capacity overflow) marks the candidate infeasible.
type Oracle func(pol *placement.Set) (float64, error)

// Params tunes a search.
type Params struct {
	// Budget caps the total bytes placed on the burst buffer (> 0).
	Budget units.Bytes
	// Iterations bounds the number of oracle evaluations (> 0).
	Iterations int
	// Seed drives the (deterministic) random moves of LocalSearch.
	Seed int64
	// CandidateSample bounds how many candidates GreedyMarginal evaluates
	// per round (0 = all).
	CandidateSample int
}

func (p *Params) validate() error {
	if p.Budget <= 0 {
		return fmt.Errorf("optimize: budget must be positive, got %v", p.Budget)
	}
	if p.Iterations <= 0 {
		return fmt.Errorf("optimize: iterations must be positive, got %d", p.Iterations)
	}
	if p.CandidateSample < 0 {
		return fmt.Errorf("optimize: negative candidate sample %d", p.CandidateSample)
	}
	return nil
}

// Result reports a finished search.
type Result struct {
	// Best is the best placement found and BestMakespan its simulated
	// makespan.
	Best         *placement.Set
	BestMakespan float64
	// Evaluations counts oracle calls (simulations).
	Evaluations int
	// History records the best-so-far makespan after every evaluation.
	History []float64
}

// candidates are the files worth placing: everything read or written
// during execution, in insertion order.
func candidates(wf *workflow.Workflow) []*workflow.File {
	var files []*workflow.File
	for _, f := range wf.Files() {
		if len(f.Consumers()) > 0 || f.Producer() != nil {
			files = append(files, f)
		}
	}
	return files
}

func setBytes(wf *workflow.Workflow, ids map[string]bool) units.Bytes {
	var total units.Bytes
	//bbvet:ordered -- file sizes are integral and exactly representable in float64, so the sum is exact and order-independent
	for id := range ids {
		if f := wf.File(id); f != nil {
			total += f.Size()
		}
	}
	return total
}

func toSet(name string, ids map[string]bool) *placement.Set {
	list := make([]string, 0, len(ids))
	//bbvet:ordered -- collected keys are sorted immediately below
	for id := range ids {
		list = append(list, id)
	}
	sort.Strings(list)
	return placement.NewExplicit(name, list)
}

// LocalSearch hill-climbs from a fanout-greedy seed: each step toggles one
// candidate file (adding it if the budget allows, possibly after removing
// a random resident file), keeps improvements, and reverts regressions.
func LocalSearch(wf *workflow.Workflow, oracle Oracle, p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	cands := candidates(wf)
	if len(cands) == 0 {
		return nil, fmt.Errorf("optimize: workflow has no placeable files")
	}

	// Seed from the best static heuristic.
	seed := placement.NewFanoutGreedy(wf, p.Budget)
	current := map[string]bool{}
	for _, f := range cands {
		if seed.Contains(f.ID()) {
			current[f.ID()] = true
		}
	}
	res := &Result{}
	eval := func(ids map[string]bool, label string) (float64, bool) {
		ms, err := oracle(toSet(label, ids))
		res.Evaluations++
		if err != nil {
			res.History = append(res.History, res.BestMakespan)
			return 0, false
		}
		if res.Best == nil || ms < res.BestMakespan {
			res.Best = toSet("local-search", ids)
			res.BestMakespan = ms
		}
		res.History = append(res.History, res.BestMakespan)
		return ms, true
	}

	currentMs, ok := eval(current, "seed")
	if !ok {
		return nil, fmt.Errorf("optimize: seed placement infeasible")
	}
	for res.Evaluations < p.Iterations {
		next := map[string]bool{}
		for id := range current {
			next[id] = true
		}
		f := cands[rng.Intn(len(cands))]
		if next[f.ID()] {
			delete(next, f.ID())
		} else {
			next[f.ID()] = true
			// Evict random residents until the budget fits.
			for setBytes(wf, next) > p.Budget && len(next) > 1 {
				keys := make([]string, 0, len(next))
				//bbvet:ordered -- collected keys are sorted immediately below before the seeded draw
				for id := range next {
					keys = append(keys, id)
				}
				sort.Strings(keys)
				victim := keys[rng.Intn(len(keys))]
				if victim == f.ID() {
					continue
				}
				delete(next, victim)
			}
			if setBytes(wf, next) > p.Budget {
				continue // single file larger than budget
			}
		}
		ms, ok := eval(next, "move")
		if ok && ms <= currentMs {
			current, currentMs = next, ms
		}
	}
	return res, nil
}

// GreedyMarginal grows the placement file by file: each round it simulates
// adding every (or a sampled subset of) not-yet-placed candidate and keeps
// the one with the largest makespan reduction, stopping when the budget is
// exhausted, no candidate helps, or the evaluation budget runs out.
func GreedyMarginal(wf *workflow.Workflow, oracle Oracle, p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	cands := candidates(wf)
	if len(cands) == 0 {
		return nil, fmt.Errorf("optimize: workflow has no placeable files")
	}
	res := &Result{}
	current := map[string]bool{}
	eval := func(ids map[string]bool) (float64, bool) {
		ms, err := oracle(toSet("greedy-marginal", ids))
		res.Evaluations++
		if err == nil && (res.Best == nil || ms < res.BestMakespan) {
			res.Best = toSet("greedy-marginal", ids)
			res.BestMakespan = ms
		}
		res.History = append(res.History, res.BestMakespan)
		return ms, err == nil
	}
	currentMs, ok := eval(current)
	if !ok {
		return nil, fmt.Errorf("optimize: empty placement infeasible")
	}
	for res.Evaluations < p.Iterations {
		// Collect affordable, unplaced candidates.
		var open []*workflow.File
		used := setBytes(wf, current)
		for _, f := range cands {
			if !current[f.ID()] && used+f.Size() <= p.Budget {
				open = append(open, f)
			}
		}
		if len(open) == 0 {
			break
		}
		if p.CandidateSample > 0 && len(open) > p.CandidateSample {
			rng.Shuffle(len(open), func(i, j int) { open[i], open[j] = open[j], open[i] })
			open = open[:p.CandidateSample]
			sort.Slice(open, func(i, j int) bool { return open[i].ID() < open[j].ID() })
		}
		bestID := ""
		bestMs := currentMs
		for _, f := range open {
			if res.Evaluations >= p.Iterations {
				break
			}
			trial := map[string]bool{f.ID(): true}
			for id := range current {
				trial[id] = true
			}
			ms, ok := eval(trial)
			if ok && ms < bestMs {
				bestMs, bestID = ms, f.ID()
			}
		}
		if bestID == "" {
			break // no improving candidate this round
		}
		current[bestID] = true
		currentMs = bestMs
	}
	return res, nil
}
