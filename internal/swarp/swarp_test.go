package swarp

import (
	"math"
	"testing"

	"bbwfsim/internal/calib"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

func TestSinglePipelineShape(t *testing.T) {
	w := MustNew(Params{Pipelines: 1})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1 stage-in + 1 resample + 1 combine.
	if got := len(w.Tasks()); got != 3 {
		t.Fatalf("tasks = %d, want 3", got)
	}
	stage := w.Task("stage_in")
	if stage == nil || stage.Kind() != workflow.KindStageIn {
		t.Fatal("missing stage-in task")
	}
	if got := len(stage.Outputs()); got != 32 { // 16 images + 16 weights
		t.Errorf("stage-in outputs = %d, want 32", got)
	}
	res := w.Task("resample_000")
	if got := len(res.Inputs()); got != 32 {
		t.Errorf("resample inputs = %d, want 32", got)
	}
	if got := len(res.Outputs()); got != 32 {
		t.Errorf("resample outputs = %d, want 32", got)
	}
	com := w.Task("combine_000")
	if got := len(com.Inputs()); got != 32 {
		t.Errorf("combine inputs = %d, want 32", got)
	}
	if got := len(com.Outputs()); got != 2 {
		t.Errorf("combine outputs = %d, want 2 (coadd + weight)", got)
	}
	// Dependency chain: stage → resample → combine.
	if ps := res.Parents(); len(ps) != 1 || ps[0] != stage {
		t.Error("resample should depend only on stage-in")
	}
	if ps := com.Parents(); len(ps) != 1 || ps[0] != res {
		t.Error("combine should depend only on resample")
	}
}

func TestFileSizesMatchPaper(t *testing.T) {
	w := MustNew(Params{Pipelines: 1})
	if got := w.File("p000_img00.fits").Size(); got != 32*units.MiB {
		t.Errorf("image size = %v, want 32 MiB", got)
	}
	if got := w.File("p000_wht00.fits").Size(); got != 16*units.MiB {
		t.Errorf("weight size = %v, want 16 MiB", got)
	}
	if got := InputBytesPerPipeline(0); got != 16*(32+16)*units.MiB {
		t.Errorf("input bytes per pipeline = %v, want 768 MiB", got)
	}
}

func TestLambdaAnnotations(t *testing.T) {
	w := MustNew(Params{Pipelines: 2})
	if got := w.Task("resample_001").LambdaIO(); got != calib.LambdaIOResample {
		t.Errorf("resample λ = %v, want %v", got, calib.LambdaIOResample)
	}
	if got := w.Task("combine_001").LambdaIO(); got != calib.LambdaIOCombine {
		t.Errorf("combine λ = %v, want %v", got, calib.LambdaIOCombine)
	}
}

func TestWorkDerivesFromEq4(t *testing.T) {
	// ResampleWork must equal p(1−λ)T(p)·speed for the anchor observation.
	want := 32 * (1 - 0.203) * 12.0 * 36.80e9
	if math.Abs(float64(ResampleWork)-want) > 1e-3 {
		t.Errorf("ResampleWork = %v, want %v", float64(ResampleWork), want)
	}
	o := calib.Observation{TaskName: "resample", Cores: 32, Time: 12, LambdaIO: calib.LambdaIOResample}
	w, err := o.Work(36.80 * units.GFlopPerSec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(w-ResampleWork)) > 1e-3 {
		t.Errorf("calib package disagrees with swarp anchor: %v vs %v", w, ResampleWork)
	}
}

func TestManyPipelinesIndependent(t *testing.T) {
	const n = 8
	w := MustNew(Params{Pipelines: n})
	if got := len(w.Tasks()); got != 1+2*n {
		t.Fatalf("tasks = %d, want %d", got, 1+2*n)
	}
	levels, err := w.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// Level 0: stage-in; level 1: n resamples; level 2: n combines.
	if len(levels) != 3 || len(levels[1]) != n || len(levels[2]) != n {
		t.Errorf("level shape wrong: %d levels", len(levels))
	}
	// Pipelines must not share files.
	for _, f := range w.Files() {
		if len(f.Consumers()) > 1 {
			t.Errorf("file %s shared by %d consumers", f.ID(), len(f.Consumers()))
		}
	}
}

func TestCoresParameter(t *testing.T) {
	w := MustNew(Params{Pipelines: 1, CoresPerTask: 8})
	if got := w.Task("resample_000").Cores(); got != 8 {
		t.Errorf("resample cores = %d, want 8", got)
	}
	if got := w.Task("stage_in").Cores(); got != 1 {
		t.Errorf("stage-in cores = %d, want 1 (always sequential)", got)
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := New(Params{Pipelines: 0}); err == nil {
		t.Error("0 pipelines accepted")
	}
	if _, err := New(Params{Pipelines: -3}); err == nil {
		t.Error("negative pipelines accepted")
	}
}

func TestStatsFootprint(t *testing.T) {
	w := MustNew(Params{Pipelines: 1})
	s, err := w.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	// Inputs (produced by stage-in, so not "workflow inputs"): footprint =
	// 768 MiB staged + 768 MiB intermediates + 96 MiB coadd.
	want := 768*units.MiB + 768*units.MiB + 96*units.MiB
	if s.TotalBytes != want {
		t.Errorf("footprint = %v, want %v", s.TotalBytes, want)
	}
	if s.TasksByName["resample"] != 1 || s.TasksByName["combine"] != 1 {
		t.Error("task categories wrong")
	}
}
