// Package swarp generates instances of the SWarp cosmology workflow used
// throughout the paper's characterization (Section III-B): one sequential
// stage-in task followed by N independent pipelines, each a Resample task
// feeding a Combine task.
//
// Per pipeline, the inputs are 16 images of 32 MiB and 16 weight maps of
// 16 MiB (the paper's instance). Resample produces one resampled image and
// weight per input pair; Combine reads all intermediates and produces a
// single co-added image and its weight map — the 1:N access pattern the
// paper identifies as pathological for the striped BB mode.
//
// The compute-work constants are synthetic calibration anchors (we have no
// Cori to measure): they are chosen so a 32-core Resample/Combine lands in
// the tens of seconds with the paper's λ_io values (0.203 / 0.260), and are
// derived through the same Eq. 4 pipeline the paper uses (see DESIGN.md).
package swarp

import (
	"fmt"

	"bbwfsim/internal/calib"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// The paper's SWarp instance parameters.
const (
	// ImagesPerPipeline is the number of input images (and weight maps).
	ImagesPerPipeline = 16
	// ImageSize and WeightSize are the input file sizes.
	ImageSize  = 32 * units.MiB
	WeightSize = 16 * units.MiB
	// CombinedImageSize and CombinedWeightSize are the synthetic sizes of
	// Combine's two outputs (the co-added image and its weight map).
	CombinedImageSize  = 64 * units.MiB
	CombinedWeightSize = 32 * units.MiB
)

// Synthetic observed anchor times: wall time of each task on 32 Cori cores
// with all data on the burst buffer, standing in for the paper's real
// measurements. Work values derive from them via Eq. 4.
const (
	anchorCores        = 32
	anchorResampleTime = 12.0 // seconds, λ_io = 0.203
	anchorCombineTime  = 8.0  // seconds, λ_io = 0.260
	coriCoreSpeed      = 36.80e9
)

// ResampleWork and CombineWork are the calibrated sequential compute works:
// W = p · (1 − λ) · T(p) · speed (Eq. 4 times core speed).
var (
	ResampleWork = units.Flops(anchorCores * (1 - calib.LambdaIOResample) * anchorResampleTime * coriCoreSpeed)
	CombineWork  = units.Flops(anchorCores * (1 - calib.LambdaIOCombine) * anchorCombineTime * coriCoreSpeed)
)

// Params configures a generated SWarp instance.
type Params struct {
	// Pipelines is the number of independent Resample→Combine pipelines.
	Pipelines int
	// CoresPerTask is the requested core count of Resample and Combine
	// tasks (the stage-in task is always sequential). Defaults to 32.
	CoresPerTask int
	// Images overrides ImagesPerPipeline when positive.
	Images int
	// ResampleWork and CombineWork override the calibrated works when
	// positive (used when re-calibrating against testbed observations).
	ResampleWork units.Flops
	CombineWork  units.Flops
	// Alpha is the Amdahl fraction of both compute tasks (0 = the paper's
	// perfect-speedup assumption). ResampleAlpha and CombineAlpha override
	// it per category when positive (used by the Eq. 3 calibration
	// ablation).
	Alpha         float64
	ResampleAlpha float64
	CombineAlpha  float64
}

func (p *Params) withDefaults() Params {
	q := *p
	if q.CoresPerTask == 0 {
		q.CoresPerTask = 32
	}
	if q.Images == 0 {
		q.Images = ImagesPerPipeline
	}
	if q.ResampleWork == 0 { //bbvet:allow float-compare -- zero is the "use default" sentinel for an unset parameter
		q.ResampleWork = ResampleWork
	}
	if q.CombineWork == 0 { //bbvet:allow float-compare -- zero is the "use default" sentinel for an unset parameter
		q.CombineWork = CombineWork
	}
	if q.ResampleAlpha == 0 { //bbvet:allow float-compare -- zero is the "use default" sentinel for an unset parameter
		q.ResampleAlpha = q.Alpha
	}
	if q.CombineAlpha == 0 { //bbvet:allow float-compare -- zero is the "use default" sentinel for an unset parameter
		q.CombineAlpha = q.Alpha
	}
	return q
}

// New generates a SWarp workflow instance.
func New(params Params) (*workflow.Workflow, error) {
	p := params.withDefaults()
	if p.Pipelines <= 0 {
		return nil, fmt.Errorf("swarp: pipelines must be positive, got %d", p.Pipelines)
	}
	if p.CoresPerTask < 0 || p.Images <= 0 {
		return nil, fmt.Errorf("swarp: invalid parameters %+v", p)
	}
	w := workflow.New(fmt.Sprintf("swarp-%dp", p.Pipelines))

	// All pipeline inputs are produced by the single stage-in task.
	var stageOutputs []string
	for i := 0; i < p.Pipelines; i++ {
		for j := 0; j < p.Images; j++ {
			img := fmt.Sprintf("p%03d_img%02d.fits", i, j)
			wht := fmt.Sprintf("p%03d_wht%02d.fits", i, j)
			w.MustAddFile(img, ImageSize)
			w.MustAddFile(wht, WeightSize)
			stageOutputs = append(stageOutputs, img, wht)
		}
	}
	w.MustAddTask(workflow.TaskSpec{
		ID:      "stage_in",
		Name:    "stage_in",
		Kind:    workflow.KindStageIn,
		Cores:   1,
		Outputs: stageOutputs,
	})

	for i := 0; i < p.Pipelines; i++ {
		var resampleIn, resampleOut, combineIn []string
		for j := 0; j < p.Images; j++ {
			resampleIn = append(resampleIn,
				fmt.Sprintf("p%03d_img%02d.fits", i, j),
				fmt.Sprintf("p%03d_wht%02d.fits", i, j))
			rimg := fmt.Sprintf("p%03d_rimg%02d.fits", i, j)
			rwht := fmt.Sprintf("p%03d_rwht%02d.fits", i, j)
			w.MustAddFile(rimg, ImageSize)
			w.MustAddFile(rwht, WeightSize)
			resampleOut = append(resampleOut, rimg, rwht)
			combineIn = append(combineIn, rimg, rwht)
		}
		w.MustAddTask(workflow.TaskSpec{
			ID:       fmt.Sprintf("resample_%03d", i),
			Name:     "resample",
			Work:     p.ResampleWork,
			Cores:    p.CoresPerTask,
			Alpha:    p.ResampleAlpha,
			LambdaIO: calib.LambdaIOResample,
			Inputs:   resampleIn,
			Outputs:  resampleOut,
		})
		coadd := fmt.Sprintf("p%03d_coadd.fits", i)
		coaddW := fmt.Sprintf("p%03d_coadd_weight.fits", i)
		w.MustAddFile(coadd, CombinedImageSize)
		w.MustAddFile(coaddW, CombinedWeightSize)
		w.MustAddTask(workflow.TaskSpec{
			ID:       fmt.Sprintf("combine_%03d", i),
			Name:     "combine",
			Work:     p.CombineWork,
			Cores:    p.CoresPerTask,
			Alpha:    p.CombineAlpha,
			LambdaIO: calib.LambdaIOCombine,
			Inputs:   combineIn,
			Outputs:  []string{coadd, coaddW},
		})
	}
	return w, nil
}

// MustNew is New for known-good parameters.
func MustNew(params Params) *workflow.Workflow {
	w, err := New(params)
	if err != nil {
		panic(err)
	}
	return w
}

// InputBytesPerPipeline returns the staged data volume of one pipeline.
func InputBytesPerPipeline(images int) units.Bytes {
	if images <= 0 {
		images = ImagesPerPipeline
	}
	return units.Bytes(images) * (ImageSize + WeightSize)
}
