// Package experiments regenerates every table and figure of the paper's
// evaluation: the characterization figures (4–9) from the synthetic
// testbed, the accuracy figures (10–11) comparing the calibrated
// lightweight simulator against the testbed, the 1000Genomes case study
// (13–14), and two extension ablations (placement heuristics, calibration
// model). Each experiment renders fixed-width text tables whose rows are
// the series the paper plots.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
	"unicode/utf8"

	"bbwfsim/internal/calib"
	"bbwfsim/internal/core"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/runner"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/testbed"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// Options tunes an experiment run.
type Options struct {
	// Reps is the number of testbed repetitions per configuration; the
	// paper averages over 15. Defaults to 15.
	Reps int
	// Seed is the base seed for testbed noise. Defaults to 1.
	Seed int64
	// Quick shrinks sweeps (fewer fractions, pipeline counts, reps) for
	// benchmarks and smoke tests.
	Quick bool
	// Stopwatch, when non-nil, returns elapsed wall time and enables the
	// wall-clock columns of the scalability experiment. It is nil by
	// default so experiment output depends only on inputs (bit-identical
	// repeated runs); callers that want real timings inject a clock, as
	// `bbexp -walltime` does. Deterministic packages cannot read the wall
	// clock themselves (bbvet's no-walltime rule).
	Stopwatch func() time.Duration
	// Jobs is the worker count for fanning a sweep's independent run
	// points across goroutines via internal/runner. Values < 1 resolve to
	// GOMAXPROCS; 1 executes serially. Every run point owns private
	// simulation state, so output is bit-identical at any Jobs value —
	// parallelism only changes wall-clock time.
	Jobs int
	// Recovery restricts the resilience-ckpt sweep to one recovery policy
	// (lineage, ckpt-bb, ckpt-pfs, ckpt-bb+drain). Empty runs them all.
	// Other experiments ignore it.
	Recovery string
	// SWF, when non-empty, feeds the sched experiment's campaign from
	// this Standard Workload Format trace file instead of the synthetic
	// generator: every (pressure, policy) cell replays the same trace
	// prefix, so rows differ by scheduling decisions alone. The file is
	// read once per RunSched call; output stays a bit-identical function
	// of (file contents, Options). Other experiments ignore it.
	SWF string
	// Metrics, when non-nil, receives each instrumented experiment's
	// aggregated observability snapshot: the per-run metrics.Snapshot of
	// every lightweight-simulator run the experiment performs, merged in
	// submission (index) order so the aggregate is bit-identical at any
	// Jobs value. Testbed runs carry no snapshot — the synthetic testbed
	// plays the role of the measured machine, not of an instrumented
	// simulation. Nil by default: experiments skip aggregation entirely
	// when nobody is observing.
	Metrics func(*metrics.Snapshot)
}

// emitMetrics merges per-run snapshots in index order and hands the result
// to the Options sink. The slice order must be a deterministic function of
// the experiment's sweep definition (never of worker completion order);
// every caller passes runner.Map/MapReduce output or a fixed concatenation
// of such outputs.
func emitMetrics(o Options, snaps []*metrics.Snapshot) {
	if o.Metrics == nil {
		return
	}
	if m := metrics.Merge(snaps); m != nil {
		o.Metrics(m)
	}
}

// withDefaults validates the options and fills the defaults in. Invalid
// values (negative repetition counts or seeds) error out here, before any
// experiment spends time simulating, and the error surfaces through every
// Run* entry point.
func (o Options) withDefaults() (Options, error) {
	q := o
	if q.Reps < 0 {
		return q, fmt.Errorf("experiments: negative repetition count %d", q.Reps)
	}
	if q.Seed < 0 {
		return q, fmt.Errorf("experiments: negative seed %d", q.Seed)
	}
	if q.Reps == 0 {
		q.Reps = 15
		if q.Quick {
			q.Reps = 3
		}
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	return q, nil
}

// Table is one rendered result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned fixed-width columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && utf8.RuneCountInString(cell) > widths[i] {
				widths[i] = utf8.RuneCountInString(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV renders the table as comma-separated values (header first). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		quoted := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(quoted, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) ([]*Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: simulation input parameters", RunTable1},
		{"fig4", "Fig. 4: stage-in time vs. fraction of input files in the BB", RunFig4},
		{"fig5", "Fig. 5: Resample/Combine execution time per BB mode and intermediate placement", RunFig5},
		{"fig6", "Fig. 6: execution time vs. cores per task (all data in BB)", RunFig6},
		{"fig7", "Fig. 7: execution time vs. concurrent pipelines (1 core each, all data in BB)", RunFig7},
		{"fig8", "Fig. 8: Resample run-to-run variability vs. concurrent pipelines", RunFig8},
		{"fig9", "Fig. 9: average achieved burst-buffer bandwidth", RunFig9},
		{"fig10", "Fig. 10: real vs. simulated makespan vs. staged fraction", RunFig10},
		{"fig11", "Fig. 11: real vs. simulated makespan vs. concurrent pipelines", RunFig11},
		{"fig13", "Fig. 13: 1000Genomes simulated makespan vs. staged fraction", RunFig13},
		{"fig14", "Fig. 14: 1000Genomes speedup + prior-study reference", RunFig14},
		{"ablation-placement", "Ablation: data-placement heuristics under a constrained BB", RunAblationPlacement},
		{"ablation-model", "Ablation: Eq. 4 (perfect speedup) vs. Eq. 3 (Amdahl) calibration", RunAblationModel},
		{"ablation-scheduler", "Ablation: WMS scheduling policies", RunAblationScheduler},
		{"ablation-lifecycle", "Ablation: scratch-data lifecycle management under a constrained BB", RunAblationLifecycle},
		{"ablation-visibility", "Ablation: private-mode visibility rule on multi-node runs", RunAblationVisibility},
		{"ablation-checkpoint", "Ablation: checkpoint-traffic interference", RunAblationCheckpoint},
		{"ablation-optimizer", "Ablation: simulator-in-the-loop placement search", RunAblationOptimizer},
		{"ablation-lambda", "Ablation: λ_io from the paper's PFS values vs. measured on the target mode", RunAblationLambda},
		{"ablation-structures", "Ablation: which workflow structures benefit from burst buffers", RunAblationStructures},
		{"ablation-sizing", "Ablation: burst-buffer capacity provisioning", RunAblationSizing},
		{"resilience", "Resilience: fault injection & recovery on SWarp", RunResilience},
		{"resilience-genomes", "Resilience: fault injection & recovery on 1000Genomes", RunResilienceGenomes},
		{"resilience-ckpt", "Resilience: checkpoint/restart policy study (interval × tier × failure rate)", RunResilienceCkpt},
		{"adaptive", "Graceful degradation: static vs. adaptive vs. oracle placement under BB pressure", RunAdaptive},
		{"sched", "Multi-tenant batch scheduling: policy × BB pressure on a shared cluster", RunSched},
		{"scalability", "Simulator cost vs. workflow size", RunScalability},
		{"scale", "Simulator ceiling on generated million-task-class workflows", RunScale},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// --- shared sweep definitions -------------------------------------------

func fractions(o Options) []float64 {
	if o.Quick {
		return []float64{0, 0.5, 1}
	}
	return []float64{0, 0.25, 0.5, 0.75, 1}
}

func pipelineCounts(o Options) []int {
	if o.Quick {
		return []int{1, 8, 32}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

func coreCounts(o Options) []int {
	if o.Quick {
		return []int{1, 8, 32}
	}
	return []int{1, 2, 4, 8, 16, 32}
}

// profileOrder fixes the column order of the three machines.
var profileOrder = []string{"cori-private", "cori-striped", "summit"}

func orderedProfiles(nodes int) []testbed.Profile {
	all := testbed.Profiles(nodes)
	out := make([]testbed.Profile, 0, len(profileOrder))
	for _, name := range profileOrder {
		out = append(out, all[name])
	}
	return out
}

// simPreset returns the lightweight simulator's platform (Table I presets)
// matching a testbed profile name.
func simPreset(name string, nodes int) platform.Config {
	cfg, ok := platform.Presets(nodes)[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown profile %q", name))
	}
	return cfg
}

// testbedSwarp builds the ground-truth SWarp instance (true works; the
// testbed's compute model supplies the true scaling behavior).
func testbedSwarp(pipelines, cores int) *workflow.Workflow {
	return swarp.MustNew(swarp.Params{
		Pipelines:    pipelines,
		CoresPerTask: cores,
		ResampleWork: testbed.TrueResampleWork,
		CombineWork:  testbed.TrueCombineWork,
	})
}

// swarpWithWorks builds a simulator-side SWarp instance with explicit
// calibrated works.
func swarpWithWorks(pipelines, cores int, resampleWork, combineWork units.Flops) *workflow.Workflow {
	return swarp.MustNew(swarp.Params{
		Pipelines:    pipelines,
		CoresPerTask: cores,
		ResampleWork: resampleWork,
		CombineWork:  combineWork,
	})
}

// calibrateSwarp runs the paper's calibration pipeline: observe the anchor
// scenario (one pipeline, all data in the BB) on the testbed at the given
// core count, then apply Eq. 4 to produce the simulator's workflow.
func calibrateSwarp(prof testbed.Profile, pipelines, cores int, o Options) (*workflow.Workflow, error) {
	runner := testbed.NewRunner(prof, o.Seed)
	anchor, err := runner.Run(testbedSwarp(1, cores),
		testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: cores}, o.Reps)
	if err != nil {
		return nil, fmt.Errorf("calibration anchor on %s: %w", prof.Name, err)
	}
	obs := []calib.Observation{
		{TaskName: "resample", Cores: cores, Time: anchor.TaskMean("resample"), LambdaIO: calib.LambdaIOResample},
		{TaskName: "combine", Cores: cores, Time: anchor.TaskMean("combine"), LambdaIO: calib.LambdaIOCombine},
	}
	cal, err := core.CalibrateWorks(obs, prof.Platform.CoreSpeed)
	if err != nil {
		return nil, err
	}
	rw, err := cal.Work("resample")
	if err != nil {
		return nil, err
	}
	cw, err := cal.Work("combine")
	if err != nil {
		return nil, err
	}
	return swarp.MustNew(swarp.Params{
		Pipelines:    pipelines,
		CoresPerTask: cores,
		ResampleWork: rw,
		CombineWork:  cw,
	}), nil
}

// runPoints fans one simulation run per element of ps across o.Jobs
// workers (internal/runner) and returns the results in point order. Each
// point function builds its own simulator/testbed state, so results — and
// therefore every table row assembled from them — are bit-identical to a
// serial loop at any Jobs value.
func runPoints[P, R any](o Options, ps []P, fn func(P) (R, error)) ([]R, error) {
	return runner.Map(o.Jobs, len(ps), func(i int) (R, error) { return fn(ps[i]) })
}

// --- formatting helpers ---------------------------------------------------

func fsec(v float64) string { return fmt.Sprintf("%.2f", v) }

func fsecStd(mean, std float64) string { return fmt.Sprintf("%.2f ± %.2f", mean, std) }

func fpct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func ffrac(q float64) string { return fmt.Sprintf("%.0f%%", 100*q) }

func fbw(v float64) string { return units.Bandwidth(v).String() }

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
