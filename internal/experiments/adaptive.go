package experiments

import (
	"fmt"

	"bbwfsim/internal/adapt"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// The adaptive experiment is the graceful-degradation study: under a burst
// buffer deliberately provisioned below the workflow's footprint — and under
// the same seeded failure campaigns as the resilience sweep — it compares
// three placement stances. "static" stages everything to the BB and treats
// overflow as fatal (no fallback), the paper's all-in-BB configuration run
// outside its comfort zone. "adaptive" starts from the same all-in-BB intent
// but turns the runtime adaptation layer on (pressure spill with hysteresis,
// fault-aware replication, degradation-aware admission). "oracle" knows the
// capacity in advance and stages only what fits (large-first size-greedy) —
// the planning-time upper bound adaptation tries to approach without
// foresight. Failed runs are data, not errors: each failure is charged a full
// fault-free re-execution in the re-exec compute column.

// adaptPressure provisions the BB as a fraction of the workflow's all-in-BB
// footprint. Above one the static stance is safe; below one it overflows.
type adaptPressure struct {
	label string
	frac  float64
}

var adaptPressures = []adaptPressure{
	{"ample", 1.5},
	{"tight", 0.6},
	{"scarce", 0.2},
}

// adaptStudyPolicy is the adaptation stance under study: spill early (half
// the band free above the high-water mark), replicate sole-replica inputs
// after faults, and route new allocations away from degraded tiers.
var adaptStudyPolicy = adapt.Policy{
	SpillHighWater:   0.7,
	SpillLowWater:    0.35,
	ReplicateOnFault: true,
	DegradedFallback: true,
}

var adaptiveHeader = []string{
	"workflow", "platform", "bb capacity", "failures", "policy", "outcome",
	"makespan [s]", "slowdown", "re-exec compute [s]", "spills", "replications", "fallbacks",
}

// adaptCapacity squeezes the preset's burst buffer to the given total. For
// node-local BBs (summit) the total is split evenly across the nodes, since
// each node's service enforces the per-service capacity.
func adaptCapacity(cfg platform.Config, total units.Bytes, nodes int) platform.Config {
	per := total
	if cfg.BBKind == platform.BBOnNode {
		per = total / units.Bytes(nodes)
	}
	cfg.BB.Capacity = per
	return cfg
}

// RunAdaptive sweeps placement stance × BB pressure × failure rate on the two
// case-study workflows. Within one (workflow, platform, pressure, failures)
// cell all three stances replay the bit-identical fault stream — the cell
// seed depends only on the cell — so rows differ by stance alone.
func RunAdaptive(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	profiles := []string{"cori-private", "summit"}
	regimes := faultRegimes // none, rare, frequent
	pipelines, chrom := 8, genomes.DefaultChromosomes
	if o.Quick {
		profiles = profiles[:1]
		regimes = []faultRegime{faultRegimes[0], faultRegimes[2]}
		pipelines, chrom = 4, 4
	}

	type adaptWorkload struct {
		label string
		wf    *workflow.Workflow
		nodes int
	}
	workloads := []adaptWorkload{
		{"swarp", swarp.MustNew(swarp.Params{Pipelines: pipelines, CoresPerTask: 8}), 2},
		{"genomes", genomes.MustNew(genomes.Params{Chromosomes: chrom}), caseStudyNodes},
	}

	type basePoint struct {
		wl      adaptWorkload
		profile string
	}
	var bps []basePoint
	for _, wl := range workloads {
		for _, profile := range profiles {
			bps = append(bps, basePoint{wl, profile})
		}
	}
	// Baselines run on the unconstrained preset: the fault-free all-in-BB
	// makespan and compute that "slowdown" and "re-exec compute" reference.
	baselines, err := runPoints(o, bps, func(bp basePoint) (*core.Result, error) {
		sim := core.MustNewSimulator(simPreset(bp.profile, bp.wl.nodes))
		res, err := sim.Run(bp.wl.wf, core.RunOptions{Placement: placement.AllBB(bp.wl.wf)})
		if err != nil {
			return nil, fmt.Errorf("adaptive %s/%s baseline: %w", bp.wl.label, bp.profile, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}

	type adaptCase struct {
		wl      adaptWorkload
		profile string
		press   adaptPressure
		reg     faultRegime
		policy  string
		seed    int64
		base    *core.Result
	}
	var cases []adaptCase
	cell := 0
	for wi, wl := range workloads {
		for pi, profile := range profiles {
			base := baselines[wi*len(profiles)+pi]
			for _, press := range adaptPressures {
				for _, reg := range regimes {
					// One fault stream per cell, shared by every stance —
					// the comparison the experiment exists for.
					cell++
					seed := o.Seed + 9176*int64(cell)
					for _, policy := range []string{"static", "adaptive", "oracle"} {
						cases = append(cases, adaptCase{wl, profile, press, reg, policy, seed, base})
					}
				}
			}
		}
	}

	// A failed run (BB overflow with no fallback, or an exhausted retry
	// budget) is an observation, not a sweep error.
	type adaptOutcome struct {
		res    *core.Result
		failed bool
	}
	results, err := runPoints(o, cases, func(c adaptCase) (adaptOutcome, error) {
		wf := c.wl.wf
		footprint := placement.AllBB(wf).BBBytes(wf)
		total := units.Bytes(float64(footprint) * c.press.frac)
		cfg := adaptCapacity(simPreset(c.profile, c.wl.nodes), total, c.wl.nodes)
		ro := core.RunOptions{}
		switch c.policy {
		case "static":
			ro.Placement = placement.AllBB(wf)
		case "adaptive":
			ro.Placement = placement.AllBB(wf)
			ro.Adapt = adaptStudyPolicy
		default: // oracle
			// The planner budgets against the capacity a single service
			// enforces: on node-local BBs (summit) a file lands wholly on
			// its producer's node, so the safe plan fits any one node.
			ro.Placement = placement.NewSizeGreedy(wf, cfg.BB.Capacity, false)
		}
		if c.reg.crashDiv > 0 {
			inj, err := faults.New(regimeConfig(c.reg, c.base.Makespan, c.seed))
			if err != nil {
				return adaptOutcome{}, err
			}
			ro.Faults = inj
			ro.Retry = exec.RetryPolicy{
				MaxRetries: 60, Backoff: exec.BackoffExponential,
				BaseDelay: 2, MaxDelay: 120, Jitter: 0.25, Seed: c.seed,
			}
		}
		res, err := core.MustNewSimulator(cfg).Run(wf, ro)
		if err != nil {
			return adaptOutcome{failed: true}, nil
		}
		return adaptOutcome{res: res}, nil
	})
	if err != nil {
		return nil, err
	}
	if o.Metrics != nil {
		snaps := make([]*metrics.Snapshot, 0, len(baselines)+len(results))
		for _, b := range baselines {
			snaps = append(snaps, b.Metrics)
		}
		for _, r := range results {
			if r.res != nil {
				snaps = append(snaps, r.res.Metrics)
			}
		}
		emitMetrics(o, snaps)
	}

	t := &Table{
		ID: "adaptive",
		Title: fmt.Sprintf("Graceful degradation under BB pressure: static vs. adaptive vs. oracle placement (SWarp %d pipelines on 2 nodes, 1000Genomes %d chromosomes on %d nodes)",
			pipelines, chrom, caseStudyNodes),
		Header: adaptiveHeader,
	}
	row := 0
	for wi, wl := range workloads {
		for pi, profile := range profiles {
			base := baselines[wi*len(profiles)+pi]
			baseExec := sumFamily(base.Metrics, metrics.ComputeExecutedSecondsTotal)
			t.Rows = append(t.Rows, []string{wl.label, profile, "unconstrained", "none", "—", "ok",
				fsec(base.Makespan), "1.00×", "0.00", "0", "0", "0"})
			for ; row < len(cases) && cases[row].wl.label == wl.label && cases[row].profile == profile; row++ {
				c, out := cases[row], results[row]
				press := fmt.Sprintf("%s (%.0f%%)", c.press.label, 100*c.press.frac)
				if out.failed {
					// A failed run forfeits its compute: re-running from
					// scratch costs at least the fault-free baseline.
					t.Rows = append(t.Rows, []string{wl.label, profile, press, c.reg.label,
						c.policy, "failed", "—", "—", fsec(baseExec), "—", "—", "—"})
					continue
				}
				res := out.res
				t.Rows = append(t.Rows, []string{wl.label, profile, press, c.reg.label,
					c.policy, "ok",
					fsec(res.Makespan),
					fmt.Sprintf("%.2f×", res.Makespan/base.Makespan),
					fsec(sumFamily(res.Metrics, metrics.ComputeExecutedSecondsTotal) - baseExec),
					fmt.Sprint(res.Faults.AdaptSpills),
					fmt.Sprint(res.Faults.AdaptReplications),
					fmt.Sprint(res.Faults.AdaptFallbacks),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"\"bb capacity\" provisions the burst buffer as a fraction of the workflow's",
		"all-in-BB footprint; no policy gets the BBFallback escape hatch, so on \"static\"",
		"a full BB is fatal (outcome \"failed\", charged one fault-free re-execution of",
		"compute). \"adaptive\" keeps the all-in-BB placement but spills at 70% occupancy",
		"(hysteresis to 35%), replicates sole-replica inputs after faults, and routes",
		"allocations away from degraded tiers. \"oracle\" plans within the capacity up",
		"front (large-first size-greedy) — the foresight bound. Fault calibration",
		"matches the resilience table; within one workflow × platform × capacity ×",
		"failure-rate cell every stance replays the bit-identical fault stream.",
	)
	return []*Table{t}, nil
}
