package experiments

import (
	"fmt"

	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/workflow"
)

// The resilience experiments measure how fault injection and the recovery
// policies change workflow makespan: failure rate × retry policy × platform
// profile, on the paper's two workloads (SWarp, Fig. 4 setting; 1000Genomes,
// Fig. 13 setting). Failure processes are calibrated against each
// configuration's fault-free makespan, so "rare" and "frequent" mean the
// same thing on every platform and at every --quick scale.

// retryCase pairs a label with a retry policy.
type retryCase struct {
	label  string
	policy exec.RetryPolicy
}

func retryCases(seed int64) []retryCase {
	return []retryCase{
		{"fixed 5s", exec.RetryPolicy{MaxRetries: 60, Backoff: exec.BackoffFixed, BaseDelay: 5}},
		{"expo 2s+jitter", exec.RetryPolicy{
			MaxRetries: 60, Backoff: exec.BackoffExponential,
			BaseDelay: 2, MaxDelay: 120, Jitter: 0.25, Seed: seed,
		}},
	}
}

// faultRegime scales a composite failure process from a fault-free
// makespan: task crashes at the given mean-time-between-failures, node
// failures about once per run, occasional BB allocation rejections, and a
// transient BB degradation window.
type faultRegime struct {
	label    string
	crashDiv float64 // crash MTBF = makespan / crashDiv; 0 disables faults
}

var faultRegimes = []faultRegime{
	{"none", 0},
	{"rare", 2},
	{"frequent", 8},
}

func regimeConfig(r faultRegime, baseline float64, seed int64) faults.Config {
	return faults.Config{
		Seed: seed,
		// Campaigns are bounded (Budget) so the sweep terminates even when
		// recovery stretches the run well past the fault-free makespan.
		TaskCrash:   &faults.CrashProcess{Arrival: faults.Exp(baseline / r.crashDiv), Budget: int(2 * r.crashDiv)},
		NodeFailure: &faults.NodeProcess{Arrival: faults.Exp(baseline), MTTR: baseline / 10, Budget: 2},
		BBReject:    &faults.RejectPolicy{Prob: 0.05},
		BBDegrade:   &faults.DegradeProcess{Arrival: faults.Exp(baseline / 2), Duration: baseline / 20, Factor: 0.3},
	}
}

// resilienceRows runs the regime × retry sweep for the given platform
// profiles, appending one row per configuration in profile-major order.
//
// The sweep fans across Options.Jobs workers in two stages: first the
// fault-free baseline per profile, then every (profile, regime, retry)
// fault case. Each case's seed is the closed form o.Seed + 9176·k (k-th
// fault case of its profile, counted in regime × retry order) — exactly the
// values the serial caseSeed += 9176 accumulation drew — so every fault
// stream is bit-identical at any Jobs value.
func resilienceRows(t *Table, profiles []string, nodes int, wf *workflow.Workflow, ro core.RunOptions, o Options) error {
	baselines, err := runPoints(o, profiles, func(profile string) (*core.Result, error) {
		sim := core.MustNewSimulator(simPreset(profile, nodes))
		base, err := sim.Run(wf, ro)
		if err != nil {
			return nil, fmt.Errorf("resilience %s baseline: %w", profile, err)
		}
		return base, nil
	})
	if err != nil {
		return err
	}
	type faultCase struct {
		profile string
		base    *core.Result
		reg     faultRegime
		rc      retryCase
		seed    int64
	}
	var cases []faultCase
	for pi, profile := range profiles {
		caseSeed := o.Seed
		for _, reg := range faultRegimes {
			if reg.crashDiv == 0 { //bbvet:allow float-compare -- zero is the literal "no faults" sentinel from the regime table, never computed
				continue
			}
			for _, rc := range retryCases(o.Seed) {
				caseSeed += 9176 // disjoint fault streams per configuration
				cases = append(cases, faultCase{profile, baselines[pi], reg, rc, caseSeed})
			}
		}
	}
	results, err := runPoints(o, cases, func(c faultCase) (*core.Result, error) {
		inj, err := faults.New(regimeConfig(c.reg, c.base.Makespan, c.seed))
		if err != nil {
			return nil, err
		}
		fo := ro
		fo.Faults = inj
		fo.Retry = c.rc.policy
		fo.BBFallback = true
		res, err := core.MustNewSimulator(simPreset(c.profile, nodes)).Run(wf, fo)
		if err != nil {
			return nil, fmt.Errorf("resilience %s/%s/%s: %w", c.profile, c.reg.label, c.rc.label, err)
		}
		return res, nil
	})
	if err != nil {
		return err
	}
	if o.Metrics != nil {
		// Aggregate order is fixed by the sweep definition: baselines in
		// profile order, then fault cases in case-table order.
		snaps := make([]*metrics.Snapshot, 0, len(baselines)+len(results))
		for _, b := range baselines {
			snaps = append(snaps, b.Metrics)
		}
		for _, r := range results {
			snaps = append(snaps, r.Metrics)
		}
		emitMetrics(o, snaps)
	}
	casesPerProfile := len(cases) / len(profiles)
	for pi, profile := range profiles {
		base := baselines[pi]
		t.Rows = append(t.Rows, []string{profile, faultRegimes[0].label, "—",
			fsec(base.Makespan), "1.00×", "0", "0", "0", "0"})
		for ci := pi * casesPerProfile; ci < (pi+1)*casesPerProfile; ci++ {
			c, res := cases[ci], results[ci]
			t.Rows = append(t.Rows, []string{
				profile, c.reg.label, c.rc.label,
				fsec(res.Makespan),
				fmt.Sprintf("%.2f×", res.Makespan/base.Makespan),
				fmt.Sprint(res.Faults.TaskFailures),
				fmt.Sprint(res.Faults.Retries),
				fmt.Sprint(res.Faults.NodeFailures),
				fmt.Sprint(res.Faults.Fallbacks),
			})
		}
	}
	return nil
}

var resilienceHeader = []string{
	"platform", "failures", "retry policy", "makespan [s]", "slowdown",
	"task failures", "retries", "node failures", "fallbacks",
}

// RunResilience measures makespan and slowdown of an all-BB SWarp execution
// (the Fig. 4 setting) under seeded fault injection, across failure regimes,
// retry policies, and the three platform profiles.
func RunResilience(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	pipelines := 8
	if o.Quick {
		pipelines = 4
	}
	wf := swarp.MustNew(swarp.Params{Pipelines: pipelines, CoresPerTask: 8})
	t := &Table{
		ID: "resilience",
		Title: fmt.Sprintf("Fault injection & recovery, SWarp %d pipelines (8 cores/task, all data in BB, 2 nodes)",
			pipelines),
		Header: resilienceHeader,
	}
	ro := core.RunOptions{StagedFraction: 1, IntermediatesToBB: true}
	if err := resilienceRows(t, profileOrder, 2, wf, ro, o); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"crash MTBF is the fault-free makespan / 2 (rare) or / 8 (frequent); node outages",
		"average one per run with MTTR = makespan/10; BB allocations are rejected with",
		"p=0.05 and fall back to the PFS. All failure processes are seeded: replaying a",
		"row reproduces its faults bit-identically. Extension beyond the paper (§II).")
	return []*Table{t}, nil
}

// RunResilienceGenomes repeats the resilience sweep on the 1000Genomes case
// study (the Fig. 13 setting: pre-placed inputs, 8 nodes) on the two
// case-study platforms.
func RunResilienceGenomes(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := genomes.DefaultChromosomes
	if o.Quick {
		chrom = 4
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	t := &Table{
		ID: "resilience-genomes",
		Title: fmt.Sprintf("Fault injection & recovery, 1000Genomes %d chromosomes (pre-placed inputs, %d nodes)",
			chrom, caseStudyNodes),
		Header: resilienceHeader,
	}
	ro := core.RunOptions{PrePlaceInputs: true, StagedFraction: 1, IntermediatesToBB: true}
	if err := resilienceRows(t, []string{"cori-private", "summit"}, caseStudyNodes, wf, ro, o); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"same fault calibration as the SWarp resilience table; the deeper 1000Genomes",
		"DAG additionally exercises lineage re-execution when a node failure destroys",
		"the only replica of an intermediate file.")
	return []*Table{t}, nil
}
