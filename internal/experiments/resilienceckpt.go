package experiments

import (
	"fmt"

	"bbwfsim/internal/ckpt"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/units"
)

// The resilience-ckpt experiment is the checkpoint/restart policy study:
// under the same seeded failure processes as the resilience sweep, it
// compares plain lineage re-execution against task-level checkpointing to
// each recovery tier (burst buffer, PFS, burst buffer with asynchronous
// PFS drain) across checkpoint intervals bracketing the Daly optimum. The
// re-executed-compute column is the quantity checkpointing exists to
// reduce: compute seconds spent beyond what the fault-free run needed.

// ckptRecoveries are the recovery policies the sweep compares. The builder
// maps a checkpoint interval to the policy; lineage's builder returns the
// zero (disabled) policy and is swept at a single dummy interval.
var ckptRecoveries = []struct {
	label  string
	target ckpt.Target // "" = lineage (no checkpointing)
	drain  bool
}{
	{"lineage", "", false},
	{"ckpt-bb", ckpt.TargetBB, false},
	{"ckpt-pfs", ckpt.TargetPFS, false},
	{"ckpt-bb+drain", ckpt.TargetBB, true},
}

// ckptSnapshotSize is the per-task snapshot size of the policy study. The
// SWarp tasks declare no memory footprint, so the floor is the whole
// checkpoint; 256 MiB makes the commit cost visible against the swept
// intervals without drowning the workflow's own traffic.
const ckptSnapshotSize = 256 * units.MiB

// ckptCommitCost estimates the seconds one snapshot commit occupies the
// writing task on the given tier — the C that feeds the Young/Daly interval
// formulas. The effective bandwidth is the tier's per-stream cap (or its
// disk bandwidth when uncapped), further limited by the node's injection
// bandwidth, matching how a single writer actually streams.
func ckptCommitCost(cfg platform.Config, target ckpt.Target) float64 {
	tier := cfg.BB
	if target == ckpt.TargetPFS {
		tier = cfg.PFS
	}
	bw := tier.StreamCap
	if bw <= 0 {
		bw = tier.DiskBW
	}
	if cfg.NodeLinkBW > 0 && cfg.NodeLinkBW < bw {
		bw = cfg.NodeLinkBW
	}
	return ckpt.WriteCost(ckptSnapshotSize, tier.WriteLatency, bw)
}

// sumFamily totals a counter family across every key of a snapshot.
func sumFamily(snap *metrics.Snapshot, family string) float64 {
	total := 0.0
	for _, s := range snap.Counters {
		if s.Family == family {
			total += s.Value
		}
	}
	return total
}

// ckptIntervalSweep brackets the Daly optimum: a quarter, the optimum
// itself, and four times it. Quick mode runs the optimum only.
func ckptIntervalSweep(quick bool) []struct {
	label string
	mult  float64
} {
	all := []struct {
		label string
		mult  float64
	}{
		{"daly/4", 0.25},
		{"daly", 1},
		{"daly×4", 4},
	}
	if quick {
		return all[1:2]
	}
	return all
}

var resilienceCkptHeader = []string{
	"platform", "failures", "recovery", "interval [s]", "makespan [s]", "slowdown",
	"re-exec compute [s]", "ckpt commits", "restarts", "ckpt losses", "young/daly [s]",
}

// RunResilienceCkpt sweeps recovery policy × checkpoint interval × failure
// rate on the two case-study platforms (SWarp, Fig. 4 setting). Within one
// (platform, failure-rate) cell every policy and interval sees the
// bit-identical fault stream — the injector seed depends only on the cell —
// so the re-executed-compute column isolates the recovery policy's effect.
func RunResilienceCkpt(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	policies := ckptRecoveries
	if o.Recovery != "" {
		policies = policies[:0:0]
		for _, p := range ckptRecoveries {
			if p.label == o.Recovery {
				policies = append(policies, p)
			}
		}
		if len(policies) == 0 {
			return nil, fmt.Errorf("experiments: unknown recovery policy %q (want lineage, ckpt-bb, ckpt-pfs, or ckpt-bb+drain)", o.Recovery)
		}
	}
	regimes := faultRegimes[1:] // rare, frequent
	if o.Quick {
		regimes = faultRegimes[2:] // frequent only
	}
	intervals := ckptIntervalSweep(o.Quick)

	pipelines := 8
	if o.Quick {
		pipelines = 4
	}
	wf := swarp.MustNew(swarp.Params{Pipelines: pipelines, CoresPerTask: 8})
	ro := core.RunOptions{StagedFraction: 1, IntermediatesToBB: true}
	retry := exec.RetryPolicy{
		MaxRetries: 60, Backoff: exec.BackoffExponential,
		BaseDelay: 2, MaxDelay: 120, Jitter: 0.25, Seed: o.Seed,
	}
	profiles := []string{"cori-private", "summit"}
	const nodes = 2

	baselines, err := runPoints(o, profiles, func(profile string) (*core.Result, error) {
		sim := core.MustNewSimulator(simPreset(profile, nodes))
		base, err := sim.Run(wf, ro)
		if err != nil {
			return nil, fmt.Errorf("resilience-ckpt %s baseline: %w", profile, err)
		}
		return base, nil
	})
	if err != nil {
		return nil, err
	}

	type ckptCase struct {
		profile string
		base    *core.Result
		reg     faultRegime
		policy  string
		pol     ckpt.Policy
		ilabel  string
		seed    int64
		young   float64
		daly    float64
	}
	var cases []ckptCase
	for pi, profile := range profiles {
		cfg := simPreset(profile, nodes)
		base := baselines[pi]
		for ri, reg := range regimes {
			// One fault stream per (platform, regime) cell, shared by every
			// policy and interval — the comparison the experiment exists for.
			seed := o.Seed + 9176*int64(ri+1)
			mtbf := base.Makespan / reg.crashDiv
			for _, rec := range policies {
				if rec.target == "" {
					cases = append(cases, ckptCase{profile, base, reg, rec.label, ckpt.Policy{}, "—", seed, 0, 0})
					continue
				}
				cost := ckptCommitCost(cfg, rec.target)
				young := ckpt.YoungInterval(cost, mtbf)
				daly := ckpt.DalyInterval(cost, mtbf)
				for _, iv := range intervals {
					pol := ckpt.Policy{
						Interval: daly * iv.mult,
						Target:   rec.target,
						Drain:    rec.drain,
						MinSize:  ckptSnapshotSize,
					}
					if rec.drain {
						pol.DrainDelay = 1
					}
					cases = append(cases, ckptCase{profile, base, reg, rec.label, pol, iv.label, seed, young, daly})
				}
			}
		}
	}

	results, err := runPoints(o, cases, func(c ckptCase) (*core.Result, error) {
		inj, err := faults.New(regimeConfig(c.reg, c.base.Makespan, c.seed))
		if err != nil {
			return nil, err
		}
		fo := ro
		fo.Faults = inj
		fo.Retry = retry
		fo.BBFallback = true
		fo.Checkpoint = c.pol
		res, err := core.MustNewSimulator(simPreset(c.profile, nodes)).Run(wf, fo)
		if err != nil {
			return nil, fmt.Errorf("resilience-ckpt %s/%s/%s/%s: %w", c.profile, c.reg.label, c.policy, c.ilabel, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	if o.Metrics != nil {
		snaps := make([]*metrics.Snapshot, 0, len(baselines)+len(results))
		for _, b := range baselines {
			snaps = append(snaps, b.Metrics)
		}
		for _, r := range results {
			snaps = append(snaps, r.Metrics)
		}
		emitMetrics(o, snaps)
	}

	t := &Table{
		ID: "resilience-ckpt",
		Title: fmt.Sprintf("Checkpoint/restart policy study, SWarp %d pipelines (8 cores/task, all data in BB, %d nodes)",
			pipelines, nodes),
		Header: resilienceCkptHeader,
	}
	row := 0
	for pi, profile := range profiles {
		base := baselines[pi]
		baseExec := sumFamily(base.Metrics, metrics.ComputeExecutedSecondsTotal)
		t.Rows = append(t.Rows, []string{profile, "none", "—", "—",
			fsec(base.Makespan), "1.00×", "0.00", "0", "0", "0", "—"})
		for ; row < len(cases) && cases[row].profile == profile; row++ {
			c, res := cases[row], results[row]
			ref := "—"
			if c.daly > 0 {
				ref = fmt.Sprintf("%.1f / %.1f", c.young, c.daly)
			}
			ivCell := "—"
			if c.pol.Enabled() {
				ivCell = fmt.Sprintf("%s (%.1f)", c.ilabel, c.pol.Interval)
			}
			t.Rows = append(t.Rows, []string{
				profile, c.reg.label, c.policy, ivCell,
				fsec(res.Makespan),
				fmt.Sprintf("%.2f×", res.Makespan/base.Makespan),
				fsec(sumFamily(res.Metrics, metrics.ComputeExecutedSecondsTotal) - baseExec),
				fmt.Sprint(res.Faults.CkptCommits),
				fmt.Sprint(res.Faults.CkptRestarts),
				fmt.Sprint(res.Faults.CkptLosses),
				ref,
			})
		}
	}
	t.Notes = append(t.Notes,
		"fault calibration matches the resilience table (crash MTBF = fault-free makespan",
		"/ 2 or / 8, about one node outage per run); within one platform × failure-rate",
		"cell every recovery policy replays the bit-identical fault stream, so rows",
		"differ only by recovery policy. \"re-exec compute\" is compute spent beyond the",
		"fault-free run; checkpoint intervals bracket the Daly optimum computed from the",
		"tier's commit cost (young/daly column, Young's sqrt(2CM) next to Daly's",
		"refinement). Snapshots are 256 MiB per task and flow through the regular",
		"storage tiers, so checkpoint I/O contends with workflow I/O.",
	)
	return []*Table{t}, nil
}
