package experiments

import (
	"fmt"

	"bbwfsim/internal/platform"
	"bbwfsim/internal/stats"
	"bbwfsim/internal/testbed"
	"bbwfsim/internal/workflow"
)

// The characterization sweeps (Figs. 4–9) are grids of independent testbed
// runs — every (scenario, profile) point builds its own Runner — so each
// grid is enumerated once and fanned across Options.Jobs workers via
// runPoints, then rows are assembled from the results in sweep order.
// Figures that report several tasks from the same run (5, 6, 7) execute
// each grid point once and feed every per-task table from that single
// result, instead of re-running the identical simulation per task.

// RunTable1 renders Table I: the platform calibration parameters the
// lightweight simulator uses.
func RunTable1(opts Options) ([]*Table, error) {
	if _, err := opts.withDefaults(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table1",
		Title:  "Input parameters used in simulation (Table I)",
		Header: []string{"platform", "proc speed/core", "BB network", "BB disk", "PFS network", "PFS disk"},
		Notes: []string{
			"stream caps (model extension, see DESIGN.md): " +
				fmt.Sprintf("cori BB %v, summit BB %v", platform.CoriStreamCap, platform.SummitStreamCap),
		},
	}
	for _, name := range []string{"cori-private", "summit"} {
		cfg := simPreset(name, 1)
		label := "Cori"
		if name == "summit" {
			label = "Summit"
		}
		t.Rows = append(t.Rows, []string{
			label,
			cfg.CoreSpeed.String(),
			cfg.BB.NetworkBW.String(),
			cfg.BB.DiskBW.String(),
			cfg.PFS.NetworkBW.String(),
			cfg.PFS.DiskBW.String(),
		})
	}
	return []*Table{t}, nil
}

// testbedPoint is one cell of a characterization grid: a profile × scenario
// pair, run on a private testbed.Runner.
type testbedPoint struct {
	prof testbed.Profile
	sc   testbed.Scenario
	wf   int // index into the sweep's workflow list
}

// RunFig4 reproduces Figure 4: stage-in execution time of a one-pipeline
// SWarp (32 cores per task) versus the percentage of input files staged
// into the burst buffer, on all three machines.
func RunFig4(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig4",
		Title:  "Stage-in time vs. % of input files in BB (1 pipeline, 32 cores/task)",
		Header: []string{"% in BB", "cori-private [s]", "cori-striped [s]", "summit [s]"},
	}
	wf := testbedSwarp(1, 32)
	profiles := orderedProfiles(1)
	qs := fractions(o)
	var pts []testbedPoint
	for _, q := range qs {
		for _, prof := range profiles {
			pts = append(pts, testbedPoint{prof: prof,
				sc: testbed.Scenario{StagedFraction: q, IntermediatesToBB: true}})
		}
	}
	cells, err := runPoints(o, pts, func(p testbedPoint) (string, error) {
		res, err := testbed.NewRunner(p.prof, o.Seed).Run(wf, p.sc, o.Reps)
		if err != nil {
			return "", err
		}
		times := res.TaskMeans["stage_in"]
		return fsecStd(stats.Mean(times), stats.Std(times)), nil
	})
	if err != nil {
		return nil, err
	}
	for qi, q := range qs {
		row := append([]string{ffrac(q)}, cells[qi*len(profiles):(qi+1)*len(profiles)]...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: linear growth with staged fraction; summit ≈5× faster than cori;",
		"striped shows the reproducible anomaly at 75% (paper Fig. 4).")
	return []*Table{t}, nil
}

// RunFig5 reproduces Figure 5: Resample and Combine execution times per BB
// mode, with intermediates on the BB versus on the PFS, sweeping the
// fraction of input files staged (1 pipeline, 32 cores per task). Each grid
// point runs once; both task tables read from the same result.
func RunFig5(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	wf := testbedSwarp(1, 32)
	profiles := orderedProfiles(1)
	qs := fractions(o)
	var pts []testbedPoint
	for _, q := range qs {
		for _, prof := range profiles {
			for _, intBB := range []bool{true, false} {
				pts = append(pts, testbedPoint{prof: prof,
					sc: testbed.Scenario{StagedFraction: q, IntermediatesToBB: intBB}})
			}
		}
	}
	results, err := runPoints(o, pts, func(p testbedPoint) (*testbed.Result, error) {
		return testbed.NewRunner(p.prof, o.Seed).Run(wf, p.sc, o.Reps)
	})
	if err != nil {
		return nil, err
	}
	perQ := len(profiles) * 2
	tables := make([]*Table, 0, 2)
	for _, taskName := range []string{"resample", "combine"} {
		t := &Table{
			ID:    "fig5-" + taskName,
			Title: fmt.Sprintf("%s execution time [s] vs. %% input files in BB (1 pipeline, 32 cores)", taskName),
			Header: []string{"% in BB",
				"private/int-BB", "private/int-PFS",
				"striped/int-BB", "striped/int-PFS",
				"on-node/int-BB", "on-node/int-PFS"},
		}
		for qi, q := range qs {
			row := []string{ffrac(q)}
			for _, res := range results[qi*perQ : (qi+1)*perQ] {
				row = append(row, fsec(res.TaskMean(taskName)))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"expected shape: striped 1–2 orders of magnitude above private; on-node fastest;",
			"striped worsens as more files sit in the BB (1:N small-file pattern).")
		tables = append(tables, t)
	}
	return tables, nil
}

// RunFig6 reproduces Figure 6: execution time versus cores per task with
// all data in the burst buffer (1 pipeline). Each (cores, profile) point
// runs once; both task tables read from the same result.
func RunFig6(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	profiles := orderedProfiles(1)
	cores := coreCounts(o)
	wfs := make([]*workflow.Workflow, len(cores))
	var pts []testbedPoint
	for ci, c := range cores {
		wfs[ci] = testbedSwarp(1, c)
		for _, prof := range profiles {
			pts = append(pts, testbedPoint{prof: prof, wf: ci,
				sc: testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: c}})
		}
	}
	results, err := runPoints(o, pts, func(p testbedPoint) (*testbed.Result, error) {
		return testbed.NewRunner(p.prof, o.Seed).Run(wfs[p.wf], p.sc, o.Reps)
	})
	if err != nil {
		return nil, err
	}
	tables := make([]*Table, 0, 2)
	for _, taskName := range []string{"resample", "combine"} {
		t := &Table{
			ID:     "fig6-" + taskName,
			Title:  fmt.Sprintf("%s execution time [s] vs. cores per task (all data in BB)", taskName),
			Header: []string{"cores", "cori-private", "cori-striped", "summit"},
		}
		for ci, c := range cores {
			row := []string{fmt.Sprint(c)}
			for _, res := range results[ci*len(profiles) : (ci+1)*len(profiles)] {
				row = append(row, fsec(res.TaskMean(taskName)))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"expected shape: resample improves up to ≈8–16 cores then plateaus; combine is flat",
			"(synchronization-bound), per paper Fig. 6.")
		tables = append(tables, t)
	}
	return tables, nil
}

// RunFig7 reproduces Figure 7: execution time versus the number of
// concurrent pipelines on one node (1 core per task, everything in the
// BB). Each (pipelines, profile) point runs once; the three task tables
// read from the same result.
func RunFig7(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	profiles := orderedProfiles(1)
	counts := pipelineCounts(o)
	wfs := make([]*workflow.Workflow, len(counts))
	var pts []testbedPoint
	for ni, n := range counts {
		wfs[ni] = testbedSwarp(n, 1)
		for _, prof := range profiles {
			pts = append(pts, testbedPoint{prof: prof, wf: ni,
				sc: testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: 1}})
		}
	}
	results, err := runPoints(o, pts, func(p testbedPoint) (*testbed.Result, error) {
		return testbed.NewRunner(p.prof, o.Seed).Run(wfs[p.wf], p.sc, o.Reps)
	})
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, taskName := range []string{"stage_in", "resample", "combine"} {
		t := &Table{
			ID:     "fig7-" + taskName,
			Title:  fmt.Sprintf("%s execution time [s] vs. #pipelines (1 core/task, all data in BB)", taskName),
			Header: []string{"pipelines", "cori-private", "cori-striped", "summit"},
		}
		for ni, n := range counts {
			row := []string{fmt.Sprint(n)}
			for _, res := range results[ni*len(profiles) : (ni+1)*len(profiles)] {
				row = append(row, fsec(res.TaskMean(taskName)))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"expected shape: ≈3× slowdown on cori at 32 pipelines (BB bandwidth contention well",
			"below peak, POSIX single-stream limits); near-flat on summit except combine.")
		tables = append(tables, t)
	}
	return tables, nil
}

// RunFig8 reproduces Figure 8: run-to-run variability (coefficient of
// variation and range) of Resample versus the number of pipelines.
func RunFig8(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	profiles := orderedProfiles(1)
	counts := pipelineCounts(o)
	t := &Table{
		ID:     "fig8",
		Title:  "Resample variability vs. #pipelines (all data in BB, 1 core/task)",
		Header: []string{"pipelines", "private CV", "striped CV", "summit CV"},
	}
	wfs := make([]*workflow.Workflow, len(counts))
	var pts []testbedPoint
	for ni, n := range counts {
		wfs[ni] = testbedSwarp(n, 1)
		for _, prof := range profiles {
			pts = append(pts, testbedPoint{prof: prof, wf: ni,
				sc: testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: 1}})
		}
	}
	cells, err := runPoints(o, pts, func(p testbedPoint) (string, error) {
		res, err := testbed.NewRunner(p.prof, o.Seed).Run(wfs[p.wf], p.sc, o.Reps)
		if err != nil {
			return "", err
		}
		return fpct(stats.CV(res.TaskMeans["resample"])), nil
	})
	if err != nil {
		return nil, err
	}
	for ni, n := range counts {
		row := append([]string{fmt.Sprint(n)}, cells[ni*len(profiles):(ni+1)*len(profiles)]...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected ordering: striped (≈15%) > private > on-node (most stable), per paper Fig. 8.")
	return []*Table{t}, nil
}

// RunFig9 reproduces Figure 9: the average achieved I/O bandwidth of each
// burst-buffer configuration, measured over an 8-pipeline all-BB run.
func RunFig9(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9",
		Title:  "Average achieved BB bandwidth (8 pipelines, 32 cores/task, all data in BB)",
		Header: []string{"configuration", "read bandwidth", "write bandwidth"},
	}
	wf := testbedSwarp(8, 32)
	profiles := orderedProfiles(1)
	rows, err := runPoints(o, profiles, func(prof testbed.Profile) ([]string, error) {
		res, err := testbed.NewRunner(prof, o.Seed).Run(wf,
			testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true}, o.Reps)
		if err != nil {
			return nil, err
		}
		return []string{
			prof.Name,
			fbw(stats.Mean(res.BBReadBW)),
			fbw(stats.Mean(res.BBWriteBW)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"expected ordering: on-node ≫ private ≫ striped; all far below hardware peak",
		"(per-op latency and POSIX single-stream limits), per paper Fig. 9.")
	return []*Table{t}, nil
}
