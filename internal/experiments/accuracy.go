package experiments

import (
	"fmt"

	"bbwfsim/internal/core"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/runner"
	"bbwfsim/internal/stats"
	"bbwfsim/internal/testbed"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// The accuracy experiments run in two fanned stages: first one calibration
// per profile (each its own anchor testbed run), then the full profile ×
// sweep-point grid, where every point runs a private testbed.Runner and a
// private simulator. Calibrated workflows are shared read-only by the
// second stage.

// accuracyPoint is one (real run, simulated run) comparison cell. snap is
// the simulated run's observability snapshot; the testbed side has none.
type accuracyPoint struct {
	realMean, realStd, sim float64
	snap                   *metrics.Snapshot
}

// accuracySnaps extracts the simulator snapshots of a point grid in point
// order, for the index-ordered merge emitMetrics performs.
func accuracySnaps(points []accuracyPoint) []*metrics.Snapshot {
	snaps := make([]*metrics.Snapshot, len(points))
	for i, p := range points {
		snaps[i] = p.snap
	}
	return snaps
}

// RunFig10 reproduces Figure 10: measured ("real", i.e. testbed) versus
// simulated makespan of a one-pipeline SWarp (32 cores per task) as the
// fraction of input files staged into the BB varies, for the three
// configurations. The simulator is calibrated once per configuration from
// the all-BB anchor observation via Eq. 4, exactly the paper's procedure.
func RunFig10(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	profiles := orderedProfiles(1)
	simWFs, err := runPoints(o, profiles, func(prof testbed.Profile) (*workflow.Workflow, error) {
		return calibrateSwarp(prof, 1, 32, o)
	})
	if err != nil {
		return nil, err
	}
	qs := fractions(o)
	testWF := testbedSwarp(1, 32)
	points, err := runner.Map(o.Jobs, len(profiles)*len(qs), func(i int) (accuracyPoint, error) {
		pi, qi := i/len(qs), i%len(qs)
		prof, q := profiles[pi], qs[qi]
		res, err := testbed.NewRunner(prof, o.Seed).Run(testWF,
			testbed.Scenario{StagedFraction: q, IntermediatesToBB: true}, o.Reps)
		if err != nil {
			return accuracyPoint{}, err
		}
		simRes, err := core.MustNewSimulator(simPreset(prof.Name, 1)).Run(simWFs[pi],
			core.RunOptions{StagedFraction: q, IntermediatesToBB: true})
		if err != nil {
			return accuracyPoint{}, err
		}
		return accuracyPoint{
			realMean: res.MeanMakespan(),
			realStd:  stats.Std(res.Makespans),
			sim:      simRes.Makespan,
			snap:     simRes.Metrics,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	emitMetrics(o, accuracySnaps(points))
	var tables []*Table
	for pi, prof := range profiles {
		t := &Table{
			ID:     "fig10-" + prof.Name,
			Title:  fmt.Sprintf("Real vs. simulated makespan [s] on %s (1 pipeline, 32 cores/task)", prof.Name),
			Header: []string{"% in BB", "real", "simulated", "error"},
		}
		var realSeries, simSeries []float64
		for qi, q := range qs {
			p := points[pi*len(qs)+qi]
			realSeries = append(realSeries, p.realMean)
			simSeries = append(simSeries, p.sim)
			t.Rows = append(t.Rows, []string{
				ffrac(q),
				fsecStd(p.realMean, p.realStd),
				fsec(p.sim),
				fpct(stats.RelErr(p.sim, p.realMean)),
			})
		}
		avg, err := stats.MeanRelErr(simSeries, realSeries)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("average error: %s (paper: 5.6%% private, 12.8%% striped, 6.5%% on-node)", fpct(avg)))
		if prof.Name == "cori-private" {
			t.Notes = append(t.Notes,
				"paper Fig. 10(a): the only case where real and simulated trends diverge — the",
				"real makespan grows with staging (stage-in cost dominates) while the simulated",
				"one shrinks (BB reads dominate in the Table-I model).")
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// RunFig11 reproduces Figure 11: measured versus simulated makespan as the
// number of concurrent single-core pipelines grows, everything in the BB.
// Calibration uses the one-pipeline single-core anchor, matching the
// paper's per-experiment calibration.
func RunFig11(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	profiles := orderedProfiles(1)
	type works struct{ rw, cw units.Flops }
	calibrated, err := runPoints(o, profiles, func(prof testbed.Profile) (works, error) {
		simWF1, err := calibrateSwarp(prof, 1, 1, o)
		if err != nil {
			return works{}, err
		}
		return works{
			rw: simWF1.Task("resample_000").Work(),
			cw: simWF1.Task("combine_000").Work(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	counts := pipelineCounts(o)
	points, err := runner.Map(o.Jobs, len(profiles)*len(counts), func(i int) (accuracyPoint, error) {
		pi, ni := i/len(counts), i%len(counts)
		prof, n := profiles[pi], counts[ni]
		res, err := testbed.NewRunner(prof, o.Seed).Run(testbedSwarp(n, 1),
			testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: 1}, o.Reps)
		if err != nil {
			return accuracyPoint{}, err
		}
		simWF := swarpWithWorks(n, 1, calibrated[pi].rw, calibrated[pi].cw)
		simRes, err := core.MustNewSimulator(simPreset(prof.Name, 1)).Run(simWF,
			core.RunOptions{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: 1})
		if err != nil {
			return accuracyPoint{}, err
		}
		return accuracyPoint{
			realMean: res.MeanMakespan(),
			realStd:  stats.Std(res.Makespans),
			sim:      simRes.Makespan,
			snap:     simRes.Metrics,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	emitMetrics(o, accuracySnaps(points))
	var tables []*Table
	for pi, prof := range profiles {
		t := &Table{
			ID:     "fig11-" + prof.Name,
			Title:  fmt.Sprintf("Real vs. simulated makespan [s] on %s vs. #pipelines (1 core/task, all in BB)", prof.Name),
			Header: []string{"pipelines", "real", "simulated", "error"},
		}
		var realSeries, simSeries []float64
		for ni, n := range counts {
			p := points[pi*len(counts)+ni]
			realSeries = append(realSeries, p.realMean)
			simSeries = append(simSeries, p.sim)
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n),
				fsecStd(p.realMean, p.realStd),
				fsec(p.sim),
				fpct(stats.RelErr(p.sim, p.realMean)),
			})
		}
		avg, err := stats.MeanRelErr(simSeries, realSeries)
		if err != nil {
			return nil, err
		}
		trend := "same"
		if !stats.SameTrend(simSeries, realSeries, 0.02) {
			trend = "DIFFERENT"
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("average error: %s, trend agreement: %s (paper: 11.8%% private, 11.6%% striped, 15.9%% on-node)",
				fpct(avg), trend))
		tables = append(tables, t)
	}
	return tables, nil
}
