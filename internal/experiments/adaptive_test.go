package experiments

import (
	"strconv"
	"testing"
)

// TestAdaptiveBeatsStatic is the degradation study's headline claim: under
// high BB pressure (capacity below the all-in-BB footprint), at equal seeds —
// every stance in one cell replays the bit-identical fault stream — the
// adaptation layer strictly reduces both the number of failed runs and the
// total re-executed compute versus the static all-in-BB stance.
func TestAdaptiveBeatsStatic(t *testing.T) {
	tables, err := RunAdaptive(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	col := func(name string) int {
		for i, h := range tb.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no %q column", name)
		return -1
	}
	capC, polC, outC, reexecC := col("bb capacity"), col("policy"), col("outcome"), col("re-exec compute [s]")

	type tally struct {
		failed int
		reexec float64
	}
	sums := map[string]*tally{"static": {}, "adaptive": {}}
	rows := 0
	for _, row := range tb.Rows {
		s, ok := sums[row[polC]]
		if !ok {
			continue
		}
		if row[capC] == "unconstrained" || row[capC] == "ample (150%)" {
			continue // high-pressure cells only
		}
		rows++
		if row[outC] == "failed" {
			s.failed++
		}
		v, err := strconv.ParseFloat(row[reexecC], 64)
		if err != nil {
			t.Fatalf("unparseable re-exec cell %q: %v", row[reexecC], err)
		}
		s.reexec += v
	}
	if rows == 0 {
		t.Fatal("sweep has no high-pressure static/adaptive rows")
	}
	st, ad := sums["static"], sums["adaptive"]
	if st.failed == 0 {
		t.Fatal("static stance never failed under pressure; the study's premise is gone")
	}
	if ad.failed >= st.failed {
		t.Errorf("adaptive failed runs = %d, static = %d; want strictly fewer", ad.failed, st.failed)
	}
	if ad.reexec >= st.reexec {
		t.Errorf("adaptive re-executed compute = %g, static = %g; want strictly less", ad.reexec, st.reexec)
	}
}

// TestAdaptiveFaultStreamsEngage: the sweep's faulty adaptive rows actually
// exercise all three reaction families — spill, replication, and fallback
// each fire somewhere in the table — so the study compares live machinery,
// not a disabled policy.
func TestAdaptiveFaultStreamsEngage(t *testing.T) {
	tables, err := RunAdaptive(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	col := func(name string) int {
		for i, h := range tb.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no %q column", name)
		return -1
	}
	polC, spC, repC, fbC := col("policy"), col("spills"), col("replications"), col("fallbacks")
	count := func(c int) int {
		total := 0
		for _, row := range tb.Rows {
			if row[polC] != "adaptive" || row[c] == "—" {
				continue
			}
			v, err := strconv.Atoi(row[c])
			if err != nil {
				t.Fatalf("unparseable adapt-count cell %q: %v", row[c], err)
			}
			total += v
		}
		return total
	}
	if count(spC) == 0 {
		t.Error("no adaptive row ever spilled")
	}
	if count(repC) == 0 {
		t.Error("no adaptive row ever replicated")
	}
	if count(fbC) == 0 {
		t.Error("no adaptive row ever fell back")
	}
	for _, row := range tb.Rows {
		if row[polC] == "static" || row[polC] == "oracle" {
			for _, c := range []int{spC, repC, fbC} {
				if row[c] != "0" && row[c] != "—" {
					t.Errorf("non-adaptive row %v shows adaptation activity", row)
				}
			}
		}
	}
}
