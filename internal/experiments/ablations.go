package experiments

import (
	"fmt"

	"bbwfsim/internal/calib"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/stats"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/testbed"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// RunAblationPlacement explores the data-placement heuristic space the
// paper names as future work: with a burst buffer too small for the whole
// 1000Genomes footprint, which selection policy wins?
func RunAblationPlacement(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := 8
	if o.Quick {
		chrom = 2
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	st, err := wf.ComputeStats()
	if err != nil {
		return nil, err
	}
	// Constrain the BB to 30% of the data footprint.
	budget := st.TotalBytes.Times(0.30)
	cfg := simPreset("cori-private", caseStudyNodes)
	cfg.BB.Capacity = budget

	dur := func(t *workflow.Task) float64 { return float64(t.Work()) }
	critical, err := placement.NewCriticalPath(wf, budget, dur)
	if err != nil {
		return nil, err
	}
	policies := []*placement.Set{
		placement.AllPFS(),
		placement.NewSizeGreedy(wf, budget, true),
		placement.NewSizeGreedy(wf, budget, false),
		placement.NewFanoutGreedy(wf, budget),
		critical,
	}
	t := &Table{
		ID:     "ablation-placement",
		Title:  fmt.Sprintf("Placement heuristics, 1000Genomes (%d chrom), BB capacity = 30%% of footprint", chrom),
		Header: []string{"policy", "files on BB", "BB bytes", "makespan [s]", "speedup vs all-PFS"},
	}
	results, err := runPoints(o, policies, func(pol *placement.Set) (*core.Result, error) {
		res, err := core.MustNewSimulator(cfg).Run(wf, core.RunOptions{Placement: pol, PrePlaceInputs: true})
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", pol.Name(), err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var baseline float64
	for i, pol := range policies {
		res := results[i]
		if pol.Name() == "all-pfs" {
			baseline = res.Makespan
		}
		speedup := ""
		if baseline > 0 {
			speedup = fmt.Sprintf("%.2f", baseline/res.Makespan)
		}
		t.Rows = append(t.Rows, []string{
			pol.Name(),
			fmt.Sprint(pol.Count()),
			pol.BBBytes(wf).String(),
			fsec(res.Makespan),
			speedup,
		})
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: its conclusion calls for exploring exactly this",
		"heuristic space with the simulator.")
	return []*Table{t}, nil
}

// RunAblationModel quantifies the cost of the paper's perfect-speedup
// assumption: calibrate from a 32-core anchor with Eq. 4 (α = 0) and with
// Eq. 3 using the machine's true Amdahl fractions, then predict testbed
// executions at other core counts.
func RunAblationModel(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	prof := testbed.CoriPrivate(1)
	tb := testbed.NewRunner(prof, o.Seed)
	anchorCores := 32
	anchor, err := tb.Run(testbedSwarp(1, anchorCores),
		testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: anchorCores}, o.Reps)
	if err != nil {
		return nil, err
	}
	trueAlpha := prof.Alpha

	calibrate := func(alphaRes, alphaCom float64) (units.Flops, units.Flops, error) {
		obs := []calib.Observation{
			{TaskName: "resample", Cores: anchorCores, Time: anchor.TaskMean("resample"),
				LambdaIO: calib.LambdaIOResample, Alpha: alphaRes},
			{TaskName: "combine", Cores: anchorCores, Time: anchor.TaskMean("combine"),
				LambdaIO: calib.LambdaIOCombine, Alpha: alphaCom},
		}
		cal, err := core.CalibrateWorks(obs, prof.Platform.CoreSpeed)
		if err != nil {
			return 0, 0, err
		}
		rw, err := cal.Work("resample")
		if err != nil {
			return 0, 0, err
		}
		cw, err := cal.Work("combine")
		if err != nil {
			return 0, 0, err
		}
		return rw, cw, nil
	}

	rw4, cw4, err := calibrate(0, 0) // Eq. 4
	if err != nil {
		return nil, err
	}
	rw3, cw3, err := calibrate(trueAlpha["resample"], trueAlpha["combine"]) // Eq. 3
	if err != nil {
		return nil, err
	}

	runSim := func(cores int, rw, cw units.Flops, alphaRes, alphaCom float64) (float64, error) {
		wf := swarp.MustNew(swarp.Params{
			Pipelines: 1, CoresPerTask: cores,
			ResampleWork: rw, CombineWork: cw,
			ResampleAlpha: alphaRes, CombineAlpha: alphaCom,
		})
		sim := core.MustNewSimulator(simPreset("cori-private", 1))
		res, err := sim.Run(wf, core.RunOptions{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: cores})
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}

	t := &Table{
		ID:     "ablation-model",
		Title:  "Calibration ablation on cori-private: Eq. 4 (α=0) vs. Eq. 3 (true α), anchored at 32 cores",
		Header: []string{"cores", "real [s]", "Eq.4 sim [s]", "Eq.4 err", "Eq.3 sim [s]", "Eq.3 err"},
	}
	type modelPoint struct{ real, m4, m3 float64 }
	counts := coreCounts(o)
	points, err := runPoints(o, counts, func(cores int) (modelPoint, error) {
		res, err := testbed.NewRunner(prof, o.Seed).Run(testbedSwarp(1, cores),
			testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: cores}, o.Reps)
		if err != nil {
			return modelPoint{}, err
		}
		m4, err := runSim(cores, rw4, cw4, 0, 0)
		if err != nil {
			return modelPoint{}, err
		}
		m3, err := runSim(cores, rw3, cw3, trueAlpha["resample"], trueAlpha["combine"])
		if err != nil {
			return modelPoint{}, err
		}
		return modelPoint{real: res.MeanMakespan(), m4: m4, m3: m3}, nil
	})
	if err != nil {
		return nil, err
	}
	var real4, sim4, sim3 []float64
	for i, cores := range counts {
		p := points[i]
		real4 = append(real4, p.real)
		sim4 = append(sim4, p.m4)
		sim3 = append(sim3, p.m3)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(cores), fsec(p.real),
			fsec(p.m4), fpct(stats.RelErr(p.m4, p.real)),
			fsec(p.m3), fpct(stats.RelErr(p.m3, p.real)),
		})
	}
	avg4, err := stats.MeanRelErr(sim4, real4)
	if err != nil {
		return nil, err
	}
	avg3, err := stats.MeanRelErr(sim3, real4)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"average error: Eq.4 %s vs Eq.3 %s — Eq. 3 with known α dominates away from the anchor,",
		fpct(avg4), fpct(avg3)),
		"quantifying the accuracy the paper traded for a platform-agnostic model.")
	return []*Table{t}, nil
}

var _ exec.Placement = (*placement.Set)(nil)
