package experiments

import (
	"fmt"
	"sort"

	"bbwfsim/internal/testbed"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
	"bbwfsim/internal/workloads"
)

// RunAblationStructures answers the question the paper's introduction
// poses — which workflow structures and file regimes actually benefit
// from burst buffers? — by sweeping DAG patterns (chain, fork-join,
// reduce-tree, broadcast, random layered) crossed with file regimes (many
// small files vs. few large files, equal bytes) over the three machine
// configurations, reporting the all-BB speedup over all-PFS on each.
func RunAblationStructures(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	reps := o.Reps
	if reps > 5 {
		reps = 5 // 2 regimes × 5 patterns × 3 machines × 2 placements
	}
	t := &Table{
		ID:    "ablation-structures",
		Title: "All-BB speedup over all-PFS by workflow structure and file regime",
		Header: []string{"pattern", "regime",
			"cori-private", "cori-striped", "summit"},
	}
	regimes := []struct {
		name string
		r    workloads.FileRegime
	}{
		{"many-small (64×4MiB)", workloads.ManySmall},
		{"few-large (1×256MiB)", workloads.FewLarge},
	}
	profiles := orderedProfiles(1)
	type structPoint struct {
		regime  string
		pattern string
		wf      *workflow.Workflow
		prof    testbed.Profile
	}
	var pts []structPoint
	for _, reg := range regimes {
		pats, err := workloads.Patterns(workloads.Params{
			Regime: reg.r,
			Work:   units.Flops(20 * 36.80e9), // 20 s sequential per task
			Cores:  4,
		})
		if err != nil {
			return nil, err
		}
		names := make([]string, 0, len(pats))
		for name := range pats {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, prof := range profiles {
				pts = append(pts, structPoint{reg.name, name, pats[name], prof})
			}
		}
	}
	cells, err := runPoints(o, pts, func(p structPoint) (string, error) {
		tb := testbed.NewRunner(p.prof, o.Seed)
		pfs, err := tb.Run(p.wf, testbed.Scenario{IntermediatesToBB: false}, reps)
		if err != nil {
			return "", fmt.Errorf("structures %s/%s pfs: %w", p.pattern, p.prof.Name, err)
		}
		bb, err := tb.Run(p.wf, testbed.Scenario{IntermediatesToBB: true}, reps)
		if err != nil {
			return "", fmt.Errorf("structures %s/%s bb: %w", p.pattern, p.prof.Name, err)
		}
		return fmt.Sprintf("%.2f", pfs.MeanMakespan()/bb.MeanMakespan()), nil
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(pts); i += len(profiles) {
		row := []string{pts[i].pattern, pts[i].regime}
		row = append(row, cells[i:i+len(profiles)]...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"speedup > 1: the BB helps; < 1: it hurts. Expected: the striped mode *hurts* on",
		"many-small regimes (its metadata-bound collapse) but tolerates few-large ones;",
		"the broadcast pattern with one large shared file is the N:1 case striping is",
		"optimized for. Answers the workflow-structure question the paper's intro poses.")
	return []*Table{t}, nil
}
