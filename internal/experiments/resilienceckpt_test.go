package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestCkptRecoveryBeatsLineage is the policy study's headline claim: at
// equal seeds and failure rates — every row of one platform × failure-rate
// cell replays the bit-identical fault stream — checkpointing at the Daly
// interval strictly reduces re-executed compute versus plain lineage
// re-execution, on every platform, at every failure rate, for every tier.
func TestCkptRecoveryBeatsLineage(t *testing.T) {
	tables, err := RunResilienceCkpt(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	col := func(name string) int {
		for i, h := range tb.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no %q column", name)
		return -1
	}
	platC, failC, recC, ivC, reexecC, commitC, restartC :=
		col("platform"), col("failures"), col("recovery"), col("interval [s]"),
		col("re-exec compute [s]"), col("ckpt commits"), col("restarts")

	reexec := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[reexecC], 64)
		if err != nil {
			t.Fatalf("unparseable re-exec cell %q: %v", row[reexecC], err)
		}
		return v
	}
	lineage := map[string]float64{} // platform|failures -> re-exec compute
	for _, row := range tb.Rows {
		if row[recC] == "lineage" {
			lineage[row[platC]+"|"+row[failC]] = reexec(row)
		}
	}
	if len(lineage) == 0 {
		t.Fatal("sweep has no lineage rows")
	}
	var dalyRows, restarts, commits int
	for _, row := range tb.Rows {
		if !strings.HasPrefix(row[ivC], "daly (") {
			continue
		}
		dalyRows++
		base, ok := lineage[row[platC]+"|"+row[failC]]
		if !ok {
			t.Fatalf("no lineage row for %s/%s", row[platC], row[failC])
		}
		if got := reexec(row); got >= base {
			t.Errorf("%s/%s/%s: re-executed compute %g does not beat lineage's %g",
				row[platC], row[failC], row[recC], got, base)
		}
		c, _ := strconv.Atoi(row[commitC])
		r, _ := strconv.Atoi(row[restartC])
		commits += c
		restarts += r
	}
	if dalyRows == 0 {
		t.Fatal("sweep has no daly-interval rows")
	}
	if commits == 0 || restarts == 0 {
		t.Errorf("daly rows show %d commits and %d restarts; the recovery machinery never engaged", commits, restarts)
	}
}

// TestRecoveryFilter: Options.Recovery restricts the sweep to one policy
// and rejects unknown names.
func TestRecoveryFilter(t *testing.T) {
	tables, err := RunResilienceCkpt(Options{Quick: true, Seed: 1, Recovery: "ckpt-pfs"})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var recC int
	for i, h := range tb.Header {
		if h == "recovery" {
			recC = i
		}
	}
	seen := false
	for _, row := range tb.Rows {
		switch row[recC] {
		case "ckpt-pfs":
			seen = true
		case "—": // fault-free baseline rows stay
		default:
			t.Errorf("filtered sweep contains policy %q", row[recC])
		}
	}
	if !seen {
		t.Error("filtered sweep contains no ckpt-pfs rows")
	}

	if _, err := RunResilienceCkpt(Options{Quick: true, Recovery: "bogus"}); err == nil {
		t.Error("unknown recovery policy accepted")
	}
}
