package experiments

import (
	"fmt"
	"time"

	"bbwfsim/internal/core"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/optimize"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
)

// RunAblationOptimizer executes the paper's proposed future work: use the
// simulator as an oracle to search the data-placement space, and quantify
// the benefit over the static heuristics.
func RunAblationOptimizer(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := 6
	iters := 150
	if o.Quick {
		chrom = 2
		iters = 30
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	st, err := wf.ComputeStats()
	if err != nil {
		return nil, err
	}
	budget := st.TotalBytes.Times(0.30)
	cfg := simPreset("cori-private", 4)
	cfg.BB.Capacity = budget
	sim := core.MustNewSimulator(cfg)
	oracle := func(pol *placement.Set) (float64, error) {
		res, err := sim.Run(wf, core.RunOptions{Placement: pol, PrePlaceInputs: true})
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}

	t := &Table{
		ID: "ablation-optimizer",
		Title: fmt.Sprintf("Simulator-in-the-loop placement search, 1000Genomes (%d chrom), BB = 30%% of footprint",
			chrom),
		Header: []string{"strategy", "makespan [s]", "speedup vs all-PFS", "simulations"},
	}
	addStatic := func(name string, pol *placement.Set) (float64, error) {
		ms, err := oracle(pol)
		if err != nil {
			return 0, fmt.Errorf("optimizer baseline %s: %w", name, err)
		}
		t.Rows = append(t.Rows, []string{name, fsec(ms), "", "1"})
		return ms, nil
	}
	baseline, err := addStatic("all-pfs", placement.AllPFS())
	if err != nil {
		return nil, err
	}
	fanoutMs, err := addStatic("fanout-greedy (static)", placement.NewFanoutGreedy(wf, budget))
	if err != nil {
		return nil, err
	}

	ls, err := optimize.LocalSearch(wf, oracle, optimize.Params{
		Budget: budget, Iterations: iters, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	gm, err := optimize.GreedyMarginal(wf, oracle, optimize.Params{
		Budget: budget, Iterations: iters, Seed: o.Seed, CandidateSample: 12,
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows,
		[]string{"local search (simulator oracle)", fsec(ls.BestMakespan), "", fmt.Sprint(ls.Evaluations)},
		[]string{"greedy marginal (simulator oracle)", fsec(gm.BestMakespan), "", fmt.Sprint(gm.Evaluations)},
	)
	// Fill speedups.
	for i := range t.Rows {
		if t.Rows[i][2] == "" || i == 0 {
			msRow := t.Rows[i][1]
			var ms float64
			fmt.Sscanf(msRow, "%f", &ms)
			t.Rows[i][2] = fmt.Sprintf("%.2f", baseline/ms)
		}
	}
	best := ls.BestMakespan
	if gm.BestMakespan < best {
		best = gm.BestMakespan
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"search beats the best static heuristic by %.1f%% (%.2fs vs %.2fs) at the cost of",
		100*(fanoutMs-best)/fanoutMs, best, fanoutMs),
		"a few hundred cheap simulations — the paper's proposed use of the simulator.")
	return []*Table{t}, nil
}

// RunScalability measures the simulator's own cost — the paper's pitch is
// a lightweight simulator that "can run scalably on a single computer" and
// explores the design space "thoroughly and quickly". Rows sweep the
// workflow size; the default columns are deterministic (event counts, not
// wall time), so repeated runs emit bit-identical tables. Injecting
// Options.Stopwatch adds wall-clock columns for interactive use.
func RunScalability(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	header := []string{"tasks", "files", "events", "events per sim-second"}
	if o.Stopwatch != nil {
		header = append(header, "wall time [ms]", "sim-seconds per wall-second")
	}
	t := &Table{
		ID:     "scalability",
		Title:  "Simulator cost vs. workflow size (SWarp pipelines on one Cori node, all data in BB)",
		Header: header,
	}
	counts := []int{8, 32, 128, 512}
	if o.Quick {
		counts = []int{8, 64}
	}
	for _, pipelines := range counts {
		wf := swarp.MustNew(swarp.Params{Pipelines: pipelines, CoresPerTask: 1})
		sim := core.MustNewSimulator(platform.Cori(1, platform.BBPrivate))
		var start time.Duration
		if o.Stopwatch != nil {
			start = o.Stopwatch()
		}
		res, err := sim.Run(wf, core.RunOptions{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: 1})
		if err != nil {
			return nil, err
		}
		row := []string{
			fmt.Sprint(len(wf.Tasks())),
			fmt.Sprint(len(wf.Files())),
			fmt.Sprint(res.Events),
			fmt.Sprintf("%.0f", float64(res.Events)/res.Makespan),
		}
		if o.Stopwatch != nil {
			wall := o.Stopwatch() - start
			row = append(row,
				fmt.Sprintf("%.1f", float64(wall.Microseconds())/1000),
				fmt.Sprintf("%.0f", res.Makespan/wall.Seconds()),
			)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"the fluid model's cost scales with flow-set changes (events), not transferred bytes,",
		"which is what makes thorough design-space exploration cheap (paper Section I).")
	return []*Table{t}, nil
}
