package experiments

import (
	"fmt"
	"time"

	"bbwfsim/internal/core"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/optimize"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
)

// RunAblationOptimizer executes the paper's proposed future work: use the
// simulator as an oracle to search the data-placement space, and quantify
// the benefit over the static heuristics.
func RunAblationOptimizer(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := 6
	iters := 150
	if o.Quick {
		chrom = 2
		iters = 30
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	st, err := wf.ComputeStats()
	if err != nil {
		return nil, err
	}
	budget := st.TotalBytes.Times(0.30)
	cfg := simPreset("cori-private", 4)
	cfg.BB.Capacity = budget
	// Each of the four strategies is one run point with its own simulator
	// and oracle: the two static placements cost one simulation each, the
	// two searches are inherently sequential oracle loops, so strategy-level
	// fan-out is the available parallelism.
	newOracle := func() func(pol *placement.Set) (float64, error) {
		sim := core.MustNewSimulator(cfg)
		return func(pol *placement.Set) (float64, error) {
			res, err := sim.Run(wf, core.RunOptions{Placement: pol, PrePlaceInputs: true})
			if err != nil {
				return 0, err
			}
			return res.Makespan, nil
		}
	}

	t := &Table{
		ID: "ablation-optimizer",
		Title: fmt.Sprintf("Simulator-in-the-loop placement search, 1000Genomes (%d chrom), BB = 30%% of footprint",
			chrom),
		Header: []string{"strategy", "makespan [s]", "speedup vs all-PFS", "simulations"},
	}
	type strategy struct {
		name string
		run  func() (float64, int, error) // makespan, simulations
	}
	static := func(name string, build func() *placement.Set) strategy {
		return strategy{name, func() (float64, int, error) {
			ms, err := newOracle()(build())
			if err != nil {
				return 0, 0, fmt.Errorf("optimizer baseline %s: %w", name, err)
			}
			return ms, 1, nil
		}}
	}
	strategies := []strategy{
		static("all-pfs", placement.AllPFS),
		static("fanout-greedy (static)", func() *placement.Set { return placement.NewFanoutGreedy(wf, budget) }),
		{"local search (simulator oracle)", func() (float64, int, error) {
			ls, err := optimize.LocalSearch(wf, newOracle(), optimize.Params{
				Budget: budget, Iterations: iters, Seed: o.Seed,
			})
			if err != nil {
				return 0, 0, err
			}
			return ls.BestMakespan, ls.Evaluations, nil
		}},
		{"greedy marginal (simulator oracle)", func() (float64, int, error) {
			gm, err := optimize.GreedyMarginal(wf, newOracle(), optimize.Params{
				Budget: budget, Iterations: iters, Seed: o.Seed, CandidateSample: 12,
			})
			if err != nil {
				return 0, 0, err
			}
			return gm.BestMakespan, gm.Evaluations, nil
		}},
	}
	type optPoint struct {
		ms    float64
		evals int
	}
	points, err := runPoints(o, strategies, func(s strategy) (optPoint, error) {
		ms, evals, err := s.run()
		if err != nil {
			return optPoint{}, err
		}
		return optPoint{ms, evals}, nil
	})
	if err != nil {
		return nil, err
	}
	baseline, fanoutMs := points[0].ms, points[1].ms
	lsMs, gmMs := points[2].ms, points[3].ms
	for i, s := range strategies {
		t.Rows = append(t.Rows, []string{s.name, fsec(points[i].ms), "", fmt.Sprint(points[i].evals)})
	}
	// Fill speedups.
	for i := range t.Rows {
		if t.Rows[i][2] == "" || i == 0 {
			msRow := t.Rows[i][1]
			var ms float64
			fmt.Sscanf(msRow, "%f", &ms)
			t.Rows[i][2] = fmt.Sprintf("%.2f", baseline/ms)
		}
	}
	best := lsMs
	if gmMs < best {
		best = gmMs
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"search beats the best static heuristic by %.1f%% (%.2fs vs %.2fs) at the cost of",
		100*(fanoutMs-best)/fanoutMs, best, fanoutMs),
		"a few hundred cheap simulations — the paper's proposed use of the simulator.")
	return []*Table{t}, nil
}

// RunScalability measures the simulator's own cost — the paper's pitch is
// a lightweight simulator that "can run scalably on a single computer" and
// explores the design space "thoroughly and quickly". Rows sweep the
// workflow size; the default columns are deterministic (event counts, not
// wall time), so repeated runs emit bit-identical tables. Injecting
// Options.Stopwatch adds wall-clock columns for interactive use.
func RunScalability(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	header := []string{"tasks", "files", "events", "events per sim-second"}
	if o.Stopwatch != nil {
		header = append(header, "wall time [ms]", "sim-seconds per wall-second")
	}
	t := &Table{
		ID:     "scalability",
		Title:  "Simulator cost vs. workflow size (SWarp pipelines on one Cori node, all data in BB)",
		Header: header,
	}
	counts := []int{8, 32, 128, 512}
	if o.Quick {
		counts = []int{8, 64}
	}
	// With a stopwatch injected, the points must run one at a time in row
	// order — concurrent runs would time each other's interference.
	po := o
	if o.Stopwatch != nil {
		po.Jobs = 1
	}
	rows, err := runPoints(po, counts, func(pipelines int) ([]string, error) {
		wf := swarp.MustNew(swarp.Params{Pipelines: pipelines, CoresPerTask: 1})
		sim := core.MustNewSimulator(platform.Cori(1, platform.BBPrivate))
		var start time.Duration
		if o.Stopwatch != nil {
			start = o.Stopwatch()
		}
		res, err := sim.Run(wf, core.RunOptions{StagedFraction: 1, IntermediatesToBB: true, CoresPerTask: 1})
		if err != nil {
			return nil, err
		}
		row := []string{
			fmt.Sprint(len(wf.Tasks())),
			fmt.Sprint(len(wf.Files())),
			fmt.Sprint(res.Events),
			fmt.Sprintf("%.0f", float64(res.Events)/res.Makespan),
		}
		if o.Stopwatch != nil {
			wall := o.Stopwatch() - start
			row = append(row,
				fmt.Sprintf("%.1f", float64(wall.Microseconds())/1000),
				fmt.Sprintf("%.0f", res.Makespan/wall.Seconds()),
			)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"the fluid model's cost scales with flow-set changes (events), not transferred bytes,",
		"which is what makes thorough design-space exploration cheap (paper Section I).")
	return []*Table{t}, nil
}
