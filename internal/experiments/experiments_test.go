package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick runs every experiment end to end in Quick
// mode and checks the rendered tables are well-formed.
func TestAllExperimentsRunQuick(t *testing.T) {
	opts := Options{Quick: true, Seed: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(opts)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("%s/%s: no rows", e.ID, tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Errorf("%s/%s: row width %d != header width %d", e.ID, tb.ID, len(row), len(tb.Header))
					}
				}
				var buf bytes.Buffer
				if err := tb.Fprint(&buf); err != nil {
					t.Errorf("%s/%s: Fprint: %v", e.ID, tb.ID, err)
				}
				if !strings.Contains(buf.String(), tb.ID) {
					t.Errorf("%s/%s: rendered output missing table ID", e.ID, tb.ID)
				}
			}
		})
	}
}

// TestInvalidOptionsRejected: option validation in withDefaults surfaces
// through every Run* entry point before any simulation runs.
func TestInvalidOptionsRejected(t *testing.T) {
	for _, opts := range []Options{{Reps: -1}, {Seed: -7}} {
		for _, e := range All() {
			if _, err := e.Run(opts); err == nil {
				t.Errorf("%s: accepted invalid options %+v", e.ID, opts)
			}
		}
	}
}

func TestFindKnowsAllIDs(t *testing.T) {
	for _, e := range All() {
		if got, ok := Find(e.ID); !ok || got.ID != e.ID {
			t.Errorf("Find(%q) failed", e.ID)
		}
	}
	if _, ok := Find("fig99"); ok {
		t.Error("Find accepted an unknown ID")
	}
}

// parseCell pulls the leading float out of a table cell like
// "26.15 ± 0.60".
func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.Fields(cell)[0], 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

// TestFig4Shape checks the paper's headline claims for Figure 4 on the
// quick sweep: stage-in grows with the staged fraction and summit beats
// cori by roughly the paper's factor.
func TestFig4Shape(t *testing.T) {
	tables, err := RunFig4(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	last := rows[len(rows)-1]
	coriPrivate := parseCell(t, last[1])
	summit := parseCell(t, last[3])
	if coriPrivate <= parseCell(t, rows[0][1]) {
		t.Error("cori-private stage-in did not grow with fraction")
	}
	ratio := coriPrivate / summit
	if ratio < 2.5 || ratio > 12 {
		t.Errorf("cori/summit stage-in ratio = %.1f, want ≈5 (paper)", ratio)
	}
}

// TestFig10ErrorBands checks the simulator accuracy lands in the same
// ballpark the paper reports (its numbers: 5.6%, 12.8%, 6.5%).
func TestFig10ErrorBands(t *testing.T) {
	tables, err := RunFig10(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	limits := map[string]float64{
		"fig10-cori-private": 0.15,
		"fig10-cori-striped": 0.35,
		"fig10-summit":       0.20,
	}
	for _, tb := range tables {
		limit, ok := limits[tb.ID]
		if !ok {
			t.Fatalf("unexpected table %s", tb.ID)
		}
		for _, row := range tb.Rows {
			// The per-point error column is last, as "x.y%".
			errStr := strings.TrimSuffix(row[len(row)-1], "%")
			v, err := strconv.ParseFloat(errStr, 64)
			if err != nil {
				t.Fatalf("%s: bad error cell %q", tb.ID, row[len(row)-1])
			}
			if v/100 > limit*2.5 {
				t.Errorf("%s at %s: point error %.1f%% far outside band %.0f%%", tb.ID, row[0], v, 100*limit)
			}
		}
	}
}

// TestFig13Shape checks the case-study claims: staging helps on both
// platforms and summit is faster throughout.
func TestFig13Shape(t *testing.T) {
	tables, err := RunFig13(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	cori0, coriN := parseCell(t, rows[0][1]), parseCell(t, rows[len(rows)-1][1])
	summit0, summitN := parseCell(t, rows[0][2]), parseCell(t, rows[len(rows)-1][2])
	if coriN >= cori0 || summitN >= summit0 {
		t.Errorf("staging did not help: cori %v→%v summit %v→%v", cori0, coriN, summit0, summitN)
	}
	for _, row := range rows {
		if parseCell(t, row[2]) >= parseCell(t, row[1])*1.05 {
			t.Errorf("summit slower than cori at %s", row[0])
		}
	}
}

// TestAblationModelEq3Wins checks that Eq. 3 with the true α beats Eq. 4
// away from the calibration anchor.
func TestAblationModelEq3Wins(t *testing.T) {
	tables, err := RunAblationModel(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// First row is the 1-core point, farthest from the 32-core anchor.
	row := tables[0].Rows[0]
	eq4 := parseCell(t, strings.TrimSuffix(row[3], "%"))
	eq3 := parseCell(t, strings.TrimSuffix(row[5], "%"))
	if eq3 >= eq4 {
		t.Errorf("Eq.3 error (%.1f%%) should beat Eq.4 (%.1f%%) at 1 core", eq3, eq4)
	}
}
