package experiments

import (
	"bytes"
	"strings"
	"testing"

	"bbwfsim/internal/sched"
)

// TestSchedSWFReplay drives the sched experiment from the committed SWF
// fixture instead of the synthetic generator: the trace must actually be
// scheduled (jobs conserved, work completed on every pressure row), the
// table must say so, and two full runs — at different worker counts —
// must render bit-identical CSV. Trace replay inherits the -j1 == -j8
// guarantee because the trace is parsed once and copied per cell.
func TestSchedSWFReplay(t *testing.T) {
	render := func(jobs int) ([]*Table, string) {
		tables, err := RunSched(Options{Quick: true, Jobs: jobs, SWF: "testdata/sample.swf"})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tb := range tables {
			if err := tb.CSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return tables, buf.String()
	}
	tables, a := render(1)
	_, b := render(8)
	if a != b {
		t.Fatal("SWF-driven sched CSV differs between -j1 and -j8")
	}

	grid := tables[0]
	if !strings.Contains(grid.Title, "SWF trace") {
		t.Errorf("grid title does not mention the trace: %q", grid.Title)
	}
	var noted bool
	for _, n := range grid.Notes {
		if strings.Contains(n, "testdata/sample.swf") {
			noted = true
		}
	}
	if !noted {
		t.Errorf("grid notes do not name the trace file: %v", grid.Notes)
	}
	// Quick grid: ample + scarce pressure rows, every policy schedules the
	// same trace, so "completed+failed+rejected" is one constant per table.
	nPol := len(sched.Policies())
	if got := len(grid.Rows); got != 2*nPol {
		t.Fatalf("grid has %d rows, want %d", got, 2*nPol)
	}
}

// TestLoadSWFJobs pins the trace loader itself: the fixture parses, jobs
// arrive sorted by submit time, and unrunnable records (cancelled jobs)
// were dropped by the parser.
func TestLoadSWFJobs(t *testing.T) {
	jobs, err := loadSWFJobs("testdata/sample.swf")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("fixture parsed to zero jobs")
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			t.Fatalf("jobs unsorted at %d: %v after %v", i, jobs[i].Submit, jobs[i-1].Submit)
		}
	}
	for i, j := range jobs {
		if j.Nodes <= 0 || j.Runtime <= 0 {
			t.Fatalf("job %d unrunnable: nodes=%d runtime=%v", i, j.Nodes, j.Runtime)
		}
		if j.BBDemand < 0 {
			t.Fatalf("job %d negative BB demand", i)
		}
	}

	if _, err := loadSWFJobs("testdata/no-such-trace.swf"); err == nil {
		t.Fatal("missing trace file did not error")
	}
}
