package experiments

import (
	"fmt"
	"os"
	"sort"

	"bbwfsim/internal/faults"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/sched"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workloads"
)

// The sched experiment is the multi-tenant study: a seeded synthetic
// campaign of competing batch jobs (internal/workloads) admitted onto one
// shared cluster under every scheduling policy (internal/sched), swept
// across three burst-buffer pressure levels. Within one pressure level all
// policies replay the bit-identical campaign — the campaign seed depends
// only on the pressure — so rows differ by policy alone. A fault section
// repeats the contended grid with a seeded node-failure campaign.

// schedPressure provisions the cluster's reservable BB capacity. "ample"
// never binds, "tight" binds under bursts, "scarce" is the contended grid
// where BB reservations — not nodes — dominate queueing.
type schedPressure struct {
	label    string
	capacity units.Bytes
}

var schedPressures = []schedPressure{
	{"ample", units.TiB},
	{"tight", 384 * units.GiB},
	{"scarce", 128 * units.GiB},
}

// schedCluster is the shared platform of every cell: 32 nodes, a 4 GiB/s
// BB staging channel, and a 4x slower direct PFS channel.
func schedCluster(p schedPressure) sched.Cluster {
	return sched.Cluster{
		Nodes:        32,
		BBCapacity:   p.capacity,
		BBBandwidth:  units.Bandwidth(4 * units.GiB),
		PFSBandwidth: units.Bandwidth(units.GiB),
	}
}

// schedSpec is the campaign generator configuration of one pressure cell:
// 1000 jobs (the acceptance floor) arriving at ~94% node utilization, so
// queues form without diverging. The seed depends only on the base seed
// and the pressure, never on the policy — every policy in a pressure row
// schedules the same jobs.
func schedSpec(o Options, pressure int) workloads.CampaignSpec {
	return workloads.CampaignSpec{
		Jobs:        1000,
		Seed:        o.Seed*1000 + int64(pressure),
		ArrivalMean: 110,
		RuntimeMean: 600,
		MaxNodes:    16,
		BBMean:      4 * units.GiB,
	}
}

// schedFaultPlan is the fault section's node-failure campaign: Poisson
// outages, half-hour repairs, a bounded budget. The seed depends on the
// cell so every cell's campaign is private and reproducible.
func schedFaultPlan(o Options, pressure, policy int) *sched.FaultPlan {
	return &sched.FaultPlan{
		Seed: o.Seed*1_000_003 + int64(pressure*100+policy),
		Node: &faults.NodeProcess{Arrival: faults.Exp(4000), MTTR: 1800, Budget: 10},
	}
}

// schedCell is one run point of the grid: a (pressure, policy) pair, with
// or without the fault campaign.
type schedCell struct {
	pressure int
	policy   int
	faults   bool
}

// loadSWFJobs reads the trace-driven campaign once per RunSched call:
// the SWF prefix every cell replays. BB demand falls back to 4 GiB per
// requested processor (the synthetic generator's mean) for records
// without a memory field, so the pressure rows bind comparably.
func loadSWFJobs(path string) ([]workloads.Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sched: opening SWF trace: %w", err)
	}
	jobs, err := workloads.ParseSWF(f, workloads.SWFOptions{BBPerProc: 4 * units.GiB, MaxJobs: 1000})
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	// The scheduler contract wants non-decreasing submit times; real
	// traces are usually sorted already, but enforce it rather than trust
	// it. Stable keeps equal-submit records in trace order.
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].Submit < jobs[j].Submit })
	return jobs, nil
}

// runSchedCell executes one cell's campaign. Each cell builds its own
// jobs, cluster, and scheduler state, so cells fan across workers with
// bit-identical results at any Jobs value. A non-nil swfJobs replaces the
// synthetic campaign; the slice is shared read-only across cells, so each
// cell schedules its private copy.
func runSchedCell(o Options, c schedCell, swfJobs []workloads.Job) (*sched.Result, error) {
	var jobs []workloads.Job
	var err error
	if swfJobs != nil {
		jobs = append([]workloads.Job(nil), swfJobs...)
	} else {
		jobs, err = workloads.Campaign(schedSpec(o, c.pressure))
		if err != nil {
			return nil, err
		}
	}
	cfg := sched.Config{
		Cluster: schedCluster(schedPressures[c.pressure]),
		Policy:  sched.Policies()[c.policy],
		Jobs:    jobs,
	}
	if c.faults {
		cfg.Faults = schedFaultPlan(o, c.pressure, c.policy)
	}
	res, err := sched.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("sched %s/%s: %w",
			schedPressures[c.pressure].label, sched.Policies()[c.policy], err)
	}
	return res, nil
}

// schedQuantile returns the nearest-rank q-quantile of sorted vs (empty
// slices quantile to zero).
func schedQuantile(vs []float64, q float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	i := int(q * float64(len(vs)-1))
	return vs[i]
}

// completedDist extracts one sorted per-completed-job distribution.
func completedDist(res *sched.Result, f func(*sched.JobStat) float64) []float64 {
	vs := make([]float64, 0, len(res.Jobs))
	for i := range res.Jobs {
		if res.Jobs[i].Outcome == sched.Completed {
			vs = append(vs, f(&res.Jobs[i]))
		}
	}
	sort.Float64s(vs)
	return vs
}

// RunSched sweeps scheduling policy × BB pressure on a shared synthetic
// campaign, then repeats the scarce (contended) grid under a node-failure
// campaign. Quick mode shrinks the grid to the ample and scarce pressure
// rows; campaigns keep their full 1000-job length so quick output still
// exercises real contention.
func RunSched(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	pressures := []int{0, 1, 2}
	if o.Quick {
		pressures = []int{0, 2}
	}
	policies := sched.Policies()

	var cells []schedCell
	for _, pi := range pressures {
		for poli := range policies {
			cells = append(cells, schedCell{pressure: pi, policy: poli})
		}
	}
	// Fault section: the contended (scarce) grid under node failures.
	const faultPressure = 2
	for poli := range policies {
		cells = append(cells, schedCell{pressure: faultPressure, policy: poli, faults: true})
	}

	var swfJobs []workloads.Job
	if o.SWF != "" {
		swfJobs, err = loadSWFJobs(o.SWF)
		if err != nil {
			return nil, err
		}
	}

	results, err := runPoints(o, cells, func(c schedCell) (*sched.Result, error) {
		return runSchedCell(o, c, swfJobs)
	})
	if err != nil {
		return nil, err
	}
	snaps := make([]*metrics.Snapshot, len(results))
	for i, r := range results {
		snaps[i] = r.Metrics
	}
	emitMetrics(o, snaps)

	campaign := "1000-job campaign"
	notes := []string{
		"Within one pressure row every policy schedules the bit-identical campaign.",
		"bsld = bounded slowdown, max(1, response / max(span, 10 s)).",
	}
	if o.SWF != "" {
		campaign = fmt.Sprintf("%d-job SWF trace", len(swfJobs))
		notes = append(notes,
			fmt.Sprintf("Campaign replayed from SWF trace %s (every pressure row schedules the same trace prefix).", o.SWF))
	}
	grid := &Table{
		ID:    "sched-grid",
		Title: fmt.Sprintf("Multi-tenant scheduling: policy × BB pressure (%s)", campaign),
		Header: []string{"pressure", "policy", "completed", "failed", "rejected",
			"mean wait [s]", "p95 wait [s]", "mean resp [s]", "mean bsld", "makespan [s]"},
		Notes: notes,
	}
	waitCDF := &Table{
		ID:    "sched-wait-cdf",
		Title: "Multi-tenant scheduling: wait-time distribution over completed jobs",
		Header: []string{"pressure", "policy",
			"p10 [s]", "p25 [s]", "p50 [s]", "p75 [s]", "p90 [s]", "p95 [s]", "p99 [s]", "max [s]"},
	}
	respCDF := &Table{
		ID:    "sched-bsld",
		Title: "Multi-tenant scheduling: response and bounded-slowdown distributions",
		Header: []string{"pressure", "policy",
			"p50 resp [s]", "p95 resp [s]", "max resp [s]", "p50 bsld", "p95 bsld", "max bsld"},
	}
	faultTbl := &Table{
		ID:    "sched-faults",
		Title: "Multi-tenant scheduling under node failures (scarce BB, 10-outage budget)",
		Header: []string{"policy", "node failures", "completed", "failed", "rejected",
			"mean wait [s]", "mean resp [s]", "mean bsld", "makespan [s]"},
		Notes: []string{"Node failures kill the holding job (rigid allocations); nodes repair after 1800 s."},
	}

	for i, c := range cells {
		res := results[i]
		pol := policies[c.policy]
		if c.faults {
			faultTbl.Rows = append(faultTbl.Rows, []string{
				pol, fmt.Sprintf("%d", res.NodeFailures),
				fmt.Sprintf("%d", res.Completed), fmt.Sprintf("%d", res.Failed),
				fmt.Sprintf("%d", res.Rejected),
				fsec(res.MeanWait()), fsec(res.MeanResponse()),
				fmt.Sprintf("%.2f", res.MeanSlowdown()), fsec(res.Makespan),
			})
			continue
		}
		label := schedPressures[c.pressure].label
		grid.Rows = append(grid.Rows, []string{
			label, pol,
			fmt.Sprintf("%d", res.Completed), fmt.Sprintf("%d", res.Failed),
			fmt.Sprintf("%d", res.Rejected),
			fsec(res.MeanWait()),
			fsec(schedQuantile(completedDist(res, func(j *sched.JobStat) float64 { return j.Wait }), 0.95)),
			fsec(res.MeanResponse()),
			fmt.Sprintf("%.2f", res.MeanSlowdown()), fsec(res.Makespan),
		})
		waits := completedDist(res, func(j *sched.JobStat) float64 { return j.Wait })
		waitCDF.Rows = append(waitCDF.Rows, []string{
			label, pol,
			fsec(schedQuantile(waits, 0.10)), fsec(schedQuantile(waits, 0.25)),
			fsec(schedQuantile(waits, 0.50)), fsec(schedQuantile(waits, 0.75)),
			fsec(schedQuantile(waits, 0.90)), fsec(schedQuantile(waits, 0.95)),
			fsec(schedQuantile(waits, 0.99)), fsec(schedQuantile(waits, 1)),
		})
		resps := completedDist(res, func(j *sched.JobStat) float64 { return j.Response })
		slds := completedDist(res, func(j *sched.JobStat) float64 { return j.Slowdown })
		respCDF.Rows = append(respCDF.Rows, []string{
			label, pol,
			fsec(schedQuantile(resps, 0.50)), fsec(schedQuantile(resps, 0.95)),
			fsec(schedQuantile(resps, 1)),
			fmt.Sprintf("%.2f", schedQuantile(slds, 0.50)),
			fmt.Sprintf("%.2f", schedQuantile(slds, 0.95)),
			fmt.Sprintf("%.2f", schedQuantile(slds, 1)),
		})
	}
	return []*Table{grid, waitCDF, respCDF, faultTbl}, nil
}
