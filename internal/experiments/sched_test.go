package experiments

import (
	"bytes"
	"testing"

	"bbwfsim/internal/sched"
)

func schedPolicyIndex(t *testing.T, name string) int {
	t.Helper()
	for i, p := range sched.Policies() {
		if p == name {
			return i
		}
	}
	t.Fatalf("policy %s not in catalog", name)
	return -1
}

// TestSchedBackfillBeatsFCFS pins the acceptance property: FCFS+EASY
// backfill strictly improves mean wait over plain FCFS on every pressure
// row of the grid — including the contended (scarce-BB) one.
func TestSchedBackfillBeatsFCFS(t *testing.T) {
	o, err := Options{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	fcfs := schedPolicyIndex(t, sched.PolicyFCFS)
	easy := schedPolicyIndex(t, sched.PolicyEASY)
	for pi, press := range schedPressures {
		f, err := runSchedCell(o, schedCell{pressure: pi, policy: fcfs}, nil)
		if err != nil {
			t.Fatal(err)
		}
		e, err := runSchedCell(o, schedCell{pressure: pi, policy: easy}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if e.MeanWait() >= f.MeanWait() {
			t.Errorf("%s: easy mean wait %.2f not strictly below fcfs %.2f",
				press.label, e.MeanWait(), f.MeanWait())
		}
		if f.Submitted != f.Completed+f.Failed+f.Rejected {
			t.Errorf("%s fcfs: conservation %d != %d+%d+%d",
				press.label, f.Submitted, f.Completed, f.Failed, f.Rejected)
		}
	}
}

// TestSchedExperimentShape checks the table layout and the campaign-size
// acceptance floor, on the quick grid.
func TestSchedExperimentShape(t *testing.T) {
	tables, err := RunSched(Options{Quick: true, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("got %d tables, want 4", len(tables))
	}
	ids := []string{"sched-grid", "sched-wait-cdf", "sched-bsld", "sched-faults"}
	for i, id := range ids {
		if tables[i].ID != id {
			t.Errorf("table %d: ID %s, want %s", i, tables[i].ID, id)
		}
	}
	nPol := len(sched.Policies())
	if got := len(tables[0].Rows); got != 2*nPol { // quick: ample + scarce
		t.Errorf("grid has %d rows, want %d", got, 2*nPol)
	}
	if got := len(tables[3].Rows); got != nPol {
		t.Errorf("fault table has %d rows, want %d", got, nPol)
	}
	// ≥1000 jobs per policy cell even in quick mode.
	if spec := schedSpec(Options{Seed: 1}, 0); spec.Jobs < 1000 {
		t.Errorf("campaign length %d below the 1000-job floor", spec.Jobs)
	}
}

// TestSchedExperimentDeterministic pins bit-identical CSV output across
// worker counts — the experiment-level face of the -j1 == -j8 guarantee.
func TestSchedExperimentDeterministic(t *testing.T) {
	render := func(jobs int) string {
		tables, err := RunSched(Options{Quick: true, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tb := range tables {
			if err := tb.CSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	if a, b := render(1), render(8); a != b {
		t.Fatal("sched experiment CSV differs between -j1 and -j8")
	}
}
