package experiments

import (
	"fmt"

	"bbwfsim/internal/core"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/workloads"
)

// RunScale measures the simulator's ceiling on generated WfBench-style
// workflows far past the paper's real applications: tens of thousands to
// hundreds of thousands of tasks on a fixed platform. Runs use the counting
// trace mode plus scratch-lifecycle options (evict after last read, PFS
// fallback), so live memory stays O(active tasks) — the configuration the
// million-task acceptance run uses. The default columns are deterministic;
// Options.Stopwatch adds wall-clock columns for interactive use.
func RunScale(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	header := []string{"tasks", "files", "events", "events per sim-second", "peak pending events"}
	if o.Stopwatch != nil {
		header = append(header, "wall time [ms]", "events per wall-second")
	}
	t := &Table{
		ID:     "scale",
		Title:  "Simulator ceiling vs. generated workflow size (montage topology, 8 Cori nodes, counting trace)",
		Header: header,
	}
	counts := []int{1000, 10000, 100000}
	if o.Quick {
		counts = []int{1000, 10000}
	}
	// With a stopwatch injected, the points must run one at a time in row
	// order — concurrent runs would time each other's interference.
	po := o
	if o.Stopwatch != nil {
		po.Jobs = 1
	}
	rows, err := runPoints(po, counts, func(tasks int) ([]string, error) {
		wf, err := workloads.Scale(workloads.ScaleSpec{Topology: "montage", Tasks: tasks, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		sim := core.MustNewSimulator(platform.Cori(8, platform.BBPrivate))
		var start int64
		if o.Stopwatch != nil {
			start = o.Stopwatch().Nanoseconds()
		}
		res, err := sim.Run(wf, core.RunOptions{
			StagedFraction:     0.5,
			IntermediatesToBB:  true,
			PrePlaceInputs:     true,
			EvictAfterLastRead: true,
			BBFallback:         true,
			TraceMode:          trace.Counting,
		})
		if err != nil {
			return nil, err
		}
		row := []string{
			fmt.Sprint(len(wf.Tasks())),
			fmt.Sprint(len(wf.Files())),
			fmt.Sprint(res.Events),
			fmt.Sprintf("%.0f", float64(res.Events)/res.Makespan),
			fmt.Sprint(res.PeakPending),
		}
		if o.Stopwatch != nil {
			wallNs := o.Stopwatch().Nanoseconds() - start
			row = append(row,
				fmt.Sprintf("%.1f", float64(wallNs)/1e6),
				fmt.Sprintf("%.0f", float64(res.Events)/(float64(wallNs)/1e9)),
			)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	t.Notes = append(t.Notes,
		"the counting trace keeps per-kind counters instead of retained events, and evict-",
		"after-last-read caps storage registry growth, so memory tracks the peak-pending",
		"column (active tasks) rather than total history — the O(1)-per-event regime that",
		"lets a million-task workflow simulate on a laptop.")
	return []*Table{t}, nil
}
