package experiments

import (
	"fmt"

	"bbwfsim/internal/core"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/stats"
)

// RunAblationSizing asks the provisioning question the paper's related
// work poses ("What size should your buffers to disks be?", Aupy et al.,
// cited as [30]): sweep the burst-buffer capacity as a fraction of the
// workflow footprint and find where the makespan curve flattens — the
// knee beyond which more burst buffer buys nothing.
func RunAblationSizing(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := 8
	if o.Quick {
		chrom = 2
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	st, err := wf.ComputeStats()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "ablation-sizing",
		Title: fmt.Sprintf("BB capacity provisioning, 1000Genomes (%d chrom), all data to BB with eviction",
			chrom),
		Header: []string{"capacity (% of footprint)", "capacity", "makespan [s]", "gain vs previous"},
	}
	fractionsOfFootprint := []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.60, 0.80, 1.00}
	if o.Quick {
		fractionsOfFootprint = []float64{0.10, 0.40, 1.00}
	}
	// Fan the capacity points out; the gain/knee columns chain row-to-row,
	// so they are assembled serially from the collected makespans.
	makespans, err := runPoints(o, fractionsOfFootprint, func(cf float64) (float64, error) {
		cfg := simPreset("cori-private", caseStudyNodes)
		cfg.BB.Capacity = st.TotalBytes.Times(cf)
		res, err := core.MustNewSimulator(cfg).Run(wf, core.RunOptions{
			StagedFraction:     cf, // stage what fits up front
			IntermediatesToBB:  true,
			PrePlaceInputs:     true,
			EvictAfterLastRead: true,
		})
		if err != nil {
			return 0, nil // overflow: the BB cannot hold this staging level
		}
		return res.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	var series []float64
	prev := 0.0
	knee := ""
	for i, cf := range fractionsOfFootprint {
		ms := makespans[i]
		label := "overflow"
		if ms > 0 {
			label = fsec(ms)
		}
		gain := ""
		if prev > 0 && ms > 0 {
			g := (prev - ms) / prev
			gain = fpct(g)
			if knee == "" && g < 0.02 {
				knee = ffrac(cf)
			}
		}
		t.Rows = append(t.Rows, []string{
			ffrac(cf), st.TotalBytes.Times(cf).String(), label, gain,
		})
		if ms > 0 {
			series = append(series, ms)
			prev = ms
		}
	}
	if len(series) >= 2 {
		min, max := stats.MinMax(series)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"total range: %.2f → %.2f s (%.0f%% gain from provisioning)", max, min, 100*(max-min)/max))
	}
	if knee != "" {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"diminishing returns set in around %s of the footprint — with lifecycle", knee),
			"management, far less than a footprint-sized BB suffices (cf. Aupy et al. [30]).")
	}
	return []*Table{t}, nil
}
