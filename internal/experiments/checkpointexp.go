package experiments

import (
	"fmt"

	"bbwfsim/internal/checkpoint"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/stats"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/units"
)

// RunAblationCheckpoint measures how periodic checkpoint traffic from
// co-located jobs — the workload burst buffers were designed for —
// interferes with an all-BB workflow execution, on the shared and on-node
// architectures. Related studies (Mubarak et al., cited by the paper)
// quantify exactly this interference class.
func RunAblationCheckpoint(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	pipelines := 8
	if o.Quick {
		pipelines = 4
	}
	wf := swarp.MustNew(swarp.Params{Pipelines: pipelines, CoresPerTask: 32})
	t := &Table{
		ID: "ablation-checkpoint",
		Title: fmt.Sprintf("Checkpoint-traffic interference, SWarp %d pipelines (32 cores/task, all data in BB)",
			pipelines),
		Header: []string{"platform", "checkpoint target", "makespan [s]", "slowdown"},
	}
	type cfg struct {
		name   string
		target string // "", "bb", "pfs"
	}
	cases := []cfg{
		{"cori-private", ""}, {"cori-private", "bb"}, {"cori-private", "pfs"},
		{"summit", ""}, {"summit", "bb"}, {"summit", "pfs"},
	}
	makespans, err := runPoints(o, cases, func(c cfg) (float64, error) {
		sim := core.MustNewSimulator(simPreset(c.name, 1))
		ro := core.RunOptions{StagedFraction: 1, IntermediatesToBB: true}
		label := "none"
		if c.target != "" {
			// Aggressive defensive-I/O regime: a new 2 GB checkpoint
			// every 2 s per node, so waves overlap and the background
			// load claims a large share of the storage bandwidth.
			inj, err := checkpoint.New(checkpoint.Params{
				Interval:  2,
				Size:      2 * units.GB,
				ToBB:      c.target == "bb",
				FirstWave: 1,
			})
			if err != nil {
				return 0, err
			}
			ro.Background = []exec.Background{inj}
			label = c.target
		}
		res, err := sim.Run(wf, ro)
		if err != nil {
			return 0, fmt.Errorf("checkpoint %s/%s: %w", c.name, label, err)
		}
		return res.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	// Baselines (the target == "" rows) come first for each platform, so
	// the slowdown column assembles serially from the collected makespans.
	baselines := map[string]float64{}
	var coriSlow, summitSlow float64
	for i, c := range cases {
		ms := makespans[i]
		label := "none"
		if c.target != "" {
			label = c.target
		}
		slowdown := ""
		if c.target == "" {
			baselines[c.name] = ms
		} else {
			s := ms / baselines[c.name]
			slowdown = fmt.Sprintf("%.2f×", s)
			if c.target == "bb" {
				if c.name == "cori-private" {
					coriSlow = s
				} else {
					summitSlow = s
				}
			}
		}
		t.Rows = append(t.Rows, []string{c.name, label, fsec(ms), slowdown})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"checkpoints into the *shared* BB slow the workflow %.2f× on cori vs %.2f× on", coriSlow, summitSlow),
		"summit's on-node devices; checkpointing to the PFS leaves an all-BB workflow",
		"almost untouched. Extension beyond the paper (its Section II motivation).")
	_ = stats.Mean // keep stats import if notes change
	return []*Table{t}, nil
}
