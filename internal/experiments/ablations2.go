package experiments

import (
	"fmt"

	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/stats"
)

// RunAblationScheduler compares the workflow management system's
// scheduling policies on the 1000Genomes instance: node selection
// (first-fit / least-loaded / round-robin) crossed with ready-queue
// ordering (FIFO / largest-work / critical-path).
func RunAblationScheduler(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := 8
	if o.Quick {
		chrom = 2
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	// Summit: node selection interacts with data locality, because every
	// node has its own burst buffer and pre-placed inputs live on specific
	// nodes' devices.
	cfg := simPreset("summit", 2)
	t := &Table{
		ID: "ablation-scheduler",
		Title: fmt.Sprintf("Scheduler policies, 1000Genomes (%d chrom) on 2 Summit nodes, all data in BB",
			chrom),
		Header: []string{"node policy", "order policy", "makespan [s]", "vs baseline"},
	}
	nodePolicies := []struct {
		name string
		p    exec.NodePolicy
	}{
		{"first-fit", exec.NodeFirstFit},
		{"least-loaded", exec.NodeLeastLoaded},
		{"round-robin", exec.NodeRoundRobin},
	}
	orderPolicies := []struct {
		name string
		p    exec.OrderPolicy
	}{
		{"fifo", exec.OrderFIFO},
		{"largest-work", exec.OrderLargestWork},
		{"critical-path", exec.OrderCriticalPath},
	}
	type schedPoint struct{ node, order int }
	var pts []schedPoint
	for ni := range nodePolicies {
		for oi := range orderPolicies {
			pts = append(pts, schedPoint{ni, oi})
		}
	}
	makespans, err := runPoints(o, pts, func(p schedPoint) (float64, error) {
		np, op := nodePolicies[p.node], orderPolicies[p.order]
		res, err := core.MustNewSimulator(cfg).Run(wf, core.RunOptions{
			StagedFraction:    1,
			IntermediatesToBB: true,
			PrePlaceInputs:    true,
			NodePolicy:        np.p,
			OrderPolicy:       op.p,
		})
		if err != nil {
			return 0, fmt.Errorf("scheduler %s/%s: %w", np.name, op.name, err)
		}
		return res.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	baseline := makespans[0]
	for i, p := range pts {
		t.Rows = append(t.Rows, []string{
			nodePolicies[p.node].name, orderPolicies[p.order].name, fsec(makespans[i]),
			fmt.Sprintf("%.3f", makespans[i]/baseline),
		})
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: the WMS layer the paper treats as fixed.")
	return []*Table{t}, nil
}

// RunAblationLifecycle shows what scratch-data lifecycle management buys
// when the burst buffer is smaller than the workflow footprint: an
// all-to-BB placement with evict-after-last-read versus static budgeted
// placements versus no BB at all.
func RunAblationLifecycle(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := 8
	if o.Quick {
		chrom = 2
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	st, err := wf.ComputeStats()
	if err != nil {
		return nil, err
	}
	budget := st.TotalBytes.Times(0.35)
	cfg := simPreset("cori-private", caseStudyNodes)
	cfg.BB.Capacity = budget

	t := &Table{
		ID: "ablation-lifecycle",
		Title: fmt.Sprintf("Data lifecycle, 1000Genomes (%d chrom), BB capacity = 35%% of footprint",
			chrom),
		Header: []string{"% input in BB + intermediates", "static [s]", "with eviction [s]"},
	}
	qs := []float64{0, 0.1, 0.2, 0.3, 0.4}
	type lifecyclePoint struct {
		q     float64
		evict bool
	}
	var pts []lifecyclePoint
	for _, q := range qs {
		pts = append(pts, lifecyclePoint{q, false}, lifecyclePoint{q, true})
	}
	// A point that overflows the constrained BB is a result ("overflow"),
	// not a sweep-aborting error.
	cells, err := runPoints(o, pts, func(p lifecyclePoint) (string, error) {
		res, err := core.MustNewSimulator(cfg).Run(wf, core.RunOptions{
			StagedFraction:     p.q,
			IntermediatesToBB:  true,
			PrePlaceInputs:     true,
			EvictAfterLastRead: p.evict,
		})
		if err != nil {
			return "overflow", nil
		}
		return fsec(res.Makespan), nil
	})
	if err != nil {
		return nil, err
	}
	feasibleStatic, feasibleEvict := 0, 0
	for qi, q := range qs {
		static, evict := cells[2*qi], cells[2*qi+1]
		if static != "overflow" {
			feasibleStatic++
		}
		if evict != "overflow" {
			feasibleEvict++
		}
		t.Rows = append(t.Rows, []string{ffrac(q), static, evict})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"evict-after-last-read keeps %d of 5 staging levels feasible vs %d without it:",
		feasibleEvict, feasibleStatic),
		"freeing scratch replicas after their last consumer extends how much of the",
		"workflow fits a burst buffer smaller than the footprint (MaDaTS-style lifecycle",
		"management, which the paper surveys as related work).")
	return []*Table{t}, nil
}

// RunAblationVisibility quantifies the private DataWarp visibility rule on
// a multi-node run: with enforcement, intermediates written to the BB by
// one node must be relocated through the PFS before another node can read
// them.
func RunAblationVisibility(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := 8
	if o.Quick {
		chrom = 2
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	cfg := simPreset("cori-private", 4)
	t := &Table{
		ID: "ablation-visibility",
		Title: fmt.Sprintf("Private-mode visibility rule, 1000Genomes (%d chrom) on 4 Cori nodes, all data in BB",
			chrom),
		Header: []string{"visibility rule", "node policy", "makespan [s]"},
	}
	nodePolicies := []struct {
		name string
		p    exec.NodePolicy
	}{
		{"first-fit", exec.NodeFirstFit},
		{"round-robin", exec.NodeRoundRobin},
	}
	type visPoint struct {
		node    int
		enforce bool
	}
	var pts []visPoint
	for ni := range nodePolicies {
		pts = append(pts, visPoint{ni, false}, visPoint{ni, true})
	}
	makespans, err := runPoints(o, pts, func(p visPoint) (float64, error) {
		np := nodePolicies[p.node]
		res, err := core.MustNewSimulator(cfg).Run(wf, core.RunOptions{
			StagedFraction: 1, IntermediatesToBB: true, PrePlaceInputs: true,
			NodePolicy: np.p, EnforcePrivateVisibility: p.enforce,
		})
		if err != nil {
			return 0, fmt.Errorf("visibility %v/%s: %w", p.enforce, np.name, err)
		}
		return res.Makespan, nil
	})
	if err != nil {
		return nil, err
	}
	var lax, strict []float64
	for i, p := range pts {
		label := "ignored (paper's simulator)"
		if p.enforce {
			label = "enforced + PFS relocation"
			strict = append(strict, makespans[i])
		} else {
			lax = append(lax, makespans[i])
		}
		t.Rows = append(t.Rows, []string{label, nodePolicies[p.node].name, fsec(makespans[i])})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"enforcement costs %.0f%% on average — the \"difficult data management challenges\"",
		100*(stats.Mean(strict)/stats.Mean(lax)-1)),
		"the paper's conclusion attributes to sharing files across BB namespaces.")
	return []*Table{t}, nil
}
