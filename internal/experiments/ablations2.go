package experiments

import (
	"fmt"

	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/stats"
)

// RunAblationScheduler compares the workflow management system's
// scheduling policies on the 1000Genomes instance: node selection
// (first-fit / least-loaded / round-robin) crossed with ready-queue
// ordering (FIFO / largest-work / critical-path).
func RunAblationScheduler(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := 8
	if o.Quick {
		chrom = 2
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	// Summit: node selection interacts with data locality, because every
	// node has its own burst buffer and pre-placed inputs live on specific
	// nodes' devices.
	sim := core.MustNewSimulator(simPreset("summit", 2))
	t := &Table{
		ID: "ablation-scheduler",
		Title: fmt.Sprintf("Scheduler policies, 1000Genomes (%d chrom) on 2 Summit nodes, all data in BB",
			chrom),
		Header: []string{"node policy", "order policy", "makespan [s]", "vs baseline"},
	}
	nodePolicies := []struct {
		name string
		p    exec.NodePolicy
	}{
		{"first-fit", exec.NodeFirstFit},
		{"least-loaded", exec.NodeLeastLoaded},
		{"round-robin", exec.NodeRoundRobin},
	}
	orderPolicies := []struct {
		name string
		p    exec.OrderPolicy
	}{
		{"fifo", exec.OrderFIFO},
		{"largest-work", exec.OrderLargestWork},
		{"critical-path", exec.OrderCriticalPath},
	}
	var baseline float64
	for _, np := range nodePolicies {
		for _, op := range orderPolicies {
			res, err := sim.Run(wf, core.RunOptions{
				StagedFraction:    1,
				IntermediatesToBB: true,
				PrePlaceInputs:    true,
				NodePolicy:        np.p,
				OrderPolicy:       op.p,
			})
			if err != nil {
				return nil, fmt.Errorf("scheduler %s/%s: %w", np.name, op.name, err)
			}
			if baseline == 0 { //bbvet:allow float-compare -- zero is the "first row" sentinel; makespans are strictly positive
				baseline = res.Makespan
			}
			t.Rows = append(t.Rows, []string{
				np.name, op.name, fsec(res.Makespan),
				fmt.Sprintf("%.3f", res.Makespan/baseline),
			})
		}
	}
	t.Notes = append(t.Notes,
		"extension beyond the paper: the WMS layer the paper treats as fixed.")
	return []*Table{t}, nil
}

// RunAblationLifecycle shows what scratch-data lifecycle management buys
// when the burst buffer is smaller than the workflow footprint: an
// all-to-BB placement with evict-after-last-read versus static budgeted
// placements versus no BB at all.
func RunAblationLifecycle(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := 8
	if o.Quick {
		chrom = 2
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	st, err := wf.ComputeStats()
	if err != nil {
		return nil, err
	}
	budget := st.TotalBytes.Times(0.35)
	cfg := simPreset("cori-private", caseStudyNodes)
	cfg.BB.Capacity = budget
	sim := core.MustNewSimulator(cfg)

	t := &Table{
		ID: "ablation-lifecycle",
		Title: fmt.Sprintf("Data lifecycle, 1000Genomes (%d chrom), BB capacity = 35%% of footprint",
			chrom),
		Header: []string{"% input in BB + intermediates", "static [s]", "with eviction [s]"},
	}
	run := func(q float64, evict bool) string {
		res, err := sim.Run(wf, core.RunOptions{
			StagedFraction:     q,
			IntermediatesToBB:  true,
			PrePlaceInputs:     true,
			EvictAfterLastRead: evict,
		})
		if err != nil {
			return "overflow"
		}
		return fsec(res.Makespan)
	}
	feasibleStatic, feasibleEvict := 0, 0
	for _, q := range []float64{0, 0.1, 0.2, 0.3, 0.4} {
		static := run(q, false)
		evict := run(q, true)
		if static != "overflow" {
			feasibleStatic++
		}
		if evict != "overflow" {
			feasibleEvict++
		}
		t.Rows = append(t.Rows, []string{ffrac(q), static, evict})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"evict-after-last-read keeps %d of 5 staging levels feasible vs %d without it:",
		feasibleEvict, feasibleStatic),
		"freeing scratch replicas after their last consumer extends how much of the",
		"workflow fits a burst buffer smaller than the footprint (MaDaTS-style lifecycle",
		"management, which the paper surveys as related work).")
	return []*Table{t}, nil
}

// RunAblationVisibility quantifies the private DataWarp visibility rule on
// a multi-node run: with enforcement, intermediates written to the BB by
// one node must be relocated through the PFS before another node can read
// them.
func RunAblationVisibility(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	chrom := 8
	if o.Quick {
		chrom = 2
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: chrom})
	sim := core.MustNewSimulator(simPreset("cori-private", 4))
	t := &Table{
		ID: "ablation-visibility",
		Title: fmt.Sprintf("Private-mode visibility rule, 1000Genomes (%d chrom) on 4 Cori nodes, all data in BB",
			chrom),
		Header: []string{"visibility rule", "node policy", "makespan [s]"},
	}
	var lax, strict []float64
	for _, np := range []struct {
		name string
		p    exec.NodePolicy
	}{
		{"first-fit", exec.NodeFirstFit},
		{"round-robin", exec.NodeRoundRobin},
	} {
		for _, enforce := range []bool{false, true} {
			res, err := sim.Run(wf, core.RunOptions{
				StagedFraction: 1, IntermediatesToBB: true, PrePlaceInputs: true,
				NodePolicy: np.p, EnforcePrivateVisibility: enforce,
			})
			if err != nil {
				return nil, fmt.Errorf("visibility %v/%s: %w", enforce, np.name, err)
			}
			label := "ignored (paper's simulator)"
			if enforce {
				label = "enforced + PFS relocation"
				strict = append(strict, res.Makespan)
			} else {
				lax = append(lax, res.Makespan)
			}
			t.Rows = append(t.Rows, []string{label, np.name, fsec(res.Makespan)})
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"enforcement costs %.0f%% on average — the \"difficult data management challenges\"",
		100*(stats.Mean(strict)/stats.Mean(lax)-1)),
		"the paper's conclusion attributes to sharing files across BB namespaces.")
	return []*Table{t}, nil
}
