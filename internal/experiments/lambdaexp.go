package experiments

import (
	"fmt"

	"bbwfsim/internal/calib"
	"bbwfsim/internal/core"
	"bbwfsim/internal/runner"
	"bbwfsim/internal/stats"
	"bbwfsim/internal/testbed"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
)

// lambdaFromTrace adapts a trace into calib.LambdaFromRecords input,
// skipping staging tasks (whose time is all I/O by construction).
func lambdaFromTrace(tr *trace.Trace) map[string]float64 {
	var phases []calib.TaskPhases
	for _, r := range tr.Records() {
		if r.Name == "stage_in" {
			continue
		}
		phases = append(phases, calib.TaskPhases{
			Name:     r.Name,
			ExecTime: r.ExecTime(),
			IOTime:   r.IOTime(),
		})
	}
	return calib.LambdaFromRecords(phases)
}

// RunAblationLambda repeats the Fig. 10 accuracy evaluation with one
// change: instead of reusing the paper's PFS-characterized λ_io values
// (0.203/0.260) for every storage mode, λ is measured on the target mode
// from the anchor run's trace.
//
// The outcome cuts both ways, and explains a non-obvious property of the
// paper's method. On the well-behaved modes (private, on-node) the
// measured λ improves accuracy. On the striped mode it is catastrophic:
// striped task time is ~97% I/O, so an accurate λ strips almost all of it
// from the calibrated compute — and the simulator's Table-I I/O model,
// which knows nothing about the striped small-file collapse, predicts
// almost none of it back. The paper's "wrong" fixed λ is what keeps the
// striped simulation usable: it launders the unmodeled I/O pathology into
// calibrated compute time. Accurate λ calibration only pays off once the
// simulator's I/O model captures the mode's behavior.
func RunAblationLambda(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	profiles := orderedProfiles(1)
	testWF := testbedSwarp(1, 32)
	qs := fractions(o)

	// Stage 1, one point per profile: the anchor testbed run, the λ
	// measured from its trace, and the calibrated works for both λ sources.
	type calibration struct {
		lambda               map[string]float64
		paperRW, paperCW     units.Flops
		measureRW, measureCW units.Flops
	}
	calibrate := func(prof testbed.Profile, anchor *testbed.Result, lambdaRes, lambdaCom float64) (units.Flops, units.Flops, error) {
		obs := []calib.Observation{
			{TaskName: "resample", Cores: 32, Time: anchor.TaskMean("resample"), LambdaIO: lambdaRes},
			{TaskName: "combine", Cores: 32, Time: anchor.TaskMean("combine"), LambdaIO: lambdaCom},
		}
		cal, err := core.CalibrateWorks(obs, prof.Platform.CoreSpeed)
		if err != nil {
			return 0, 0, err
		}
		rw, _ := cal.Work("resample")
		cw, _ := cal.Work("combine")
		return rw, cw, nil
	}
	calibrations, err := runPoints(o, profiles, func(prof testbed.Profile) (calibration, error) {
		anchor, err := testbed.NewRunner(prof, o.Seed).Run(testWF,
			testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true}, o.Reps)
		if err != nil {
			return calibration{}, err
		}
		c := calibration{lambda: lambdaFromTrace(anchor.LastTrace)}
		if c.paperRW, c.paperCW, err = calibrate(prof, anchor, calib.LambdaIOResample, calib.LambdaIOCombine); err != nil {
			return calibration{}, err
		}
		if c.measureRW, c.measureCW, err = calibrate(prof, anchor, c.lambda["resample"], c.lambda["combine"]); err != nil {
			return calibration{}, err
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}

	// Stage 2, one point per (profile, fraction): the real testbed run and
	// the two simulator predictions.
	type lambdaPoint struct{ real, paper, measured float64 }
	points, err := runner.Map(o.Jobs, len(profiles)*len(qs), func(i int) (lambdaPoint, error) {
		pi, qi := i/len(qs), i%len(qs)
		prof, q, c := profiles[pi], qs[qi], calibrations[pi]
		res, err := testbed.NewRunner(prof, o.Seed).Run(testWF,
			testbed.Scenario{StagedFraction: q, IntermediatesToBB: true}, o.Reps)
		if err != nil {
			return lambdaPoint{}, err
		}
		simRun := func(rw, cw units.Flops) (float64, error) {
			r, err := core.MustNewSimulator(simPreset(prof.Name, 1)).Run(swarpWithWorks(1, 32, rw, cw),
				core.RunOptions{StagedFraction: q, IntermediatesToBB: true})
			if err != nil {
				return 0, err
			}
			return r.Makespan, nil
		}
		p := lambdaPoint{real: res.MeanMakespan()}
		if p.paper, err = simRun(c.paperRW, c.paperCW); err != nil {
			return lambdaPoint{}, err
		}
		if p.measured, err = simRun(c.measureRW, c.measureCW); err != nil {
			return lambdaPoint{}, err
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}

	var tables []*Table
	for pi, prof := range profiles {
		measuredLambda := calibrations[pi].lambda
		t := &Table{
			ID: "ablation-lambda-" + prof.Name,
			Title: fmt.Sprintf("λ_io source on %s: paper's PFS values vs. measured on the target mode",
				prof.Name),
			Header: []string{"% in BB", "real [s]", "paper-λ sim [s]", "err", "measured-λ sim [s]", "err"},
		}
		var realSeries, paperSeries, measuredSeries []float64
		for qi, q := range qs {
			p := points[pi*len(qs)+qi]
			realSeries = append(realSeries, p.real)
			paperSeries = append(paperSeries, p.paper)
			measuredSeries = append(measuredSeries, p.measured)
			t.Rows = append(t.Rows, []string{
				ffrac(q), fsec(p.real),
				fsec(p.paper), fpct(stats.RelErr(p.paper, p.real)),
				fsec(p.measured), fpct(stats.RelErr(p.measured, p.real)),
			})
		}
		avgPaper, err := stats.MeanRelErr(paperSeries, realSeries)
		if err != nil {
			return nil, err
		}
		avgMeasured, err := stats.MeanRelErr(measuredSeries, realSeries)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"average error: paper-λ %s vs measured-λ %s (measured λ: resample %.3f, combine %.3f)",
			fpct(avgPaper), fpct(avgMeasured),
			measuredLambda["resample"], measuredLambda["combine"]))
		if prof.Name == "cori-striped" {
			t.Notes = append(t.Notes,
				"measured λ is *worse* here: stripping the true 97% I/O share from compute",
				"exposes that the Table-I model cannot predict the striped collapse — the",
				"paper's fixed λ quietly absorbs that unmodeled pathology into compute.")
		}
		tables = append(tables, t)
	}
	return tables, nil
}
