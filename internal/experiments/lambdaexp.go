package experiments

import (
	"fmt"

	"bbwfsim/internal/calib"
	"bbwfsim/internal/core"
	"bbwfsim/internal/stats"
	"bbwfsim/internal/testbed"
	"bbwfsim/internal/trace"
)

// lambdaFromTrace adapts a trace into calib.LambdaFromRecords input,
// skipping staging tasks (whose time is all I/O by construction).
func lambdaFromTrace(tr *trace.Trace) map[string]float64 {
	var phases []calib.TaskPhases
	for _, r := range tr.Records() {
		if r.Name == "stage_in" {
			continue
		}
		phases = append(phases, calib.TaskPhases{
			Name:     r.Name,
			ExecTime: r.ExecTime(),
			IOTime:   r.IOTime(),
		})
	}
	return calib.LambdaFromRecords(phases)
}

// RunAblationLambda repeats the Fig. 10 accuracy evaluation with one
// change: instead of reusing the paper's PFS-characterized λ_io values
// (0.203/0.260) for every storage mode, λ is measured on the target mode
// from the anchor run's trace.
//
// The outcome cuts both ways, and explains a non-obvious property of the
// paper's method. On the well-behaved modes (private, on-node) the
// measured λ improves accuracy. On the striped mode it is catastrophic:
// striped task time is ~97% I/O, so an accurate λ strips almost all of it
// from the calibrated compute — and the simulator's Table-I I/O model,
// which knows nothing about the striped small-file collapse, predicts
// almost none of it back. The paper's "wrong" fixed λ is what keeps the
// striped simulation usable: it launders the unmodeled I/O pathology into
// calibrated compute time. Accurate λ calibration only pays off once the
// simulator's I/O model captures the mode's behavior.
func RunAblationLambda(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, prof := range orderedProfiles(1) {
		runner := testbed.NewRunner(prof, o.Seed)
		testWF := testbedSwarp(1, 32)
		anchorScenario := testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true}
		anchor, err := runner.Run(testWF, anchorScenario, o.Reps)
		if err != nil {
			return nil, err
		}
		measuredLambda := lambdaFromTrace(anchor.LastTrace)

		calibrate := func(lambdaRes, lambdaCom float64) (*core.Simulator, []float64, error) {
			obs := []calib.Observation{
				{TaskName: "resample", Cores: 32, Time: anchor.TaskMean("resample"), LambdaIO: lambdaRes},
				{TaskName: "combine", Cores: 32, Time: anchor.TaskMean("combine"), LambdaIO: lambdaCom},
			}
			cal, err := core.CalibrateWorks(obs, prof.Platform.CoreSpeed)
			if err != nil {
				return nil, nil, err
			}
			rw, _ := cal.Work("resample")
			cw, _ := cal.Work("combine")
			sim := core.MustNewSimulator(simPreset(prof.Name, 1))
			var series []float64
			for _, q := range fractions(o) {
				res, err := sim.Run(swarpWithWorks(1, 32, rw, cw),
					core.RunOptions{StagedFraction: q, IntermediatesToBB: true})
				if err != nil {
					return nil, nil, err
				}
				series = append(series, res.Makespan)
			}
			return sim, series, nil
		}

		_, paperSeries, err := calibrate(calib.LambdaIOResample, calib.LambdaIOCombine)
		if err != nil {
			return nil, err
		}
		_, measuredSeries, err := calibrate(measuredLambda["resample"], measuredLambda["combine"])
		if err != nil {
			return nil, err
		}

		var realSeries []float64
		t := &Table{
			ID: "ablation-lambda-" + prof.Name,
			Title: fmt.Sprintf("λ_io source on %s: paper's PFS values vs. measured on the target mode",
				prof.Name),
			Header: []string{"% in BB", "real [s]", "paper-λ sim [s]", "err", "measured-λ sim [s]", "err"},
		}
		for i, q := range fractions(o) {
			res, err := runner.Run(testWF, testbed.Scenario{StagedFraction: q, IntermediatesToBB: true}, o.Reps)
			if err != nil {
				return nil, err
			}
			realMean := res.MeanMakespan()
			realSeries = append(realSeries, realMean)
			t.Rows = append(t.Rows, []string{
				ffrac(q), fsec(realMean),
				fsec(paperSeries[i]), fpct(stats.RelErr(paperSeries[i], realMean)),
				fsec(measuredSeries[i]), fpct(stats.RelErr(measuredSeries[i], realMean)),
			})
		}
		avgPaper, err := stats.MeanRelErr(paperSeries, realSeries)
		if err != nil {
			return nil, err
		}
		avgMeasured, err := stats.MeanRelErr(measuredSeries, realSeries)
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"average error: paper-λ %s vs measured-λ %s (measured λ: resample %.3f, combine %.3f)",
			fpct(avgPaper), fpct(avgMeasured),
			measuredLambda["resample"], measuredLambda["combine"]))
		if prof.Name == "cori-striped" {
			t.Notes = append(t.Notes,
				"measured λ is *worse* here: stripping the true 97% I/O share from compute",
				"exposes that the Table-I model cannot predict the striped collapse — the",
				"paper's fixed λ quietly absorbs that unmodeled pathology into compute.")
		}
		tables = append(tables, t)
	}
	return tables, nil
}
