package experiments

import (
	"fmt"

	"bbwfsim/internal/core"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/runner"
	"bbwfsim/internal/stats"
	"bbwfsim/internal/testbed"
	"bbwfsim/internal/workflow"
)

// caseStudyNodes is the platform size for the 1000Genomes case study: 8
// compute nodes give enough cores to expose the fan-out while keeping the
// schedule non-trivial.
const caseStudyNodes = 8

func genomesFractions(o Options) []float64 {
	if o.Quick {
		return []float64{0, 0.5, 1}
	}
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
}

func caseStudyWorkflow(o Options) *workflow.Workflow {
	chrom := genomes.DefaultChromosomes
	if o.Quick {
		chrom = 4
	}
	return genomes.MustNew(genomes.Params{Chromosomes: chrom})
}

// runFig13Series simulates the 1000Genomes sweep on both platforms and
// returns (fractions, cori makespans, summit makespans). The platform ×
// fraction grid fans across Options.Jobs workers; every point builds a
// private simulator over the shared read-only workflow. Makespans and
// observability snapshots are accumulated by runner.MapReduce's
// index-ordered fold, so the emitted aggregate snapshot is bit-identical
// at any Jobs value.
func runFig13Series(o Options) ([]float64, []float64, []float64, error) {
	wf := caseStudyWorkflow(o)
	fracs := genomesFractions(o)
	platforms := []string{"cori-private", "summit"}
	type point struct {
		ms   float64
		snap *metrics.Snapshot
	}
	type series struct {
		ms    []float64
		snaps []*metrics.Snapshot
	}
	acc, err := runner.MapReduce(o.Jobs, len(platforms)*len(fracs), func(i int) (point, error) {
		name, q := platforms[i/len(fracs)], fracs[i%len(fracs)]
		sim := core.MustNewSimulator(simPreset(name, caseStudyNodes))
		res, err := sim.Run(wf, core.RunOptions{PrePlaceInputs: true, StagedFraction: q})
		if err != nil {
			return point{}, fmt.Errorf("fig13 sweep on %s at fraction %g: %w", name, q, err)
		}
		return point{ms: res.Makespan, snap: res.Metrics}, nil
	}, series{}, func(s series, p point) series {
		s.ms = append(s.ms, p.ms)
		s.snaps = append(s.snaps, p.snap)
		return s
	})
	if err != nil {
		return nil, nil, nil, err
	}
	emitMetrics(o, acc.snaps)
	return fracs, acc.ms[:len(fracs)], acc.ms[len(fracs):], nil
}

// RunFig13 reproduces Figure 13: simulated makespan of the 903-task
// 1000Genomes workflow on Cori and Summit as the fraction of input files
// allocated in the BB varies.
func RunFig13(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	fracs, coriMs, summitMs, err := runFig13Series(o)
	if err != nil {
		return nil, err
	}
	wf := caseStudyWorkflow(o)
	st, err := wf.ComputeStats()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig13",
		Title:  "1000Genomes simulated makespan [s] vs. % input files in BB",
		Header: []string{"% in BB", "cori [s]", "summit [s]"},
		Notes: []string{
			fmt.Sprintf("instance: %d tasks, %.1f GB footprint, %.1f GB input (%.0f%%)",
				st.Tasks, float64(st.TotalBytes)/1e9, float64(st.InputBytes)/1e9,
				100*float64(st.InputBytes)/float64(st.TotalBytes)),
			"expected shape: near-linear gain; cori plateaus past ≈80% staged (bandwidth",
			"saturation), summit plateaus only near 100%; summit faster throughout.",
		},
	}
	for i, q := range fracs {
		t.Rows = append(t.Rows, []string{ffrac(q), fsec(coriMs[i]), fsec(summitMs[i])})
	}
	return []*Table{t}, nil
}

// RunFig14 reproduces Figure 14: the same sweep expressed as speedup over
// the 0%-staged configuration, with reference points from the "prior
// study" — regenerated here as testbed runs of the smaller 2-chromosome
// configuration the paper's earlier work used, with all the caveats the
// paper lists (different task-dependency structure, different machine
// state).
func RunFig14(opts Options) ([]*Table, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	fracs, coriMs, summitMs, err := runFig13Series(o)
	if err != nil {
		return nil, err
	}
	coriSpeedup := stats.Speedup(coriMs[0], coriMs)
	summitSpeedup := stats.Speedup(summitMs[0], summitMs)

	// Prior-study reference: 2-chromosome instance on the cori-private
	// testbed at a few fractions only (the prior work measured a handful).
	refWF := genomes.MustNew(genomes.Params{Chromosomes: 2})
	refFracs := []float64{0, 0.5, 1}
	refMs, err := runPoints(o, refFracs, func(q float64) (float64, error) {
		res, err := testbed.NewRunner(testbed.CoriPrivate(caseStudyNodes), o.Seed).Run(refWF,
			testbed.Scenario{StagedFraction: q, PrePlaceInputs: true}, o.Reps)
		if err != nil {
			return 0, err
		}
		return res.MeanMakespan(), nil
	})
	if err != nil {
		return nil, err
	}
	refSpeedup := stats.Speedup(refMs[0], refMs)

	t := &Table{
		ID:     "fig14",
		Title:  "1000Genomes speedup vs. % input files in BB (baseline: 0% staged)",
		Header: []string{"% in BB", "cori speedup", "summit speedup", "prior-study ref (2 chrom)"},
	}
	refAt := func(q float64) string {
		for i, rq := range refFracs {
			if rq == q { //bbvet:allow float-compare -- both fractions come verbatim from the same literal sweep table; exact match is the lookup key
				return fmt.Sprintf("%.2f", refSpeedup[i])
			}
		}
		return ""
	}
	var simAtRef, refVals []float64
	for i, q := range fracs {
		row := []string{ffrac(q), fmt.Sprintf("%.2f", coriSpeedup[i]), fmt.Sprintf("%.2f", summitSpeedup[i]), refAt(q)}
		t.Rows = append(t.Rows, row)
		for j, rq := range refFracs {
			if rq == q { //bbvet:allow float-compare -- both fractions come verbatim from the same literal sweep table; exact match is the lookup key
				simAtRef = append(simAtRef, coriSpeedup[i])
				refVals = append(refVals, refSpeedup[j])
			}
		}
	}
	if len(refVals) > 1 {
		// Exclude the trivially matching 0% point from the error metric.
		avg, err := stats.MeanRelErr(simAtRef[1:], refVals[1:])
		if err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"simulated (22-chrom) vs. prior-study reference (2-chrom) speedup error: %s (paper: ≈29%%,", fpct(avg)),
			"expected to be large: different workflow configuration, machine state, and era).")
	}
	return []*Table{t}, nil
}
