package experiments

import (
	"bytes"
	"encoding/csv"
	"testing"
)

func TestTableCSV(t *testing.T) {
	tb := &Table{
		ID:     "x",
		Header: []string{"a", "b"},
		Rows: [][]string{
			{"1", "two, with comma"},
			{"3", `quote "inside"`},
		},
	}
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != 3 {
		t.Fatalf("got %d records, want 3", len(records))
	}
	if records[1][1] != "two, with comma" {
		t.Errorf("comma cell mangled: %q", records[1][1])
	}
	if records[2][1] != `quote "inside"` {
		t.Errorf("quote cell mangled: %q", records[2][1])
	}
}
