package integration

import (
	"bytes"
	"encoding/json"
	"testing"

	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/experiments"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/trace"
)

// resilienceRun executes the 1000Genomes case study on a private-mode Cori
// under a composite fault campaign — task crashes, node failures with
// repair, BB allocation rejections, and BB + PFS degradation windows all at
// once — and returns the run's full serialized trace.
func resilienceRun(t *testing.T) (*core.Result, []byte) {
	t.Helper()
	inj, err := faults.New(faults.Config{
		Seed:        41,
		TaskCrash:   &faults.CrashProcess{Arrival: faults.Exp(80), Budget: 8},
		NodeFailure: &faults.NodeProcess{Arrival: faults.Exp(200), MTTR: 40, Budget: 2},
		BBReject:    &faults.RejectPolicy{Prob: 0.1},
		BBDegrade:   &faults.DegradeProcess{Arrival: faults.Exp(100), Duration: 20, Factor: 0.3},
		PFSDegrade:  &faults.DegradeProcess{Arrival: faults.Exp(150), Duration: 15, Factor: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	wf := genomes.MustNew(genomes.Params{Chromosomes: 4})
	sim := core.MustNewSimulator(platform.Cori(4, platform.BBPrivate))
	res, err := sim.Run(wf, core.RunOptions{
		PrePlaceInputs:    true,
		StagedFraction:    1,
		IntermediatesToBB: true,
		Faults:            inj,
		Retry: exec.RetryPolicy{
			MaxRetries: 100, Backoff: exec.BackoffExponential,
			BaseDelay: 2, MaxDelay: 60, Jitter: 0.25, Seed: 13,
		},
		BBFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return res, raw
}

// TestResilienceReplayBitIdentical is the acceptance-criterion witness: a
// seeded fault-injected run combining task crashes, node failures, and BB
// degradation must replay bit-identically — same failures at the same
// virtual instants, same recovery decisions, same trace bytes.
func TestResilienceReplayBitIdentical(t *testing.T) {
	first, rawFirst := resilienceRun(t)
	if first.Faults.TaskFailures == 0 {
		t.Error("campaign injected no task failures; tighten the arrival rates")
	}
	if first.Faults.NodeFailures == 0 {
		t.Error("campaign injected no node failures")
	}
	if first.Faults.DegradeWindows == 0 {
		t.Error("campaign opened no degradation windows")
	}
	if repairs := first.Trace.CountKind(trace.NodeRepair); repairs != first.Faults.NodeFailures {
		t.Errorf("%d node failures but %d repairs", first.Faults.NodeFailures, repairs)
	}
	_, rawSecond := resilienceRun(t)
	if !bytes.Equal(rawFirst, rawSecond) {
		t.Fatalf("fault-injected traces differ between identical runs (%d vs %d bytes)",
			len(rawFirst), len(rawSecond))
	}
}

// TestResilienceExperimentDeterministic runs the full resilience experiment
// sweep twice and requires byte-identical rendered output, mirroring
// TestFig10Deterministic for the fault-injected family.
func TestResilienceExperimentDeterministic(t *testing.T) {
	render := func() string {
		tables, err := experiments.RunResilience(experiments.Options{Quick: true, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tb := range tables {
			if err := tb.CSV(&buf); err != nil {
				t.Fatal(err)
			}
			if err := tb.Fprint(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("resilience output differs between identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestZeroFailureRateMatchesFaultFree asserts the zero-cost-when-disabled
// property at the trace level: a run with a fault model attached but every
// process disabled (the empty faults.Config) must produce the exact trace
// of a plain run with no fault model at all.
func TestZeroFailureRateMatchesFaultFree(t *testing.T) {
	run := func(withInjector bool) []byte {
		wf := genomes.MustNew(genomes.Params{Chromosomes: 4})
		sim := core.MustNewSimulator(platform.Cori(4, platform.BBPrivate))
		opts := core.RunOptions{PrePlaceInputs: true, StagedFraction: 1, IntermediatesToBB: true}
		if withInjector {
			inj, err := faults.New(faults.Config{Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			opts.Faults = inj
			opts.Retry = exec.RetryPolicy{MaxRetries: 3, BaseDelay: 1}
			opts.BBFallback = true
		}
		res, err := sim.Run(wf, opts)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	plain, disabled := run(false), run(true)
	if !bytes.Equal(plain, disabled) {
		t.Fatalf("disabled fault model perturbed the trace (%d vs %d bytes)", len(plain), len(disabled))
	}
}
