package integration

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"testing"

	"bbwfsim/internal/adapt"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/runner"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/trace"
)

// modeCase is one simulation configuration the trace-mode equivalence suite
// replays under every trace mode: a calibration-style fault-free run, a
// fault-campaign run, and an adaptation run, covering every Result field a
// mode could plausibly perturb.
type modeCase struct {
	name string
	run  func(mode trace.Mode, sink trace.Sink) (*core.Result, error)
}

func modeCases() []modeCase {
	return []modeCase{
		{"fig10-like", func(mode trace.Mode, sink trace.Sink) (*core.Result, error) {
			wf := genomes.MustNew(genomes.Params{Chromosomes: 3})
			sim := core.MustNewSimulator(platform.Cori(4, platform.BBPrivate))
			return sim.Run(wf, core.RunOptions{
				PrePlaceInputs: true, StagedFraction: 1, IntermediatesToBB: true,
				TraceMode: mode, TraceSink: sink,
			})
		}},
		{"resilience-like", func(mode trace.Mode, sink trace.Sink) (*core.Result, error) {
			inj, err := faults.New(faults.Config{
				Seed:        41,
				TaskCrash:   &faults.CrashProcess{Arrival: faults.Exp(80), Budget: 8},
				NodeFailure: &faults.NodeProcess{Arrival: faults.Exp(200), MTTR: 40, Budget: 2},
				BBReject:    &faults.RejectPolicy{Prob: 0.1},
				BBDegrade:   &faults.DegradeProcess{Arrival: faults.Exp(100), Duration: 20, Factor: 0.3},
			})
			if err != nil {
				return nil, err
			}
			wf := genomes.MustNew(genomes.Params{Chromosomes: 4})
			sim := core.MustNewSimulator(platform.Cori(4, platform.BBPrivate))
			return sim.Run(wf, core.RunOptions{
				PrePlaceInputs: true, StagedFraction: 1, IntermediatesToBB: true,
				Faults: inj,
				Retry: exec.RetryPolicy{
					MaxRetries: 100, Backoff: exec.BackoffExponential,
					BaseDelay: 2, MaxDelay: 60, Jitter: 0.25, Seed: 13,
				},
				BBFallback: true,
				TraceMode:  mode, TraceSink: sink,
			})
		}},
		{"adaptive-like", func(mode trace.Mode, sink trace.Sink) (*core.Result, error) {
			inj, err := faults.New(faults.Config{
				Seed:      7,
				BBDegrade: &faults.DegradeProcess{Arrival: faults.Exp(60), Duration: 25, Factor: 0.3},
			})
			if err != nil {
				return nil, err
			}
			wf := swarp.MustNew(swarp.Params{Pipelines: 4, CoresPerTask: 8})
			sim := core.MustNewSimulator(platform.Cori(1, platform.BBPrivate))
			return sim.Run(wf, core.RunOptions{
				StagedFraction: 1, IntermediatesToBB: true, BBFallback: true,
				Faults: inj,
				Adapt: adapt.Policy{
					SpillHighWater: 0.5, ReplicateOnFault: true, DegradedFallback: true,
				},
				TraceMode: mode, TraceSink: sink,
			})
		}},
	}
}

// fingerprint reduces a Result to the fields every trace mode must agree
// on, with the makespan kept at full bit precision. Summaries are excluded:
// under fault-driven re-execution the scale modes deliberately count a task
// once per execution (Release folds each completed attempt) while the
// retained mode summarizes only each task's final record — the fault-free
// case asserts summary equality separately.
func fingerprint(t *testing.T, res *core.Result) string {
	t.Helper()
	metricsJSON, err := res.Metrics.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("makespan=%016x events=%d peak=%d faults=%+v bb=%+v pfs=%+v metrics=%s",
		math.Float64bits(res.Makespan), res.Events, res.PeakPending,
		res.Faults, res.BB, res.PFS, metricsJSON)
}

// TestTraceModesEquivalent is the scale-mode safety argument: for a
// calibration run, a fault campaign, and an adaptation run, the streaming
// and counting traces must yield bit-identical Results (makespan, event and
// fault counters, summaries, metrics) to the retained mode — the trace is
// pure observation, never part of the simulation's causality. The whole
// matrix also runs under the parallel runner at -j1 and -j8 to pin that
// worker scheduling cannot leak into any mode either.
func TestTraceModesEquivalent(t *testing.T) {
	cases := modeCases()
	modes := []trace.Mode{trace.Retained, trace.Streaming, trace.Counting}
	type cell struct{ fp string }
	runMatrix := func(jobs int) []cell {
		out, err := runner.Map(jobs, len(cases)*len(modes), func(i int) (cell, error) {
			c, mode := cases[i/len(modes)], modes[i%len(modes)]
			var sink trace.Sink
			if mode == trace.Streaming {
				sink = trace.NewJSONLSink(io.Discard)
			}
			res, err := c.run(mode, sink)
			if err != nil {
				return cell{}, fmt.Errorf("%s mode %d: %w", c.name, mode, err)
			}
			if sink != nil {
				if err := sink.Close(); err != nil {
					return cell{}, err
				}
			}
			if mode == trace.Retained && len(res.Trace.Events()) == 0 {
				return cell{}, fmt.Errorf("%s: retained trace has no events", c.name)
			}
			if mode != trace.Retained && len(res.Trace.Events()) != 0 {
				return cell{}, fmt.Errorf("%s mode %d: non-retained trace retained events", c.name, mode)
			}
			return cell{fp: fingerprint(t, res)}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	seq := runMatrix(1)
	for ci, c := range cases {
		base := seq[ci*len(modes)].fp
		for mi := 1; mi < len(modes); mi++ {
			if got := seq[ci*len(modes)+mi].fp; got != base {
				t.Errorf("%s: mode %d result diverges from retained:\n  retained: %s\n  mode:     %s",
					c.name, modes[mi], base, got)
			}
		}
	}
	par := runMatrix(8)
	for i := range seq {
		if seq[i].fp != par[i].fp {
			t.Errorf("cell %d: -j8 result diverges from -j1", i)
		}
	}
}

// TestFaultFreeSummariesEqualAcrossModes: without re-execution, the folded
// per-name summaries of the scale modes must be exactly the retained
// Summarize output — same names, counts, means, and byte totals.
func TestFaultFreeSummariesEqualAcrossModes(t *testing.T) {
	c := modeCases()[0] // fig10-like, fault-free
	var want []byte
	for _, mode := range []trace.Mode{trace.Retained, trace.Streaming, trace.Counting} {
		var sink trace.Sink
		if mode == trace.Streaming {
			sink = trace.NewJSONLSink(io.Discard)
		}
		res, err := c.run(mode, sink)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(res.Summaries)
		if err != nil {
			t.Fatal(err)
		}
		if mode == trace.Retained {
			want = got
		} else if string(got) != string(want) {
			t.Errorf("mode %d summaries differ:\n  retained: %s\n  mode:     %s", mode, want, got)
		}
	}
}

// TestRetainedTraceBytesStableAcrossJobs: the retained trace — the goldens'
// format — serializes to byte-identical JSON no matter how many runner
// workers are active around it.
func TestRetainedTraceBytesStableAcrossJobs(t *testing.T) {
	cases := modeCases()
	collect := func(jobs int) [][]byte {
		out, err := runner.Map(jobs, len(cases), func(i int) ([]byte, error) {
			res, err := cases[i].run(trace.Retained, nil)
			if err != nil {
				return nil, err
			}
			return json.Marshal(res.Trace)
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := collect(1), collect(8)
	for i, c := range cases {
		if string(seq[i]) != string(par[i]) {
			t.Errorf("%s: retained trace bytes differ between -j1 and -j8", c.name)
		}
	}
}
