// Package integration exercises the full stack end to end: file formats →
// generators → calibration → simulation → traces, in combinations the
// per-package unit tests do not cover.
package integration

import (
	"math"
	"testing"

	"bbwfsim/internal/calib"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/testbed"
	"bbwfsim/internal/units"
	"bbwfsim/internal/wfcommons"
	"bbwfsim/internal/workflow"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

// TestFileFormatPipeline drives the full artifact path: generate a
// workflow, export it through both serialization formats and the platform
// through JSON and XML, reload everything from disk, and verify the
// simulated makespan is bit-identical to simulating the in-memory
// originals.
func TestFileFormatPipeline(t *testing.T) {
	dir := t.TempDir()
	wf := swarp.MustNew(swarp.Params{Pipelines: 2})
	cfg := platform.Cori(1, platform.BBPrivate)

	run := func(w *workflow.Workflow, c platform.Config) float64 {
		sim := core.MustNewSimulator(c)
		res, err := sim.Run(w, core.RunOptions{StagedFraction: 0.5, IntermediatesToBB: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	want := run(wf, cfg)

	// Native workflow JSON + platform JSON.
	if err := workflow.Save(dir+"/wf.json", wf); err != nil {
		t.Fatal(err)
	}
	if err := platform.SaveConfig(dir+"/plat.json", cfg); err != nil {
		t.Fatal(err)
	}
	wf2, err := workflow.Load(dir + "/wf.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := platform.LoadConfig(dir + "/plat.json")
	if err != nil {
		t.Fatal(err)
	}
	if got := run(wf2, cfg2); got != want {
		t.Errorf("JSON round trip changed makespan: %v vs %v", got, want)
	}

	// Platform XML.
	if err := platform.SaveXML(dir+"/plat.xml", cfg); err != nil {
		t.Fatal(err)
	}
	cfg3, err := platform.LoadXML(dir + "/plat.xml")
	if err != nil {
		t.Fatal(err)
	}
	if got := run(wf2, cfg3); got != want {
		t.Errorf("XML round trip changed makespan: %v vs %v", got, want)
	}

	// WfCommons trace format (runtime-based, so work round-trips through
	// Eq. 4 — identical because λ and speed match).
	tr, err := wfcommons.FromWorkflow(wf, cfg.CoreSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Save(dir + "/trace.json"); err != nil {
		t.Fatal(err)
	}
	tr2, err := wfcommons.Load(dir + "/trace.json")
	if err != nil {
		t.Fatal(err)
	}
	wf3, err := tr2.ToWorkflow(wfcommons.Options{
		RefSpeed: cfg.CoreSpeed,
		LambdaIO: map[string]float64{
			"resample": calib.LambdaIOResample,
			"combine":  calib.LambdaIOCombine,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := run(wf3, cfg); !approx(got, want, 1e-9) {
		t.Errorf("WfCommons round trip changed makespan: %v vs %v", got, want)
	}
}

// TestCalibrationLoopClosesAtAnchor checks the paper's core procedure end
// to end: observe the testbed, calibrate via Eq. 4, simulate the anchor
// configuration, and confirm the simulator lands near the observation.
func TestCalibrationLoopClosesAtAnchor(t *testing.T) {
	for name, prof := range testbed.Profiles(1) {
		if name == "cori-striped" {
			continue // λ_io grossly mismatches the striped pathology; see EXPERIMENTS.md
		}
		runner := testbed.NewRunner(prof, 99)
		anchorWF := swarp.MustNew(swarp.Params{
			Pipelines: 1, CoresPerTask: 32,
			ResampleWork: testbed.TrueResampleWork, CombineWork: testbed.TrueCombineWork,
		})
		sc := testbed.Scenario{StagedFraction: 1, IntermediatesToBB: true}
		obs, err := runner.Run(anchorWF, sc, 10)
		if err != nil {
			t.Fatal(err)
		}
		cal, err := core.CalibrateWorks([]calib.Observation{
			{TaskName: "resample", Cores: 32, Time: obs.TaskMean("resample"), LambdaIO: calib.LambdaIOResample},
			{TaskName: "combine", Cores: 32, Time: obs.TaskMean("combine"), LambdaIO: calib.LambdaIOCombine},
		}, prof.Platform.CoreSpeed)
		if err != nil {
			t.Fatal(err)
		}
		rw, _ := cal.Work("resample")
		cw, _ := cal.Work("combine")
		simWF := swarp.MustNew(swarp.Params{
			Pipelines: 1, CoresPerTask: 32, ResampleWork: rw, CombineWork: cw,
		})
		sim := core.MustNewSimulator(platform.Presets(1)[name])
		res, err := sim.Run(simWF, core.RunOptions{StagedFraction: 1, IntermediatesToBB: true})
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(res.Makespan-obs.MeanMakespan()) / obs.MeanMakespan()
		if rel > 0.25 {
			t.Errorf("%s: anchor-point error %.1f%% too large (sim %.2f vs real %.2f)",
				name, 100*rel, res.Makespan, obs.MeanMakespan())
		}
	}
}

// TestFullFeatureStack runs a workflow with everything enabled at once:
// stage-in, stage-out, BB eviction, private-visibility enforcement,
// non-default scheduling policies, on a capacity-constrained multi-node
// platform.
func TestFullFeatureStack(t *testing.T) {
	wf := workflow.New("kitchen-sink")
	var stageFiles []string
	for i := 0; i < 6; i++ {
		id := "in" + string(rune('a'+i))
		wf.MustAddFile(id, 200*units.MB)
		stageFiles = append(stageFiles, id)
	}
	wf.MustAddTask(workflow.TaskSpec{
		ID: "stage_in", Kind: workflow.KindStageIn, Outputs: stageFiles,
	})
	var results []string
	for i := 0; i < 6; i++ {
		in := "in" + string(rune('a'+i))
		out := "out" + string(rune('a'+i))
		wf.MustAddFile(out, 100*units.MB)
		results = append(results, out)
		wf.MustAddTask(workflow.TaskSpec{
			ID: "work" + string(rune('a'+i)), Work: 20e9, Cores: 4,
			Inputs: []string{in}, Outputs: []string{out},
		})
	}
	wf.MustAddTask(workflow.TaskSpec{
		ID: "stage_out", Kind: workflow.KindStageOut, Inputs: results,
	})

	// One 8-core node: at most two 4-core tasks run at once, so the live
	// BB set peaks at 1.2 GB staged + 2×100 MB in-flight writes = 1.4 GB,
	// while the no-eviction total would be 1.8 GB. The 1.45 GB capacity
	// therefore requires eviction to succeed.
	cfg := platform.Cori(1, platform.BBPrivate)
	cfg.CoresPerNode = 8
	cfg.BB.Capacity = 1450 * units.MB
	sim := core.MustNewSimulator(cfg)
	res, err := sim.Run(wf, core.RunOptions{
		Placement:                placement.AllBB(wf),
		EvictAfterLastRead:       true,
		EnforcePrivateVisibility: true,
		NodePolicy:               exec.NodeLeastLoaded,
		OrderPolicy:              exec.OrderCriticalPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("no progress")
	}
	// Everything ends on the PFS after stage-out.
	for _, r := range results {
		found := false
		for _, rec := range res.Trace.Records() {
			if rec.TaskID == "stage_out" && rec.BytesWritten > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("stage-out moved nothing for %s", r)
		}
	}
	// Determinism with the whole stack on.
	sim2 := core.MustNewSimulator(cfg)
	res2, err := sim2.Run(wf, core.RunOptions{
		Placement:                placement.AllBB(wf),
		EvictAfterLastRead:       true,
		EnforcePrivateVisibility: true,
		NodePolicy:               exec.NodeLeastLoaded,
		OrderPolicy:              exec.OrderCriticalPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res2.Makespan {
		t.Errorf("full stack not deterministic: %v vs %v", res.Makespan, res2.Makespan)
	}
}

// TestTraceConservation cross-checks the trace's byte accounting against
// the storage manager's: everything tasks read and wrote must appear in
// the service statistics.
func TestTraceConservation(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 2})
	sim := core.MustNewSimulator(platform.Cori(2, platform.BBPrivate))
	res, err := sim.Run(wf, core.RunOptions{StagedFraction: 0.5, PrePlaceInputs: true})
	if err != nil {
		t.Fatal(err)
	}
	var taskRead, taskWritten units.Bytes
	for _, rec := range res.Trace.Records() {
		taskRead += rec.BytesRead
		taskWritten += rec.BytesWritten
	}
	svcRead := res.BB.BytesRead + res.PFS.BytesRead
	svcWritten := res.BB.BytesWritten + res.PFS.BytesWritten
	if !approx(float64(taskRead), float64(svcRead), 1e-9) {
		t.Errorf("read accounting mismatch: tasks %v vs services %v", taskRead, svcRead)
	}
	if !approx(float64(taskWritten), float64(svcWritten), 1e-9) {
		t.Errorf("write accounting mismatch: tasks %v vs services %v", taskWritten, svcWritten)
	}
}

// TestGenomesAcrossAllPresets smoke-runs the paper's case-study workflow
// on every preset platform with several option combinations.
func TestGenomesAcrossAllPresets(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 2})
	for name, cfg := range platform.Presets(4) {
		for _, evict := range []bool{false, true} {
			sim := core.MustNewSimulator(cfg)
			res, err := sim.Run(wf, core.RunOptions{
				StagedFraction:     1,
				IntermediatesToBB:  true,
				PrePlaceInputs:     true,
				EvictAfterLastRead: evict,
			})
			if err != nil {
				t.Errorf("%s evict=%v: %v", name, evict, err)
				continue
			}
			if res.Makespan <= 0 {
				t.Errorf("%s evict=%v: empty run", name, evict)
			}
		}
	}
}
