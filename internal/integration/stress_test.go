package integration

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workloads"
)

// stressRun executes one random configuration end to end and returns its
// makespan (0 when the run fails cleanly with an error — e.g. BB
// overflow — which is acceptable; panics are not).
func stressRun(t *testing.T, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	// Random workflow.
	regime := workloads.FewLarge
	if rng.Intn(2) == 0 {
		regime = workloads.ManySmall
	}
	wf, err := workloads.RandomLayered(seed, 2+rng.Intn(3), 2+rng.Intn(5), rng.Float64(), workloads.Params{
		Regime: regime,
		Work:   units.Flops(1e9 + rng.Float64()*5e10),
		Cores:  1 + rng.Intn(8),
	})
	if err != nil {
		t.Fatalf("seed %d: generator: %v", seed, err)
	}

	// Random platform.
	var cfg platform.Config
	switch rng.Intn(3) {
	case 0:
		cfg = platform.Cori(1+rng.Intn(3), platform.BBPrivate)
	case 1:
		cfg = platform.Cori(1+rng.Intn(3), platform.BBStriped)
	default:
		cfg = platform.Summit(1 + rng.Intn(3))
	}
	if rng.Intn(3) == 0 {
		// Sometimes constrain the BB so overflows exercise error paths.
		cfg.BB.Capacity = units.Bytes(1+rng.Intn(4)) * units.GiB
	}

	// Random feature combination.
	opts := core.RunOptions{
		StagedFraction:           rng.Float64(),
		IntermediatesToBB:        rng.Intn(2) == 0,
		PrePlaceInputs:           rng.Intn(2) == 0,
		EvictAfterLastRead:       rng.Intn(2) == 0,
		EnforcePrivateVisibility: rng.Intn(2) == 0,
		NodePolicy:               exec.NodePolicy(rng.Intn(3)),
		OrderPolicy:              exec.OrderPolicy(rng.Intn(3)),
	}
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatalf("seed %d: simulator: %v", seed, err)
	}
	res, err := sim.Run(wf, opts)
	if err != nil {
		return 0 // clean failure (capacity) is fine
	}
	if res.Makespan <= 0 {
		t.Fatalf("seed %d: zero makespan on success", seed)
	}
	// Accounting invariant on every successful run: services carry at
	// least what tasks read (visibility-driven relocations add extra
	// service-side reads on top, so equality only holds without copies —
	// TestTraceConservation checks that case exactly).
	var taskRead units.Bytes
	for _, rec := range res.Trace.Records() {
		taskRead += rec.BytesRead
	}
	svcRead := res.BB.BytesRead + res.PFS.BytesRead
	if svcRead < taskRead {
		t.Fatalf("seed %d: services read %v but tasks consumed %v", seed, svcRead, taskRead)
	}
	return res.Makespan
}

// TestStressRandomConfigurations drives the whole stack through random
// workflows, platforms, and feature combinations: no panics, clean errors
// only, conserved byte accounting, and bit-identical repetition.
func TestStressRandomConfigurations(t *testing.T) {
	f := func(rawSeed uint32) bool {
		seed := int64(rawSeed)
		a := stressRun(t, seed)
		b := stressRun(t, seed)
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
