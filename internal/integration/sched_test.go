package integration

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bbwfsim/internal/experiments"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/runner"
	"bbwfsim/internal/sched"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workloads"
)

// updateGoldens rewrites the committed experiment goldens instead of
// comparing against them.
var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata goldens")

// TestSchedExperimentBitIdenticalAcrossJobs is the multi-tenant face of
// the -j1 == -jN contract: the sched experiment — policy × BB-pressure
// grid plus the built-in fault section (the scarce grid under a seeded
// node-failure campaign) — rendered serially and through the worker pool
// must emit byte-identical CSV.
func TestSchedExperimentBitIdenticalAcrossJobs(t *testing.T) {
	e, ok := experiments.Find("sched")
	if !ok {
		t.Fatal("sched experiment not registered")
	}
	render := func(jobs int) string {
		tables, err := e.Run(experiments.Options{Quick: true, Seed: 1, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		for _, tb := range tables {
			fmt.Fprintf(&buf, "# %s\n", tb.ID)
			if err := tb.CSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	serial := render(1)
	for _, jobs := range campaignJobCounts() {
		if got := render(jobs); got != serial {
			t.Errorf("jobs=%d CSV differs from serial:\n--- serial ---\n%s\n--- jobs=%d ---\n%s",
				jobs, serial, jobs, got)
		}
	}
}

// TestSchedTraceBitIdenticalAcrossJobs pushes past the rendered tables to
// the campaign traces and snapshots: a grid of campaigns — every policy,
// with and without a fault campaign — fanned through the runner must
// serialize, cell for cell, the same trace JSON and metrics JSON as the
// serial loop. Same events, same timestamps, same order, same bytes.
func TestSchedTraceBitIdenticalAcrossJobs(t *testing.T) {
	type cell struct {
		policy string
		faults bool
	}
	var cells []cell
	for _, p := range sched.Policies() {
		cells = append(cells, cell{p, false}, cell{p, true})
	}
	runAll := func(jobs int) [][]byte {
		out, err := runner.Map(jobs, len(cells), func(i int) ([]byte, error) {
			c := cells[i]
			campaign, err := workloads.Campaign(workloads.CampaignSpec{
				Jobs: 150, Seed: 42,
				ArrivalMean: 20, RuntimeMean: 300,
				MaxNodes: 8, BBMean: 2 * units.GiB,
			})
			if err != nil {
				return nil, err
			}
			cfg := sched.Config{
				Cluster: sched.Cluster{
					Nodes:        16,
					BBCapacity:   64 * units.GiB,
					BBBandwidth:  units.Bandwidth(2 * units.GiB),
					PFSBandwidth: units.Bandwidth(512 * units.MiB),
				},
				Policy: c.policy,
				Jobs:   campaign,
			}
			if c.faults {
				cfg.Faults = &sched.FaultPlan{
					Seed: 99,
					Node: &faults.NodeProcess{Arrival: faults.Exp(1500), MTTR: 600, Budget: 5},
				}
			}
			res, err := sched.Run(cfg)
			if err != nil {
				return nil, err
			}
			tr, err := json.Marshal(res.Trace)
			if err != nil {
				return nil, err
			}
			mj, err := res.Metrics.JSON()
			if err != nil {
				return nil, err
			}
			return append(tr, mj...), nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return out
	}
	serial := runAll(1)
	for _, jobs := range campaignJobCounts() {
		got := runAll(jobs)
		for i := range cells {
			if !bytes.Equal(serial[i], got[i]) {
				t.Errorf("jobs=%d: cell %s/faults=%v trace+metrics differ from serial",
					jobs, cells[i].policy, cells[i].faults)
			}
		}
	}
}

// TestExistingExperimentGoldens pins representative single-workflow
// experiments to committed golden bytes, so growing the registry (the
// sched row included) can never silently perturb existing output. The
// goldens regenerate with:
//
//	go test ./internal/integration -run TestExistingExperimentGoldens -update-goldens
func TestExistingExperimentGoldens(t *testing.T) {
	for _, id := range []string{"table1", "fig4"} {
		e, ok := experiments.Find(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		tables, err := e.Run(experiments.Options{Quick: true, Seed: 1, Reps: 2})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		for _, tb := range tables {
			fmt.Fprintf(&buf, "# %s\n", tb.ID)
			if err := tb.CSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		path := filepath.Join("testdata", id+"_quick.golden")
		if *updateGoldens {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: missing golden (regenerate with -update-goldens): %v", id, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s output diverged from its golden:\n--- got ---\n%s\n--- want ---\n%s",
				id, buf.String(), want)
		}
	}
}
