package integration

import (
	"bytes"
	"encoding/json"
	"testing"

	"bbwfsim/internal/core"
	"bbwfsim/internal/experiments"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
)

// TestFig10Deterministic is the dynamic witness for what bbvet
// (internal/analysis) checks statically: the fig10 accuracy experiment —
// testbed runs, calibration, simulation, and table rendering — executed
// twice with the same seed must emit byte-identical CSV. Any wall-clock
// read, unseeded random draw, or map-ordered output along the path shows
// up here as a diff.
func TestFig10Deterministic(t *testing.T) {
	render := func() string {
		tables, err := experiments.RunFig10(experiments.Options{Quick: true, Seed: 7, Reps: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tb := range tables {
			if err := tb.CSV(&buf); err != nil {
				t.Fatal(err)
			}
			if err := tb.Fprint(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("fig10 output differs between identical runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestTraceDeterministic asserts the full event trace — not just the
// rendered tables — serializes bit-identically across repeated simulations
// of the same workflow.
func TestTraceDeterministic(t *testing.T) {
	run := func() []byte {
		wf := swarp.MustNew(swarp.Params{Pipelines: 4, CoresPerTask: 2})
		sim := core.MustNewSimulator(platform.Cori(2, platform.BBStriped))
		res, err := sim.Run(wf, core.RunOptions{StagedFraction: 0.5, IntermediatesToBB: true})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(res.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if res.Events == 0 {
			t.Fatal("kernel reported zero events fired")
		}
		return raw
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("trace JSON differs between identical runs (%d vs %d bytes)", len(first), len(second))
	}
}
