package integration

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"bbwfsim/internal/core"
	"bbwfsim/internal/experiments"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/runner"
)

// campaignJobCounts are the worker counts every parallelism test compares
// against serial: the CLI default (GOMAXPROCS) and a forced 8-worker pool,
// so the concurrent dispatch path is exercised even on a single-core
// machine where GOMAXPROCS collapses to 1.
func campaignJobCounts() []int {
	return []int{runtime.GOMAXPROCS(0), 8}
}

// TestParallelCampaignBitIdentical is the tentpole's contract test: an
// experiment rendered at -j 1 and at -j N must emit byte-identical CSV.
// It covers the accuracy sweep (fig10: two fanned stages with a calibration
// hand-off), the fault-injection sweep (resilience: per-case seed streams),
// and the 1000Genomes case study (fig13: the flow solver's heaviest user).
// Run under -race this doubles as the data-race witness for the shared
// read-only inputs (workflows, profiles, presets).
func TestParallelCampaignBitIdentical(t *testing.T) {
	for _, id := range []string{"fig10", "resilience", "fig13"} {
		e, ok := experiments.Find(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		t.Run(id, func(t *testing.T) {
			render := func(jobs int) string {
				tables, err := e.Run(experiments.Options{Quick: true, Seed: 1, Reps: 2, Jobs: jobs})
				if err != nil {
					t.Fatalf("jobs=%d: %v", jobs, err)
				}
				var buf bytes.Buffer
				for _, tb := range tables {
					fmt.Fprintf(&buf, "# %s\n", tb.ID)
					if err := tb.CSV(&buf); err != nil {
						t.Fatal(err)
					}
				}
				return buf.String()
			}
			serial := render(1)
			for _, jobs := range campaignJobCounts() {
				if got := render(jobs); got != serial {
					t.Errorf("jobs=%d CSV differs from serial:\n--- serial ---\n%s\n--- jobs=%d ---\n%s",
						jobs, serial, jobs, got)
				}
			}
		})
	}
}

// TestParallelTraceBitIdentical pushes past rendered tables to the full
// event trace: a grid of 1000Genomes runs fanned through the runner must
// produce, point for point, the same serialized trace as the serial loop —
// same events, same timestamps, same order.
func TestParallelTraceBitIdentical(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 4})
	cfg, ok := platform.Presets(4)["cori-private"]
	if !ok {
		t.Fatal("platform preset cori-private missing")
	}
	const points = 6
	runAll := func(jobs int) [][]byte {
		traces, err := runner.Map(jobs, points, func(i int) ([]byte, error) {
			sim := core.MustNewSimulator(cfg)
			res, err := sim.Run(wf, core.RunOptions{
				PrePlaceInputs: true,
				StagedFraction: float64(i) / (points - 1),
			})
			if err != nil {
				return nil, err
			}
			return json.Marshal(res.Trace)
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return traces
	}
	serial := runAll(1)
	for _, jobs := range campaignJobCounts() {
		got := runAll(jobs)
		for i := range serial {
			if !bytes.Equal(serial[i], got[i]) {
				t.Errorf("jobs=%d: trace %d differs from serial (%d vs %d bytes)",
					jobs, i, len(got[i]), len(serial[i]))
			}
		}
	}
}
