package trace

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"bbwfsim/internal/units"
)

func buildTrace() *Trace {
	tr := New("wf", "plat")
	a := tr.Task("a")
	a.Name = "resample"
	a.Node = "n0"
	a.Cores = 4
	a.ReadyAt = 0
	a.StartedAt = 1
	a.ReadDoneAt = 3
	a.ComputeDone = 8
	a.FinishedAt = 10
	a.BytesRead = 100 * units.MB
	a.BytesWritten = 50 * units.MB
	b := tr.Task("b")
	b.Name = "resample"
	b.Node = "n0"
	b.ReadyAt = 0
	b.StartedAt = 2
	b.ReadDoneAt = 4
	b.ComputeDone = 6
	b.FinishedAt = 12
	c := tr.Task("c")
	c.Name = "combine"
	c.ReadyAt = 10
	c.StartedAt = 12
	c.ReadDoneAt = 13
	c.ComputeDone = 14
	c.FinishedAt = 15
	tr.Record(0, TaskReady, "a", "")
	tr.Record(15, TaskEnd, "c", "")
	return tr
}

func TestTaskRecordPhases(t *testing.T) {
	tr := buildTrace()
	a := tr.Lookup("a")
	if a.ExecTime() != 9 {
		t.Errorf("ExecTime = %v, want 9", a.ExecTime())
	}
	if a.IOTime() != 4 { // (3-1) + (10-8)
		t.Errorf("IOTime = %v, want 4", a.IOTime())
	}
	if a.ComputeTime() != 5 {
		t.Errorf("ComputeTime = %v, want 5", a.ComputeTime())
	}
	if a.WaitTime() != 1 {
		t.Errorf("WaitTime = %v, want 1", a.WaitTime())
	}
}

func TestMakespanTracksLastEvent(t *testing.T) {
	tr := buildTrace()
	if tr.Makespan() != 15 {
		t.Errorf("Makespan = %v, want 15", tr.Makespan())
	}
	tr.Record(20, TaskEnd, "late", "")
	if tr.Makespan() != 20 {
		t.Errorf("Makespan = %v after late event, want 20", tr.Makespan())
	}
}

func TestTaskIdempotent(t *testing.T) {
	tr := New("w", "p")
	r1 := tr.Task("x")
	r2 := tr.Task("x")
	if r1 != r2 {
		t.Error("Task() created a duplicate record")
	}
	if tr.Lookup("nope") != nil {
		t.Error("Lookup of unknown task returned a record")
	}
	if len(tr.Records()) != 1 {
		t.Errorf("Records = %d, want 1", len(tr.Records()))
	}
}

func TestSummarize(t *testing.T) {
	tr := buildTrace()
	sums := tr.Summarize()
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	// Sorted by name: combine before resample.
	if sums[0].Name != "combine" || sums[1].Name != "resample" {
		t.Fatalf("summary order wrong: %v, %v", sums[0].Name, sums[1].Name)
	}
	res := sums[1]
	if res.Count != 2 {
		t.Errorf("resample count = %d, want 2", res.Count)
	}
	if math.Abs(res.MeanExec-9.5) > 1e-12 { // (9 + 10) / 2
		t.Errorf("resample MeanExec = %v, want 9.5", res.MeanExec)
	}
	if res.MaxExec != 10 {
		t.Errorf("resample MaxExec = %v, want 10", res.MaxExec)
	}
	if res.BytesRead != 100*units.MB {
		t.Errorf("resample BytesRead = %v", res.BytesRead)
	}
}

func TestMeanExecByName(t *testing.T) {
	tr := buildTrace()
	m, err := tr.MeanExecByName("resample")
	if err != nil || math.Abs(m-9.5) > 1e-12 {
		t.Errorf("MeanExecByName = %v (%v)", m, err)
	}
	if _, err := tr.MeanExecByName("ghost"); err == nil {
		t.Error("MeanExecByName on missing name succeeded")
	}
}

func TestGanttRows(t *testing.T) {
	tr := buildTrace()
	rows := tr.Gantt()
	// a: read+compute+write, b: read+compute+write, c: read+compute+write.
	if len(rows) != 9 {
		t.Fatalf("gantt rows = %d, want 9", len(rows))
	}
	last := -1.0
	for _, r := range rows {
		if r.Start < last {
			t.Fatal("gantt rows not sorted by start")
		}
		last = r.Start
		if r.End < r.Start {
			t.Errorf("row %v ends before it starts", r)
		}
	}
	// First row is a's read phase.
	if rows[0].TaskID != "a" || rows[0].Phase != "read" {
		t.Errorf("first row = %+v", rows[0])
	}
}

func TestGanttSkipsEmptyPhases(t *testing.T) {
	tr := New("w", "p")
	r := tr.Task("t")
	r.Name = "t"
	r.StartedAt = 1
	r.ReadDoneAt = 1 // no read phase
	r.ComputeDone = 2
	r.FinishedAt = 2 // no write phase
	rows := tr.Gantt()
	if len(rows) != 1 || rows[0].Phase != "compute" {
		t.Errorf("rows = %+v, want single compute bar", rows)
	}
}

func TestJSONExport(t *testing.T) {
	tr := buildTrace()
	raw, err := tr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Workflow string  `json:"workflow"`
		Platform string  `json:"platform"`
		Makespan float64 `json:"makespan"`
		Tasks    []struct {
			Task string `json:"task"`
		} `json:"tasks"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if decoded.Workflow != "wf" || decoded.Platform != "plat" || decoded.Makespan != 15 {
		t.Errorf("header wrong: %+v", decoded)
	}
	if len(decoded.Tasks) != 3 || len(decoded.Events) != 2 {
		t.Errorf("tasks/events = %d/%d, want 3/2", len(decoded.Tasks), len(decoded.Events))
	}
}

func TestSave(t *testing.T) {
	tr := buildTrace()
	path := t.TempDir() + "/trace.json"
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("saved trace is not valid JSON: %v", err)
	}
	if m["makespan"].(float64) != 15 {
		t.Error("saved makespan wrong")
	}
}
