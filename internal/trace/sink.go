package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// Sink consumes events as they are recorded. Emit must not fail the hot
// path: implementations latch their first error internally and report it
// from Close, which also flushes any buffering. Sinks are driven from
// inside the simulation event loop, so they must not spawn goroutines or
// consult wall-clock state (the bbvet kernel-purity and determinism-taint
// rules cover this package).
type Sink interface {
	Emit(Event)
	Close() error
}

// JSONLSink writes one JSON object per event per line. Lines use the same
// field schema as the retained trace's "events" array.
type JSONLSink struct {
	w   *bufio.Writer
	err error
}

// NewJSONLSink returns a sink buffering onto w. The caller remains
// responsible for closing w itself, if it needs closing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(raw); err != nil {
		s.err = err
		return
	}
	s.err = s.w.WriteByte('\n')
}

// Close flushes the buffer and returns the first error Emit encountered.
func (s *JSONLSink) Close() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// CSVSink writes events as "time,kind,task,detail" rows under a header.
type CSVSink struct {
	w       *csv.Writer
	wrote   bool
	err     error
	scratch [4]string
}

// NewCSVSink returns a sink writing CSV onto w.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: csv.NewWriter(w)}
}

// Emit implements Sink.
func (s *CSVSink) Emit(ev Event) {
	if s.err != nil {
		return
	}
	if !s.wrote {
		s.wrote = true
		s.scratch = [4]string{"time", "kind", "task", "detail"}
		if err := s.w.Write(s.scratch[:]); err != nil {
			s.err = err
			return
		}
	}
	s.scratch[0] = strconv.FormatFloat(ev.Time, 'g', -1, 64)
	s.scratch[1] = string(ev.Kind)
	s.scratch[2] = ev.TaskID
	s.scratch[3] = ev.Detail
	s.err = s.w.Write(s.scratch[:])
}

// Close flushes the writer and returns the first error encountered.
func (s *CSVSink) Close() error {
	if s.err != nil {
		return s.err
	}
	s.w.Flush()
	return s.w.Error()
}
