// Package trace collects the time-stamped event log a simulation produces,
// mirroring the paper's simulator output ("the simulator simulates the
// execution of the workflow and outputs a time-stamped event trace; the
// date of the last event gives the overall makespan").
package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"bbwfsim/internal/units"
)

// EventKind labels a trace event.
type EventKind string

// The event kinds emitted by the execution engine.
const (
	TaskReady    EventKind = "task-ready"
	TaskStart    EventKind = "task-start"
	ReadStart    EventKind = "read-start"
	ReadEnd      EventKind = "read-end"
	ComputeStart EventKind = "compute-start"
	ComputeEnd   EventKind = "compute-end"
	WriteStart   EventKind = "write-start"
	WriteEnd     EventKind = "write-end"
	StageStart   EventKind = "stage-start"
	StageEnd     EventKind = "stage-end"
	TaskEnd      EventKind = "task-end"
)

// Fault-injection and recovery event kinds (internal/faults, exec recovery
// policies). Traces of fault-free runs never contain them.
const (
	// TaskFail records a task attempt aborted by a fault (task crash, node
	// failure, or a lost input); the detail names the cause.
	TaskFail EventKind = "task-fail"
	// TaskRetry records a failed task re-entering the ready queue after its
	// recovery backoff, or a finished task re-executing because a node
	// failure destroyed the only replica of one of its outputs.
	TaskRetry EventKind = "task-retry"
	// NodeFail and NodeRepair bracket a whole-node outage; the detail is
	// the node name.
	NodeFail   EventKind = "node-fail"
	NodeRepair EventKind = "node-repair"
	// BBReject records a burst-buffer allocation rejection injected by the
	// fault model.
	BBReject EventKind = "bb-reject"
	// Fallback records a write gracefully redirected to the PFS after its
	// burst-buffer target was rejected, full, or degraded away.
	Fallback EventKind = "fallback"
	// DegradeStart and DegradeEnd bracket a transient bandwidth-degradation
	// window on a storage service (BB degradation or PFS brown-out).
	DegradeStart EventKind = "degrade-start"
	DegradeEnd   EventKind = "degrade-end"
)

// Task-level checkpoint/restart event kinds (internal/ckpt policy, exec
// engine). Runs without a checkpoint policy never contain them.
const (
	// CkptBegin records a task starting a checkpoint write; the detail is
	// "file@service".
	CkptBegin EventKind = "ckpt-begin"
	// CkptCommit records a completed checkpoint: the snapshot is readable
	// from its target tier. The detail is "file@service p=<progress>",
	// where progress is the compute seconds the snapshot captures.
	CkptCommit EventKind = "ckpt-commit"
	// CkptDrain records an asynchronous BB→PFS drain copy completing; the
	// checkpoint is durable against node loss from this instant. The detail
	// is "file@service->pfs".
	CkptDrain EventKind = "ckpt-drain"
	// CkptLost records a checkpoint replica destroyed by a fault (a node
	// failure taking its burst buffer down); the detail is "file@service".
	CkptLost EventKind = "ckpt-lost"
	// RestartFrom records a retried task resuming from a surviving
	// checkpoint instead of recomputing from scratch. The detail mirrors
	// CkptCommit: "file@service p=<progress>", the compute seconds
	// recovered.
	RestartFrom EventKind = "restart-from"
)

// Runtime-adaptation event kinds (internal/adapt policy, exec engine). Runs
// without an adaptation policy never contain them.
const (
	// AdaptSpill records a replica spilled from a pressured burst buffer to
	// the PFS (evicted outright when the PFS already held a copy, copied
	// then evicted otherwise); the detail is "file@service".
	AdaptSpill EventKind = "adapt-spill"
	// AdaptReplicate records a sole-replica input of a still-pending task
	// proactively copied to the PFS after a node failure or at the opening
	// of a BB degradation window; the detail is "file@service->pfs".
	AdaptReplicate EventKind = "adapt-replicate"
	// AdaptFallback records a stage-in or task write redirected from a
	// degraded burst buffer to the PFS by the degradation-aware admission
	// reaction; the detail is "file@service".
	AdaptFallback EventKind = "adapt-fallback"
)

// Event is one time-stamped occurrence.
type Event struct {
	Time   float64   `json:"time"`
	Kind   EventKind `json:"kind"`
	TaskID string    `json:"task"`
	Detail string    `json:"detail,omitempty"`
}

// TaskRecord aggregates one task's execution.
type TaskRecord struct {
	TaskID string `json:"task"`
	Name   string `json:"name"`
	Node   string `json:"node"`
	Cores  int    `json:"cores"`

	ReadyAt     float64 `json:"readyAt"`
	StartedAt   float64 `json:"startedAt"`
	ReadDoneAt  float64 `json:"readDoneAt"`
	ComputeDone float64 `json:"computeDoneAt"`
	FinishedAt  float64 `json:"finishedAt"`

	BytesRead    units.Bytes `json:"bytesRead"`
	BytesWritten units.Bytes `json:"bytesWritten"`

	// Retries counts additional attempts after fault-injected failures; the
	// phase timestamps above describe the final (successful) attempt. Zero,
	// and absent from the JSON form, on fault-free runs.
	Retries int `json:"retries,omitempty"`
}

// ExecTime returns the task's wall time from start to finish.
func (r *TaskRecord) ExecTime() float64 { return r.FinishedAt - r.StartedAt }

// IOTime returns the time spent in I/O phases (input reads + output
// writes).
func (r *TaskRecord) IOTime() float64 {
	return (r.ReadDoneAt - r.StartedAt) + (r.FinishedAt - r.ComputeDone)
}

// ComputeTime returns the time spent in the compute phase.
func (r *TaskRecord) ComputeTime() float64 { return r.ComputeDone - r.ReadDoneAt }

// WaitTime returns the time spent queued (ready but not started).
func (r *TaskRecord) WaitTime() float64 { return r.StartedAt - r.ReadyAt }

// Trace is the full output of one simulated execution.
type Trace struct {
	WorkflowName string
	PlatformName string
	events       []Event
	records      []*TaskRecord
	byTask       map[string]*TaskRecord
	makespan     float64
}

// New returns an empty trace.
func New(workflowName, platformName string) *Trace {
	return &Trace{
		WorkflowName: workflowName,
		PlatformName: platformName,
		byTask:       map[string]*TaskRecord{},
	}
}

// Record appends an event and advances the makespan.
func (t *Trace) Record(time float64, kind EventKind, taskID, detail string) {
	t.events = append(t.events, Event{Time: time, Kind: kind, TaskID: taskID, Detail: detail})
	if time > t.makespan {
		t.makespan = time
	}
}

// Task returns (creating if necessary) the record for taskID.
func (t *Trace) Task(taskID string) *TaskRecord {
	if r := t.byTask[taskID]; r != nil {
		return r
	}
	r := &TaskRecord{TaskID: taskID}
	t.byTask[taskID] = r
	t.records = append(t.records, r)
	return r
}

// Lookup returns the record for taskID, or nil.
func (t *Trace) Lookup(taskID string) *TaskRecord {
	return t.byTask[taskID]
}

// Events returns all events in recording order (which is time order, since
// the simulation clock is monotone).
func (t *Trace) Events() []Event { return t.events }

// Records returns all task records in first-touch order.
func (t *Trace) Records() []*TaskRecord { return t.records }

// Makespan returns the time of the last recorded event.
func (t *Trace) Makespan() float64 { return t.makespan }

// CountKind returns the number of recorded events of the given kind, the
// basis of the fault/recovery counters in core.Result.
func (t *Trace) CountKind(kind EventKind) int {
	n := 0
	for _, ev := range t.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// Summary aggregates task records by task name.
type Summary struct {
	Name         string
	Count        int
	MeanExec     float64
	MaxExec      float64
	MeanIO       float64
	MeanCompute  float64
	MeanWait     float64
	BytesRead    units.Bytes
	BytesWritten units.Bytes
}

// Summarize groups records by task name and averages their phases. Results
// are sorted by name.
func (t *Trace) Summarize() []Summary {
	byName := map[string]*Summary{}
	for _, r := range t.records {
		s := byName[r.Name]
		if s == nil {
			s = &Summary{Name: r.Name}
			byName[r.Name] = s
		}
		s.Count++
		s.MeanExec += r.ExecTime()
		if r.ExecTime() > s.MaxExec {
			s.MaxExec = r.ExecTime()
		}
		s.MeanIO += r.IOTime()
		s.MeanCompute += r.ComputeTime()
		s.MeanWait += r.WaitTime()
		s.BytesRead += r.BytesRead
		s.BytesWritten += r.BytesWritten
	}
	var out []Summary
	for _, s := range byName {
		n := float64(s.Count)
		s.MeanExec /= n
		s.MeanIO /= n
		s.MeanCompute /= n
		s.MeanWait /= n
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MeanExecByName returns the mean exec time of tasks with the given name,
// or an error if none exist.
func (t *Trace) MeanExecByName(name string) (float64, error) {
	sum, count := 0.0, 0
	for _, r := range t.records {
		if r.Name == name {
			sum += r.ExecTime()
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("trace: no tasks named %q", name)
	}
	return sum / float64(count), nil
}

// GanttRow is one bar of a Gantt chart.
type GanttRow struct {
	TaskID string  `json:"task"`
	Name   string  `json:"name"`
	Node   string  `json:"node"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Phase  string  `json:"phase"` // "read", "compute", "write"
}

// Gantt expands each task record into its read/compute/write bars, sorted
// by start time then task ID.
func (t *Trace) Gantt() []GanttRow {
	var rows []GanttRow
	for _, r := range t.records {
		if r.ReadDoneAt > r.StartedAt {
			rows = append(rows, GanttRow{r.TaskID, r.Name, r.Node, r.StartedAt, r.ReadDoneAt, "read"})
		}
		if r.ComputeDone > r.ReadDoneAt {
			rows = append(rows, GanttRow{r.TaskID, r.Name, r.Node, r.ReadDoneAt, r.ComputeDone, "compute"})
		}
		if r.FinishedAt > r.ComputeDone {
			rows = append(rows, GanttRow{r.TaskID, r.Name, r.Node, r.ComputeDone, r.FinishedAt, "write"})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		//bbvet:allow float-compare -- sort tie-break: exact equality falls through to the TaskID tie-breaker for a deterministic order
		if rows[i].Start != rows[j].Start {
			return rows[i].Start < rows[j].Start
		}
		return rows[i].TaskID < rows[j].TaskID
	})
	return rows
}

// jsonTrace is the export schema.
type jsonTrace struct {
	Workflow string        `json:"workflow"`
	Platform string        `json:"platform"`
	Makespan float64       `json:"makespan"`
	Tasks    []*TaskRecord `json:"tasks"`
	Events   []Event       `json:"events"`
}

// MarshalJSON implements json.Marshaler.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTrace{
		Workflow: t.WorkflowName,
		Platform: t.PlatformName,
		Makespan: t.makespan,
		Tasks:    t.records,
		Events:   t.events,
	})
}

// Save writes the trace as indented JSON.
func (t *Trace) Save(path string) error {
	raw, err := t.MarshalJSON()
	if err != nil {
		return err
	}
	var buf []byte
	{
		var pretty map[string]any
		if err := json.Unmarshal(raw, &pretty); err != nil {
			return err
		}
		buf, err = json.MarshalIndent(pretty, "", "  ")
		if err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
