// Package trace collects the time-stamped event log a simulation produces,
// mirroring the paper's simulator output ("the simulator simulates the
// execution of the workflow and outputs a time-stamped event trace; the
// date of the last event gives the overall makespan").
package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"bbwfsim/internal/units"
)

// EventKind labels a trace event.
type EventKind string

// The event kinds emitted by the execution engine.
const (
	TaskReady    EventKind = "task-ready"
	TaskStart    EventKind = "task-start"
	ReadStart    EventKind = "read-start"
	ReadEnd      EventKind = "read-end"
	ComputeStart EventKind = "compute-start"
	ComputeEnd   EventKind = "compute-end"
	WriteStart   EventKind = "write-start"
	WriteEnd     EventKind = "write-end"
	StageStart   EventKind = "stage-start"
	StageEnd     EventKind = "stage-end"
	TaskEnd      EventKind = "task-end"
)

// Fault-injection and recovery event kinds (internal/faults, exec recovery
// policies). Traces of fault-free runs never contain them.
const (
	// TaskFail records a task attempt aborted by a fault (task crash, node
	// failure, or a lost input); the detail names the cause.
	TaskFail EventKind = "task-fail"
	// TaskRetry records a failed task re-entering the ready queue after its
	// recovery backoff, or a finished task re-executing because a node
	// failure destroyed the only replica of one of its outputs.
	TaskRetry EventKind = "task-retry"
	// NodeFail and NodeRepair bracket a whole-node outage; the detail is
	// the node name.
	NodeFail   EventKind = "node-fail"
	NodeRepair EventKind = "node-repair"
	// BBReject records a burst-buffer allocation rejection injected by the
	// fault model.
	BBReject EventKind = "bb-reject"
	// Fallback records a write gracefully redirected to the PFS after its
	// burst-buffer target was rejected, full, or degraded away.
	Fallback EventKind = "fallback"
	// DegradeStart and DegradeEnd bracket a transient bandwidth-degradation
	// window on a storage service (BB degradation or PFS brown-out).
	DegradeStart EventKind = "degrade-start"
	DegradeEnd   EventKind = "degrade-end"
)

// Task-level checkpoint/restart event kinds (internal/ckpt policy, exec
// engine). Runs without a checkpoint policy never contain them.
const (
	// CkptBegin records a task starting a checkpoint write; the detail is
	// "file@service".
	CkptBegin EventKind = "ckpt-begin"
	// CkptCommit records a completed checkpoint: the snapshot is readable
	// from its target tier. The detail is "file@service p=<progress>",
	// where progress is the compute seconds the snapshot captures.
	CkptCommit EventKind = "ckpt-commit"
	// CkptDrain records an asynchronous BB→PFS drain copy completing; the
	// checkpoint is durable against node loss from this instant. The detail
	// is "file@service->pfs".
	CkptDrain EventKind = "ckpt-drain"
	// CkptLost records a checkpoint replica destroyed by a fault (a node
	// failure taking its burst buffer down); the detail is "file@service".
	CkptLost EventKind = "ckpt-lost"
	// RestartFrom records a retried task resuming from a surviving
	// checkpoint instead of recomputing from scratch. The detail mirrors
	// CkptCommit: "file@service p=<progress>", the compute seconds
	// recovered.
	RestartFrom EventKind = "restart-from"
)

// Runtime-adaptation event kinds (internal/adapt policy, exec engine). Runs
// without an adaptation policy never contain them.
const (
	// AdaptSpill records a replica spilled from a pressured burst buffer to
	// the PFS (evicted outright when the PFS already held a copy, copied
	// then evicted otherwise); the detail is "file@service".
	AdaptSpill EventKind = "adapt-spill"
	// AdaptReplicate records a sole-replica input of a still-pending task
	// proactively copied to the PFS after a node failure or at the opening
	// of a BB degradation window; the detail is "file@service->pfs".
	AdaptReplicate EventKind = "adapt-replicate"
	// AdaptFallback records a stage-in or task write redirected from a
	// degraded burst buffer to the PFS by the degradation-aware admission
	// reaction; the detail is "file@service".
	AdaptFallback EventKind = "adapt-fallback"
)

// Batch-scheduler event kinds (internal/sched). The TaskID field carries
// the job ID; single-workflow runs never contain them.
const (
	// JobSubmit records a job arriving in the scheduler's queue; the
	// detail is "nodes=<n> bb=<bytes> est=<estimated span>", the demands
	// every downstream consistency check needs.
	JobSubmit EventKind = "job-submit"
	// JobReject records a job whose demands exceed the whole cluster,
	// refused at admission.
	JobReject EventKind = "job-reject"
	// JobStart records a job acquiring its nodes and burst-buffer
	// reservation and beginning stage-in; the detail repeats the held
	// resources ("nodes=<n> bb=<bytes>").
	JobStart EventKind = "job-start"
	// JobRun records stage-in completing and the compute phase starting.
	JobRun EventKind = "job-run"
	// JobStageOut records the compute phase completing and stage-out
	// starting.
	JobStageOut EventKind = "job-stage-out"
	// JobEnd records stage-out completing: the job releases its nodes and
	// burst-buffer reservation.
	JobEnd EventKind = "job-end"
	// JobFail records a running job killed by a node failure; it releases
	// its resources at this instant. The detail names the failed node.
	JobFail EventKind = "job-fail"
)

// Event is one time-stamped occurrence.
type Event struct {
	Time   float64   `json:"time"`
	Kind   EventKind `json:"kind"`
	TaskID string    `json:"task"`
	Detail string    `json:"detail,omitempty"`
}

// TaskRecord aggregates one task's execution.
type TaskRecord struct {
	TaskID string `json:"task"`
	Name   string `json:"name"`
	Node   string `json:"node"`
	Cores  int    `json:"cores"`

	ReadyAt     float64 `json:"readyAt"`
	StartedAt   float64 `json:"startedAt"`
	ReadDoneAt  float64 `json:"readDoneAt"`
	ComputeDone float64 `json:"computeDoneAt"`
	FinishedAt  float64 `json:"finishedAt"`

	BytesRead    units.Bytes `json:"bytesRead"`
	BytesWritten units.Bytes `json:"bytesWritten"`

	// Retries counts additional attempts after fault-injected failures; the
	// phase timestamps above describe the final (successful) attempt. Zero,
	// and absent from the JSON form, on fault-free runs.
	Retries int `json:"retries,omitempty"`
}

// ExecTime returns the task's wall time from start to finish.
func (r *TaskRecord) ExecTime() float64 { return r.FinishedAt - r.StartedAt }

// IOTime returns the time spent in I/O phases (input reads + output
// writes).
func (r *TaskRecord) IOTime() float64 {
	return (r.ReadDoneAt - r.StartedAt) + (r.FinishedAt - r.ComputeDone)
}

// ComputeTime returns the time spent in the compute phase.
func (r *TaskRecord) ComputeTime() float64 { return r.ComputeDone - r.ReadDoneAt }

// WaitTime returns the time spent queued (ready but not started).
func (r *TaskRecord) WaitTime() float64 { return r.StartedAt - r.ReadyAt }

// Mode selects how a trace materializes the events it records. Makespan and
// per-kind event counts are maintained incrementally in every mode, so
// CountKind and the fault tallies in core.Result never scan an event slice.
type Mode int

const (
	// Retained keeps every event in memory (the historical behavior).
	// Events, MarshalJSON, Save, Gantt, and the invariants/replay harness
	// all require a retained trace.
	Retained Mode = iota
	// Streaming forwards each event to a Sink as it is recorded and retains
	// nothing. Task records are folded into per-name summaries as tasks
	// finish, so memory is O(active tasks), not O(total events).
	Streaming
	// Counting discards events entirely, keeping only the per-kind counts,
	// the makespan, and the folded summaries — the mode for million-task
	// scale runs.
	Counting
)

// Trace is the full output of one simulated execution.
type Trace struct {
	WorkflowName string
	PlatformName string
	events       []Event
	records      []*TaskRecord
	byTask       map[string]*TaskRecord
	makespan     float64
	mode         Mode
	sink         Sink
	counts       map[EventKind]int
	// folded accumulates summary sums for task records released by the
	// non-retained modes; foldedOrder remembers first-fold order only so
	// Summarize's output stays deterministic without sorting a map.
	folded      map[string]*Summary
	foldedOrder []string
}

// New returns an empty retained-mode trace.
func New(workflowName, platformName string) *Trace {
	return newTrace(workflowName, platformName, Retained, nil)
}

// NewStreaming returns a trace that forwards events to sink instead of
// retaining them. The caller owns the sink and must Close it after the run.
func NewStreaming(workflowName, platformName string, sink Sink) *Trace {
	if sink == nil {
		panic("trace: NewStreaming with nil sink")
	}
	return newTrace(workflowName, platformName, Streaming, sink)
}

// NewCounting returns a trace that keeps only per-kind counts, the
// makespan, and folded task summaries.
func NewCounting(workflowName, platformName string) *Trace {
	return newTrace(workflowName, platformName, Counting, nil)
}

func newTrace(workflowName, platformName string, mode Mode, sink Sink) *Trace {
	return &Trace{
		WorkflowName: workflowName,
		PlatformName: platformName,
		byTask:       map[string]*TaskRecord{},
		mode:         mode,
		sink:         sink,
		counts:       map[EventKind]int{},
	}
}

// Mode returns how the trace materializes events.
func (t *Trace) Mode() Mode { return t.mode }

// Record logs an event: the per-kind count and makespan always advance; the
// event itself is retained, streamed, or dropped according to the mode.
func (t *Trace) Record(time float64, kind EventKind, taskID, detail string) {
	t.counts[kind]++
	if time > t.makespan {
		t.makespan = time
	}
	switch t.mode {
	case Retained:
		t.events = append(t.events, Event{Time: time, Kind: kind, TaskID: taskID, Detail: detail})
	case Streaming:
		t.sink.Emit(Event{Time: time, Kind: kind, TaskID: taskID, Detail: detail})
	}
}

// Task returns (creating if necessary) the record for taskID.
func (t *Trace) Task(taskID string) *TaskRecord {
	if r := t.byTask[taskID]; r != nil {
		return r
	}
	r := &TaskRecord{TaskID: taskID}
	t.byTask[taskID] = r
	if t.mode == Retained {
		t.records = append(t.records, r)
	}
	return r
}

// Lookup returns the record for taskID, or nil.
func (t *Trace) Lookup(taskID string) *TaskRecord {
	return t.byTask[taskID]
}

// Release folds taskID's completed record into the per-name summary
// accumulators and frees it. Retained traces keep every record, so there it
// is a no-op; in the scale modes the execution engine calls it as each task
// finishes, which is what keeps live state O(active tasks). A task re-run
// later (lineage re-execution under faults) simply gets a fresh record and
// folds again, so scale-mode summaries count such tasks once per execution.
func (t *Trace) Release(taskID string) {
	if t.mode == Retained {
		return
	}
	r := t.byTask[taskID]
	if r == nil {
		return
	}
	delete(t.byTask, taskID)
	t.fold(r)
}

func (t *Trace) fold(r *TaskRecord) {
	s := t.folded[r.Name]
	if s == nil {
		s = &Summary{Name: r.Name}
		if t.folded == nil {
			t.folded = map[string]*Summary{}
		}
		t.folded[r.Name] = s
		t.foldedOrder = append(t.foldedOrder, r.Name)
	}
	// Accumulate sums; Summarize divides by Count on the way out.
	s.Count++
	s.MeanExec += r.ExecTime()
	if r.ExecTime() > s.MaxExec {
		s.MaxExec = r.ExecTime()
	}
	s.MeanIO += r.IOTime()
	s.MeanCompute += r.ComputeTime()
	s.MeanWait += r.WaitTime()
	s.BytesRead += r.BytesRead
	s.BytesWritten += r.BytesWritten
}

// Events returns all events in recording order (which is time order, since
// the simulation clock is monotone). Non-retained traces return nil.
func (t *Trace) Events() []Event { return t.events }

// Records returns all task records in first-touch order. Non-retained
// traces return only the records not yet folded by Release.
func (t *Trace) Records() []*TaskRecord { return t.records }

// Makespan returns the time of the last recorded event.
func (t *Trace) Makespan() float64 { return t.makespan }

// CountKind returns the number of recorded events of the given kind, the
// basis of the fault/recovery counters in core.Result. The counts are
// maintained incrementally by Record, so this is O(1) in every mode
// (TestCountKindMatchesScan pins it against a full scan).
func (t *Trace) CountKind(kind EventKind) int { return t.counts[kind] }

// Summary aggregates task records by task name.
type Summary struct {
	Name         string
	Count        int
	MeanExec     float64
	MaxExec      float64
	MeanIO       float64
	MeanCompute  float64
	MeanWait     float64
	BytesRead    units.Bytes
	BytesWritten units.Bytes
}

// Summarize groups records by task name and averages their phases. Results
// are sorted by name. In the scale modes, records already folded by Release
// contribute through their accumulators; still-live (unfinished) records
// are folded on a copy, in task-ID order, so repeated calls are
// deterministic and non-mutating.
func (t *Trace) Summarize() []Summary {
	if t.mode != Retained {
		return t.summarizeFolded()
	}
	byName := map[string]*Summary{}
	for _, r := range t.records {
		s := byName[r.Name]
		if s == nil {
			s = &Summary{Name: r.Name}
			byName[r.Name] = s
		}
		s.Count++
		s.MeanExec += r.ExecTime()
		if r.ExecTime() > s.MaxExec {
			s.MaxExec = r.ExecTime()
		}
		s.MeanIO += r.IOTime()
		s.MeanCompute += r.ComputeTime()
		s.MeanWait += r.WaitTime()
		s.BytesRead += r.BytesRead
		s.BytesWritten += r.BytesWritten
	}
	var out []Summary
	for _, s := range byName {
		n := float64(s.Count)
		s.MeanExec /= n
		s.MeanIO /= n
		s.MeanCompute /= n
		s.MeanWait /= n
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (t *Trace) summarizeFolded() []Summary {
	// Copy the accumulators, then fold any live records in task-ID order.
	acc := make(map[string]*Summary, len(t.folded))
	order := append([]string(nil), t.foldedOrder...)
	for _, name := range order {
		cp := *t.folded[name]
		acc[name] = &cp
	}
	live := make([]*TaskRecord, 0, len(t.byTask))
	for _, r := range t.byTask {
		live = append(live, r)
	}
	sort.Slice(live, func(i, j int) bool { return live[i].TaskID < live[j].TaskID })
	tmp := Trace{folded: acc, foldedOrder: order}
	for _, r := range live {
		tmp.fold(r)
	}
	out := make([]Summary, 0, len(tmp.foldedOrder))
	for _, name := range tmp.foldedOrder {
		s := *tmp.folded[name]
		n := float64(s.Count)
		s.MeanExec /= n
		s.MeanIO /= n
		s.MeanCompute /= n
		s.MeanWait /= n
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MeanExecByName returns the mean exec time of tasks with the given name,
// or an error if none exist. In the scale modes it answers from the folded
// accumulators.
func (t *Trace) MeanExecByName(name string) (float64, error) {
	if t.mode != Retained {
		for _, s := range t.Summarize() {
			if s.Name == name && s.Count > 0 {
				return s.MeanExec, nil
			}
		}
		return 0, fmt.Errorf("trace: no tasks named %q", name)
	}
	sum, count := 0.0, 0
	for _, r := range t.records {
		if r.Name == name {
			sum += r.ExecTime()
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("trace: no tasks named %q", name)
	}
	return sum / float64(count), nil
}

// GanttRow is one bar of a Gantt chart.
type GanttRow struct {
	TaskID string  `json:"task"`
	Name   string  `json:"name"`
	Node   string  `json:"node"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	Phase  string  `json:"phase"` // "read", "compute", "write"
}

// Gantt expands each task record into its read/compute/write bars, sorted
// by start time then task ID.
func (t *Trace) Gantt() []GanttRow {
	var rows []GanttRow
	for _, r := range t.records {
		if r.ReadDoneAt > r.StartedAt {
			rows = append(rows, GanttRow{r.TaskID, r.Name, r.Node, r.StartedAt, r.ReadDoneAt, "read"})
		}
		if r.ComputeDone > r.ReadDoneAt {
			rows = append(rows, GanttRow{r.TaskID, r.Name, r.Node, r.ReadDoneAt, r.ComputeDone, "compute"})
		}
		if r.FinishedAt > r.ComputeDone {
			rows = append(rows, GanttRow{r.TaskID, r.Name, r.Node, r.ComputeDone, r.FinishedAt, "write"})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		//bbvet:allow float-compare -- sort tie-break: exact equality falls through to the TaskID tie-breaker for a deterministic order
		if rows[i].Start != rows[j].Start {
			return rows[i].Start < rows[j].Start
		}
		return rows[i].TaskID < rows[j].TaskID
	})
	return rows
}

// jsonTrace is the export schema.
type jsonTrace struct {
	Workflow string        `json:"workflow"`
	Platform string        `json:"platform"`
	Makespan float64       `json:"makespan"`
	Tasks    []*TaskRecord `json:"tasks"`
	Events   []Event       `json:"events"`
}

// MarshalJSON implements json.Marshaler. Only retained traces carry the
// full event log and task records the schema promises.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t.mode != Retained {
		return nil, fmt.Errorf("trace: cannot marshal a non-retained trace (mode %d)", t.mode)
	}
	return json.Marshal(jsonTrace{
		Workflow: t.WorkflowName,
		Platform: t.PlatformName,
		Makespan: t.makespan,
		Tasks:    t.records,
		Events:   t.events,
	})
}

// Save writes the trace as indented JSON.
func (t *Trace) Save(path string) error {
	raw, err := t.MarshalJSON()
	if err != nil {
		return err
	}
	var buf []byte
	{
		var pretty map[string]any
		if err := json.Unmarshal(raw, &pretty); err != nil {
			return err
		}
		buf, err = json.MarshalIndent(pretty, "", "  ")
		if err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
