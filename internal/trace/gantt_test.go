package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderGantt(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := tr.RenderGantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 3 task rows + 1 axis row.
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	// Sorted by start time: a (1), b (2), c (12).
	if !strings.HasPrefix(lines[0], "a") || !strings.HasPrefix(lines[1], "b") || !strings.HasPrefix(lines[2], "c") {
		t.Errorf("rows out of order:\n%s", out)
	}
	// Every phase glyph appears.
	for _, g := range []string{"r", "#", "w"} {
		if !strings.Contains(out, g) {
			t.Errorf("glyph %q missing:\n%s", g, out)
		}
	}
	// Axis ends with the makespan.
	if !strings.Contains(lines[3], "15.00s") {
		t.Errorf("axis missing makespan:\n%s", out)
	}
	// Later tasks start further right: first glyph of c after first of a.
	idx := func(line string) int {
		bar := line[strings.Index(line, "[")+1:]
		for i, ch := range bar {
			if ch != ' ' {
				return i
			}
		}
		return -1
	}
	if idx(lines[2]) <= idx(lines[0]) {
		t.Errorf("row c does not start after row a:\n%s", out)
	}
}

func TestRenderGanttEmpty(t *testing.T) {
	tr := New("w", "p")
	var buf bytes.Buffer
	if err := tr.RenderGantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty trace") {
		t.Errorf("empty trace output = %q", buf.String())
	}
}

func TestRenderGanttTinyTaskVisible(t *testing.T) {
	tr := New("w", "p")
	long := tr.Task("long")
	long.StartedAt = 0
	long.ReadDoneAt = 0
	long.ComputeDone = 100
	long.FinishedAt = 100
	tiny := tr.Task("tiny")
	tiny.StartedAt = 50
	tiny.ReadDoneAt = 50
	tiny.ComputeDone = 50.001
	tiny.FinishedAt = 50.001
	tr.Record(100, TaskEnd, "long", "")
	var buf bytes.Buffer
	if err := tr.RenderGantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "tiny") && !strings.Contains(line, "#") {
			t.Errorf("tiny task invisible: %q", line)
		}
	}
}
