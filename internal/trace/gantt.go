package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RenderGantt writes an ASCII Gantt chart of the trace: one row per task,
// time flowing left to right across `width` columns, with the read (r),
// compute (#), and write (w) phases distinguished. Rows are sorted by
// start time. Tasks shorter than one column still get one glyph so nothing
// disappears.
//
//	stage_in  [ww                                ]
//	resample  [  rrr############ww               ]
//	combine   [                 rr#######w       ]
func (t *Trace) RenderGantt(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	if t.makespan <= 0 || len(t.records) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	records := append([]*TaskRecord{}, t.records...)
	sort.SliceStable(records, func(i, j int) bool {
		//bbvet:allow float-compare -- sort tie-break: exact equality falls through to the TaskID tie-breaker for a deterministic order
		if records[i].StartedAt != records[j].StartedAt {
			return records[i].StartedAt < records[j].StartedAt
		}
		return records[i].TaskID < records[j].TaskID
	})
	nameWidth := 0
	for _, r := range records {
		if len(r.TaskID) > nameWidth {
			nameWidth = len(r.TaskID)
		}
	}
	if nameWidth > 24 {
		nameWidth = 24
	}
	col := func(time float64) int {
		c := int(time / t.makespan * float64(width))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	for _, r := range records {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		paint := func(from, to float64, glyph byte) {
			if to <= from {
				return
			}
			for i := col(from); i <= col(to-1e-12) && i < width; i++ {
				row[i] = glyph
			}
		}
		paint(r.StartedAt, r.ReadDoneAt, 'r')
		paint(r.ReadDoneAt, r.ComputeDone, '#')
		paint(r.ComputeDone, r.FinishedAt, 'w')
		// Guarantee at least one glyph for very short tasks.
		if strings.TrimSpace(string(row)) == "" {
			row[col(r.StartedAt)] = '#'
		}
		name := r.TaskID
		if len(name) > nameWidth {
			name = name[:nameWidth-1] + "…"
		}
		if _, err := fmt.Fprintf(w, "%-*s [%s]\n", nameWidth, name, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-*s  0%s%.2fs\n", nameWidth, "", strings.Repeat(" ", width-len(fmt.Sprintf("%.2fs", t.makespan))), t.makespan)
	return err
}
