package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestCountKindMatchesScan pins CountKind's incremental counters against a
// full scan of the retained event slice — the O(1) fast path must stay in
// lockstep with the ground truth.
func TestCountKindMatchesScan(t *testing.T) {
	tr := New("wf", "plat")
	kinds := []EventKind{TaskReady, TaskStart, TaskEnd, TaskFail, TaskRetry, Fallback, AdaptSpill}
	for i := 0; i < 500; i++ {
		tr.Record(float64(i), kinds[i%len(kinds)], "t", "")
	}
	scan := map[EventKind]int{}
	for _, ev := range tr.Events() {
		scan[ev.Kind]++
	}
	for _, k := range append(kinds, NodeFail, CkptCommit) { // include never-recorded kinds
		if got := tr.CountKind(k); got != scan[k] {
			t.Errorf("CountKind(%s) = %d, full scan counts %d", k, got, scan[k])
		}
	}
}

// TestCountKindAllModes: the counters advance identically whether events are
// retained, streamed, or dropped.
func TestCountKindAllModes(t *testing.T) {
	var sb strings.Builder
	traces := []*Trace{
		New("wf", "plat"),
		NewStreaming("wf", "plat", NewJSONLSink(&sb)),
		NewCounting("wf", "plat"),
	}
	for _, tr := range traces {
		tr.Record(1, TaskStart, "a", "")
		tr.Record(2, TaskStart, "b", "")
		tr.Record(3, TaskEnd, "a", "")
	}
	for _, tr := range traces {
		if tr.CountKind(TaskStart) != 2 || tr.CountKind(TaskEnd) != 1 {
			t.Errorf("mode %d: counts start=%d end=%d, want 2/1",
				tr.Mode(), tr.CountKind(TaskStart), tr.CountKind(TaskEnd))
		}
		if tr.Makespan() != 3 {
			t.Errorf("mode %d: makespan %v, want 3", tr.Mode(), tr.Makespan())
		}
	}
}

// TestJSONLSinkRoundTrip: every emitted line parses back to the event, with
// the same field schema as the retained trace's events array.
func TestJSONLSinkRoundTrip(t *testing.T) {
	var sb strings.Builder
	s := NewJSONLSink(&sb)
	want := []Event{
		{Time: 0, Kind: TaskReady, TaskID: "t1"},
		{Time: 1.5, Kind: TaskStart, TaskID: "t1", Detail: "node0"},
		{Time: 2.25, Kind: TaskEnd, TaskID: "t1"},
	}
	for _, ev := range want {
		s.Emit(ev)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("%d lines, want %d", len(lines), len(want))
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != want[i] {
			t.Errorf("line %d: %+v, want %+v", i, got, want[i])
		}
	}
}

// TestCSVSinkRoundTrip: header plus one row per event, parseable by a
// standard CSV reader.
func TestCSVSinkRoundTrip(t *testing.T) {
	var sb strings.Builder
	s := NewCSVSink(&sb)
	s.Emit(Event{Time: 0.5, Kind: ReadStart, TaskID: "t1", Detail: "f1@bb"})
	s.Emit(Event{Time: 1, Kind: ReadEnd, TaskID: "t1"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"time", "kind", "task", "detail"},
		{"0.5", "read-start", "t1", "f1@bb"},
		{"1", "read-end", "t1", ""},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if rows[i][j] != want[i][j] {
				t.Errorf("row %d col %d: %q, want %q", i, j, rows[i][j], want[i][j])
			}
		}
	}
}

// errWriter fails after n successful writes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// TestSinkErrorLatching: a write error surfaces from Close, later Emits are
// no-ops, and the hot path never panics or blocks.
func TestSinkErrorLatching(t *testing.T) {
	s := NewJSONLSink(&errWriter{n: 0})
	for i := 0; i < 3000; i++ { // enough to overflow the 64 KiB buffer
		s.Emit(Event{Time: float64(i), Kind: TaskStart, TaskID: "t"})
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close() = nil after failed writes")
	}
	c := NewCSVSink(&errWriter{n: 0})
	for i := 0; i < 3000; i++ {
		c.Emit(Event{Time: float64(i), Kind: TaskStart, TaskID: "t"})
	}
	if err := c.Close(); err == nil {
		t.Fatal("CSV Close() = nil after failed writes")
	}
}

// TestNonRetainedMarshalRefused: the JSON schema promises full events and
// records, which only the retained mode has.
func TestNonRetainedMarshalRefused(t *testing.T) {
	if _, err := NewCounting("wf", "plat").MarshalJSON(); err == nil {
		t.Fatal("counting trace marshaled without error")
	}
	var sb strings.Builder
	if _, err := NewStreaming("wf", "plat", NewJSONLSink(&sb)).MarshalJSON(); err == nil {
		t.Fatal("streaming trace marshaled without error")
	}
}

// TestReleaseFoldsSummaries: in the scale modes, Release drops the record
// from live state and the folded summaries still match a retained trace's.
func TestReleaseFoldsSummaries(t *testing.T) {
	build := func(tr *Trace, release bool) {
		for i, id := range []string{"a1", "a2", "b1"} {
			r := tr.Task(id)
			r.Name = string(id[0])
			base := float64(i * 10)
			r.ReadyAt, r.StartedAt, r.ReadDoneAt = base, base+1, base+2
			r.ComputeDone, r.FinishedAt = base+5, base+6
			r.BytesRead, r.BytesWritten = 100, 50
			if release {
				tr.Release(id)
				if tr.Lookup(id) != nil {
					t.Fatalf("record %s still live after Release", id)
				}
			}
		}
	}
	retained, counting := New("wf", "p"), NewCounting("wf", "p")
	build(retained, false)
	build(counting, true)
	a, b := retained.Summarize(), counting.Summarize()
	if len(a) != len(b) {
		t.Fatalf("summary lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("summary %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
