package invariants

import (
	"fmt"
	"math/rand"

	"bbwfsim/internal/adapt"
	"bbwfsim/internal/ckpt"
	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
	"bbwfsim/internal/workloads"
)

// Case is one randomized configuration for the property harness: a
// workflow structure × file regime × platform profile × run-option ×
// fault-regime draw, fully determined by its seed.
type Case struct {
	// Name identifies the draw in failure messages.
	Name string
	// Seed is the draw that produced this case.
	Seed int64
	// Platform is the (possibly capacity-constrained) platform.
	Platform platform.Config
	// Workflow is the generated DAG.
	Workflow *workflow.Workflow
	// Opts are the run options for the fault-free execution.
	Opts core.RunOptions
	// CrashDiv > 0 enables a fault campaign for a second execution,
	// calibrated against the fault-free makespan via FaultOptions (crash
	// MTBF = makespan / CrashDiv). Zero means fault-free only.
	CrashDiv float64
}

// presetOrder fixes the platform draw order (Presets returns a map).
var presetOrder = []string{"cori-private", "cori-striped", "summit"}

// RandomCase derives one property-harness case from a seed. Same seed,
// same case — the draw uses a private rand stream, so the harness's ≥200
// cases replay bit-identically. File sizes are whole MiB multiples and
// total traffic stays far below 2^53 bytes, keeping every byte tally an
// exact float sum regardless of accumulation order.
func RandomCase(seed int64) (Case, error) {
	rng := rand.New(rand.NewSource(seed))
	c := Case{Seed: seed}

	p := workloads.Params{
		Work:  units.Flops(float64(5+rng.Intn(40)) * 36.80e9),
		Cores: 1 + rng.Intn(4),
		Regime: workloads.FileRegime{
			Count: 1 + rng.Intn(3),
			Size:  units.Bytes(1+rng.Intn(64)) * units.MiB,
		},
	}
	var (
		wf  *workflow.Workflow
		err error
	)
	switch rng.Intn(5) {
	case 0:
		wf, err = workloads.Chain(2+rng.Intn(5), p)
	case 1:
		wf, err = workloads.ForkJoin(2+rng.Intn(4), p)
	case 2:
		wf, err = workloads.ReduceTree(2+rng.Intn(7), p)
	case 3:
		wf, err = workloads.Broadcast(2+rng.Intn(4), p)
	default:
		wf, err = workloads.RandomLayered(seed, 2+rng.Intn(2), 2+rng.Intn(3), 0.3+0.6*rng.Float64(), p)
	}
	if err != nil {
		return Case{}, err
	}
	c.Workflow = wf

	name := presetOrder[rng.Intn(len(presetOrder))]
	cfg := platform.Presets(1 + rng.Intn(3))[name]

	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	c.Opts = core.RunOptions{
		StagedFraction:     fractions[rng.Intn(len(fractions))],
		IntermediatesToBB:  rng.Intn(2) == 0,
		EvictAfterLastRead: rng.Intn(2) == 0,
		PrePlaceInputs:     rng.Intn(2) == 0,
	}
	if name == "cori-private" && rng.Intn(4) == 0 {
		c.Opts.EnforcePrivateVisibility = true
	}
	if rng.Intn(4) == 0 {
		// Constrained burst buffer: capacity a small multiple of the edge
		// volume, so writes overflow and must fall back to the PFS.
		// Pre-placement bypasses the fallback path (PlaceInitial fails
		// outright on a full tier), so these cases stage at runtime only.
		cfg.BB.Capacity = units.Bytes(1+rng.Intn(3)) * p.Regime.Bytes()
		c.Opts.BBFallback = true
		c.Opts.IntermediatesToBB = true
		c.Opts.PrePlaceInputs = false
	}
	c.Platform = cfg

	if rng.Intn(5) < 2 {
		c.CrashDiv = []float64{2, 4, 8}[rng.Intn(3)]
		c.Opts.BBFallback = true
		// Generous retry budget so bounded fault campaigns cannot exhaust
		// it; jittered backoff draws from its own seeded stream.
		c.Opts.Retry = exec.RetryPolicy{
			MaxRetries: 60, Backoff: exec.BackoffExponential,
			BaseDelay: 2, MaxDelay: 60, Jitter: 0.25, Seed: seed,
		}
	}

	// Checkpoint-recovery draw — appended after every earlier draw so the
	// cases of prior harness versions keep their workflow, platform, and
	// fault regime unchanged.
	if rng.Intn(3) == 0 {
		c.Opts.Checkpoint = randomPolicy(rng)
	}

	c.Name = fmt.Sprintf("seed%04d-%s-%s-f%.2f", seed, wf.Name(), name, c.Opts.StagedFraction)
	return c, nil
}

// randomPolicy draws one valid checkpoint policy: an interval shorter than
// most task compute times, a whole-MiB snapshot size (keeping byte tallies
// exact float sums), and one of the three recovery tiers — PFS, burst
// buffer, or burst buffer with an asynchronous drain.
func randomPolicy(rng *rand.Rand) ckpt.Policy {
	pol := ckpt.Policy{
		Interval: []float64{5, 15, 45}[rng.Intn(3)],
		MinSize:  units.Bytes(1+rng.Intn(4)) * 16 * units.MiB,
	}
	switch rng.Intn(3) {
	case 0:
		pol.Target = ckpt.TargetPFS
	case 1:
		pol.Target = ckpt.TargetBB
	default:
		pol.Target = ckpt.TargetBB
		pol.Drain = true
		pol.DrainDelay = float64(rng.Intn(20))
	}
	return pol
}

// CkptCase derives a checkpointed variant of RandomCase(seed): the same
// workflow × platform × option draw, with a checkpoint policy forced on
// and a fault campaign guaranteed, for the checkpointed property harness.
// The extra draws come from a separate stream, so the underlying case
// stays identical to RandomCase's.
func CkptCase(seed int64) (Case, error) {
	c, err := RandomCase(seed)
	if err != nil {
		return Case{}, err
	}
	rng := rand.New(rand.NewSource(seed + 7*streamOffset))
	c.Opts.Checkpoint = randomPolicy(rng)
	if c.CrashDiv == 0 { //bbvet:allow float-compare -- zero is the literal "no faults drawn" sentinel RandomCase assigns, never computed
		c.CrashDiv = []float64{2, 4, 8}[rng.Intn(3)]
		c.Opts.BBFallback = true
		c.Opts.Retry = exec.RetryPolicy{
			MaxRetries: 60, Backoff: exec.BackoffExponential,
			BaseDelay: 2, MaxDelay: 60, Jitter: 0.25, Seed: seed,
		}
	}
	c.Name = "ckpt-" + c.Name
	return c, nil
}

// AdaptCase derives an adaptive variant of RandomCase(seed): the same
// workflow × platform × option draw, with an adapt policy forced on, the
// burst buffer squeezed to a small multiple of the file regime (so pressure
// spill actually fires), and a fault campaign guaranteed (so replication
// and degradation fallback fire too). The extra draws come from a separate
// stream — disjoint from both RandomCase's and CkptCase's — so the
// underlying case stays identical to RandomCase's.
func AdaptCase(seed int64) (Case, error) {
	c, err := RandomCase(seed)
	if err != nil {
		return Case{}, err
	}
	rng := rand.New(rand.NewSource(seed + 11*streamOffset))
	high := []float64{0.5, 0.7, 0.9}[rng.Intn(3)]
	c.Opts.Adapt = adapt.Policy{
		SpillHighWater:   high,
		ReplicateOnFault: true,
		DegradedFallback: rng.Intn(2) == 0,
	}
	if rng.Intn(2) == 0 {
		c.Opts.Adapt.SpillLowWater = 0.5 * high
	}
	if rng.Intn(3) == 0 {
		c.Opts.Adapt.ReplicationBudget = 1 + rng.Intn(8)
	}
	// Squeeze the burst buffer to a fraction of the workflow's total file
	// footprint so occupancy reaches the high-water mark, and stage
	// aggressively so traffic actually lands there. BBFallback keeps
	// overflow non-fatal (the harness studies invariants, not failed runs);
	// pre-placement is off because PlaceInitial fails outright on a full
	// tier.
	var footprint units.Bytes
	for _, f := range c.Workflow.Files() {
		footprint += f.Size()
	}
	c.Platform.BB.Capacity = footprint / units.Bytes(2+rng.Intn(3))
	c.Opts.StagedFraction = 1
	c.Opts.IntermediatesToBB = true
	c.Opts.BBFallback = true
	c.Opts.PrePlaceInputs = false
	if c.CrashDiv == 0 { //bbvet:allow float-compare -- zero is the literal "no faults drawn" sentinel RandomCase assigns, never computed
		c.CrashDiv = []float64{2, 4, 8}[rng.Intn(3)]
		c.Opts.Retry = exec.RetryPolicy{
			MaxRetries: 60, Backoff: exec.BackoffExponential,
			BaseDelay: 2, MaxDelay: 60, Jitter: 0.25, Seed: seed,
		}
	}
	c.Name = "adapt-" + c.Name
	return c, nil
}

// streamOffset keeps CkptCase's and AdaptCase's extra draws disjoint from
// RandomCase's for any seed (same large-prime spacing the fault injector
// uses).
const streamOffset = 1_000_003

// FaultOptions returns the run options for the case's fault campaign,
// calibrated against the fault-free makespan: task crashes with MTBF
// makespan/CrashDiv, about one node outage, occasional burst-buffer
// rejections, and a transient bandwidth-degradation window. All processes
// are budget-bounded so recovery always terminates.
func (c Case) FaultOptions(baseline float64) (core.RunOptions, error) {
	if c.CrashDiv <= 0 {
		return core.RunOptions{}, fmt.Errorf("invariants: case %s has no fault regime", c.Name)
	}
	inj, err := faults.New(faults.Config{
		Seed:        c.Seed,
		TaskCrash:   &faults.CrashProcess{Arrival: faults.Exp(baseline / c.CrashDiv), Budget: int(2 * c.CrashDiv)},
		NodeFailure: &faults.NodeProcess{Arrival: faults.Exp(baseline), MTTR: baseline / 10, Budget: 2},
		BBReject:    &faults.RejectPolicy{Prob: 0.05},
		BBDegrade:   &faults.DegradeProcess{Arrival: faults.Exp(baseline / 2), Duration: baseline / 20, Factor: 0.3},
	})
	if err != nil {
		return core.RunOptions{}, err
	}
	fo := c.Opts
	fo.Faults = inj
	return fo, nil
}
