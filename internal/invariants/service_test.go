package invariants

import (
	"bytes"
	"context"
	"testing"

	"bbwfsim/internal/service"
)

// TestServiceCacheIdentityHarness is the cache-identity property behind
// bbsimd: for 100 seeded requests spanning every Execute path (all three
// workflow kinds, sched campaigns, checkpointing, adaptation, faults),
// the canonical hash is stable, two independent evaluations are
// byte-identical, and a cache hit serves exactly the cold bytes. This is
// the dynamic half of the determinism argument — the static half is
// bbvet's taint sink on service.Execute.
func TestServiceCacheIdentityHarness(t *testing.T) {
	const cases = 100
	cache := service.NewCache(0, nil)
	kinds := map[string]int{}
	var sched, ckpt, adapt, faults int
	for seed := int64(1); seed <= cases; seed++ {
		req := service.SeededRequest(seed)
		if err := req.Validate(); err != nil {
			t.Fatalf("SeededRequest(%d) invalid: %v", seed, err)
		}
		if req.Sched != nil {
			sched++
		} else {
			kinds[req.Workflow.Kind]++
		}
		if req.Ckpt != nil {
			ckpt++
		}
		if req.Adapt != nil {
			adapt++
		}
		if req.Faults != nil {
			faults++
		}

		h1, err := req.CanonicalHash()
		if err != nil {
			t.Fatalf("seed %d: hash: %v", seed, err)
		}
		h2, err := req.CanonicalHash()
		if err != nil || h1 != h2 {
			t.Fatalf("seed %d: hash unstable (%v)", seed, err)
		}

		cold, err := service.Execute(&req)
		if err != nil {
			t.Fatalf("seed %d: Execute: %v", seed, err)
		}
		again, err := service.Execute(&req)
		if err != nil {
			t.Fatalf("seed %d: Execute replay: %v", seed, err)
		}
		if !bytes.Equal(cold, again) {
			t.Errorf("seed %d: two evaluations differ", seed)
		}

		// Fill the cache, then hit it: the hit must be the cold bytes.
		filled, hit, err := cache.GetOrFill(context.Background(), h1, func() ([]byte, error) {
			return service.Execute(&req)
		})
		if err != nil {
			t.Fatalf("seed %d: fill: %v", seed, err)
		}
		if hit {
			t.Errorf("seed %d: first fill reported a hit — seeded requests collided", seed)
		}
		if !bytes.Equal(filled, cold) {
			t.Errorf("seed %d: cache fill differs from direct evaluation", seed)
		}
		served, hit, err := cache.GetOrFill(context.Background(), h1, func() ([]byte, error) {
			t.Fatalf("seed %d: cache miss on replay", seed)
			return nil, nil
		})
		if err != nil || !hit {
			t.Fatalf("seed %d: replay not a hit (%v)", seed, err)
		}
		if !bytes.Equal(served, cold) {
			t.Errorf("seed %d: cached bytes != recomputed bytes", seed)
		}
	}

	// The generator must keep sweeping the whole space; if it narrows,
	// the property silently weakens.
	for _, kind := range []string{service.KindGen, service.KindSWarp, service.KindGenomes} {
		if kinds[kind] == 0 {
			t.Errorf("no %s cases among %d seeds", kind, cases)
		}
	}
	if sched == 0 {
		t.Errorf("no sched-campaign cases among %d seeds", cases)
	}
	if ckpt == 0 || adapt == 0 || faults == 0 {
		t.Errorf("coverage gap: ckpt=%d adapt=%d faults=%d", ckpt, adapt, faults)
	}
	t.Logf("100 seeds: %d gen / %d swarp / %d genomes / %d sched; %d ckpt, %d adapt, %d faults",
		kinds[service.KindGen], kinds[service.KindSWarp], kinds[service.KindGenomes], sched, ckpt, adapt, faults)
}
