// Package invariants is the simulator's property harness: machine-checked
// cross-layer invariants that every run — any workflow, any platform, any
// fault schedule — must satisfy, plus the trace-replay reconstruction that
// pins the observability layer (internal/metrics) to the event trace.
//
// The checks are deliberately redundant with the simulator's internal
// accounting: bytes flow through internal/storage's ServiceStats AND the
// metrics counters; occupancy is audited inside exec.Run (via
// storage.System.AuditCapacity, asserted at the end of every run) AND
// bounded here from the emitted snapshot against the configured capacity.
// Two independent accountings of the same quantity only stay equal while
// both are right, which is what makes the harness a tripwire rather than a
// tautology.
package invariants

import (
	"fmt"

	"bbwfsim/internal/core"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/workflow"
)

// RebuildPhases replays the event trace and reconstructs the task-level
// metric families — task_phase_seconds_total, task_wait_seconds_total,
// task_aborted_seconds_total, tasks_completed_total — performing the same
// floating-point operations in the same order as the executor's live
// emission (exec.commitPhases on every task-end, exec.abortAttempt on
// every task-fail). The returned snapshot therefore matches the run's
// emitted snapshot bitwise on those families, including under retries,
// lineage re-execution, and fallbacks; any difference means the metrics
// layer and the trace disagree about what happened.
func RebuildPhases(tr *trace.Trace, wf *workflow.Workflow) *metrics.Snapshot {
	col := metrics.New(tr.PlatformName, tr.WorkflowName)
	type attemptState struct {
		ready, started, readDone, computeDone float64
	}
	states := map[string]*attemptState{}
	state := func(id string) *attemptState {
		if s := states[id]; s != nil {
			return s
		}
		s := &attemptState{}
		states[id] = s
		return s
	}
	name := func(id string) string {
		if r := tr.Lookup(id); r != nil && r.Name != "" {
			return r.Name
		}
		return id
	}
	for _, ev := range tr.Events() {
		if ev.TaskID == "" {
			continue
		}
		s := state(ev.TaskID)
		switch ev.Kind {
		case trace.TaskReady:
			s.ready = ev.Time
		case trace.TaskStart:
			s.started = ev.Time
		case trace.ComputeStart:
			// The executor stamps ReadDoneAt and records compute-start at
			// the same instant, so this event time IS the record's value.
			s.readDone = ev.Time
		case trace.ComputeEnd:
			s.computeDone = ev.Time
		case trace.TaskFail:
			// Every abort charges now − StartedAt to the aborted counter
			// and is followed by a task-fail record at that same instant.
			col.Add(metrics.TaskAbortedSecondsTotal,
				metrics.Key{Task: name(ev.TaskID)}, ev.Time-s.started)
		case trace.TaskEnd:
			n := name(ev.TaskID)
			kind := workflow.KindCompute
			if t := wf.Task(ev.TaskID); t != nil {
				kind = t.Kind()
			}
			switch kind {
			case workflow.KindStageIn:
				col.Add(metrics.TaskPhaseSecondsTotal,
					metrics.Key{Task: n, Phase: metrics.PhaseStageIn}, ev.Time-s.started)
			case workflow.KindStageOut:
				col.Add(metrics.TaskPhaseSecondsTotal,
					metrics.Key{Task: n, Phase: metrics.PhaseStageOut}, ev.Time-s.started)
			default:
				col.Add(metrics.TaskPhaseSecondsTotal,
					metrics.Key{Task: n, Phase: metrics.PhaseRead}, s.readDone-s.started)
				col.Add(metrics.TaskPhaseSecondsTotal,
					metrics.Key{Task: n, Phase: metrics.PhaseCompute}, s.computeDone-s.readDone)
				col.Add(metrics.TaskPhaseSecondsTotal,
					metrics.Key{Task: n, Phase: metrics.PhaseWrite}, ev.Time-s.computeDone)
			}
			col.Add(metrics.TaskWaitSecondsTotal, metrics.Key{Task: n}, s.started-s.ready)
			col.Add(metrics.TasksCompletedTotal, metrics.Key{Task: n}, 1)
		}
	}
	return col.Snapshot()
}

// taskFamilies are the metric families RebuildPhases reconstructs.
var taskFamilies = map[string]bool{
	metrics.TaskPhaseSecondsTotal:   true,
	metrics.TaskWaitSecondsTotal:    true,
	metrics.TaskAbortedSecondsTotal: true,
	metrics.TasksCompletedTotal:     true,
}

// spanEps is the relative tolerance for telescoping-sum identities: phase
// durations are differences of the same timestamps a task's span is, so
// they cancel exactly in real arithmetic but may differ by a few ulps in
// floats.
const spanEps = 1e-9

// Check validates every cross-layer invariant of one run result against
// the configuration that produced it and returns the violations (empty
// means the run is consistent). The workflow must be the one the run
// executed.
//
// Invariants, in order:
//  1. trace timestamps are non-negative and monotonically non-decreasing;
//  2. per-tier byte conservation: the metrics layer's storage_bytes_total
//     equals the storage manager's independent ServiceStats tallies, for
//     the burst-buffer tiers and the PFS separately (exact — both sides
//     accumulate the same integral file sizes);
//  3. occupancy: every service's storage_peak_bytes high-water mark is
//     within its configured capacity (capacity 0 = unbounded; the in-run
//     cross-check of the same accounting is storage.System.AuditCapacity,
//     which exec.Run asserts before returning);
//  4. per-task phase sums telescope to the task's span (within spanEps);
//  5. the snapshot's kernel observations match the result: makespan gauge,
//     event count, and fault tallies;
//  6. the task-level metric families equal the trace-replay reconstruction
//     (RebuildPhases) bitwise, in both directions;
//  7. checkpoint/restart consistency (checkCkpt): every restart-from
//     references a snapshot replica durable at the restart instant, each
//     restart recovers at most the compute its task lost to aborts,
//     recovered-seconds counters match the trace, and checkpoint bytes
//     never exceed the storage traffic they are a part of;
//  8. adaptation consistency (checkAdapt): spilled and replicated bytes
//     never exceed the read traffic of the tier they left or the PFS write
//     traffic they became — adaptation copies ride the same storage
//     manager as workflow data, and the adapt event tallies (spills,
//     replications, fallbacks) match the trace through invariant 5.
func Check(cfg platform.Config, wf *workflow.Workflow, res *core.Result) []string {
	var v []string
	violation := func(format string, args ...any) {
		v = append(v, fmt.Sprintf(format, args...))
	}
	snap := res.Metrics
	if snap == nil {
		return []string{"result carries no metrics snapshot"}
	}

	// 1. Monotone virtual time.
	prev := 0.0
	for i, ev := range res.Trace.Events() {
		if ev.Time < 0 {
			violation("event %d (%s) at negative time %g", i, ev.Kind, ev.Time)
		}
		if ev.Time < prev {
			violation("event %d (%s) at %g precedes event %d at %g: virtual time ran backwards",
				i, ev.Kind, ev.Time, i-1, prev)
		}
		prev = ev.Time
	}

	// 2. Byte conservation, metrics vs. storage manager.
	bbBytes, pfsBytes := 0.0, 0.0
	for _, s := range snap.Counters {
		if s.Family != metrics.StorageBytesTotal {
			continue
		}
		if s.Tier == string(storage.KindPFS) {
			pfsBytes += s.Value
		} else {
			bbBytes += s.Value
		}
	}
	wantBB := float64(res.BB.BytesRead + res.BB.BytesWritten)
	wantPFS := float64(res.PFS.BytesRead + res.PFS.BytesWritten)
	if bbBytes != wantBB { //bbvet:allow float-compare -- integral byte counts: both tallies sum the same whole-byte file sizes, so any difference is an accounting bug
		violation("BB bytes: metrics counted %g, storage manager counted %g", bbBytes, wantBB)
	}
	if pfsBytes != wantPFS { //bbvet:allow float-compare -- integral byte counts: both tallies sum the same whole-byte file sizes, so any difference is an accounting bug
		violation("PFS bytes: metrics counted %g, storage manager counted %g", pfsBytes, wantPFS)
	}

	// 3. Occupancy high-water marks within configured capacity.
	for _, g := range snap.Gauges {
		if g.Family != metrics.StoragePeakBytes {
			continue
		}
		cap := cfg.BB.Capacity
		if g.Service == "pfs" {
			cap = cfg.PFS.Capacity
		}
		if cap > 0 && g.Value > float64(cap) {
			violation("service %s peak occupancy %g bytes exceeds configured capacity %g",
				g.Service, g.Value, float64(cap))
		}
	}

	// 4. Phase sums telescope to task spans.
	for _, r := range res.Trace.Records() {
		span := r.FinishedAt - r.StartedAt
		sum := (r.ReadDoneAt - r.StartedAt) + (r.ComputeDone - r.ReadDoneAt) + (r.FinishedAt - r.ComputeDone)
		diff := sum - span
		if diff < 0 {
			diff = -diff
		}
		tol := spanEps * (1 + span)
		if diff > tol {
			violation("task %s: phase sum %g differs from span %g by %g", r.TaskID, sum, span, diff)
		}
	}

	// 5. Kernel observations match the result.
	if ms, ok := snap.Gauge(metrics.MakespanSeconds, metrics.Key{}); !ok || ms != res.Makespan { //bbvet:allow float-compare -- the gauge is set from the same tr.Makespan() value the result carries; exact identity is the contract
		violation("makespan gauge %g != result makespan %g", ms, res.Makespan)
	}
	if ev := snap.Counter(metrics.SimEventsTotal, metrics.Key{}); ev != float64(res.Events) { //bbvet:allow float-compare -- both sides are the same integer event count
		violation("sim_events_total %g != result event count %d", ev, res.Events)
	}
	faultPairs := []struct {
		family string
		want   int
	}{
		{metrics.FaultTaskFailuresTotal, res.Faults.TaskFailures},
		{metrics.FaultRetriesTotal, res.Faults.Retries},
		{metrics.FaultNodeFailuresTotal, res.Faults.NodeFailures},
		{metrics.FaultBBRejectionsTotal, res.Faults.BBRejections},
		{metrics.FaultFallbacksTotal, res.Faults.Fallbacks},
		{metrics.FaultDegradeWindowsTotal, res.Faults.DegradeWindows},
		{metrics.CkptCommitsTotal, res.Faults.CkptCommits},
		{metrics.CkptDrainsTotal, res.Faults.CkptDrains},
		{metrics.CkptLossesTotal, res.Faults.CkptLosses},
		{metrics.CkptRestartsTotal, res.Faults.CkptRestarts},
		{metrics.AdaptSpillsTotal, res.Faults.AdaptSpills},
		{metrics.AdaptReplicationsTotal, res.Faults.AdaptReplications},
		{metrics.AdaptFallbacksTotal, res.Faults.AdaptFallbacks},
	}
	for _, p := range faultPairs {
		if got := snap.Counter(p.family, metrics.Key{}); got != float64(p.want) { //bbvet:allow float-compare -- both sides are the same integer event count
			violation("%s = %g, result counted %d", p.family, got, p.want)
		}
	}

	// 7. Checkpoint/restart consistency: restarts reference durable
	// snapshots, recovered compute is bounded by aborted compute, and
	// checkpoint traffic is a subset of storage traffic (ckpt.go).
	checkCkpt(snap, res, violation)

	// 8. Adaptation consistency: spill/replication traffic is a subset of
	// the storage traffic it moved through (adapt.go).
	checkAdapt(snap, violation)

	// 6. Task families equal the trace-replay reconstruction bitwise.
	rebuilt := RebuildPhases(res.Trace, wf)
	for _, s := range rebuilt.Counters {
		if got := snap.Counter(s.Family, s.Key); got != s.Value { //bbvet:allow float-compare -- bitwise identity is the reconstruction contract: same float ops in the same order
			violation("reconstructed %s%+v = %g, snapshot has %g", s.Family, s.Key, s.Value, got)
		}
	}
	for _, s := range snap.Counters {
		if !taskFamilies[s.Family] {
			continue
		}
		if got := rebuilt.Counter(s.Family, s.Key); got != s.Value { //bbvet:allow float-compare -- bitwise identity is the reconstruction contract: same float ops in the same order
			violation("snapshot %s%+v = %g, reconstruction has %g", s.Family, s.Key, s.Value, got)
		}
	}
	return v
}
