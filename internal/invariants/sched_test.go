package invariants

import (
	"bytes"
	"testing"

	"bbwfsim/internal/metrics"
	"bbwfsim/internal/sched"
	"bbwfsim/internal/trace"
)

// TestSchedPropertyHarness drives 200 seeded random campaigns — cluster ×
// policy × contended synthetic workload, ~1/3 with a node-failure
// campaign on top — through the multi-tenant scheduler and checks every
// scheduling invariant on each result: no node or BB oversubscription at
// any virtual instant, no admitted job starves, conservation of
// submitted = completed + failed + rejected across trace, stats, and
// counters, and the bitwise snapshot identities. Every 25th campaign is
// additionally replayed and must reproduce its snapshot byte-for-byte.
func TestSchedPropertyHarness(t *testing.T) {
	const cases = 200
	var withFaults, bounded int
	var nodeFails, rejected, failed, completed int
	polSeen := map[string]bool{}
	for seed := int64(1); seed <= cases; seed++ {
		cfg, err := SchedCase(seed)
		if err != nil {
			t.Fatalf("SchedCase(%d): %v", seed, err)
		}
		if cfg.Faults != nil {
			withFaults++
		}
		if cfg.Cluster.BBCapacity > 0 {
			bounded++
		}
		polSeen[cfg.Policy] = true

		res, err := sched.Run(cfg)
		if err != nil {
			t.Fatalf("SchedCase(%d) %s: Run: %v", seed, cfg.Policy, err)
		}
		for _, v := range CheckSched(cfg, res) {
			t.Errorf("seed %d (%s): %s", seed, cfg.Policy, v)
		}
		nodeFails += res.NodeFailures
		rejected += res.Rejected
		failed += res.Failed
		completed += res.Completed

		if seed%25 == 0 {
			replay, err := sched.Run(cfg)
			if err != nil {
				t.Fatalf("SchedCase(%d) %s: replay: %v", seed, cfg.Policy, err)
			}
			a, err := res.Metrics.JSON()
			if err != nil {
				t.Fatalf("seed %d: JSON: %v", seed, err)
			}
			b, err := replay.Metrics.JSON()
			if err != nil {
				t.Fatalf("seed %d: JSON: %v", seed, err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("seed %d (%s): replayed snapshot differs from original", seed, cfg.Policy)
			}
		}
	}
	// Guard against generator drift silently hollowing out the harness.
	if withFaults < 40 {
		t.Errorf("only %d/%d campaigns drew a fault plan; generator coverage degraded", withFaults, cases)
	}
	if bounded < 130 {
		t.Errorf("only %d/%d campaigns drew a bounded BB; generator coverage degraded", bounded, cases)
	}
	for _, p := range sched.Policies() {
		if !polSeen[p] {
			t.Errorf("no campaign drew policy %s; generator coverage degraded", p)
		}
	}
	if nodeFails < 20 {
		t.Errorf("only %d node failures across %d campaigns; harness coverage degraded", nodeFails, cases)
	}
	if rejected < 20 {
		t.Errorf("only %d rejected jobs; harness coverage degraded", rejected)
	}
	if failed < 10 {
		t.Errorf("only %d failed jobs; harness coverage degraded", failed)
	}
	if completed < 5000 {
		t.Errorf("only %d completed jobs; harness coverage degraded", completed)
	}
}

// TestCheckSchedDetectsTampering makes sure CheckSched is a tripwire,
// not a tautology: corrupting any of the quantities it validates — the
// snapshot counters, the per-job stats, the trace details, the outcome
// tallies, the makespan — must produce a violation.
func TestCheckSchedDetectsTampering(t *testing.T) {
	// Scan seeds deterministically for a campaign that completed, rejected,
	// and failed jobs, so every tamper target exists.
	var (
		cfg sched.Config
		res *sched.Result
	)
	for seed := int64(1); ; seed++ {
		if seed > 200 {
			t.Fatal("no SchedCase seed in 1..200 completed, rejected, and failed jobs at once")
		}
		c, err := SchedCase(seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sched.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if r.Completed > 0 && r.Rejected > 0 && r.Failed > 0 {
			cfg, res = c, r
			break
		}
	}
	if v := CheckSched(cfg, res); len(v) != 0 {
		t.Fatalf("clean campaign reported violations: %v", v)
	}

	tamper := func(name string, mutate func()) {
		t.Helper()
		mutate()
		if v := CheckSched(cfg, res); len(v) == 0 {
			t.Errorf("%s: tampering went undetected", name)
		}
	}
	findCounter := func(family, op string) *metrics.Sample {
		t.Helper()
		for i := range res.Metrics.Counters {
			c := &res.Metrics.Counters[i]
			if c.Family == family && c.Op == op {
				return c
			}
		}
		t.Fatalf("snapshot has no %s{%s} counter", family, op)
		return nil
	}

	completedCtr := findCounter(metrics.SchedJobsTotal, metrics.OutcomeCompleted)
	orig := completedCtr.Value
	tamper("inflated sched_jobs_total{completed}", func() { completedCtr.Value += 1 })
	completedCtr.Value = orig

	waitCtr := findCounter(metrics.SchedWaitSecondsTotal, "")
	orig = waitCtr.Value
	tamper("skewed sched_wait_seconds_total", func() { waitCtr.Value += 0.125 })
	waitCtr.Value = orig

	var done *sched.JobStat
	for i := range res.Jobs {
		if res.Jobs[i].Outcome == sched.Completed {
			done = &res.Jobs[i]
			break
		}
	}
	origWait := done.Wait
	tamper("skewed per-job wait", func() { done.Wait += 0.125 })
	done.Wait = origWait

	origOutcome := done.Outcome
	tamper("flipped job outcome", func() { done.Outcome = sched.Failed })
	done.Outcome = origOutcome

	events := res.Trace.Events()
	start := -1
	for i := range events {
		if events[i].Kind == trace.JobStart {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatal("campaign trace has no job-start event")
	}
	origDetail := events[start].Detail
	tamper("oversubscribed start detail", func() {
		events[start].Detail = "nodes=999 bb=0"
	})
	events[start].Detail = origDetail

	origMakespan := res.Makespan
	tamper("shifted makespan", func() { res.Makespan *= 1.5 })
	res.Makespan = origMakespan

	origEvents := res.Events
	tamper("dropped kernel events", func() { res.Events -= 1 })
	res.Events = origEvents

	if v := CheckSched(cfg, res); len(v) != 0 {
		t.Fatalf("restored campaign still reports violations: %v", v)
	}
}
