package invariants

import (
	"strconv"
	"strings"

	"bbwfsim/internal/core"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/trace"
)

// checkCkpt replays the checkpoint/restart events of one run and validates
// the recovery invariants against the emitted snapshot:
//
//	a. every restart-from references a snapshot replica that is live at the
//	   restart instant — committed (or drained to the PFS) and not since
//	   destroyed by a fault. The replay's live set is a superset of the
//	   engine's (rotation evictions record no event), so a restart from a
//	   truly dead replica always trips this;
//	b. each restart recovers at most the compute its task has lost to
//	   aborted attempts so far — a checkpoint cannot recover work that was
//	   never executed;
//	c. the recovered-seconds counters sum to the progress marks the
//	   restart-from events carry (the %g details round-trip exactly; only
//	   the regrouping by tier needs a tolerance);
//	d. checkpoint traffic is a subset of storage traffic: ckpt_bytes_total
//	   never exceeds storage_bytes_total for any (tier, op) — snapshots
//	   move through the same storage manager as workflow data, so byte
//	   conservation (invariant 2) covers them too.
func checkCkpt(snap *metrics.Snapshot, res *core.Result, violation func(string, ...any)) {
	// Live snapshot replicas: file -> set of service names. Drains add the
	// PFS replica; losses remove the named one.
	live := map[string]map[string]bool{}
	started := map[string]float64{} // task -> current attempt's start
	aborted := map[string]float64{} // task -> aborted-attempt seconds so far
	recovered := 0.0                // Σ restart progress marks, event order

	for i, ev := range res.Trace.Events() {
		switch ev.Kind {
		case trace.TaskStart:
			started[ev.TaskID] = ev.Time
		case trace.TaskFail:
			aborted[ev.TaskID] += ev.Time - started[ev.TaskID]
		case trace.CkptCommit:
			file, svc, _, ok := parseCkptDetail(ev.Detail)
			if !ok {
				violation("event %d: malformed ckpt-commit detail %q", i, ev.Detail)
				continue
			}
			if live[file] == nil {
				live[file] = map[string]bool{}
			}
			live[file][svc] = true
		case trace.CkptDrain:
			file, _, _, ok := parseCkptDetail(strings.TrimSuffix(ev.Detail, "->pfs"))
			if !ok || !strings.HasSuffix(ev.Detail, "->pfs") {
				violation("event %d: malformed ckpt-drain detail %q", i, ev.Detail)
				continue
			}
			if live[file] == nil {
				violation("event %d: drain of never-committed snapshot %q", i, file)
				continue
			}
			live[file]["pfs"] = true
		case trace.CkptLost:
			file, svc, _, ok := parseCkptDetail(ev.Detail)
			if !ok {
				violation("event %d: malformed ckpt-lost detail %q", i, ev.Detail)
				continue
			}
			delete(live[file], svc)
		case trace.RestartFrom:
			file, svc, p, ok := parseCkptDetail(ev.Detail)
			if !ok {
				violation("event %d: malformed restart-from detail %q", i, ev.Detail)
				continue
			}
			if !live[file][svc] {
				violation("event %d: task %s restarted from %s@%s, which is not durable at t=%g",
					i, ev.TaskID, file, svc, ev.Time)
			}
			if max := aborted[ev.TaskID]; p > max+spanEps*(1+max) {
				violation("event %d: task %s recovered %g compute seconds but only lost %g to aborts",
					i, ev.TaskID, p, max)
			}
			recovered += p
		}
	}

	total := 0.0
	for _, s := range snap.Counters {
		if s.Family == metrics.CkptRecoveredSecondsTotal {
			total += s.Value
		}
	}
	if diff := total - recovered; diff > spanEps*(1+recovered) || -diff > spanEps*(1+recovered) {
		violation("ckpt_recovered_seconds_total sums to %g, restart-from events carry %g", total, recovered)
	}

	for _, s := range snap.Counters {
		if s.Family != metrics.CkptBytesTotal {
			continue
		}
		storageBytes := snap.Counter(metrics.StorageBytesTotal, s.Key)
		if s.Value > storageBytes {
			violation("ckpt_bytes_total%+v = %g exceeds storage_bytes_total %g: checkpoint traffic bypassed the storage manager",
				s.Key, s.Value, storageBytes)
		}
	}
}

// parseCkptDetail splits a checkpoint event detail of the form
// "file@service" or "file@service p=<progress>". Service names may
// themselves contain '@' ("bb@node003"), so the split is at the first '@'
// (snapshot file IDs never contain one) and the last " p=".
func parseCkptDetail(detail string) (file, svc string, p float64, ok bool) {
	file, rest, found := strings.Cut(detail, "@")
	if !found || file == "" || rest == "" {
		return "", "", 0, false
	}
	svc = rest
	if at := strings.LastIndex(rest, " p="); at >= 0 {
		svc = rest[:at]
		var err error
		p, err = strconv.ParseFloat(rest[at+len(" p="):], 64)
		if err != nil || svc == "" {
			return "", "", 0, false
		}
	}
	return file, svc, p, true
}
