package invariants

import (
	"bytes"
	"testing"

	"bbwfsim/internal/core"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/experiments"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/swarp"
	"bbwfsim/internal/workflow"
)

// runAndCheck executes one configuration and asserts every cross-layer
// invariant, returning the result for further assertions.
func runAndCheck(t *testing.T, label string, cfg platform.Config, wf *workflow.Workflow, ro core.RunOptions) *core.Result {
	t.Helper()
	sim, err := core.NewSimulator(cfg)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	res, err := sim.Run(wf, ro)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	for _, v := range Check(cfg, wf, res) {
		t.Errorf("%s: %s", label, v)
	}
	return res
}

// TestConsistencySwarpFig10Setting rebuilds the phase breakdown from the
// event trace in the paper's Fig. 10 setting (one SWarp pipeline, 32 cores
// per task, intermediates in the BB) and requires exact agreement with the
// emitted snapshot on every profile × staged-fraction cell.
func TestConsistencySwarpFig10Setting(t *testing.T) {
	wf := swarp.MustNew(swarp.Params{Pipelines: 1, CoresPerTask: 32})
	for _, name := range []string{"cori-private", "cori-striped", "summit"} {
		cfg := platform.Presets(1)[name]
		for _, q := range []float64{0, 0.5, 1} {
			label := name
			res := runAndCheck(t, label, cfg, wf, core.RunOptions{StagedFraction: q, IntermediatesToBB: true})

			// The reconstruction must be non-trivial: one completion per
			// workflow task (no faults, so no re-executions).
			rebuilt := RebuildPhases(res.Trace, wf)
			total := 0.0
			for _, s := range rebuilt.Counters {
				if s.Family == metrics.TasksCompletedTotal {
					total += s.Value
				}
			}
			if int(total) != len(wf.Tasks()) {
				t.Errorf("%s at %g: reconstruction counted %g completions, workflow has %d tasks",
					name, q, total, len(wf.Tasks()))
			}
		}
	}
}

// TestConsistencyGenomesCaseStudy repeats the trace↔metrics consistency
// check in the 1000Genomes case-study setting (pre-placed inputs, 8
// nodes), fault-free and under a seeded fault campaign — the latter
// exercises retries, lineage re-execution, and aborted-attempt accounting
// in the reconstruction.
func TestConsistencyGenomesCaseStudy(t *testing.T) {
	wf := genomes.MustNew(genomes.Params{Chromosomes: 4})
	ro := core.RunOptions{PrePlaceInputs: true, StagedFraction: 1, IntermediatesToBB: true}
	for _, name := range []string{"cori-private", "summit"} {
		cfg := platform.Presets(8)[name]
		base := runAndCheck(t, name+" fault-free", cfg, wf, ro)

		inj, err := faults.New(faults.Config{
			Seed:        11,
			TaskCrash:   &faults.CrashProcess{Arrival: faults.Exp(base.Makespan / 8), Budget: 16},
			NodeFailure: &faults.NodeProcess{Arrival: faults.Exp(base.Makespan), MTTR: base.Makespan / 10, Budget: 2},
			BBReject:    &faults.RejectPolicy{Prob: 0.05},
		})
		if err != nil {
			t.Fatal(err)
		}
		fo := ro
		fo.Faults = inj
		fo.BBFallback = true
		fo.Retry = exec.RetryPolicy{MaxRetries: 60, BaseDelay: 2}
		fr := runAndCheck(t, name+" faulty", cfg, wf, fo)
		if fr.Faults.TaskFailures == 0 {
			t.Errorf("%s: fault campaign injected no task failures; consistency check under faults is vacuous", name)
		}
	}
}

// TestExperimentSnapshotSerialParallelInvariance runs the instrumented
// experiments in-process at -j 1 and -j 8 and requires the merged
// observability snapshots to be byte-identical — the runner's
// index-ordered fold must make worker count unobservable.
func TestExperimentSnapshotSerialParallelInvariance(t *testing.T) {
	for _, id := range []string{"fig10", "fig13", "resilience"} {
		e, ok := experiments.Find(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		collect := func(jobs int) []byte {
			t.Helper()
			var snaps []*metrics.Snapshot
			_, err := e.Run(experiments.Options{
				Quick: true, Jobs: jobs,
				Metrics: func(s *metrics.Snapshot) { snaps = append(snaps, s) },
			})
			if err != nil {
				t.Fatalf("%s at -j %d: %v", id, jobs, err)
			}
			merged := metrics.Merge(snaps)
			if merged == nil {
				t.Fatalf("%s at -j %d: no snapshot emitted", id, jobs)
			}
			b, err := merged.JSON()
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		if serial, fanned := collect(1), collect(8); !bytes.Equal(serial, fanned) {
			t.Errorf("%s: merged snapshot differs between -j 1 and -j 8", id)
		}
	}
}
