package invariants

import (
	"fmt"
	"math"

	"math/rand"

	"bbwfsim/internal/faults"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/sched"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workloads"
)

// SchedCase derives one randomized multi-tenant campaign configuration
// for the scheduling property harness: a cluster draw (node count, BB
// capacity — occasionally unbounded — and channel bandwidths), a policy
// draw over the full catalog, a seeded synthetic campaign contended
// enough that queues actually form, and a roughly one-in-three
// node-failure campaign on top. The draw uses a private rand stream
// (seed + 13·streamOffset), disjoint from RandomCase's, CkptCase's, and
// AdaptCase's, so all four harnesses replay bit-identically side by
// side. BB demands are whole-MiB multiples (workloads.Campaign), so
// every reservation tally below is an exact float sum.
func SchedCase(seed int64) (sched.Config, error) {
	rng := rand.New(rand.NewSource(seed + 13*streamOffset))

	cl := sched.Cluster{
		Nodes:       4 + rng.Intn(29),
		BBBandwidth: units.Bandwidth(1+rng.Intn(8)) * units.Bandwidth(units.GiB),
	}
	cl.PFSBandwidth = cl.BBBandwidth / units.Bandwidth(2+rng.Intn(7))
	if rng.Intn(6) > 0 {
		// Bounded BB: small enough that wide reservations queue (or are
		// rejected outright). The zero draw keeps the unbounded branch —
		// BBCapacity 0 disables reservation accounting — covered too.
		cl.BBCapacity = units.Bytes(8+rng.Intn(121)) * units.GiB
	}

	maxNodes := 1 + rng.Intn(cl.Nodes)
	if maxNodes > 16 {
		maxNodes = 16
	}
	spec := workloads.CampaignSpec{
		Jobs:        40 + rng.Intn(111),
		Seed:        seed,
		ArrivalMean: 5 + 95*rng.Float64(),
		RuntimeMean: 60 + 540*rng.Float64(),
		MaxNodes:    maxNodes,
		BBMean:      units.Bytes(1+rng.Intn(4)) * units.GiB,
	}
	jobs, err := workloads.Campaign(spec)
	if err != nil {
		return sched.Config{}, err
	}

	pols := sched.Policies()
	cfg := sched.Config{
		Cluster: cl,
		Policy:  pols[rng.Intn(len(pols))],
		Jobs:    jobs,
	}
	if rng.Intn(3) == 0 {
		// Outage inter-arrivals scaled to the submission horizon so a few
		// failures land while the campaign is actually running; a bounded
		// budget so every campaign drains.
		horizon := spec.ArrivalMean * float64(spec.Jobs) / float64(3+rng.Intn(10))
		arrival := faults.Exp(horizon)
		if rng.Intn(4) == 0 {
			arrival = faults.Wei(horizon, 0.7+rng.Float64())
		}
		cfg.Faults = &sched.FaultPlan{
			Seed: seed + 17*streamOffset,
			Node: &faults.NodeProcess{
				Arrival: arrival,
				MTTR:    60 + 540*rng.Float64(),
				Budget:  1 + rng.Intn(8),
			},
		}
	}
	return cfg, nil
}

// differs reports whether two floats are not bitwise-equal as values
// (NaN counts as differing), without a float equality operator. The
// scheduling identities below replay the very same operation sequence
// the scheduler executed — same operands, same order — so agreement is
// exact, never approximate.
func differs(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return true
	}
	return a < b || a > b
}

// schedReplay is one job's state machine during the trace replay.
type schedReplay struct {
	nodes              int
	bb                 float64
	submitted          bool
	started            bool
	terminal           bool
	submitAt, startAt  float64
	runSeen, stageSeen bool
}

// CheckSched validates a campaign result against the multi-tenant
// scheduling invariants, replaying the trace event-by-event:
//
//  1. capacity — the concurrently held node and BB-reservation totals
//     never exceed the cluster's at any virtual instant, at least one
//     node is always up, and both pools drain back to exactly zero;
//  2. lifecycle — every job's events run submit → (reject | start →
//     run → stage-out → end), failures only after start, one terminal
//     event per job, and virtual time never runs backwards;
//  3. conservation — submitted = completed + failed + rejected, and the
//     trace tallies, the per-job stats, the result counters, and the
//     sched_jobs_total series all agree on every term;
//  4. no starvation — every admitted job reaches a terminal outcome
//     (the scheduler additionally hard-errors on deadlock) and no
//     completed job's wait exceeds the campaign makespan;
//  5. accounting identities — per-job wait/response/bounded-slowdown
//     recompute exactly from the lifecycle instants, and the snapshot's
//     sched_* counters, wait histogram, peak gauges, makespan gauge,
//     and sim_events_total reproduce bit-for-bit from the trace replay
//     and the per-job stats.
func CheckSched(cfg sched.Config, res *sched.Result) []string {
	var violations []string
	violation := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	if res == nil || res.Trace == nil || res.Metrics == nil {
		violation("result is missing its trace or metrics snapshot")
		return violations
	}
	cl := cfg.Cluster
	snap := res.Metrics

	stats := make(map[string]*sched.JobStat, len(res.Jobs))
	for i := range res.Jobs {
		if _, dup := stats[res.Jobs[i].ID]; dup {
			violation("duplicate job %s in result stats", res.Jobs[i].ID)
		}
		stats[res.Jobs[i].ID] = &res.Jobs[i]
	}

	// Invariants 1–2: replay the trace. Held-resource arithmetic repeats
	// the scheduler's own (whole-MiB reservations, integer node counts),
	// so the running totals and peaks are exact. Held nodes are bounded
	// by the cluster size, not the up-node count: at a failure instant
	// the node-fail event precedes the job-fail release.
	var (
		heldNodes, peakNodes           int
		heldBB, peakBB                 float64
		upNodes                        = cl.Nodes
		prev                           float64
		tSubmitted, tStarted           int
		tCompleted, tFailed, tRejected int
		tNodeFails, tNodeRepairs       int
		waitSum, respSum, sldSum       float64
	)
	replay := make(map[string]*schedReplay)
	for i, ev := range res.Trace.Events() {
		if ev.Time < prev {
			violation("event %d (%s %s): time %g runs backwards from %g", i, ev.Kind, ev.TaskID, ev.Time, prev)
		}
		prev = ev.Time
		j := replay[ev.TaskID]
		switch ev.Kind {
		case trace.JobSubmit:
			if j != nil {
				violation("job %s submitted twice", ev.TaskID)
				continue
			}
			r := &schedReplay{submitted: true, submitAt: ev.Time}
			if n, err := fmt.Sscanf(ev.Detail, "nodes=%d bb=%f", &r.nodes, &r.bb); n != 2 || err != nil {
				violation("job %s: unparseable submit detail %q", ev.TaskID, ev.Detail)
				continue
			}
			replay[ev.TaskID] = r
			tSubmitted++
		case trace.JobReject:
			if j == nil || !j.submitted || j.started || j.terminal {
				violation("job %s rejected without a pending submission", ev.TaskID)
				continue
			}
			j.terminal = true
			tRejected++
		case trace.JobStart:
			if j == nil || j.started || j.terminal {
				violation("job %s started without a pending submission", ev.TaskID)
				continue
			}
			var n int
			var bb float64
			if c, err := fmt.Sscanf(ev.Detail, "nodes=%d bb=%f", &n, &bb); c != 2 || err != nil {
				violation("job %s: unparseable start detail %q", ev.TaskID, ev.Detail)
				continue
			}
			if n != j.nodes || differs(bb, j.bb) {
				violation("job %s: start demands (%d nodes, %g BB) differ from submitted (%d, %g)",
					ev.TaskID, n, bb, j.nodes, j.bb)
			}
			j.started = true
			j.startAt = ev.Time
			tStarted++
			heldNodes += j.nodes
			heldBB += j.bb
			if heldNodes > peakNodes {
				peakNodes = heldNodes
			}
			if heldBB > peakBB {
				peakBB = heldBB
			}
			if heldNodes > cl.Nodes {
				violation("t=%g: %d nodes held on a %d-node cluster (oversubscribed starting %s)",
					ev.Time, heldNodes, cl.Nodes, ev.TaskID)
			}
			if cl.BBCapacity > 0 && heldBB > float64(cl.BBCapacity) {
				violation("t=%g: %g BB bytes reserved of %g capacity (oversubscribed starting %s)",
					ev.Time, heldBB, float64(cl.BBCapacity), ev.TaskID)
			}
		case trace.JobRun:
			if j == nil || !j.started || j.terminal || j.runSeen {
				violation("job %s: run phase out of order", ev.TaskID)
				continue
			}
			j.runSeen = true
		case trace.JobStageOut:
			if j == nil || !j.runSeen || j.terminal || j.stageSeen {
				violation("job %s: stage-out phase out of order", ev.TaskID)
				continue
			}
			j.stageSeen = true
		case trace.JobEnd:
			if j == nil || !j.stageSeen || j.terminal {
				violation("job %s ended out of order", ev.TaskID)
				continue
			}
			j.terminal = true
			tCompleted++
			heldNodes -= j.nodes
			heldBB -= j.bb
			// Commit the accounting sums in completion order — the order
			// the scheduler added them — so the counter identities below
			// are bitwise.
			if st := stats[ev.TaskID]; st != nil {
				waitSum += st.Wait
				respSum += st.Response
				sldSum += st.Slowdown
			} else {
				violation("job %s ended in the trace but has no result stat", ev.TaskID)
			}
		case trace.JobFail:
			if j == nil || !j.started || j.terminal {
				violation("job %s failed without running", ev.TaskID)
				continue
			}
			j.terminal = true
			tFailed++
			heldNodes -= j.nodes
			heldBB -= j.bb
		case trace.NodeFail:
			tNodeFails++
			upNodes--
			if upNodes < 1 {
				violation("t=%g: node failure left %d nodes up (one must survive)", ev.Time, upNodes)
			}
		case trace.NodeRepair:
			tNodeRepairs++
			upNodes++
			if upNodes > cl.Nodes {
				violation("t=%g: repair raised up-node count to %d of %d", ev.Time, upNodes, cl.Nodes)
			}
		}
	}
	if heldNodes != 0 || differs(heldBB, 0) {
		violation("campaign drained holding %d nodes and %g BB bytes (want zero)", heldNodes, heldBB)
	}
	if tNodeRepairs > tNodeFails {
		violation("%d node repairs exceed %d node failures", tNodeRepairs, tNodeFails)
	}

	// Invariant 3: conservation across the trace, the result tallies, the
	// per-job stats, and the metrics counters.
	if tSubmitted != tCompleted+tFailed+tRejected {
		violation("trace conservation: %d submitted != %d completed + %d failed + %d rejected",
			tSubmitted, tCompleted, tFailed, tRejected)
	}
	if res.Submitted != res.Completed+res.Failed+res.Rejected {
		violation("result conservation: %d submitted != %d completed + %d failed + %d rejected",
			res.Submitted, res.Completed, res.Failed, res.Rejected)
	}
	if tSubmitted != res.Submitted || tCompleted != res.Completed ||
		tFailed != res.Failed || tRejected != res.Rejected {
		violation("trace tallies (%d/%d/%d/%d submitted/completed/failed/rejected) differ from result (%d/%d/%d/%d)",
			tSubmitted, tCompleted, tFailed, tRejected,
			res.Submitted, res.Completed, res.Failed, res.Rejected)
	}
	if len(res.Jobs) != res.Submitted {
		violation("result has %d job stats for %d submitted jobs", len(res.Jobs), res.Submitted)
	}
	if tNodeFails != res.NodeFailures {
		violation("trace has %d node-fail events, result counts %d", tNodeFails, res.NodeFailures)
	}
	outcomes := map[string]int{
		metrics.OutcomeSubmitted: res.Submitted,
		metrics.OutcomeCompleted: res.Completed,
		metrics.OutcomeFailed:    res.Failed,
		metrics.OutcomeRejected:  res.Rejected,
	}
	for _, op := range []string{metrics.OutcomeSubmitted, metrics.OutcomeCompleted,
		metrics.OutcomeFailed, metrics.OutcomeRejected} {
		got := snap.Counter(metrics.SchedJobsTotal, metrics.Key{Op: op})
		if differs(got, float64(outcomes[op])) {
			violation("sched_jobs_total{%s} = %g, result says %d", op, got, outcomes[op])
		}
	}

	// Invariants 4–5: per-job terminal outcomes and the exact accounting
	// identities. The recomputations repeat the scheduler's expressions
	// on the same lifecycle instants, so every comparison is bitwise.
	statCounts := map[sched.Outcome]int{}
	for i := range res.Jobs {
		st := &res.Jobs[i]
		statCounts[st.Outcome]++
		r := replay[st.ID]
		if r == nil || !r.submitted {
			violation("job %s has a result stat but never appears in the trace", st.ID)
			continue
		}
		switch st.Outcome {
		case sched.Rejected:
			if r.started {
				violation("job %s marked rejected but started in the trace", st.ID)
			}
			continue
		case sched.Completed, sched.Failed:
			if !r.started || !r.terminal {
				violation("job %s marked %s but the trace shows started=%v terminal=%v — it starved",
					st.ID, st.Outcome, r.started, r.terminal)
				continue
			}
		default:
			violation("job %s has no terminal outcome (%q): it starved in the queue", st.ID, st.Outcome)
			continue
		}
		if differs(st.Submit, r.submitAt) || differs(st.Start, r.startAt) {
			violation("job %s: stat instants (submit %g, start %g) differ from trace (%g, %g)",
				st.ID, st.Submit, st.Start, r.submitAt, r.startAt)
		}
		if st.Start < st.Submit || st.End < st.Start {
			violation("job %s: lifecycle runs backwards (submit %g, start %g, end %g)",
				st.ID, st.Submit, st.Start, st.End)
		}
		if differs(st.Wait, st.Start-st.Submit) {
			violation("job %s: wait %g != start - submit = %g", st.ID, st.Wait, st.Start-st.Submit)
		}
		if st.Wait > res.Makespan {
			violation("job %s: wait %g exceeds the campaign makespan %g", st.ID, st.Wait, res.Makespan)
		}
		if st.Outcome == sched.Completed {
			if differs(st.Response, st.End-st.Submit) {
				violation("job %s: response %g != end - submit = %g", st.ID, st.Response, st.End-st.Submit)
			}
			// Bounded slowdown, threshold 10 s (sched's slowdownTau).
			sld := st.Response / math.Max(st.End-st.Start, 10)
			if sld < 1 {
				sld = 1
			}
			if differs(st.Slowdown, sld) {
				violation("job %s: slowdown %g != recomputed %g", st.ID, st.Slowdown, sld)
			}
		}
	}
	if statCounts[sched.Completed] != res.Completed || statCounts[sched.Failed] != res.Failed ||
		statCounts[sched.Rejected] != res.Rejected {
		violation("per-job outcomes (%d/%d/%d completed/failed/rejected) differ from result tallies (%d/%d/%d)",
			statCounts[sched.Completed], statCounts[sched.Failed], statCounts[sched.Rejected],
			res.Completed, res.Failed, res.Rejected)
	}

	// Snapshot identities: counters, the wait histogram, and the gauges
	// reproduce from the replay.
	for _, id := range []struct {
		family string
		want   float64
	}{
		{metrics.SchedWaitSecondsTotal, waitSum},
		{metrics.SchedResponseSecondsTotal, respSum},
		{metrics.SchedSlowdownTotal, sldSum},
		{metrics.SimEventsTotal, float64(res.Events)},
	} {
		if got := snap.Counter(id.family, metrics.Key{}); differs(got, id.want) {
			violation("%s = %g, replay says %g", id.family, got, id.want)
		}
	}
	for _, h := range snap.Histograms {
		if h.Family != metrics.SchedWaitSeconds {
			continue
		}
		if h.Count != uint64(res.Completed) {
			violation("sched_wait_seconds histogram observed %d waits for %d completed jobs", h.Count, res.Completed)
		}
		if differs(h.Sum, waitSum) {
			violation("sched_wait_seconds histogram sum %g, replay says %g", h.Sum, waitSum)
		}
	}
	gauges := []struct {
		family string
		want   float64
	}{
		{metrics.SchedNodesPeak, float64(peakNodes)},
		{metrics.SchedBBPeakBytes, peakBB},
		{metrics.MakespanSeconds, res.Makespan},
	}
	for _, g := range gauges {
		got, ok := snap.Gauge(g.family, metrics.Key{})
		if !ok {
			if res.Completed+res.Failed > 0 || g.family == metrics.MakespanSeconds {
				violation("snapshot has no %s gauge", g.family)
			}
			continue
		}
		if differs(got, g.want) {
			violation("%s = %g, replay says %g", g.family, got, g.want)
		}
	}
	if peakNodes > cl.Nodes {
		violation("peak node allocation %d exceeds the cluster's %d", peakNodes, cl.Nodes)
	}
	if cl.BBCapacity > 0 && peakBB > float64(cl.BBCapacity) {
		violation("peak BB reservation %g exceeds capacity %g", peakBB, float64(cl.BBCapacity))
	}
	return violations
}
