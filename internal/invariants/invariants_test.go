package invariants

import (
	"bytes"
	"fmt"
	"testing"

	"bbwfsim/internal/core"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/trace"
)

// TestPropertyHarness drives 220 seeded random cases — workflow structure ×
// file regime × platform profile × run options, ~40% with a calibrated
// fault campaign on top — through the full simulator and checks every
// cross-layer invariant on each result. Every 20th case is additionally
// replayed and must reproduce its observability snapshot byte-for-byte.
func TestPropertyHarness(t *testing.T) {
	const cases = 220
	var withFaults, constrained int
	for seed := int64(1); seed <= cases; seed++ {
		c, err := RandomCase(seed)
		if err != nil {
			t.Fatalf("RandomCase(%d): %v", seed, err)
		}
		if c.CrashDiv > 0 {
			withFaults++
		}
		if c.Platform.BB.Capacity > 0 {
			constrained++
		}

		run := func(faulty bool, baseline float64) *core.Result {
			t.Helper()
			ro := c.Opts
			if faulty {
				ro, err = c.FaultOptions(baseline)
				if err != nil {
					t.Fatalf("%s: FaultOptions: %v", c.Name, err)
				}
			}
			sim, err := core.NewSimulator(c.Platform)
			if err != nil {
				t.Fatalf("%s: NewSimulator: %v", c.Name, err)
			}
			res, err := sim.Run(c.Workflow, ro)
			if err != nil {
				t.Fatalf("%s (faulty=%v): Run: %v", c.Name, faulty, err)
			}
			for _, v := range Check(c.Platform, c.Workflow, res) {
				t.Errorf("%s (faulty=%v): %s", c.Name, faulty, v)
			}
			return res
		}

		res := run(false, 0)
		if c.CrashDiv > 0 {
			run(true, res.Makespan)
		}

		if seed%20 == 0 {
			replay := run(false, 0)
			a, err := res.Metrics.JSON()
			if err != nil {
				t.Fatalf("%s: JSON: %v", c.Name, err)
			}
			b, err := replay.Metrics.JSON()
			if err != nil {
				t.Fatalf("%s: JSON: %v", c.Name, err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("%s: replayed snapshot differs from original", c.Name)
			}
			if c.CrashDiv > 0 {
				fr := run(true, res.Makespan)
				fa, _ := fr.Metrics.JSON()
				fb, _ := run(true, res.Makespan).Metrics.JSON()
				if !bytes.Equal(fa, fb) {
					t.Errorf("%s: replayed fault campaign snapshot differs", c.Name)
				}
			}
		}
	}
	// Guard against generator drift silently hollowing out the harness.
	if withFaults < 30 {
		t.Errorf("only %d/%d cases drew a fault regime; generator coverage degraded", withFaults, cases)
	}
	if constrained < 30 {
		t.Errorf("only %d/%d cases drew a constrained BB; generator coverage degraded", constrained, cases)
	}
}

// TestCheckpointPropertyHarness drives 200 seeded checkpointed fault
// configs — the RandomCase draws with a checkpoint policy forced on and a
// calibrated fault campaign guaranteed — through the full simulator and
// checks every cross-layer invariant, including the checkpoint replay
// (restart durability, recovered ≤ aborted, ckpt ⊆ storage traffic).
func TestCheckpointPropertyHarness(t *testing.T) {
	const cases = 200
	var commits, drains, losses, restarts int
	for seed := int64(1); seed <= cases; seed++ {
		c, err := CkptCase(seed)
		if err != nil {
			t.Fatalf("CkptCase(%d): %v", seed, err)
		}
		run := func(faulty bool, baseline float64) *core.Result {
			t.Helper()
			ro := c.Opts
			if faulty {
				ro, err = c.FaultOptions(baseline)
				if err != nil {
					t.Fatalf("%s: FaultOptions: %v", c.Name, err)
				}
			}
			sim, err := core.NewSimulator(c.Platform)
			if err != nil {
				t.Fatalf("%s: NewSimulator: %v", c.Name, err)
			}
			res, err := sim.Run(c.Workflow, ro)
			if err != nil {
				t.Fatalf("%s (faulty=%v): Run: %v", c.Name, faulty, err)
			}
			for _, v := range Check(c.Platform, c.Workflow, res) {
				t.Errorf("%s (faulty=%v): %s", c.Name, faulty, v)
			}
			return res
		}
		res := run(false, 0)
		fr := run(true, res.Makespan)
		commits += fr.Faults.CkptCommits
		drains += fr.Faults.CkptDrains
		losses += fr.Faults.CkptLosses
		restarts += fr.Faults.CkptRestarts
	}
	// Guard against the generator drifting into configurations that never
	// exercise the recovery machinery.
	if commits < 200 {
		t.Errorf("only %d checkpoint commits across %d fault campaigns; harness coverage degraded", commits, cases)
	}
	if drains < 20 {
		t.Errorf("only %d checkpoint drains; harness coverage degraded", drains)
	}
	if losses < 5 {
		t.Errorf("only %d checkpoint losses; harness coverage degraded", losses)
	}
	if restarts < 20 {
		t.Errorf("only %d checkpoint restarts; harness coverage degraded", restarts)
	}
}

// TestAdaptPropertyHarness drives 150 seeded adaptive fault configs — the
// RandomCase draws with an adapt policy forced on, the burst buffer
// squeezed, and a calibrated fault campaign guaranteed — through the full
// simulator and checks every cross-layer invariant, including the adapt
// byte bounds (spill/replication traffic ⊆ storage traffic) and the
// trace-pinned adapt tallies.
func TestAdaptPropertyHarness(t *testing.T) {
	const cases = 150
	var spills, replications, fallbacks int
	for seed := int64(1); seed <= cases; seed++ {
		c, err := AdaptCase(seed)
		if err != nil {
			t.Fatalf("AdaptCase(%d): %v", seed, err)
		}
		run := func(faulty bool, baseline float64) *core.Result {
			t.Helper()
			ro := c.Opts
			if faulty {
				ro, err = c.FaultOptions(baseline)
				if err != nil {
					t.Fatalf("%s: FaultOptions: %v", c.Name, err)
				}
			}
			sim, err := core.NewSimulator(c.Platform)
			if err != nil {
				t.Fatalf("%s: NewSimulator: %v", c.Name, err)
			}
			res, err := sim.Run(c.Workflow, ro)
			if err != nil {
				t.Fatalf("%s (faulty=%v): Run: %v", c.Name, faulty, err)
			}
			for _, v := range Check(c.Platform, c.Workflow, res) {
				t.Errorf("%s (faulty=%v): %s", c.Name, faulty, v)
			}
			return res
		}
		res := run(false, 0)
		spills += res.Faults.AdaptSpills
		fr := run(true, res.Makespan)
		spills += fr.Faults.AdaptSpills
		replications += fr.Faults.AdaptReplications
		fallbacks += fr.Faults.AdaptFallbacks
	}
	// Guard against the generator drifting into configurations that never
	// exercise the adaptation machinery.
	if spills < 50 {
		t.Errorf("only %d adapt spills across %d cases; harness coverage degraded", spills, cases)
	}
	if replications < 20 {
		t.Errorf("only %d adapt replications; harness coverage degraded", replications)
	}
	if fallbacks < 10 {
		t.Errorf("only %d adapt fallbacks; harness coverage degraded", fallbacks)
	}
}

// TestCheckDetectsTampering makes sure Check is a tripwire, not a
// tautology: corrupting any of the quantities it validates must produce a
// violation.
func TestCheckDetectsTampering(t *testing.T) {
	c, err := RandomCase(7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(c.Platform)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c.Workflow, c.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if v := Check(c.Platform, c.Workflow, res); len(v) != 0 {
		t.Fatalf("clean run reported violations: %v", v)
	}

	tamper := func(name string, mutate func()) {
		t.Helper()
		mutate()
		if v := Check(c.Platform, c.Workflow, res); len(v) == 0 {
			t.Errorf("%s: tampering went undetected", name)
		}
	}
	findCounter := func(family string) *metrics.Sample {
		t.Helper()
		for i := range res.Metrics.Counters {
			if res.Metrics.Counters[i].Family == family {
				return &res.Metrics.Counters[i]
			}
		}
		t.Fatalf("snapshot has no %s counter", family)
		return nil
	}

	completed := findCounter(metrics.TasksCompletedTotal)
	orig := completed.Value
	tamper("inflated tasks_completed_total", func() { completed.Value += 1 })
	completed.Value = orig

	phase := findCounter(metrics.TaskPhaseSecondsTotal)
	orig = phase.Value
	tamper("skewed task_phase_seconds_total", func() { phase.Value += 0.125 })
	phase.Value = orig

	events := findCounter(metrics.SimEventsTotal)
	orig = events.Value
	tamper("dropped sim_events_total", func() { events.Value -= 1 })
	events.Value = orig

	origMakespan := res.Makespan
	tamper("shifted makespan", func() { res.Makespan *= 1.5 })
	res.Makespan = origMakespan

	if v := Check(c.Platform, c.Workflow, res); len(v) != 0 {
		t.Fatalf("restored run still reports violations: %v", v)
	}
}

// TestCheckDetectsCkptTampering extends the tripwire test to the
// checkpoint invariants: corrupting the checkpoint tallies, a restart's
// recorded progress, or the durability of its source replica must all be
// caught by Check.
func TestCheckDetectsCkptTampering(t *testing.T) {
	// Scan seeds deterministically for a fault campaign that actually
	// restarted from a checkpoint, so every tamper target exists.
	var (
		c   Case
		res *core.Result
	)
	for seed := int64(1); ; seed++ {
		if seed > 100 {
			t.Fatal("no CkptCase seed in 1..100 produced a checkpoint restart")
		}
		cc, err := CkptCase(seed)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := core.NewSimulator(cc.Platform)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sim.Run(cc.Workflow, cc.Opts)
		if err != nil {
			t.Fatal(err)
		}
		fo, err := cc.FaultOptions(base.Makespan)
		if err != nil {
			t.Fatal(err)
		}
		sim, err = core.NewSimulator(cc.Platform)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := sim.Run(cc.Workflow, fo)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Faults.CkptRestarts > 0 {
			c, res = cc, fr
			break
		}
	}
	if v := Check(c.Platform, c.Workflow, res); len(v) != 0 {
		t.Fatalf("clean run reported violations: %v", v)
	}

	tamper := func(name string, mutate func()) {
		t.Helper()
		mutate()
		if v := Check(c.Platform, c.Workflow, res); len(v) == 0 {
			t.Errorf("%s: tampering went undetected", name)
		}
	}
	findCounter := func(family string) *metrics.Sample {
		t.Helper()
		for i := range res.Metrics.Counters {
			if res.Metrics.Counters[i].Family == family {
				return &res.Metrics.Counters[i]
			}
		}
		t.Fatalf("snapshot has no %s counter", family)
		return nil
	}

	commits := findCounter(metrics.CkptCommitsTotal)
	orig := commits.Value
	tamper("inflated ckpt_commits_total", func() { commits.Value += 1 })
	commits.Value = orig

	recovered := findCounter(metrics.CkptRecoveredSecondsTotal)
	orig = recovered.Value
	tamper("skewed ckpt_recovered_seconds_total", func() { recovered.Value += 0.5 })
	recovered.Value = orig

	events := res.Trace.Events()
	restart := -1
	for i := range events {
		if events[i].Kind == trace.RestartFrom {
			restart = i
			break
		}
	}
	if restart < 0 {
		t.Fatal("fault run has no restart-from event")
	}
	origDetail := events[restart].Detail

	// Claim the restart recovered more compute than the task ever lost.
	file, svc, _, ok := parseCkptDetail(origDetail)
	if !ok {
		t.Fatalf("unparseable restart detail %q", origDetail)
	}
	tamper("inflated restart progress", func() {
		events[restart].Detail = fmt.Sprintf("%s@%s p=%g", file, svc, 1e9)
	})
	events[restart].Detail = origDetail

	// Claim the restart read a replica that was never committed anywhere.
	tamper("restart from never-committed snapshot", func() {
		events[restart].Detail = fmt.Sprintf("ckpt-ghost-000000@%s p=%g", svc, 0.0)
	})
	events[restart].Detail = origDetail

	if v := Check(c.Platform, c.Workflow, res); len(v) != 0 {
		t.Fatalf("restored run still reports violations: %v", v)
	}
}

// TestCheckDetectsAdaptTampering extends the tripwire test to the
// adaptation invariants: inflating the adapt byte tally past the storage
// traffic that could have carried it, or skewing the trace-pinned adapt
// event counters, must all be caught by Check.
func TestCheckDetectsAdaptTampering(t *testing.T) {
	// Scan seeds deterministically for a fault campaign that actually
	// spilled bytes, so every tamper target exists.
	var (
		c   Case
		res *core.Result
	)
	for seed := int64(1); ; seed++ {
		if seed > 100 {
			t.Fatal("no AdaptCase seed in 1..100 produced an adapt spill with bytes moved")
		}
		ac, err := AdaptCase(seed)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := core.NewSimulator(ac.Platform)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sim.Run(ac.Workflow, ac.Opts)
		if err != nil {
			t.Fatal(err)
		}
		fo, err := ac.FaultOptions(base.Makespan)
		if err != nil {
			t.Fatal(err)
		}
		sim, err = core.NewSimulator(ac.Platform)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := sim.Run(ac.Workflow, fo)
		if err != nil {
			t.Fatal(err)
		}
		spilledBytes := false
		for _, s := range fr.Metrics.Counters {
			if s.Family == metrics.AdaptBytesTotal && s.Op == metrics.OpSpill && s.Value > 0 {
				spilledBytes = true
			}
		}
		if fr.Faults.AdaptSpills > 0 && fr.Faults.AdaptReplications > 0 && spilledBytes {
			c, res = ac, fr
			break
		}
	}
	if v := Check(c.Platform, c.Workflow, res); len(v) != 0 {
		t.Fatalf("clean run reported violations: %v", v)
	}

	tamper := func(name string, mutate func()) {
		t.Helper()
		mutate()
		if v := Check(c.Platform, c.Workflow, res); len(v) == 0 {
			t.Errorf("%s: tampering went undetected", name)
		}
	}
	findCounter := func(family string) *metrics.Sample {
		t.Helper()
		for i := range res.Metrics.Counters {
			if res.Metrics.Counters[i].Family == family {
				return &res.Metrics.Counters[i]
			}
		}
		t.Fatalf("snapshot has no %s counter", family)
		return nil
	}

	// Claim the adaptation layer moved more bytes than the source tier ever
	// served as reads (and than the PFS ever absorbed as writes).
	moved := findCounter(metrics.AdaptBytesTotal)
	orig := moved.Value
	tamper("inflated adapt_bytes_total", func() { moved.Value += 1 << 50 })
	moved.Value = orig

	spills := findCounter(metrics.AdaptSpillsTotal)
	orig = spills.Value
	tamper("inflated adapt_spills_total", func() { spills.Value += 1 })
	spills.Value = orig

	repls := findCounter(metrics.AdaptReplicationsTotal)
	orig = repls.Value
	tamper("inflated adapt_replications_total", func() { repls.Value += 1 })
	repls.Value = orig

	falls := findCounter(metrics.AdaptFallbacksTotal)
	orig = falls.Value
	tamper("dropped adapt_fallbacks_total", func() { falls.Value -= 1 })
	falls.Value = orig

	if v := Check(c.Platform, c.Workflow, res); len(v) != 0 {
		t.Fatalf("restored run still reports violations: %v", v)
	}
}
