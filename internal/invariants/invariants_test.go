package invariants

import (
	"bytes"
	"testing"

	"bbwfsim/internal/core"
	"bbwfsim/internal/metrics"
)

// TestPropertyHarness drives 220 seeded random cases — workflow structure ×
// file regime × platform profile × run options, ~40% with a calibrated
// fault campaign on top — through the full simulator and checks every
// cross-layer invariant on each result. Every 20th case is additionally
// replayed and must reproduce its observability snapshot byte-for-byte.
func TestPropertyHarness(t *testing.T) {
	const cases = 220
	var withFaults, constrained int
	for seed := int64(1); seed <= cases; seed++ {
		c, err := RandomCase(seed)
		if err != nil {
			t.Fatalf("RandomCase(%d): %v", seed, err)
		}
		if c.CrashDiv > 0 {
			withFaults++
		}
		if c.Platform.BB.Capacity > 0 {
			constrained++
		}

		run := func(faulty bool, baseline float64) *core.Result {
			t.Helper()
			ro := c.Opts
			if faulty {
				ro, err = c.FaultOptions(baseline)
				if err != nil {
					t.Fatalf("%s: FaultOptions: %v", c.Name, err)
				}
			}
			sim, err := core.NewSimulator(c.Platform)
			if err != nil {
				t.Fatalf("%s: NewSimulator: %v", c.Name, err)
			}
			res, err := sim.Run(c.Workflow, ro)
			if err != nil {
				t.Fatalf("%s (faulty=%v): Run: %v", c.Name, faulty, err)
			}
			for _, v := range Check(c.Platform, c.Workflow, res) {
				t.Errorf("%s (faulty=%v): %s", c.Name, faulty, v)
			}
			return res
		}

		res := run(false, 0)
		if c.CrashDiv > 0 {
			run(true, res.Makespan)
		}

		if seed%20 == 0 {
			replay := run(false, 0)
			a, err := res.Metrics.JSON()
			if err != nil {
				t.Fatalf("%s: JSON: %v", c.Name, err)
			}
			b, err := replay.Metrics.JSON()
			if err != nil {
				t.Fatalf("%s: JSON: %v", c.Name, err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("%s: replayed snapshot differs from original", c.Name)
			}
			if c.CrashDiv > 0 {
				fr := run(true, res.Makespan)
				fa, _ := fr.Metrics.JSON()
				fb, _ := run(true, res.Makespan).Metrics.JSON()
				if !bytes.Equal(fa, fb) {
					t.Errorf("%s: replayed fault campaign snapshot differs", c.Name)
				}
			}
		}
	}
	// Guard against generator drift silently hollowing out the harness.
	if withFaults < 30 {
		t.Errorf("only %d/%d cases drew a fault regime; generator coverage degraded", withFaults, cases)
	}
	if constrained < 30 {
		t.Errorf("only %d/%d cases drew a constrained BB; generator coverage degraded", constrained, cases)
	}
}

// TestCheckDetectsTampering makes sure Check is a tripwire, not a
// tautology: corrupting any of the quantities it validates must produce a
// violation.
func TestCheckDetectsTampering(t *testing.T) {
	c, err := RandomCase(7)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(c.Platform)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(c.Workflow, c.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if v := Check(c.Platform, c.Workflow, res); len(v) != 0 {
		t.Fatalf("clean run reported violations: %v", v)
	}

	tamper := func(name string, mutate func()) {
		t.Helper()
		mutate()
		if v := Check(c.Platform, c.Workflow, res); len(v) == 0 {
			t.Errorf("%s: tampering went undetected", name)
		}
	}
	findCounter := func(family string) *metrics.Sample {
		t.Helper()
		for i := range res.Metrics.Counters {
			if res.Metrics.Counters[i].Family == family {
				return &res.Metrics.Counters[i]
			}
		}
		t.Fatalf("snapshot has no %s counter", family)
		return nil
	}

	completed := findCounter(metrics.TasksCompletedTotal)
	orig := completed.Value
	tamper("inflated tasks_completed_total", func() { completed.Value += 1 })
	completed.Value = orig

	phase := findCounter(metrics.TaskPhaseSecondsTotal)
	orig = phase.Value
	tamper("skewed task_phase_seconds_total", func() { phase.Value += 0.125 })
	phase.Value = orig

	events := findCounter(metrics.SimEventsTotal)
	orig = events.Value
	tamper("dropped sim_events_total", func() { events.Value -= 1 })
	events.Value = orig

	origMakespan := res.Makespan
	tamper("shifted makespan", func() { res.Makespan *= 1.5 })
	res.Makespan = origMakespan

	if v := Check(c.Platform, c.Workflow, res); len(v) != 0 {
		t.Fatalf("restored run still reports violations: %v", v)
	}
}
