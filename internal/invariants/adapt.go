package invariants

import (
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/storage"
)

// checkAdapt validates the runtime-adaptation invariants against the
// emitted snapshot:
//
//	a. per source tier, the bytes the adaptation layer moved off it (spills
//	   plus replications) never exceed the tier's total read traffic — an
//	   adaptation copy reads its bytes off the source through the same
//	   storage manager as workflow reads, so its accounting is a subset;
//	b. the total adaptation bytes never exceed the PFS write traffic — every
//	   spill and replication lands on the PFS as an ordinary write.
//
// The adapt event tallies (spills, replications, fallbacks) are pinned to
// the trace by invariant 5's counter table, and adaptive runs still satisfy
// per-tier byte conservation (invariant 2) because the copies move through
// storage.Manager like everything else.
func checkAdapt(snap *metrics.Snapshot, violation func(string, ...any)) {
	perTier := map[string]float64{}
	var tiers []string // snapshot order, so violations report deterministically
	total := 0.0
	for _, s := range snap.Counters {
		if s.Family != metrics.AdaptBytesTotal {
			continue
		}
		if _, seen := perTier[s.Tier]; !seen {
			tiers = append(tiers, s.Tier)
		}
		perTier[s.Tier] += s.Value
		total += s.Value
	}
	for _, tier := range tiers {
		moved := perTier[tier]
		reads := 0.0
		for _, s := range snap.Counters {
			if s.Family == metrics.StorageBytesTotal && s.Tier == tier && s.Op == metrics.OpRead {
				reads += s.Value
			}
		}
		if moved > reads {
			violation("adapt_bytes_total moved %g bytes off tier %s but the tier only served %g read bytes: adaptation bypassed the storage manager",
				moved, tier, reads)
		}
	}
	if total > 0 {
		pfsWrites := snap.Counter(metrics.StorageBytesTotal,
			metrics.Key{Tier: string(storage.KindPFS), Op: metrics.OpWrite})
		if total > pfsWrites {
			violation("adapt_bytes_total %g exceeds PFS write traffic %g: adaptation copies bypassed the storage manager",
				total, pfsWrites)
		}
	}
}
