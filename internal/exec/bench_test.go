package exec_test

import (
	"testing"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/genomes"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/swarp"
)

// BenchmarkGenomes903Tasks runs the paper's full case-study instance (903
// tasks, ~67 GB) through the whole stack — the simulator's headline
// "thoroughly and quickly" workload.
func BenchmarkGenomes903Tasks(b *testing.B) {
	wf := genomes.MustNew(genomes.Params{})
	pol := placement.MustFraction(wf, 0.5, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		p := platform.MustNew(e, platform.Cori(8, platform.BBPrivate))
		sys := storage.NewSystem(p, nil)
		tr, err := exec.Run(sys, wf, exec.Config{Placement: pol, PrePlaceInputs: true})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Makespan() <= 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkSWarp32Pipelines runs the paper's widest characterization
// configuration.
func BenchmarkSWarp32Pipelines(b *testing.B) {
	wf := swarp.MustNew(swarp.Params{Pipelines: 32, CoresPerTask: 1})
	pol := placement.MustFraction(wf, 1, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		p := platform.MustNew(e, platform.Cori(1, platform.BBPrivate))
		sys := storage.NewSystem(p, nil)
		if _, err := exec.Run(sys, wf, exec.Config{Placement: pol, CoresPerTask: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
