package exec_test

import (
	"testing"

	"bbwfsim/internal/adapt"
	"bbwfsim/internal/ckpt"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// auditor is a Background load that audits the storage capacity accounting
// on a fixed virtual-time grid while the run is still in flight, so a
// double release or leaked reservation is caught at the instant it happens,
// not just at the end of the run.
type auditor struct {
	t     *testing.T
	every float64
	until float64
}

func (a *auditor) Start(sys *storage.System) {
	for at := a.every; at <= a.until; at += a.every {
		when := at
		sys.Platform().Engine().After(when, func() {
			if err := sys.AuditCapacity(); err != nil {
				a.t.Errorf("capacity audit at t=%g: %v", when, err)
			}
		})
	}
}

// TestPressureSpillDrainsBB: a two-task chain whose outputs overflow the
// high-water mark. The spill loop must copy the cold replica to the PFS,
// evict it, keep draining to the low-water mark, and account every byte.
func TestPressureSpillDrainsBB(t *testing.T) {
	cfg := testConfig(1, 4)
	cfg.BB.Capacity = 100 * units.MB
	sys := newSystem(t, cfg)
	wf := workflow.New("chain")
	wf.MustAddFile("a", 40*units.MB)
	wf.MustAddFile("b", 40*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "t1", Work: 1e9, Outputs: []string{"a"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "t2", Work: 1e9, Inputs: []string{"a"}, Outputs: []string{"b"}})
	// t3 keeps the run alive past the spill copies: the engine stops at the
	// last task's finish, abandoning whatever is still in flight.
	wf.MustAddTask(workflow.TaskSpec{ID: "t3", Work: 2e9, Inputs: []string{"b"}})
	col := metrics.New("test", "chain")
	tr, err := exec.Run(sys, wf, exec.Config{
		Placement: placement.NewExplicit("bb", []string{"a", "b"}),
		Adapt:     adapt.Policy{SpillHighWater: 0.5, SpillLowWater: 0.25},
		Metrics:   col,
	})
	if err != nil {
		t.Fatal(err)
	}
	// t2's write of b pushes occupancy to 80 MB (> 50 MB high water); the
	// drain spills a, then b, down past the 25 MB low-water mark.
	if got := tr.CountKind(trace.AdaptSpill); got != 2 {
		t.Errorf("AdaptSpill count = %d, want 2", got)
	}
	for _, id := range []string{"a", "b"} {
		f := wf.File(id)
		if !sys.Registry().Has(f, sys.PFS()) {
			t.Errorf("%s not on PFS after spill", id)
		}
		if sys.Registry().Has(f, sys.SharedBB()) {
			t.Errorf("%s still on BB after spill", id)
		}
	}
	if used := sys.SharedBB().Used(); used != 0 {
		t.Errorf("BB used = %v after drain, want 0", used)
	}
	snap := col.Snapshot()
	want := float64(80 * units.MB)
	if got := snap.Counter(metrics.AdaptBytesTotal, metrics.Key{Tier: "shared-bb", Op: metrics.OpSpill}); got != want {
		t.Errorf("adapt spill bytes = %g, want %g", got, want)
	}
	if err := sys.AuditCapacity(); err != nil {
		t.Errorf("capacity audit: %v", err)
	}
}

// TestAuditCapacityHoldsDuringSpillAndDrain: a pressure spill running
// concurrently with a mid-drain checkpoint — two independent BB→PFS copy
// paths that each evict their source on completion. The capacity audit must
// hold on a fine virtual-time grid throughout: every reservation released
// exactly once, no matter how the two drains interleave.
func TestAuditCapacityHoldsDuringSpillAndDrain(t *testing.T) {
	cfg := testConfig(1, 4)
	cfg.BB.Capacity = 200 * units.MB
	sys := newSystem(t, cfg)
	wf := workflow.New("spill+drain")
	wf.MustAddFile("a", 120*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "p", Work: 1e9, Outputs: []string{"a"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "c", Work: 10e9, Inputs: []string{"a"}})
	tr, err := exec.Run(sys, wf, exec.Config{
		Placement: placement.NewExplicit("bb", []string{"a"}),
		Adapt:     adapt.Policy{SpillHighWater: 0.5, SpillLowWater: 0.25},
		Checkpoint: ckpt.Policy{
			Interval: 2, Target: ckpt.TargetBB, Drain: true, DrainDelay: 0.2,
			MinSize: 40 * units.MB,
		},
		Background: []exec.Background{&auditor{t: t, every: 0.25, until: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.CountKind(trace.AdaptSpill); got == 0 {
		t.Error("no spill fired; the test exercises nothing")
	}
	if got := tr.CountKind(trace.CkptDrain); got == 0 {
		t.Error("no checkpoint drain completed; the test exercises nothing")
	}
	if err := sys.AuditCapacity(); err != nil {
		t.Errorf("final capacity audit: %v", err)
	}
}

// TestNodeFailureMidSpill: the node whose private BB replica is being
// spilled dies while the spill copy is in flight. The copy must be
// cancelled with its source (one release, not two), lineage recovery must
// regenerate the file, and the run must still complete with clean
// accounting.
func TestNodeFailureMidSpill(t *testing.T) {
	cfg := testConfig(2, 4)
	cfg.BB.Capacity = 200 * units.MB
	sys := newSystem(t, cfg)
	wf := workflow.New("fail-mid-spill")
	wf.MustAddFile("a", 120*units.MB)
	wf.MustAddFile("b", 40*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "p1", Work: 1e9, Outputs: []string{"a"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "p2", Work: 2e9, Inputs: []string{"a"}, Outputs: []string{"b"}})
	// p3 keeps the run alive through the failure and the recovery.
	wf.MustAddTask(workflow.TaskSpec{ID: "p3", Work: 3e9, Inputs: []string{"b"}})
	fm := &scripted{script: func(ctrl exec.FaultController) {
		// p2's write of b (~t=3.3) pushes occupancy past high water and the
		// spill of a starts: a 1.2 s PFS copy. Fail a's creator node mid-copy;
		// the private-mode replica dies and the spill must die with it.
		ctrl.System().Platform().Engine().After(3.8, func() {
			ctrl.FailNode(ctrl.System().Platform().Node(0), "scripted failure")
		})
	}}
	tr, err := exec.Run(sys, wf, exec.Config{
		Placement:  placement.NewExplicit("bb", []string{"a", "b"}),
		Adapt:      adapt.Policy{SpillHighWater: 0.5, SpillLowWater: 0.25},
		Faults:     fm,
		Retry:      exec.RetryPolicy{MaxRetries: 2},
		Background: []exec.Background{&auditor{t: t, every: 0.25, until: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.CountKind(trace.NodeFail); got != 1 {
		t.Fatalf("NodeFail count = %d, want 1", got)
	}
	// The sole BB replica died, so p1 must have re-executed.
	if got := tr.CountKind(trace.TaskRetry); got == 0 {
		t.Error("replica loss triggered no lineage re-execution")
	}
	if err := sys.AuditCapacity(); err != nil {
		t.Errorf("capacity audit: %v", err)
	}
}

// TestDegradationWindowDuringReplication: a degradation window opens on the
// source buffer between the replication decision (a node failure) and the
// completion of its copy. The in-flight copy must proceed exactly once —
// the window's own replication sweep must not start a duplicate.
func TestDegradationWindowDuringReplication(t *testing.T) {
	cfg := testConfig(3, 4)
	sys := newSystem(t, cfg)
	wf := workflow.New("degrade-mid-repl")
	wf.MustAddFile("a", 80*units.MB)
	wf.MustAddFile("b", 8*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "p1", Work: 1e9, Outputs: []string{"a"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "p2", Work: 3e9, Inputs: []string{"a"}, Outputs: []string{"b"}})
	fm := &scripted{script: func(ctrl exec.FaultController) {
		eng := ctrl.System().Platform().Engine()
		// Fail an idle node at t=1.2: the sweep finds p2's sole-replica input
		// a and starts its PFS copy (80 MB, ~0.8 s). Open a degradation
		// window on the source buffer mid-copy, close it later.
		eng.After(1.2, func() {
			ctrl.FailNode(ctrl.System().Platform().Node(2), "scripted failure")
		})
		eng.After(1.5, func() { ctrl.SetDegraded(ctrl.System().SharedBB(), true) })
		eng.After(2.5, func() { ctrl.SetDegraded(ctrl.System().SharedBB(), false) })
	}}
	col := metrics.New("test", "degrade-mid-repl")
	tr, err := exec.Run(sys, wf, exec.Config{
		Placement: placement.NewExplicit("bb", []string{"a"}),
		Adapt:     adapt.Policy{ReplicateOnFault: true},
		Faults:    fm,
		Retry:     exec.RetryPolicy{MaxRetries: 2},
		Metrics:   col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.CountKind(trace.AdaptReplicate); got != 1 {
		t.Errorf("AdaptReplicate count = %d, want exactly 1 (no duplicate from the window's sweep)", got)
	}
	if !sys.Registry().Has(wf.File("a"), sys.PFS()) {
		t.Error("a not on PFS after replication")
	}
	snap := col.Snapshot()
	want := float64(80 * units.MB)
	if got := snap.Counter(metrics.AdaptBytesTotal, metrics.Key{Tier: "shared-bb", Op: metrics.OpReplicate}); got != want {
		t.Errorf("adapt replicate bytes = %g, want %g", got, want)
	}
	if err := sys.AuditCapacity(); err != nil {
		t.Errorf("capacity audit: %v", err)
	}
}

// TestSpillRacesEvictAfterLastRead: the last consumer of a file finishes
// while a spill copy of that same file is in flight. EvictAfterLastRead
// must win — the spill is cancelled, the replica freed exactly once, and no
// pointless PFS copy completes.
func TestSpillRacesEvictAfterLastRead(t *testing.T) {
	cfg := testConfig(1, 4)
	cfg.BB.Capacity = 600 * units.MB
	sys := newSystem(t, cfg)
	wf := workflow.New("spill-vs-evict")
	wf.MustAddFile("a", 400*units.MB)
	wf.MustAddFile("c", 150*units.MB)
	wf.MustAddFile("d", 8*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "p1", Work: 1e9, Outputs: []string{"a"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "p2", Work: 1e9, Inputs: []string{"a"}, Outputs: []string{"d"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "p3", Work: 1.6e9, Outputs: []string{"c"}})
	tr, err := exec.Run(sys, wf, exec.Config{
		Placement:          placement.NewExplicit("bb", []string{"a", "c"}),
		Adapt:              adapt.Policy{SpillHighWater: 0.5, SpillLowWater: 0.25},
		EvictAfterLastRead: true,
		Background:         []exec.Background{&auditor{t: t, every: 0.25, until: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// p3's write of c (t=1.6) starts a 4 s spill copy of a; p2 — a's last
	// reader — finishes at ~t=3.1 and evicts a, cancelling the spill. No
	// spill completes: a is gone everywhere, c keeps its BB replica.
	if got := tr.CountKind(trace.AdaptSpill); got != 0 {
		t.Errorf("AdaptSpill count = %d, want 0 (the only spill must be cancelled by the eviction)", got)
	}
	if locs := sys.Registry().Locations(wf.File("a")); len(locs) != 0 {
		t.Errorf("a still located on %d services after last-read eviction", len(locs))
	}
	if used, want := sys.SharedBB().Used(), units.Bytes(150*units.MB); used != want {
		t.Errorf("BB used = %v, want %v (only c)", used, want)
	}
	if err := sys.AuditCapacity(); err != nil {
		t.Errorf("capacity audit: %v", err)
	}
}

// TestDegradedFallbackRedirectsWrites: inside an open degradation window a
// task write bound for the degraded buffer must land on the PFS instead,
// and the redirect must be recorded in the trace.
func TestDegradedFallbackRedirectsWrites(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("fallback")
	wf.MustAddFile("out", 80*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "p", Work: 2e9, Outputs: []string{"out"}})
	fm := &scripted{script: func(ctrl exec.FaultController) {
		ctrl.System().Platform().Engine().After(0.5, func() {
			ctrl.SetDegraded(ctrl.System().SharedBB(), true)
		})
		ctrl.System().Platform().Engine().After(10, func() {
			ctrl.SetDegraded(ctrl.System().SharedBB(), false)
		})
	}}
	tr, err := exec.Run(sys, wf, exec.Config{
		Placement: placement.NewExplicit("bb", []string{"out"}),
		Adapt:     adapt.Policy{DegradedFallback: true},
		Faults:    fm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.CountKind(trace.AdaptFallback); got != 1 {
		t.Errorf("AdaptFallback count = %d, want 1", got)
	}
	if !sys.Registry().Has(wf.File("out"), sys.PFS()) {
		t.Error("out not on PFS after degraded fallback")
	}
	if sys.Registry().Has(wf.File("out"), sys.SharedBB()) {
		t.Error("out placed on the degraded BB despite the fallback")
	}
	// 2 s compute + 80 MB at the PFS's 100 MB/s (not the BB's 800 MB/s).
	if !approx(tr.Makespan(), 2.8, 1e-9) {
		t.Errorf("makespan = %v, want 2.8 (write redirected to the PFS)", tr.Makespan())
	}
}

// TestOverlappingPressureWavesSpillEachReplicaOnce is the multi-tenant
// regression for the spill loop's mid-spill exclusion: three concurrent
// writers — jobs sharing one burst buffer — push occupancy over the
// high-water mark twice, the second wave arriving while the first wave's
// spill copies are still in flight. The victim scan must skip replicas
// already mid-spill (without the guard the second wave would re-pick the
// first candidate, copy it twice, and double-release its space on the
// second eviction), so every replica spills exactly once and the capacity
// audit holds on a fine virtual-time grid throughout.
func TestOverlappingPressureWavesSpillEachReplicaOnce(t *testing.T) {
	cfg := testConfig(1, 4)
	cfg.BB.Capacity = 250 * units.MB
	sys := newSystem(t, cfg)
	wf := workflow.New("waves")
	wf.MustAddFile("a", 60*units.MB)
	wf.MustAddFile("b", 60*units.MB)
	wf.MustAddFile("c", 60*units.MB)
	// Staggered completions: a lands first (below high water), b tips the
	// first wave (which starts slow 100 MB/s spill copies of a and b), and
	// c lands while those copies are still in flight — the second wave.
	wf.MustAddTask(workflow.TaskSpec{ID: "t1", Work: 1e9, Outputs: []string{"a"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "t2", Work: 2e9, Outputs: []string{"b"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "t3", Work: 2.2e9, Outputs: []string{"c"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "t4", Work: 20e9, Inputs: []string{"a", "b", "c"}})
	col := metrics.New("test", "waves")
	tr, err := exec.Run(sys, wf, exec.Config{
		Placement:  placement.NewExplicit("bb", []string{"a", "b", "c"}),
		Adapt:      adapt.Policy{SpillHighWater: 0.3, SpillLowWater: 0.12},
		Metrics:    col,
		Background: []exec.Background{&auditor{t: t, every: 0.1, until: 25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	spilled := map[string]int{}
	for _, ev := range tr.Events() {
		if ev.Kind == trace.AdaptSpill {
			spilled[ev.Detail]++
		}
	}
	for _, id := range []string{"a", "b", "c"} {
		if got := spilled[id+"@bb"]; got != 1 {
			t.Errorf("%s spilled %d times, want exactly 1", id, got)
		}
	}
	if got := tr.CountKind(trace.AdaptSpill); got != 3 {
		t.Errorf("AdaptSpill count = %d, want 3", got)
	}
	want := float64(180 * units.MB)
	if got := col.Snapshot().Counter(metrics.AdaptBytesTotal,
		metrics.Key{Tier: "shared-bb", Op: metrics.OpSpill}); got != want {
		t.Errorf("adapt spill bytes = %g, want %g", got, want)
	}
	if used := sys.SharedBB().Used(); used != 0 {
		t.Errorf("BB used = %v after all spills drained, want 0", used)
	}
	if err := sys.AuditCapacity(); err != nil {
		t.Errorf("final capacity audit: %v", err)
	}
}
