package exec_test

import (
	"strings"
	"testing"

	"bbwfsim/internal/adapt"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/workflow"
)

// TestNilWorkflowRejected: running without a workflow must be an error, not
// a panic or an empty-trace success.
func TestNilWorkflowRejected(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	if _, err := exec.Run(sys, nil, exec.Config{}); err == nil {
		t.Fatal("Run accepted a nil workflow")
	}
}

// TestNegativeCoresPerTaskRejected: a negative core override is a caller
// bug and must be reported up front rather than clamped or ignored.
func TestNegativeCoresPerTaskRejected(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 1e9, Cores: 1})
	_, err := exec.Run(sys, wf, exec.Config{CoresPerTask: -2})
	if err == nil {
		t.Fatal("Run accepted CoresPerTask = -2")
	}
	if !strings.Contains(err.Error(), "CoresPerTask") {
		t.Errorf("error %q does not name the offending field", err)
	}
}

// TestInvalidAdaptPolicyRejected: adaptive thresholds are validated before
// the simulation starts — an out-of-range water mark or an inconsistent
// replication budget must fail up front, naming the offending knob, rather
// than silently producing a run that never (or always) spills.
func TestInvalidAdaptPolicyRejected(t *testing.T) {
	cases := []struct {
		name string
		pol  adapt.Policy
		want string
	}{
		{"high water above one", adapt.Policy{SpillHighWater: 1.5}, "high-water"},
		{"negative high water", adapt.Policy{SpillHighWater: -0.2}, "high-water"},
		{"negative low water", adapt.Policy{SpillHighWater: 0.8, SpillLowWater: -0.1}, "low-water"},
		{"low water without high water", adapt.Policy{SpillLowWater: 0.5}, "low-water"},
		{"low water at high water", adapt.Policy{SpillHighWater: 0.6, SpillLowWater: 0.6}, "below"},
		{"low water above high water", adapt.Policy{SpillHighWater: 0.6, SpillLowWater: 0.9}, "below"},
		{"negative replication budget", adapt.Policy{ReplicateOnFault: true, ReplicationBudget: -3}, "budget"},
		{"budget without replication", adapt.Policy{ReplicationBudget: 4}, "ReplicateOnFault"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := newSystem(t, testConfig(1, 4))
			wf := workflow.New("one")
			wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 1e9, Cores: 1})
			_, err := exec.Run(sys, wf, exec.Config{Adapt: tc.pol})
			if err == nil {
				t.Fatalf("Run accepted invalid adapt policy %+v", tc.pol)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offending field (want substring %q)", err, tc.want)
			}
		})
	}
}

// TestValidAdaptPolicyAccepted: the boundary values the validator documents
// as legal — a full-capacity high-water mark and an unbounded budget — must
// run, not error.
func TestValidAdaptPolicyAccepted(t *testing.T) {
	cases := []adapt.Policy{
		{},
		{SpillHighWater: 1},
		{SpillHighWater: 0.8, SpillLowWater: 0.2},
		{ReplicateOnFault: true},
		{ReplicateOnFault: true, ReplicationBudget: 10},
		{DegradedFallback: true},
	}
	for i, pol := range cases {
		sys := newSystem(t, testConfig(1, 4))
		wf := workflow.New("one")
		wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 1e9, Cores: 1})
		if _, err := exec.Run(sys, wf, exec.Config{Adapt: pol}); err != nil {
			t.Errorf("policy %d: Run rejected valid adapt policy %+v: %v", i, pol, err)
		}
	}
}

// TestInvalidRetryPolicyRejected: retry policies are validated before the
// simulation starts, for fault-free runs too.
func TestInvalidRetryPolicyRejected(t *testing.T) {
	bad := []exec.RetryPolicy{
		{MaxRetries: -1},
		{BaseDelay: -5},
		{MaxDelay: -1},
		{Jitter: -0.5},
	}
	for i, p := range bad {
		sys := newSystem(t, testConfig(1, 4))
		wf := workflow.New("one")
		wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 1e9, Cores: 1})
		if _, err := exec.Run(sys, wf, exec.Config{Retry: p}); err == nil {
			t.Errorf("policy %d: Run accepted invalid retry policy %+v", i, p)
		}
	}
}
