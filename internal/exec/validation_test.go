package exec_test

import (
	"strings"
	"testing"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/workflow"
)

// TestNilWorkflowRejected: running without a workflow must be an error, not
// a panic or an empty-trace success.
func TestNilWorkflowRejected(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	if _, err := exec.Run(sys, nil, exec.Config{}); err == nil {
		t.Fatal("Run accepted a nil workflow")
	}
}

// TestNegativeCoresPerTaskRejected: a negative core override is a caller
// bug and must be reported up front rather than clamped or ignored.
func TestNegativeCoresPerTaskRejected(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 1e9, Cores: 1})
	_, err := exec.Run(sys, wf, exec.Config{CoresPerTask: -2})
	if err == nil {
		t.Fatal("Run accepted CoresPerTask = -2")
	}
	if !strings.Contains(err.Error(), "CoresPerTask") {
		t.Errorf("error %q does not name the offending field", err)
	}
}

// TestInvalidRetryPolicyRejected: retry policies are validated before the
// simulation starts, for fault-free runs too.
func TestInvalidRetryPolicyRejected(t *testing.T) {
	bad := []exec.RetryPolicy{
		{MaxRetries: -1},
		{BaseDelay: -5},
		{MaxDelay: -1},
		{Jitter: -0.5},
	}
	for i, p := range bad {
		sys := newSystem(t, testConfig(1, 4))
		wf := workflow.New("one")
		wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 1e9, Cores: 1})
		if _, err := exec.Run(sys, wf, exec.Config{Retry: p}); err == nil {
			t.Errorf("policy %d: Run accepted invalid retry policy %+v", i, p)
		}
	}
}
