package exec_test

import (
	"testing"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// memConfig is a node with 10 GiB of RAM and plenty of cores.
func memConfig() platform.Config {
	cfg := testConfig(1, 16)
	cfg.RAMPerNode = 10 * units.GiB
	return cfg
}

func TestMemoryConstraintSerializes(t *testing.T) {
	sys := newSystem(t, memConfig())
	wf := workflow.New("mem")
	// Two 6 GiB tasks cannot share a 10 GiB node despite free cores.
	wf.MustAddTask(workflow.TaskSpec{ID: "a", Work: 2e9, Memory: 6 * units.GiB})
	wf.MustAddTask(workflow.TaskSpec{ID: "b", Work: 2e9, Memory: 6 * units.GiB})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 4.0, 1e-9) {
		t.Errorf("makespan = %v, want 4.0 (memory-serialized)", tr.Makespan())
	}
	if tr.Lookup("b").StartedAt < tr.Lookup("a").FinishedAt {
		t.Error("b overlapped a despite the memory constraint")
	}
}

func TestMemoryFitsConcurrently(t *testing.T) {
	sys := newSystem(t, memConfig())
	wf := workflow.New("mem")
	wf.MustAddTask(workflow.TaskSpec{ID: "a", Work: 2e9, Memory: 4 * units.GiB})
	wf.MustAddTask(workflow.TaskSpec{ID: "b", Work: 2e9, Memory: 4 * units.GiB})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 2.0, 1e-9) {
		t.Errorf("makespan = %v, want 2.0 (both fit)", tr.Makespan())
	}
}

func TestOversizedMemoryDemandRejected(t *testing.T) {
	sys := newSystem(t, memConfig())
	wf := workflow.New("mem")
	wf.MustAddTask(workflow.TaskSpec{ID: "huge", Work: 1e9, Memory: 11 * units.GiB})
	if _, err := exec.Run(sys, wf, exec.Config{}); err == nil {
		t.Error("task larger than node RAM accepted")
	}
}

func TestNoRAMConfiguredMeansUnconstrained(t *testing.T) {
	cfg := testConfig(1, 4)
	cfg.RAMPerNode = 0
	sys := newSystem(t, cfg)
	wf := workflow.New("mem")
	wf.MustAddTask(workflow.TaskSpec{ID: "a", Work: 1e9, Memory: 100 * units.GiB})
	wf.MustAddTask(workflow.TaskSpec{ID: "b", Work: 1e9, Memory: 100 * units.GiB})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 1.0, 1e-9) {
		t.Errorf("makespan = %v, want 1.0 (RAM unconstrained)", tr.Makespan())
	}
}

func TestMemorySpreadsAcrossNodes(t *testing.T) {
	cfg := testConfig(2, 16)
	cfg.RAMPerNode = 10 * units.GiB
	sys := newSystem(t, cfg)
	wf := workflow.New("mem")
	wf.MustAddTask(workflow.TaskSpec{ID: "a", Work: 2e9, Memory: 6 * units.GiB})
	wf.MustAddTask(workflow.TaskSpec{ID: "b", Work: 2e9, Memory: 6 * units.GiB})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 2.0, 1e-9) {
		t.Errorf("makespan = %v, want 2.0 (second node absorbs b)", tr.Makespan())
	}
	if tr.Lookup("a").Node == tr.Lookup("b").Node {
		t.Error("both memory-heavy tasks on one node")
	}
}

func TestMemoryReleasedAfterTask(t *testing.T) {
	sys := newSystem(t, memConfig())
	wf := workflow.New("mem")
	wf.MustAddFile("link", 0)
	wf.MustAddTask(workflow.TaskSpec{ID: "a", Work: 1e9, Memory: 8 * units.GiB, Outputs: []string{"link"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "b", Work: 1e9, Memory: 8 * units.GiB, Inputs: []string{"link"}})
	if _, err := exec.Run(sys, wf, exec.Config{}); err != nil {
		t.Fatalf("sequential memory-heavy chain failed: %v", err)
	}
	if got := sys.Platform().Node(0).FreeMemory(); got != 10*units.GiB {
		t.Errorf("FreeMemory = %v after run, want 10 GiB", got)
	}
}
