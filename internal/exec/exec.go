// Package exec is the workflow management system of the simulator: it
// schedules ready tasks onto compute nodes, drives each task through its
// read → compute → write lifecycle against the storage system, and emits
// the time-stamped trace whose last event is the makespan.
//
// Task semantics follow the paper's model: a compute task reads all its
// inputs (concurrent streams), computes for a duration given by Amdahl's
// law on its allocated cores, then writes all its outputs (concurrent
// streams). A stage-in task copies its files into the burst buffer one at a
// time ("the stage-in task is always sequential").
//
// Each execution of a task is an *attempt* (see recovery.go): under fault
// injection an attempt may be aborted mid-phase and the task retried on a
// surviving node, within the budget of Config.Retry.
package exec

import (
	"errors"
	"fmt"
	"math/rand"

	"bbwfsim/internal/adapt"
	"bbwfsim/internal/ckpt"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/workflow"
)

// Placement decides where data lands. Implementations live in
// internal/placement; the zero Config uses PFSOnly.
type Placement interface {
	// StageTarget returns the burst buffer a workflow input (or stage-in
	// file) should be staged into, or nil to leave it on the PFS.
	StageTarget(f *workflow.File, sys *storage.System, node *platform.Node) storage.Service
	// OutputTarget returns the service task t writes output f to, or nil
	// for the PFS.
	OutputTarget(t *workflow.Task, f *workflow.File, sys *storage.System, node *platform.Node) storage.Service
}

// PFSOnly places everything on the parallel file system: no burst-buffer
// use at all. It is the baseline configuration of every experiment.
type PFSOnly struct{}

// StageTarget implements Placement.
func (PFSOnly) StageTarget(*workflow.File, *storage.System, *platform.Node) storage.Service {
	return nil
}

// OutputTarget implements Placement.
func (PFSOnly) OutputTarget(*workflow.Task, *workflow.File, *storage.System, *platform.Node) storage.Service {
	return nil
}

// ComputeModel overrides the default compute-time model (Amdahl's law on
// the task's Work and Alpha). The synthetic testbed installs a model with
// per-category scaling behavior and measurement noise.
type ComputeModel interface {
	Duration(t *workflow.Task, node *platform.Node, cores int) float64
}

// Config tunes one simulated execution.
type Config struct {
	// Placement decides data placement; nil means PFSOnly.
	Placement Placement
	// Compute overrides the compute-time model when non-nil.
	Compute ComputeModel
	// NodePolicy selects nodes for ready tasks (default NodeFirstFit).
	NodePolicy NodePolicy
	// OrderPolicy orders the ready queue (default OrderFIFO).
	OrderPolicy OrderPolicy
	// CoresPerTask overrides every compute task's requested core count when
	// positive (the paper's "number of cores per task" sweeps). Negative
	// values are rejected.
	CoresPerTask int
	// PrePlaceInputs places workflow input files (files with no producer)
	// on their stage targets at time zero with no cost, in addition to the
	// PFS. This models executions whose stage-in cost is outside the
	// measured makespan (the 1000Genomes case study). Files produced by
	// stage-in tasks are never pre-placed.
	PrePlaceInputs bool
	// EnforcePrivateVisibility applies the private DataWarp rule the paper
	// describes ("access to files in the BB are limited to the compute
	// node that created them"): on a private-mode shared BB, a replica
	// written by another node is invisible and the reader falls back to
	// the PFS. Off by default, matching the paper's simulator, which does
	// not model it.
	EnforcePrivateVisibility bool
	// EvictAfterLastRead frees a file's burst-buffer replicas once its
	// last consumer finishes (scratch-data lifecycle management in the
	// spirit of MaDaTS, which the paper surveys). Terminal outputs are
	// never evicted. This lets aggressive placements fit burst buffers
	// smaller than the workflow footprint.
	EvictAfterLastRead bool
	// Background loads run alongside the workflow (e.g. checkpoint
	// traffic from other jobs, internal/checkpoint). They start just
	// before execution and stop implicitly when the workflow completes
	// (the engine halts at the last task's finish).
	Background []Background
	// Faults injects failures into the run (internal/faults). Nil — the
	// default — simulates a fault-free platform; such runs take identical
	// code paths and produce bit-identical traces whether or not this
	// feature exists. A model is single-use: build a fresh one per Run.
	Faults FaultModel
	// Retry bounds and paces re-execution of fault-killed tasks. Only
	// consulted when a fault actually kills something; the zero value
	// makes the first failure fatal.
	Retry RetryPolicy
	// Checkpoint configures task-level checkpoint/restart (checkpoint.go):
	// compute tasks periodically persist progress snapshots through the
	// storage system, and fault-killed tasks restart from the newest
	// surviving snapshot instead of recomputing from scratch. The zero
	// value disables checkpointing entirely; such runs take identical code
	// paths and produce bit-identical traces.
	Checkpoint ckpt.Policy
	// Adapt configures runtime adaptation (adapt.go): pressure-triggered
	// BB→PFS spill with hysteresis, fault-aware proactive replication, and
	// degradation-aware admission fallback. The zero value disables
	// adaptation entirely; such runs take identical code paths and produce
	// bit-identical traces.
	Adapt adapt.Policy
	// BBFallback redirects a write to the PFS when its burst-buffer target
	// has no space, instead of failing the run (graceful degradation — the
	// workflow slows down rather than dying). Rejections injected by the
	// fault model always fall back, with or without this flag.
	BBFallback bool
	// Metrics receives the run's phase profile: per-category virtual time
	// in each phase, committed once per task completion from the same
	// timestamps the trace records (so trace and metrics agree exactly),
	// plus wait times, completion counts, and fault-aborted partial time.
	// Nil — the default — records nothing; metrics never influence
	// simulated behavior either way.
	Metrics *metrics.Collector
	// Trace, when non-nil, receives the run's events instead of a freshly
	// built retained trace — the seam for the streaming and counting scale
	// modes (trace.NewStreaming / trace.NewCounting). It must be empty and
	// carry the run's workflow and platform names. The engine emits the
	// exact same event sequence in every mode.
	Trace *trace.Trace
}

// Background is a load generator that shares the platform with the
// workflow. Start is called once, after the storage system is primed and
// before the first task runs; implementations schedule their own activity
// on the platform's engine.
type Background interface {
	Start(sys *storage.System)
}

// Run simulates the workflow on the storage system's platform and returns
// the trace. The storage system must be freshly built (no prior traffic).
func Run(sys *storage.System, wf *workflow.Workflow, cfg Config) (*trace.Trace, error) {
	if wf == nil {
		return nil, fmt.Errorf("exec: nil workflow")
	}
	if cfg.CoresPerTask < 0 {
		return nil, fmt.Errorf("exec: negative CoresPerTask %d", cfg.CoresPerTask)
	}
	if err := cfg.Retry.validate(); err != nil {
		return nil, err
	}
	for i, bg := range cfg.Background {
		if bg == nil {
			return nil, fmt.Errorf("exec: nil Background entry at index %d", i)
		}
	}
	if err := cfg.Checkpoint.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	cfg.Checkpoint = cfg.Checkpoint.Normalized()
	if err := cfg.Adapt.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	cfg.Adapt = cfg.Adapt.Normalized()
	if cfg.Placement == nil {
		cfg.Placement = PFSOnly{}
	}
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	// A task demanding more memory than any node offers can never run.
	ram := sys.Platform().Config().RAMPerNode
	if ram > 0 {
		for _, t := range wf.Tasks() {
			if t.Memory() > ram {
				return nil, fmt.Errorf("exec: task %s demands %v memory but nodes have %v",
					t.ID(), t.Memory(), ram)
			}
		}
	}
	sched, err := newScheduler(cfg.NodePolicy, cfg.OrderPolicy, wf,
		float64(sys.Platform().Config().CoreSpeed))
	if err != nil {
		return nil, err
	}
	tr := cfg.Trace
	if tr == nil {
		tr = trace.New(wf.Name(), sys.Platform().Config().Name)
	}
	e := &engine{
		sys:       sys,
		wf:        wf,
		cfg:       cfg,
		sched:     sched,
		tr:        tr,
		remaining: make([]int, len(wf.Tasks())),
		readers:   make([]int, len(wf.Files())),
		done:      make([]bool, len(wf.Tasks())),
		doneOnce:  make([]bool, len(wf.Tasks())),
		active:    make([]*attempt, len(wf.Tasks())),
		tries:     make([]int, len(wf.Tasks())),
		kills:     make([]int, len(wf.Tasks())),
	}
	if cfg.Faults != nil && cfg.Retry.Jitter > 0 {
		e.retryRng = rand.New(rand.NewSource(cfg.Retry.Seed))
	}
	if cfg.Checkpoint.Enabled() {
		e.ckptWf = workflow.New(wf.Name() + "+ckpt")
		e.ckpts = map[*workflow.Task][]*ckptRec{}
		e.ckptOf = map[*workflow.File]*ckptRec{}
	}
	if cfg.Adapt.Enabled() {
		e.ad = newAdaptState(cfg.Adapt)
	}
	for _, f := range wf.Files() {
		e.readers[f.Index()] = len(f.Consumers())
	}
	if err := e.placeInputs(); err != nil {
		return nil, err
	}
	if e.ad != nil && cfg.Adapt.SpillEnabled() {
		// Reservations are the only moments occupancy rises mid-run; the
		// hook is the adaptation layer's pressure probe. Pre-placed inputs
		// bypass reservations, so probe once up front too.
		sys.Manager().OnReserve(e.adaptPressure)
		for _, bb := range sys.AllBBs() {
			e.adaptPressure(bb)
		}
	}
	for _, t := range wf.Tasks() {
		e.remaining[t.Index()] = len(t.Parents())
		if e.remaining[t.Index()] == 0 {
			e.pushReady(t)
		}
	}
	for _, bg := range cfg.Background {
		bg.Start(sys)
	}
	if cfg.Faults != nil {
		cfg.Faults.Attach(e)
	}
	e.schedule()
	sys.Platform().Engine().Run()
	if e.err != nil {
		return nil, e.err
	}
	if e.finished != len(wf.Tasks()) {
		return nil, fmt.Errorf("exec: deadlock: %d of %d tasks finished (cores exhausted or unsatisfiable request)",
			e.finished, len(wf.Tasks()))
	}
	// Debug assert: failures, cancellations, and evictions must neither
	// leak reserved space nor drive usage negative.
	if err := sys.AuditCapacity(); err != nil {
		return nil, err
	}
	return e.tr, nil
}

type engine struct {
	sys   *storage.System
	wf    *workflow.Workflow
	cfg   Config
	sched *scheduler
	tr    *trace.Trace

	// Per-task and per-file run state, indexed by Task.Index()/File.Index():
	// dense slices, not maps — a million-task run touches these on every
	// event, and the hash+GC cost of pointer-keyed maps dominated profiles.
	// Checkpoint snapshot files (ckptWf) never appear here; they are
	// excluded before every readers consultation.
	remaining []int            // unfinished parents, per task
	readers   []int            // consumers not yet finished, per file
	ready     []*workflow.Task // sorted by the scheduler's order
	done      []bool           // task currently counts as finished
	// doneOnce stays true once a task has finished at least once, so a
	// lineage re-execution (recovery.go) cannot double-decrement the
	// readers counters.
	doneOnce []bool
	active   []*attempt // running attempt, per task (nil = none)
	tries    []int      // attempts started, per task
	kills    []int      // fault-charged failures, per task
	retryRng *rand.Rand // jitter stream; nil unless configured

	// Checkpoint state (checkpoint.go); all nil/zero unless the run has a
	// checkpoint policy.
	ckptWf  *workflow.Workflow            // holds snapshot files, outside the DAG
	ckpts   map[*workflow.Task][]*ckptRec // committed snapshots, oldest first
	ckptOf  map[*workflow.File]*ckptRec   // reverse index for replica-loss hooks
	ckptSeq int                           // snapshot file id counter

	// Adaptation state (adapt.go); nil unless the run has an adapt policy.
	ad *adaptState

	finished   int
	running    int
	inSchedule bool
	err        error
}

func (e *engine) now() float64 { return e.sys.Platform().Engine().Now() }

func (e *engine) fail(err error) {
	if e.err == nil {
		e.err = err
		e.sys.Platform().Engine().Stop()
	}
}

// placeInputs puts every true workflow input (no producer) on the PFS, and
// optionally pre-places it on its stage target.
func (e *engine) placeInputs() error {
	for _, f := range e.wf.Files() {
		if !f.IsInput() {
			continue
		}
		if err := e.sys.PlaceInitial(f, e.sys.PFS()); err != nil {
			return err
		}
		if e.cfg.PrePlaceInputs {
			// Pre-placement has no node context; policies that depend on
			// the node (on-node BBs) receive the consumer's node if there
			// is exactly one consumer, else node 0.
			node := e.sys.Platform().Node(0)
			if cs := f.Consumers(); len(cs) > 0 {
				node = e.nodeHint(cs[0])
			}
			if svc := e.cfg.Placement.StageTarget(f, e.sys, node); svc != nil && svc != e.sys.PFS() {
				if err := e.sys.PlaceInitial(f, svc); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// nodeHint guesses the node a task will run on, for pre-placement on
// on-node burst buffers: tasks spread round-robin by index.
func (e *engine) nodeHint(t *workflow.Task) *platform.Node {
	nodes := e.sys.Platform().Nodes()
	return nodes[t.Index()%len(nodes)]
}

func (e *engine) pushReady(t *workflow.Task) {
	e.ready = e.sched.insert(e.ready, t)
	e.tr.Record(e.now(), trace.TaskReady, t.ID(), "")
	e.tr.Task(t.ID()).ReadyAt = e.now()
}

// cores returns the core count task t runs with on node n.
func (e *engine) cores(t *workflow.Task, n *platform.Node) int {
	c := t.Cores()
	if e.cfg.CoresPerTask > 0 && t.Kind() == workflow.KindCompute {
		c = e.cfg.CoresPerTask
	}
	if c > n.Cores() {
		c = n.Cores()
	}
	if c < 1 {
		c = 1
	}
	return c
}

// schedule greedily starts every ready task that fits on some node,
// first-fit in node order, tasks in index order. Tasks leave the ready list
// before they start, and the reentrancy guard keeps synchronous task
// completions (e.g. zero-cost stage-ins) from recursing back in; the outer
// loop rescans until a full pass starts nothing. Down nodes refuse every
// task (platform.Node.HasResources), so under fault injection this is also
// where work re-routes onto surviving nodes.
func (e *engine) schedule() {
	if e.err != nil || e.inSchedule {
		return
	}
	e.inSchedule = true
	defer func() { e.inSchedule = false }()
	for {
		started := false
		// Saturation early-exit: every task needs at least one core, so once
		// no up node has a free core the rest of the ready scan can only
		// produce nil picks. Skipping it changes nothing observable but turns
		// the per-completion cost from O(ready) into O(started + nodes) — the
		// difference between hours and seconds on million-task ready queues.
		free := e.freeCores()
		for i := 0; i < len(e.ready) && free > 0; i++ {
			t := e.ready[i]
			chosen, cores := e.sched.pick(t, e.sys.Platform().Nodes(), e.cores)
			if chosen == nil {
				continue
			}
			e.ready = append(e.ready[:i], e.ready[i+1:]...)
			i--
			if !chosen.AllocateResources(cores, t.Memory()) {
				e.fail(fmt.Errorf("exec: resource accounting bug scheduling %s", t.ID()))
				return
			}
			free -= cores
			e.running++
			started = true
			e.startTask(t, chosen, cores)
			if e.err != nil {
				return
			}
		}
		// Synchronous completions inside startTask (zero-cost stage-ins) may
		// have released cores the local counter cannot see; the rescan below
		// recounts, so the fixpoint is the same as an unbounded scan.
		if !started {
			return
		}
	}
}

// freeCores sums the free cores of every up node.
func (e *engine) freeCores() int {
	total := 0
	for _, n := range e.sys.Platform().Nodes() {
		if !n.Down() {
			total += n.FreeCores()
		}
	}
	return total
}

func (e *engine) startTask(t *workflow.Task, node *platform.Node, cores int) {
	e.tries[t.Index()]++
	a := &attempt{task: t, node: node, cores: cores, n: e.tries[t.Index()]}
	e.active[t.Index()] = a
	rec := e.tr.Task(t.ID())
	rec.Name = t.Name()
	rec.Node = node.Name()
	rec.Cores = cores
	rec.StartedAt = e.now()
	rec.Retries = a.n - 1
	e.tr.Record(e.now(), trace.TaskStart, t.ID(), node.Name())
	switch t.Kind() {
	case workflow.KindStageIn:
		e.runStageIn(a, 0)
	case workflow.KindStageOut:
		e.runStageOut(a, 0)
	default:
		if e.ckpts != nil {
			if ck, svc := e.newestDurableCkpt(t, node); ck != nil {
				e.restoreFromCkpt(a, ck, svc)
				return
			}
		}
		e.runReads(a)
	}
}

// runStageOut drains the task's input files back to the PFS one at a
// time, starting at index i. Files already resident on the PFS cost
// nothing; burst-buffer-only files pay a copy through this node. A retried
// stage-out resumes past the files that already reached the PFS.
func (e *engine) runStageOut(a *attempt, i int) {
	if e.err != nil || a.aborted {
		return
	}
	t, node := a.task, a.node
	ins := t.Inputs()
	for i < len(ins) {
		f := ins[i]
		if e.sys.Registry().Has(f, e.sys.PFS()) {
			i++
			continue
		}
		src, err := e.sys.Registry().BestVisible(f, node, e.cfg.EnforcePrivateVisibility)
		if err != nil {
			if e.recoverLostInput(a, f) {
				return
			}
			e.fail(fmt.Errorf("exec: stage-out %s: %w", t.ID(), err))
			return
		}
		next := i + 1
		e.tr.Record(e.now(), trace.StageStart, t.ID(), f.ID()+"@"+src.Name()+"->pfs")
		op, cerr := e.sys.Manager().Copy(node, f, src, e.sys.PFS(), func() {
			if a.aborted {
				return
			}
			e.tr.Record(e.now(), trace.StageEnd, t.ID(), f.ID()+"@pfs")
			e.tr.Task(t.ID()).BytesWritten += f.Size()
			e.runStageOut(a, next)
		})
		if cerr != nil {
			e.fail(fmt.Errorf("exec: stage-out %s: %w", t.ID(), cerr))
			return
		}
		e.track(a, op)
		return
	}
	rec := e.tr.Task(t.ID())
	rec.ReadDoneAt = e.now()
	rec.ComputeDone = e.now()
	e.finishTask(a)
}

// runStageIn stages the task's output files one at a time, starting at
// index i. Files whose target is the PFS materialize instantly (they
// already reside on long-term storage); files bound for a burst buffer pay
// a sequential write, whose completion callback resumes the loop at the
// next file. A rejected or full burst-buffer target degrades gracefully:
// the file simply stays on the PFS.
func (e *engine) runStageIn(a *attempt, i int) {
	if e.err != nil || a.aborted {
		return
	}
	t, node := a.task, a.node
	outs := t.Outputs()
	for i < len(outs) {
		f := outs[i]
		// The file is on long-term storage regardless of staging.
		if !e.sys.Registry().Has(f, e.sys.PFS()) {
			if err := e.sys.PlaceInitial(f, e.sys.PFS()); err != nil {
				e.fail(err)
				return
			}
		}
		svc := e.cfg.Placement.StageTarget(f, e.sys, node)
		if svc == nil || svc == e.sys.PFS() {
			i++
			continue
		}
		if e.adaptFallback(t, f, svc) {
			// Degradation-aware admission: the file stays on the PFS
			// instead of queueing on the degraded buffer.
			i++
			continue
		}
		if e.cfg.Faults != nil && e.cfg.Faults.RejectBBAlloc(t, f) {
			e.tr.Record(e.now(), trace.BBReject, t.ID(), f.ID()+"@"+svc.Name())
			e.tr.Record(e.now(), trace.Fallback, t.ID(), f.ID()+"->pfs")
			i++
			continue
		}
		next := i + 1
		e.tr.Record(e.now(), trace.StageStart, t.ID(), f.ID()+"->"+svc.Name())
		op, err := e.sys.Manager().Write(node, f, svc, func() {
			if a.aborted {
				return
			}
			e.tr.Record(e.now(), trace.StageEnd, t.ID(), f.ID())
			e.tr.Task(t.ID()).BytesWritten += f.Size()
			e.runStageIn(a, next)
		})
		if err != nil {
			var full *storage.FullError
			if e.cfg.BBFallback && errors.As(err, &full) {
				e.tr.Record(e.now(), trace.Fallback, t.ID(), f.ID()+"->pfs (bb full)")
				i++
				continue
			}
			e.fail(fmt.Errorf("exec: stage-in %s: %w", t.ID(), err))
			return
		}
		e.track(a, op)
		return
	}
	rec := e.tr.Task(t.ID())
	rec.ReadDoneAt = e.now()
	rec.ComputeDone = e.now()
	e.finishTask(a)
}

// runReads reads the task's inputs with at most `cores` concurrent streams
// — one POSIX thread per core handles one file at a time, which is what
// makes I/O time shrink with the core count (the behavior the paper's
// Eq. 4 calibration implicitly assumes). It advances to the compute phase
// when the last read completes.
func (e *engine) runReads(a *attempt) {
	t := a.task
	inputs := t.Inputs()
	rec := e.tr.Task(t.ID())
	if len(inputs) == 0 {
		rec.ReadDoneAt = e.now()
		e.runCompute(a)
		return
	}
	pending := len(inputs)
	next := 0
	var startOne func()
	startOne = func() {
		if e.err != nil || a.aborted || next >= len(inputs) {
			return
		}
		f := inputs[next]
		next++
		done := func() {
			if a.aborted {
				return
			}
			e.tr.Record(e.now(), trace.ReadEnd, t.ID(), f.ID())
			rec.BytesRead += f.Size()
			pending--
			if e.err != nil {
				return
			}
			if pending == 0 {
				rec.ReadDoneAt = e.now()
				e.runCompute(a)
				return
			}
			startOne()
		}
		e.readInput(a, f, done)
	}
	for i := 0; i < a.cores && i < len(inputs); i++ {
		startOne()
		if e.err != nil || a.aborted {
			return
		}
	}
}

// readInput reads one input file, handling the private-mode visibility
// rule: when the only replica sits on a private shared BB created by
// another node, the creator first relocates it to the PFS (an on-demand
// stage-out — the data-management cost the paper attributes to shared BB
// designs), then the consumer reads the PFS copy. Under fault injection a
// file may have no replica at all (a node failure destroyed it after this
// task was scheduled); the attempt then parks behind the producer's
// re-execution instead of failing the run.
func (e *engine) readInput(a *attempt, f *workflow.File, onDone func()) {
	t, node := a.task, a.node
	svc, err := e.sys.Registry().BestVisible(f, node, e.cfg.EnforcePrivateVisibility)
	if err == nil {
		e.tr.Record(e.now(), trace.ReadStart, t.ID(), f.ID()+"@"+svc.Name())
		op, rerr := e.sys.Manager().Read(node, f, svc, onDone)
		if rerr != nil {
			e.fail(fmt.Errorf("exec: task %s read %s: %w", t.ID(), f.ID(), rerr))
			return
		}
		e.track(a, op)
		return
	}
	// No visible replica. If an invisible private-BB replica exists,
	// relocate it through its creator; otherwise recover the lineage (fault
	// runs) or fail the run (the workflow is broken).
	for _, loc := range e.sys.Registry().Locations(f) {
		creator := e.sys.Registry().Creator(f, loc)
		if loc.Kind() != storage.KindPFS && creator != nil && creator != node {
			relocator := creator
			e.tr.Record(e.now(), trace.StageStart, t.ID(), f.ID()+"@"+loc.Name()+"->pfs")
			op, cerr := e.sys.Manager().Copy(relocator, f, loc, e.sys.PFS(), func() {
				if a.aborted {
					return
				}
				e.tr.Record(e.now(), trace.StageEnd, t.ID(), f.ID()+"@pfs")
				if e.err != nil {
					return
				}
				e.readInput(a, f, onDone)
			})
			if cerr != nil {
				e.fail(fmt.Errorf("exec: task %s relocate %s: %w", t.ID(), f.ID(), cerr))
				return
			}
			e.track(a, op)
			return
		}
	}
	if e.recoverLostInput(a, f) {
		return
	}
	e.fail(fmt.Errorf("exec: task %s: %w", t.ID(), err))
}

func (e *engine) runCompute(a *attempt) {
	t, node, cores := a.task, a.node, a.cores
	a.phase = phaseCompute
	e.tr.Record(e.now(), trace.ComputeStart, t.ID(), "")
	var dur float64
	if e.cfg.Compute != nil {
		dur = e.cfg.Compute.Duration(t, node, cores)
		if dur < 0 {
			e.fail(fmt.Errorf("exec: compute model returned negative duration for %s", t.ID()))
			return
		}
	} else {
		dur = node.ComputeTime(t.Work(), cores, t.Alpha())
	}
	a.computeTotal = dur
	e.computeSegment(a)
}

// computeSegment runs the next slice of the attempt's compute phase.
// Without an applicable checkpoint policy the slice is the whole remaining
// duration — a single timer, exactly the unsegmented behavior. With one,
// compute pauses every Interval seconds to persist a snapshot;
// writeCheckpoint re-enters this loop after the commit. A restored attempt
// starts with a.progress at the snapshot's mark and computes only the
// remainder.
func (e *engine) computeSegment(a *attempt) {
	if e.err != nil || a.aborted {
		return
	}
	t := a.task
	remaining := a.computeTotal - a.progress
	if remaining < 0 {
		remaining = 0
	}
	seg := remaining
	ckptAfter := false
	if pol := e.cfg.Checkpoint; pol.Enabled() && !a.ckptOff &&
		pol.Interval < remaining && pol.SizeFor(t) > 0 {
		seg = pol.Interval
		ckptAfter = true
	}
	a.segStart = e.now()
	a.computeEv = e.sys.Platform().Engine().After(seg, func() {
		a.computeEv = sim.Handle{}
		a.progress += seg
		if ckptAfter {
			e.writeCheckpoint(a)
			return
		}
		rec := e.tr.Task(t.ID())
		rec.ComputeDone = e.now()
		e.tr.Record(e.now(), trace.ComputeEnd, t.ID(), "")
		e.runWrites(a)
	})
}

// runWrites writes the task's outputs with at most `cores` concurrent
// streams (see runReads) and finishes the task when the last one
// completes. A burst-buffer target rejected by the fault model — or full,
// when BBFallback is set — degrades to the PFS instead of failing the run.
func (e *engine) runWrites(a *attempt) {
	t, node := a.task, a.node
	a.phase = phaseWrite
	outputs := t.Outputs()
	rec := e.tr.Task(t.ID())
	if len(outputs) == 0 {
		e.finishTask(a)
		return
	}
	pending := len(outputs)
	next := 0
	var startOne func()
	startOne = func() {
		if e.err != nil || a.aborted || next >= len(outputs) {
			return
		}
		f := outputs[next]
		next++
		svc := e.cfg.Placement.OutputTarget(t, f, e.sys, node)
		if svc == nil {
			svc = e.sys.PFS()
		}
		if svc != e.sys.PFS() && e.adaptFallback(t, f, svc) {
			svc = e.sys.PFS()
		}
		if svc != e.sys.PFS() && e.cfg.Faults != nil && e.cfg.Faults.RejectBBAlloc(t, f) {
			e.tr.Record(e.now(), trace.BBReject, t.ID(), f.ID()+"@"+svc.Name())
			e.tr.Record(e.now(), trace.Fallback, t.ID(), f.ID()+"->pfs")
			svc = e.sys.PFS()
		}
		onDone := func() {
			if a.aborted {
				return
			}
			e.tr.Record(e.now(), trace.WriteEnd, t.ID(), f.ID())
			rec.BytesWritten += f.Size()
			pending--
			if e.err != nil {
				return
			}
			if pending == 0 {
				e.finishTask(a)
				return
			}
			startOne()
		}
		e.tr.Record(e.now(), trace.WriteStart, t.ID(), f.ID()+"@"+svc.Name())
		op, err := e.sys.Manager().Write(node, f, svc, onDone)
		if err != nil && svc != e.sys.PFS() && e.cfg.BBFallback {
			var full *storage.FullError
			if errors.As(err, &full) {
				e.tr.Record(e.now(), trace.Fallback, t.ID(), f.ID()+"->pfs (bb full)")
				svc = e.sys.PFS()
				e.tr.Record(e.now(), trace.WriteStart, t.ID(), f.ID()+"@"+svc.Name())
				op, err = e.sys.Manager().Write(node, f, svc, onDone)
			}
		}
		if err != nil {
			e.fail(fmt.Errorf("exec: task %s write %s: %w", t.ID(), f.ID(), err))
			return
		}
		e.track(a, op)
	}
	for i := 0; i < a.cores && i < len(outputs); i++ {
		startOne()
		if e.err != nil || a.aborted {
			return
		}
	}
}

func (e *engine) finishTask(a *attempt) {
	t := a.task
	rec := e.tr.Task(t.ID())
	rec.FinishedAt = e.now()
	e.tr.Record(e.now(), trace.TaskEnd, t.ID(), "")
	e.commitPhases(t, rec)
	e.chargeExecuted(a, true)
	// Scale modes fold the finished record into its per-name summary here,
	// keeping live trace state O(active tasks); retained traces no-op.
	e.tr.Release(t.ID())
	e.clearCkpts(t)
	a.node.ReleaseResources(a.cores, t.Memory())
	e.running--
	e.active[t.Index()] = nil
	a.ops = nil
	e.done[t.Index()] = true
	e.finished++
	first := !e.doneOnce[t.Index()]
	e.doneOnce[t.Index()] = true
	if e.cfg.EvictAfterLastRead && first {
		for _, f := range t.Inputs() {
			e.readers[f.Index()]--
			if e.readers[f.Index()] == 0 {
				e.evictScratch(f)
			}
		}
	}
	for _, c := range t.Children() {
		// Guards matter only under fault injection: a lineage re-execution
		// must not decrement children that already ran (done) or that are
		// not waiting on dependencies (remaining 0: running or retrying).
		if e.done[c.Index()] || e.remaining[c.Index()] == 0 {
			continue
		}
		e.remaining[c.Index()]--
		if e.remaining[c.Index()] == 0 {
			e.pushReady(c)
		}
	}
	if e.finished == len(e.wf.Tasks()) {
		// The makespan is fixed now; stop the engine so background load
		// (checkpoint traffic, monitors) cannot keep the clock running.
		e.sys.Platform().Engine().Stop()
		return
	}
	e.schedule()
}

// commitPhases records the completed task's phase profile, once per
// completion. The durations are differences of the exact timestamps the
// trace's task record carries for the final attempt, and they are added to
// the per-category counters in completion order — so a reconstruction of
// the same differences from the event trace (internal/invariants) matches
// the emitted snapshot bitwise, including under retries and fallbacks.
func (e *engine) commitPhases(t *workflow.Task, rec *trace.TaskRecord) {
	col := e.cfg.Metrics
	if col == nil {
		return
	}
	name := t.Name()
	switch t.Kind() {
	case workflow.KindStageIn:
		col.Add(metrics.TaskPhaseSecondsTotal,
			metrics.Key{Task: name, Phase: metrics.PhaseStageIn}, rec.FinishedAt-rec.StartedAt)
	case workflow.KindStageOut:
		col.Add(metrics.TaskPhaseSecondsTotal,
			metrics.Key{Task: name, Phase: metrics.PhaseStageOut}, rec.FinishedAt-rec.StartedAt)
	default:
		col.Add(metrics.TaskPhaseSecondsTotal,
			metrics.Key{Task: name, Phase: metrics.PhaseRead}, rec.ReadDoneAt-rec.StartedAt)
		col.Add(metrics.TaskPhaseSecondsTotal,
			metrics.Key{Task: name, Phase: metrics.PhaseCompute}, rec.ComputeDone-rec.ReadDoneAt)
		col.Add(metrics.TaskPhaseSecondsTotal,
			metrics.Key{Task: name, Phase: metrics.PhaseWrite}, rec.FinishedAt-rec.ComputeDone)
	}
	col.Add(metrics.TaskWaitSecondsTotal, metrics.Key{Task: name}, rec.StartedAt-rec.ReadyAt)
	col.Add(metrics.TasksCompletedTotal, metrics.Key{Task: name}, 1)
}

// evictScratch frees the burst-buffer replicas of a file whose last
// consumer has finished. Terminal outputs (no consumers at all) never
// reach here, so only scratch data is discarded.
func (e *engine) evictScratch(f *workflow.File) {
	if e.ad != nil {
		// A spill of a file whose last consumer just finished is pointless:
		// cancel it so the eviction below frees the space exactly once.
		e.cancelSpill(f)
	}
	for _, svc := range e.sys.Registry().Locations(f) {
		if svc.Kind() == storage.KindPFS {
			continue
		}
		if err := e.sys.Manager().Evict(f, svc); err != nil {
			e.fail(err)
			return
		}
	}
}
