package exec_test

import (
	"strings"
	"testing"

	"bbwfsim/internal/ckpt"
	"bbwfsim/internal/exec"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// scripted is a FaultModel that hands the controller to a test closure,
// which schedules its own failures at exact virtual times.
type scripted struct {
	script func(ctrl exec.FaultController)
}

func (s *scripted) Attach(ctrl exec.FaultController) { s.script(ctrl) }

func (s *scripted) RejectBBAlloc(*workflow.Task, *workflow.File) bool { return false }

// detailOf returns the detail of the first event of the given kind.
func detailOf(tr *trace.Trace, kind trace.EventKind) (string, bool) {
	for _, ev := range tr.Events() {
		if ev.Kind == kind {
			return ev.Detail, true
		}
	}
	return "", false
}

// TestNilBackgroundRejected: a nil entry in Background would panic at
// Start; it must be reported as a config error naming the index.
func TestNilBackgroundRejected(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 1e9, Cores: 1})
	_, err := exec.Run(sys, wf, exec.Config{Background: []exec.Background{nil}})
	if err == nil {
		t.Fatal("Run accepted a nil Background entry")
	}
	if !strings.Contains(err.Error(), "Background") || !strings.Contains(err.Error(), "0") {
		t.Errorf("error %q does not name the offending entry", err)
	}
}

// TestInvalidCheckpointPolicyRejected: checkpoint policies are validated
// before the simulation starts.
func TestInvalidCheckpointPolicyRejected(t *testing.T) {
	cases := []struct {
		name    string
		p       ckpt.Policy
		wantErr string
	}{
		{"negative interval", ckpt.Policy{Interval: -5}, "interval must be positive"},
		{"target without interval", ckpt.Policy{Target: ckpt.TargetBB}, "without a positive interval"},
		{"unknown target", ckpt.Policy{Interval: 60, Target: "tape"}, "unknown checkpoint target"},
		{"negative drain delay", ckpt.Policy{Interval: 60, DrainDelay: -1}, "negative drain delay"},
		{"drain to pfs", ckpt.Policy{Interval: 60, Target: ckpt.TargetPFS, Drain: true}, "drain requires a burst-buffer target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := newSystem(t, testConfig(1, 4))
			wf := workflow.New("one")
			wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 1e9, Cores: 1})
			_, err := exec.Run(sys, wf, exec.Config{Checkpoint: tc.p})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Run = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestCheckpointLifecycleFaultFree: a 10 s task with Interval 3 commits
// snapshots at progress 3, 6, and 9 (the last segment is shorter than the
// interval, so no snapshot follows it), pays their write time, and retires
// every snapshot replica at completion.
func TestCheckpointLifecycleFaultFree(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 10e9, Cores: 1})
	col := metrics.New("test", "one")
	tr, err := exec.Run(sys, wf, exec.Config{
		Checkpoint: ckpt.Policy{Interval: 3, Target: ckpt.TargetBB, MinSize: 80 * units.MB},
		Metrics:    col,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.CountKind(trace.CkptBegin); got != 3 {
		t.Errorf("CkptBegin count = %d, want 3", got)
	}
	if got := tr.CountKind(trace.CkptCommit); got != 3 {
		t.Errorf("CkptCommit count = %d, want 3", got)
	}
	// 10 s compute + 3 × (80 MB at 800 MB/s) = 10.3 s.
	if !approx(tr.Makespan(), 10.3, 1e-9) {
		t.Errorf("makespan = %v, want 10.3", tr.Makespan())
	}
	// Completion retires the whole snapshot chain.
	if used := sys.SharedBB().Used(); used != 0 {
		t.Errorf("BB used = %v after completion, want 0", used)
	}
	snap := col.Snapshot()
	wantBytes := float64(3 * 80 * units.MB)
	if got := snap.Counter(metrics.CkptBytesTotal, metrics.Key{Tier: "shared-bb", Op: metrics.OpWrite}); got != wantBytes {
		t.Errorf("ckpt bytes = %g, want %g", got, wantBytes)
	}
	if got := snap.Counter(metrics.CkptOverheadSecondsTotal, metrics.Key{Tier: "shared-bb", Op: metrics.OpWrite}); !approx(got, 0.3, 1e-9) {
		t.Errorf("ckpt overhead = %g, want 0.3", got)
	}
	// Fault-free: executed compute equals the task's compute duration.
	if got := snap.Counter(metrics.ComputeExecutedSecondsTotal, metrics.Key{Task: "t"}); !approx(got, 10, 1e-9) {
		t.Errorf("executed compute = %g, want 10", got)
	}
}

// TestRestartFromCheckpointBeatsLineage: the same scripted crash, with and
// without a checkpoint policy. The checkpointed run restarts from the
// newest snapshot, re-executes strictly less compute, and finishes
// strictly earlier.
func TestRestartFromCheckpointBeatsLineage(t *testing.T) {
	run := func(pol ckpt.Policy) (*trace.Trace, *metrics.Snapshot) {
		t.Helper()
		sys := newSystem(t, testConfig(1, 4))
		wf := workflow.New("one")
		wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 10e9, Cores: 1})
		col := metrics.New("test", "one")
		fm := &scripted{script: func(ctrl exec.FaultController) {
			ctrl.System().Platform().Engine().After(8, func() {
				if running := ctrl.Running(); len(running) > 0 {
					ctrl.KillTask(running[0], "scripted crash")
				}
			})
		}}
		tr, err := exec.Run(sys, wf, exec.Config{
			Checkpoint: pol,
			Faults:     fm,
			Retry:      exec.RetryPolicy{MaxRetries: 1},
			Metrics:    col,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr, col.Snapshot()
	}

	lineage, lsnap := run(ckpt.Policy{})
	ck, csnap := run(ckpt.Policy{Interval: 3, Target: ckpt.TargetBB, MinSize: 80 * units.MB})

	if got := ck.CountKind(trace.RestartFrom); got != 1 {
		t.Fatalf("RestartFrom count = %d, want 1", got)
	}
	if d, _ := detailOf(ck, trace.RestartFrom); !strings.Contains(d, "p=6") {
		t.Errorf("RestartFrom detail = %q, want progress 6 (commits at 3 and 6 before the crash at t=8)", d)
	}
	if ck.Makespan() >= lineage.Makespan() {
		t.Errorf("checkpointed makespan %v not less than lineage %v", ck.Makespan(), lineage.Makespan())
	}
	key := metrics.Key{Task: "t"}
	le := lsnap.Counter(metrics.ComputeExecutedSecondsTotal, key)
	ce := csnap.Counter(metrics.ComputeExecutedSecondsTotal, key)
	if ce >= le {
		t.Errorf("checkpointed executed compute %g not less than lineage %g", ce, le)
	}
	if got := csnap.Counter(metrics.CkptRecoveredSecondsTotal, metrics.Key{Tier: "shared-bb"}); !approx(got, 6, 1e-9) {
		t.Errorf("recovered seconds = %g, want 6", got)
	}
}

// TestNodeFailureLosesBBCheckpoints: on a private-mode shared BB a
// checkpoint dies with its writer node (CkptLost); with a PFS target the
// same failure leaves the snapshot durable and the retry restarts from it.
func TestNodeFailureLosesBBCheckpoints(t *testing.T) {
	run := func(target ckpt.Target) *trace.Trace {
		t.Helper()
		sys := newSystem(t, testConfig(2, 4))
		wf := workflow.New("one")
		wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 10e9, Cores: 1})
		fm := &scripted{script: func(ctrl exec.FaultController) {
			ctrl.System().Platform().Engine().After(8, func() {
				if running := ctrl.Running(); len(running) > 0 {
					if n := ctrl.NodeOf(running[0]); n != nil {
						ctrl.FailNode(n, "scripted failure")
					}
				}
			})
		}}
		tr, err := exec.Run(sys, wf, exec.Config{
			Checkpoint: ckpt.Policy{Interval: 3, Target: target, MinSize: 80 * units.MB},
			Faults:     fm,
			Retry:      exec.RetryPolicy{MaxRetries: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}

	bb := run(ckpt.TargetBB)
	if got := bb.CountKind(trace.CkptLost); got == 0 {
		t.Error("BB-target run recorded no CkptLost after the writer node failed")
	}
	if got := bb.CountKind(trace.RestartFrom); got != 0 {
		t.Errorf("BB-target run restarted from a dead snapshot (%d RestartFrom)", got)
	}

	pfs := run(ckpt.TargetPFS)
	if got := pfs.CountKind(trace.CkptLost); got != 0 {
		t.Errorf("PFS-target run lost %d snapshots to a node failure", got)
	}
	if got := pfs.CountKind(trace.RestartFrom); got != 1 {
		t.Errorf("PFS-target run RestartFrom count = %d, want 1", got)
	}
	if pfs.Makespan() >= bb.Makespan() {
		t.Errorf("durable-checkpoint makespan %v not less than scratch-checkpoint %v",
			pfs.Makespan(), bb.Makespan())
	}
}

// TestCrashBetweenCommitAndDrain: a node failure after a snapshot commits
// but before its drain completes loses the un-drained snapshot; recovery
// falls back to the previous, already-drained one.
func TestCrashBetweenCommitAndDrain(t *testing.T) {
	sys := newSystem(t, testConfig(2, 4))
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 10e9, Cores: 1})
	fm := &scripted{script: func(ctrl exec.FaultController) {
		// Commits land at p=2 (t≈2.06) and p=4 (t≈4.13); drains run 0.5 s
		// after commit and take 0.5 s (50 MB at the PFS's 100 MB/s). At
		// t=4.5 the first snapshot is drained, the second is not.
		ctrl.System().Platform().Engine().After(4.5, func() {
			if running := ctrl.Running(); len(running) > 0 {
				if n := ctrl.NodeOf(running[0]); n != nil {
					ctrl.FailNode(n, "scripted failure")
				}
			}
		})
	}}
	tr, err := exec.Run(sys, wf, exec.Config{
		Checkpoint: ckpt.Policy{
			Interval: 2, Target: ckpt.TargetBB, Drain: true, DrainDelay: 0.5,
			MinSize: 50 * units.MB,
		},
		Faults: fm,
		Retry:  exec.RetryPolicy{MaxRetries: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.CountKind(trace.CkptDrain); got == 0 {
		t.Fatal("no drain completed before the failure")
	}
	if got := tr.CountKind(trace.CkptLost); got == 0 {
		t.Error("the un-drained snapshot was not recorded lost")
	}
	d, ok := detailOf(tr, trace.RestartFrom)
	if !ok {
		t.Fatal("no RestartFrom: recovery did not fall back to the drained snapshot")
	}
	if !strings.Contains(d, "p=2") {
		t.Errorf("RestartFrom detail = %q, want fallback to the drained snapshot at p=2", d)
	}
}

// TestRetryExhaustionDuringDegradation: a crash process outpacing the
// retry budget inside an open BB-degradation window must fail the run with
// the budget error — not hang, panic, or leak reserved capacity.
func TestRetryExhaustionDuringDegradation(t *testing.T) {
	sys := newSystem(t, testConfig(2, 4))
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 30e9, Cores: 1})
	inj, err := faults.New(faults.Config{
		Seed:      7,
		TaskCrash: &faults.CrashProcess{Arrival: faults.Exp(2)},
		BBDegrade: &faults.DegradeProcess{Arrival: faults.Exp(0.1), Duration: 1000, Factor: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = exec.Run(sys, wf, exec.Config{
		Checkpoint: ckpt.Policy{Interval: 3, Target: ckpt.TargetBB, MinSize: 80 * units.MB},
		Faults:     inj,
		Retry:      exec.RetryPolicy{MaxRetries: 2},
	})
	if err == nil {
		t.Fatal("run survived a crash process faster than its retry budget")
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("error = %q, want retry-budget exhaustion", err)
	}
}

// TestNodeFailureDuringStageOut: a node failure mid-stage-out retries the
// stage-out on a surviving node and still lands every file on the PFS.
func TestNodeFailureDuringStageOut(t *testing.T) {
	sys := newSystem(t, testConfig(2, 4))
	wf := workflow.New("so")
	wf.MustAddFile("result", 200*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "produce", Work: 1e9, Outputs: []string{"result"}})
	wf.MustAddTask(workflow.TaskSpec{
		ID: "stage_out", Kind: workflow.KindStageOut, Inputs: []string{"result"},
	})
	pol := placement.NewExplicit("res", []string{"result"})
	fm := &scripted{script: func(ctrl exec.FaultController) {
		// produce ends ≈1.25 s; the stage-out copy (200 MB at the PFS's
		// 100 MB/s) runs ≈1.25–3.25 s. Fail the stage-out's node mid-copy.
		ctrl.System().Platform().Engine().After(2, func() {
			if running := ctrl.Running(); len(running) > 0 {
				if n := ctrl.NodeOf(running[0]); n != nil {
					ctrl.FailNode(n, "scripted failure")
				}
			}
		})
	}}
	tr, err := exec.Run(sys, wf, exec.Config{Placement: pol, Faults: fm,
		Retry: exec.RetryPolicy{MaxRetries: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Registry().Has(wf.File("result"), sys.PFS()) {
		t.Error("result not on PFS after recovered stage-out")
	}
	if got := tr.CountKind(trace.TaskFail); got == 0 {
		t.Error("scripted node failure killed nothing")
	}
	if rec := tr.Lookup("stage_out"); rec.Retries == 0 {
		t.Error("stage-out completed without the expected retry")
	}
}

// TestCheckpointSkippedWhenNoTierFits: when neither the BB nor the PFS can
// hold a snapshot, checkpointing turns itself off for the attempt and the
// task still completes (no commits, no failure).
func TestCheckpointSkippedWhenNoTierFits(t *testing.T) {
	cfg := testConfig(1, 4)
	cfg.BB.Capacity = 10 * units.MB
	cfg.PFS.Capacity = 10 * units.MB
	sys := newSystem(t, cfg)
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 10e9, Cores: 1})
	tr, err := exec.Run(sys, wf, exec.Config{
		Checkpoint: ckpt.Policy{Interval: 3, Target: ckpt.TargetBB, MinSize: 80 * units.MB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.CountKind(trace.CkptCommit); got != 0 {
		t.Errorf("CkptCommit count = %d on a full platform, want 0", got)
	}
	if !approx(tr.Makespan(), 10, 1e-9) {
		t.Errorf("makespan = %v, want 10 (no checkpoint overhead)", tr.Makespan())
	}
}

// TestTasksWithoutMemoryNotCheckpointed: a policy sized from the memory
// footprint skips tasks that declare none.
func TestTasksWithoutMemoryNotCheckpointed(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 10e9, Cores: 1})
	tr, err := exec.Run(sys, wf, exec.Config{
		Checkpoint: ckpt.Policy{Interval: 3, Target: ckpt.TargetBB, SizeFraction: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.CountKind(trace.CkptBegin); got != 0 {
		t.Errorf("CkptBegin count = %d for a task with no memory footprint, want 0", got)
	}
	if !approx(tr.Makespan(), 10, 1e-9) {
		t.Errorf("makespan = %v, want 10", tr.Makespan())
	}
}
