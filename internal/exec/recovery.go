// Recovery: the failure side of the workflow management system.
//
// The execution engine runs each task as a cancellable *attempt*. A fault
// model (internal/faults) attached through Config.Faults drives failures
// through the FaultController surface: it can crash a running task, fail a
// whole compute node (killing resident attempts and destroying the burst-
// buffer replicas that lived there), or reject burst-buffer allocations.
// The engine answers with the recovery policies configured on Config:
// per-task retry budgets with virtual-time backoff, re-scheduling onto
// surviving nodes through the ordinary NodePolicy, lineage re-execution of
// finished tasks whose only output replica was destroyed, and graceful
// fallback to the PFS when a burst-buffer target is rejected or full.
//
// Everything here is inert unless Config.Faults is set: fault-free runs
// take the exact same code paths, emit the exact same traces, and pay no
// bookkeeping beyond a nil check.
package exec

import (
	"fmt"
	"math"
	"math/rand"

	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/workflow"
)

// FaultModel injects failures into one execution. Implementations live in
// internal/faults; a model is single-use (its seeded streams advance as the
// run progresses), so build a fresh one per Run.
type FaultModel interface {
	// Attach binds the model to a run before the first task starts. The
	// model schedules its failure processes on the run's engine (reachable
	// via ctrl.System().Platform().Engine()) and drives failures through
	// ctrl. The controller stays valid for the whole run.
	Attach(ctrl FaultController)
	// RejectBBAlloc reports whether the burst-buffer allocation task t
	// requests for file f is rejected (DataWarp allocation failure). A
	// rejected allocation falls back to the PFS instead of aborting.
	RejectBBAlloc(t *workflow.Task, f *workflow.File) bool
}

// FaultController is the control surface the execution engine exposes to a
// FaultModel. All methods are deterministic given the run's inputs.
type FaultController interface {
	// System returns the run's storage system (and through it the
	// platform, engine, and flow network).
	System() *storage.System
	// Running returns the currently running tasks, ordered by task index.
	Running() []*workflow.Task
	// NodeOf returns the node a running task occupies, or nil.
	NodeOf(t *workflow.Task) *platform.Node
	// UpNodes returns the nodes currently up, in index order.
	UpNodes() []*platform.Node
	// KillTask crashes a running task attempt. The task retries under the
	// run's RetryPolicy; an exhausted budget fails the run.
	KillTask(t *workflow.Task, reason string)
	// FailNode takes a node down: resident attempts are killed (charged
	// against their retry budgets) and burst-buffer replicas resident on
	// the node — its node-local BB, or its private-mode shared-BB replicas
	// — are destroyed. Finished tasks whose only replica was destroyed are
	// re-executed (lineage recovery).
	FailNode(n *platform.Node, cause string)
	// RepairNode brings a failed node back; waiting tasks may schedule
	// onto it immediately.
	RepairNode(n *platform.Node)
	// Note records a fault-model event (degradation windows) in the trace.
	Note(kind trace.EventKind, detail string)
	// SetDegraded brackets a bandwidth-degradation window on svc: the fault
	// model calls it with true when the window opens and false when it
	// closes. The adaptation layer (adapt.go) reacts — degradation-aware
	// admission, proactive replication — while runs without an adapt policy
	// pay a nil check.
	SetDegraded(svc storage.Service, active bool)
}

// Backoff selects how retry delays grow with consecutive failures.
type Backoff int

const (
	// BackoffFixed waits BaseDelay before every retry.
	BackoffFixed Backoff = iota
	// BackoffExponential doubles the delay with each failure of the task:
	// BaseDelay, 2·BaseDelay, 4·BaseDelay, … capped at MaxDelay.
	BackoffExponential
)

// RetryPolicy bounds and paces task re-execution after fault-injected
// failures. The zero value retries nothing: the first failure is fatal.
type RetryPolicy struct {
	// MaxRetries is the per-task failure budget: a task may fail at most
	// MaxRetries times and still be retried; the next failure fails the
	// run.
	MaxRetries int
	// Backoff selects the delay growth (fixed or exponential).
	Backoff Backoff
	// BaseDelay is the virtual-time delay before the first retry, in
	// seconds. Zero retries immediately.
	BaseDelay float64
	// MaxDelay caps the exponential backoff; 0 means uncapped.
	MaxDelay float64
	// Jitter stretches each delay by a uniform factor in [1, 1+Jitter),
	// drawn from a dedicated stream seeded with Seed — never from global
	// randomness — so replays stay bit-identical.
	Jitter float64
	// Seed seeds the jitter stream. Only read when Jitter > 0.
	Seed int64
}

func (p RetryPolicy) validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("exec: negative retry budget %d", p.MaxRetries)
	}
	if p.BaseDelay < 0 || p.MaxDelay < 0 {
		return fmt.Errorf("exec: negative retry delay (base %g, max %g)", p.BaseDelay, p.MaxDelay)
	}
	if p.Jitter < 0 {
		return fmt.Errorf("exec: negative retry jitter %g", p.Jitter)
	}
	return nil
}

// delay returns the backoff before retry number `failures` (1-based).
func (p RetryPolicy) delay(failures int, rng *rand.Rand) float64 {
	d := p.BaseDelay
	if p.Backoff == BackoffExponential && failures > 1 {
		d = p.BaseDelay * math.Pow(2, float64(failures-1))
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 && rng != nil {
		d *= 1 + p.Jitter*rng.Float64()
	}
	return d
}

// phase tracks how far an attempt has progressed, deciding whether a lost
// input still matters (an attempt past its read phase holds the data in
// memory and survives the loss of the replica it read from).
type phase int

const (
	phaseRead phase = iota
	phaseCompute
	phaseWrite
)

// attempt is one try at executing a task: the unit of failure. Aborting an
// attempt cancels its in-flight storage operations and its compute timer,
// releases its node resources, and discards its partially written outputs.
type attempt struct {
	task      *workflow.Task
	node      *platform.Node
	cores     int
	n         int // 1-based start count for this task
	phase     phase
	aborted   bool
	ops       []*storage.Op // in-flight and completed ops, start order
	computeEv sim.Handle    // pending compute-segment completion, if scheduled

	// Compute-phase segmentation (checkpoint.go). computeTotal is the full
	// compute duration of this attempt; progress counts the seconds whose
	// segments completed; restored is the prefix a checkpoint restore
	// contributed (zero on first attempts); segStart stamps the running
	// segment. ckptOff disables checkpointing for the rest of an attempt
	// whose snapshot write found no tier with space.
	computeTotal float64
	progress     float64
	restored     float64
	segStart     float64
	ckptOff      bool
}

// track remembers an operation so an abort can cancel it. Only fault-enabled
// runs pay for the bookkeeping.
func (e *engine) track(a *attempt, op *storage.Op) {
	if e.cfg.Faults != nil {
		a.ops = append(a.ops, op)
	}
}

// --- FaultController implementation --------------------------------------

// System implements FaultController.
func (e *engine) System() *storage.System { return e.sys }

// Running implements FaultController: running tasks in index order (the
// active slice is indexed by task index, so iteration order is index order).
func (e *engine) Running() []*workflow.Task {
	var ts []*workflow.Task
	for _, a := range e.active {
		if a != nil {
			ts = append(ts, a.task)
		}
	}
	return ts
}

// NodeOf implements FaultController.
func (e *engine) NodeOf(t *workflow.Task) *platform.Node {
	if a := e.active[t.Index()]; a != nil {
		return a.node
	}
	return nil
}

// UpNodes implements FaultController.
func (e *engine) UpNodes() []*platform.Node {
	var up []*platform.Node
	for _, n := range e.sys.Platform().Nodes() {
		if !n.Down() {
			up = append(up, n)
		}
	}
	return up
}

// Note implements FaultController.
func (e *engine) Note(kind trace.EventKind, detail string) {
	e.tr.Record(e.now(), kind, "", detail)
}

// KillTask implements FaultController: crash the task's current attempt and
// arrange its retry (or fail the run when the budget is gone).
func (e *engine) KillTask(t *workflow.Task, reason string) {
	if e.err != nil {
		return
	}
	a := e.active[t.Index()]
	if a == nil {
		return
	}
	e.crashAttempt(a, reason)
	e.schedule()
}

// crashAttempt is KillTask without the trailing reschedule, for callers
// that batch several kills (node failure).
func (e *engine) crashAttempt(a *attempt, reason string) {
	t := a.task
	e.abortAttempt(a)
	e.tr.Record(e.now(), trace.TaskFail, t.ID(), reason)
	if e.err != nil {
		return
	}
	e.kills[t.Index()]++
	if e.kills[t.Index()] > e.cfg.Retry.MaxRetries {
		e.fail(fmt.Errorf("exec: task %s failed permanently (%s): retry budget %d exhausted",
			t.ID(), reason, e.cfg.Retry.MaxRetries))
		return
	}
	delay := e.cfg.Retry.delay(e.kills[t.Index()], e.retryRng)
	e.sys.Platform().Engine().After(delay, func() {
		// The task may have been parked behind a resurrected producer in
		// the meantime; the dependency machinery re-queues it then.
		if e.err != nil || e.done[t.Index()] || e.active[t.Index()] != nil || e.remaining[t.Index()] > 0 || e.inReady(t) {
			return
		}
		e.tr.Record(e.now(), trace.TaskRetry, t.ID(), fmt.Sprintf("attempt %d", e.tries[t.Index()]+1))
		e.pushReady(t)
		e.schedule()
	})
}

// FailNode implements FaultController.
func (e *engine) FailNode(n *platform.Node, cause string) {
	if e.err != nil || n.Down() {
		return
	}
	n.SetDown(true)
	e.tr.Record(e.now(), trace.NodeFail, "", n.Name()+": "+cause)
	for _, t := range e.Running() {
		a := e.active[t.Index()]
		if a != nil && a.node == n {
			e.crashAttempt(a, "node "+n.Name()+" failed")
			if e.err != nil {
				return
			}
		}
	}
	e.loseNodeReplicas(n)
	if e.err == nil && e.ad != nil && e.ad.pol.ReplicateOnFault {
		// Fault-aware replication: the failure just proved nodes die — get
		// sole-replica inputs of still-pending tasks off the at-risk tiers
		// before the next one does.
		e.adaptReplicate(nil)
	}
	e.schedule()
}

// RepairNode implements FaultController.
func (e *engine) RepairNode(n *platform.Node) {
	if e.err != nil || !n.Down() {
		return
	}
	n.SetDown(false)
	e.tr.Record(e.now(), trace.NodeRepair, "", n.Name())
	e.schedule()
}

// abortAttempt tears one attempt down: no more callbacks, no leaked
// resources, no half-written outputs. The attempt's partial virtual time
// is charged to the aborted-seconds counter (every abort is followed by a
// TaskFail record at this same instant, which is how the trace-side
// reconstruction rebuilds the identical value).
func (e *engine) abortAttempt(a *attempt) {
	a.aborted = true
	e.cfg.Metrics.Add(metrics.TaskAbortedSecondsTotal,
		metrics.Key{Task: a.task.Name()}, e.now()-e.tr.Task(a.task.ID()).StartedAt)
	e.chargeExecuted(a, false)
	if !a.computeEv.Cancelled() {
		e.sys.Platform().Engine().Cancel(a.computeEv)
		a.computeEv = sim.Handle{}
	}
	for _, op := range a.ops {
		op.Cancel() // no-op for ops that already completed
	}
	a.ops = nil
	a.node.ReleaseResources(a.cores, a.task.Memory())
	e.running--
	e.active[a.task.Index()] = nil
	e.dropOutputs(a.task)
}

// dropOutputs evicts every replica of the task's output files: a crashed
// attempt loses its partial outputs, and a task re-executed after replica
// loss regenerates all of them. Stage-in tasks keep their PFS placements —
// those model the file's permanent long-term-storage residence, not data
// the task moved.
func (e *engine) dropOutputs(t *workflow.Task) {
	for _, f := range t.Outputs() {
		if e.ad != nil {
			// An in-flight spill or replication of a dropped output would
			// re-register a replica of data the re-execution regenerates.
			e.cancelSpill(f)
			e.cancelReplication(f)
		}
		for _, svc := range e.sys.Registry().Locations(f) {
			if t.Kind() == workflow.KindStageIn && svc.Kind() == storage.KindPFS {
				continue
			}
			if err := e.sys.Manager().Evict(f, svc); err != nil {
				e.fail(err)
				return
			}
		}
	}
}

// loseNodeReplicas destroys the burst-buffer replicas a failed node hosted:
// everything on its node-local BB, and its own replicas on a private-mode
// shared BB ("access to files in the BB are limited to the compute node
// that created them" — when the creator dies, so does its allocation).
// Striped shared-BB replicas live on dedicated BB nodes and survive.
func (e *engine) loseNodeReplicas(n *platform.Node) {
	for _, svc := range e.sys.AllBBs() {
		var lost []*workflow.File
		switch {
		case svc.Kind() == storage.KindNodeBB && svc.Local(n):
			lost = e.sys.Registry().FilesOn(svc)
		case svc.Kind() == storage.KindSharedBB && svc.Mode() == platform.BBPrivate:
			for _, f := range e.sys.Registry().FilesOn(svc) {
				if e.sys.Registry().Creator(f, svc) == n {
					lost = append(lost, f)
				}
			}
		}
		for _, f := range lost {
			if !e.sys.Registry().Has(f, svc) {
				// Recovering an earlier file already tore this replica down
				// (aborted attempts discard their partial outputs).
				continue
			}
			if err := e.sys.Manager().Evict(f, svc); err != nil {
				e.fail(err)
				return
			}
			if e.ad != nil {
				// A spill or replication copy reading the destroyed replica
				// dies with it; cancel so its reservation returns.
				e.adaptReplicaLost(f, svc)
			}
			if ck := e.ckptOf[f]; ck != nil {
				// Checkpoint snapshots have no producer to re-execute; their
				// loss is handled by the checkpoint chain, not the lineage.
				e.loseCkptReplica(ck, svc)
				continue
			}
			e.recoverLostFile(f)
			if e.err != nil {
				return
			}
		}
	}
}

// recoverLostFile handles a destroyed replica: nothing to do while another
// replica survives (readers fall back through the registry ranking);
// otherwise the producer re-executes to regenerate it.
func (e *engine) recoverLostFile(f *workflow.File) {
	if e.sys.Registry().Located(f) {
		return
	}
	p := f.Producer()
	if p == nil {
		// Workflow inputs always keep a PFS replica (placeInputs), so a
		// sole-replica loss here indicates corrupted accounting.
		e.fail(fmt.Errorf("exec: workflow input %s lost its only replica", f.ID()))
		return
	}
	e.resurrect(p)
}

// resurrect re-executes a finished task whose output replica was destroyed
// (lineage recovery, the way Spark-style systems regenerate lost
// partitions). Children that still need the regenerated data return to the
// pending state; children past their read phase hold their inputs in memory
// and keep running.
func (e *engine) resurrect(p *workflow.Task) {
	if e.err != nil || !e.done[p.Index()] {
		return // already pending, ready, or running again
	}
	for _, c := range p.Children() {
		if e.done[c.Index()] {
			continue
		}
		if a := e.active[c.Index()]; a != nil {
			if a.phase != phaseRead {
				continue
			}
			e.abortAttempt(a)
			e.tr.Record(e.now(), trace.TaskFail, c.ID(), "lost input from "+p.ID())
			if e.err != nil {
				return
			}
		} else {
			e.removeReady(c)
		}
		e.remaining[c.Index()]++
	}
	e.dropOutputs(p)
	if e.err != nil {
		return
	}
	e.done[p.Index()] = false
	e.finished--
	e.tr.Record(e.now(), trace.TaskRetry, p.ID(), "re-execution: output replica lost")
	e.pushReady(p)
}

// recoverLostInput handles a running attempt that found no replica of an
// input file — possible only under fault injection, when a node failure
// (or scratch eviction racing one) destroyed data mid-schedule. The attempt
// parks until the producer regenerates the file. Reports whether recovery
// was arranged.
func (e *engine) recoverLostInput(a *attempt, f *workflow.File) bool {
	if e.cfg.Faults == nil {
		return false
	}
	p := f.Producer()
	if p == nil {
		return false
	}
	if e.done[p.Index()] {
		e.resurrect(p) // aborts a: it is a read-phase consumer of p
	}
	if e.active[a.task.Index()] == a && !a.aborted {
		// Producer is already re-running; park this attempt behind it.
		e.abortAttempt(a)
		e.tr.Record(e.now(), trace.TaskFail, a.task.ID(), "lost input "+f.ID())
		e.remaining[a.task.Index()]++
	}
	e.schedule()
	return true
}

// inReady reports whether t sits in the ready queue.
func (e *engine) inReady(t *workflow.Task) bool {
	for _, r := range e.ready {
		if r == t {
			return true
		}
	}
	return false
}

// removeReady pulls t out of the ready queue, reporting whether it was
// there.
func (e *engine) removeReady(t *workflow.Task) bool {
	for i, r := range e.ready {
		if r == t {
			e.ready = append(e.ready[:i], e.ready[i+1:]...)
			return true
		}
	}
	return false
}
