package exec_test

import (
	"bbwfsim/internal/exec"
	"math"
	"testing"
	"testing/quick"

	"bbwfsim/internal/placement"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

// testConfig is a platform with round numbers: 1 GFlop/s cores, 100 MB/s
// PFS, 800/950 MB/s shared BB, no latencies, no stream caps.
func testConfig(nodes, cores int) platform.Config {
	return platform.Config{
		Name:         "test",
		Nodes:        nodes,
		CoresPerNode: cores,
		CoreSpeed:    1 * units.GFlopPerSec,
		RAMPerNode:   64 * units.GiB,
		NodeLinkBW:   10 * units.GBps,
		PFS:          platform.StorageConfig{NetworkBW: 1 * units.GBps, DiskBW: 100 * units.MBps},
		BB:           platform.StorageConfig{NetworkBW: 800 * units.MBps, DiskBW: 950 * units.MBps},
		BBKind:       platform.BBShared,
		BBMode:       platform.BBPrivate,
	}
}

func newSystem(t *testing.T, cfg platform.Config) *storage.System {
	t.Helper()
	e := sim.NewEngine()
	p, err := platform.New(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return storage.NewSystem(p, nil)
}

func TestSingleComputeTask(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 4e9, Cores: 1})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 4.0, 1e-9) {
		t.Errorf("makespan = %v, want 4.0 (4 GFlop at 1 GFlop/s)", tr.Makespan())
	}
	rec := tr.Lookup("t")
	if rec == nil || rec.Cores != 1 || rec.Node == "" {
		t.Fatalf("bad record: %+v", rec)
	}
	if !approx(rec.ComputeTime(), 4.0, 1e-9) || rec.IOTime() != 0 {
		t.Errorf("phases wrong: compute=%v io=%v", rec.ComputeTime(), rec.IOTime())
	}
}

func TestMultiCoreSpeedup(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 4e9, Cores: 4})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 1.0, 1e-9) {
		t.Errorf("makespan = %v, want 1.0 (perfect speedup on 4 cores)", tr.Makespan())
	}
}

func TestCoresOverrideAndClamp(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("one")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 4e9, Cores: 1})
	// Override to 8, clamped to the node's 4 cores.
	tr, err := exec.Run(sys, wf, exec.Config{CoresPerTask: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 1.0, 1e-9) {
		t.Errorf("makespan = %v, want 1.0", tr.Makespan())
	}
	if tr.Lookup("t").Cores != 4 {
		t.Errorf("cores = %d, want clamped 4", tr.Lookup("t").Cores)
	}
}

func TestPipelineWithIO(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("chain")
	wf.MustAddFile("in", 100*units.MB)
	wf.MustAddFile("mid", 100*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "t1", Work: 4e9, Cores: 1, Inputs: []string{"in"}, Outputs: []string{"mid"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "t2", Work: 1e9, Cores: 1, Inputs: []string{"mid"}})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// t1: read 100MB at PFS 100MB/s (1s) + compute 4s + write 1s = 6s.
	// t2: read 1s + compute 1s = 2s. Total 8s.
	if !approx(tr.Makespan(), 8.0, 1e-9) {
		t.Errorf("makespan = %v, want 8.0", tr.Makespan())
	}
	r1 := tr.Lookup("t1")
	if !approx(r1.IOTime(), 2.0, 1e-9) {
		t.Errorf("t1 IO time = %v, want 2.0", r1.IOTime())
	}
	if r1.BytesRead != 100*units.MB || r1.BytesWritten != 100*units.MB {
		t.Errorf("t1 bytes = %v/%v", r1.BytesRead, r1.BytesWritten)
	}
	// Dependency respected.
	if tr.Lookup("t2").StartedAt < r1.FinishedAt {
		t.Error("t2 started before t1 finished")
	}
}

func TestDiamondParallelism(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("diamond")
	wf.MustAddFile("ab", 0)
	wf.MustAddFile("ac", 0)
	wf.MustAddFile("bd", 0)
	wf.MustAddFile("cd", 0)
	wf.MustAddTask(workflow.TaskSpec{ID: "a", Work: 1e9, Outputs: []string{"ab", "ac"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "b", Work: 3e9, Inputs: []string{"ab"}, Outputs: []string{"bd"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "c", Work: 3e9, Inputs: []string{"ac"}, Outputs: []string{"cd"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "d", Work: 1e9, Inputs: []string{"bd", "cd"}})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// b and c run in parallel (zero-size files): 1 + 3 + 1 = 5.
	if !approx(tr.Makespan(), 5.0, 1e-6) {
		t.Errorf("makespan = %v, want 5.0", tr.Makespan())
	}
	b, c := tr.Lookup("b"), tr.Lookup("c")
	if !approx(b.StartedAt, c.StartedAt, 1e-6) {
		t.Errorf("b and c should start together: %v vs %v", b.StartedAt, c.StartedAt)
	}
}

func TestCoreContentionSerializes(t *testing.T) {
	sys := newSystem(t, testConfig(1, 1)) // one core total
	wf := workflow.New("pair")
	wf.MustAddTask(workflow.TaskSpec{ID: "a", Work: 2e9})
	wf.MustAddTask(workflow.TaskSpec{ID: "b", Work: 2e9})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 4.0, 1e-9) {
		t.Errorf("makespan = %v, want 4.0 (serialized on one core)", tr.Makespan())
	}
	if w := tr.Lookup("b").WaitTime(); !approx(w, 2.0, 1e-9) {
		t.Errorf("b wait time = %v, want 2.0", w)
	}
}

func TestStageInSequentialToBB(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("stage")
	wf.MustAddFile("f1", 400*units.MB)
	wf.MustAddFile("f2", 400*units.MB)
	wf.MustAddTask(workflow.TaskSpec{
		ID: "stage", Kind: workflow.KindStageIn, Outputs: []string{"f1", "f2"},
	})
	pol := placement.NewExplicit("both", []string{"f1", "f2"})
	tr, err := exec.Run(sys, wf, exec.Config{Placement: pol})
	if err != nil {
		t.Fatal(err)
	}
	// Two sequential 400MB writes at 800MB/s (BB net binds) = 0.5s each.
	if !approx(tr.Makespan(), 1.0, 1e-9) {
		t.Errorf("makespan = %v, want 1.0 (sequential staging)", tr.Makespan())
	}
	// Both replicas exist on PFS and BB.
	node := sys.Platform().Node(0)
	for _, id := range []string{"f1", "f2"} {
		f := wf.File(id)
		if !sys.Registry().Has(f, sys.PFS()) || !sys.Registry().Has(f, sys.BBFor(node)) {
			t.Errorf("file %s replicas wrong", id)
		}
	}
}

func TestStageInPFSFilesAreFree(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("stage")
	wf.MustAddFile("f1", 400*units.MB)
	wf.MustAddFile("f2", 400*units.MB)
	wf.MustAddTask(workflow.TaskSpec{
		ID: "stage", Kind: workflow.KindStageIn, Outputs: []string{"f1", "f2"},
	})
	tr, err := exec.Run(sys, wf, exec.Config{}) // PFSOnly: nothing staged
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan() != 0 {
		t.Errorf("makespan = %v, want 0 (no staging cost)", tr.Makespan())
	}
	if !sys.Registry().Has(wf.File("f1"), sys.PFS()) {
		t.Error("unstaged file not on PFS")
	}
}

func TestDownstreamReadsPreferBB(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("stage+read")
	wf.MustAddFile("f", 800*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "stage", Kind: workflow.KindStageIn, Outputs: []string{"f"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "use", Work: 0, Inputs: []string{"f"}})
	pol := placement.NewExplicit("f-to-bb", []string{"f"})
	tr, err := exec.Run(sys, wf, exec.Config{Placement: pol})
	if err != nil {
		t.Fatal(err)
	}
	// Stage: 800MB at 800MB/s = 1s. Read from BB: 1s (not 8s from PFS).
	if !approx(tr.Makespan(), 2.0, 1e-9) {
		t.Errorf("makespan = %v, want 2.0 (read served by BB)", tr.Makespan())
	}
}

func TestOutputsToBBViaPolicy(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("wf")
	wf.MustAddFile("out", 800*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 0, Outputs: []string{"out"}})
	pol := placement.NewExplicit("out-to-bb", []string{"out"})
	tr, err := exec.Run(sys, wf, exec.Config{Placement: pol})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 1.0, 1e-9) {
		t.Errorf("makespan = %v, want 1.0 (write at BB speed)", tr.Makespan())
	}
	if !sys.Registry().Has(wf.File("out"), sys.BBFor(sys.Platform().Node(0))) {
		t.Error("output not on BB")
	}
}

func TestBBCapacityErrorSurfaces(t *testing.T) {
	cfg := testConfig(1, 4)
	cfg.BB.Capacity = 100 * units.MB
	sys := newSystem(t, cfg)
	wf := workflow.New("wf")
	wf.MustAddFile("big", 200*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "stage", Kind: workflow.KindStageIn, Outputs: []string{"big"}})
	pol := placement.NewExplicit("too-big", []string{"big"})
	if _, err := exec.Run(sys, wf, exec.Config{Placement: pol}); err == nil {
		t.Error("Run succeeded despite BB overflow")
	}
}

func TestPrePlaceInputs(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("wf")
	wf.MustAddFile("in", 800*units.MB) // true workflow input, no producer
	wf.MustAddTask(workflow.TaskSpec{ID: "use", Work: 0, Inputs: []string{"in"}})
	pol := placement.NewExplicit("in-to-bb", []string{"in"})
	tr, err := exec.Run(sys, wf, exec.Config{Placement: pol, PrePlaceInputs: true})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-placed on BB at no cost; read at 800MB/s = 1s.
	if !approx(tr.Makespan(), 1.0, 1e-9) {
		t.Errorf("makespan = %v, want 1.0", tr.Makespan())
	}
}

func TestWithoutPrePlaceReadsFromPFS(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("wf")
	wf.MustAddFile("in", 800*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "use", Work: 0, Inputs: []string{"in"}})
	pol := placement.NewExplicit("in-to-bb", []string{"in"})
	tr, err := exec.Run(sys, wf, exec.Config{Placement: pol}) // no pre-place
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 8.0, 1e-9) { // PFS at 100MB/s
		t.Errorf("makespan = %v, want 8.0", tr.Makespan())
	}
}

func TestInvalidWorkflowRejected(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("cyclic")
	wf.MustAddFile("x", 1)
	wf.MustAddFile("y", 1)
	wf.MustAddTask(workflow.TaskSpec{ID: "t1", Inputs: []string{"x"}, Outputs: []string{"y"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "t2", Inputs: []string{"y"}, Outputs: []string{"x"}})
	if _, err := exec.Run(sys, wf, exec.Config{}); err == nil {
		t.Error("Run accepted cyclic workflow")
	}
}

func TestTraceEventsWellFormed(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("chain")
	wf.MustAddFile("in", 10*units.MB)
	wf.MustAddFile("mid", 10*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "t1", Work: 1e9, Inputs: []string{"in"}, Outputs: []string{"mid"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "t2", Work: 1e9, Inputs: []string{"mid"}})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Records() {
		if r.ReadyAt > r.StartedAt || r.StartedAt > r.ReadDoneAt ||
			r.ReadDoneAt > r.ComputeDone || r.ComputeDone > r.FinishedAt {
			t.Errorf("task %s phases out of order: %+v", r.TaskID, r)
		}
	}
	last := 0.0
	for _, ev := range tr.Events() {
		if ev.Time < last {
			t.Fatal("events not in time order")
		}
		last = ev.Time
	}
	if tr.Makespan() != tr.Lookup("t2").FinishedAt {
		t.Error("makespan is not the last task completion")
	}
}

func TestMultiNodeScheduling(t *testing.T) {
	sys := newSystem(t, testConfig(2, 1))
	wf := workflow.New("pair")
	wf.MustAddTask(workflow.TaskSpec{ID: "a", Work: 2e9})
	wf.MustAddTask(workflow.TaskSpec{ID: "b", Work: 2e9})
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 2.0, 1e-9) {
		t.Errorf("makespan = %v, want 2.0 (two nodes in parallel)", tr.Makespan())
	}
	if tr.Lookup("a").Node == tr.Lookup("b").Node {
		t.Error("both tasks on the same node despite a free second node")
	}
}

// Property: the makespan is deterministic and bounded below by the
// compute-only critical path (I/O and queueing only add time), and bounded
// above by the sum of all phases run serially.
func TestMakespanBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		wf := randomPipelines(seed)
		run := func() float64 {
			sys := newSystemQuick(testConfig(1, 8))
			tr, err := exec.Run(sys, wf, exec.Config{})
			if err != nil {
				return -1
			}
			return tr.Makespan()
		}
		m1, m2 := run(), run()
		if m1 < 0 || m1 != m2 {
			return false
		}
		node := newSystemQuick(testConfig(1, 8)).Platform().Node(0)
		_, cpLower, err := wf.CriticalPath(func(t *workflow.Task) float64 {
			cores := t.Cores()
			if cores > node.Cores() {
				cores = node.Cores()
			}
			return node.ComputeTime(t.Work(), cores, 0)
		})
		if err != nil {
			return false
		}
		var serial float64
		for _, t := range wf.Tasks() {
			serial += node.ComputeTime(t.Work(), 1, 0)
			serial += (t.InputBytes() + t.OutputBytes()).Seconds(100 * units.MBps)
		}
		return m1 >= cpLower-1e-6 && m1 <= serial+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func newSystemQuick(cfg platform.Config) *storage.System {
	e := sim.NewEngine()
	p := platform.MustNew(e, cfg)
	return storage.NewSystem(p, nil)
}

// randomPipelines builds n independent two-task pipelines with varied sizes
// and works, seeded deterministically.
func randomPipelines(seed int64) *workflow.Workflow {
	wf := workflow.New("random")
	n := 1 + int(uint64(seed)%5)
	x := uint64(seed)
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x >> 33
	}
	for i := 0; i < n; i++ {
		in := wf.MustAddFile(fileID("in", i), units.Bytes(1+next()%50)*units.MB)
		mid := wf.MustAddFile(fileID("mid", i), units.Bytes(1+next()%50)*units.MB)
		wf.MustAddTask(workflow.TaskSpec{
			ID: fileID("t1_", i), Work: units.Flops(1e8 + float64(next()%100)*1e8),
			Cores: 1 + int(next()%4), Inputs: []string{in.ID()}, Outputs: []string{mid.ID()},
		})
		wf.MustAddTask(workflow.TaskSpec{
			ID: fileID("t2_", i), Work: units.Flops(1e8 + float64(next()%100)*1e8),
			Cores: 1 + int(next()%4), Inputs: []string{mid.ID()},
		})
	}
	return wf
}

func fileID(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}
