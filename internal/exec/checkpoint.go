// Task-level checkpoint/restart: the proactive side of the recovery
// machinery (recovery.go is the reactive side).
//
// With a ckpt.Policy configured, every compute task with a positive
// checkpoint size splits its compute phase into Interval-long segments and
// persists a progress snapshot after each one, through the ordinary
// storage.Manager paths — checkpoint I/O contends with workflow I/O on the
// same flow network. Durability follows the platform model: a snapshot on a
// failed node's burst buffer dies with the node (CkptLost), shared-striped
// BB and PFS replicas survive, and an asynchronous BB→PFS drain (CkptDrain)
// upgrades a burst-buffer snapshot to full durability. When a crashed task
// is retried, startTask restores the newest surviving snapshot
// (RestartFrom) and resumes computing from its progress mark instead of
// re-executing from scratch; the retry/backoff machinery is untouched.
//
// Without a policy every hook below is behind a Policy.Enabled() or
// nil-map check, and fault-free traces are bit-identical to a build without
// this file.
package exec

import (
	"errors"
	"fmt"

	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/workflow"
)

// ckptRec is one committed checkpoint of one task: a snapshot file, the
// tier it committed to, and the compute progress it captures. A record may
// additionally hold a PFS replica once its drain completes.
type ckptRec struct {
	task *workflow.Task
	file *workflow.File
	svc  storage.Service // commit target
	node *platform.Node  // writer; preferred drain source node
	// progress is the cumulative compute seconds the snapshot captures.
	progress float64
	// drained marks a PFS replica (direct commit or completed drain): the
	// snapshot survives any node failure.
	drained bool
	drainEv sim.Handle  // pending drain start, if scheduled
	drainOp *storage.Op // in-flight drain copy, if started
}

// durablePFS reports whether the snapshot holds a PFS replica.
func (r *ckptRec) durablePFS() bool { return r.drained }

// ckptTarget resolves the policy's target tier for a task running on node:
// the node's burst buffer (on-node on Summit, shared on Cori) or the PFS.
func (e *engine) ckptTarget(node *platform.Node) storage.Service {
	if e.cfg.Checkpoint.Target == "pfs" {
		return e.sys.PFS()
	}
	if bb := e.sys.BBFor(node); bb != nil {
		return bb
	}
	return e.sys.PFS()
}

// writeCheckpoint persists a progress snapshot between two compute
// segments. The attempt blocks until the write commits (the classic
// synchronous checkpoint model); the drain to the PFS, if configured, runs
// asynchronously afterwards. Checkpointing degrades gracefully: a rejected
// or full burst-buffer target falls back to the PFS, and a totally failed
// write skips checkpointing for the rest of the attempt rather than
// killing the run.
func (e *engine) writeCheckpoint(a *attempt) {
	if e.err != nil || a.aborted {
		return
	}
	t, node := a.task, a.node
	size := e.cfg.Checkpoint.SizeFor(t)
	f := e.ckptWf.MustAddFile(fmt.Sprintf("ckpt-%s-%06d", t.ID(), e.ckptSeq), size)
	e.ckptSeq++
	svc := e.ckptTarget(node)
	if svc != e.sys.PFS() && e.cfg.Faults != nil && e.cfg.Faults.RejectBBAlloc(t, f) {
		e.tr.Record(e.now(), trace.BBReject, t.ID(), f.ID()+"@"+svc.Name())
		e.tr.Record(e.now(), trace.Fallback, t.ID(), f.ID()+"->pfs")
		svc = e.sys.PFS()
	}
	begin := e.now()
	commit := func(svc storage.Service) func() {
		return func() {
			if a.aborted || e.err != nil {
				return
			}
			p := a.progress
			e.tr.Record(e.now(), trace.CkptCommit, t.ID(), fmt.Sprintf("%s@%s p=%g", f.ID(), svc.Name(), p))
			tier := string(svc.Kind())
			e.cfg.Metrics.Add(metrics.CkptBytesTotal,
				metrics.Key{Tier: tier, Op: metrics.OpWrite}, float64(size))
			e.cfg.Metrics.Add(metrics.CkptOverheadSecondsTotal,
				metrics.Key{Tier: tier, Op: metrics.OpWrite}, e.now()-begin)
			rec := &ckptRec{task: t, file: f, svc: svc, node: node, progress: p,
				drained: svc.Kind() == storage.KindPFS}
			e.ckpts[t] = append(e.ckpts[t], rec)
			e.ckptOf[f] = rec
			e.pruneCkpts(t, rec)
			if e.cfg.Checkpoint.Drain && !rec.drained {
				rec.drainEv = e.sys.Platform().Engine().After(e.cfg.Checkpoint.DrainDelay, func() {
					rec.drainEv = sim.Handle{}
					e.startDrain(rec)
				})
			}
			e.computeSegment(a)
		}
	}
	op, err := e.sys.Manager().Write(node, f, svc, commit(svc))
	if err != nil && svc != e.sys.PFS() {
		// A full burst buffer never kills a checkpoint: drop to the PFS,
		// the way real multi-level checkpoint libraries degrade.
		var full *storage.FullError
		if errors.As(err, &full) {
			e.tr.Record(e.now(), trace.Fallback, t.ID(), f.ID()+"->pfs (bb full)")
			svc = e.sys.PFS()
			op, err = e.sys.Manager().Write(node, f, svc, commit(svc))
		}
	}
	if err != nil {
		// No tier can take the snapshot (e.g. a capacity-bounded PFS):
		// give up on checkpointing this attempt and just keep computing.
		a.ckptOff = true
		e.computeSegment(a)
		return
	}
	e.tr.Record(e.now(), trace.CkptBegin, t.ID(), f.ID()+"@"+svc.Name())
	e.track(a, op)
}

// startDrain copies a committed burst-buffer snapshot to the PFS. The copy
// goes through the writing node when it is still up, else through the first
// surviving node (a shared BB outlives its writer). A source replica that
// vanished in the meantime — rotated out or destroyed — silently skips the
// drain: a newer snapshot superseded this one, or CkptLost already
// recorded the loss.
func (e *engine) startDrain(rec *ckptRec) {
	if e.err != nil || rec.drained || !e.sys.Registry().Has(rec.file, rec.svc) {
		return
	}
	node := rec.node
	if node.Down() {
		node = nil
		for _, n := range e.sys.Platform().Nodes() {
			if !n.Down() {
				node = n
				break
			}
		}
		if node == nil {
			return
		}
	}
	op, err := e.sys.Manager().Copy(node, rec.file, rec.svc, e.sys.PFS(), func() {
		rec.drainOp = nil
		if e.err != nil {
			return
		}
		rec.drained = true
		e.tr.Record(e.now(), trace.CkptDrain, rec.task.ID(), rec.file.ID()+"@"+rec.svc.Name()+"->pfs")
		size := float64(rec.file.Size())
		e.cfg.Metrics.Add(metrics.CkptBytesTotal,
			metrics.Key{Tier: string(rec.svc.Kind()), Op: metrics.OpRead}, size)
		e.cfg.Metrics.Add(metrics.CkptBytesTotal,
			metrics.Key{Tier: string(storage.KindPFS), Op: metrics.OpWrite}, size)
		e.pruneCkpts(rec.task, rec)
	})
	if err != nil {
		return // PFS cannot take it now; the snapshot stays BB-only
	}
	if !rec.drained {
		rec.drainOp = op
	}
}

// pruneCkpts enforces the retention rule after `latest` gained a replica:
// once a snapshot is PFS-durable, every older snapshot of the task is
// discarded entirely; while the newest snapshot lives only on a burst
// buffer, older snapshots shed their superseded BB replicas but keep PFS
// replicas — the fallback the documented durability semantics promise when
// an un-drained snapshot dies with its node. Snapshots mid-drain keep
// their source replica until the drain resolves.
func (e *engine) pruneCkpts(t *workflow.Task, latest *ckptRec) {
	chain := e.ckpts[t]
	kept := chain[:0]
	for _, m := range chain {
		if m == latest || m.progress >= latest.progress {
			kept = append(kept, m)
			continue
		}
		if latest.durablePFS() {
			e.discardCkpt(m)
			continue
		}
		if m.drainOp != nil {
			kept = append(kept, m)
			continue
		}
		if !m.drainEv.Cancelled() {
			e.sys.Platform().Engine().Cancel(m.drainEv)
			m.drainEv = sim.Handle{}
		}
		if m.svc.Kind() != storage.KindPFS && e.sys.Registry().Has(m.file, m.svc) {
			if err := e.sys.Manager().Evict(m.file, m.svc); err != nil {
				e.fail(err)
				return
			}
		}
		if e.sys.Registry().Located(m.file) {
			kept = append(kept, m)
		} else {
			delete(e.ckptOf, m.file)
		}
	}
	e.ckpts[t] = kept
}

// discardCkpt fully retires one snapshot: cancels its pending or in-flight
// drain and evicts every replica. Rotation, not loss — no event is
// recorded.
func (e *engine) discardCkpt(m *ckptRec) {
	if !m.drainEv.Cancelled() {
		e.sys.Platform().Engine().Cancel(m.drainEv)
		m.drainEv = sim.Handle{}
	}
	if m.drainOp != nil {
		m.drainOp.Cancel()
		m.drainOp = nil
	}
	for _, svc := range e.sys.Registry().Locations(m.file) {
		if err := e.sys.Manager().Evict(m.file, svc); err != nil {
			e.fail(err)
			return
		}
	}
	delete(e.ckptOf, m.file)
}

// clearCkpts retires every snapshot of a task that completed: checkpoints
// only ever serve retries of their own task, so completion ends their
// lifetime (and returns their burst-buffer space).
func (e *engine) clearCkpts(t *workflow.Task) {
	if e.ckpts == nil {
		return
	}
	for _, rec := range e.ckpts[t] {
		e.discardCkpt(rec)
	}
	delete(e.ckpts, t)
}

// loseCkptReplica handles a checkpoint replica destroyed by a node failure
// (called from loseNodeReplicas instead of the lineage path — snapshots
// have no producer to re-execute). An in-flight drain whose source just
// vanished is cancelled: the snapshot was lost mid-drain, and recovery
// falls back to the previous durable one.
func (e *engine) loseCkptReplica(rec *ckptRec, svc storage.Service) {
	e.tr.Record(e.now(), trace.CkptLost, rec.task.ID(), rec.file.ID()+"@"+svc.Name())
	if rec.drainOp != nil {
		rec.drainOp.Cancel()
		rec.drainOp = nil
	}
	if !rec.drainEv.Cancelled() {
		e.sys.Platform().Engine().Cancel(rec.drainEv)
		rec.drainEv = sim.Handle{}
	}
	if !e.sys.Registry().Located(rec.file) {
		e.removeCkpt(rec)
	}
}

// removeCkpt drops a replica-less snapshot from its task's chain.
func (e *engine) removeCkpt(rec *ckptRec) {
	chain := e.ckpts[rec.task]
	for i, m := range chain {
		if m == rec {
			e.ckpts[rec.task] = append(chain[:i], chain[i+1:]...)
			break
		}
	}
	delete(e.ckptOf, rec.file)
}

// newestDurableCkpt returns the newest snapshot of t with a replica
// visible from node, and the service to restore it from. Nil when the task
// has no usable snapshot (first attempts, lost replicas, disabled policy).
func (e *engine) newestDurableCkpt(t *workflow.Task, node *platform.Node) (*ckptRec, storage.Service) {
	chain := e.ckpts[t]
	for i := len(chain) - 1; i >= 0; i-- {
		rec := chain[i]
		svc, err := e.sys.Registry().BestVisible(rec.file, node, e.cfg.EnforcePrivateVisibility)
		if err == nil {
			return rec, svc
		}
	}
	return nil, nil
}

// restoreFromCkpt resumes a retried attempt from a surviving snapshot: the
// attempt pays a restore read of the snapshot (instead of re-reading its
// inputs — the image holds the task's full state) and then computes only
// the remaining work. The recovered compute seconds are credited to the
// tier the snapshot was restored from.
func (e *engine) restoreFromCkpt(a *attempt, rec *ckptRec, svc storage.Service) {
	t := a.task
	a.restored = rec.progress
	a.progress = rec.progress
	e.tr.Record(e.now(), trace.RestartFrom, t.ID(),
		fmt.Sprintf("%s@%s p=%g", rec.file.ID(), svc.Name(), rec.progress))
	tier := string(svc.Kind())
	e.cfg.Metrics.Add(metrics.CkptRecoveredSecondsTotal, metrics.Key{Tier: tier}, rec.progress)
	start := e.now()
	op, err := e.sys.Manager().Read(a.node, rec.file, svc, func() {
		if a.aborted || e.err != nil {
			return
		}
		e.cfg.Metrics.Add(metrics.CkptBytesTotal,
			metrics.Key{Tier: tier, Op: metrics.OpRead}, float64(rec.file.Size()))
		e.cfg.Metrics.Add(metrics.CkptOverheadSecondsTotal,
			metrics.Key{Tier: tier, Op: metrics.OpRead}, e.now()-start)
		e.tr.Task(t.ID()).ReadDoneAt = e.now()
		e.runCompute(a)
	})
	if err != nil {
		e.fail(fmt.Errorf("exec: task %s restore %s: %w", t.ID(), rec.file.ID(), err))
		return
	}
	e.track(a, op)
}

// chargeExecuted emits the compute seconds one attempt actually executed:
// finished segments beyond the restored mark, plus the in-flight portion
// of a segment cut down mid-compute. The counter's growth across retries
// is exactly the re-executed compute a recovery policy is trying to avoid.
func (e *engine) chargeExecuted(a *attempt, completed bool) {
	if a.task.Kind() != workflow.KindCompute {
		return
	}
	ex := a.progress - a.restored
	if !completed && !a.computeEv.Cancelled() {
		ex += e.now() - a.segStart
	}
	e.cfg.Metrics.Add(metrics.ComputeExecutedSecondsTotal,
		metrics.Key{Task: a.task.Name()}, ex)
}
