// Runtime adaptation: the graceful-degradation side of the execution
// engine (recovery.go reacts to damage already done; this file acts before
// the damage lands).
//
// With an adapt.Policy configured, the engine watches the run through two
// deterministic signals — storage reservations (Manager.OnReserve, the only
// moments occupancy rises) and fault-model events (FailNode, SetDegraded) —
// and answers with three reaction families, all through the ordinary
// storage.Manager flow paths in virtual time:
//
//   - Pressure spill: when a burst buffer's occupancy crosses the policy's
//     high-water fraction, cold/large replicas are copied to the PFS and
//     evicted until projected occupancy falls below the low-water fraction
//     (hysteresis, so the engine does not thrash around one threshold).
//   - Fault-aware replication: after a node failure or at the opening of a
//     BB degradation window, sole-replica inputs of still-pending tasks are
//     proactively copied to the PFS, so a later failure costs one copy
//     instead of a full lineage re-execution.
//   - Degradation-aware admission: while a degradation window is open on a
//     buffer, new stage-ins and task writes bound for it fall back to the
//     PFS instead of queueing on degraded bandwidth.
//
// Every decision follows a total order (registry file order, workflow task
// order, documented tie-breaks), so adaptive runs replay bit-identically.
// Copies still in flight when the last task finishes are abandoned with the
// rest of the event queue (the makespan is fixed then, and the capacity
// audit accounts in-flight reservations), exactly like background
// checkpoint traffic.
// Without a policy every hook below is behind a nil check, and traces are
// bit-identical to a build without this file.
package exec

import (
	"bbwfsim/internal/adapt"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// adaptCopy is one in-flight adaptation copy (spill or replication): the
// source service the copy reads from and the operation, so a lost source
// replica can cancel it.
type adaptCopy struct {
	src storage.Service
	op  *storage.Op
}

// adaptState is the engine's adaptation bookkeeping; nil on runs without an
// adapt policy.
type adaptState struct {
	pol adapt.Policy
	// spilling marks buffers between the high- and low-water marks: the
	// spill loop is draining them and new pressure tops it up instead of
	// re-arming at the high-water threshold (hysteresis).
	spilling map[storage.Service]bool
	// spills tracks in-flight spill copies by file; spillBytes sums their
	// sizes per source buffer (projected-occupancy accounting, so one
	// pressure wave does not spill the same bytes twice).
	spills     map[*workflow.File]*adaptCopy
	spillBytes map[storage.Service]units.Bytes
	// repls tracks in-flight replication copies by file; replications
	// counts copies started, against the policy budget.
	repls        map[*workflow.File]*adaptCopy
	replications int
	// degraded counts open degradation windows per service (windows may
	// overlap, so a bool would close early).
	degraded map[storage.Service]int
}

func newAdaptState(pol adapt.Policy) *adaptState {
	return &adaptState{
		pol:        pol,
		spilling:   map[storage.Service]bool{},
		spills:     map[*workflow.File]*adaptCopy{},
		spillBytes: map[storage.Service]units.Bytes{},
		repls:      map[*workflow.File]*adaptCopy{},
		degraded:   map[storage.Service]int{},
	}
}

// SetDegraded implements FaultController: the fault model brackets each
// bandwidth-degradation window with a true/false pair. Opening a window on
// a burst buffer triggers proactive replication off that buffer when the
// policy asks for it.
func (e *engine) SetDegraded(svc storage.Service, active bool) {
	if e.ad == nil {
		return
	}
	if !active {
		if e.ad.degraded[svc] > 0 {
			e.ad.degraded[svc]--
		}
		return
	}
	e.ad.degraded[svc]++
	if e.ad.pol.ReplicateOnFault && svc.Kind() != storage.KindPFS {
		e.adaptReplicate(svc)
	}
}

// adaptFallback reports whether degradation-aware admission redirects an
// allocation for f on svc to the PFS, recording the event. Inert without a
// policy or outside a degradation window.
func (e *engine) adaptFallback(t *workflow.Task, f *workflow.File, svc storage.Service) bool {
	if e.ad == nil || !e.ad.pol.DegradedFallback || e.ad.degraded[svc] == 0 {
		return false
	}
	e.tr.Record(e.now(), trace.AdaptFallback, t.ID(), f.ID()+"@"+svc.Name())
	return true
}

// --- Pressure spill -------------------------------------------------------

// adaptPressure is the Manager.OnReserve hook: every successful write/copy
// reservation lands here with its destination. A burst buffer above the
// high-water mark — or already mid-drain — gets its spill loop (re)run.
func (e *engine) adaptPressure(svc storage.Service) {
	if e.err != nil || svc.Kind() == storage.KindPFS {
		return
	}
	cap := float64(svc.Capacity())
	if cap <= 0 {
		return // unbounded buffers cannot be pressured
	}
	if !e.ad.spilling[svc] {
		if float64(svc.Used()) <= e.ad.pol.SpillHighWater*cap {
			return
		}
		e.ad.spilling[svc] = true
	}
	e.adaptSpill(svc)
}

// adaptSpill drains svc toward the low-water mark: it keeps starting spills
// of the coldest/largest replicas until the projected occupancy — current
// usage minus bytes already being spilled — falls below the target, then
// re-arms the high-water trigger once the last in-flight spill resolves.
func (e *engine) adaptSpill(svc storage.Service) {
	if e.err != nil {
		return
	}
	target := e.ad.pol.SpillLowWater * float64(svc.Capacity())
	for float64(svc.Used()-e.ad.spillBytes[svc]) > target {
		f := e.spillCandidate(svc)
		if f == nil || !e.spillFile(f, svc) {
			// Nothing spillable is left (all replicas pinned, mid-copy, or
			// checkpoints) or the PFS cannot take more; stop here and let
			// the next completion or reservation re-evaluate.
			break
		}
		if e.err != nil {
			return
		}
	}
	//bbvet:allow float-compare -- additions and subtractions of the same Size() terms cancel exactly; zero means no spill in flight
	if e.ad.spillBytes[svc] == 0 {
		// Drained (or stuck with nothing in flight): re-arm the trigger.
		delete(e.ad.spilling, svc)
	}
}

// spillCandidate picks the next replica to spill off svc: fewest
// unfinished consumers first (cold data leaves before hot), then largest
// size (fewest copies per freed byte), then file ID — a total order, so
// replays pick identically. Checkpoint snapshots are excluded (their chains
// manage their own replicas), as are files already mid-spill.
func (e *engine) spillCandidate(svc storage.Service) *workflow.File {
	var best *workflow.File
	for _, f := range e.sys.Registry().FilesOn(svc) {
		if e.ad.spills[f] != nil || e.ckptOf[f] != nil {
			continue
		}
		if best == nil || e.spillBefore(f, best) {
			best = f
		}
	}
	return best
}

// spillBefore reports whether a spills before b (see spillCandidate).
func (e *engine) spillBefore(a, b *workflow.File) bool {
	if e.readers[a.Index()] != e.readers[b.Index()] {
		return e.readers[a.Index()] < e.readers[b.Index()]
	}
	//bbvet:allow float-compare -- declared file sizes are never computed; the tie-break just needs any total order
	if a.Size() != b.Size() {
		return a.Size() > b.Size()
	}
	return a.ID() < b.ID()
}

// spillFile moves one replica off svc. When the PFS already holds a copy
// the spill is a pure eviction (free, instantaneous); otherwise the replica
// is copied to the PFS through a surviving node and evicted when the copy
// lands — reads meanwhile still see the BB replica. Reports whether any
// space was freed or put in flight.
func (e *engine) spillFile(f *workflow.File, svc storage.Service) bool {
	if e.sys.Registry().Has(f, e.sys.PFS()) {
		if err := e.sys.Manager().Evict(f, svc); err != nil {
			e.fail(err)
			return false
		}
		e.tr.Record(e.now(), trace.AdaptSpill, "", f.ID()+"@"+svc.Name())
		return true
	}
	node := e.copyNode(f, svc)
	if node == nil {
		return false
	}
	op, err := e.sys.Manager().Copy(node, f, svc, e.sys.PFS(), func() {
		delete(e.ad.spills, f)
		e.ad.spillBytes[svc] -= f.Size()
		if e.err != nil {
			return
		}
		if e.sys.Registry().Has(f, svc) {
			// The Has guard makes the release exactly-once: a racing
			// last-read eviction or node failure may have freed the BB
			// replica already.
			if err := e.sys.Manager().Evict(f, svc); err != nil {
				e.fail(err)
				return
			}
		}
		e.tr.Record(e.now(), trace.AdaptSpill, "", f.ID()+"@"+svc.Name())
		e.cfg.Metrics.Add(metrics.AdaptBytesTotal,
			metrics.Key{Tier: string(svc.Kind()), Op: metrics.OpSpill}, float64(f.Size()))
		e.adaptSpill(svc) // top up the drain, or re-arm the trigger
	})
	if err != nil {
		return false // the PFS cannot take it now; keep the BB replica
	}
	e.ad.spills[f] = &adaptCopy{src: svc, op: op}
	e.ad.spillBytes[svc] += f.Size()
	return true
}

// cancelSpill aborts an in-flight spill copy of f, returning its PFS
// reservation. No-op when none is in flight.
func (e *engine) cancelSpill(f *workflow.File) {
	rec := e.ad.spills[f]
	if rec == nil {
		return
	}
	rec.op.Cancel()
	delete(e.ad.spills, f)
	e.ad.spillBytes[rec.src] -= f.Size()
}

// --- Fault-aware replication ----------------------------------------------

// adaptReplicate copies sole-replica inputs of still-pending tasks to the
// PFS, in workflow task order (a total, deterministic order). A non-nil
// `only` restricts the sweep to replicas on that service (degradation
// windows threaten one buffer; node failures threaten every tier).
func (e *engine) adaptReplicate(only storage.Service) {
	if e.err != nil {
		return
	}
	for _, t := range e.wf.Tasks() {
		if e.done[t.Index()] {
			continue
		}
		for _, f := range t.Inputs() {
			e.replicateFile(f, only)
			if e.err != nil {
				return
			}
		}
	}
}

// replicateFile starts one proactive PFS copy of f unless it is already
// durable, already replicating, unlocatable (lineage recovery owns lost
// files), or the policy budget is spent.
func (e *engine) replicateFile(f *workflow.File, only storage.Service) {
	ad := e.ad
	if ad.repls[f] != nil {
		return
	}
	if ad.pol.ReplicationBudget > 0 && ad.replications >= ad.pol.ReplicationBudget {
		return
	}
	reg := e.sys.Registry()
	if reg.Has(f, e.sys.PFS()) {
		return
	}
	if only != nil && !reg.Has(f, only) {
		return
	}
	locs := reg.Locations(f)
	if len(locs) == 0 {
		return
	}
	src := locs[0] // sorted by service name; all are burst buffers here
	node := e.copyNode(f, src)
	if node == nil {
		return
	}
	op, err := e.sys.Manager().Copy(node, f, src, e.sys.PFS(), func() {
		delete(ad.repls, f)
		if e.err != nil {
			return
		}
		e.tr.Record(e.now(), trace.AdaptReplicate, "", f.ID()+"@"+src.Name()+"->pfs")
		e.cfg.Metrics.Add(metrics.AdaptBytesTotal,
			metrics.Key{Tier: string(src.Kind()), Op: metrics.OpReplicate}, float64(f.Size()))
	})
	if err != nil {
		return // the PFS cannot take it now; the replica stays sole
	}
	ad.replications++
	ad.repls[f] = &adaptCopy{src: src, op: op}
}

// cancelReplication aborts an in-flight replication copy of f, returning
// its PFS reservation. The budget charge is not refunded: the decision was
// made and its copy ran. No-op when none is in flight.
func (e *engine) cancelReplication(f *workflow.File) {
	rec := e.ad.repls[f]
	if rec == nil {
		return
	}
	rec.op.Cancel()
	delete(e.ad.repls, f)
}

// adaptReplicaLost reacts to a fault destroying the replica of f on svc: a
// spill or replication copy reading it dies with its source, so cancel and
// return the PFS reservation. Copies reading a different service survive.
func (e *engine) adaptReplicaLost(f *workflow.File, svc storage.Service) {
	if rec := e.ad.spills[f]; rec != nil && rec.src == svc {
		e.cancelSpill(f)
	}
	if rec := e.ad.repls[f]; rec != nil && rec.src == svc {
		e.cancelReplication(f)
	}
}

// copyNode returns the node an adaptation copy off svc routes through: the
// replica's creator while it is up (data locality, and the only node that
// can see a private-mode or node-local replica), else the first surviving
// node. Nil when the whole platform is down.
func (e *engine) copyNode(f *workflow.File, svc storage.Service) *platform.Node {
	if n := e.sys.Registry().Creator(f, svc); n != nil && !n.Down() {
		return n
	}
	for _, n := range e.sys.Platform().Nodes() {
		if !n.Down() {
			return n
		}
	}
	return nil
}
