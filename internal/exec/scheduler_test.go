package exec_test

import (
	"testing"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

func TestRoundRobinSpreadsTasks(t *testing.T) {
	sys := newSystem(t, testConfig(4, 4))
	wf := workflow.New("spread")
	for i := 0; i < 4; i++ {
		wf.MustAddTask(workflow.TaskSpec{ID: fileID("t", i), Work: 1e9, Cores: 1})
	}
	tr, err := exec.Run(sys, wf, exec.Config{NodePolicy: exec.NodeRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]bool{}
	for _, r := range tr.Records() {
		nodes[r.Node] = true
	}
	if len(nodes) != 4 {
		t.Errorf("round robin used %d nodes, want 4", len(nodes))
	}
}

func TestFirstFitPacksTasks(t *testing.T) {
	sys := newSystem(t, testConfig(4, 4))
	wf := workflow.New("pack")
	for i := 0; i < 4; i++ {
		wf.MustAddTask(workflow.TaskSpec{ID: fileID("t", i), Work: 1e9, Cores: 1})
	}
	tr, err := exec.Run(sys, wf, exec.Config{}) // first fit
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[string]bool{}
	for _, r := range tr.Records() {
		nodes[r.Node] = true
	}
	if len(nodes) != 1 {
		t.Errorf("first fit used %d nodes, want 1 (all fit on node 0)", len(nodes))
	}
}

func TestLeastLoadedBalances(t *testing.T) {
	sys := newSystem(t, testConfig(2, 4))
	wf := workflow.New("balance")
	// Two 3-core tasks: least-loaded must put them on different nodes.
	wf.MustAddTask(workflow.TaskSpec{ID: "a", Work: 1e9, Cores: 3})
	wf.MustAddTask(workflow.TaskSpec{ID: "b", Work: 1e9, Cores: 3})
	tr, err := exec.Run(sys, wf, exec.Config{NodePolicy: exec.NodeLeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Lookup("a").Node == tr.Lookup("b").Node {
		t.Error("least-loaded packed both 3-core tasks onto one node")
	}
}

func TestLargestWorkFirstOrder(t *testing.T) {
	sys := newSystem(t, testConfig(1, 1)) // one core: strict serialization
	wf := workflow.New("order")
	wf.MustAddTask(workflow.TaskSpec{ID: "small", Work: 1e9})
	wf.MustAddTask(workflow.TaskSpec{ID: "big", Work: 9e9})
	tr, err := exec.Run(sys, wf, exec.Config{OrderPolicy: exec.OrderLargestWork})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Lookup("big").StartedAt > tr.Lookup("small").StartedAt {
		t.Error("largest-work-first ran the small task first")
	}
}

func TestCriticalPathOrderShortensMakespan(t *testing.T) {
	// Two independent chains on 1 core per task, 2 cores total:
	//  chain A: a1(8) → a2(8)   (critical)
	//  fillers: f1(4), f2(4), f3(4), f4(4)
	// FIFO (fillers first by index) delays the critical chain; critical-
	// path order starts a1 immediately.
	build := func() *workflow.Workflow {
		wf := workflow.New("cp")
		wf.MustAddFile("link", 0)
		wf.MustAddTask(workflow.TaskSpec{ID: "f1", Work: 4e9})
		wf.MustAddTask(workflow.TaskSpec{ID: "f2", Work: 4e9})
		wf.MustAddTask(workflow.TaskSpec{ID: "f3", Work: 4e9})
		wf.MustAddTask(workflow.TaskSpec{ID: "f4", Work: 4e9})
		wf.MustAddTask(workflow.TaskSpec{ID: "a1", Work: 8e9, Outputs: []string{"link"}})
		wf.MustAddTask(workflow.TaskSpec{ID: "a2", Work: 8e9, Inputs: []string{"link"}})
		return wf
	}
	run := func(order exec.OrderPolicy) float64 {
		sys := newSystem(t, testConfig(1, 2))
		tr, err := exec.Run(sys, build(), exec.Config{OrderPolicy: order})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Makespan()
	}
	fifo := run(exec.OrderFIFO)
	cp := run(exec.OrderCriticalPath)
	if cp >= fifo {
		t.Errorf("critical-path order (%.2f) should beat FIFO (%.2f)", cp, fifo)
	}
	// Optimal: a1 at t=0, a2 at t=8, fillers fill the other core → 16.
	if !approx(cp, 16, 1e-9) {
		t.Errorf("critical-path makespan = %v, want 16", cp)
	}
}

func TestPoliciesDeterministic(t *testing.T) {
	for _, np := range []exec.NodePolicy{exec.NodeFirstFit, exec.NodeLeastLoaded, exec.NodeRoundRobin} {
		for _, op := range []exec.OrderPolicy{exec.OrderFIFO, exec.OrderLargestWork, exec.OrderCriticalPath} {
			run := func() float64 {
				sys := newSystem(t, testConfig(3, 4))
				wf := randomPipelines(12345)
				tr, err := exec.Run(sys, wf, exec.Config{NodePolicy: np, OrderPolicy: op})
				if err != nil {
					t.Fatal(err)
				}
				return tr.Makespan()
			}
			if a, b := run(), run(); a != b {
				t.Errorf("policy (%v,%v) not deterministic: %v vs %v", np, op, a, b)
			}
		}
	}
}

func TestRoundRobinFallsBackWhenFull(t *testing.T) {
	sys := newSystem(t, testConfig(2, 2))
	wf := workflow.New("fallback")
	// Task a fills node A (2 cores). Round robin would then prefer node B
	// for b, then wrap to A for c — but A is full, so c must go to B.
	wf.MustAddTask(workflow.TaskSpec{ID: "a", Work: units.Flops(10e9), Cores: 2})
	wf.MustAddTask(workflow.TaskSpec{ID: "b", Work: 1e9, Cores: 1})
	wf.MustAddTask(workflow.TaskSpec{ID: "c", Work: 1e9, Cores: 1})
	tr, err := exec.Run(sys, wf, exec.Config{NodePolicy: exec.NodeRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Lookup("c").Node == tr.Lookup("a").Node {
		t.Error("task c landed on the full node")
	}
	if tr.Lookup("c").WaitTime() > 0 {
		t.Error("task c waited despite free cores on node B")
	}
}
