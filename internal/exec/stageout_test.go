package exec_test

import (
	"testing"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// stageOutWF: produce writes 100 MB to the BB, stage_out drains it to the
// PFS.
func stageOutWF() *workflow.Workflow {
	wf := workflow.New("so")
	wf.MustAddFile("result", 100*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "produce", Work: 1e9, Outputs: []string{"result"}})
	wf.MustAddTask(workflow.TaskSpec{
		ID: "stage_out", Kind: workflow.KindStageOut, Inputs: []string{"result"},
	})
	return wf
}

func TestStageOutDrainsToPFS(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := stageOutWF()
	pol := placement.NewExplicit("res", []string{"result"})
	tr, err := exec.Run(sys, wf, exec.Config{Placement: pol})
	if err != nil {
		t.Fatal(err)
	}
	// produce: 1 s compute + 100MB→BB at 800MB/s (0.125 s);
	// stage-out copy BB→PFS: PFS disk bound, 1 s.
	if !approx(tr.Makespan(), 2.125, 1e-9) {
		t.Errorf("makespan = %v, want 2.125", tr.Makespan())
	}
	f := wf.File("result")
	if !sys.Registry().Has(f, sys.PFS()) {
		t.Error("result not on PFS after stage-out")
	}
	if !sys.Registry().Has(f, sys.BBFor(sys.Platform().Node(0))) {
		t.Error("BB replica should remain (stage-out copies, not moves)")
	}
	rec := tr.Lookup("stage_out")
	if rec.BytesWritten != 100*units.MB {
		t.Errorf("stage-out bytes = %v, want 100 MB", rec.BytesWritten)
	}
}

func TestStageOutSkipsPFSResidentFiles(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := stageOutWF()
	// No placement: produce writes straight to the PFS; stage-out is free.
	tr, err := exec.Run(sys, wf, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := tr.Lookup("stage_out")
	if got := rec.ExecTime(); got != 0 {
		t.Errorf("stage-out of a PFS-resident file took %v, want 0", got)
	}
}

func TestStageOutSequential(t *testing.T) {
	sys := newSystem(t, testConfig(1, 4))
	wf := workflow.New("so2")
	wf.MustAddFile("r1", 100*units.MB)
	wf.MustAddFile("r2", 100*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "p", Work: 0, Outputs: []string{"r1", "r2"}})
	wf.MustAddTask(workflow.TaskSpec{
		ID: "so", Kind: workflow.KindStageOut, Inputs: []string{"r1", "r2"},
	})
	pol := placement.NewExplicit("rs", []string{"r1", "r2"})
	tr, err := exec.Run(sys, wf, exec.Config{Placement: pol})
	if err != nil {
		t.Fatal(err)
	}
	// p: two 100 MB writes, 1 core → sequential at 800 MB/s = 0.25 s.
	// stage-out: two sequential 1 s copies (PFS disk bound) = 2 s.
	if !approx(tr.Makespan(), 2.25, 1e-9) {
		t.Errorf("makespan = %v, want 2.25 (sequential stage-out)", tr.Makespan())
	}
}

func TestStageOutWithEviction(t *testing.T) {
	// Eviction after stage-out frees the BB replica too: stage_out is the
	// last consumer.
	sys := newSystem(t, testConfig(1, 4))
	wf := stageOutWF()
	pol := placement.NewExplicit("res", []string{"result"})
	if _, err := exec.Run(sys, wf, exec.Config{Placement: pol, EvictAfterLastRead: true}); err != nil {
		t.Fatal(err)
	}
	f := wf.File("result")
	bb := sys.BBFor(sys.Platform().Node(0))
	if sys.Registry().Has(f, bb) {
		t.Error("BB replica not evicted after stage-out")
	}
	if !sys.Registry().Has(f, sys.PFS()) {
		t.Error("PFS replica missing after stage-out + eviction")
	}
}
