package exec

import (
	"sort"

	"bbwfsim/internal/platform"
	"bbwfsim/internal/workflow"
)

// NodePolicy selects which node a ready task runs on.
type NodePolicy int

const (
	// NodeFirstFit scans nodes in index order and takes the first with
	// enough free cores (the default; deterministic and cache-friendly
	// for single-node experiments).
	NodeFirstFit NodePolicy = iota
	// NodeLeastLoaded picks the fitting node with the most free cores,
	// spreading work — and, on on-node-BB platforms, spreading burst
	// buffer traffic.
	NodeLeastLoaded
	// NodeRoundRobin rotates across nodes, falling back to the next
	// fitting node when the preferred one is full.
	NodeRoundRobin
)

// OrderPolicy orders the ready queue.
type OrderPolicy int

const (
	// OrderFIFO runs ready tasks in workflow insertion order (default).
	OrderFIFO OrderPolicy = iota
	// OrderLargestWork runs the most compute-heavy ready task first.
	OrderLargestWork
	// OrderCriticalPath runs tasks by descending upward rank (the task's
	// sequential compute time plus the longest chain of descendants),
	// the classic HEFT-style list-scheduling priority.
	OrderCriticalPath
)

// scheduler bundles the two policies and their state.
type scheduler struct {
	nodePolicy  NodePolicy
	orderPolicy OrderPolicy
	rank        map[*workflow.Task]float64 // upward ranks for OrderCriticalPath
	rrNext      int                        // round-robin cursor
}

// newScheduler precomputes whatever the policies need.
func newScheduler(nodePolicy NodePolicy, orderPolicy OrderPolicy, wf *workflow.Workflow, speed float64) (*scheduler, error) {
	s := &scheduler{nodePolicy: nodePolicy, orderPolicy: orderPolicy}
	if orderPolicy == OrderCriticalPath {
		order, err := wf.TopologicalOrder()
		if err != nil {
			return nil, err
		}
		s.rank = make(map[*workflow.Task]float64, len(order))
		// Walk in reverse topological order: rank(t) = w(t) + max child.
		for i := len(order) - 1; i >= 0; i-- {
			t := order[i]
			best := 0.0
			for _, c := range t.Children() {
				if s.rank[c] > best {
					best = s.rank[c]
				}
			}
			s.rank[t] = float64(t.Work())/speed + best
		}
	}
	return s, nil
}

// less orders the ready queue; ties always break by insertion index so
// every policy stays deterministic.
func (s *scheduler) less(a, b *workflow.Task) bool {
	switch s.orderPolicy {
	case OrderLargestWork:
		//bbvet:allow float-compare -- comparator tie-break: exact equality detects ties, which then break by insertion index; a tolerance would itself be order-dependent
		if a.Work() != b.Work() {
			return a.Work() > b.Work()
		}
	case OrderCriticalPath:
		//bbvet:allow float-compare -- comparator tie-break: exact equality detects ties, which then break by insertion index
		if s.rank[a] != s.rank[b] {
			return s.rank[a] > s.rank[b]
		}
	}
	return a.Index() < b.Index()
}

// insert places t into the ready queue at its policy position.
func (s *scheduler) insert(ready []*workflow.Task, t *workflow.Task) []*workflow.Task {
	i := sort.Search(len(ready), func(i int) bool { return s.less(t, ready[i]) })
	ready = append(ready, nil)
	copy(ready[i+1:], ready[i:])
	ready[i] = t
	return ready
}

// pick selects a node with enough free cores and memory for t, or nil.
func (s *scheduler) pick(t *workflow.Task, nodes []*platform.Node, need func(*workflow.Task, *platform.Node) int) (*platform.Node, int) {
	fits := func(n *platform.Node) (int, bool) {
		c := need(t, n)
		return c, n.HasResources(c, t.Memory())
	}
	switch s.nodePolicy {
	case NodeLeastLoaded:
		var best *platform.Node
		bestCores := 0
		for _, n := range nodes {
			if c, ok := fits(n); ok && (best == nil || n.FreeCores() > best.FreeCores()) {
				best, bestCores = n, c
			}
		}
		return best, bestCores
	case NodeRoundRobin:
		for i := 0; i < len(nodes); i++ {
			n := nodes[(s.rrNext+i)%len(nodes)]
			if c, ok := fits(n); ok {
				s.rrNext = (s.rrNext + i + 1) % len(nodes)
				return n, c
			}
		}
		return nil, 0
	default: // NodeFirstFit
		for _, n := range nodes {
			if c, ok := fits(n); ok {
				return n, c
			}
		}
		return nil, 0
	}
}
