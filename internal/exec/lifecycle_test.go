package exec_test

import (
	"testing"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/placement"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// chainWF builds t1 → t2 → t3 where each task writes a 100 MB output and
// reads its predecessor's.
func chainWF() *workflow.Workflow {
	wf := workflow.New("chain")
	wf.MustAddFile("o1", 100*units.MB)
	wf.MustAddFile("o2", 100*units.MB)
	wf.MustAddFile("o3", 100*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "t1", Work: 1e9, Outputs: []string{"o1"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "t2", Work: 1e9, Inputs: []string{"o1"}, Outputs: []string{"o2"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "t3", Work: 1e9, Inputs: []string{"o2"}, Outputs: []string{"o3"}})
	return wf
}

func TestEvictionFreesBBSpace(t *testing.T) {
	cfg := testConfig(1, 4)
	cfg.BB.Capacity = 200 * units.MB // fits two files, not three
	pol := placement.NewExplicit("all", []string{"o1", "o2", "o3"})

	// Without eviction the third write overflows the BB.
	sysNoEvict := newSystem(t, cfg)
	if _, err := exec.Run(sysNoEvict, chainWF(), exec.Config{Placement: pol}); err == nil {
		t.Fatal("run without eviction should overflow the 200MB BB")
	}

	// With eviction, o1 is freed once t2 (its last consumer) finishes, so
	// o3 fits.
	sysEvict := newSystem(t, cfg)
	wf := chainWF()
	tr, err := exec.Run(sysEvict, wf, exec.Config{Placement: pol, EvictAfterLastRead: true})
	if err != nil {
		t.Fatalf("run with eviction failed: %v", err)
	}
	if tr.Makespan() <= 0 {
		t.Fatal("no progress")
	}
	bb := sysEvict.BBFor(sysEvict.Platform().Node(0))
	// o1 and o2 evicted (consumers done); o3 is a terminal output and
	// stays.
	if bb.Used() != 100*units.MB {
		t.Errorf("BB used = %v at end, want 100 MB (terminal output only)", bb.Used())
	}
	if sysEvict.Registry().Has(wf.File("o1"), bb) {
		t.Error("o1 still registered on BB after its last read")
	}
	if !sysEvict.Registry().Has(wf.File("o3"), bb) {
		t.Error("terminal output o3 was evicted")
	}
}

func TestEvictionKeepsPFSReplicas(t *testing.T) {
	// A staged input keeps its PFS replica after the BB copy is evicted.
	cfg := testConfig(1, 4)
	sys := newSystem(t, cfg)
	wf := workflow.New("staged")
	wf.MustAddFile("in", 100*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "stage", Kind: workflow.KindStageIn, Outputs: []string{"in"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "use", Work: 0, Inputs: []string{"in"}})
	pol := placement.NewExplicit("in", []string{"in"})
	if _, err := exec.Run(sys, wf, exec.Config{Placement: pol, EvictAfterLastRead: true}); err != nil {
		t.Fatal(err)
	}
	bb := sys.BBFor(sys.Platform().Node(0))
	if sys.Registry().Has(wf.File("in"), bb) {
		t.Error("BB replica not evicted after last read")
	}
	if !sys.Registry().Has(wf.File("in"), sys.PFS()) {
		t.Error("PFS replica lost")
	}
	if bb.Used() != 0 {
		t.Errorf("BB used = %v, want 0", bb.Used())
	}
}

func TestPrivateVisibilityFallsBackToPFS(t *testing.T) {
	// Two single-core nodes, round-robin scheduling: the producer runs on
	// node 0 and writes its 800 MB output to the private-mode shared BB;
	// the consumer is then placed on node 1. With visibility enforcement
	// the BB replica (created by node 0) is invisible there, so the read
	// falls back to the PFS (100 MB/s → 8 s instead of 1 s).
	wf := workflow.New("vis")
	wf.MustAddFile("f", 800*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "produce", Work: 0, Outputs: []string{"f"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "consume", Work: 0, Inputs: []string{"f"}})
	pol := placement.NewExplicit("f", []string{"f"})

	run := func(enforce bool) float64 {
		sys := newSystem(t, testConfig(2, 1))
		tr, err := exec.Run(sys, wf, exec.Config{
			Placement:                pol,
			NodePolicy:               exec.NodeRoundRobin,
			EnforcePrivateVisibility: enforce,
		})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Lookup("produce").Node == tr.Lookup("consume").Node {
			t.Fatal("test setup broken: producer and consumer on the same node")
		}
		return tr.Makespan()
	}
	lax := run(false)
	strict := run(true)
	// Write 1 s (800 MB at 800 MB/s) + 1 s BB read without enforcement.
	if !approx(lax, 2.0, 1e-9) {
		t.Errorf("without enforcement makespan = %v, want 2.0", lax)
	}
	// Relocation: BB→PFS copy (8 s, PFS disk bound) + PFS read (8 s).
	if !approx(strict, 17.0, 1e-9) {
		t.Errorf("with enforcement makespan = %v, want 17.0 (relocate + PFS read)", strict)
	}
}

func TestPrivateVisibilitySameNodeStillSeesBB(t *testing.T) {
	// On a single node the creator always matches: enforcement changes
	// nothing.
	wf := workflow.New("vis1")
	wf.MustAddFile("f", 800*units.MB)
	wf.MustAddTask(workflow.TaskSpec{ID: "produce", Work: 0, Outputs: []string{"f"}})
	wf.MustAddTask(workflow.TaskSpec{ID: "consume", Work: 0, Inputs: []string{"f"}})
	pol := placement.NewExplicit("f", []string{"f"})
	sys := newSystem(t, testConfig(1, 4))
	tr, err := exec.Run(sys, wf, exec.Config{Placement: pol, EnforcePrivateVisibility: true})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 2.0, 1e-9) {
		t.Errorf("same-node enforcement makespan = %v, want 2.0", tr.Makespan())
	}
}
