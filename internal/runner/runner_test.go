package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestJobsResolution(t *testing.T) {
	if got := Jobs(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Jobs(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(7); got != 7 {
		t.Fatalf("Jobs(7) = %d, want 7", got)
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 64} {
		got, err := Map(jobs, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if len(got) != 100 {
			t.Fatalf("jobs=%d: got %d results", jobs, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(_, 0) = %v, %v; want nil, nil", got, err)
	}
	if _, err := Map(4, -1, func(int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("Map(_, -1) accepted a negative point count")
	}
}

// TestMapErrorMatchesSerial: the error returned at any -j is the one serial
// execution would have returned — the smallest erring index.
func TestMapErrorMatchesSerial(t *testing.T) {
	errAt := func(bad ...int) func(int) (int, error) {
		isBad := map[int]bool{}
		for _, b := range bad {
			isBad[b] = true
		}
		return func(i int) (int, error) {
			if isBad[i] {
				return 0, fmt.Errorf("point %d failed", i)
			}
			return i, nil
		}
	}
	want := "point 13 failed"
	for _, jobs := range []int{1, 3, 16} {
		_, err := Map(jobs, 50, errAt(41, 13, 29))
		if err == nil || err.Error() != want {
			t.Fatalf("jobs=%d: err = %v, want %q", jobs, err, want)
		}
	}
}

// TestMapStopsIssuingAfterError: once a call errs, workers stop drawing new
// indices (in-flight calls still finish).
func TestMapStopsIssuingAfterError(t *testing.T) {
	var calls atomic.Int64
	sentinel := errors.New("boom")
	_, err := Map(2, 10_000, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if n := calls.Load(); n >= 10_000 {
		t.Fatalf("all %d points ran despite an error at point 0", n)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("jobs=%d: panic did not propagate", jobs)
				}
				if s, ok := r.(string); !ok || s != "kaboom" {
					t.Fatalf("jobs=%d: recovered %v, want \"kaboom\"", jobs, r)
				}
			}()
			_, _ = Map(jobs, 8, func(i int) (int, error) {
				if i == 5 {
					panic("kaboom")
				}
				return i, nil
			})
		}()
	}
}

// TestMapUsesWorkers: with jobs=k and k points that each block until all k
// have started, completion proves k calls genuinely run concurrently.
func TestMapUsesWorkers(t *testing.T) {
	const k = 4
	var started atomic.Int64
	_, err := Map(k, k, func(i int) (int, error) {
		started.Add(1)
		for started.Load() < k {
			runtime.Gosched()
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDo(t *testing.T) {
	var sum atomic.Int64
	if err := Do(4, 10, func(i int) error { sum.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
	sentinel := errors.New("do-fail")
	if err := Do(4, 10, func(i int) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Do err = %v, want %v", err, sentinel)
	}
}

// TestMapReduceFoldOrderIsSubmissionOrder: the fold visits results in index
// order at any jobs value, so a non-commutative accumulation is bit-identical
// to the serial fold. The fold records the visit order explicitly and also
// accumulates a float expression whose value depends on evaluation order.
func TestMapReduceFoldOrderIsSubmissionOrder(t *testing.T) {
	type acc struct {
		order []int
		sum   float64
	}
	point := func(i int) (int, error) { return i, nil }
	fold := func(a acc, v int) acc {
		a.order = append(a.order, v)
		a.sum = a.sum/3 + float64(v)*1.0000001
		return a
	}
	serial, err := MapReduce(1, 50, point, acc{}, fold)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{2, 8, 0} {
		got, err := MapReduce(jobs, 50, point, acc{}, fold)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range got.order {
			if v != i {
				t.Fatalf("jobs=%d: fold visited %d at position %d", jobs, v, i)
			}
		}
		if got.sum != serial.sum {
			t.Fatalf("jobs=%d: fold sum %v != serial %v", jobs, got.sum, serial.sum)
		}
	}
}

// TestMapReduceErrorLeavesAccumulator: a failing point aborts before any
// folding happens, returning the accumulator untouched.
func TestMapReduceErrorLeavesAccumulator(t *testing.T) {
	sentinel := errors.New("mr-fail")
	folded := 0
	got, err := MapReduce(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	}, 42, func(a, v int) int { folded++; return a + v })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if got != 42 || folded != 0 {
		t.Fatalf("acc = %d (folds: %d), want untouched 42 with 0 folds", got, folded)
	}
}

// TestMapDeterministicAtAnyJobs is the package's core promise stated as a
// property: identical results for jobs=1 and jobs=GOMAXPROCS on a
// compute-heavy point function.
func TestMapDeterministicAtAnyJobs(t *testing.T) {
	point := func(i int) (float64, error) {
		v := float64(i + 1)
		for k := 0; k < 1000; k++ {
			v = v*1.0000001 + float64(k%7)
		}
		return v, nil
	}
	serial, err := Map(1, 64, point)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(0, 64, point)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("out[%d]: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

// --- MapCtx: cancellation-aware campaigns ---------------------------------

// TestMapCtxMatchesMapWhileLive pins that an un-cancelled MapCtx is Map:
// same results, same smallest-index error semantics, at serial and parallel
// worker counts.
func TestMapCtxMatchesMapWhileLive(t *testing.T) {
	point := func(i int) (int, error) { return i * i, nil }
	for _, jobs := range []int{1, 4} {
		got, err := MapCtx(context.Background(), jobs, 20, func(_ context.Context, i int) (int, error) {
			return point(i)
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		want, _ := Map(1, 20, point)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("jobs=%d out[%d] = %d, want %d", jobs, i, got[i], want[i])
			}
		}
	}

	sentinel := errors.New("boom")
	for _, jobs := range []int{1, 4} {
		_, err := MapCtx(context.Background(), jobs, 32, func(_ context.Context, i int) (int, error) {
			if i >= 7 {
				return 0, fmt.Errorf("point %d: %w", i, sentinel)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, sentinel) || err.Error() != "point 7: boom" {
			t.Fatalf("jobs=%d: err = %v, want the smallest-index error \"point 7: boom\"", jobs, err)
		}
	}
}

// TestMapCtxPreCancelled pins that a dead context runs nothing and returns
// ctx.Err().
func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		calls := atomic.Int64{}
		_, err := MapCtx(ctx, jobs, 16, func(_ context.Context, i int) (int, error) {
			calls.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		if n := calls.Load(); n != 0 {
			t.Fatalf("jobs=%d: %d point calls ran under a pre-cancelled context", jobs, n)
		}
	}
}

// TestMapCtxErrorOutranksCancellation pins that a real point failure wins
// over the cancellation racing with it: serial-equivalent smallest-index
// error semantics survive early cancellation.
func TestMapCtxErrorOutranksCancellation(t *testing.T) {
	sentinel := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapCtx(ctx, 4, 64, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			cancel() // cancel from inside the failing region…
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the point error to outrank the cancellation", err)
	}
}

// TestMapCtxCancelStopsDispatchAndLeaksNothing is the drain contract: after
// cancellation MapCtx finishes in-flight points, stops handing out new
// indices, returns ctx.Err(), and leaves no worker goroutine behind. The
// goroutine accounting uses a strict before/after barrier: MapCtx must not
// return until every worker is done, so the count settles immediately after
// (a bounded retry loop absorbs unrelated runtime goroutines winding down).
func TestMapCtxCancelStopsDispatchAndLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	started := atomic.Int64{}
	finished := atomic.Int64{}
	release := make(chan struct{})
	go func() {
		// Cancel once the first wave of workers is mid-flight.
		for started.Load() < 4 {
			runtime.Gosched()
		}
		cancel()
		close(release)
	}()
	_, err := MapCtx(ctx, 4, 1000, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		<-release // hold the first wave in flight until cancellation lands
		finished.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Every point that started must have finished before MapCtx returned —
	// cancellation abandons pending indices, never in-flight ones.
	if s, f := started.Load(), finished.Load(); s != f {
		t.Fatalf("%d points started but only %d finished before MapCtx returned", s, f)
	}
	if s := started.Load(); s >= 1000 {
		t.Fatalf("all %d points ran; cancellation never stopped dispatch", s)
	}
	for attempt := 0; ; attempt++ {
		if runtime.NumGoroutine() <= before {
			break
		}
		if attempt > 1000 {
			t.Fatalf("goroutines: %d before, %d after cancellation — workers leaked",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
	}
}

// TestDoCtx pins the no-result variant.
func TestDoCtx(t *testing.T) {
	var sum atomic.Int64
	if err := DoCtx(context.Background(), 4, 10, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}
