// Package runner is the campaign executor: it fans independent simulation
// runs (configuration × seed points) out across worker goroutines while
// keeping output bit-identical to serial execution.
//
// The discrete-event kernel (internal/sim, internal/flow) and everything
// built on it are strictly single-threaded by design — bbvet's
// no-goroutines-in-kernel rule enforces that — so concurrency in this
// repository lives exclusively here, one layer above the kernel. The
// contract that makes that safe and deterministic:
//
//   - every run point owns its private simulation state: the point function
//     builds its own sim.Engine, RNG streams, platform, and storage system
//     internally (core.Simulator.Run and testbed.Runner.Run already do),
//     and nothing of that state crosses a worker boundary — this package is
//     generic and never sees an engine (bbvet's runner-isolation rule);
//   - shared inputs (workflows, platform configs, profiles) are read-only
//     during runs;
//   - results are collected by submission index, so tables, CSVs, and
//     traces assemble in submission order no matter which worker finished
//     first.
//
// Under those rules the only thing parallelism changes is wall-clock time:
// Map(1, n, fn) and Map(j, n, fn) return byte-for-byte identical results.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Jobs resolves a worker-count flag: values < 1 (the "pick for me" default)
// become GOMAXPROCS, everything else passes through.
func Jobs(j int) int {
	if j < 1 {
		//bbvet:allow determinism-taint -- worker count only sets fan-out width; Map merges results by submission index, so outputs are bit-identical at any parallelism
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Map calls fn(i) once for every i in [0, n) and returns the results in
// index order, fanning calls across min(Jobs(jobs), n) workers.
//
// Error semantics match serial execution wherever serial execution is
// well-defined: with jobs <= 1 the calls run on the calling goroutine in
// index order and the first error aborts the loop immediately, exactly like
// the hand-written sweep loops this package replaced. With jobs > 1,
// workers stop drawing new indices once any call errs, every in-flight call
// finishes, and the error with the smallest index is returned — so a sweep
// whose first failure is at index k reports that same failure at any -j.
//
// A panic in fn is captured and re-raised on the calling goroutine (again
// the smallest-index panic when several workers trip at once).
func Map[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative point count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]T, n)
	workers := Jobs(jobs)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: identical call sequence, allocation profile,
		// and abort behavior to the pre-runner sweep loops.
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next    atomic.Int64 // next index to hand out
		stop    atomic.Bool  // set once any call errs or panics
		mu      sync.Mutex   // guards firstErr/firstPanic bookkeeping
		wg      sync.WaitGroup
		errIdx  = n // smallest erring index seen so far
		panIdx  = n // smallest panicking index seen so far
		firstEr error
		firstPv any
	)
	work := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || stop.Load() {
				return
			}
			v, err := func() (v T, err error) {
				defer func() {
					if r := recover(); r != nil {
						stop.Store(true)
						mu.Lock()
						if i < panIdx {
							panIdx, firstPv = i, r
						}
						mu.Unlock()
						err = fmt.Errorf("runner: point %d panicked", i)
					}
				}()
				return fn(i)
			}()
			if err != nil {
				stop.Store(true)
				mu.Lock()
				if i < errIdx {
					errIdx, firstEr = i, err
				}
				mu.Unlock()
				continue
			}
			out[i] = v
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()
	if panIdx < n {
		panic(firstPv)
	}
	if errIdx < n {
		return nil, firstEr
	}
	return out, nil
}

// MapCtx is Map with cooperative cancellation, for callers that outlive a
// single campaign — a serving daemon with per-request deadlines, a drain
// sequence. The contract extends Map's:
//
//   - while ctx is live, MapCtx(ctx, …) behaves exactly like Map: results
//     in index order, smallest-index error/panic semantics, bit-identical
//     output at any jobs value;
//   - once ctx is done, workers stop drawing new indices. Calls already in
//     flight run to completion — a simulation point is finite and owns
//     private state, so abandoning it mid-run is never required for
//     safety — and fn receives ctx so long points can bail out early on
//     their own;
//   - MapCtx returns only after every in-flight call has finished, so the
//     caller observes no goroutine left running, and no fn call can touch
//     out after MapCtx returns;
//   - the returned error is the smallest-index fn error when one exists
//     (a real failure outranks the cancellation that raced with it);
//     otherwise ctx.Err() when cancellation prevented any index from
//     running. A fully completed sweep returns its results even if ctx
//     fired after the last index was handed out.
func MapCtx[T any](ctx context.Context, jobs, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative point count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]T, n)
	workers := Jobs(jobs)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial path: identical call sequence to Map's, with a
		// cancellation check before each point.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next      atomic.Int64
		stop      atomic.Bool
		cancelled atomic.Bool // an index was skipped because ctx was done
		mu        sync.Mutex
		wg        sync.WaitGroup
		errIdx    = n
		panIdx    = n
		firstEr   error
		firstPv   any
	)
	work := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1)) - 1
			if i >= n || stop.Load() {
				return
			}
			if ctx.Err() != nil {
				cancelled.Store(true)
				return
			}
			v, err := func() (v T, err error) {
				defer func() {
					if r := recover(); r != nil {
						stop.Store(true)
						mu.Lock()
						if i < panIdx {
							panIdx, firstPv = i, r
						}
						mu.Unlock()
						err = fmt.Errorf("runner: point %d panicked", i)
					}
				}()
				return fn(ctx, i)
			}()
			if err != nil {
				stop.Store(true)
				mu.Lock()
				if i < errIdx {
					errIdx, firstEr = i, err
				}
				mu.Unlock()
				continue
			}
			out[i] = v
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()
	if panIdx < n {
		panic(firstPv)
	}
	if errIdx < n {
		return nil, firstEr
	}
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	return out, nil
}

// DoCtx is MapCtx for point functions with no result value.
func DoCtx(ctx context.Context, jobs, n int, fn func(ctx context.Context, i int) error) error {
	_, err := MapCtx(ctx, jobs, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// MapReduce is Map followed by an index-ordered fold: once every point has
// run, fold(acc, out[i]) is applied for i = 0..n-1 on the calling
// goroutine, no matter which worker finished first. Because the fold order
// is the submission order, non-commutative accumulations — floating-point
// sums, observability-snapshot merges — produce bit-identical results at
// any jobs value, which is the property the campaign layer's "-j N equals
// serial" contract rests on. On error the accumulator is returned as-is
// (partial folds never happen: the fold only starts after every point
// succeeded).
func MapReduce[T, A any](jobs, n int, fn func(i int) (T, error), acc A, fold func(A, T) A) (A, error) {
	out, err := Map(jobs, n, fn)
	if err != nil {
		return acc, err
	}
	for _, v := range out {
		acc = fold(acc, v)
	}
	return acc, nil
}

// Do is Map for point functions with no result value.
func Do(jobs, n int, fn func(i int) error) error {
	_, err := Map(jobs, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
