package checkpoint

import (
	"math"
	"testing"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

func testConfig() platform.Config {
	return platform.Config{
		Name:         "test",
		Nodes:        1,
		CoresPerNode: 4,
		CoreSpeed:    1 * units.GFlopPerSec,
		NodeLinkBW:   10 * units.GBps,
		PFS:          platform.StorageConfig{NetworkBW: 1 * units.GBps, DiskBW: 100 * units.MBps},
		BB:           platform.StorageConfig{NetworkBW: 800 * units.MBps, DiskBW: 950 * units.MBps},
		BBKind:       platform.BBShared,
		BBMode:       platform.BBPrivate,
	}
}

func TestValidation(t *testing.T) {
	for _, p := range []Params{
		{Interval: 0, Size: 1},
		{Interval: -1, Size: 1},
		{Interval: 1, Size: 0},
		{Interval: 1, Size: 1, FirstWave: -1},
	} {
		if _, err := New(p); err == nil {
			t.Errorf("invalid params accepted: %+v", p)
		}
	}
}

func TestWavesFireAndRotate(t *testing.T) {
	e := sim.NewEngine()
	p := platform.MustNew(e, testConfig())
	sys := storage.NewSystem(p, nil)
	inj := MustNew(Params{Interval: 1, Size: 80 * units.MB, ToBB: true})
	inj.Start(sys)
	e.RunUntil(10.5)
	// Waves at t=1..10, each 80MB at 800MB/s = 0.1s: 10 complete.
	if inj.Waves != 10 {
		t.Errorf("Waves = %d, want 10", inj.Waves)
	}
	if inj.BytesWritten != 800*units.MB {
		t.Errorf("BytesWritten = %v, want 800 MB", inj.BytesWritten)
	}
	// Rotation: only the latest checkpoint resident.
	bb := sys.SharedBB()
	if bb.Used() != 80*units.MB {
		t.Errorf("BB used = %v, want 80 MB (one rotating checkpoint)", bb.Used())
	}
}

func TestCheckpointInterferenceSlowsWorkflow(t *testing.T) {
	// A workflow task writing 800 MB to the BB, alone vs with aggressive
	// checkpoint traffic sharing the BB.
	build := func(bg []exec.Background) float64 {
		e := sim.NewEngine()
		p := platform.MustNew(e, testConfig())
		sys := storage.NewSystem(p, nil)
		wf := workflow.New("wf")
		wf.MustAddFile("out", 800*units.MB)
		wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 0, Outputs: []string{"out"}})
		pol := bbPolicy{}
		tr, err := exec.Run(sys, wf, exec.Config{Placement: pol, Background: bg})
		if err != nil {
			t.Fatal(err)
		}
		return tr.Makespan()
	}
	alone := build(nil)
	inj := MustNew(Params{Interval: 0.2, Size: 400 * units.MB, ToBB: true, FirstWave: 0.01})
	loaded := build([]exec.Background{inj})
	if !approx(alone, 1.0, 1e-9) {
		t.Fatalf("alone makespan = %v, want 1.0", alone)
	}
	if loaded <= alone*1.2 {
		t.Errorf("checkpoint traffic should slow the workflow: %v vs %v", loaded, alone)
	}
	if inj.Waves == 0 {
		t.Error("injector never completed a wave")
	}
}

func TestEngineStopsAtWorkflowEnd(t *testing.T) {
	// The periodic injector must not keep the clock running after the
	// last task finishes.
	e := sim.NewEngine()
	p := platform.MustNew(e, testConfig())
	sys := storage.NewSystem(p, nil)
	wf := workflow.New("wf")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 2e9}) // 2 s
	inj := MustNew(Params{Interval: 0.5, Size: 10 * units.MB, ToBB: false})
	tr, err := exec.Run(sys, wf, exec.Config{Background: []exec.Background{inj}})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 2.0, 1e-9) {
		t.Errorf("makespan = %v, want 2.0", tr.Makespan())
	}
	if e.Now() > 2.0+1e-9 {
		t.Errorf("engine ran to %v after workflow end", e.Now())
	}
}

func TestMidRunTerminationCountersConsistent(t *testing.T) {
	// End the workflow while a checkpoint write is still in flight: the
	// interrupted wave must not count, the byte counter must agree with the
	// wave counter, and no stray events may fire after the workflow end.
	e := sim.NewEngine()
	p := platform.MustNew(e, testConfig())
	sys := storage.NewSystem(p, nil)
	wf := workflow.New("wf")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 2e9}) // 2 s
	// PFS disk 100 MB/s → each 80 MB wave takes 0.8 s. Waves start at 0.9
	// and 1.8; the second is still in flight when the workflow ends at 2.0.
	inj := MustNew(Params{Interval: 0.9, Size: 80 * units.MB, ToBB: false})
	tr, err := exec.Run(sys, wf, exec.Config{Background: []exec.Background{inj}})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tr.Makespan(), 2.0, 1e-9) {
		t.Fatalf("makespan = %v, want 2.0", tr.Makespan())
	}
	if inj.Waves != 1 {
		t.Errorf("Waves = %d, want 1 (second wave interrupted mid-write)", inj.Waves)
	}
	if want := units.Bytes(inj.Waves) * 80 * units.MB; inj.BytesWritten != want {
		t.Errorf("BytesWritten = %v, inconsistent with %d waves (want %v)", inj.BytesWritten, inj.Waves, want)
	}
	// Draining the queue past the stop point must not complete the
	// interrupted wave or schedule new ones at the stopped virtual time —
	// the engine halted inside the workflow-completion event, so counters
	// are final.
	waves, bytes := inj.Waves, inj.BytesWritten
	if e.Now() > 2.0+1e-9 {
		t.Errorf("engine advanced to %v after workflow end", e.Now())
	}
	if inj.Waves != waves || inj.BytesWritten != bytes {
		t.Errorf("counters moved after workflow end: %d/%v -> %d/%v", waves, bytes, inj.Waves, inj.BytesWritten)
	}
}

func TestTerminationBeforeFirstWave(t *testing.T) {
	// A workflow shorter than FirstWave terminates with zero checkpoint
	// activity — no waves, no bytes, no files left on any service.
	e := sim.NewEngine()
	p := platform.MustNew(e, testConfig())
	sys := storage.NewSystem(p, nil)
	wf := workflow.New("wf")
	wf.MustAddTask(workflow.TaskSpec{ID: "t", Work: 1e9}) // 1 s
	inj := MustNew(Params{Interval: 5, Size: 10 * units.MB, ToBB: true})
	if _, err := exec.Run(sys, wf, exec.Config{Background: []exec.Background{inj}}); err != nil {
		t.Fatal(err)
	}
	if inj.Waves != 0 || inj.BytesWritten != 0 {
		t.Errorf("injector ran before its first wave: %d waves, %v", inj.Waves, inj.BytesWritten)
	}
	if used := sys.SharedBB().Used(); used != 0 {
		t.Errorf("BB used = %v with no completed wave", used)
	}
}

func TestDownNodesSkipWaves(t *testing.T) {
	// A failed node emits no checkpoint traffic while down, and resumes
	// with the first wave after its repair.
	e := sim.NewEngine()
	p := platform.MustNew(e, testConfig())
	sys := storage.NewSystem(p, nil)
	inj := MustNew(Params{Interval: 1, Size: 80 * units.MB, ToBB: true})
	inj.Start(sys)
	node := p.Node(0)
	e.After(2.5, func() { node.SetDown(true) })
	e.After(6.5, func() { node.SetDown(false) })
	e.RunUntil(10.5)
	// Waves complete at t≈1..2 and t≈7..10 (down through 3..6): 6 total.
	if inj.Waves != 6 {
		t.Errorf("Waves = %d, want 6 (4 skipped while the node was down)", inj.Waves)
	}
	if want := units.Bytes(inj.Waves) * 80 * units.MB; inj.BytesWritten != want {
		t.Errorf("BytesWritten = %v, want %v", inj.BytesWritten, want)
	}
}

func TestFullTargetDegradesGracefully(t *testing.T) {
	cfg := testConfig()
	cfg.BB.Capacity = 50 * units.MB
	e := sim.NewEngine()
	p := platform.MustNew(e, cfg)
	sys := storage.NewSystem(p, nil)
	inj := MustNew(Params{Interval: 1, Size: 80 * units.MB, ToBB: true})
	inj.Start(sys)
	e.RunUntil(5)
	if inj.Waves != 0 {
		t.Errorf("Waves = %d on a too-small BB, want 0 (skipped, not crashed)", inj.Waves)
	}
}

// bbPolicy sends every output to the burst buffer.
type bbPolicy struct{}

func (bbPolicy) StageTarget(*workflow.File, *storage.System, *platform.Node) storage.Service {
	return nil
}

func (bbPolicy) OutputTarget(_ *workflow.Task, _ *workflow.File, sys *storage.System, node *platform.Node) storage.Service {
	return sys.BBFor(node)
}
