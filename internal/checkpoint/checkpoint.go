// Package checkpoint injects the workload burst buffers were originally
// built for — periodic checkpoint traffic from HPC codes (paper Section
// II: "the BB concept was first developed to improve checkpointing
// performance") — so the simulator can study how checkpoint I/O from
// co-located jobs interferes with workflow executions.
//
// An Injector writes one checkpoint of the configured size per compute
// node every Interval seconds, to the burst buffer or the PFS. Each node
// keeps a single checkpoint: when a new one completes, the previous one is
// evicted, matching the rotating behavior of real checkpoint libraries.
// The injector implements exec.Background and stops with the workflow.
package checkpoint

import (
	"fmt"

	"bbwfsim/internal/exec"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/storage"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workflow"
)

// Params configures an injector.
type Params struct {
	// Interval is the time between checkpoint waves, in seconds (> 0).
	Interval float64
	// Size is each node's per-wave checkpoint volume (> 0).
	Size units.Bytes
	// ToBB targets the burst buffer; otherwise the PFS.
	ToBB bool
	// FirstWave delays the initial wave (defaults to Interval).
	FirstWave float64
}

// Injector is a periodic checkpoint-traffic generator.
type Injector struct {
	params Params

	// Waves counts completed per-node checkpoints; BytesWritten totals
	// their volume.
	Waves        int
	BytesWritten units.Bytes

	sys  *storage.System
	wf   *workflow.Workflow // holds the synthetic checkpoint files
	prev map[*platform.Node]*workflow.File
	seq  int
}

var _ exec.Background = (*Injector)(nil)

// New validates the parameters and returns an injector.
func New(p Params) (*Injector, error) {
	if p.Interval <= 0 {
		return nil, fmt.Errorf("checkpoint: interval must be positive, got %g", p.Interval)
	}
	if p.Size <= 0 {
		return nil, fmt.Errorf("checkpoint: size must be positive, got %v", p.Size)
	}
	if p.FirstWave < 0 {
		return nil, fmt.Errorf("checkpoint: negative first wave %g", p.FirstWave)
	}
	if p.FirstWave == 0 { //bbvet:allow float-compare -- zero is the documented "use default" sentinel, never a computed value
		p.FirstWave = p.Interval
	}
	return &Injector{
		params: p,
		wf:     workflow.New("checkpoint-traffic"),
		prev:   map[*platform.Node]*workflow.File{},
	}, nil
}

// MustNew is New for known-good parameters.
func MustNew(p Params) *Injector {
	i, err := New(p)
	if err != nil {
		panic(err)
	}
	return i
}

// Start implements exec.Background: it schedules the first wave.
func (i *Injector) Start(sys *storage.System) {
	i.sys = sys
	sys.Platform().Engine().After(i.params.FirstWave, i.wave)
}

// wave writes one checkpoint per node, then schedules the next wave. Down
// nodes skip their wave — a failed node cannot emit checkpoint traffic —
// and resume with the first wave after their repair.
func (i *Injector) wave() {
	for _, node := range i.sys.Platform().Nodes() {
		if node.Down() {
			continue
		}
		node := node
		target := i.target(node)
		f := i.wf.MustAddFile(fmt.Sprintf("ckpt-%s-%06d", node.Name(), i.seq), i.params.Size)
		i.seq++
		op, err := i.sys.Manager().Write(node, f, target, func() {
			i.Waves++
			i.BytesWritten += i.params.Size
			// Rotate: drop the node's previous checkpoint.
			if old := i.prev[node]; old != nil {
				// The old replica may live on a different service than the
				// new one (not in practice, but stay defensive).
				for _, svc := range i.sys.Registry().Locations(old) {
					_ = i.sys.Manager().Evict(old, svc)
				}
			}
			i.prev[node] = f
		})
		if err != nil {
			// A full target skips this node's wave rather than failing the
			// whole simulation: real checkpoint libraries degrade the same
			// way (drop to the next level of the hierarchy).
			continue
		}
		_ = op
	}
	i.sys.Platform().Engine().After(i.params.Interval, i.wave)
}

func (i *Injector) target(node *platform.Node) storage.Service {
	if i.params.ToBB {
		return i.sys.BBFor(node)
	}
	return i.sys.PFS()
}
