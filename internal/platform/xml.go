package platform

import (
	"encoding/xml"
	"fmt"
	"os"
	"strconv"

	"bbwfsim/internal/units"
)

// The paper's simulator takes its platform description as an XML file (a
// SimGrid platform file). This file implements an XML dialect carrying the
// same information as the JSON spec:
//
//	<platform name="cori">
//	  <cluster nodes="4" cores="32" speed="36.80 GFlop/s"
//	           ram="137438953472" linkBW="10.00 GB/s"/>
//	  <pfs networkBW="1.00 GB/s" diskBW="100.00 MB/s" streamCap="100.00 MB/s"/>
//	  <burstbuffer kind="shared" mode="private" networkBW="800.00 MB/s"
//	               diskBW="950.00 MB/s" capacity="6.4e+12"
//	               streamCap="160.00 MB/s" readLatency="0" writeLatency="0"/>
//	</platform>
//
// Quantities use the same unit strings the JSON spec accepts; capacity and
// RAM are bare byte counts so they round-trip exactly.

type xmlPlatform struct {
	XMLName xml.Name   `xml:"platform"`
	Name    string     `xml:"name,attr"`
	Cluster xmlCluster `xml:"cluster"`
	PFS     xmlStorage `xml:"pfs"`
	BB      xmlBB      `xml:"burstbuffer"`
}

type xmlCluster struct {
	Nodes  int    `xml:"nodes,attr"`
	Cores  int    `xml:"cores,attr"`
	Speed  string `xml:"speed,attr"`
	RAM    string `xml:"ram,attr,omitempty"`
	LinkBW string `xml:"linkBW,attr"`
}

type xmlStorage struct {
	NetworkBW    string  `xml:"networkBW,attr,omitempty"`
	DiskBW       string  `xml:"diskBW,attr"`
	Capacity     string  `xml:"capacity,attr,omitempty"`
	StreamCap    string  `xml:"streamCap,attr,omitempty"`
	ReadLatency  float64 `xml:"readLatency,attr,omitempty"`
	WriteLatency float64 `xml:"writeLatency,attr,omitempty"`
}

type xmlBB struct {
	xmlStorage
	Kind string `xml:"kind,attr"`
	Mode string `xml:"mode,attr,omitempty"`
}

func (s *xmlStorage) toConfig(name string) (StorageConfig, error) {
	var cfg StorageConfig
	var err error
	if s.NetworkBW != "" {
		if cfg.NetworkBW, err = units.ParseBandwidth(s.NetworkBW); err != nil {
			return cfg, fmt.Errorf("%s networkBW: %v", name, err)
		}
	}
	if cfg.DiskBW, err = units.ParseBandwidth(s.DiskBW); err != nil {
		return cfg, fmt.Errorf("%s diskBW: %v", name, err)
	}
	if s.Capacity != "" {
		if cfg.Capacity, err = units.ParseBytes(s.Capacity); err != nil {
			return cfg, fmt.Errorf("%s capacity: %v", name, err)
		}
	}
	if s.StreamCap != "" {
		if cfg.StreamCap, err = units.ParseBandwidth(s.StreamCap); err != nil {
			return cfg, fmt.Errorf("%s streamCap: %v", name, err)
		}
	}
	cfg.ReadLatency = s.ReadLatency
	cfg.WriteLatency = s.WriteLatency
	return cfg, nil
}

func storageToXML(c StorageConfig) xmlStorage {
	s := xmlStorage{
		DiskBW:       c.DiskBW.String(),
		ReadLatency:  c.ReadLatency,
		WriteLatency: c.WriteLatency,
	}
	if c.NetworkBW > 0 {
		s.NetworkBW = c.NetworkBW.String()
	}
	if c.Capacity > 0 {
		s.Capacity = strconv.FormatFloat(float64(c.Capacity), 'g', -1, 64)
	}
	if c.StreamCap > 0 {
		s.StreamCap = c.StreamCap.String()
	}
	return s
}

// ParseXML decodes an XML platform description.
func ParseXML(data []byte) (Config, error) {
	var p xmlPlatform
	if err := xml.Unmarshal(data, &p); err != nil {
		return Config{}, fmt.Errorf("platform: decode xml: %v", err)
	}
	cfg := Config{
		Name:         p.Name,
		Nodes:        p.Cluster.Nodes,
		CoresPerNode: p.Cluster.Cores,
		BBKind:       BBKind(p.BB.Kind),
		BBMode:       BBMode(p.BB.Mode),
	}
	var err error
	if cfg.CoreSpeed, err = units.ParseFlopRate(p.Cluster.Speed); err != nil {
		return Config{}, fmt.Errorf("platform: cluster speed: %v", err)
	}
	if p.Cluster.RAM != "" {
		if cfg.RAMPerNode, err = units.ParseBytes(p.Cluster.RAM); err != nil {
			return Config{}, fmt.Errorf("platform: cluster ram: %v", err)
		}
	}
	if cfg.NodeLinkBW, err = units.ParseBandwidth(p.Cluster.LinkBW); err != nil {
		return Config{}, fmt.Errorf("platform: cluster linkBW: %v", err)
	}
	if cfg.PFS, err = p.PFS.toConfig("pfs"); err != nil {
		return Config{}, fmt.Errorf("platform: %v", err)
	}
	if cfg.BB, err = p.BB.toConfig("burstbuffer"); err != nil {
		return Config{}, fmt.Errorf("platform: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// MarshalXML encodes a Config as an indented XML platform description.
func MarshalXML(cfg Config) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := xmlPlatform{
		Name: cfg.Name,
		Cluster: xmlCluster{
			Nodes:  cfg.Nodes,
			Cores:  cfg.CoresPerNode,
			Speed:  cfg.CoreSpeed.String(),
			LinkBW: cfg.NodeLinkBW.String(),
		},
		PFS: storageToXML(cfg.PFS),
		BB: xmlBB{
			xmlStorage: storageToXML(cfg.BB),
			Kind:       string(cfg.BBKind),
			Mode:       string(cfg.BBMode),
		},
	}
	if cfg.RAMPerNode > 0 {
		p.Cluster.RAM = strconv.FormatFloat(float64(cfg.RAMPerNode), 'g', -1, 64)
	}
	data, err := xml.MarshalIndent(&p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), data...), nil
}

// LoadXML reads and parses an XML platform file.
func LoadXML(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("platform: %v", err)
	}
	return ParseXML(data)
}

// SaveXML writes an XML platform file.
func SaveXML(path string, cfg Config) error {
	data, err := MarshalXML(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
