package platform

import (
	"math"
	"testing"
	"testing/quick"

	"bbwfsim/internal/sim"
	"bbwfsim/internal/units"
)

func TestPresetsMatchTableI(t *testing.T) {
	cori := Cori(1, BBPrivate)
	if cori.CoreSpeed != 36.80*units.GFlopPerSec {
		t.Errorf("Cori core speed = %v, want 36.80 GFlop/s", cori.CoreSpeed)
	}
	if cori.BB.NetworkBW != 800*units.MBps {
		t.Errorf("Cori BB network = %v, want 800 MB/s", cori.BB.NetworkBW)
	}
	if cori.BB.DiskBW != 950*units.MBps {
		t.Errorf("Cori BB disk = %v, want 950 MB/s", cori.BB.DiskBW)
	}
	if cori.PFS.NetworkBW != 1.0*units.GBps {
		t.Errorf("Cori PFS network = %v, want 1.0 GB/s", cori.PFS.NetworkBW)
	}
	if cori.PFS.DiskBW != 100*units.MBps {
		t.Errorf("Cori PFS disk = %v, want 100 MB/s", cori.PFS.DiskBW)
	}
	if cori.BBKind != BBShared {
		t.Errorf("Cori BB kind = %v, want shared", cori.BBKind)
	}

	summit := Summit(1)
	if summit.CoreSpeed != 49.12*units.GFlopPerSec {
		t.Errorf("Summit core speed = %v, want 49.12 GFlop/s", summit.CoreSpeed)
	}
	if summit.BB.NetworkBW != 6.5*units.GBps {
		t.Errorf("Summit BB network = %v, want 6.5 GB/s", summit.BB.NetworkBW)
	}
	if summit.BB.DiskBW != 3.3*units.GBps {
		t.Errorf("Summit BB disk = %v, want 3.3 GB/s", summit.BB.DiskBW)
	}
	if summit.PFS.NetworkBW != 2.1*units.GBps {
		t.Errorf("Summit PFS network = %v, want 2.1 GB/s", summit.PFS.NetworkBW)
	}
	if summit.PFS.DiskBW != 100*units.MBps {
		t.Errorf("Summit PFS disk = %v, want 100 MB/s", summit.PFS.DiskBW)
	}
	if summit.BBKind != BBOnNode || summit.BBMode != BBModeNone {
		t.Errorf("Summit BB kind/mode = %v/%v, want on-node/none", summit.BBKind, summit.BBMode)
	}
}

func TestPresetsValidate(t *testing.T) {
	for name, cfg := range Presets(4) {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if cfg.Nodes != 4 {
			t.Errorf("preset %s has %d nodes, want 4", name, cfg.Nodes)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	base := Cori(1, BBPrivate)
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CoresPerNode = -1 },
		func(c *Config) { c.CoreSpeed = 0 },
		func(c *Config) { c.NodeLinkBW = 0 },
		func(c *Config) { c.PFS.DiskBW = 0 },
		func(c *Config) { c.BB.DiskBW = -5 },
		func(c *Config) { c.BB.Capacity = -1 },
		func(c *Config) { c.BB.ReadLatency = -0.1 },
		func(c *Config) { c.BBKind = "weird" },
		func(c *Config) { c.BBMode = "weird" },
		func(c *Config) { c.BBKind = BBOnNode; c.BBMode = BBPrivate },
		func(c *Config) { c.BBMode = BBModeNone },
	}
	for i, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted invalid config", i)
		}
	}
}

func TestNewCreatesNodes(t *testing.T) {
	e := sim.NewEngine()
	p := MustNew(e, Cori(3, BBStriped))
	if len(p.Nodes()) != 3 {
		t.Fatalf("got %d nodes, want 3", len(p.Nodes()))
	}
	for i, n := range p.Nodes() {
		if n.Index() != i {
			t.Errorf("node %d has index %d", i, n.Index())
		}
		if n.Cores() != 32 {
			t.Errorf("node %d has %d cores, want 32", i, n.Cores())
		}
		if n.Link() == nil {
			t.Errorf("node %d has no link resource", i)
		}
		if n.FreeCores() != 32 {
			t.Errorf("node %d has %d free cores, want 32", i, n.FreeCores())
		}
	}
	if p.TotalCores() != 96 {
		t.Errorf("TotalCores = %d, want 96", p.TotalCores())
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	e := sim.NewEngine()
	cfg := Cori(1, BBPrivate)
	cfg.Nodes = 0
	if _, err := New(e, cfg); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestCoreAllocation(t *testing.T) {
	e := sim.NewEngine()
	p := MustNew(e, Cori(1, BBPrivate))
	n := p.Node(0)
	if !n.Allocate(20) {
		t.Fatal("Allocate(20) failed on empty node")
	}
	if n.FreeCores() != 12 {
		t.Errorf("FreeCores = %d, want 12", n.FreeCores())
	}
	if n.Allocate(13) {
		t.Error("Allocate(13) succeeded with 12 free")
	}
	if !n.Allocate(12) {
		t.Error("Allocate(12) failed with 12 free")
	}
	n.Release(32)
	if n.FreeCores() != 32 {
		t.Errorf("FreeCores = %d after release, want 32", n.FreeCores())
	}
}

func TestAllocatePanicsOnNonPositive(t *testing.T) {
	e := sim.NewEngine()
	p := MustNew(e, Cori(1, BBPrivate))
	defer func() {
		if recover() == nil {
			t.Error("Allocate(0) did not panic")
		}
	}()
	p.Node(0).Allocate(0)
}

func TestReleaseMoreThanAllocatedPanics(t *testing.T) {
	e := sim.NewEngine()
	p := MustNew(e, Cori(1, BBPrivate))
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	p.Node(0).Release(1)
}

func TestComputeTimeAmdahl(t *testing.T) {
	e := sim.NewEngine()
	p := MustNew(e, Cori(1, BBPrivate))
	n := p.Node(0)
	work := units.Flops(36.80e9 * 100) // 100 s sequential on one Cori core

	if got := n.ComputeTime(work, 1, 0); math.Abs(got-100) > 1e-9 {
		t.Errorf("ComputeTime(1 core) = %v, want 100", got)
	}
	// Perfect speedup: alpha = 0.
	if got := n.ComputeTime(work, 10, 0); math.Abs(got-10) > 1e-9 {
		t.Errorf("ComputeTime(10 cores, alpha=0) = %v, want 10", got)
	}
	// Amdahl with alpha = 0.2: 0.2*100 + 0.8*100/10 = 28.
	if got := n.ComputeTime(work, 10, 0.2); math.Abs(got-28) > 1e-9 {
		t.Errorf("ComputeTime(10 cores, alpha=0.2) = %v, want 28", got)
	}
	// Fully sequential: alpha = 1.
	if got := n.ComputeTime(work, 32, 1); math.Abs(got-100) > 1e-9 {
		t.Errorf("ComputeTime(32 cores, alpha=1) = %v, want 100", got)
	}
}

func TestComputeTimePanics(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, Cori(1, BBPrivate)).Node(0)
	for _, fn := range []func(){
		func() { n.ComputeTime(1e9, 0, 0) },
		func() { n.ComputeTime(1e9, 1, -0.1) },
		func() { n.ComputeTime(1e9, 1, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid ComputeTime args did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: Amdahl compute time is non-increasing in p and bounded below by
// the sequential fraction.
func TestComputeTimeMonotoneQuick(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, Cori(1, BBPrivate)).Node(0)
	f := func(rawWork uint32, rawAlpha uint16, rawP uint8) bool {
		work := units.Flops(1e9 + float64(rawWork))
		alpha := float64(rawAlpha%1001) / 1000.0
		p := 1 + int(rawP%64)
		t1 := n.ComputeTime(work, p, alpha)
		t2 := n.ComputeTime(work, p+1, alpha)
		seq := work.Seconds(n.CoreSpeed())
		return t2 <= t1+1e-12 && t1 >= alpha*seq-1e-12 && t1 <= seq+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for name, cfg := range Presets(8) {
		data, err := MarshalConfig(cfg)
		if err != nil {
			t.Errorf("%s: marshal: %v", name, err)
			continue
		}
		back, err := ParseConfig(data)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		if !EqualConfigs(cfg, back) {
			t.Errorf("%s: round trip changed config:\n%+v\n!=\n%+v", name, cfg, back)
		}
	}
}

func TestSaveLoadConfig(t *testing.T) {
	path := t.TempDir() + "/platform.json"
	cfg := Summit(16)
	cfg.BB.ReadLatency = 0.0001
	cfg.BB.WriteLatency = 0.0002
	if err := SaveConfig(path, cfg); err != nil {
		t.Fatalf("SaveConfig: %v", err)
	}
	back, err := LoadConfig(path)
	if err != nil {
		t.Fatalf("LoadConfig: %v", err)
	}
	if !EqualConfigs(cfg, back) {
		t.Errorf("save/load changed config:\n%+v\n!=\n%+v", cfg, back)
	}
}

func TestLoadConfigMissingFile(t *testing.T) {
	if _, err := LoadConfig(t.TempDir() + "/nope.json"); err == nil {
		t.Error("LoadConfig on missing file succeeded")
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","nodes":1,"coresPerNode":1,"coreSpeed":"fast","nodeLinkBW":"1GB/s","pfs":{"diskBW":"1GB/s"},"bb":{"diskBW":"1GB/s"},"bbKind":"on-node"}`,
		`{"name":"x","nodes":1,"coresPerNode":1,"coreSpeed":"1GFlop/s","nodeLinkBW":"slow","pfs":{"diskBW":"1GB/s"},"bb":{"diskBW":"1GB/s"},"bbKind":"on-node"}`,
		`{"name":"x","nodes":1,"coresPerNode":1,"coreSpeed":"1GFlop/s","nodeLinkBW":"1GB/s","pfs":{"diskBW":"broken"},"bb":{"diskBW":"1GB/s"},"bbKind":"on-node"}`,
		`{"name":"x","nodes":1,"coresPerNode":1,"coreSpeed":"1GFlop/s","nodeLinkBW":"1GB/s","pfs":{"diskBW":"1GB/s"},"bb":{"diskBW":"1GB/s"},"bbKind":"mystery"}`,
	}
	for i, c := range cases {
		if _, err := ParseConfig([]byte(c)); err == nil {
			t.Errorf("case %d: ParseConfig accepted invalid input", i)
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	e := sim.NewEngine()
	cfg := Cori(1, BBPrivate) // 128 GiB RAM
	n := MustNew(e, cfg).Node(0)
	if n.FreeMemory() != 128*units.GiB {
		t.Fatalf("FreeMemory = %v, want 128 GiB", n.FreeMemory())
	}
	if !n.AllocateResources(4, 100*units.GiB) {
		t.Fatal("allocation within limits failed")
	}
	if n.AllocateResources(4, 100*units.GiB) {
		t.Fatal("over-allocation of memory succeeded")
	}
	if !n.HasResources(4, 28*units.GiB) {
		t.Error("remaining memory not reported")
	}
	n.ReleaseResources(4, 100*units.GiB)
	if n.FreeMemory() != 128*units.GiB || n.FreeCores() != 32 {
		t.Error("release did not restore resources")
	}
}

func TestMemoryUnconstrainedWithoutRAM(t *testing.T) {
	e := sim.NewEngine()
	cfg := Cori(1, BBPrivate)
	cfg.RAMPerNode = 0
	n := MustNew(e, cfg).Node(0)
	if !n.AllocateResources(1, 1e18) {
		t.Error("RAM-less node should be memory-unconstrained")
	}
	n.ReleaseResources(1, 1e18)
}

func TestAllocateResourcesPanics(t *testing.T) {
	e := sim.NewEngine()
	n := MustNew(e, Cori(1, BBPrivate)).Node(0)
	for _, fn := range []func(){
		func() { n.AllocateResources(0, 0) },
		func() { n.AllocateResources(1, -5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid AllocateResources did not panic")
				}
			}()
			fn()
		}()
	}
}
