package platform

import "bbwfsim/internal/units"

// The presets below encode Table I of the paper ("input parameters used in
// simulation for evaluating the accuracy of our proposed model") plus the
// few ancillary values Table I omits (node link bandwidth, per-node core
// counts, RAM), taken from the platform descriptions in Section III-A.
//
//	           Processor          Burst Buffer          PFS
//	           speed/core      network    disk      network    disk
//	 Cori      36.80 GF/s      800 MB/s   950 MB/s  1.0 GB/s   100 MB/s
//	 Summit    49.12 GF/s      6.5 GB/s   3.3 GB/s  2.1 GB/s   100 MB/s
//
// The StreamCap values are calibration parameters of our model (see
// DESIGN.md): they bound a single POSIX stream and are what makes per-
// pipeline contention appear long before the aggregate peak is reached.

// CoriStreamCap is the calibrated single-stream POSIX throughput on Cori's
// DataWarp burst buffer.
const CoriStreamCap = 160 * units.MBps

// SummitStreamCap is the calibrated single-stream POSIX throughput on
// Summit's node-local NVMe.
const SummitStreamCap = 1.2 * units.GBps

// Cori returns a Cori-like platform (Cray XC40 Haswell partition) with a
// remote shared burst buffer, in the given DataWarp mode, with the given
// number of compute nodes.
func Cori(nodes int, mode BBMode) Config {
	return Config{
		Name:         "cori",
		Nodes:        nodes,
		CoresPerNode: 32,
		CoreSpeed:    36.80 * units.GFlopPerSec,
		RAMPerNode:   128 * units.GiB,
		NodeLinkBW:   10 * units.GBps, // Aries injection bandwidth
		PFS: StorageConfig{
			NetworkBW: 1.0 * units.GBps,
			DiskBW:    100 * units.MBps,
			StreamCap: 100 * units.MBps,
		},
		BB: StorageConfig{
			NetworkBW: 800 * units.MBps,
			DiskBW:    950 * units.MBps,
			Capacity:  6.4 * units.TB, // one DataWarp node allocation
			StreamCap: CoriStreamCap,
		},
		BBKind: BBShared,
		BBMode: mode,
	}
}

// Summit returns a Summit-like platform (IBM AC922) with node-local NVMe
// burst buffers, with the given number of compute nodes.
func Summit(nodes int) Config {
	return Config{
		Name:         "summit",
		Nodes:        nodes,
		CoresPerNode: 42, // 2 × POWER9, SMT off
		CoreSpeed:    49.12 * units.GFlopPerSec,
		RAMPerNode:   512 * units.GiB,
		NodeLinkBW:   12.5 * units.GBps, // dual-rail EDR, half-duplex share
		PFS: StorageConfig{
			NetworkBW: 2.1 * units.GBps,
			DiskBW:    100 * units.MBps,
			StreamCap: 100 * units.MBps,
		},
		BB: StorageConfig{
			// Table I lists 6.5 GB/s network and 3.3 GB/s disk for the
			// Samsung PM1725a; the "network" bandwidth only applies when a
			// remote node reads another node's BB (not modeled by default).
			NetworkBW: 6.5 * units.GBps,
			DiskBW:    3.3 * units.GBps,
			Capacity:  1.6 * units.TB, // per node
			StreamCap: SummitStreamCap,
		},
		BBKind: BBOnNode,
		BBMode: BBModeNone,
	}
}

// Presets returns all named platform presets, keyed by the names accepted by
// the command-line tools ("cori-private", "cori-striped", "summit").
func Presets(nodes int) map[string]Config {
	return map[string]Config{
		"cori-private": Cori(nodes, BBPrivate),
		"cori-striped": Cori(nodes, BBStriped),
		"summit":       Summit(nodes),
	}
}
