// Package platform describes the simulated execution platform: compute
// nodes (cores, per-core speed, RAM, injection link) and the calibration
// parameters of the storage subsystems (PFS and burst buffer), following
// Table I of the paper.
//
// A Config is plain data (loadable from JSON); a Platform is a Config
// instantiated on a simulation engine, with flow resources created for each
// node. Storage services (internal/storage) build their own resources from
// the StorageConfig halves of the Config.
package platform

import (
	"fmt"
	"math"

	"bbwfsim/internal/flow"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/units"
)

// BBKind distinguishes the two burst-buffer architectures the paper studies.
type BBKind string

const (
	// BBShared models Cori-style remote shared burst buffers: dedicated BB
	// nodes reached over the interconnect, allocatable by any compute node.
	BBShared BBKind = "shared"
	// BBOnNode models Summit-style node-local burst buffers: an NVMe device
	// in every compute node, reachable without a network hop.
	BBOnNode BBKind = "on-node"
)

// BBMode is the Cray DataWarp allocation mode on a shared burst buffer.
type BBMode string

const (
	// BBPrivate gives each compute node its own namespace on the BB.
	BBPrivate BBMode = "private"
	// BBStriped stripes files across BB nodes; any compute node can access
	// any file. Optimized for N:1 patterns, poor for the 1:N pattern the
	// studied workflows exhibit.
	BBStriped BBMode = "striped"
	// BBModeNone applies to on-node burst buffers, which have no mode.
	BBModeNone BBMode = ""
)

// StorageConfig calibrates one storage subsystem (one column pair of
// Table I).
type StorageConfig struct {
	// NetworkBW is the bandwidth of the network path to the storage. Zero
	// means the storage is local to the node (no network hop).
	NetworkBW units.Bandwidth
	// DiskBW is the aggregate disk I/O bandwidth of the storage.
	DiskBW units.Bandwidth
	// Capacity limits total resident data. Zero means unlimited.
	Capacity units.Bytes
	// StreamCap bounds the rate of a single I/O stream (POSIX single-stream
	// throughput). Zero means unbounded. This is a calibration parameter,
	// not part of Table I; it reproduces the paper's observation that the
	// achieved bandwidth saturates far below the peak.
	StreamCap units.Bandwidth
	// ReadLatency and WriteLatency are fixed per-operation latencies in
	// seconds (connection + metadata cost per file operation).
	ReadLatency  float64
	WriteLatency float64
}

// Validate reports configuration errors.
func (s *StorageConfig) Validate(name string) error {
	if s.DiskBW <= 0 {
		return fmt.Errorf("platform: %s disk bandwidth must be positive, got %v", name, s.DiskBW)
	}
	if s.NetworkBW < 0 {
		return fmt.Errorf("platform: %s network bandwidth must be non-negative, got %v", name, s.NetworkBW)
	}
	if s.Capacity < 0 {
		return fmt.Errorf("platform: %s capacity must be non-negative, got %v", name, s.Capacity)
	}
	if s.StreamCap < 0 {
		return fmt.Errorf("platform: %s stream cap must be non-negative, got %v", name, s.StreamCap)
	}
	if s.ReadLatency < 0 || s.WriteLatency < 0 {
		return fmt.Errorf("platform: %s latencies must be non-negative", name)
	}
	return nil
}

// Config is a complete platform description.
type Config struct {
	Name         string
	Nodes        int
	CoresPerNode int
	CoreSpeed    units.FlopRate
	RAMPerNode   units.Bytes
	// NodeLinkBW is each compute node's injection bandwidth into the
	// interconnect. Not part of Table I; set high enough that it only
	// matters when many concurrent remote streams leave one node.
	NodeLinkBW units.Bandwidth

	PFS    StorageConfig
	BB     StorageConfig
	BBKind BBKind
	BBMode BBMode
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("platform: node count must be positive, got %d", c.Nodes)
	}
	if c.CoresPerNode <= 0 {
		return fmt.Errorf("platform: cores per node must be positive, got %d", c.CoresPerNode)
	}
	if c.CoreSpeed <= 0 {
		return fmt.Errorf("platform: core speed must be positive, got %v", c.CoreSpeed)
	}
	if c.NodeLinkBW <= 0 {
		return fmt.Errorf("platform: node link bandwidth must be positive, got %v", c.NodeLinkBW)
	}
	if err := c.PFS.Validate("PFS"); err != nil {
		return err
	}
	if err := c.BB.Validate("BB"); err != nil {
		return err
	}
	switch c.BBKind {
	case BBShared:
		if c.BBMode != BBPrivate && c.BBMode != BBStriped {
			return fmt.Errorf("platform: shared BB requires mode private or striped, got %q", c.BBMode)
		}
	case BBOnNode:
		if c.BBMode != BBModeNone {
			return fmt.Errorf("platform: on-node BB takes no mode, got %q", c.BBMode)
		}
	default:
		return fmt.Errorf("platform: unknown BB kind %q", c.BBKind)
	}
	return nil
}

// Node is one compute node of an instantiated platform.
type Node struct {
	name      string
	index     int
	cores     int
	coreSpeed units.FlopRate
	ram       units.Bytes

	link *flow.Resource // injection link into the interconnect

	coresInUse int
	memInUse   units.Bytes
	down       bool
}

// Name returns the node's identifier.
func (n *Node) Name() string { return n.name }

// Index returns the node's position in the platform's node list.
func (n *Node) Index() int { return n.index }

// Cores returns the node's total core count.
func (n *Node) Cores() int { return n.cores }

// CoreSpeed returns the per-core compute speed.
func (n *Node) CoreSpeed() units.FlopRate { return n.coreSpeed }

// RAM returns the node's memory size.
func (n *Node) RAM() units.Bytes { return n.ram }

// Link returns the node's injection-link resource.
func (n *Node) Link() *flow.Resource { return n.link }

// FreeCores returns the number of unallocated cores.
func (n *Node) FreeCores() int { return n.cores - n.coresInUse }

// Allocate reserves k cores, reporting whether the reservation succeeded.
func (n *Node) Allocate(k int) bool {
	if k <= 0 {
		panic(fmt.Sprintf("platform: allocate %d cores", k))
	}
	if n.coresInUse+k > n.cores {
		return false
	}
	n.coresInUse += k
	return true
}

// Release returns k cores to the free pool.
func (n *Node) Release(k int) {
	if k <= 0 || n.coresInUse-k < 0 {
		panic(fmt.Sprintf("platform: release %d cores with %d in use", k, n.coresInUse))
	}
	n.coresInUse -= k
}

// FreeMemory returns the unreserved RAM. A node with no configured RAM is
// memory-unconstrained and reports the maximum value.
func (n *Node) FreeMemory() units.Bytes {
	if n.ram <= 0 {
		return units.Bytes(math.MaxFloat64)
	}
	return n.ram - n.memInUse
}

// Down reports whether the node is currently failed (fault injection).
func (n *Node) Down() bool { return n.down }

// SetDown marks the node failed or repaired. A failed node schedules no new
// work (HasResources reports false) but keeps its resource accounting, so
// tasks aborted on it release their allocations normally.
func (n *Node) SetDown(down bool) { n.down = down }

// HasResources reports whether k cores and mem bytes are both free. A
// failed node has no resources to offer.
func (n *Node) HasResources(k int, mem units.Bytes) bool {
	if n.down {
		return false
	}
	return n.cores-n.coresInUse >= k && (mem <= 0 || n.FreeMemory() >= mem)
}

// AllocateResources atomically reserves k cores and mem bytes of RAM,
// reporting whether the reservation succeeded.
func (n *Node) AllocateResources(k int, mem units.Bytes) bool {
	if k <= 0 {
		panic(fmt.Sprintf("platform: allocate %d cores", k))
	}
	if mem < 0 {
		panic(fmt.Sprintf("platform: allocate negative memory %v", mem))
	}
	if !n.HasResources(k, mem) {
		return false
	}
	n.coresInUse += k
	if n.ram > 0 {
		n.memInUse += mem
	}
	return true
}

// ReleaseResources returns k cores and mem bytes of RAM to the free pool.
func (n *Node) ReleaseResources(k int, mem units.Bytes) {
	n.Release(k)
	if n.ram > 0 && mem > 0 {
		n.memInUse -= mem
		if n.memInUse < 0 {
			panic(fmt.Sprintf("platform: memory over-release on %s", n.name))
		}
	}
}

// ComputeTime returns the execution time in seconds of a task with the given
// total sequential work on p cores under Amdahl's law (Eq. 2 of the paper):
// alpha is the non-parallelizable fraction; alpha = 0 is perfect speedup.
func (n *Node) ComputeTime(work units.Flops, p int, alpha float64) float64 {
	if p <= 0 {
		panic(fmt.Sprintf("platform: compute on %d cores", p))
	}
	if alpha < 0 || alpha > 1 {
		panic(fmt.Sprintf("platform: Amdahl fraction %g out of [0,1]", alpha))
	}
	seq := work.Seconds(n.coreSpeed)
	return alpha*seq + (1-alpha)*seq/float64(p)
}

// Platform is a Config instantiated on a simulation engine.
type Platform struct {
	cfg   Config
	eng   *sim.Engine
	net   *flow.Network
	nodes []*Node
}

// New instantiates the configuration: it creates the flow network and one
// injection-link resource per node.
func New(eng *sim.Engine, cfg Config) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{cfg: cfg, eng: eng, net: flow.NewNetwork(eng)}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("%s-node%03d", cfg.Name, i)
		p.nodes = append(p.nodes, &Node{
			name:      name,
			index:     i,
			cores:     cfg.CoresPerNode,
			coreSpeed: cfg.CoreSpeed,
			ram:       cfg.RAMPerNode,
			link:      p.net.NewResource(name+"-link", float64(cfg.NodeLinkBW)),
		})
	}
	return p, nil
}

// MustNew is New for known-good configurations (the presets); it panics on
// error.
func MustNew(eng *sim.Engine, cfg Config) *Platform {
	p, err := New(eng, cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the platform's configuration.
func (p *Platform) Config() Config { return p.cfg }

// Engine returns the simulation engine.
func (p *Platform) Engine() *sim.Engine { return p.eng }

// Network returns the flow network resources live on.
func (p *Platform) Network() *flow.Network { return p.net }

// Nodes returns the compute nodes.
func (p *Platform) Nodes() []*Node { return p.nodes }

// Node returns node i.
func (p *Platform) Node(i int) *Node { return p.nodes[i] }

// TotalCores returns the platform-wide core count.
func (p *Platform) TotalCores() int { return p.cfg.Nodes * p.cfg.CoresPerNode }

// EqualConfigs reports whether two configs are numerically identical,
// tolerating float representation noise. Used by tests and the spec
// round-trip check.
func EqualConfigs(a, b Config) bool {
	feq := func(x, y float64) bool {
		return math.Abs(x-y) <= 1e-9*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	seq := func(x, y StorageConfig) bool {
		return feq(float64(x.NetworkBW), float64(y.NetworkBW)) &&
			feq(float64(x.DiskBW), float64(y.DiskBW)) &&
			feq(float64(x.Capacity), float64(y.Capacity)) &&
			feq(float64(x.StreamCap), float64(y.StreamCap)) &&
			feq(x.ReadLatency, y.ReadLatency) &&
			feq(x.WriteLatency, y.WriteLatency)
	}
	return a.Name == b.Name && a.Nodes == b.Nodes && a.CoresPerNode == b.CoresPerNode &&
		feq(float64(a.CoreSpeed), float64(b.CoreSpeed)) &&
		feq(float64(a.RAMPerNode), float64(b.RAMPerNode)) &&
		feq(float64(a.NodeLinkBW), float64(b.NodeLinkBW)) &&
		seq(a.PFS, b.PFS) && seq(a.BB, b.BB) &&
		a.BBKind == b.BBKind && a.BBMode == b.BBMode
}
