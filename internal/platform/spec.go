package platform

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"bbwfsim/internal/units"
)

// spec is the on-disk JSON form of a Config. Quantities are strings with
// units ("800MB/s", "36.8 GFlop/s", "128 GiB") so platform files stay
// readable; see ParseConfig.
type spec struct {
	Name         string      `json:"name"`
	Nodes        int         `json:"nodes"`
	CoresPerNode int         `json:"coresPerNode"`
	CoreSpeed    string      `json:"coreSpeed"`
	RAMPerNode   string      `json:"ramPerNode,omitempty"`
	NodeLinkBW   string      `json:"nodeLinkBW"`
	PFS          storageSpec `json:"pfs"`
	BB           storageSpec `json:"bb"`
	BBKind       string      `json:"bbKind"`
	BBMode       string      `json:"bbMode,omitempty"`
}

type storageSpec struct {
	NetworkBW    string  `json:"networkBW,omitempty"`
	DiskBW       string  `json:"diskBW"`
	Capacity     string  `json:"capacity,omitempty"`
	StreamCap    string  `json:"streamCap,omitempty"`
	ReadLatency  float64 `json:"readLatency,omitempty"`
	WriteLatency float64 `json:"writeLatency,omitempty"`
}

func (s *storageSpec) toConfig(name string) (StorageConfig, error) {
	var cfg StorageConfig
	var err error
	if s.NetworkBW != "" {
		if cfg.NetworkBW, err = units.ParseBandwidth(s.NetworkBW); err != nil {
			return cfg, fmt.Errorf("%s networkBW: %v", name, err)
		}
	}
	if cfg.DiskBW, err = units.ParseBandwidth(s.DiskBW); err != nil {
		return cfg, fmt.Errorf("%s diskBW: %v", name, err)
	}
	if s.Capacity != "" {
		if cfg.Capacity, err = units.ParseBytes(s.Capacity); err != nil {
			return cfg, fmt.Errorf("%s capacity: %v", name, err)
		}
	}
	if s.StreamCap != "" {
		if cfg.StreamCap, err = units.ParseBandwidth(s.StreamCap); err != nil {
			return cfg, fmt.Errorf("%s streamCap: %v", name, err)
		}
	}
	cfg.ReadLatency = s.ReadLatency
	cfg.WriteLatency = s.WriteLatency
	return cfg, nil
}

func storageToSpec(c StorageConfig) storageSpec {
	s := storageSpec{
		DiskBW:       c.DiskBW.String(),
		ReadLatency:  c.ReadLatency,
		WriteLatency: c.WriteLatency,
	}
	if c.NetworkBW > 0 {
		s.NetworkBW = c.NetworkBW.String()
	}
	if c.Capacity > 0 {
		// Bare byte counts round-trip exactly; pretty strings like
		// "5.82 TiB" would lose precision.
		s.Capacity = strconv.FormatFloat(float64(c.Capacity), 'g', -1, 64)
	}
	if c.StreamCap > 0 {
		s.StreamCap = c.StreamCap.String()
	}
	return s
}

// ParseConfig decodes a JSON platform description.
func ParseConfig(data []byte) (Config, error) {
	var s spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Config{}, fmt.Errorf("platform: decode spec: %v", err)
	}
	cfg := Config{
		Name:         s.Name,
		Nodes:        s.Nodes,
		CoresPerNode: s.CoresPerNode,
		BBKind:       BBKind(s.BBKind),
		BBMode:       BBMode(s.BBMode),
	}
	var err error
	if cfg.CoreSpeed, err = units.ParseFlopRate(s.CoreSpeed); err != nil {
		return Config{}, fmt.Errorf("platform: coreSpeed: %v", err)
	}
	if s.RAMPerNode != "" {
		if cfg.RAMPerNode, err = units.ParseBytes(s.RAMPerNode); err != nil {
			return Config{}, fmt.Errorf("platform: ramPerNode: %v", err)
		}
	}
	if cfg.NodeLinkBW, err = units.ParseBandwidth(s.NodeLinkBW); err != nil {
		return Config{}, fmt.Errorf("platform: nodeLinkBW: %v", err)
	}
	if cfg.PFS, err = s.PFS.toConfig("pfs"); err != nil {
		return Config{}, fmt.Errorf("platform: %v", err)
	}
	if cfg.BB, err = s.BB.toConfig("bb"); err != nil {
		return Config{}, fmt.Errorf("platform: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// MarshalConfig encodes a Config as indented JSON.
func MarshalConfig(cfg Config) ([]byte, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := spec{
		Name:         cfg.Name,
		Nodes:        cfg.Nodes,
		CoresPerNode: cfg.CoresPerNode,
		CoreSpeed:    cfg.CoreSpeed.String(),
		NodeLinkBW:   cfg.NodeLinkBW.String(),
		PFS:          storageToSpec(cfg.PFS),
		BB:           storageToSpec(cfg.BB),
		BBKind:       string(cfg.BBKind),
		BBMode:       string(cfg.BBMode),
	}
	if cfg.RAMPerNode > 0 {
		s.RAMPerNode = strconv.FormatFloat(float64(cfg.RAMPerNode), 'g', -1, 64)
	}
	return json.MarshalIndent(&s, "", "  ")
}

// LoadConfig reads and parses a platform description file.
func LoadConfig(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("platform: %v", err)
	}
	return ParseConfig(data)
}

// SaveConfig writes a platform description file.
func SaveConfig(path string, cfg Config) error {
	data, err := MarshalConfig(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
