package platform

import (
	"strings"
	"testing"
)

func TestXMLRoundTrip(t *testing.T) {
	for name, cfg := range Presets(8) {
		data, err := MarshalXML(cfg)
		if err != nil {
			t.Errorf("%s: marshal: %v", name, err)
			continue
		}
		back, err := ParseXML(data)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		if !EqualConfigs(cfg, back) {
			t.Errorf("%s: XML round trip changed config:\n%+v\n!=\n%+v", name, cfg, back)
		}
	}
}

func TestXMLHandWritten(t *testing.T) {
	doc := `<?xml version="1.0"?>
<platform name="toy">
  <cluster nodes="2" cores="8" speed="2 GFlop/s" ram="1GiB" linkBW="5 GB/s"/>
  <pfs networkBW="1 GB/s" diskBW="200 MB/s"/>
  <burstbuffer kind="on-node" diskBW="3 GB/s" capacity="1e12" streamCap="1 GB/s"
               readLatency="0.001" writeLatency="0.002"/>
</platform>`
	cfg, err := ParseXML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "toy" || cfg.Nodes != 2 || cfg.CoresPerNode != 8 {
		t.Errorf("cluster wrong: %+v", cfg)
	}
	if cfg.BBKind != BBOnNode || cfg.BB.Capacity != 1e12 {
		t.Errorf("BB wrong: %+v", cfg.BB)
	}
	if cfg.BB.ReadLatency != 0.001 || cfg.BB.WriteLatency != 0.002 {
		t.Errorf("latencies wrong: %+v", cfg.BB)
	}
	if cfg.PFS.NetworkBW != 1e9 {
		t.Errorf("PFS network wrong: %v", cfg.PFS.NetworkBW)
	}
}

func TestXMLErrors(t *testing.T) {
	cases := []string{
		`not xml at all <`,
		// missing speed
		`<platform name="x"><cluster nodes="1" cores="1" linkBW="1GB/s"/>
		 <pfs diskBW="1GB/s"/><burstbuffer kind="on-node" diskBW="1GB/s"/></platform>`,
		// bad bandwidth
		`<platform name="x"><cluster nodes="1" cores="1" speed="1GFlop/s" linkBW="fast"/>
		 <pfs diskBW="1GB/s"/><burstbuffer kind="on-node" diskBW="1GB/s"/></platform>`,
		// invalid BB kind
		`<platform name="x"><cluster nodes="1" cores="1" speed="1GFlop/s" linkBW="1GB/s"/>
		 <pfs diskBW="1GB/s"/><burstbuffer kind="floating" diskBW="1GB/s"/></platform>`,
		// shared BB without a mode
		`<platform name="x"><cluster nodes="1" cores="1" speed="1GFlop/s" linkBW="1GB/s"/>
		 <pfs diskBW="1GB/s"/><burstbuffer kind="shared" diskBW="1GB/s"/></platform>`,
	}
	for i, c := range cases {
		if _, err := ParseXML([]byte(c)); err == nil {
			t.Errorf("case %d: invalid XML accepted", i)
		}
	}
}

func TestXMLSaveLoad(t *testing.T) {
	path := t.TempDir() + "/plat.xml"
	cfg := Summit(4)
	if err := SaveXML(path, cfg); err != nil {
		t.Fatal(err)
	}
	back, err := LoadXML(path)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualConfigs(cfg, back) {
		t.Error("XML save/load changed config")
	}
	if _, err := LoadXML(t.TempDir() + "/nope.xml"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestXMLHeaderPresent(t *testing.T) {
	data, err := MarshalXML(Cori(1, BBStriped))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<?xml") {
		t.Error("XML output missing header")
	}
	if !strings.Contains(string(data), `mode="striped"`) {
		t.Error("XML output missing BB mode")
	}
}
