package sched

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"bbwfsim/internal/faults"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workloads"
)

// testCluster is a small contended platform: 4 nodes, 8 GiB of BB, a fast
// BB staging channel and a 4x slower PFS channel.
func testCluster() Cluster {
	return Cluster{
		Nodes:        4,
		BBCapacity:   8 * units.GiB,
		BBBandwidth:  units.Bandwidth(units.GiB),
		PFSBandwidth: units.Bandwidth(256 * units.MiB),
	}
}

// job builds a valid three-phase job with zero stage bytes (pure compute)
// unless data is set afterwards.
func job(id string, submit, runtime float64, nodes int, bb units.Bytes) workloads.Job {
	return workloads.Job{
		ID: id, Submit: submit, Runtime: runtime, Walltime: runtime,
		Nodes: nodes, BBDemand: bb,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", cfg.Policy, err)
	}
	return res
}

func statByID(t *testing.T, res *Result, id string) *JobStat {
	t.Helper()
	for i := range res.Jobs {
		if res.Jobs[i].ID == id {
			return &res.Jobs[i]
		}
	}
	t.Fatalf("job %s not in result", id)
	return nil
}

func TestRunValidation(t *testing.T) {
	good := []workloads.Job{job("a", 0, 10, 1, units.MiB)}
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no nodes", Config{Cluster: Cluster{BBBandwidth: 1, PFSBandwidth: 1}, Policy: PolicyFCFS, Jobs: good}, "needs nodes"},
		{"bad bandwidth", Config{Cluster: Cluster{Nodes: 1, PFSBandwidth: 1}, Policy: PolicyFCFS, Jobs: good}, "bandwidths"},
		{"negative capacity", Config{Cluster: Cluster{Nodes: 1, BBCapacity: -1, BBBandwidth: 1, PFSBandwidth: 1}, Policy: PolicyFCFS, Jobs: good}, "negative BB capacity"},
		{"empty policy", Config{Cluster: testCluster(), Jobs: good}, "empty policy"},
		{"unknown policy", Config{Cluster: testCluster(), Policy: "sjf", Jobs: good}, "unknown policy"},
		{"bad job", Config{Cluster: testCluster(), Policy: PolicyFCFS,
			Jobs: []workloads.Job{job("", 0, 10, 1, 0)}}, "empty ID"},
		{"out of order", Config{Cluster: testCluster(), Policy: PolicyFCFS,
			Jobs: []workloads.Job{job("a", 10, 10, 1, 0), job("b", 5, 10, 1, 0)}}, "out of submit order"},
		{"bad fault dist", Config{Cluster: testCluster(), Policy: PolicyFCFS, Jobs: good,
			Faults: &FaultPlan{Node: &faults.NodeProcess{Arrival: faults.Exp(-1), MTTR: 10}}}, "node failure"},
		{"bad MTTR", Config{Cluster: testCluster(), Policy: PolicyFCFS, Jobs: good,
			Faults: &FaultPlan{Node: &faults.NodeProcess{Arrival: faults.Exp(100)}}}, "MTTR"},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestPoliciesCatalog(t *testing.T) {
	for _, name := range Policies() {
		p, err := newPolicy(name)
		if err != nil {
			t.Fatalf("newPolicy(%s): %v", name, err)
		}
		if p.name() != name {
			t.Errorf("policy %s reports name %s", name, p.name())
		}
	}
}

// TestFCFSHeadOfLineBlocking pins the FCFS-vs-EASY contrast on a crafted
// campaign: a full-cluster head blocks a short narrow job under FCFS,
// while EASY backfills it into the shadow of the head's reservation.
func TestFCFSHeadOfLineBlocking(t *testing.T) {
	jobs := []workloads.Job{
		job("wide-a", 0, 100, 3, units.GiB),
		job("wide-b", 1, 100, 4, units.GiB),
		job("narrow", 2, 10, 1, units.MiB),
	}
	fcfs := mustRun(t, Config{Cluster: testCluster(), Policy: PolicyFCFS, Jobs: jobs})
	easy := mustRun(t, Config{Cluster: testCluster(), Policy: PolicyEASY, Jobs: jobs})

	if got := statByID(t, fcfs, "narrow").Start; got < statByID(t, fcfs, "wide-b").Start {
		t.Errorf("fcfs started narrow (t=%g) before wide-b (t=%g)", got, statByID(t, fcfs, "wide-b").Start)
	}
	// EASY backfills narrow while wide-a runs: 2+10 <= wide-a's estimated
	// release at t=100.
	if got := statByID(t, easy, "narrow").Start; got > 2.5 {
		t.Errorf("easy did not backfill narrow: started at t=%g", got)
	}
	if statByID(t, easy, "wide-b").Start > statByID(t, fcfs, "wide-b").Start {
		t.Errorf("easy delayed the head: wide-b at t=%g vs fcfs t=%g",
			statByID(t, easy, "wide-b").Start, statByID(t, fcfs, "wide-b").Start)
	}
	if easy.MeanWait() >= fcfs.MeanWait() {
		t.Errorf("easy mean wait %g not better than fcfs %g", easy.MeanWait(), fcfs.MeanWait())
	}
}

// TestBackfillRespectsShadow pins the EASY safety property: a backfill
// candidate that would overrun the head's shadow and eat its nodes must
// not start.
func TestBackfillRespectsShadow(t *testing.T) {
	cl := testCluster()
	jobs := []workloads.Job{
		job("running", 0, 100, 3, units.GiB), // leaves 1 node free
		job("head", 1, 50, 4, units.GiB),     // reserved at t≈100
		job("long-narrow", 2, 500, 1, units.MiB),
	}
	res := mustRun(t, Config{Cluster: cl, Policy: PolicyEASY, Jobs: jobs})
	// long-narrow fits the free node now but would hold it past the
	// head's shadow (t≈100) while leaving only 3 nodes spare — so it must
	// wait for the head.
	if got, headStart := statByID(t, res, "long-narrow").Start, statByID(t, res, "head").Start; got < headStart {
		t.Errorf("backfill overran the shadow: long-narrow at t=%g, head at t=%g", got, headStart)
	}
}

// TestPlanReservesBB pins the plan policy's two-resource profile: a job
// whose nodes fit but whose BB bytes are promised to an earlier queued job
// must wait for its planned slot.
func TestPlanReservesBB(t *testing.T) {
	cl := testCluster() // 8 GiB BB
	jobs := []workloads.Job{
		job("holder", 0, 100, 1, 6*units.GiB),
		job("queued-big", 1, 10, 1, 7*units.GiB), // plans at holder's release
		job("small", 2, 10, 1, 4*units.GiB),      // would starve queued-big's BB slot
	}
	res := mustRun(t, Config{Cluster: cl, Policy: PolicyPlan, Jobs: jobs})
	big := statByID(t, res, "queued-big")
	small := statByID(t, res, "small")
	// small fits now on nodes and free BB (2 GiB free... it does not fit:
	// 4 > 2), but even a fitting filler must not push queued-big past the
	// slot the plan promised it: big starts at holder's release.
	if big.Start > 101 {
		t.Errorf("plan pushed queued-big to t=%g, want at holder release ≈100", big.Start)
	}
	if small.Start < big.Start {
		t.Errorf("plan let small (t=%g) jump queued-big's BB reservation (t=%g)", small.Start, big.Start)
	}
	for _, j := range res.Jobs {
		if j.Outcome != Completed {
			t.Errorf("job %s: outcome %s", j.ID, j.Outcome)
		}
	}
}

// TestGreedyOrdering pins the BBSimulator greedy pair: MaxBurstBuffer
// starts the biggest reservation first, MaxParallel the narrowest jobs.
func TestGreedyOrdering(t *testing.T) {
	cl := Cluster{Nodes: 2, BBCapacity: 3 * units.GiB,
		BBBandwidth: units.Bandwidth(units.GiB), PFSBandwidth: units.Bandwidth(256 * units.MiB)}
	jobs := []workloads.Job{
		job("blocker", 0, 50, 2, 0),
		job("small-bb", 1, 10, 1, units.GiB),
		job("big-bb", 2, 10, 1, 2*units.GiB),
	}
	maxbb := mustRun(t, Config{Cluster: cl, Policy: PolicyMaxBB, Jobs: jobs})
	fcfs := mustRun(t, Config{Cluster: cl, Policy: PolicyFCFS, Jobs: jobs})
	// Both fit together (3 GiB), so shrink the contrast: big+small = 3 GiB
	// fits; use start order of the pick pass instead — maxbb picks big-bb
	// first, so its start must not follow small-bb's.
	if statByID(t, maxbb, "big-bb").Start > statByID(t, maxbb, "small-bb").Start {
		t.Errorf("maxbb started small-bb before big-bb")
	}
	if statByID(t, fcfs, "small-bb").Start > statByID(t, fcfs, "big-bb").Start {
		t.Errorf("fcfs started big-bb before small-bb")
	}

	clN := Cluster{Nodes: 2, BBCapacity: 8 * units.GiB,
		BBBandwidth: units.Bandwidth(units.GiB), PFSBandwidth: units.Bandwidth(256 * units.MiB)}
	jobsN := []workloads.Job{
		job("blocker", 0, 50, 2, 0),
		job("wide", 1, 10, 2, units.MiB),
		job("narrow-a", 2, 10, 1, units.MiB),
		job("narrow-b", 3, 10, 1, units.MiB),
	}
	maxpar := mustRun(t, Config{Cluster: clN, Policy: PolicyMaxParallel, Jobs: jobsN})
	if statByID(t, maxpar, "narrow-a").Start > statByID(t, maxpar, "wide").Start ||
		statByID(t, maxpar, "narrow-b").Start > statByID(t, maxpar, "wide").Start {
		t.Errorf("maxparallel did not start the narrow pair first: narrow at t=%g/%g, wide at t=%g",
			statByID(t, maxpar, "narrow-a").Start, statByID(t, maxpar, "narrow-b").Start,
			statByID(t, maxpar, "wide").Start)
	}
}

// TestDirectIOStagesThroughPFS pins the DirectIO baseline: no BB
// reservation, stage phases on the slower PFS channel.
func TestDirectIOStagesThroughPFS(t *testing.T) {
	cl := testCluster()
	j := job("io", 0, 10, 1, units.GiB)
	j.StageIn = units.GiB
	j.StageOut = units.GiB
	jobs := []workloads.Job{j}

	bb := mustRun(t, Config{Cluster: cl, Policy: PolicyFCFS, Jobs: jobs})
	dio := mustRun(t, Config{Cluster: cl, Policy: PolicyDirectIO, Jobs: jobs})

	if got := statByID(t, dio, "io").BB; got > 0 {
		t.Errorf("directio job holds a BB reservation of %v", got)
	}
	// BB path: 1 GiB each way at 1 GiB/s → 10+2 s. PFS path: 4 s each
	// way → 10+8 s.
	if math.Abs(bb.Makespan-12) > 1e-6 {
		t.Errorf("BB-staged makespan %g, want 12", bb.Makespan)
	}
	if math.Abs(dio.Makespan-18) > 1e-6 {
		t.Errorf("directio makespan %g, want 18", dio.Makespan)
	}
	if v, ok := dio.Metrics.Gauge("sched_bb_peak_bytes", metrics.Key{}); ok && v > 0 {
		t.Errorf("directio BB peak gauge %g, want 0", v)
	}
}

// TestRejection pins admission: jobs beyond whole-cluster capacity are
// rejected at submit, and the outcome conservation identity holds.
func TestRejection(t *testing.T) {
	cl := testCluster()
	jobs := []workloads.Job{
		job("too-wide", 0, 10, 8, units.MiB),
		job("too-hungry", 1, 10, 1, 16*units.GiB),
		job("fits", 2, 10, 1, units.GiB),
	}
	res := mustRun(t, Config{Cluster: cl, Policy: PolicyFCFS, Jobs: jobs})
	if res.Rejected != 2 || res.Completed != 1 || res.Failed != 0 {
		t.Fatalf("outcomes completed/failed/rejected = %d/%d/%d, want 1/0/2",
			res.Completed, res.Failed, res.Rejected)
	}
	if res.Submitted != res.Completed+res.Failed+res.Rejected {
		t.Errorf("conservation: %d submitted != %d+%d+%d", res.Submitted, res.Completed, res.Failed, res.Rejected)
	}
	if got := res.Trace.CountKind(trace.JobReject); got != 2 {
		t.Errorf("trace has %d job-reject events, want 2", got)
	}
	if got := statByID(t, res, "too-wide").Outcome; got != Rejected {
		t.Errorf("too-wide outcome %s", got)
	}
	if got := res.Metrics.Counter("sched_jobs_total", metrics.Key{Op: metrics.OutcomeRejected}); got != 2 {
		t.Errorf("rejected counter %g, want 2", got)
	}
	// A directio policy ignores BB demands: too-hungry is admitted.
	dio := mustRun(t, Config{Cluster: cl, Policy: PolicyDirectIO, Jobs: jobs})
	if dio.Rejected != 1 {
		t.Errorf("directio rejected %d jobs, want 1 (nodes only)", dio.Rejected)
	}
}

// TestCampaignAllPoliciesConserve runs a generated 300-job campaign under
// every policy and checks the ledger identities every run must satisfy.
func TestCampaignAllPoliciesConserve(t *testing.T) {
	jobs, err := workloads.Campaign(workloads.CampaignSpec{Jobs: 300, Seed: 11, MaxNodes: 4, BBMean: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	cl := testCluster()
	for _, pol := range Policies() {
		res := mustRun(t, Config{Cluster: cl, Policy: pol, Jobs: jobs})
		if res.Submitted != res.Completed+res.Failed+res.Rejected {
			t.Errorf("%s: conservation %d != %d+%d+%d", pol, res.Submitted, res.Completed, res.Failed, res.Rejected)
		}
		if res.Completed == 0 {
			t.Errorf("%s: nothing completed", pol)
		}
		for i := range res.Jobs {
			j := &res.Jobs[i]
			if j.Outcome != Completed {
				continue
			}
			if j.Start < j.Submit || j.End < j.Start {
				t.Errorf("%s %s: non-monotone lifecycle %g/%g/%g", pol, j.ID, j.Submit, j.Start, j.End)
			}
			if j.Slowdown < 1 {
				t.Errorf("%s %s: bounded slowdown %g < 1", pol, j.ID, j.Slowdown)
			}
			if math.Abs(j.Wait-(j.Start-j.Submit)) > 1e-9 {
				t.Errorf("%s %s: wait %g != start-submit %g", pol, j.ID, j.Wait, j.Start-j.Submit)
			}
		}
	}
}

// TestDeterminismBitwise pins the hard requirement: two runs of the same
// Config produce identical traces, metrics, and per-job statistics —
// including under a fault campaign.
func TestDeterminismBitwise(t *testing.T) {
	jobs, err := workloads.Campaign(workloads.CampaignSpec{Jobs: 150, Seed: 5, MaxNodes: 4, BBMean: 2 * units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range Policies() {
		cfg := Config{
			Cluster: testCluster(), Policy: pol, Jobs: jobs,
			Faults: &FaultPlan{Seed: 99, Node: &faults.NodeProcess{Arrival: faults.Exp(2000), MTTR: 500, Budget: 4}},
		}
		a := mustRun(t, cfg)
		b := mustRun(t, cfg)
		if !reflect.DeepEqual(a.Jobs, b.Jobs) {
			t.Fatalf("%s: per-job stats differ between identical runs", pol)
		}
		if !reflect.DeepEqual(a.Trace.Events(), b.Trace.Events()) {
			t.Fatalf("%s: traces differ between identical runs", pol)
		}
		aj, _ := a.Metrics.JSON()
		bj, _ := b.Metrics.JSON()
		if string(aj) != string(bj) {
			t.Fatalf("%s: metrics snapshots differ between identical runs", pol)
		}
	}
}

// TestFaultCampaign pins fault-path accounting: injected node failures
// kill holding jobs, tallies agree between result, trace, and metrics,
// and the campaign still drains.
func TestFaultCampaign(t *testing.T) {
	jobs, err := workloads.Campaign(workloads.CampaignSpec{Jobs: 120, Seed: 3, MaxNodes: 3, BBMean: units.GiB})
	if err != nil {
		t.Fatal(err)
	}
	cl := testCluster()
	res := mustRun(t, Config{
		Cluster: cl, Policy: PolicyEASY, Jobs: jobs,
		Faults: &FaultPlan{Seed: 17, Node: &faults.NodeProcess{Arrival: faults.Exp(500), MTTR: 300, Budget: 8}},
	})
	if res.NodeFailures == 0 {
		t.Fatal("fault campaign injected no node failures")
	}
	if got := res.Trace.CountKind(trace.NodeFail); got != res.NodeFailures {
		t.Errorf("trace node-fail count %d != result %d", got, res.NodeFailures)
	}
	if got := res.Trace.CountKind(trace.JobFail); got != res.Failed {
		t.Errorf("trace job-fail count %d != result %d", got, res.Failed)
	}
	if res.Submitted != res.Completed+res.Failed+res.Rejected {
		t.Errorf("conservation under faults: %d != %d+%d+%d", res.Submitted, res.Completed, res.Failed, res.Rejected)
	}
	if got := res.Metrics.Counter("sched_jobs_total", metrics.Key{Op: metrics.OutcomeFailed}); got != float64(res.Failed) {
		t.Errorf("failed counter %g != %d", got, res.Failed)
	}
	for i := range res.Jobs {
		if j := &res.Jobs[i]; j.Outcome == Failed && (j.Response > 0 || j.Slowdown > 0) {
			t.Errorf("failed job %s has response/slowdown accounting %g/%g", j.ID, j.Response, j.Slowdown)
		}
	}
}

// TestChannelFairShare pins the max–min channel: concurrent transfers
// split the bandwidth equally and completions re-divide it.
func TestChannelFairShare(t *testing.T) {
	eng := sim.NewEngine()
	ch := newChannel(eng, 100)
	var doneA, doneB, doneC float64
	ch.add(100, func() { doneA = eng.Now() })
	ch.add(100, func() { doneB = eng.Now() })
	eng.At(0.5, func() { ch.add(25, func() { doneC = eng.Now() }) })
	eng.Run()
	// A and B share 50 B/s each; C joins at 0.5 with 25 bytes. From 0.5 on
	// each gets 100/3 B/s: C finishes at 0.5+0.75=1.25; A and B then hold
	// 50-(25/3×... — just pin the invariants: C first, A=B after.
	if doneC <= 0.5 || doneC >= doneA {
		t.Errorf("late short transfer finished at %g, want between 0.5 and %g", doneC, doneA)
	}
	if math.Abs(doneA-doneB) > 1e-9 {
		t.Errorf("equal transfers finished apart: %g vs %g", doneA, doneB)
	}
	if doneA <= 2 { // alone they'd take 1 s each; sharing must stretch both past 2 s total
		t.Errorf("shared transfers finished at %g, want > 2 (bandwidth was shared)", doneA)
	}

	// Cancellation returns the share to the survivors.
	eng2 := sim.NewEngine()
	ch2 := newChannel(eng2, 100)
	var doneD float64
	cancelled := false
	ch2.add(100, func() { doneD = eng2.Now() })
	tr := ch2.add(100, func() { cancelled = true })
	eng2.At(0.5, func() { tr.cancel() })
	eng2.Run()
	if cancelled {
		t.Error("cancelled transfer's callback fired")
	}
	// D: 0.5 s at 50 B/s (25 bytes), then 75 bytes at 100 B/s → 1.25 s.
	if math.Abs(doneD-1.25) > 1e-6 {
		t.Errorf("survivor finished at %g, want 1.25", doneD)
	}

	// Zero-byte transfers complete without entering the channel.
	eng3 := sim.NewEngine()
	ch3 := newChannel(eng3, 100)
	fired := false
	ch3.add(0, func() { fired = true })
	eng3.Run()
	if !fired {
		t.Error("zero-byte transfer never completed")
	}
}

func TestClusterFromPlatform(t *testing.T) {
	cfg := platform.Config{
		Nodes:  8,
		BBKind: platform.BBOnNode,
		BB:     platform.StorageConfig{DiskBW: units.Bandwidth(units.GiB), Capacity: 2 * units.GiB},
		PFS:    platform.StorageConfig{DiskBW: units.Bandwidth(512 * units.MiB)},
	}
	cl := ClusterFromPlatform(cfg)
	if cl.Nodes != 8 {
		t.Errorf("nodes %d", cl.Nodes)
	}
	if cl.BBCapacity != 16*units.GiB {
		t.Errorf("on-node capacity %v, want 16 GiB aggregate", cl.BBCapacity)
	}
	if cl.BBBandwidth != units.Bandwidth(8*units.GiB) {
		t.Errorf("on-node bandwidth %v, want 8 GiB/s aggregate", cl.BBBandwidth)
	}
	cfg.BBKind = platform.BBShared
	cl = ClusterFromPlatform(cfg)
	if cl.BBCapacity != 2*units.GiB || cl.BBBandwidth != units.Bandwidth(units.GiB) {
		t.Errorf("shared cluster got %v/%v", cl.BBCapacity, cl.BBBandwidth)
	}
	if cl.PFSBandwidth != units.Bandwidth(512*units.MiB) {
		t.Errorf("PFS bandwidth %v", cl.PFSBandwidth)
	}
}

// TestUnlimitedBB pins the zero-capacity convention: BBCapacity 0 means
// unbounded reservations, never instant rejection.
func TestUnlimitedBB(t *testing.T) {
	cl := testCluster()
	cl.BBCapacity = 0
	jobs := []workloads.Job{
		job("a", 0, 10, 1, 100*units.GiB),
		job("b", 0, 10, 1, 100*units.GiB),
	}
	res := mustRun(t, Config{Cluster: cl, Policy: PolicyFCFS, Jobs: jobs})
	if res.Rejected != 0 || res.Completed != 2 {
		t.Errorf("unlimited BB rejected %d completed %d", res.Rejected, res.Completed)
	}
}
