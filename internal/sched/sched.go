// Package sched is the multi-tenant batch-scheduler layer: it admits an
// SWF-style campaign of competing jobs (internal/workloads) onto one
// shared cluster — rigid node allocations plus per-job burst-buffer
// reservations — under a pluggable scheduling policy, and accounts per-job
// wait, response, and bounded slowdown.
//
// The job model is the BBSimulator three-phase shape: stage-in moves the
// job's input bytes through the burst buffer's aggregate staging channel,
// the compute phase runs for the job's actual runtime, and stage-out moves
// the output bytes back. A job holds its nodes and its BB reservation for
// the whole active span; the burst buffer's value under this model is the
// staging channel's bandwidth advantage over the PFS path DirectIO jobs
// take. Staging channels are max–min fair: concurrent transfers share the
// aggregate bandwidth equally, so BB pressure stretches stage phases
// exactly as concurrent pipelines stretch I/O in the single-workflow
// simulator.
//
// Everything is deterministic: the campaign runs on a sim.Engine, fault
// arrivals draw from private seeded streams (internal/faults.Dist), and
// the trace, metrics snapshot, and per-job statistics replay bit-for-bit
// for a given Config.
package sched

import (
	"fmt"
	"math"
	"math/rand"

	"bbwfsim/internal/core"
	"bbwfsim/internal/faults"
	"bbwfsim/internal/metrics"
	"bbwfsim/internal/platform"
	"bbwfsim/internal/sim"
	"bbwfsim/internal/trace"
	"bbwfsim/internal/units"
	"bbwfsim/internal/workloads"
)

// Cluster is the shared platform a campaign contends for.
type Cluster struct {
	// Nodes is the compute-node count; jobs request whole nodes.
	Nodes int
	// BBCapacity is the total burst-buffer bytes reservable at once.
	BBCapacity units.Bytes
	// BBBandwidth is the aggregate bandwidth of the BB staging channel
	// (stage-in and stage-out of three-phase jobs), max–min shared.
	BBBandwidth units.Bandwidth
	// PFSBandwidth is the aggregate bandwidth of the direct PFS channel
	// DirectIO jobs stage through.
	PFSBandwidth units.Bandwidth
}

// Validate reports configuration errors.
func (c *Cluster) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("sched: cluster needs nodes, got %d", c.Nodes)
	}
	if c.BBCapacity < 0 {
		return fmt.Errorf("sched: negative BB capacity %v", c.BBCapacity)
	}
	if c.BBBandwidth <= 0 || c.PFSBandwidth <= 0 {
		return fmt.Errorf("sched: channel bandwidths must be positive, got BB %v PFS %v",
			c.BBBandwidth, c.PFSBandwidth)
	}
	return nil
}

// ClusterFromPlatform derives a campaign cluster from a single-workflow
// platform configuration (Table I presets): the BB staging channel gets
// the burst buffer's aggregate disk bandwidth (per node for on-node BBs),
// the direct channel the PFS's, and the reservable capacity the BB
// capacity (likewise summed across nodes when the BB is node-local; an
// unbounded preset maps to unbounded reservations).
func ClusterFromPlatform(cfg platform.Config) Cluster {
	cl := Cluster{
		Nodes:        cfg.Nodes,
		BBCapacity:   cfg.BB.Capacity,
		BBBandwidth:  cfg.BB.DiskBW,
		PFSBandwidth: cfg.PFS.DiskBW,
	}
	if cfg.BBKind == platform.BBOnNode {
		cl.BBCapacity *= units.Bytes(cfg.Nodes)
		cl.BBBandwidth *= units.Bandwidth(cfg.Nodes)
	}
	return cl
}

// FaultPlan configures the campaign's fault injection: whole-node
// failures with repair, reusing the faults package's renewal-process
// configuration and distributions. A node failure kills the job holding
// the node (jobs are rigid: losing one node loses the job), releasing its
// resources; the node repairs after MTTR.
type FaultPlan struct {
	// Seed drives the arrival and victim draws (private stream).
	Seed int64
	// Node is the node-failure process; nil disables fault injection.
	Node *faults.NodeProcess
}

// Outcome is a job's terminal state.
type Outcome string

const (
	// Completed jobs ran all three phases.
	Completed Outcome = "completed"
	// Failed jobs were killed by a node failure mid-run.
	Failed Outcome = "failed"
	// Rejected jobs demanded more nodes or BB bytes than the whole
	// cluster has; they never entered the queue.
	Rejected Outcome = "rejected"
)

// slowdownTau is the bounded-slowdown threshold (seconds): BSLD =
// max(1, response / max(span, tau)), the standard guard against tiny jobs
// dominating the metric.
const slowdownTau = 10.0

// JobStat is one job's accounting.
type JobStat struct {
	ID      string
	Nodes   int
	BB      units.Bytes
	Outcome Outcome
	// Submit, Start, and End are the job's lifecycle instants; Start and
	// End are zero for rejected jobs.
	Submit float64
	Start  float64
	End    float64
	// Wait is Start − Submit. Response is End − Submit and Slowdown the
	// bounded slowdown; both are zero unless the job completed.
	Wait     float64
	Response float64
	Slowdown float64
}

// Result is one campaign's outcome.
type Result struct {
	Policy string
	// Jobs holds per-job statistics in submission order.
	Jobs []JobStat
	// Terminal-outcome tallies; Submitted counts every job handed to Run
	// (Submitted = Completed + Failed + Rejected on return).
	Submitted, Completed, Failed, Rejected int
	// Makespan is the virtual time of the last event.
	Makespan float64
	// NodeFailures counts injected node outages.
	NodeFailures int
	// Events is the number of discrete events the kernel executed and
	// PeakPending the event queue's high-water mark — the campaign's
	// deterministic cost metrics, mirroring core.Result.
	Events      uint64
	PeakPending int
	// Trace is the campaign's event log.
	Trace *trace.Trace
	// Metrics is the campaign's observability snapshot.
	Metrics *metrics.Snapshot
}

// MeanWait, MeanResponse, and MeanSlowdown average over completed jobs
// (zero if none completed).
func (r *Result) MeanWait() float64 { return r.meanOver(func(j *JobStat) float64 { return j.Wait }) }

// MeanResponse averages submit→end response time over completed jobs.
func (r *Result) MeanResponse() float64 {
	return r.meanOver(func(j *JobStat) float64 { return j.Response })
}

// MeanSlowdown averages bounded slowdown over completed jobs.
func (r *Result) MeanSlowdown() float64 {
	return r.meanOver(func(j *JobStat) float64 { return j.Slowdown })
}

func (r *Result) meanOver(f func(*JobStat) float64) float64 {
	sum, n := 0.0, 0
	for i := range r.Jobs {
		if r.Jobs[i].Outcome == Completed {
			sum += f(&r.Jobs[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Config is one campaign specification.
type Config struct {
	Cluster Cluster
	// Policy names the scheduling policy (see Policies): fcfs, easy,
	// plan, maxbb, maxparallel, directio.
	Policy string
	// Jobs is the campaign, sorted by non-decreasing Submit time.
	Jobs []workloads.Job
	// Faults optionally injects node failures.
	Faults *FaultPlan
	// Trace optionally supplies a pre-built trace (streaming/counting
	// modes); nil records a retained trace named after the policy.
	Trace *trace.Trace
	// Metrics optionally receives the campaign's observations; nil
	// builds a private collector so Result.Metrics is always populated.
	Metrics *metrics.Collector
}

// jobState tracks one admitted job through the scheduler.
type jobState struct {
	workloads.Job
	idx int // submission index

	// resv is the BB reservation the job holds while active: BBDemand
	// under BB policies, zero under DirectIO.
	resv units.Bytes
	// estSpan is the span the scheduler plans with: walltime estimate
	// plus both stage phases at full channel bandwidth.
	estSpan float64

	started  bool
	start    float64
	nodes    []int // held node indices
	transfer *transfer
	phaseEnd sim.Handle
	inRun    bool
	terminal Outcome
	end      float64
}

// scheduler is the campaign engine.
type scheduler struct {
	eng *sim.Engine
	cl  Cluster
	pol policy
	tr  *trace.Trace
	col *metrics.Collector

	jobs  []*jobState
	queue []*jobState // waiting, submission order

	nodeDown  []bool // node index → failed
	nodeOwner []int  // node index → holding job idx, -1 free
	freeNodes int    // up ∧ unheld
	freeBB    units.Bytes

	heldNodes int // Σ nodes of active jobs (peak gauge)
	heldBB    units.Bytes

	bbChan, pfsChan *channel

	rng       *rand.Rand
	plan      *FaultPlan
	failsLeft int

	completed, failed, rejected, nodeFailures int
	pending                                   int // admitted, not yet terminal
	toSubmit                                  int // submit events not yet fired
}

// Run executes one campaign to completion and returns its accounting. It
// errors on invalid configurations and on scheduler deadlock (the event
// queue drained with jobs still waiting) — the hard tripwire behind the
// harness's no-starvation property.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	pol, err := newPolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	for i := range cfg.Jobs {
		if err := cfg.Jobs[i].Validate(); err != nil {
			return nil, err
		}
		if i > 0 && cfg.Jobs[i].Submit < cfg.Jobs[i-1].Submit {
			return nil, fmt.Errorf("sched: jobs out of submit order at index %d", i)
		}
	}
	if cfg.Faults != nil && cfg.Faults.Node != nil {
		if err := cfg.Faults.Node.Arrival.Validate("node failure"); err != nil {
			return nil, err
		}
		if cfg.Faults.Node.MTTR <= 0 {
			return nil, fmt.Errorf("sched: node MTTR must be positive, got %g", cfg.Faults.Node.MTTR)
		}
	}

	tr := cfg.Trace
	if tr == nil {
		tr = trace.New("campaign-"+cfg.Policy, "cluster")
	}
	col := cfg.Metrics
	if col == nil {
		col = metrics.New("cluster", "campaign-"+cfg.Policy)
	}
	s := &scheduler{
		eng:       sim.NewEngine(),
		cl:        cfg.Cluster,
		pol:       pol,
		tr:        tr,
		col:       col,
		nodeDown:  make([]bool, cfg.Cluster.Nodes),
		nodeOwner: make([]int, cfg.Cluster.Nodes),
		freeNodes: cfg.Cluster.Nodes,
		freeBB:    cfg.Cluster.BBCapacity,
	}
	for i := range s.nodeOwner {
		s.nodeOwner[i] = -1
	}
	s.bbChan = newChannel(s.eng, float64(cfg.Cluster.BBBandwidth))
	s.pfsChan = newChannel(s.eng, float64(cfg.Cluster.PFSBandwidth))

	s.toSubmit = len(cfg.Jobs)
	for i := range cfg.Jobs {
		j := &jobState{Job: cfg.Jobs[i], idx: i, resv: cfg.Jobs[i].BBDemand}
		if pol.directIO() {
			j.resv = 0
		}
		j.estSpan = s.estimateSpan(&cfg.Jobs[i])
		s.jobs = append(s.jobs, j)
		s.eng.At(j.Submit, func() { s.submit(j) })
	}
	if cfg.Faults != nil && cfg.Faults.Node != nil {
		s.plan = cfg.Faults
		s.rng = rand.New(rand.NewSource(cfg.Faults.Seed))
		s.failsLeft = cfg.Faults.Node.Budget
		if s.failsLeft == 0 {
			s.failsLeft = math.MaxInt
		}
		s.eng.After(s.plan.Node.Arrival.Sample(s.rng), s.nodeFailure)
	}

	s.eng.Run()
	if s.pending > 0 {
		return nil, fmt.Errorf("sched: %s deadlocked with %d jobs still queued or running at t=%g",
			cfg.Policy, s.pending, s.eng.Now())
	}

	res := &Result{
		Policy:       cfg.Policy,
		Submitted:    len(cfg.Jobs),
		Completed:    s.completed,
		Failed:       s.failed,
		Rejected:     s.rejected,
		Makespan:     tr.Makespan(),
		NodeFailures: s.nodeFailures,
		Events:       s.eng.EventsFired(),
		PeakPending:  s.eng.MaxPending(),
		Trace:        tr,
	}
	for _, j := range s.jobs {
		st := JobStat{
			ID: j.ID, Nodes: j.Nodes, BB: j.resv,
			Outcome: j.terminal, Submit: j.Submit,
		}
		if j.started {
			st.Start = j.start
			st.End = j.end
			st.Wait = j.start - j.Submit
		}
		if j.terminal == Completed {
			st.Response = j.end - j.Submit
			span := j.end - j.start
			st.Slowdown = st.Response / math.Max(span, slowdownTau)
			if st.Slowdown < 1 {
				st.Slowdown = 1
			}
		}
		res.Jobs = append(res.Jobs, st)
	}
	col.Add(metrics.SchedJobsTotal, metrics.Key{Op: metrics.OutcomeSubmitted}, float64(res.Submitted))
	col.Add(metrics.SimEventsTotal, metrics.Key{}, float64(res.Events))
	col.GaugeMax(metrics.SimQueuePeakEvents, metrics.Key{}, float64(res.PeakPending))
	col.GaugeMax(metrics.MakespanSeconds, metrics.Key{}, res.Makespan)
	res.Metrics = col.Snapshot()
	return res, nil
}

// Core folds the campaign into the single-run result shape (core.Result):
// makespan, trace, kernel cost, fault tallies, metrics snapshot, and the
// campaign's per-job accounting aggregated under Result.Sched. Callers
// that treat workflow runs and campaigns uniformly (CLIs, experiment
// plumbing) consume this view.
func (r *Result) Core() *core.Result {
	return &core.Result{
		Makespan:    r.Makespan,
		Trace:       r.Trace,
		Events:      r.Events,
		PeakPending: r.PeakPending,
		Faults:      core.FaultStats{NodeFailures: r.NodeFailures},
		Metrics:     r.Metrics,
		Sched: &core.SchedStats{
			Policy:       r.Policy,
			Submitted:    r.Submitted,
			Completed:    r.Completed,
			Failed:       r.Failed,
			Rejected:     r.Rejected,
			NodeFailures: r.NodeFailures,
			MeanWait:     r.MeanWait(),
			MeanResponse: r.MeanResponse(),
			MeanSlowdown: r.MeanSlowdown(),
		},
	}
}

// estimateSpan is the planner's estimate of a job's active span: the
// walltime estimate plus both stage phases at full (uncontended) channel
// bandwidth. Underestimates are survivable — profiles clamp stale
// releases to "now" — exactly as real backfill schedulers survive wrong
// walltimes.
func (s *scheduler) estimateSpan(j *workloads.Job) float64 {
	bw := float64(s.cl.BBBandwidth)
	if s.pol.directIO() {
		bw = float64(s.cl.PFSBandwidth)
	}
	return j.Walltime + float64(j.StageIn+j.StageOut)/bw
}

// submit admits or rejects an arriving job, then reschedules.
func (s *scheduler) submit(j *jobState) {
	now := s.eng.Now()
	s.toSubmit--
	s.tr.Record(now, trace.JobSubmit, j.ID,
		fmt.Sprintf("nodes=%d bb=%.0f est=%.6g", j.Nodes, float64(j.resv), j.estSpan))
	if j.Nodes > s.cl.Nodes || (s.cl.BBCapacity > 0 && j.resv > s.cl.BBCapacity) {
		j.terminal = Rejected
		s.rejected++
		s.tr.Record(now, trace.JobReject, j.ID,
			fmt.Sprintf("nodes=%d/%d bb=%.0f/%.0f", j.Nodes, s.cl.Nodes, float64(j.resv), float64(s.cl.BBCapacity)))
		s.col.Add(metrics.SchedJobsTotal, metrics.Key{Op: metrics.OutcomeRejected}, 1)
		return
	}
	s.pending++
	s.queue = append(s.queue, j)
	s.schedule()
}

// fits reports whether the job's demands fit the currently free resources.
func (s *scheduler) fits(j *jobState) bool {
	if j.Nodes > s.freeNodes {
		return false
	}
	if s.cl.BBCapacity <= 0 {
		return true
	}
	return j.resv <= s.freeBB
}

// schedule runs one policy pass: it asks the policy for the jobs to start
// now and starts them. Passes fire on every submit, completion, failure,
// and repair.
func (s *scheduler) schedule() {
	if len(s.queue) == 0 {
		return
	}
	picks := s.pol.pick(s)
	for _, j := range picks {
		s.startJob(j)
	}
	if len(picks) > 0 {
		s.dequeue()
	}
}

// dequeue removes started jobs from the wait queue, preserving order.
func (s *scheduler) dequeue() {
	keep := s.queue[:0]
	for _, j := range s.queue {
		if !j.started {
			keep = append(keep, j)
		}
	}
	s.queue = keep
}

// startJob allocates nodes (lowest free indices first) and the BB
// reservation, then launches stage-in.
func (s *scheduler) startJob(j *jobState) {
	now := s.eng.Now()
	j.started = true
	j.start = now
	j.nodes = make([]int, 0, j.Nodes)
	for idx := 0; idx < len(s.nodeOwner) && len(j.nodes) < j.Nodes; idx++ {
		if s.nodeOwner[idx] == -1 && !s.nodeDown[idx] {
			s.nodeOwner[idx] = j.idx
			j.nodes = append(j.nodes, idx)
		}
	}
	if len(j.nodes) < j.Nodes {
		panic(fmt.Sprintf("sched: policy started %s with %d free nodes for a %d-node job",
			j.ID, s.freeNodes, j.Nodes))
	}
	s.freeNodes -= j.Nodes
	s.heldNodes += j.Nodes
	if s.cl.BBCapacity > 0 {
		s.freeBB -= j.resv
		if s.freeBB < 0 {
			panic(fmt.Sprintf("sched: BB over-reserved starting %s: free %g", j.ID, float64(s.freeBB)))
		}
	}
	s.heldBB += j.resv
	s.col.GaugeMax(metrics.SchedNodesPeak, metrics.Key{}, float64(s.heldNodes))
	s.col.GaugeMax(metrics.SchedBBPeakBytes, metrics.Key{}, float64(s.heldBB))
	s.tr.Record(now, trace.JobStart, j.ID, fmt.Sprintf("nodes=%d bb=%.0f", j.Nodes, float64(j.resv)))
	s.stage(j, float64(j.StageIn), func() { s.beginRun(j) })
}

// stage moves bytes through the job's staging channel, then continues.
func (s *scheduler) stage(j *jobState, bytes float64, done func()) {
	ch := s.bbChan
	if s.pol.directIO() {
		ch = s.pfsChan
	}
	j.transfer = ch.add(bytes, func() {
		j.transfer = nil
		done()
	})
}

func (s *scheduler) beginRun(j *jobState) {
	now := s.eng.Now()
	j.inRun = true
	s.tr.Record(now, trace.JobRun, j.ID, "")
	j.phaseEnd = s.eng.After(j.Runtime, func() { s.beginStageOut(j) })
}

func (s *scheduler) beginStageOut(j *jobState) {
	now := s.eng.Now()
	j.inRun = false
	s.tr.Record(now, trace.JobStageOut, j.ID, "")
	s.stage(j, float64(j.StageOut), func() { s.finish(j) })
}

// finish completes a job: releases resources, commits accounting, and
// reschedules.
func (s *scheduler) finish(j *jobState) {
	now := s.eng.Now()
	j.terminal = Completed
	j.end = now
	s.completed++
	s.pending--
	s.release(j)
	s.tr.Record(now, trace.JobEnd, j.ID, "")
	wait := j.start - j.Submit
	response := now - j.Submit
	span := now - j.start
	sld := response / math.Max(span, slowdownTau)
	if sld < 1 {
		sld = 1
	}
	s.col.Add(metrics.SchedJobsTotal, metrics.Key{Op: metrics.OutcomeCompleted}, 1)
	s.col.Add(metrics.SchedWaitSecondsTotal, metrics.Key{}, wait)
	s.col.Add(metrics.SchedResponseSecondsTotal, metrics.Key{}, response)
	s.col.Add(metrics.SchedSlowdownTotal, metrics.Key{}, sld)
	s.col.Observe(metrics.SchedWaitSeconds, metrics.Key{}, wait)
	s.schedule()
}

// release returns a job's nodes and BB reservation to the free pool.
func (s *scheduler) release(j *jobState) {
	for _, idx := range j.nodes {
		s.nodeOwner[idx] = -1
		if !s.nodeDown[idx] {
			s.freeNodes++
		}
	}
	j.nodes = nil
	s.heldNodes -= j.Nodes
	if s.cl.BBCapacity > 0 {
		s.freeBB += j.resv
	}
	s.heldBB -= j.resv
}

// nodeFailure is one arrival of the node-failure renewal process: a
// uniformly chosen up node goes down, killing its holding job; the node
// repairs after MTTR. Arrivals finding ≤1 up node are no-ops (one node
// always survives, as in internal/faults).
func (s *scheduler) nodeFailure() {
	if s.failsLeft <= 0 {
		return
	}
	up := make([]int, 0, len(s.nodeDown))
	for idx, down := range s.nodeDown {
		if !down {
			up = append(up, idx)
		}
	}
	if len(up) > 1 {
		s.failsLeft--
		s.nodeFailures++
		victim := up[s.rng.Intn(len(up))]
		now := s.eng.Now()
		s.nodeDown[victim] = true
		if s.nodeOwner[victim] == -1 {
			s.freeNodes--
		}
		s.tr.Record(now, trace.NodeFail, "", fmt.Sprintf("node%03d", victim))
		if owner := s.nodeOwner[victim]; owner != -1 {
			s.failJob(s.jobs[owner], victim)
		}
		s.eng.After(s.plan.Node.MTTR, func() { s.nodeRepair(victim) })
	}
	if s.failsLeft > 0 && (s.toSubmit > 0 || s.pending > 0) {
		s.eng.After(s.plan.Node.Arrival.Sample(s.rng), s.nodeFailure)
	}
}

func (s *scheduler) nodeRepair(idx int) {
	s.nodeDown[idx] = false
	if s.nodeOwner[idx] == -1 {
		s.freeNodes++
	}
	s.tr.Record(s.eng.Now(), trace.NodeRepair, "", fmt.Sprintf("node%03d", idx))
	s.schedule()
}

// failJob kills a running job: cancels its in-flight phase, releases its
// resources, and records the terminal failure.
func (s *scheduler) failJob(j *jobState, node int) {
	now := s.eng.Now()
	if j.transfer != nil {
		j.transfer.cancel()
		j.transfer = nil
	}
	if j.inRun {
		s.eng.Cancel(j.phaseEnd)
		j.inRun = false
	}
	j.terminal = Failed
	j.end = now
	s.failed++
	s.pending--
	s.release(j)
	s.tr.Record(now, trace.JobFail, j.ID, fmt.Sprintf("node%03d", node))
	s.col.Add(metrics.SchedJobsTotal, metrics.Key{Op: metrics.OutcomeFailed}, 1)
	s.schedule()
}

// upNodes counts currently up nodes (free or held).
func (s *scheduler) upNodes() int {
	n := 0
	for _, down := range s.nodeDown {
		if !down {
			n++
		}
	}
	return n
}

// releaseProfile lists the estimated future resource releases of active
// jobs, soonest first, for backfill shadow-time and plan construction.
// Estimated ends in the past (underestimated walltimes) clamp to "just
// after now" so profiles stay causal.
func (s *scheduler) releaseProfile() []release {
	now := s.eng.Now()
	rel := make([]release, 0, 8)
	for _, j := range s.jobs {
		if !j.started || j.terminal != "" {
			continue
		}
		t := j.start + j.estSpan
		if t <= now {
			t = math.Nextafter(now, math.Inf(1))
		}
		rel = append(rel, release{t: t, nodes: j.Nodes, bb: j.resv})
	}
	sortReleases(rel)
	return rel
}

type release struct {
	t     float64
	nodes int
	bb    units.Bytes
}
