package sched

import (
	"fmt"

	"bbwfsim/internal/sim"
)

// transferEps is the residual-byte tolerance below which a transfer counts
// as finished: progressive fair-share updates accumulate a few ulps of
// float drift on the remaining-byte counters.
const transferEps = 1e-6

// channel is one max–min fair staging pipe: every active transfer gets an
// equal share of the aggregate bandwidth, recomputed whenever membership
// changes. It is the campaign-scale stand-in for the single-workflow
// simulator's flow.Network — one bottleneck link instead of a topology —
// and, like everything in a run, strictly single-threaded and
// deterministic: transfers progress in insertion order, and the next
// completion is always re-derived from the current membership.
type channel struct {
	eng *sim.Engine
	bw  float64 // aggregate bytes/second, > 0

	active []*transfer
	last   float64 // instant of the last progress update

	timer    sim.Handle
	timerSet bool
}

// transfer is one in-flight staging phase.
type transfer struct {
	ch        *channel
	remaining float64
	done      func()
	cancelled bool
}

func newChannel(eng *sim.Engine, bw float64) *channel {
	if bw <= 0 {
		panic(fmt.Sprintf("sched: channel bandwidth %g", bw))
	}
	return &channel{eng: eng, bw: bw}
}

// add starts a transfer of the given bytes and fires done when it
// completes. Zero-byte transfers complete on the next event boundary
// (same virtual instant) without entering the channel.
func (c *channel) add(bytes float64, done func()) *transfer {
	t := &transfer{ch: c, remaining: bytes, done: done}
	if bytes <= transferEps {
		c.eng.After(0, func() {
			if !t.cancelled {
				t.done()
			}
		})
		return t
	}
	c.progress()
	c.active = append(c.active, t)
	c.reschedule()
	return t
}

// cancel withdraws a transfer (its job was killed); no callback fires.
func (t *transfer) cancel() {
	t.cancelled = true
	c := t.ch
	for i, o := range c.active {
		if o == t {
			c.progress()
			c.active = append(c.active[:i], c.active[i+1:]...)
			c.reschedule()
			return
		}
	}
}

// progress advances every active transfer to the current instant at the
// fair-share rate in force since the last update.
func (c *channel) progress() {
	now := c.eng.Now()
	if len(c.active) > 0 {
		rate := c.bw / float64(len(c.active))
		dt := now - c.last
		if dt > 0 {
			for _, t := range c.active {
				t.remaining -= rate * dt
			}
		}
	}
	c.last = now
}

// reschedule cancels the pending completion timer and re-arms it for the
// earliest projected completion under the current fair share.
func (c *channel) reschedule() {
	if c.timerSet {
		c.eng.Cancel(c.timer)
		c.timerSet = false
	}
	if len(c.active) == 0 {
		return
	}
	min := c.active[0].remaining
	for _, t := range c.active[1:] {
		if t.remaining < min {
			min = t.remaining
		}
	}
	if min < 0 {
		min = 0
	}
	eta := min * float64(len(c.active)) / c.bw
	c.timer = c.eng.After(eta, c.complete)
	c.timerSet = true
}

// complete fires at the projected earliest completion: it settles
// progress, retires every transfer within tolerance of zero (at least
// one — the minimum — always retires, so the channel cannot stall on
// float drift), and re-arms for the rest. Callbacks run in insertion
// order after the membership update, so a callback that adds a new
// transfer (the next phase of the same job) sees consistent state.
func (c *channel) complete() {
	c.timerSet = false
	c.progress()
	var finished []*transfer
	keep := c.active[:0]
	minIdx := -1
	for i, t := range c.active {
		if minIdx == -1 || t.remaining < c.active[minIdx].remaining {
			minIdx = i
		}
	}
	for i, t := range c.active {
		if t.remaining <= transferEps || i == minIdx {
			finished = append(finished, t)
		} else {
			keep = append(keep, t)
		}
	}
	c.active = keep
	c.reschedule()
	for _, t := range finished {
		if !t.cancelled {
			t.done()
		}
	}
}
