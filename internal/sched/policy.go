package sched

import (
	"fmt"
	"sort"

	"bbwfsim/internal/units"
)

// Policy names, in catalog order: the classic queue disciplines (FCFS,
// FCFS+EASY backfill, plan-based conservative reservations after Kopański
// & Rządca's shared-BB plans) and the BBSimulator greedy family
// (MaxBurstBuffer, MaxParallel, DirectIO).
const (
	PolicyFCFS        = "fcfs"
	PolicyEASY        = "easy"
	PolicyPlan        = "plan"
	PolicyMaxBB       = "maxbb"
	PolicyMaxParallel = "maxparallel"
	PolicyDirectIO    = "directio"
)

// Policies lists every policy name in catalog order.
func Policies() []string {
	return []string{PolicyFCFS, PolicyEASY, PolicyPlan, PolicyMaxBB, PolicyMaxParallel, PolicyDirectIO}
}

// policy picks the queued jobs to start at a scheduling pass. pick must
// only return jobs that fit the free resources at the instant it is
// called, in start order; the scheduler dequeues them afterwards.
type policy interface {
	name() string
	directIO() bool
	pick(s *scheduler) []*jobState
}

func newPolicy(name string) (policy, error) {
	switch name {
	case PolicyFCFS:
		return fcfsPolicy{}, nil
	case PolicyEASY:
		return easyPolicy{}, nil
	case PolicyPlan:
		return planPolicy{}, nil
	case PolicyMaxBB:
		return greedyPolicy{id: PolicyMaxBB}, nil
	case PolicyMaxParallel:
		return greedyPolicy{id: PolicyMaxParallel}, nil
	case PolicyDirectIO:
		return directIOPolicy{}, nil
	case "":
		return nil, fmt.Errorf("sched: empty policy (want one of %v)", Policies())
	default:
		return nil, fmt.Errorf("sched: unknown policy %q (want one of %v)", name, Policies())
	}
}

// --- FCFS ----------------------------------------------------------------

// fcfsPolicy starts jobs in strict submission order and blocks on the
// first that does not fit: simple, fair, and head-of-line blocked.
type fcfsPolicy struct{}

func (fcfsPolicy) name() string   { return PolicyFCFS }
func (fcfsPolicy) directIO() bool { return false }

func (fcfsPolicy) pick(s *scheduler) []*jobState {
	var picks []*jobState
	freeNodes, freeBB := s.freeNodes, s.freeBB
	for _, j := range s.queue {
		if !fitsFree(s, j, freeNodes, freeBB) {
			break
		}
		picks = append(picks, j)
		freeNodes -= j.Nodes
		freeBB -= j.resv
	}
	return picks
}

// fitsFree is the policy-side fit check against hypothetical free
// resources (the scheduler's own fits() checks live state only).
func fitsFree(s *scheduler, j *jobState, freeNodes int, freeBB units.Bytes) bool {
	if j.Nodes > freeNodes {
		return false
	}
	if s.cl.BBCapacity <= 0 {
		return true
	}
	return j.resv <= freeBB
}

// --- FCFS + EASY backfill ------------------------------------------------

// easyPolicy is FCFS with EASY (aggressive) backfilling: the head of the
// queue gets a reservation at the earliest instant both its nodes and its
// BB bytes free up (per the estimated releases of running jobs), and
// later jobs may start out of order only if they either finish (by
// estimate) before that shadow time or fit into the resources the head
// leaves spare at it. With correct estimates the head is never delayed —
// the classic starvation-freedom argument.
type easyPolicy struct{}

func (easyPolicy) name() string   { return PolicyEASY }
func (easyPolicy) directIO() bool { return false }

func (easyPolicy) pick(s *scheduler) []*jobState {
	var picks []*jobState
	freeNodes, freeBB := s.freeNodes, s.freeBB
	i := 0
	// Start the prefix that fits, FCFS.
	for ; i < len(s.queue); i++ {
		j := s.queue[i]
		if !fitsFree(s, j, freeNodes, freeBB) {
			break
		}
		picks = append(picks, j)
		freeNodes -= j.Nodes
		freeBB -= j.resv
	}
	if i >= len(s.queue) {
		return picks
	}
	head := s.queue[i]
	// Shadow time: earliest estimated instant the head fits, walking the
	// projected releases of everything running plus the picks above.
	shadow, spareNodes, spareBB := shadowFor(s, head, picks, freeNodes, freeBB)
	now := s.eng.Now()
	for _, j := range s.queue[i+1:] {
		if !fitsFree(s, j, freeNodes, freeBB) {
			continue
		}
		endsBeforeShadow := now+j.estSpan <= shadow
		fitsSpare := j.Nodes <= spareNodes && (s.cl.BBCapacity <= 0 || j.resv <= spareBB)
		if !endsBeforeShadow && !fitsSpare {
			continue
		}
		picks = append(picks, j)
		freeNodes -= j.Nodes
		freeBB -= j.resv
		if !endsBeforeShadow {
			spareNodes -= j.Nodes
			spareBB -= j.resv
		}
	}
	return picks
}

// shadowFor computes the head job's reservation: the earliest estimated
// time its demands fit, plus the spare resources left at that instant
// after the head takes its share. Projected releases clamp to the future,
// so underestimated walltimes delay the shadow rather than breaking it.
func shadowFor(s *scheduler, head *jobState, picks []*jobState, freeNodes int, freeBB units.Bytes) (float64, int, units.Bytes) {
	now := s.eng.Now()
	rel := s.releaseProfile()
	// The jobs picked this pass are about to start: append their
	// estimated releases too.
	for _, j := range picks {
		rel = append(rel, release{t: now + j.estSpan, nodes: j.Nodes, bb: j.resv})
	}
	sortReleases(rel)
	nodes, bb := freeNodes, freeBB
	for _, r := range rel {
		nodes += r.nodes
		bb += r.bb
		if nodes >= head.Nodes && (s.cl.BBCapacity <= 0 || bb >= head.resv) {
			return r.t, nodes - head.Nodes, bb - head.resv
		}
	}
	// No finite release satisfies the head (bounded-capacity corner:
	// everything running must drain). Reserve "after everything".
	last := now
	if n := len(rel); n > 0 {
		last = rel[n-1].t
	}
	return last, nodes - head.Nodes, bb - head.resv
}

func sortReleases(rel []release) {
	sort.Slice(rel, func(a, b int) bool {
		if rel[a].t < rel[b].t {
			return true
		}
		if rel[a].t > rel[b].t {
			return false
		}
		return rel[a].nodes > rel[b].nodes
	})
}

// --- plan-based conservative reservations --------------------------------

// planPolicy extends backfilling to a full plan, after Kopański & Rządca's
// plan-based burst-buffer scheduling: every queued job — not just the
// head — gets a reservation of nodes AND BB bytes at its earliest feasible
// slot in a time-indexed availability profile, in submission order. A job
// starts now exactly when its planned slot is now. Conservative
// backfilling with a two-resource profile: no job's plan is ever pushed
// back by a later arrival.
type planPolicy struct{}

func (planPolicy) name() string   { return PolicyPlan }
func (planPolicy) directIO() bool { return false }

func (planPolicy) pick(s *scheduler) []*jobState {
	now := s.eng.Now()
	prof := newProfile(now, s.freeNodes, s.freeBB, s.releaseProfile())
	var picks []*jobState
	for _, j := range s.queue {
		t := prof.earliest(s, j)
		if t <= now && fitsFree(s, j, prof.nodesAt(now), prof.bbAt(now)) {
			picks = append(picks, j)
		}
		prof.reserve(s, j, t)
	}
	return picks
}

// profile is a breakpoint list of projected free resources over time.
type profile struct {
	times []float64
	nodes []int
	bb    []units.Bytes
}

// newProfile builds the availability timeline from the current free state
// and the projected releases of running jobs.
func newProfile(now float64, freeNodes int, freeBB units.Bytes, rel []release) *profile {
	p := &profile{times: []float64{now}, nodes: []int{freeNodes}, bb: []units.Bytes{freeBB}}
	for _, r := range rel { // already sorted by time
		n := len(p.times)
		if r.t > p.times[n-1] {
			p.times = append(p.times, r.t)
			p.nodes = append(p.nodes, p.nodes[n-1]+r.nodes)
			p.bb = append(p.bb, p.bb[n-1]+r.bb)
		} else {
			p.nodes[n-1] += r.nodes
			p.bb[n-1] += r.bb
		}
	}
	return p
}

func (p *profile) nodesAt(t float64) int {
	n := p.nodes[0]
	for i, bt := range p.times {
		if bt > t {
			break
		}
		n = p.nodes[i]
	}
	return n
}

func (p *profile) bbAt(t float64) units.Bytes {
	b := p.bb[0]
	for i, bt := range p.times {
		if bt > t {
			break
		}
		b = p.bb[i]
	}
	return b
}

// earliest finds the first breakpoint from which the job's demands stay
// satisfied for its whole estimated span.
func (p *profile) earliest(s *scheduler, j *jobState) float64 {
	for i := range p.times {
		if p.feasible(s, j, i) {
			return p.times[i]
		}
	}
	return p.times[len(p.times)-1]
}

// feasible reports whether demands hold over [t, t+estSpan) for the
// breakpoint at index from. Breakpoints are sorted, so only indices ≥ from
// can intersect the window.
func (p *profile) feasible(s *scheduler, j *jobState, from int) bool {
	end := p.times[from] + j.estSpan
	for i := from; i < len(p.times); i++ {
		if p.times[i] >= end {
			break
		}
		if p.nodes[i] < j.Nodes {
			return false
		}
		if s.cl.BBCapacity > 0 && p.bb[i] < j.resv {
			return false
		}
	}
	return true
}

// reserve subtracts the job's demands from the profile over its planned
// window, inserting breakpoints as needed.
func (p *profile) reserve(_ *scheduler, j *jobState, t float64) {
	end := t + j.estSpan
	p.insertBreak(t)
	p.insertBreak(end)
	for i := range p.times {
		if p.times[i] >= end {
			break
		}
		if p.times[i] >= t {
			p.nodes[i] -= j.Nodes
			p.bb[i] -= j.resv
		}
	}
}

// insertBreak splits the profile at time t, copying the value in force.
func (p *profile) insertBreak(t float64) {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] <= t && t <= p.times[i] {
		return // exact breakpoint already present
	}
	if i == 0 {
		// Before the profile's origin: clamp to the origin.
		return
	}
	p.times = append(p.times, 0)
	p.nodes = append(p.nodes, 0)
	p.bb = append(p.bb, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.nodes[i+1:], p.nodes[i:])
	copy(p.bb[i+1:], p.bb[i:])
	p.times[i] = t
	p.nodes[i] = p.nodes[i-1]
	p.bb[i] = p.bb[i-1]
}

// --- BBSimulator greedy family -------------------------------------------

// greedyPolicy is the MaxBurstBuffer / MaxParallel pair: at every pass it
// reorders the whole queue — by descending BB demand (maximize buffer
// utilization) or ascending node count (maximize running jobs) — and
// greedily starts everything that fits. Neither is starvation-free in
// steady state; on finite campaigns the queue drains when arrivals stop.
type greedyPolicy struct{ id string }

func (g greedyPolicy) name() string { return g.id }
func (greedyPolicy) directIO() bool { return false }

func (g greedyPolicy) pick(s *scheduler) []*jobState {
	order := make([]*jobState, len(s.queue))
	copy(order, s.queue)
	if g.id == PolicyMaxBB {
		sort.SliceStable(order, func(a, b int) bool {
			if order[a].resv > order[b].resv {
				return true
			}
			if order[a].resv < order[b].resv {
				return false
			}
			return order[a].idx < order[b].idx
		})
	} else {
		sort.SliceStable(order, func(a, b int) bool {
			if order[a].Nodes != order[b].Nodes {
				return order[a].Nodes < order[b].Nodes
			}
			if order[a].resv < order[b].resv {
				return true
			}
			if order[a].resv > order[b].resv {
				return false
			}
			return order[a].idx < order[b].idx
		})
	}
	var picks []*jobState
	freeNodes, freeBB := s.freeNodes, s.freeBB
	for _, j := range order {
		if !fitsFree(s, j, freeNodes, freeBB) {
			continue
		}
		picks = append(picks, j)
		freeNodes -= j.Nodes
		freeBB -= j.resv
	}
	return picks
}

// --- DirectIO ------------------------------------------------------------

// directIOPolicy bypasses the burst buffer entirely: jobs reserve no BB
// bytes and stage through the (slower) PFS channel while holding their
// nodes — the BBSimulator baseline that shows what the buffer buys.
// Queueing is plain FCFS on nodes.
type directIOPolicy struct{}

func (directIOPolicy) name() string   { return PolicyDirectIO }
func (directIOPolicy) directIO() bool { return true }

func (directIOPolicy) pick(s *scheduler) []*jobState {
	var picks []*jobState
	freeNodes := s.freeNodes
	for _, j := range s.queue {
		if j.Nodes > freeNodes {
			break
		}
		picks = append(picks, j)
		freeNodes -= j.Nodes
	}
	return picks
}
