package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func orderedMapRule() Rule {
	return Rule{
		Name: "ordered-map-iteration",
		Doc: "flag `range` over a map in simulation packages unless the body provably " +
			"aggregates order-insensitively or the loop carries //bbvet:ordered",
		AppliesTo: isSimPackage,
		Run: func(p *Pass) {
			p.Inspect(func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if orderInsensitive(p, rng) {
					return true
				}
				if p.Ordered(rng.Pos()) {
					return true
				}
				p.Reportf(rng.Pos(), "ordered-map-iteration",
					"map iteration order is nondeterministic; iterate sorted keys, reduce the body "+
						"to an order-insensitive aggregation, or annotate //bbvet:ordered -- <why>")
				return true
			})
		},
	}
}

// orderInsensitive reports whether every statement in the loop body is an
// aggregation whose result cannot depend on iteration order:
//
//   - x++ / x-- on a plain variable (the same update every iteration);
//   - x += e (or |=, &=, ^=) where x is an integer — exact commutative
//     arithmetic. For floating-point x the sum is only order-independent
//     when e is loop-invariant, because float addition is not associative;
//   - the max/min idiom `if v > x { x = v }` (strict comparison, single
//     assignment, no else), which is order-insensitive even for floats;
//   - a map transform `out[k] = e` indexed by the (unmodified) range key:
//     every iteration writes a distinct key, so the final map is the same
//     in any order.
//
// Anything else — appends, calls, nested loops, writes through the range
// variables — is treated as order-sensitive.
func orderInsensitive(p *Pass, rng *ast.RangeStmt) bool {
	loopVars := rangeVars(p, rng)
	keyVar := bindingVar(p, rng.Key)
	keyMutated := false
	for _, stmt := range rng.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if bindingVar(p, s.X) == keyVar {
				keyMutated = true
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if bindingVar(p, lhs) == keyVar {
					keyMutated = true
				}
			}
		}
	}
	for _, stmt := range rng.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if _, ok := s.X.(*ast.Ident); !ok {
				return false
			}
		case *ast.AssignStmt:
			if !commutativeAssign(p, s, loopVars) &&
				!(keyVar != nil && !keyMutated && keyedMapWrite(p, s, keyVar)) {
				return false
			}
		case *ast.IfStmt:
			if !maxMinUpdate(s) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// bindingVar resolves an expression to the variable it names, or nil.
func bindingVar(p *Pass, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := p.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// keyedMapWrite matches `out[k] = e` where k is the range key: each
// iteration writes a distinct map key, so the result is order-independent.
func keyedMapWrite(p *Pass, s *ast.AssignStmt, keyVar *types.Var) bool {
	if s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	idx, ok := s.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	if t := p.Info.TypeOf(idx.X); t == nil {
		return false
	} else if _, isMap := t.Underlying().(*types.Map); !isMap {
		return false
	}
	return bindingVar(p, idx.Index) == keyVar
}

// rangeVars collects the variables bound by the range clause.
func rangeVars(p *Pass, rng *ast.RangeStmt) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		id, ok := e.(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := p.Info.Defs[id].(*types.Var); ok {
			vars[v] = true
		} else if v, ok := p.Info.Uses[id].(*types.Var); ok {
			vars[v] = true
		}
	}
	return vars
}

func commutativeAssign(p *Pass, s *ast.AssignStmt, loopVars map[*types.Var]bool) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	switch s.Tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	t := p.Info.TypeOf(id)
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	if basic.Info()&types.IsInteger != 0 {
		return true
	}
	if basic.Info()&types.IsFloat != 0 && s.Tok == token.ADD_ASSIGN {
		// Float sums depend on order unless each term is loop-invariant.
		return !usesAny(p, s.Rhs[0], loopVars)
	}
	return false
}

// maxMinUpdate matches `if v > x { x = v }` (and the <, reversed-operand,
// and min variants): a strict comparison guarding a single assignment of
// the compared value to the compared variable.
func maxMinUpdate(s *ast.IfStmt) bool {
	if s.Else != nil || s.Init != nil || len(s.Body.List) != 1 {
		return false
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.GTR) {
		return false
	}
	assign, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || assign.Tok != token.ASSIGN || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	target, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	// One side of the comparison must be the assignment target, the other
	// the assigned value.
	matches := func(a, b ast.Expr) bool {
		id, ok := a.(*ast.Ident)
		return ok && id.Name == target.Name && exprString(b) == exprString(assign.Rhs[0])
	}
	return matches(cond.X, cond.Y) || matches(cond.Y, cond.X)
}

func exprString(e ast.Expr) string { return types.ExprString(e) }

func usesAny(p *Pass, e ast.Expr, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := p.Info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}
