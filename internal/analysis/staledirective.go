package analysis

// staleDirectiveRule closes the audited-justification loop: every
// //bbvet:allow and //bbvet:ordered in the tree must suppress at least
// one live finding of the full rule set, or it is reported itself. The
// suppression ledger therefore cannot rot — when a refactor removes the
// code a directive excused, the next bbvet run demands the directive be
// deleted too, and DESIGN.md's inventory of justified exemptions stays
// exactly the set of directives in the tree.
//
// The rule runs after every other rule (package and module passes both
// mark the directives they consume), and it only runs when the full rule
// set was selected: under a -rules filter most directives legitimately
// suppress nothing, because the rule they answer to was not consulted.
// Its findings are not themselves suppressible — a stale suppression must
// be deleted, not suppressed harder.
func staleDirectiveRule() Rule {
	return Rule{
		Name: "stale-directive",
		Doc: "report //bbvet:allow and //bbvet:ordered directives that no longer suppress " +
			"any finding; a stale suppression must be deleted so the justification ledger " +
			"cannot rot (inactive under a -rules filter)",
		RunModule: func(mp *ModulePass) {
			if !mp.complete {
				return
			}
			for _, f := range mp.directives.unused() {
				f.Rule = "stale-directive"
				*mp.findings = append(*mp.findings, f)
			}
		},
	}
}
