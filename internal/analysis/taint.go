package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// determinismTaintRule is the module-wide interprocedural pass: a
// simulated result must be a pure function of (workflow, platform,
// policy, seed), so nothing nondeterministic may be *reachable* from a
// simulation entry point — not just absent from the entry point's own
// package, which is all the syntactic per-package rules can see.
//
// Sources are direct reads of nondeterministic state inside a module
// function: the wall clock (time.Now & friends), the process-global
// math/rand stream, host state (os.Getenv, os.Hostname, runtime.NumCPU,
// runtime.GOMAXPROCS, …), and map iteration feeding an ordered collection
// in packages the ordered-map-iteration rule does not already police.
//
// Sinks are the simulation entry points and result emitters: exec.Run,
// the sim.Engine stepping methods, core.Simulator.Run, testbed runs, the
// experiments.Run* family, and metric/trace emission. The rule walks the
// call graph from each sink and reports every source it can reach, with
// the full call chain in the message, so a wall-clock read three calls
// deep inside a helper package is as visible as one in the kernel itself.
//
// Suppression: //bbvet:allow determinism-taint on the source line; map
// iteration sources also honor //bbvet:ordered, matching the per-package
// rule's vocabulary.

// hostStateOSFuncs are the os package functions that read per-process or
// per-host state a simulation result must not depend on.
var hostStateOSFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"Hostname": true, "Getpid": true, "Getppid": true,
	"Getwd": true,
}

// hostStateRuntimeFuncs read machine shape; results depending on them
// change between hosts even with identical inputs and seeds.
var hostStateRuntimeFuncs = map[string]bool{
	"NumCPU": true, "GOMAXPROCS": true,
}

type taintSourceKind uint8

const (
	taintWalltime taintSourceKind = iota
	taintGlobalRand
	taintHostState
	taintMapIter
)

// A taintSource is one nondeterministic read inside a function body.
type taintSource struct {
	pos  token.Pos
	kind taintSourceKind
	what string // "reads time.Now", "reads host state via os.Getenv", …
}

// A sinkSpec names one simulation entry point: receiver type name (empty
// for package-level functions) plus function name; a trailing * matches a
// prefix (the experiments.Run* family).
type sinkSpec struct{ recv, name string }

// taintSinks lists the entry points per package base name. Base-name
// matching lets testdata fixture packages stand in for the real ones,
// exactly as the package-scoped rules do.
var taintSinks = map[string][]sinkSpec{
	"exec":    {{"", "Run"}},
	"core":    {{"Simulator", "Run"}, {"Simulator", "SweepFractions"}},
	"testbed": {{"Runner", "Run"}, {"Runner", "RunOnce"}},
	"sim":     {{"Engine", "Run"}, {"Engine", "RunUntil"}, {"Engine", "Step"}},
	"experiments": {
		{"", "Run*"},
	},
	"metrics": {
		{"Collector", "Add"}, {"Collector", "GaugeMax"},
		{"Collector", "Observe"}, {"Collector", "Snapshot"},
	},
	"trace": {
		{"Trace", "Record"}, {"Trace", "Save"}, {"Trace", "MarshalJSON"},
		// Streaming sinks run inside the event loop; anything nondeterministic
		// reachable from Emit would perturb simulated output timing.
		{"JSONLSink", "Emit"}, {"CSVSink", "Emit"},
	},
	// The scale generator's output feeds simulations directly; its bytes are
	// asserted bit-reproducible for a given spec.
	"workloads": {{"", "Scale"}},
	// The service evaluator is the cache-identity contract: everything a
	// daemon response's bytes depend on flows through Execute, so nothing
	// reachable from it may touch the wall clock, global rand, or host
	// state. The HTTP layer above it is free to read time (deadlines,
	// Retry-After); the taint BFS never reaches it because taint flows
	// from sinks into their callees.
	"service": {{"", "Execute"}, {"", "ExecuteCampaign"}},
	// The batch scheduler's campaigns are asserted bit-identical across
	// worker counts; its whole event-driven core is a sink.
	"sched": {{"", "Run"}},
}

// isTaintSink reports whether a node is a simulation entry point.
func isTaintSink(node *CGNode) bool {
	specs := taintSinks[path.Base(node.Pkg.Path)]
	if len(specs) == 0 {
		return false
	}
	name := node.Fn.Name()
	recv := receiverTypeName(node.Fn)
	for _, s := range specs {
		if s.recv != recv {
			continue
		}
		if want, prefix := strings.CutSuffix(s.name, "*"); prefix {
			if strings.HasPrefix(name, want) && ast.IsExported(name) {
				return true
			}
		} else if s.name == name {
			return true
		}
	}
	return false
}

// receiverTypeName returns the base type name of fn's receiver, or "".
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

func determinismTaintRule() Rule {
	return Rule{
		Name: "determinism-taint",
		Doc: "interprocedural: forbid any call path from a simulation entry point (exec.Run, " +
			"engine stepping, experiments.Run*, metric/trace emission) to a nondeterminism " +
			"source (wall clock, global rand, host state, unordered map iteration); findings " +
			"carry the full call chain",
		RunModule: func(mp *ModulePass) {
			g := mp.Graph
			sources := make(map[*types.Func][]taintSource)
			for _, node := range g.Nodes() {
				if srcs := collectTaintSources(node); len(srcs) > 0 {
					sources[node.Fn] = srcs
				}
			}
			// One finding per source position: the first sink (in graph
			// order) that reaches a source claims it, so the output is a
			// deterministic function of the loaded source alone.
			reported := make(map[token.Position]bool)
			for _, sink := range g.Nodes() {
				if !isTaintSink(sink) {
					continue
				}
				taintBFS(mp, g, sink, sources, reported)
			}
		},
	}
}

// taintBFS walks the call graph breadth-first from one sink and reports
// every reachable source with its call chain. Breadth-first order means
// the reported chain is a shortest path; edge order within a node is
// source order, so ties break deterministically.
func taintBFS(mp *ModulePass, g *CallGraph, sink *CGNode,
	sources map[*types.Func][]taintSource, reported map[token.Position]bool) {
	parent := make(map[*types.Func]*types.Func)
	visited := map[*types.Func]bool{sink.Fn: true}
	queue := []*CGNode{sink}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, src := range sources[cur.Fn] {
			pos := cur.Pkg.Fset.Position(src.pos)
			if reported[pos] {
				continue
			}
			reported[pos] = true
			if src.kind == taintMapIter && mp.directives.ordered(pos) {
				continue
			}
			chain := taintChain(parent, sink.Fn, cur.Fn)
			if len(chain) == 1 {
				mp.Reportf(pos, "determinism-taint",
					"%s %s; a simulated result must be a pure function of (workflow, platform, "+
						"policy, seed)", FuncDisplayName(sink.Fn), src.what)
			} else {
				mp.Reportf(pos, "determinism-taint",
					"%s, which %s; a nondeterministic value can reach simulation output through "+
						"this call chain", strings.Join(chain, " calls "), src.what)
			}
		}
		for _, e := range cur.Out {
			next := g.Node(e.To)
			if next == nil || visited[e.To] {
				continue
			}
			visited[e.To] = true
			parent[e.To] = cur.Fn
			queue = append(queue, next)
		}
	}
}

// taintChain renders the sink→…→carrier path recorded by the BFS parent
// pointers, in display form.
func taintChain(parent map[*types.Func]*types.Func, sink, last *types.Func) []string {
	var rev []*types.Func
	for fn := last; ; fn = parent[fn] {
		rev = append(rev, fn)
		if fn == sink {
			break
		}
	}
	chain := make([]string, len(rev))
	for i, fn := range rev {
		chain[len(rev)-1-i] = FuncDisplayName(fn)
	}
	return chain
}

// collectTaintSources walks one function body for direct nondeterministic
// reads.
func collectTaintSources(node *CGNode) []taintSource {
	info := node.Pkg.Info
	var srcs []taintSource
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			name := n.Sel.Name
			switch pkgName.Imported().Path() {
			case "time":
				if walltimeFuncs[name] {
					srcs = append(srcs, taintSource{n.Pos(), taintWalltime, "reads time." + name})
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := info.Uses[n.Sel].(*types.Func); isFunc && !randConstructors[name] {
					srcs = append(srcs, taintSource{n.Pos(), taintGlobalRand,
						"draws from the process-global rand." + name})
				}
			case "os":
				if hostStateOSFuncs[name] {
					srcs = append(srcs, taintSource{n.Pos(), taintHostState,
						"reads host state via os." + name})
				}
			case "runtime":
				if hostStateRuntimeFuncs[name] {
					srcs = append(srcs, taintSource{n.Pos(), taintHostState,
						"reads host state via runtime." + name})
				}
			}
		case *ast.RangeStmt:
			if src, ok := mapIterSource(node, n); ok {
				srcs = append(srcs, src)
			}
		}
		return true
	})
	return srcs
}

// mapIterSource reports a map iteration that feeds an ordered collection:
// the loop appends to a slice declared outside the loop, and the slice is
// never sorted within the same function. Packages already policed by the
// ordered-map-iteration rule are excluded — there the per-package rule
// (with its stronger order-insensitivity prover) owns the hazard.
func mapIterSource(node *CGNode, rng *ast.RangeStmt) (taintSource, bool) {
	if isSimPackage(node.Pkg.Path) {
		return taintSource{}, false
	}
	info := node.Pkg.Info
	t := info.TypeOf(rng.X)
	if t == nil {
		return taintSource{}, false
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return taintSource{}, false
	}
	var appended *types.Var
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if appended != nil {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" ||
			info.Uses[id] != types.Universe.Lookup("append") {
			return true
		}
		lhs, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		v := bindingVarInfo(info, lhs)
		// Only slices that outlive the loop iteration order the elements.
		if v != nil && (v.Pos() < rng.Pos() || v.Pos() > rng.End()) {
			appended = v
		}
		return true
	})
	if appended == nil {
		return taintSource{}, false
	}
	if sortedInFunc(info, node.Decl.Body, appended) {
		return taintSource{}, false
	}
	return taintSource{rng.Pos(), taintMapIter,
		"iterates a map in nondeterministic order into " + appended.Name()}, true
}

// sortedInFunc reports whether body contains a sort of the given slice
// variable — the collect-then-sort idiom that makes map iteration order
// immaterial.
func sortedInFunc(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkgName.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		// Any sort/slices call whose first argument mentions the slice.
		ast.Inspect(call.Args[0], func(m ast.Node) bool {
			if mid, ok := m.(*ast.Ident); ok && bindingVarInfo(info, mid) == v {
				found = true
			}
			return !found
		})
		return true
	})
	return found
}

// bindingVarInfo is bindingVar without a Pass, for module rules.
func bindingVarInfo(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}
