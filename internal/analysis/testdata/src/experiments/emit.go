// Fixture for the unchecked-error and no-walltime rules in experiment
// emitters. optimizerRegression mirrors the wall-clock leak once shipped
// in RunScalability (internal/experiments/optimizer.go) — the first
// regression bbvet was built to catch.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

func optimizerRegression() float64 {
	start := time.Now()                // want `no-walltime`
	return time.Since(start).Seconds() // want `no-walltime`
}

func emit(w io.Writer, enc *json.Encoder, rows []string) error {
	fmt.Fprintln(w, "header")    // want `unchecked-error`
	enc.Encode(rows)             // want `unchecked-error`
	w.Write([]byte("truncated")) // want `unchecked-error`
	data, err := json.Marshal(rows)
	if err != nil { // checked: not flagged
		return err
	}
	var sb strings.Builder
	sb.WriteString(string(data)) // Builder writes cannot fail: not flagged
	if _, err := fmt.Fprintln(w, sb.String()); err != nil {
		return err
	}
	io.Copy(io.Discard, strings.NewReader("rest")) // want `unchecked-error`
	//bbvet:allow unchecked-error -- fixture: a justified suppression is honored
	fmt.Fprintln(w, "trailer")
	return nil
}
