// Package metricsuser exercises the metrics-virtual-time rule: it is NOT a
// simulation package (no-walltime does not apply here), yet feeding a
// wall-clock-derived value into the metrics layer must still be flagged,
// because it breaks snapshot byte-identity for every downstream consumer.
package metricsuser

import (
	"time"

	"bbwfsim/internal/metrics"
)

func emit(col *metrics.Collector, start time.Time, virtualSeconds float64) {
	col.Add("sim_events_total", metrics.Key{}, float64(time.Now().Unix()))        // want `\[metrics-virtual-time\] metrics emission consumes time\.Now`
	col.Observe("storage_op_seconds", metrics.Key{}, time.Since(start).Seconds()) // want `\[metrics-virtual-time\] metrics emission consumes time\.Since`
	col.GaugeMax("makespan_seconds", metrics.Key{}, 12.5)                         // ok: constant value
	col.Add("task_phase_seconds_total", metrics.Key{}, virtualSeconds)            // ok: virtual time
	_ = metrics.New("cori", "swarp")                                              // ok: labels, not values
	sampleOutsideMetrics(time.Now())                                              // ok: not a metrics call site
}

// sampleOutsideMetrics shows the rule is scoped to metrics call sites: wall
// time elsewhere in a non-simulation package is this package's own business.
func sampleOutsideMetrics(t time.Time) time.Time { return t }
