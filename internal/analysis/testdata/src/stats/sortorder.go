// Fixture for the unstable-sort rule: sort.Slice is unstable, so a bare
// floating-point comparator leaves the order of equal (or ulp-drifted) keys
// to the pivot choices of pdqsort — row order stops being a pure function
// of the data. Stable sorts and explicit tie-breaks are the sanctioned
// forms.
package stats

import "sort"

type row struct {
	id   int
	cost float64
}

func badOrder(rows []row) {
	sort.Slice(rows, func(i, j int) bool { // want `unstable-sort`
		return rows[i].cost < rows[j].cost
	})
}

func stableOrder(rows []row) {
	sort.SliceStable(rows, func(i, j int) bool {
		return rows[i].cost < rows[j].cost
	})
}

func tieBroken(rows []row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].cost < rows[j].cost {
			return true
		}
		if rows[j].cost < rows[i].cost {
			return false
		}
		return rows[i].id < rows[j].id
	})
}

// Integer unique-key comparators cannot tie; not flagged.
func uniqueKey(rows []row) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
}
