// Fixture: the task executor is in the kernel-purity scope — it drives the
// event loop synchronously, so the same single-threaded constraints apply
// as in sim and flow. Campaign-level concurrency belongs in internal/runner.
package exec

import "sync" // want `no-goroutines-in-kernel`

type scheduler struct {
	mu sync.Mutex
}

func bad(results chan int) { // want `no-goroutines-in-kernel`
	go func() { results <- 1 }() // want `no-goroutines-in-kernel` `no-goroutines-in-kernel`
}

// plain synchronous dispatch is untouched.
func fine(ready []func()) int {
	started := 0
	for _, fn := range ready {
		fn()
		started++
	}
	return started
}
