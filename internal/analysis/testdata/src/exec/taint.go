// Fixture for the interprocedural determinism-taint rule: exec.Run is a
// simulation entry point, and a nondeterministic read three calls deep must
// be reported with the full call chain even though Run's own body is clean.
package exec

import (
	"os"
	"time"
)

// Run stands in for the task-executor entry point (a taint sink).
func Run() float64 {
	return schedule()
}

func schedule() float64 {
	return stamp() + float64(tuning())
}

func stamp() float64 {
	t := time.Now() // want `no-walltime` `exec.Run calls exec.schedule calls exec.stamp, which reads time.Now`
	return float64(t.Unix())
}

func tuning() int {
	if os.Getenv("BB_FAST") != "" { // want `exec.Run calls exec.schedule calls exec.tuning, which reads host state via os.Getenv`
		return 1
	}
	return 0
}

// orphan is not reachable from Run, so the taint rule stays silent; the
// per-package no-walltime rule still sees the direct read.
func orphan() time.Time {
	return time.Now() // want `no-walltime`
}
