// Fixture for the global-mutable-state rule: package-level variables in a
// simulation package may be written only from init; any later write couples
// runs to each other and races under the parallel campaign runner.
package exec

var dispatched int
var registry = map[string]int{}

func init() {
	dispatched = 0 // initialization is the sanctioned write window
}

func bump() {
	dispatched++          // want `global-mutable-state`
	registry["swarp"] = 1 // want `global-mutable-state`
}

// Shadowing and reads are untouched.
func pure() int {
	dispatched := 0
	dispatched++
	return dispatched + len(registry)
}
