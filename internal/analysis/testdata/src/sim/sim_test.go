// Fixture: test files of deterministic packages are analyzed too — a
// replay test that reads the clock or the global rand stream hides exactly
// the flake the suite exists to prevent.
package sim

import (
	"math/rand"
	"testing"
	"time"
)

func TestReplay(t *testing.T) {
	if time.Now().IsZero() { // want `no-walltime`
		t.Skip("fixture")
	}
	_ = rand.Intn(3)                 // want `seeded-rand-only`
	r := rand.New(rand.NewSource(1)) // explicit seed: sanctioned
	_ = r.Intn(3)
}
