// Fixture for the ordered-map-iteration rule: map iteration in simulation
// packages must be provably order-insensitive or carry //bbvet:ordered.
package sim

import "sort"

func aggregate(weights map[string]int, loads map[string]float64) (int, int, float64, float64, float64) {
	count := 0
	for range loads { // counting: the same update every iteration
		count++
	}
	intTotal := 0
	for _, w := range weights { // integer sum: exact and commutative
		intTotal += w
	}
	var floatTotal float64
	for _, v := range loads { // want `ordered-map-iteration`
		floatTotal += v
	}
	var constSum float64
	for range loads { // loop-invariant float addend: order cannot matter
		constSum += 0.5
	}
	var max float64
	for _, v := range loads { // max is order-insensitive even for floats
		if v > max {
			max = v
		}
	}
	return count, intTotal, floatTotal, constSum, max
}

func transform(loads map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range loads { // keyed write: each key written exactly once
		out[k] = v * 2
	}
	return out
}

func shifted(weights map[int]int) map[int]int {
	out := map[int]int{}
	for k, v := range weights { // want `ordered-map-iteration`
		k += v // the mutated key can collide across iterations
		out[k] = v
	}
	return out
}

func keys(loads map[string]float64) []string {
	var ks []string
	for k := range loads { // want `ordered-map-iteration`
		ks = append(ks, k)
	}
	sort.Strings(ks)
	//bbvet:ordered -- fixture: collected keys are sorted immediately below
	for k := range loads {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
