// Fixture for the no-walltime rule: the kernel must never read the wall
// clock. The time types themselves stay legal — only the clock is banned.
package sim

import "time"

func clock() (time.Time, float64) {
	start := time.Now()           // want `no-walltime`
	elapsed := time.Since(start)  // want `no-walltime`
	time.Sleep(time.Millisecond)  // want `no-walltime`
	deadline := time.After(dur()) // want `no-walltime`
	_ = deadline
	var virtual float64 // virtual time is the kernel's only clock
	return start, elapsed.Seconds() + virtual
}

// dur only touches time types and constants: not flagged.
func dur() time.Duration { return 5 * time.Millisecond }

//bbvet:allow no-walltime -- fixture: a justified suppression is honored
func allowed() time.Time { return time.Now() }
