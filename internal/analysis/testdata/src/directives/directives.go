// Fixture for the directive machinery itself: suppressions must name a
// known rule, carry a justification, and actually suppress something.
package directives

import "math/rand"

//bbvet:allow no-such-rule -- nonsense // want `unknown rule`
var a = 1

//bbvet:allow float-compare // want `needs a justification`
var b = 2.0

//bbvet:ordered // want `needs a justification`
var c = 3

//bbvet:frobnicate // want `unknown bbvet directive`
var d = 4

//bbvet:allow no-walltime -- nothing here reads the clock // want `\[stale-directive\] unused`
var e = 5

func seeded() int {
	_ = []int{a, c, d, e}
	_ = b
	return rand.Intn(5) // want `seeded-rand-only`
}
