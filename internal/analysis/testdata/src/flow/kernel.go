// Fixture for the no-goroutines-in-kernel rule: the discrete-event kernel
// and fluid model are single-threaded by design; any concurrency construct
// makes same-time event order scheduler-dependent.
package flow

import "sync" // want `no-goroutines-in-kernel`

type shared struct {
	mu sync.Mutex
}

func bad(c chan int) { // want `no-goroutines-in-kernel`
	go func() {}() // want `no-goroutines-in-kernel`
	c <- 1         // want `no-goroutines-in-kernel`
	v := <-c       // want `no-goroutines-in-kernel`
	_ = v
	for w := range c { // want `no-goroutines-in-kernel`
		_ = w
	}
	select { // want `no-goroutines-in-kernel`
	default:
	}
}

// pure event-loop code is untouched.
func fine(events []func()) int {
	fired := 0
	for _, fn := range events {
		fn()
		fired++
	}
	return fired
}
