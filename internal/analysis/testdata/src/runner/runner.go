// Fixture for the runner-isolation rule: the campaign runner is the one
// package licensed to spawn goroutines, so it must stay generic — importing
// a simulation package would let an engine cross a worker boundary.
package runner

import (
	_ "sort"

	_ "bbwfsim/internal/flow" // want `runner-isolation`
	_ "bbwfsim/internal/sim"  // want `runner-isolation`
)

// goroutines and sync are the runner's whole point; the kernel-purity rule
// must not fire here.
func fine(fns []func()) {
	done := make(chan struct{})
	for _, fn := range fns {
		go func() { fn(); done <- struct{}{} }()
	}
	for range fns {
		<-done
	}
}
