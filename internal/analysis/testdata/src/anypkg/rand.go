// Fixture for the seeded-rand-only rule: module-wide, randomness must come
// from an explicit seeded source, never the process-global one.
package anypkg

import "math/rand"

func draws(seed int64) (int, float64) {
	n := rand.Intn(10)                    // want `seeded-rand-only`
	rand.Shuffle(n, func(i, j int) {})    // want `seeded-rand-only`
	f := rand.Float64()                   // want `seeded-rand-only`
	rng := rand.New(rand.NewSource(seed)) // explicit seeded source: fine
	var typed *rand.Rand                  // type references: fine
	typed = rng
	return n + typed.Intn(10), f
}
