// Fixture for the float-compare rule: exact floating-point equality is
// flagged everywhere outside tests unless justified.
package anypkg

func compare(a, b float64, xs []float32) (int, bool) {
	hits := 0
	if a == b { // want `float-compare`
		hits++
	}
	if a != 0 { // want `float-compare`
		hits++
	}
	var f float32
	if xs[0] == f { // want `float-compare`
		hits++
	}
	const c1, c2 = 1.5, 2.5
	if c1 == c2 { // constant-folded at compile time: not flagged
		hits++
	}
	//bbvet:allow float-compare -- fixture: a justified exact comparison is honored
	exact := a == b
	return hits, a < b || exact // ordering comparisons are fine
}
