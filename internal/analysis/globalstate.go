package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// globalMutableStateRule guards the "a run owns its state privately"
// contract from a direction the kernel-purity and runner-isolation rules
// cannot see: a package-level variable in a simulation package that is
// written outside init. Such a variable couples runs to each other — the
// second run of a campaign observes what the first one left behind, so
// results stop being a pure function of the run's inputs, and under the
// parallel campaign runner the write is a data race on top. Read-only
// package-level tables (bucket boundaries, preset orders) are fine: only
// writes outside init are flagged.
//
// The rule is module-wide but keys on where the variable is *declared*:
// an experiment or cmd helper mutating an exported simulation-package
// variable is exactly as dangerous as the simulation package doing it
// itself.
func globalMutableStateRule() Rule {
	return Rule{
		Name: "global-mutable-state",
		Doc: "forbid writes outside init to package-level variables declared in simulation " +
			"packages; shared mutable state couples runs to each other and races under the " +
			"campaign runner — thread state through the engine or run configuration instead",
		Run: func(p *Pass) {
			for _, file := range p.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if fd.Recv == nil && fd.Name.Name == "init" {
						continue // initialization is the sanctioned write window
					}
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.AssignStmt:
							for _, lhs := range n.Lhs {
								checkGlobalWrite(p, lhs)
							}
						case *ast.IncDecStmt:
							checkGlobalWrite(p, n.X)
						}
						return true
					})
				}
			}
		},
	}
}

// checkGlobalWrite reports lhs if its root identifier is a package-level
// variable declared in a simulation package.
func checkGlobalWrite(p *Pass, lhs ast.Expr) {
	id := rootIdent(lhs)
	if id == nil {
		return
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return
	}
	if v.Parent() != v.Pkg().Scope() {
		return // local, field via value, or parameter — not package state
	}
	if !simPackages[path.Base(v.Pkg().Path())] {
		return
	}
	p.Reportf(lhs.Pos(), "global-mutable-state",
		"write to package-level variable %s of simulation package %s outside init; "+
			"shared mutable state couples runs and races under the campaign runner — "+
			"own it in the run's engine or configuration", v.Name(), path.Base(v.Pkg().Path()))
}

// rootIdent unwraps selector/index/star/paren chains to the base
// identifier of an assignable expression, or nil (e.g. for writes through
// a call result, which do not name package state directly).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
