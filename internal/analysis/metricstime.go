package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// metricsVirtualTimeRule guards the observability layer's core contract:
// metric values are functions of virtual time alone. The layer itself
// cannot enforce that — a caller could pass time.Since(start).Seconds()
// into a perfectly deterministic collector — so this rule inspects every
// *call site* of the metrics package, anywhere in the module, and flags
// arguments whose expression tree reads the wall clock. Unlike no-walltime
// it is not scoped to the deterministic packages: a wall-clock-fed metric
// is wrong wherever it is emitted from, because it poisons snapshot
// byte-identity for every consumer downstream (CI smokes, campaign merges,
// the invariant harness).
func metricsVirtualTimeRule() Rule {
	return Rule{
		Name: "metrics-virtual-time",
		Doc: "forbid wall-clock-derived values at metrics emission sites anywhere in the module; " +
			"snapshot values must derive from virtual time alone or byte-identity across runs breaks",
		Run: func(p *Pass) {
			p.Inspect(func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !metricsCallee(p, call) {
					return true
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						sel, ok := m.(*ast.SelectorExpr)
						if !ok {
							return true
						}
						id, ok := sel.X.(*ast.Ident)
						if !ok || p.PkgUse(id) != "time" || !walltimeFuncs[sel.Sel.Name] {
							return true
						}
						p.Reportf(sel.Pos(), "metrics-virtual-time",
							"metrics emission consumes time.%s; metric values must derive from "+
								"virtual time (sim.Engine.Now) so snapshots stay bit-identical across runs",
							sel.Sel.Name)
						return true
					})
				}
				return true
			})
		},
	}
}

// metricsCallee reports whether the call targets the metrics package — a
// method on one of its types (Collector emission) or a package-level
// function (New, Merge).
func metricsCallee(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	var pkg *types.Package
	if s := p.Info.Selections[sel]; s != nil {
		pkg = s.Obj().Pkg()
	} else if obj := p.Info.Uses[sel.Sel]; obj != nil {
		pkg = obj.Pkg()
	}
	return pkg != nil && path.Base(pkg.Path()) == "metrics"
}
