package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func floatCompareRule() Rule {
	return Rule{
		Name: "float-compare",
		Doc: "flag == and != between floating-point operands outside test files; exact float " +
			"equality is usually a rounding-sensitive bug, and intended exact comparisons must say so",
		// Module-wide (the loader already excludes _test.go files).
		Run: func(p *Pass) {
			p.Inspect(func(n ast.Node) bool {
				cmp, ok := n.(*ast.BinaryExpr)
				if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
					return true
				}
				if !isFloat(p.Info.TypeOf(cmp.X)) && !isFloat(p.Info.TypeOf(cmp.Y)) {
					return true
				}
				// A comparison folded at compile time cannot vary at run time.
				if p.Info.Types[cmp.X].Value != nil && p.Info.Types[cmp.Y].Value != nil {
					return true
				}
				p.Reportf(cmp.Pos(), "float-compare",
					"%s between floating-point operands; compare with a tolerance, or annotate "+
						"//bbvet:allow float-compare -- <why exact equality is intended>", cmp.Op)
				return true
			})
		},
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
