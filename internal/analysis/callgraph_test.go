package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strings"
	"testing"
)

// loadSrc type-checks one in-memory file as a module package, the way
// LoadModule would.
func loadSrc(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: path, Dir: ".", Fset: fset, Files: []*ast.File{f}}
	imp, err := newModuleImporter(fset, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := check(fset, pkg, imp); err != nil {
		t.Fatal(err)
	}
	return pkg
}

// TestCallGraphEdges pins the graph construction cases the taint pass
// depends on: direct calls, mutual recursion (cycles), method values,
// closure attribution, function references, and interface dispatch to
// every implementing type.
func TestCallGraphEdges(t *testing.T) {
	pkg := loadSrc(t, "bbwfsim/internal/cg", `
package cg

type stepper interface{ Step() int }

type alpha struct{}

func (alpha) Step() int { return 1 }

type beta struct{}

func (*beta) Step() int { return 2 }

// drive calls through the interface: dispatch edges to both impls.
func drive(s stepper) int { return s.Step() }

// ping and pong form a cycle; each body also self-recurses via the other.
func ping(n int) int {
	if n == 0 {
		return 0
	}
	return pong(n - 1)
}

func pong(n int) int {
	if n == 0 {
		return 0
	}
	return ping(n - 1)
}

// methodValue lets a method escape as a value: a ref edge.
func methodValue() func() int {
	var a alpha
	f := a.Step
	return f
}

// closureCaller calls ping only inside a closure; the edge belongs to the
// declaring function. The g() invocation itself resolves to no module
// function (it is a variable), so no self-edge appears.
func closureCaller() int {
	g := func() int { return ping(3) }
	return g()
}

// passRef passes a function as an argument: a call edge to apply and a ref
// edge to pong.
func passRef() { apply(pong) }

func apply(f func(int) int) { _ = f(2) }
`)
	g := BuildCallGraph([]*Package{pkg})
	want := []string{
		"bbwfsim/internal/cg.closureCaller -> bbwfsim/internal/cg.ping (call)",
		"bbwfsim/internal/cg.drive -> bbwfsim/internal/cg.(*beta).Step (dispatch)",
		"bbwfsim/internal/cg.drive -> bbwfsim/internal/cg.(alpha).Step (dispatch)",
		"bbwfsim/internal/cg.methodValue -> bbwfsim/internal/cg.(alpha).Step (ref)",
		"bbwfsim/internal/cg.passRef -> bbwfsim/internal/cg.apply (call)",
		"bbwfsim/internal/cg.passRef -> bbwfsim/internal/cg.pong (ref)",
		"bbwfsim/internal/cg.ping -> bbwfsim/internal/cg.pong (call)",
		"bbwfsim/internal/cg.pong -> bbwfsim/internal/cg.ping (call)",
	}
	if got := g.EdgeList(); !reflect.DeepEqual(got, want) {
		t.Errorf("EdgeList() mismatch:\n got: %s\nwant: %s",
			strings.Join(got, "\n      "), strings.Join(want, "\n      "))
	}
}

// TestTaintThroughCycle pins the interprocedural pass end to end at the
// unit level: a wall-clock read two calls deep, behind a call cycle, is
// reported at the source with the shortest sink→source chain, and the BFS
// terminates despite the cycle.
func TestTaintThroughCycle(t *testing.T) {
	pkg := loadSrc(t, "bbwfsim/internal/exec", `
package exec

import "time"

func Run() int { return ping(4) }

func ping(n int) int {
	if n == 0 {
		return stamp()
	}
	return pong(n - 1)
}

func pong(n int) int { return ping(n) }

func stamp() int { return int(time.Now().Unix()) }
`)
	findings := Run([]*Package{pkg}, Rules())
	var taint []string
	for _, f := range findings {
		if f.Rule == "determinism-taint" {
			taint = append(taint, f.Message)
		}
	}
	if len(taint) != 1 {
		t.Fatalf("got %d determinism-taint findings, want 1: %v", len(taint), taint)
	}
	const wantChain = "exec.Run calls exec.ping calls exec.stamp, which reads time.Now"
	if !strings.HasPrefix(taint[0], wantChain) {
		t.Errorf("taint chain = %q, want prefix %q", taint[0], wantChain)
	}
}
