package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the module. For a
// test package (Test == true), Files holds only the _test.go files — the
// rule passes must not re-report the non-test files it was checked
// alongside — while Info and Pkg cover the combined compilation.
type Package struct {
	Path  string // import path (test packages share their base package's path)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Test marks the _test.go view of a package; only rules that opt in
	// via Rule.Tests run over it, and it never joins the call graph.
	Test bool

	// Parsed test files awaiting the second type-check phase: same-package
	// (package foo) and external (package foo_test).
	testFiles    []*ast.File
	extTestFiles []*ast.File
}

// LoadModule parses and type-checks every package under the module rooted
// at or above dir, using only the standard library: the module layout is
// discovered by walking the tree (the module has no external dependencies,
// so import paths map 1:1 onto directories), and standard-library imports
// are type-checked from source via go/importer.
//
// Test files are analyzed only for the deterministic packages (the ones
// whose tests assert bit-identical replay, so wall time and unseeded
// randomness are as unwelcome there as in the simulation itself); they
// surface as additional Test packages after the non-test packages. Test
// files elsewhere — CLI glue, the analyzer's own tests — legitimately use
// wall time, ad-hoc randomness, and goroutines, and stay excluded.
func LoadModule(dir string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byPath := make(map[string]*Package)
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		pkg, err := parseDir(fset, p, root, modPath)
		if err != nil {
			return err
		}
		if pkg != nil {
			byPath[pkg.Path] = pkg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkgs, err := checkAll(fset, byPath, modPath)
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir as if it had
// the given import path. Used by the fixture tests, whose testdata
// packages stand in for real module packages. Returns the package plus,
// when the fixture carries same-package _test.go files and the import
// path is one whose tests are analyzed, the Test view of it.
func LoadDir(dir, importPath string) ([]*Package, error) {
	fset := token.NewFileSet()
	pkg, err := parseDir(fset, dir, filepath.Dir(dir), "")
	if err != nil {
		return nil, err
	}
	if pkg == nil || len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg.Path = importPath
	imp, err := newModuleImporter(fset, nil)
	if err != nil {
		return nil, err
	}
	if err := check(fset, pkg, imp); err != nil {
		return nil, err
	}
	pkgs := []*Package{pkg}
	tests, err := checkTestPackages(fset, pkg, imp)
	if err != nil {
		return nil, err
	}
	return append(pkgs, tests...), nil
}

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for p := abs; ; p = filepath.Dir(p) {
		data, err := os.ReadFile(filepath.Join(p, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return p, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", p)
		}
		if filepath.Dir(p) == p {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
	}
}

// parseDir parses the Go files directly in dir, returning nil if there are
// none. Non-test files become the package's Files; _test.go files are
// collected — for deterministic packages only — into testFiles (package foo)
// and extTestFiles (package foo_test) for the second type-check phase. A
// directory holding only test files (the integration suite) still yields a
// package, with empty Files.
func parseDir(fset *token.FileSet, dir, root, modPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel, err := filepath.Rel(root, dir); err == nil && rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	withTests := isDeterministicPackage(importPath)
	var files, testFiles, extTestFiles []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !withTests {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		switch {
		case !isTest:
			files = append(files, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			extTestFiles = append(extTestFiles, f)
		default:
			testFiles = append(testFiles, f)
		}
	}
	if len(files) == 0 && len(testFiles) == 0 && len(extTestFiles) == 0 {
		return nil, nil
	}
	return &Package{
		Path: importPath, Dir: dir, Fset: fset, Files: files,
		testFiles: testFiles, extTestFiles: extTestFiles,
	}, nil
}

// checkAll type-checks the module's packages in dependency order and
// returns them sorted by import path.
func checkAll(fset *token.FileSet, byPath map[string]*Package, modPath string) ([]*Package, error) {
	checked := make(map[string]*types.Package)
	imp, err := newModuleImporter(fset, checked)
	if err != nil {
		return nil, err
	}
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		if _, done := checked[path]; done {
			return nil
		}
		for _, s := range stack {
			if s == path {
				return fmt.Errorf("analysis: import cycle: %s", strings.Join(append(stack, path), " -> "))
			}
		}
		pkg := byPath[path]
		if pkg == nil {
			return fmt.Errorf("analysis: import %q not found in module %s", path, modPath)
		}
		for _, dep := range moduleImports(pkg, modPath) {
			if err := visit(dep, append(stack, path)); err != nil {
				return err
			}
		}
		if len(pkg.Files) == 0 {
			// Test-only package (the integration suite); nothing imports it,
			// so it has no base compilation to record. Checked in phase 2.
			return nil
		}
		if err := check(fset, pkg, imp); err != nil {
			return err
		}
		checked[path] = pkg.Pkg
		return nil
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		if pkg := byPath[p]; len(pkg.Files) > 0 {
			pkgs = append(pkgs, pkg)
		}
	}
	// Phase 2: with every base package in the importer's checked set, the
	// test compilations of the deterministic packages can resolve their
	// module-internal imports. Test packages surface after the non-test
	// packages, in path order, so the load stays deterministic.
	for _, p := range paths {
		tests, err := checkTestPackages(fset, byPath[p], imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, tests...)
	}
	return pkgs, nil
}

// checkTestPackages type-checks pkg's collected _test.go files, if any,
// and returns the resulting Test packages: the in-package test files are
// checked alongside the base files (they extend the same package) but the
// returned view carries only the test files, so rules do not re-report the
// base compilation; an external foo_test package is checked on its own,
// keeping the base import path so path-scoped rules still apply.
func checkTestPackages(fset *token.FileSet, pkg *Package, imp *moduleImporter) ([]*Package, error) {
	var out []*Package
	conf := types.Config{Importer: imp}
	if len(pkg.testFiles) > 0 {
		files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.testFiles))
		files = append(files, pkg.Files...)
		files = append(files, pkg.testFiles...)
		info := newInfo()
		tpkg, err := conf.Check(pkg.Path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s tests: %w", pkg.Path, err)
		}
		out = append(out, &Package{
			Path: pkg.Path, Dir: pkg.Dir, Fset: fset,
			Files: pkg.testFiles, Pkg: tpkg, Info: info, Test: true,
		})
	}
	if len(pkg.extTestFiles) > 0 {
		info := newInfo()
		tpkg, err := conf.Check(pkg.Path+"_test", fset, pkg.extTestFiles, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s external tests: %w", pkg.Path, err)
		}
		out = append(out, &Package{
			Path: pkg.Path, Dir: pkg.Dir, Fset: fset,
			Files: pkg.extTestFiles, Pkg: tpkg, Info: info, Test: true,
		})
	}
	return out, nil
}

// moduleImports lists pkg's imports that live inside the module.
func moduleImports(pkg *Package, modPath string) []string {
	seen := make(map[string]bool)
	var deps []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == modPath || strings.HasPrefix(path, modPath+"/")) && !seen[path] {
				seen[path] = true
				deps = append(deps, path)
			}
		}
	}
	sort.Strings(deps)
	return deps
}

// moduleImporter resolves module-internal imports from the already-checked
// set and everything else (the standard library) from source.
type moduleImporter struct {
	checked map[string]*types.Package
	std     types.ImporterFrom
}

// newModuleImporter builds an importer sharing fset, so positions in
// findings stay consistent, and sharing the standard-library importer
// across packages, so each stdlib package is type-checked once per load.
func newModuleImporter(fset *token.FileSet, checked map[string]*types.Package) (*moduleImporter, error) {
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not support ImporterFrom")
	}
	return &moduleImporter{checked: checked, std: std}, nil
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	if m.checked == nil && strings.HasPrefix(path, "bbwfsim/") {
		// Fixture mode (LoadDir): module-internal imports cannot resolve
		// from testdata. Import-ban rules only inspect the path, so most
		// stand-ins can be empty — but the metrics-virtual-time rule resolves
		// callees through the type-checker, so the metrics stand-in carries
		// the real package's emission surface.
		if path == "bbwfsim/internal/metrics" {
			return synthMetricsPackage(path), nil
		}
		pkg := types.NewPackage(path, filepath.Base(path))
		pkg.MarkComplete()
		return pkg, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// synthMetricsPackage builds a typed stand-in for the real metrics package,
// mirroring its emission surface (Collector.Add/GaugeMax/Observe, Key, New)
// so fixtures for the metrics-virtual-time rule type-check and their call
// sites resolve to a package whose base name is "metrics".
func synthMetricsPackage(path string) *types.Package {
	pkg := types.NewPackage(path, "metrics")
	scope := pkg.Scope()
	keyName := types.NewTypeName(token.NoPos, pkg, "Key", nil)
	key := types.NewNamed(keyName, types.NewStruct(nil, nil), nil)
	scope.Insert(keyName)
	colName := types.NewTypeName(token.NoPos, pkg, "Collector", nil)
	col := types.NewNamed(colName, types.NewStruct(nil, nil), nil)
	scope.Insert(colName)
	recv := types.NewPointer(col)
	str := types.Typ[types.String]
	f64 := types.Typ[types.Float64]
	for _, name := range []string{"Add", "GaugeMax", "Observe"} {
		sig := types.NewSignatureType(
			types.NewVar(token.NoPos, pkg, "c", recv), nil, nil,
			types.NewTuple(
				types.NewVar(token.NoPos, pkg, "family", str),
				types.NewVar(token.NoPos, pkg, "k", key),
				types.NewVar(token.NoPos, pkg, "v", f64),
			),
			nil, false)
		col.AddMethod(types.NewFunc(token.NoPos, pkg, name, sig))
	}
	newSig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(
			types.NewVar(token.NoPos, pkg, "platform", str),
			types.NewVar(token.NoPos, pkg, "workflow", str),
		),
		types.NewTuple(types.NewVar(token.NoPos, pkg, "", recv)),
		false)
	scope.Insert(types.NewFunc(token.NoPos, pkg, "New", newSig))
	pkg.MarkComplete()
	return pkg
}

// newInfo allocates the types.Info maps every bbvet pass relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// check type-checks one parsed package, populating pkg.Pkg and pkg.Info.
func check(fset *token.FileSet, pkg *Package, imp *moduleImporter) error {
	conf := types.Config{Importer: imp}
	info := newInfo()
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Pkg = tpkg
	pkg.Info = info
	return nil
}
