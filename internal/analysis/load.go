package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// LoadModule parses and type-checks every non-test package under the
// module rooted at or above dir, using only the standard library: the
// module layout is discovered by walking the tree (the module has no
// external dependencies, so import paths map 1:1 onto directories), and
// standard-library imports are type-checked from source via go/importer.
// Test files are excluded: the rule set governs simulation code, and
// tests legitimately use wall time, ad-hoc randomness, and goroutines.
func LoadModule(dir string) ([]*Package, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byPath := make(map[string]*Package)
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		pkg, err := parseDir(fset, p, root, modPath)
		if err != nil {
			return err
		}
		if pkg != nil {
			byPath[pkg.Path] = pkg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkgs, err := checkAll(fset, byPath, modPath)
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir as if it had
// the given import path. Used by the fixture tests, whose testdata
// packages stand in for real module packages.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	pkg, err := parseDir(fset, dir, filepath.Dir(dir), "")
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkg.Path = importPath
	imp, err := newModuleImporter(fset, nil)
	if err != nil {
		return nil, err
	}
	if err := check(fset, pkg, imp); err != nil {
		return nil, err
	}
	return pkg, nil
}

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for p := abs; ; p = filepath.Dir(p) {
		data, err := os.ReadFile(filepath.Join(p, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return p, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", p)
		}
		if filepath.Dir(p) == p {
			return "", "", fmt.Errorf("analysis: no go.mod at or above %s", abs)
		}
	}
}

// parseDir parses the non-test Go files directly in dir, returning nil if
// there are none.
func parseDir(fset *token.FileSet, dir, root, modPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	importPath := modPath
	if rel, err := filepath.Rel(root, dir); err == nil && rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	return &Package{Path: importPath, Dir: dir, Fset: fset, Files: files}, nil
}

// checkAll type-checks the module's packages in dependency order and
// returns them sorted by import path.
func checkAll(fset *token.FileSet, byPath map[string]*Package, modPath string) ([]*Package, error) {
	checked := make(map[string]*types.Package)
	imp, err := newModuleImporter(fset, checked)
	if err != nil {
		return nil, err
	}
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		if _, done := checked[path]; done {
			return nil
		}
		for _, s := range stack {
			if s == path {
				return fmt.Errorf("analysis: import cycle: %s", strings.Join(append(stack, path), " -> "))
			}
		}
		pkg := byPath[path]
		if pkg == nil {
			return fmt.Errorf("analysis: import %q not found in module %s", path, modPath)
		}
		for _, dep := range moduleImports(pkg, modPath) {
			if err := visit(dep, append(stack, path)); err != nil {
				return err
			}
		}
		if err := check(fset, pkg, imp); err != nil {
			return err
		}
		checked[path] = pkg.Pkg
		return nil
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkgs = append(pkgs, byPath[p])
	}
	return pkgs, nil
}

// moduleImports lists pkg's imports that live inside the module.
func moduleImports(pkg *Package, modPath string) []string {
	seen := make(map[string]bool)
	var deps []string
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == modPath || strings.HasPrefix(path, modPath+"/")) && !seen[path] {
				seen[path] = true
				deps = append(deps, path)
			}
		}
	}
	sort.Strings(deps)
	return deps
}

// moduleImporter resolves module-internal imports from the already-checked
// set and everything else (the standard library) from source.
type moduleImporter struct {
	checked map[string]*types.Package
	std     types.ImporterFrom
}

// newModuleImporter builds an importer sharing fset, so positions in
// findings stay consistent, and sharing the standard-library importer
// across packages, so each stdlib package is type-checked once per load.
func newModuleImporter(fset *token.FileSet, checked map[string]*types.Package) (*moduleImporter, error) {
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not support ImporterFrom")
	}
	return &moduleImporter{checked: checked, std: std}, nil
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	if m.checked == nil && strings.HasPrefix(path, "bbwfsim/") {
		// Fixture mode (LoadDir): module-internal imports cannot resolve
		// from testdata. Import-ban rules only inspect the path, so most
		// stand-ins can be empty — but the metrics-virtual-time rule resolves
		// callees through the type-checker, so the metrics stand-in carries
		// the real package's emission surface.
		if path == "bbwfsim/internal/metrics" {
			return synthMetricsPackage(path), nil
		}
		pkg := types.NewPackage(path, filepath.Base(path))
		pkg.MarkComplete()
		return pkg, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// synthMetricsPackage builds a typed stand-in for the real metrics package,
// mirroring its emission surface (Collector.Add/GaugeMax/Observe, Key, New)
// so fixtures for the metrics-virtual-time rule type-check and their call
// sites resolve to a package whose base name is "metrics".
func synthMetricsPackage(path string) *types.Package {
	pkg := types.NewPackage(path, "metrics")
	scope := pkg.Scope()
	keyName := types.NewTypeName(token.NoPos, pkg, "Key", nil)
	key := types.NewNamed(keyName, types.NewStruct(nil, nil), nil)
	scope.Insert(keyName)
	colName := types.NewTypeName(token.NoPos, pkg, "Collector", nil)
	col := types.NewNamed(colName, types.NewStruct(nil, nil), nil)
	scope.Insert(colName)
	recv := types.NewPointer(col)
	str := types.Typ[types.String]
	f64 := types.Typ[types.Float64]
	for _, name := range []string{"Add", "GaugeMax", "Observe"} {
		sig := types.NewSignatureType(
			types.NewVar(token.NoPos, pkg, "c", recv), nil, nil,
			types.NewTuple(
				types.NewVar(token.NoPos, pkg, "family", str),
				types.NewVar(token.NoPos, pkg, "k", key),
				types.NewVar(token.NoPos, pkg, "v", f64),
			),
			nil, false)
		col.AddMethod(types.NewFunc(token.NoPos, pkg, name, sig))
	}
	newSig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(
			types.NewVar(token.NoPos, pkg, "platform", str),
			types.NewVar(token.NoPos, pkg, "workflow", str),
		),
		types.NewTuple(types.NewVar(token.NoPos, pkg, "", recv)),
		false)
	scope.Insert(types.NewFunc(token.NoPos, pkg, "New", newSig))
	pkg.MarkComplete()
	return pkg
}

// check type-checks one parsed package, populating pkg.Pkg and pkg.Info.
func check(fset *token.FileSet, pkg *Package, imp *moduleImporter) error {
	conf := types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Pkg = tpkg
	pkg.Info = info
	return nil
}
