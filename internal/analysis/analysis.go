// Package analysis implements bbvet, the repository's determinism and
// simulation-safety static-analysis suite.
//
// The simulator's core claim (DESIGN.md, "Determinism & static analysis")
// is that repeated runs are bit-identical: seeded randomness only, virtual
// time only, insertion-ordered same-time events, single-threaded kernel.
// bbvet makes those invariants machine-checked instead of conventional. It
// is built exclusively on the standard library (go/ast, go/parser,
// go/types) — no external analysis frameworks — and is wired into tier-1
// via TestBBVetRepoClean, so `go test ./...` fails whenever an unsuppressed
// finding is introduced.
//
// Findings print in vet format, `file:line: [rule] message`, and may be
// suppressed with a justified directive on the offending line or the line
// immediately above:
//
//	//bbvet:allow <rule> -- <justification>
//	//bbvet:ordered -- <justification>   (ordered-map-iteration only)
//
// A directive without a justification, and an //bbvet:allow that suppresses
// nothing, are themselves findings, so suppressions cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"

	"bbwfsim/internal/runner"
)

// A Finding is one rule violation at a source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in vet format: file:line: [rule] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// A Pass carries one type-checked package through the rule set.
type Pass struct {
	Fset  *token.FileSet
	Path  string // import path, e.g. "bbwfsim/internal/sim"
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File

	directives *directiveSet
	findings   *[]Finding
}

// Reportf records a finding unless a matching //bbvet:allow directive
// covers its line.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.directives.allows(position, rule) {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:     position,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Ordered reports whether a //bbvet:ordered directive covers pos (used by
// the ordered-map-iteration rule).
func (p *Pass) Ordered(pos token.Pos) bool {
	return p.directives.ordered(p.Fset.Position(pos))
}

// PkgUse resolves an identifier to the import path of the package it names,
// or "" if it does not name an imported package.
func (p *Pass) PkgUse(id *ast.Ident) string {
	if obj, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// Inspect walks every file in the pass.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// A Rule is one check in the suite. Package rules (Run) see one package
// at a time; module rules (RunModule) see the whole load plus the call
// graph, which is what makes interprocedural analysis expressible. A rule
// sets exactly one of the two.
type Rule struct {
	Name string
	Doc  string
	// AppliesTo gates a package rule by import path; nil means the whole
	// module. Module rules ignore it.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
	// RunModule runs once over the whole load, after every package pass.
	RunModule func(*ModulePass)
	// Tests opts the package rule into _test.go files of the packages the
	// loader analyzes tests for (deterministic packages): integration and
	// invariant tests assert bit-identical replay, so they must not read
	// the clock or the global rand stream either.
	Tests bool
}

// A ModulePass carries the whole load through a module rule.
type ModulePass struct {
	// Pkgs are the non-test packages, sorted by import path.
	Pkgs []*Package
	// Graph is the module call graph over Pkgs.
	Graph *CallGraph

	directives *directiveSet // merged across every package, test files included
	findings   *[]Finding
	// complete is true when the full rule set is running; audit rules that
	// reason about what every other rule did (stale-directive) only fire
	// then.
	complete bool
}

// Reportf records a module-rule finding unless a matching //bbvet:allow
// directive covers its line.
func (mp *ModulePass) Reportf(pos token.Position, rule, format string, args ...any) {
	if mp.directives.allows(pos, rule) {
		return
	}
	*mp.findings = append(*mp.findings, Finding{
		Pos:     pos,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Rules returns the full bbvet rule set, in stable order. stale-directive
// must come last: it audits the suppressions every other rule consumed.
func Rules() []Rule {
	return []Rule{
		noWalltimeRule(),
		seededRandRule(),
		orderedMapRule(),
		kernelPurityRule(),
		runnerIsolationRule(),
		floatCompareRule(),
		uncheckedErrorRule(),
		metricsVirtualTimeRule(),
		determinismTaintRule(),
		unstableSortRule(),
		globalMutableStateRule(),
		staleDirectiveRule(),
	}
}

// RuleNames returns the names of all rules, in stable order.
func RuleNames() []string {
	rules := Rules()
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name
	}
	return names
}

func isRuleName(name string) bool {
	for _, n := range RuleNames() {
		if n == name {
			return true
		}
	}
	return false
}

// simPackages are the packages whose execution feeds simulated results:
// the discrete-event kernel, the fluid model, and everything that decides
// or observes simulated behavior. Rules scoped to "simulation packages"
// match on the final import-path element so testdata fixtures can stand in
// for the real packages.
var simPackages = map[string]bool{
	"sim": true, "flow": true, "exec": true, "core": true,
	"storage": true, "testbed": true, "calib": true,
	"placement": true, "optimize": true, "faults": true,
	"metrics": true, "invariants": true, "ckpt": true,
	"adapt": true, "sched": true,
}

// kernelPackages is the single-threaded discrete-event core whose
// determinism depends on the absence of any concurrency: the event loop,
// the fluid model, and the task executor that drives them. Concurrency in
// this repository lives one layer up, in the campaign runner (see
// runnerIsolationRule) — never inside a run. The trace package is included
// because streaming sinks are driven from inside the event loop (Record →
// Sink.Emit on the hot path).
var kernelPackages = map[string]bool{
	"sim": true, "flow": true, "exec": true, "ckpt": true, "adapt": true,
	"trace": true, "sched": true,
}

// deterministicOutputPackages additionally covers packages whose output is
// asserted bit-identical across runs (experiment tables, traces), and the
// end-to-end integration tests, which exist only as test files but assert
// exactly those bit-identity contracts.
var deterministicOutputPackages = map[string]bool{
	"experiments": true, "trace": true, "wfcommons": true,
	"swarp": true, "genomes": true, "workloads": true,
	"checkpoint": true, "workflow": true, "stats": true,
	"integration": true,
}

// emitterPackages write CSV/JSON artifacts whose I/O errors must not be
// dropped.
var emitterPackages = map[string]bool{
	"trace": true, "experiments": true, "wfcommons": true,
	"metrics": true,
	// The daemon's handlers, journal, and offline mode write JSON/Prom
	// artifacts; dropped I/O errors there are served corruption. The
	// package is deliberately NOT in deterministicOutputPackages — the
	// serving layer reads the wall clock for deadlines; only the Execute
	// path below it is determinism-checked, via its taint sink.
	"service": true,
}

func isSimPackage(pkgPath string) bool {
	return simPackages[path.Base(pkgPath)]
}

func isKernelPackage(pkgPath string) bool {
	return kernelPackages[path.Base(pkgPath)]
}

func isDeterministicPackage(pkgPath string) bool {
	base := path.Base(pkgPath)
	return simPackages[base] || deterministicOutputPackages[base]
}

func isEmitterPackage(pkgPath string) bool {
	return emitterPackages[path.Base(pkgPath)]
}

// Run executes every rule over every package and returns the surviving
// findings sorted by position. Malformed directives are reported under the
// pseudo-rule "directive"; directives that suppress nothing are the
// stale-directive rule's findings.
//
// The per-package passes are independent, so they fan out across worker
// goroutines via internal/runner; results merge by submission index and
// the final sort is total (file, line, rule, message), so the output is
// bit-identical at any parallelism. Module rules then run serially over
// the merged state: first the call-graph passes, last the directive audit.
func Run(pkgs []*Package, rules []Rule) []Finding {
	type pkgOut struct {
		findings []Finding
		dirs     *directiveSet
	}
	outs, err := runner.Map(0, len(pkgs), func(i int) (pkgOut, error) {
		pkg := pkgs[i]
		dirs, findings := collectDirectives(pkg.Fset, pkg.Files)
		pass := &Pass{
			Fset:       pkg.Fset,
			Path:       pkg.Path,
			Pkg:        pkg.Pkg,
			Info:       pkg.Info,
			Files:      pkg.Files,
			directives: dirs,
			findings:   &findings,
		}
		for _, rule := range rules {
			if rule.Run == nil {
				continue
			}
			if pkg.Test && !rule.Tests {
				continue
			}
			if rule.AppliesTo != nil && !rule.AppliesTo(pkg.Path) {
				continue
			}
			rule.Run(pass)
		}
		return pkgOut{findings, dirs}, nil
	})
	if err != nil {
		// The point function never errors; a panic propagates as itself.
		panic(err)
	}
	var findings []Finding
	merged := newDirectiveSet()
	for _, o := range outs {
		findings = append(findings, o.findings...)
		merged.merge(o.dirs)
	}

	var moduleRules []Rule
	for _, rule := range rules {
		if rule.RunModule != nil {
			moduleRules = append(moduleRules, rule)
		}
	}
	if len(moduleRules) > 0 {
		var nonTest []*Package
		for _, pkg := range pkgs {
			if !pkg.Test {
				nonTest = append(nonTest, pkg)
			}
		}
		mp := &ModulePass{
			Pkgs:       nonTest,
			Graph:      BuildCallGraph(nonTest),
			directives: merged,
			findings:   &findings,
			complete:   hasFullRuleSet(rules),
		}
		for _, rule := range moduleRules {
			rule.RunModule(mp)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if findings[i].Rule != findings[j].Rule {
			return findings[i].Rule < findings[j].Rule
		}
		return findings[i].Message < findings[j].Message
	})
	return findings
}

// hasFullRuleSet reports whether rules is the complete suite (by name), in
// which case audit rules that reason about every other rule's behavior may
// fire.
func hasFullRuleSet(rules []Rule) bool {
	have := make(map[string]bool, len(rules))
	for _, r := range rules {
		have[r.Name] = true
	}
	for _, name := range RuleNames() {
		if !have[name] {
			return false
		}
	}
	return true
}
