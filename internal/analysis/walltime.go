package analysis

import (
	"go/ast"
)

// walltimeFuncs are the package time functions that read the wall clock or
// arm wall-clock timers. Referencing any of them from a deterministic
// package couples simulated results to real time, so repeated runs stop
// being bit-identical. The time *types* (Duration, Time) remain fine: they
// only become non-deterministic when fed from the clock.
var walltimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "Sleep": true,
}

func noWalltimeRule() Rule {
	return Rule{
		Name: "no-walltime",
		Doc: "forbid wall-clock reads (time.Now, time.Since, timers) in simulation and " +
			"experiment packages; simulated results must depend only on virtual time",
		AppliesTo: isDeterministicPackage,
		// Test files too: integration and invariant tests assert
		// bit-identical replay, so a wall-clock read there hides exactly
		// the flake this rule exists to prevent.
		Tests: true,
		Run: func(p *Pass) {
			p.Inspect(func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || p.PkgUse(id) != "time" || !walltimeFuncs[sel.Sel.Name] {
					return true
				}
				p.Reportf(sel.Pos(), "no-walltime",
					"time.%s reads the wall clock; deterministic packages must use virtual time "+
						"(sim.Engine.Now) or an injected stopwatch", sel.Sel.Name)
				return true
			})
		},
	}
}
