package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestFixtures runs the full rule set over each testdata package and
// checks the findings against the `// want` expectation comments embedded
// in the fixtures, analysistest-style: every finding must match a want on
// its line, and every want must be matched by a finding.
func TestFixtures(t *testing.T) {
	dirs, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		t.Run(d.Name(), func(t *testing.T) {
			dir := filepath.Join("testdata", "src", d.Name())
			// Fixture packages stand in for real module packages: the
			// directory name selects which package-scoped rules apply.
			pkgs, err := LoadDir(dir, "bbwfsim/internal/"+d.Name())
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			findings := Run(pkgs, Rules())
			wants, err := collectWants(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range findings {
				if !wants.match(f) {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants.unmatched() {
				t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
			}
		})
	}
}

// TestBBVetRepoClean runs the entire bbvet rule set over the whole module,
// wiring the determinism invariants into tier-1: `go test ./...` fails as
// soon as an unsuppressed finding is introduced anywhere in the tree.
func TestBBVetRepoClean(t *testing.T) {
	pkgs, err := LoadModule("../..")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module loader is missing most of the tree", len(pkgs))
	}
	findings := Run(pkgs, Rules())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("run `go run ./cmd/bbvet ./...` locally; fix the finding or add a justified //bbvet:allow directive (see DESIGN.md)")
	}
}

// TestRunBitIdentical pins the parallel fan-out contract: the per-package
// passes run on a worker pool, so repeated runs see different goroutine
// interleavings, yet the merged, totally-sorted findings must be
// byte-for-byte identical — the analyzer honors the determinism contract
// it enforces.
func TestRunBitIdentical(t *testing.T) {
	var load []*Package
	for _, name := range []string{"exec", "sim", "stats", "directives"} {
		pkgs, err := LoadDir(filepath.Join("testdata", "src", name), "bbwfsim/internal/"+name)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", name, err)
		}
		load = append(load, pkgs...)
	}
	render := func(fs []Finding) string {
		var sb strings.Builder
		for _, f := range fs {
			fmt.Fprintln(&sb, f)
		}
		return sb.String()
	}
	first := render(Run(load, Rules()))
	if first == "" {
		t.Fatal("fixture load produced no findings; the comparison is vacuous")
	}
	for i := 0; i < 5; i++ {
		if got := render(Run(load, Rules())); got != first {
			t.Fatalf("run %d diverged:\n--- first ---\n%s--- got ---\n%s", i+2, first, got)
		}
	}
}

// TestSplitDirective pins the directive grammar.
func TestSplitDirective(t *testing.T) {
	cases := []struct {
		in, head, just string
	}{
		{" float-compare -- exact zero sentinel", "float-compare", "exact zero sentinel"},
		{" float-compare", "float-compare", ""},
		{" -- just", "", "just"},
		{" float-compare -- reason // want `x`", "float-compare", "reason"},
		{"", "", ""},
	}
	for _, c := range cases {
		head, just := splitDirective(c.in)
		if head != c.head || just != c.just {
			t.Errorf("splitDirective(%q) = (%q, %q), want (%q, %q)", c.in, head, just, c.head, c.just)
		}
	}
}

// TestRuleNamesStable guards the names the directives reference.
func TestRuleNamesStable(t *testing.T) {
	want := []string{
		"no-walltime", "seeded-rand-only", "ordered-map-iteration",
		"no-goroutines-in-kernel", "runner-isolation", "float-compare", "unchecked-error",
		"metrics-virtual-time",
		"determinism-taint", "unstable-sort", "global-mutable-state", "stale-directive",
	}
	got := RuleNames()
	if len(got) != len(want) {
		t.Fatalf("RuleNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("rule %d = %q, want %q (directives in the tree reference these names)", i, got[i], want[i])
		}
	}
}

// --- want-expectation machinery -------------------------------------------

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct {
	wants []*want
}

var wantRE = regexp.MustCompile("// want (`[^`]+`(?: `[^`]+`)*)")

// collectWants extracts `// want `regex“ expectations, line by line, from
// every fixture file in dir.
func collectWants(dir string) (*wantSet, error) {
	set := &wantSet{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		scanner := bufio.NewScanner(f)
		for line := 1; scanner.Scan(); line++ {
			m := wantRE.FindStringSubmatch(scanner.Text())
			if m == nil {
				continue
			}
			for _, quoted := range strings.Split(m[1], "` `") {
				expr := strings.Trim(quoted, "`")
				re, err := regexp.Compile(expr)
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", path, line, expr, err)
				}
				set.wants = append(set.wants, &want{file: path, line: line, re: re})
			}
		}
		if err := scanner.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return set, nil
}

// match consumes the first unmatched want on the finding's line whose
// regexp matches "[rule] message".
func (s *wantSet) match(f Finding) bool {
	text := fmt.Sprintf("[%s] %s", f.Rule, f.Message)
	for _, w := range s.wants {
		if w.matched || w.line != f.Pos.Line || filepath.Base(w.file) != filepath.Base(f.Pos.Filename) {
			continue
		}
		if w.re.MatchString(text) {
			w.matched = true
			return true
		}
	}
	return false
}

func (s *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range s.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}
