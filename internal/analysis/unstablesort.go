package analysis

import (
	"go/ast"
	"go/token"
)

// unstableSortRule targets the ulp-drift reordering class: sort.Slice is
// an unstable sort, so whenever two elements compare "equal" their final
// order is unspecified — it depends on the pdqsort pivot choices, which
// themselves depend on the input permutation. A comparator that orders by
// a floating-point key with no tie-break makes row order a function of
// ulp-level arithmetic drift: two runs that differ by one bit anywhere
// upstream can legally emit rows in different orders, which breaks the
// bit-identical-output contract even though every value is "the same".
//
// The rule flags sort.Slice calls whose comparator is a single bare
// `return a < b` (or `>`) on floating-point operands. The fix is either
// sort.SliceStable (stability substitutes for the missing tie-break, as
// long as the input order is itself deterministic) or an explicit
// total-order tie-break chain on a unique key, which is what the repo's
// own comparators do (compare the float, then fall through to TaskID).
// Integer and string single-key comparators are not flagged: the repo
// sorts by unique IDs and indices, where ties cannot arise; that
// under-approximation is documented in DESIGN.md §5.
func unstableSortRule() Rule {
	return Rule{
		Name: "unstable-sort",
		Doc: "flag sort.Slice with a bare floating-point comparator and no tie-break in " +
			"deterministic packages; equal (or ulp-drifted) keys leave element order " +
			"unspecified — use sort.SliceStable or add a total-order tie-break",
		AppliesTo: isDeterministicPackage,
		Run: func(p *Pass) {
			p.Inspect(func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 2 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Slice" {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || p.PkgUse(id) != "sort" {
					return true
				}
				lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit)
				if !ok {
					return true
				}
				cmp, ok := bareComparison(lit.Body)
				if !ok {
					return true
				}
				if !isFloat(p.Info.TypeOf(cmp.X)) && !isFloat(p.Info.TypeOf(cmp.Y)) {
					return true
				}
				p.Reportf(call.Pos(), "unstable-sort",
					"sort.Slice comparator orders by a floating-point key with no tie-break; "+
						"equal or ulp-drifted keys make row order run-dependent — use "+
						"sort.SliceStable or fall through to a unique tie-break key")
				return true
			})
		},
	}
}

// bareComparison matches a comparator body that is exactly one
// `return x < y` / `return x > y` statement — the shape with no room for
// a tie-break.
func bareComparison(body *ast.BlockStmt) (*ast.BinaryExpr, bool) {
	if len(body.List) != 1 {
		return nil, false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil, false
	}
	cmp, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.LSS && cmp.Op != token.GTR) {
		return nil, false
	}
	return cmp, true
}
