package analysis

import (
	"go/ast"
	"path"
	"strings"
)

// runnerIsolationRule keeps the campaign runner generic: internal/runner is
// the one place in the module allowed to spawn goroutines, and the price of
// that license is that it must never see simulation state. A run point owns
// its engine, RNG streams, and storage system privately; the runner only
// moves opaque result values by index. If the runner imported a simulation
// package, a *sim.Engine (or anything holding one) could cross a worker
// boundary and be mutated from two goroutines — exactly the sharing the
// kernel-purity rule exists to make impossible.
func runnerIsolationRule() Rule {
	return Rule{
		Name: "runner-isolation",
		Doc: "forbid the campaign runner (runner) from importing simulation packages; run points " +
			"build and own their engines privately, so no simulation state crosses a worker boundary",
		AppliesTo: func(pkgPath string) bool { return path.Base(pkgPath) == "runner" },
		Run: func(p *Pass) {
			p.Inspect(func(n ast.Node) bool {
				imp, ok := n.(*ast.ImportSpec)
				if !ok {
					return true
				}
				ipath := strings.Trim(imp.Path.Value, `"`)
				if strings.Contains(ipath, "/") && isSimPackage(ipath) {
					p.Reportf(imp.Pos(), "runner-isolation",
						"import of %q in the campaign runner: workers must only handle opaque "+
							"result values — an engine shared across goroutines breaks the kernel's "+
							"single-threaded determinism contract", ipath)
				}
				return true
			})
		},
	}
}
