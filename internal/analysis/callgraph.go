package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the interprocedural rules
// run on. Nodes are the functions and methods declared with a body in the
// analyzed (non-test) packages; edges are the statically resolvable calls
// between them, plus two over-approximations that keep the graph sound for
// reachability questions:
//
//   - a reference to a function outside call position (a function or
//     method value passed around, stored, or returned) adds a "ref" edge
//     from the referencing function, because the callee may run wherever
//     the value flows;
//   - a call through an interface method adds a "dispatch" edge to every
//     module method that could satisfy it — every named type implementing
//     the interface contributes its implementation.
//
// Calls into the standard library are not edges: the taint pass detects
// nondeterministic stdlib reads (time.Now, os.Getenv, …) directly at the
// call site inside the enclosing module function, so stdlib bodies never
// need to be traversed. Function values invoked through struct fields or
// plain variables stay unresolved (no edge) — the ref edge at the point
// the function value was created keeps reachability conservative.

// EdgeKind classifies how a call-graph edge was established.
type EdgeKind uint8

const (
	// EdgeCall is a statically resolved direct call.
	EdgeCall EdgeKind = iota
	// EdgeRef is a reference to a function outside call position: the
	// function escapes as a value and may be invoked by whoever holds it.
	EdgeRef
	// EdgeDispatch is an interface-method call resolved to one of the
	// possible concrete implementations (an over-approximation).
	EdgeDispatch
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeRef:
		return "ref"
	case EdgeDispatch:
		return "dispatch"
	default:
		return "call"
	}
}

// A CGEdge is one outgoing edge of a call-graph node.
type CGEdge struct {
	To   *types.Func
	Pos  token.Pos // call site / reference site in the caller
	Kind EdgeKind
}

// A CGNode is one function or method declared with a body in the module.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []CGEdge // deduplicated by callee, in source order
}

// A CallGraph is the module-wide static call graph.
type CallGraph struct {
	nodes map[*types.Func]*CGNode
	order []*CGNode // deterministic: packages sorted by path, then source order
}

// Node returns the graph node for fn, or nil if fn has no body in the
// analyzed packages.
func (g *CallGraph) Node(fn *types.Func) *CGNode { return g.nodes[fn] }

// Nodes returns every node in deterministic order (package path, then
// source position).
func (g *CallGraph) Nodes() []*CGNode { return g.order }

// BuildCallGraph constructs the call graph over the given packages. The
// packages must come from one load (shared type-checker identity), as
// LoadModule guarantees; test packages are skipped.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CGNode)}
	// Pass 1: index every declared function and every named type (the
	// dispatch candidates).
	var named []*types.Named
	for _, pkg := range pkgs {
		if pkg.Test {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = node
				g.order = append(g.order, node)
			}
		}
		if pkg.Pkg != nil {
			scope := pkg.Pkg.Scope()
			for _, name := range scope.Names() { // Names() is sorted
				if tn, ok := scope.Lookup(name).(*types.TypeName); ok {
					if n, ok := tn.Type().(*types.Named); ok && !types.IsInterface(n) {
						named = append(named, n)
					}
				}
			}
		}
	}
	// Pass 2: walk each body and record edges.
	b := &graphBuilder{graph: g, named: named, impls: make(map[implKey][]*types.Func)}
	for _, node := range g.order {
		b.walk(node)
	}
	return g
}

type implKey struct {
	iface  *types.Interface
	method string
}

type graphBuilder struct {
	graph *CallGraph
	named []*types.Named
	impls map[implKey][]*types.Func
}

// walk records the outgoing edges of one node. Function literals nested in
// the declaration belong to the declaring function: a call made inside a
// closure is an edge of the function that built the closure.
func (b *graphBuilder) walk(node *CGNode) {
	info := node.Pkg.Info
	seen := make(map[*types.Func]bool)
	// callOperands holds the expressions already consumed as the operator
	// of a call, so the second pass over bare identifiers does not turn
	// every direct call into an additional ref edge.
	callOperands := make(map[ast.Node]bool)
	add := func(to *types.Func, pos token.Pos, kind EdgeKind) {
		if to == nil || seen[to] {
			return
		}
		if _, inModule := b.graph.nodes[to]; !inModule {
			return
		}
		seen[to] = true
		node.Out = append(node.Out, CGEdge{To: to, Pos: pos, Kind: kind})
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			callOperands[fun] = true
			switch fun := fun.(type) {
			case *ast.Ident:
				if fn, ok := info.Uses[fun].(*types.Func); ok {
					add(fn, n.Pos(), EdgeCall)
				}
			case *ast.SelectorExpr:
				callOperands[fun.Sel] = true
				b.selectorEdges(node, info, fun, n.Pos(), EdgeCall, add)
			}
		case *ast.Ident:
			if callOperands[n] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				add(fn, n.Pos(), EdgeRef)
			}
		case *ast.SelectorExpr:
			if callOperands[n] {
				// Already handled as a call operator; its .Sel is marked.
				return true
			}
			callOperands[n.Sel] = true
			b.selectorEdges(node, info, n, n.Pos(), EdgeRef, add)
			// Keep descending: n.X may itself contain calls (f(x).M).
		}
		return true
	})
}

// selectorEdges resolves x.M — a method call, method value, or qualified
// function reference — into one or more edges.
func (b *graphBuilder) selectorEdges(node *CGNode, info *types.Info, sel *ast.SelectorExpr,
	pos token.Pos, kind EdgeKind, add func(*types.Func, token.Pos, EdgeKind)) {
	if s := info.Selections[sel]; s != nil {
		fn, ok := s.Obj().(*types.Func)
		if !ok {
			return // field access; a func-typed field stays unresolved
		}
		if types.IsInterface(s.Recv()) {
			iface, _ := s.Recv().Underlying().(*types.Interface)
			if iface != nil {
				for _, impl := range b.implementations(iface, fn) {
					add(impl, pos, EdgeDispatch)
				}
			}
			return
		}
		add(fn, pos, kind)
		return
	}
	// Package-qualified reference (pkg.F) or type-qualified method
	// expression (T.M).
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		add(fn, pos, kind)
	}
}

// implementations returns, in deterministic order, the module methods that
// an interface call to fn could dispatch to: for every named non-interface
// type implementing iface, the method with fn's name.
func (b *graphBuilder) implementations(iface *types.Interface, fn *types.Func) []*types.Func {
	key := implKey{iface, fn.Name()}
	if impls, ok := b.impls[key]; ok {
		return impls
	}
	var impls []*types.Func
	for _, n := range b.named {
		if !types.Implements(n, iface) && !types.Implements(types.NewPointer(n), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(n, true, fn.Pkg(), fn.Name())
		if m, ok := obj.(*types.Func); ok {
			impls = append(impls, m)
		}
	}
	b.impls[key] = impls
	return impls
}

// FuncDisplayName renders fn compactly for findings and the graph dump:
// pkgbase.Name for functions, pkgbase.(*Recv).Name for methods.
func FuncDisplayName(fn *types.Func) string {
	name := fn.Name()
	base := ""
	if fn.Pkg() != nil {
		base = path.Base(fn.Pkg().Path()) + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return base + name
	}
	recv := sig.Recv().Type()
	star := ""
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
		star = "*"
	}
	recvName := types.TypeString(recv, func(*types.Package) string { return "" })
	// Strip the generic type-parameter list if present.
	if i := strings.IndexByte(recvName, '['); i >= 0 {
		recvName = recvName[:i]
	}
	return fmt.Sprintf("%s(%s%s).%s", base, star, recvName, name)
}

// fullFuncName qualifies fn with its full import path, for the graph dump.
func fullFuncName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return FuncDisplayName(fn)
	}
	dir := path.Dir(fn.Pkg().Path())
	if dir == "." {
		return FuncDisplayName(fn)
	}
	return dir + "/" + FuncDisplayName(fn)
}

// EdgeList renders every edge as "caller -> callee (kind)", sorted, for
// cmd/bbvet's -graph debugging dump. The list is a pure function of the
// loaded source, so repeated dumps are bit-identical.
func (g *CallGraph) EdgeList() []string {
	var lines []string
	for _, node := range g.order {
		from := fullFuncName(node.Fn)
		for _, e := range node.Out {
			lines = append(lines, fmt.Sprintf("%s -> %s (%s)", from, fullFuncName(e.To), e.Kind))
		}
	}
	sort.Strings(lines)
	return lines
}
