package analysis

import (
	"encoding/json"
	"fmt"
	"strings"
)

// jsonFinding is the machine-readable rendering of one Finding, consumed by
// the CI artifact upload.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// MarshalFindings renders findings as indented JSON. The input order is
// preserved (Run already sorts totally), and an empty input yields "[]",
// so the artifact is bit-identical across equivalent runs.
func MarshalFindings(findings []Finding) ([]byte, error) {
	out := make([]jsonFinding, len(findings))
	for i, f := range findings {
		out[i] = jsonFinding{File: f.Pos.Filename, Line: f.Pos.Line, Rule: f.Rule, Message: f.Message}
	}
	return json.MarshalIndent(out, "", "  ")
}

// SelectRules resolves a comma-separated rule-name filter against the full
// suite, preserving suite order. An empty filter selects every rule.
// Unknown names are an error, so a typo cannot silently skip a check.
func SelectRules(filter string) ([]Rule, error) {
	all := Rules()
	if strings.TrimSpace(filter) == "" {
		return all, nil
	}
	wanted := make(map[string]bool)
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !isRuleName(name) {
			return nil, fmt.Errorf("unknown rule %q (known: %s)", name, strings.Join(RuleNames(), ", "))
		}
		wanted[name] = true
	}
	var rules []Rule
	for _, r := range all {
		if wanted[r.Name] {
			rules = append(rules, r)
		}
	}
	return rules, nil
}
