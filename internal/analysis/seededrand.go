package analysis

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand functions that build explicit,
// seedable generators — the only sanctioned way to get randomness.
// Everything else at package level (rand.Intn, rand.Float64, rand.Shuffle,
// rand.Seed, …) draws from the process-global source, whose stream depends
// on what else has consumed it and, in math/rand/v2, on per-process
// seeding — either way the run is no longer reproducible from its inputs.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 source constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func seededRandRule() Rule {
	return Rule{
		Name: "seeded-rand-only",
		Doc: "forbid the math/rand package-global functions; randomness must flow from an " +
			"explicit rand.New(rand.NewSource(seed))",
		// Module-wide: even CLI glue must not introduce unseeded noise.
		// Test files of deterministic packages are covered too — a seeded
		// test that also draws from the global stream is only reproducible
		// until an unrelated test runs first.
		Tests: true,
		Run: func(p *Pass) {
			p.Inspect(func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				path := p.PkgUse(id)
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				if _, isFunc := p.Info.Uses[sel.Sel].(*types.Func); !isFunc {
					return true // type or variable reference (rand.Rand, rand.Source)
				}
				if randConstructors[sel.Sel.Name] {
					return true
				}
				p.Reportf(sel.Pos(), "seeded-rand-only",
					"rand.%s uses the process-global random source; draw from an explicit "+
						"rand.New(rand.NewSource(seed)) so runs are reproducible", sel.Sel.Name)
				return true
			})
		},
	}
}
