package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func kernelPurityRule() Rule {
	return Rule{
		Name: "no-goroutines-in-kernel",
		Doc: "forbid goroutines, channels, select, and sync primitives in the discrete-event " +
			"kernel, fluid model, and task executor (sim, flow, exec); their determinism depends " +
			"on single-threaded execution — concurrency belongs in internal/runner, above them",
		AppliesTo: isKernelPackage,
		Run: func(p *Pass) {
			p.Inspect(func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ImportSpec:
					path := strings.Trim(n.Path.Value, `"`)
					if path == "sync" || path == "sync/atomic" {
						p.Reportf(n.Pos(), "no-goroutines-in-kernel",
							"import of %q in the kernel: the event loop is single-threaded by design, "+
								"synchronization primitives signal concurrent mutation", path)
					}
				case *ast.GoStmt:
					p.Reportf(n.Pos(), "no-goroutines-in-kernel",
						"go statement in the kernel: goroutine interleaving makes same-time event "+
							"order scheduler-dependent")
				case *ast.SelectStmt:
					p.Reportf(n.Pos(), "no-goroutines-in-kernel",
						"select statement in the kernel: case choice is runtime-randomized")
				case *ast.SendStmt:
					p.Reportf(n.Pos(), "no-goroutines-in-kernel", "channel send in the kernel")
				case *ast.ChanType:
					p.Reportf(n.Pos(), "no-goroutines-in-kernel",
						"channel type in the kernel: cross-goroutine communication has no place in "+
							"a single-threaded event loop")
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						p.Reportf(n.Pos(), "no-goroutines-in-kernel", "channel receive in the kernel")
					}
				case *ast.RangeStmt:
					if t := p.Info.TypeOf(n.X); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							p.Reportf(n.Pos(), "no-goroutines-in-kernel", "range over a channel in the kernel")
						}
					}
				}
				return true
			})
		},
	}
}
