package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// writerMethods are emitter methods whose error results must be checked
// when called on anything that can actually fail.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "Flush": true,
	"Encode": true, "Close": true,
}

// infallibleWriters never return a non-nil error from Write; discarding
// their results is idiomatic, not a leak.
var infallibleWriters = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
}

func uncheckedErrorRule() Rule {
	return Rule{
		Name: "unchecked-error",
		Doc: "flag discarded error results from encoding/json and io-writer calls in the " +
			"CSV/JSON emitters (trace, experiments, wfcommons); a silently truncated artifact " +
			"poisons every comparison made from it",
		AppliesTo: isEmitterPackage,
		Run: func(p *Pass) {
			p.Inspect(func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil || !returnsError(fn) {
					return true
				}
				if !emitterCallee(fn) {
					return true
				}
				p.Reportf(call.Pos(), "unchecked-error",
					"result of %s discarded; emitter I/O errors must be checked or the artifact "+
						"can be silently truncated", calleeName(fn))
				return true
			})
		},
	}
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// emitterCallee reports whether fn is an encoding/json function or method,
// an fmt.Fprint* wrapper, an io package function, or a fallible writer
// method — the calls whose errors the emitters must propagate.
func emitterCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg != nil {
		switch pkg.Path() {
		case "encoding/json", "io":
			return true
		case "fmt":
			return strings.HasPrefix(fn.Name(), "Fprint")
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if !writerMethods[fn.Name()] {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && infallibleWriters[obj.Pkg().Path()+"."+obj.Name()] {
			return false
		}
	}
	return true
}

func calleeName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
