package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// bbvet directives are single-line comments of the form
//
//	//bbvet:allow <rule> -- <justification>
//	//bbvet:ordered -- <justification>
//
// placed either at the end of the offending line or on a line of their own
// immediately above it. The justification is mandatory: a suppression
// without a recorded reason is itself a finding.

const (
	directivePrefix = "//bbvet:"
	// directiveRule is the pseudo-rule name under which malformed and
	// unused directives are reported. It is not suppressible.
	directiveRule = "directive"
)

type lineKey struct {
	file string
	line int
}

type allowDirective struct {
	pos  token.Position
	rule string
	used bool
}

type orderedDirective struct {
	pos  token.Position
	used bool
}

type directiveSet struct {
	allowAt   map[lineKey][]*allowDirective
	orderedAt map[lineKey]*orderedDirective
}

func newDirectiveSet() *directiveSet {
	return &directiveSet{
		allowAt:   make(map[lineKey][]*allowDirective),
		orderedAt: make(map[lineKey]*orderedDirective),
	}
}

// merge folds another package's directives into s. The directive values
// are shared (not copied), so a use recorded through either set — package
// pass or module pass — is visible to the final staleness audit.
func (s *directiveSet) merge(o *directiveSet) {
	for k, ds := range o.allowAt {
		s.allowAt[k] = append(s.allowAt[k], ds...)
	}
	for k, d := range o.orderedAt {
		s.orderedAt[k] = d
	}
}

// collectDirectives scans every comment in the package for bbvet
// directives, returning the suppression set plus findings for malformed
// directives (unknown kind, unknown rule, missing justification).
func collectDirectives(fset *token.FileSet, files []*ast.File) (*directiveSet, []Finding) {
	set := newDirectiveSet()
	var findings []Finding
	malformed := func(pos token.Position, format string, args ...any) {
		findings = append(findings, Finding{Pos: pos, Rule: directiveRule, Message: fmt.Sprintf(format, args...)})
	}
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				body := strings.TrimPrefix(c.Text, directivePrefix)
				switch {
				case strings.HasPrefix(body, "allow"):
					rule, just := splitDirective(strings.TrimPrefix(body, "allow"))
					switch {
					case rule == "":
						malformed(pos, "//bbvet:allow needs a rule name: //bbvet:allow <rule> -- <justification>")
					case !isRuleName(rule):
						malformed(pos, "//bbvet:allow names unknown rule %q (known: %s)", rule, strings.Join(RuleNames(), ", "))
					case just == "":
						malformed(pos, "//bbvet:allow %s needs a justification: //bbvet:allow %s -- <why>", rule, rule)
					default:
						key := lineKey{pos.Filename, pos.Line}
						set.allowAt[key] = append(set.allowAt[key], &allowDirective{pos: pos, rule: rule})
					}
				case strings.HasPrefix(body, "ordered"):
					rule, just := splitDirective(strings.TrimPrefix(body, "ordered"))
					if rule != "" || just == "" {
						malformed(pos, "//bbvet:ordered needs a justification: //bbvet:ordered -- <why iteration order cannot matter>")
						continue
					}
					set.orderedAt[lineKey{pos.Filename, pos.Line}] = &orderedDirective{pos: pos}
				default:
					kind := body
					if i := strings.IndexAny(kind, " \t"); i >= 0 {
						kind = kind[:i]
					}
					malformed(pos, "unknown bbvet directive %q (want allow or ordered)", kind)
				}
			}
		}
	}
	return set, findings
}

// splitDirective parses "<head> -- <justification>" and returns the head
// (may be empty) and the justification. Trailing "// want ..." expectation
// comments — used by the analyzer's own fixtures — are not part of the
// justification.
func splitDirective(s string) (head, justification string) {
	if i := strings.Index(s, "// want"); i >= 0 {
		s = s[:i]
	}
	head = strings.TrimSpace(s)
	if i := strings.Index(head, "--"); i >= 0 {
		justification = strings.TrimSpace(head[i+2:])
		head = strings.TrimSpace(head[:i])
	}
	return head, justification
}

// allows reports whether an //bbvet:allow for rule covers the given
// position (same line, or the line immediately above), marking the
// directive used.
func (s *directiveSet) allows(pos token.Position, rule string) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range s.allowAt[lineKey{pos.Filename, line}] {
			if d.rule == rule {
				d.used = true
				return true
			}
		}
	}
	return false
}

// ordered reports whether an //bbvet:ordered directive covers the given
// position, marking it used.
func (s *directiveSet) ordered(pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := s.orderedAt[lineKey{pos.Filename, line}]; ok {
			d.used = true
			return true
		}
	}
	return false
}

// unused returns findings for directives that suppressed nothing: a stale
// suppression must be deleted, not carried along.
func (s *directiveSet) unused() []Finding {
	var findings []Finding
	for _, ds := range s.allowAt {
		for _, d := range ds {
			if !d.used {
				findings = append(findings, Finding{
					Pos:     d.pos,
					Rule:    directiveRule,
					Message: fmt.Sprintf("unused //bbvet:allow %s directive suppresses nothing; delete it", d.rule),
				})
			}
		}
	}
	for _, d := range s.orderedAt {
		if !d.used {
			findings = append(findings, Finding{
				Pos:     d.pos,
				Rule:    directiveRule,
				Message: "unused //bbvet:ordered directive covers no map iteration that needs it; delete it",
			})
		}
	}
	return findings
}
