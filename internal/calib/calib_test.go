package calib

import (
	"math"
	"testing"
	"testing/quick"

	"bbwfsim/internal/units"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

func TestEq4PerfectSpeedup(t *testing.T) {
	// Paper example shape: T(32) = 12 s, λ = 0.203, α = 0.
	o := Observation{TaskName: "resample", Cores: 32, Time: 12, LambdaIO: 0.203}
	seq, err := o.SequentialComputeTime()
	if err != nil {
		t.Fatal(err)
	}
	want := 32 * (1 - 0.203) * 12.0 // Eq. 4
	if !approx(seq, want, 1e-12) {
		t.Errorf("Eq.4: got %v, want %v", seq, want)
	}
}

func TestEq3Amdahl(t *testing.T) {
	o := Observation{TaskName: "t", Cores: 10, Time: 100, LambdaIO: 0.2, Alpha: 0.25}
	seq, err := o.SequentialComputeTime()
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - 0.2) * 100 / (0.25 + 0.75/10.0) // Eq. 3
	if !approx(seq, want, 1e-12) {
		t.Errorf("Eq.3: got %v, want %v", seq, want)
	}
}

func TestEq1ComputeTimeAtP(t *testing.T) {
	o := Observation{TaskName: "t", Cores: 4, Time: 50, LambdaIO: 0.26}
	if got := o.ComputeTimeAtP(); !approx(got, 37, 1e-12) {
		t.Errorf("Eq.1: got %v, want 37", got)
	}
}

func TestSingleCoreIdentity(t *testing.T) {
	// With p = 1 and λ = 0 the model is the identity.
	o := Observation{TaskName: "t", Cores: 1, Time: 42}
	seq, err := o.SequentialComputeTime()
	if err != nil || !approx(seq, 42, 1e-12) {
		t.Errorf("identity case: got %v (%v), want 42", seq, err)
	}
}

func TestValidation(t *testing.T) {
	bad := []Observation{
		{TaskName: "t", Cores: 0, Time: 1},
		{TaskName: "t", Cores: 1, Time: -1},
		{TaskName: "t", Cores: 1, Time: 1, LambdaIO: 1.0},
		{TaskName: "t", Cores: 1, Time: 1, LambdaIO: -0.1},
		{TaskName: "t", Cores: 1, Time: 1, Alpha: 1.5},
		{TaskName: "t", Cores: 1, Time: 1, Alpha: -0.5},
	}
	for i, o := range bad {
		if _, err := o.SequentialComputeTime(); err == nil {
			t.Errorf("case %d: invalid observation accepted", i)
		}
	}
}

func TestWorkConversion(t *testing.T) {
	o := Observation{TaskName: "t", Cores: 2, Time: 10, LambdaIO: 0.5}
	w, err := o.Work(1 * units.GFlopPerSec)
	if err != nil {
		t.Fatal(err)
	}
	// seq = 2·0.5·10 = 10 s at 1 GFlop/s.
	if !approx(float64(w), 10e9, 1e-9) {
		t.Errorf("Work = %v, want 10 GFlop", w)
	}
	if _, err := o.Work(0); err == nil {
		// Work validates via SequentialComputeTime only; zero speed gives
		// zero work, which is a modeling error the caller must catch — the
		// calibration constructor does.
		t.Skip("zero core speed handled by FromObservations")
	}
}

func TestPredictInvertsCalibration(t *testing.T) {
	// Calibrate from an observation, predict the same point back.
	o := Observation{TaskName: "t", Cores: 8, Time: 25, LambdaIO: 0.3, Alpha: 0.1}
	seq, err := o.SequentialComputeTime()
	if err != nil {
		t.Fatal(err)
	}
	pred, err := PredictTime(seq, 8, 0.3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pred, 25, 1e-9) {
		t.Errorf("PredictTime round trip = %v, want 25", pred)
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := PredictTime(10, 0, 0, 0); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := PredictTime(10, 1, 1, 0); err == nil {
		t.Error("λ=1 accepted")
	}
	if _, err := PredictTime(10, 1, 0, 2); err == nil {
		t.Error("α=2 accepted")
	}
}

func TestFromObservationsAverages(t *testing.T) {
	obs := []Observation{
		{TaskName: "a", Cores: 1, Time: 10},
		{TaskName: "a", Cores: 1, Time: 20},
		{TaskName: "b", Cores: 2, Time: 10},
	}
	c, err := FromObservations(obs, 1*units.GFlopPerSec)
	if err != nil {
		t.Fatal(err)
	}
	wa, err := c.Work("a")
	if err != nil || !approx(float64(wa), 15e9, 1e-9) {
		t.Errorf("work(a) = %v, want 15 GFlop", wa)
	}
	wb, err := c.Work("b")
	if err != nil || !approx(float64(wb), 20e9, 1e-9) {
		t.Errorf("work(b) = %v, want 20 GFlop", wb)
	}
	if _, err := c.Work("missing"); err == nil {
		t.Error("missing category accepted")
	}
}

func TestFromObservationsErrors(t *testing.T) {
	if _, err := FromObservations([]Observation{{TaskName: "a", Cores: 0, Time: 1}}, 1e9); err == nil {
		t.Error("invalid observation accepted")
	}
	if _, err := FromObservations(nil, 0); err == nil {
		t.Error("zero core speed accepted")
	}
}

// Property: Eq. 3 and Eq. 4 agree when α = 0, and the predict/calibrate
// pair is a bijection over valid inputs.
func TestCalibrationAlgebraQuick(t *testing.T) {
	f := func(rawT, rawLambda, rawAlpha uint16, rawP uint8) bool {
		time := 0.1 + float64(rawT%10000)/100
		lambda := float64(rawLambda%999) / 1000
		alpha := float64(rawAlpha%1001) / 1000
		p := 1 + int(rawP%128)
		o := Observation{TaskName: "t", Cores: p, Time: time, LambdaIO: lambda, Alpha: alpha}
		seq, err := o.SequentialComputeTime()
		if err != nil {
			return false
		}
		back, err := PredictTime(seq, p, lambda, alpha)
		if err != nil || !approx(back, time, 1e-9) {
			return false
		}
		if alpha == 0 {
			eq4 := float64(p) * (1 - lambda) * time
			if !approx(seq, eq4, 1e-9) {
				return false
			}
		}
		// Monotonicity: more I/O fraction → less compute work.
		o2 := o
		o2.LambdaIO = math.Min(0.999, lambda+0.1)
		seq2, err := o2.SequentialComputeTime()
		if err != nil {
			return false
		}
		return seq2 <= seq+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLambdaFromRecords(t *testing.T) {
	recs := []TaskPhases{
		{Name: "a", ExecTime: 10, IOTime: 2},
		{Name: "a", ExecTime: 10, IOTime: 4},
		{Name: "b", ExecTime: 100, IOTime: 100}, // all I/O → clamped below 1
		{Name: "c", ExecTime: 0, IOTime: 5},     // skipped (no wall time)
		{Name: "d", ExecTime: 10, IOTime: -1},   // clamped at 0
	}
	got := LambdaFromRecords(recs)
	if !approx(got["a"], 0.3, 1e-12) {
		t.Errorf("λ(a) = %v, want 0.3", got["a"])
	}
	if got["b"] >= 1 {
		t.Errorf("λ(b) = %v, want < 1", got["b"])
	}
	if _, ok := got["c"]; ok {
		t.Error("zero-exec-time record should be skipped")
	}
	if got["d"] != 0 {
		t.Errorf("λ(d) = %v, want 0", got["d"])
	}
	// A clamped λ remains a valid calibration input.
	o := Observation{TaskName: "b", Cores: 4, Time: 100, LambdaIO: got["b"]}
	if _, err := o.SequentialComputeTime(); err != nil {
		t.Errorf("clamped λ rejected by calibration: %v", err)
	}
}

func TestPaperLambdaConstants(t *testing.T) {
	if LambdaIOResample != 0.203 || LambdaIOCombine != 0.260 {
		t.Errorf("λ constants drifted: %v, %v", LambdaIOResample, LambdaIOCombine)
	}
}
