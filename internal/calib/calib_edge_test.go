package calib

import (
	"math"
	"testing"
)

// TestSingleCoreTableAlphaInvariant: on single-core observations the
// Amdahl denominator is exactly 1 for any α, so Eq. 3 and Eq. 4 coincide:
// T_c(1) = (1 − λ_io) · T(1).
func TestSingleCoreTableAlphaInvariant(t *testing.T) {
	tests := []struct {
		time, lambda, alpha, want float64
	}{
		{100, 0, 0, 100},
		{100, 0.25, 0, 75},
		{100, 0.25, 0.5, 75},
		{100, 0.25, 1, 75},
		{60, 0.999, 0.3, 0.06},
		{0, 0.5, 0.5, 0}, // zero observed time is valid and calibrates to zero work
	}
	for _, tc := range tests {
		o := Observation{TaskName: "t", Cores: 1, Time: tc.time, LambdaIO: tc.lambda, Alpha: tc.alpha}
		got, err := o.SequentialComputeTime()
		if err != nil {
			t.Errorf("T=%g λ=%g α=%g: %v", tc.time, tc.lambda, tc.alpha, err)
			continue
		}
		if math.Abs(got-tc.want) > 1e-12*(1+tc.want) {
			t.Errorf("T=%g λ=%g α=%g: sequential time %g, want %g", tc.time, tc.lambda, tc.alpha, got, tc.want)
		}
	}
}

// TestMalformedObservations exercises every Validate rejection on the
// boundary values.
func TestMalformedObservations(t *testing.T) {
	bad := []Observation{
		{TaskName: "cores0", Cores: 0, Time: 1},
		{TaskName: "coresneg", Cores: -4, Time: 1},
		{TaskName: "timeneg", Cores: 1, Time: -1},
		{TaskName: "lambda1", Cores: 1, Time: 1, LambdaIO: 1}, // λ_io = 1 would divide by zero in PredictTime
		{TaskName: "lambdaneg", Cores: 1, Time: 1, LambdaIO: -0.1},
		{TaskName: "alphaneg", Cores: 1, Time: 1, Alpha: -0.1},
		{TaskName: "alphabig", Cores: 1, Time: 1, Alpha: 1.1},
	}
	for _, o := range bad {
		if _, err := o.SequentialComputeTime(); err == nil {
			t.Errorf("%s: malformed observation calibrated without error", o.TaskName)
		}
	}
	// The λ_io ∈ [0, 1) boundary itself is valid.
	ok := Observation{TaskName: "edge", Cores: 1, Time: 1, LambdaIO: 0}
	if _, err := ok.SequentialComputeTime(); err != nil {
		t.Errorf("λ_io = 0 rejected: %v", err)
	}
}

// TestLambdaFromRecordsEdges pins the estimator's clamping and skipping
// behavior: non-positive exec times are dropped entirely, negative I/O
// clamps to 0, and I/O exceeding the span clamps just below 1 so the
// estimate stays a valid calibration input.
func TestLambdaFromRecordsEdges(t *testing.T) {
	out := LambdaFromRecords([]TaskPhases{
		{Name: "skipped", ExecTime: 0, IOTime: 5},
		{Name: "skipped", ExecTime: -2, IOTime: 1},
		{Name: "clamplow", ExecTime: 10, IOTime: -3},
		{Name: "clamphigh", ExecTime: 1, IOTime: 50},
	})
	if _, ok := out["skipped"]; ok {
		t.Error("records with non-positive exec time contributed an estimate")
	}
	if got := out["clamplow"]; got != 0 {
		t.Errorf("negative I/O time: λ estimate %g, want 0", got)
	}
	if got := out["clamphigh"]; got < 0.999 || got >= 1 {
		t.Errorf("I/O > span: λ estimate %g, want clamped into [0.999, 1)", got)
	}
}
