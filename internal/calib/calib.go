// Package calib implements the paper's calibration model (Section IV-A,
// Equations 1–4): from an observed task execution time T(p) on p cores and
// the observed fraction of time spent in I/O (λ_io), derive the purely
// computational sequential time T_c(1) that the simulator needs as input.
//
//	Eq. 1:  T_c(p) = (1 − λ_io) · T(p)
//	Eq. 2:  T_c(p) = α · T_c(1) + (1 − α) · T_c(1)/p        (Amdahl)
//	Eq. 3:  T_c(1) = (1 − λ_io) · T(p) / (α + (1 − α)/p)
//	Eq. 4:  T_c(1) = p · (1 − λ_io) · T(p)                  (α = 0)
//
// The paper's headline model assumes perfect speedup (Eq. 4); Eq. 3 is kept
// for the ablation that quantifies what that assumption costs.
package calib

import (
	"fmt"

	"bbwfsim/internal/units"
)

// Observation is one measured task execution.
type Observation struct {
	// TaskName is the task category ("resample", "combine", ...).
	TaskName string
	// Cores is p, the number of cores the observation used.
	Cores int
	// Time is T(p), the observed wall time in seconds (I/O included).
	Time float64
	// LambdaIO is λ_io, the observed fraction of Time spent in I/O.
	LambdaIO float64
	// Alpha is the Amdahl non-parallelizable fraction; 0 reproduces the
	// paper's perfect-speedup assumption.
	Alpha float64
}

// Validate reports malformed observations.
func (o *Observation) Validate() error {
	if o.Cores <= 0 {
		return fmt.Errorf("calib: observation %q: cores %d must be positive", o.TaskName, o.Cores)
	}
	if o.Time < 0 {
		return fmt.Errorf("calib: observation %q: negative time %g", o.TaskName, o.Time)
	}
	if o.LambdaIO < 0 || o.LambdaIO >= 1 {
		return fmt.Errorf("calib: observation %q: λ_io %g outside [0,1)", o.TaskName, o.LambdaIO)
	}
	if o.Alpha < 0 || o.Alpha > 1 {
		return fmt.Errorf("calib: observation %q: α %g outside [0,1]", o.TaskName, o.Alpha)
	}
	return nil
}

// ComputeTimeAtP implements Eq. 1: the compute-only time at p cores.
func (o *Observation) ComputeTimeAtP() float64 {
	return (1 - o.LambdaIO) * o.Time
}

// SequentialComputeTime implements Eq. 3 (and its α = 0 special case,
// Eq. 4): the task's compute-only time on one core.
func (o *Observation) SequentialComputeTime() (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	denom := o.Alpha + (1-o.Alpha)/float64(o.Cores)
	return o.ComputeTimeAtP() / denom, nil
}

// Work converts the sequential compute time to platform-independent work
// given the speed of the cores the observation was taken on.
func (o *Observation) Work(coreSpeed units.FlopRate) (units.Flops, error) {
	seq, err := o.SequentialComputeTime()
	if err != nil {
		return 0, err
	}
	return units.Flops(seq * float64(coreSpeed)), nil
}

// PredictTime inverts the model: given the sequential compute time, predict
// the observed wall time on p cores (compute via Eq. 2, inflated back by
// λ_io). Used by tests to check the algebra and by the ablation benchmark.
func PredictTime(seqComputeTime float64, p int, lambdaIO, alpha float64) (float64, error) {
	if p <= 0 {
		return 0, fmt.Errorf("calib: predict with %d cores", p)
	}
	if lambdaIO < 0 || lambdaIO >= 1 {
		return 0, fmt.Errorf("calib: predict with λ_io %g", lambdaIO)
	}
	if alpha < 0 || alpha > 1 {
		return 0, fmt.Errorf("calib: predict with α %g", alpha)
	}
	computeAtP := seqComputeTime * (alpha + (1-alpha)/float64(p))
	return computeAtP / (1 - lambdaIO), nil
}

// Calibration maps task categories to their calibrated sequential work.
type Calibration map[string]units.Flops

// FromObservations averages the calibrated work of same-name observations.
func FromObservations(obs []Observation, coreSpeed units.FlopRate) (Calibration, error) {
	if coreSpeed <= 0 {
		return nil, fmt.Errorf("calib: core speed %v must be positive", coreSpeed)
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for i := range obs {
		w, err := obs[i].Work(coreSpeed)
		if err != nil {
			return nil, err
		}
		sums[obs[i].TaskName] += float64(w)
		counts[obs[i].TaskName]++
	}
	c := Calibration{}
	for name, sum := range sums {
		c[name] = units.Flops(sum / float64(counts[name]))
	}
	return c, nil
}

// Work returns the calibrated work for a task category, or an error when
// the category was never observed.
func (c Calibration) Work(name string) (units.Flops, error) {
	w, ok := c[name]
	if !ok {
		return 0, fmt.Errorf("calib: no observation for task %q", name)
	}
	return w, nil
}

// The λ_io values the paper takes from Daley et al.'s characterization of
// SWarp on Cori (Section IV-A): Resample 0.203, Combine 0.260. They are
// reused for Summit, as the paper does.
const (
	LambdaIOResample = 0.203
	LambdaIOCombine  = 0.260
)

// TaskPhases is the slice of per-task phase measurements LambdaFromRecords
// consumes; trace.TaskRecord satisfies it via the adapter in the caller.
type TaskPhases struct {
	Name     string
	ExecTime float64
	IOTime   float64
}

// LambdaFromRecords estimates λ_io per task category from observed
// executions: the mean fraction of wall time spent in I/O phases. The
// paper instead reuses λ values characterized on the PFS for every storage
// mode; re-measuring λ on the target mode is the obvious refinement (and
// the ablation-lambda experiment quantifies what it buys). Estimates are
// clamped just below 1 so they remain valid calibration inputs.
func LambdaFromRecords(records []TaskPhases) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range records {
		if r.ExecTime <= 0 {
			continue
		}
		frac := r.IOTime / r.ExecTime
		if frac < 0 {
			frac = 0
		}
		if frac > 0.999999 {
			frac = 0.999999
		}
		sums[r.Name] += frac
		counts[r.Name]++
	}
	out := map[string]float64{}
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out
}
