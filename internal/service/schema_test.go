package service

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Request {
	t.Helper()
	req, err := ParseRequest([]byte(src))
	if err != nil {
		t.Fatalf("ParseRequest(%s): %v", src, err)
	}
	return req
}

// wantBad asserts the input is rejected with a *RequestError mentioning
// field (empty field skips the check) — typed rejection, never a panic.
func wantBad(t *testing.T, src, field string) {
	t.Helper()
	_, err := ParseRequest([]byte(src))
	if err == nil {
		t.Fatalf("ParseRequest(%s) accepted", src)
	}
	var reqErr *RequestError
	if !errors.As(err, &reqErr) {
		t.Fatalf("ParseRequest(%s): error %v is not a *RequestError", src, err)
	}
	if field != "" && reqErr.Field != field {
		t.Errorf("ParseRequest(%s): field %q, want %q", src, reqErr.Field, field)
	}
}

func TestParseRequestRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		orig := SeededRequest(seed)
		data, err := json.Marshal(&orig)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseRequest(data)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h1, err := orig.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := parsed.CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("seed %d: hash changed across marshal round-trip", seed)
		}
	}
}

func TestParseRequestRejects(t *testing.T) {
	valid := `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"cori-private"}}`
	if _, err := ParseRequest([]byte(valid)); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}

	wantBad(t, `{`, "")                 // malformed JSON
	wantBad(t, valid+`{"x":1}`, "")     // trailing document
	wantBad(t, `{"bogus_field":1}`, "") // unknown field
	wantBad(t, `{"workflow":{"kind":"magic"},"platform":{"preset":"cori-private"}}`, "workflow.kind")
	wantBad(t, `{"workflow":{"kind":"gen","topology":"ring","tasks":5},"platform":{"preset":"cori-private"}}`, "workflow.topology")
	wantBad(t, `{"workflow":{"kind":"gen","topology":"chain","tasks":-5},"platform":{"preset":"cori-private"}}`, "workflow.tasks")
	wantBad(t, `{"workflow":{"kind":"gen","topology":"chain","tasks":99999999},"platform":{"preset":"cori-private"}}`, "workflow.tasks")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":0},"platform":{"preset":"cori-private"}}`, "workflow.pipelines")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"mars"}}`, "platform.preset")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit","nodes":-1}}`, "platform.nodes")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"run":{"staged_fraction":1.5}}`, "run.staged_fraction")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"run":{"staged_fraction":-0.1}}`, "run.staged_fraction")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"run":{"node_policy":"best-fit"}}`, "run.node_policy")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"run":{"order_policy":"random"}}`, "run.order_policy")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"ckpt":{"interval_s":0}}`, "ckpt.interval_s")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"ckpt":{"interval_s":60,"tier":"tape"}}`, "ckpt.tier")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"adapt":{"spill_high":0.5,"spill_low":0.6}}`, "adapt.spill_low")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"faults":{"crash_mean_s":100}}`, "faults.max_retries")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"faults":{"node_fail_mean_s":100}}`, "faults.node_mttr_s")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"faults":{"bb_reject_prob":1.5}}`, "faults.bb_reject_prob")
	wantBad(t, `{"platform":{"preset":"summit"},"sched":{"policy":"lifo"}}`, "sched.policy")
	wantBad(t, `{"platform":{"preset":"summit"},"sched":{"policy":"fcfs","jobs":-1}}`, "sched.jobs")
	wantBad(t, `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"timeout_s":-1}`, "timeout_s")

	// NaN and Inf are not valid JSON literals, so they arrive as strings
	// or via decoding quirks — json.Decoder already rejects the literals;
	// Validate catches values smuggled through a float field by a
	// hand-built Request.
	bad := SeededRequest(1)
	bad.Run.StagedFraction = nan()
	if err := bad.Validate(); err == nil {
		t.Error("NaN staged_fraction validated")
	}
	bad = SeededRequest(1)
	bad.TimeoutSeconds = inf()
	if err := bad.Validate(); err == nil {
		t.Error("Inf timeout validated")
	}

	// Oversized payload: typed rejection before decoding.
	huge := `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"summit"},"run":{"node_policy":"` +
		strings.Repeat("x", MaxRequestBytes) + `"}}`
	wantBad(t, huge, "")
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

func TestParseCampaignRequest(t *testing.T) {
	base := `{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"cori-private"}}`
	good := `{"base":` + base + `,"seeds":[1,2,3]}`
	creq, err := ParseCampaignRequest([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(creq.Seeds) != 3 {
		t.Fatalf("seeds = %d, want 3", len(creq.Seeds))
	}
	if _, err := ParseCampaignRequest([]byte(`{"base":` + base + `,"seeds":[]}`)); err == nil {
		t.Error("empty seed list accepted")
	}
	var big strings.Builder
	big.WriteString(`{"base":` + base + `,"seeds":[0`)
	for i := 0; i <= MaxCampaignSeeds; i++ {
		big.WriteString(",1")
	}
	big.WriteString(`]}`)
	if _, err := ParseCampaignRequest([]byte(big.String())); err == nil {
		t.Error("oversized seed list accepted")
	}
}

func TestCanonicalHashExcludesTimeout(t *testing.T) {
	a := SeededRequest(7)
	b := a
	b.TimeoutSeconds = 55
	ha, err := a.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Error("timeout_s changed the canonical hash")
	}
	b.Seed = a.Seed + 1
	if hb, _ := b.CanonicalHash(); hb == ha {
		t.Error("different seeds share a canonical hash")
	}
}

func TestCanonicalHashNormalizesDefaults(t *testing.T) {
	implicit := mustParse(t, `{"workflow":{"kind":"swarp","pipelines":2},"platform":{"preset":"summit"}}`)
	explicit := mustParse(t, `{"workflow":{"kind":"swarp","pipelines":2},"platform":{"preset":"summit","nodes":1},"run":{"node_policy":"first-fit","order_policy":"fifo"}}`)
	hi, err := implicit.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	he, err := explicit.CanonicalHash()
	if err != nil {
		t.Fatal(err)
	}
	if hi != he {
		t.Error("spelled-out defaults hash differently from omitted ones")
	}
}

// FuzzParseRequest asserts the parser's only failure mode is a typed
// *RequestError: arbitrary bytes never panic, and whatever parses must
// survive Validate and hash deterministically.
func FuzzParseRequest(f *testing.F) {
	f.Add([]byte(`{"workflow":{"kind":"swarp","pipelines":1},"platform":{"preset":"cori-private"}}`))
	f.Add([]byte(`{"platform":{"preset":"summit"},"sched":{"policy":"easy"}}`))
	f.Add([]byte(`{"workflow":{"kind":"gen","topology":"montage","tasks":100},"platform":{"preset":"cori-striped"},"seed":42}`))
	f.Add([]byte(`{"workflow":{"kind":"gen","topology":"chain","tasks":1e309},"platform":{"preset":"summit"}}`))
	f.Add([]byte(`{"workflow":{"kind":"genomes","chromosomes":-1}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("untyped parse error %T: %v", err, err)
			}
			return
		}
		h1, err := req.CanonicalHash()
		if err != nil {
			t.Fatalf("accepted request fails to hash: %v", err)
		}
		h2, err := req.CanonicalHash()
		if err != nil || h1 != h2 {
			t.Fatalf("hash unstable: %q vs %q (%v)", h1, h2, err)
		}
	})
}
