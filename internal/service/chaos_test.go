package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestChaos is the acceptance-criteria workload: a 200-request seeded
// mixed campaign against a live daemon over real HTTP, with injected
// worker panics, random client disconnects, and deadline-exceeding
// requests. The process must survive everything, leak no goroutines,
// serve every cache hit bit-identical to cold recomputation, and drain
// cleanly at the end.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is the long way around")
	}
	before := runtime.NumGoroutine()

	srv := NewServer(Config{Workers: 4, Queue: 256, PanicHook: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	const total = 200
	rng := rand.New(rand.NewSource(20260808))
	type shot struct {
		body       string
		kind       string // "run", "panic", "deadline", "disconnect"
		expectSeed int64  // for "run": the SeededRequest seed, to recompute cold
	}
	shots := make([]shot, total)
	for i := range shots {
		switch r := rng.Intn(10); {
		case r < 6: // normal request drawn from a small seed pool → guaranteed duplicates
			seed := int64(1 + rng.Intn(25))
			req := SeededRequest(seed)
			b, err := jsonBody(&req)
			if err != nil {
				t.Fatal(err)
			}
			shots[i] = shot{body: b, kind: "run", expectSeed: seed}
		case r < 7: // injected worker panic
			shots[i] = shot{body: `{"workflow":{"kind":"panic"},"platform":{"preset":"summit"}}`, kind: "panic"}
		case r < 8: // deadline-exceeding request (nanosecond budget)
			req := SeededRequest(int64(100 + rng.Intn(10)))
			req.TimeoutSeconds = 1e-9
			b, err := jsonBody(&req)
			if err != nil {
				t.Fatal(err)
			}
			shots[i] = shot{body: b, kind: "deadline"}
		default: // client disconnects mid-request
			req := SeededRequest(int64(200 + rng.Intn(10)))
			b, err := jsonBody(&req)
			if err != nil {
				t.Fatal(err)
			}
			shots[i] = shot{body: b, kind: "disconnect"}
		}
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		bodies   = map[int64][][]byte{} // seed → every 200-response body observed
		failures []string
	)
	fail := func(format string, a ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, a...))
		mu.Unlock()
	}
	sem := make(chan struct{}, 16)
	for i, sh := range shots {
		wg.Add(1)
		go func(i int, sh shot) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			if sh.kind == "disconnect" {
				ctx, cancel := context.WithCancel(context.Background())
				req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/run", strings.NewReader(sh.body))
				if err != nil {
					fail("shot %d: %v", i, err)
					cancel()
					return
				}
				go func() {
					time.Sleep(time.Duration(i%3) * time.Millisecond)
					cancel()
				}()
				resp, err := client.Do(req)
				if err == nil {
					// The race went the client's way; drain and move on.
					if _, err := io.Copy(io.Discard, resp.Body); err == nil {
						_ = 0
					}
					resp.Body.Close()
				}
				cancel()
				return
			}

			resp, err := client.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(sh.body))
			if err != nil {
				fail("shot %d (%s): transport error %v", i, sh.kind, err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				fail("shot %d (%s): reading body: %v", i, sh.kind, err)
				return
			}
			switch sh.kind {
			case "run":
				switch resp.StatusCode {
				case http.StatusOK:
					mu.Lock()
					bodies[sh.expectSeed] = append(bodies[sh.expectSeed], body)
					mu.Unlock()
				case http.StatusTooManyRequests, http.StatusGatewayTimeout:
					// Shed or killed under load — legitimate robustness
					// outcomes, not failures.
				default:
					fail("shot %d: run got %d: %s", i, resp.StatusCode, body)
				}
			case "panic":
				if resp.StatusCode != http.StatusInternalServerError && resp.StatusCode != http.StatusTooManyRequests {
					fail("shot %d: panic request got %d", i, resp.StatusCode)
				}
			case "deadline":
				if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusTooManyRequests {
					fail("shot %d: deadline request got %d: %s", i, resp.StatusCode, body)
				}
			}
		}(i, sh)
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}

	// Every served body for a seed — hit or cold — must equal direct
	// recomputation, bit for bit.
	for seed, got := range bodies {
		req := SeededRequest(seed)
		want, err := Execute(&req)
		if err != nil {
			t.Fatalf("seed %d: recompute: %v", seed, err)
		}
		for n, b := range got {
			if !bytes.Equal(b, want) {
				t.Errorf("seed %d: response %d differs from cold recomputation", seed, n)
				break
			}
		}
	}

	st := srv.Stats()
	if st.Panics == 0 {
		t.Error("chaos run injected no panics — mix generator broken")
	}
	if st.Hits == 0 {
		t.Error("chaos run observed no cache hits — duplicate traffic broken")
	}
	t.Logf("chaos: %d requests, %d hits, %d sheds, %d panics, %d deadline kills",
		st.RequestsRun, st.Hits, st.Sheds, st.Panics, st.DeadlineKills)

	// The daemon is still healthy, then drains cleanly.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos: %v / %v", err, resp)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.BeginDrain(drainCtx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
	ts.Close()

	// Goroutine-leak barrier: after the test server closes, the count
	// settles back to where it started (give the runtime a moment to
	// retire exiting goroutines and idle HTTP keep-alives).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before chaos, %d after", before, after)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func jsonBody(req *Request) (string, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
