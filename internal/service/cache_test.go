package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(0, nil)
	var fills atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, _, err := c.GetOrFill(context.Background(), "h1", func() ([]byte, error) {
				fills.Add(1)
				<-release
				return []byte("payload"), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = data
		}(i)
	}
	close(release)
	wg.Wait()
	if got := fills.Load(); got != 1 {
		t.Errorf("%d fills for %d concurrent identical requests, want 1", got, waiters)
	}
	for i, r := range results {
		if !bytes.Equal(r, []byte("payload")) {
			t.Errorf("waiter %d got %q", i, r)
		}
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(0, nil)
	boom := errors.New("boom")
	calls := 0
	fill := func() ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return []byte("ok"), nil
	}
	if _, _, err := c.GetOrFill(context.Background(), "h", fill); !errors.Is(err, boom) {
		t.Fatalf("first fill: %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed fill left an entry behind")
	}
	data, hit, err := c.GetOrFill(context.Background(), "h", fill)
	if err != nil || hit || !bytes.Equal(data, []byte("ok")) {
		t.Fatalf("retry after failure: data=%q hit=%v err=%v", data, hit, err)
	}
}

func TestCachePanicDoesNotPoison(t *testing.T) {
	c := NewCache(0, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("fill panic did not propagate")
			}
		}()
		_, _, _ = c.GetOrFill(context.Background(), "h", func() ([]byte, error) {
			panic("worker crash")
		})
	}()
	if c.Len() != 0 {
		t.Fatal("panicking fill left an entry behind")
	}
	data, _, err := c.GetOrFill(context.Background(), "h", func() ([]byte, error) { return []byte("clean"), nil })
	if err != nil || !bytes.Equal(data, []byte("clean")) {
		t.Fatalf("cache poisoned after panic: %q, %v", data, err)
	}
}

func TestCacheFIFOEviction(t *testing.T) {
	c := NewCache(3, nil)
	for i := 0; i < 5; i++ {
		h := fmt.Sprintf("h%d", i)
		if _, _, err := c.GetOrFill(context.Background(), h, func() ([]byte, error) {
			return []byte(h), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.Len())
	}
	if _, ok := c.Get("h0"); ok {
		t.Error("oldest entry h0 survived eviction")
	}
	if _, ok := c.Get("h4"); !ok {
		t.Error("newest entry h4 was evicted")
	}
}

func TestCacheWaiterCancellation(t *testing.T) {
	c := NewCache(0, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.GetOrFill(context.Background(), "h", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("late"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrFill(ctx, "h", func() ([]byte, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	close(release)
	// The fill still completed and is served to later callers.
	data, _, err := c.GetOrFill(context.Background(), "h", func() ([]byte, error) { return nil, errors.New("should not run") })
	if err != nil || !bytes.Equal(data, []byte("late")) {
		t.Fatalf("post-cancel get: %q, %v", data, err)
	}
}
